package graphite_test

import (
	"fmt"

	graphite "repro"
)

// ExampleRun simulates a two-thread program on a small target: the main
// thread writes through the coherent memory system, a spawned thread
// doubles the value, and main reads the result back after joining.
func ExampleRun() {
	cfg := graphite.DefaultConfig()
	cfg.Tiles = 4

	prog := graphite.Program{
		Name: "double",
		Funcs: []graphite.ThreadFunc{
			func(t *graphite.Thread, arg uint64) { // main
				cell := t.Malloc(64)
				t.Store64(cell, 21)
				child := t.Spawn(1, uint64(cell))
				t.Join(child)
				fmt.Println("value:", t.Load64(cell))
			},
			func(t *graphite.Thread, arg uint64) { // worker
				cell := graphite.Addr(arg)
				t.Store64(cell, t.Load64(cell)*2)
			},
		},
	}

	if _, err := graphite.Run(cfg, prog, 0); err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// value: 42
}

// ExampleSimulator_Poke pre-loads simulated memory before the run and
// inspects it afterwards — the harness pattern used by the experiment
// drivers.
func ExampleSimulator_Poke() {
	cfg := graphite.DefaultConfig()
	cfg.Tiles = 2

	prog := graphite.Program{
		Name: "incr",
		Funcs: []graphite.ThreadFunc{
			func(t *graphite.Thread, arg uint64) {
				a := graphite.Addr(arg)
				t.Store64(a, t.Load64(a)+1)
			},
		},
	}

	sim, err := graphite.New(cfg, prog)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer sim.Close()

	base := cfg.AS.StaticBase
	sim.Poke(base, []byte{9, 0, 0, 0, 0, 0, 0, 0})
	if _, err := sim.Run(uint64(base)); err != nil {
		fmt.Println("error:", err)
		return
	}
	var out [8]byte
	sim.Peek(base, out[:])
	fmt.Println("after run:", out[0])
	// Output:
	// after run: 10
}

// ExampleThread_Send shows the user-level messaging API (paper §3.3):
// receiving a message forwards the receiver's clock to the message
// timestamp, which is how lax synchronization orders communicating
// threads.
func ExampleThread_Send() {
	cfg := graphite.DefaultConfig()
	cfg.Tiles = 2

	prog := graphite.Program{
		Name: "msg",
		Funcs: []graphite.ThreadFunc{
			func(t *graphite.Thread, arg uint64) {
				child := t.Spawn(1, 0)
				t.Send(child, []byte("ping"))
				data := t.RecvFrom(child)
				fmt.Println("reply:", string(data))
				t.Join(child)
			},
			func(t *graphite.Thread, arg uint64) {
				src, data := t.Recv()
				t.Send(src, append(data, []byte(" pong")...))
			},
		},
	}

	if _, err := graphite.Run(cfg, prog, 0); err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// reply: ping pong
}
