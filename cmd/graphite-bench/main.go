// Command graphite-bench runs the fixed performance benches that track the
// simulator's own speed (the §4 experiments at the quick preset plus two
// end-to-end throughput kernels) and writes a machine-readable report. The
// repo keeps one report per PR (BENCH_<n>.json) so the perf trajectory of
// the hot path — wall time, simulated cycles, host-scaling speedup, and
// allocations per run — is recorded from PR 1 onward.
//
// Usage:
//
//	graphite-bench -o BENCH_1.json                    # fresh report
//	graphite-bench -o BENCH_1.json -baseline old.json # embed a baseline and deltas
//	graphite-bench -reps 5 -label post-sharding
//
// Bench selection and problem sizes are fixed on purpose: a report is only
// comparable to another report produced by the same harness version on the
// same host.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	graphite "repro"
	"repro/internal/experiments"
	"repro/internal/workloads"
)

// Result is one bench's aggregated measurement (means over -reps runs).
//
//graphite:wire
type Result struct {
	Name string `json:"name"`
	Reps int    `json:"reps"`
	// WallSec is the mean wall-clock seconds of one repetition.
	WallSec float64 `json:"wall_sec"`
	// SimCycles is the simulated cycle count of the measured run, when the
	// bench is a single simulation (throughput benches).
	SimCycles int64 `json:"sim_cycles,omitempty"`
	// Speedup is the experiment's headline scaling metric, when it has one
	// (fig4: wall-time speedup at the highest host-core count).
	Speedup float64 `json:"speedup,omitempty"`
	// Slowdown is the experiment's slowdown metric (table2: median
	// simulation slowdown versus native on one host process).
	Slowdown float64 `json:"slowdown,omitempty"`
	// InstrPerSec is simulated instructions per wall second (throughput).
	InstrPerSec float64 `json:"sim_instr_per_sec,omitempty"`
	// AllocsPerOp and BytesPerOp are heap allocations per repetition — the
	// Go-GC pressure watchdog.
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
}

// Delta compares one bench against the baseline report.
//
//graphite:wire
type Delta struct {
	Name      string  `json:"name"`
	WallPct   float64 `json:"wall_pct"`   // negative = faster than baseline
	AllocsPct float64 `json:"allocs_pct"` // negative = fewer allocations
	// InstrPct is the simulated-throughput delta (positive = faster),
	// present only for benches reporting sim_instr_per_sec.
	InstrPct float64 `json:"instr_pct,omitempty"`
}

// Report is the file format (schema graphite-bench/v1).
//
//graphite:wire
type Report struct {
	Schema    string    `json:"schema"`
	Label     string    `json:"label,omitempty"`
	Generated time.Time `json:"generated"`
	GoVersion string    `json:"go_version"`
	GOOS      string    `json:"goos"`
	GOARCH    string    `json:"goarch"`
	HostCPUs  int       `json:"host_cpus"`
	Preset    string    `json:"preset"`
	Benches   []Result  `json:"benches"`
	// HostScale holds the 64-1024-tile host-worker scaling curves when
	// the report was recorded with -hostscale.
	HostScale *experiments.HostScaleResult `json:"hostscale,omitempty"`
	Baseline  *Report                      `json:"baseline,omitempty"`
	Deltas    []Delta                      `json:"deltas,omitempty"`
}

func main() {
	var (
		out      = flag.String("o", "BENCH_1.json", "output report path")
		baseline = flag.String("baseline", "", "prior report to embed and diff against")
		reps     = flag.Int("reps", 3, "repetitions per bench (means are reported)")
		label    = flag.String("label", "", "free-form label recorded in the report")
		check    = flag.Float64("check", 0, "with -baseline: exit nonzero if wall time, allocs/op, or sim instr/sec regress beyond this percentage (the CI bench-regression gate)")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile of the whole bench run to this file (go tool pprof)")
		memprof  = flag.String("memprofile", "", "write an allocation profile taken after the benches to this file (go tool pprof -sample_index=alloc_objects)")
		hostscl  = flag.Bool("hostscale", false, "also record the 64-1024-tile host-worker scaling curves (experiments.HostScale at the full preset) and apply the per-tile cost guard")
		verifyHS = flag.String("verify-hostscale", "", "apply the hostscale per-tile cost guard to an existing report and exit (no benches run)")
	)
	flag.Parse()
	if *verifyHS != "" {
		rep, err := readReport(*verifyHS)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphite-bench: %v\n", err)
			os.Exit(1)
		}
		if rep.HostScale == nil {
			fmt.Fprintf(os.Stderr, "graphite-bench: %s has no hostscale section (record it with -hostscale)\n", *verifyHS)
			os.Exit(1)
		}
		if bad := hostScaleGuard(rep.HostScale); len(bad) > 0 {
			for _, msg := range bad {
				fmt.Fprintln(os.Stderr, "HOSTSCALE REGRESSION:", msg)
			}
			os.Exit(1)
		}
		fmt.Printf("hostscale guard: PASS (%s)\n", *verifyHS)
		return
	}
	if *check < 0 || (*check > 0 && *baseline == "") {
		fmt.Fprintln(os.Stderr, "graphite-bench: -check needs a positive tolerance and -baseline")
		os.Exit(2)
	}

	// Read the baseline before spending a minute on benches, so a bad
	// path fails immediately.
	var base *Report
	if *baseline != "" {
		var err error
		if base, err = readReport(*baseline); err != nil {
			fmt.Fprintf(os.Stderr, "graphite-bench: baseline: %v\n", err)
			os.Exit(1)
		}
	}

	rep := &Report{
		Schema:    "graphite-bench/v1",
		Label:     *label,
		Generated: time.Now().UTC(),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		HostCPUs:  runtime.NumCPU(),
		Preset:    "quick",
	}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphite-bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "graphite-bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
	}

	benches := []struct {
		name string
		run  func() (Result, error)
	}{
		{"fig4/host-scaling", func() (Result, error) { return benchFig4(*reps) }},
		{"table2/slowdown", func() (Result, error) { return benchTable2(*reps) }},
		{"fig6/sync-models", func() (Result, error) { return benchFig6(*reps) }},
		{"throughput/radix", func() (Result, error) { return benchThroughput("radix", 8, 9, *reps) }},
		{"throughput/matmul", func() (Result, error) { return benchThroughput("matmul", 4, 16, *reps) }},
	}
	for _, b := range benches {
		fmt.Fprintf(os.Stderr, "running %s (%d reps)...\n", b.name, *reps)
		r, err := b.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphite-bench: %s: %v\n", b.name, err)
			os.Exit(1)
		}
		r.Name = b.name
		r.Reps = *reps
		rep.Benches = append(rep.Benches, r)
	}

	if *hostscl {
		fmt.Fprintln(os.Stderr, "running hostscale (full preset, 64-1024 tiles)...")
		hs, err := experiments.HostScale(experiments.Full, nil, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphite-bench: hostscale: %v\n", err)
			os.Exit(1)
		}
		rep.HostScale = hs
	}

	// Profiles are finalized before the report/gate logic so that a
	// failing regression gate (os.Exit) cannot truncate them.
	if *cpuprof != "" {
		pprof.StopCPUProfile()
	}
	if *memprof != "" {
		f, err := os.Create(*memprof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphite-bench: -memprofile: %v\n", err)
			os.Exit(1)
		}
		runtime.GC() // flush outstanding allocations into the profile
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "graphite-bench: -memprofile: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}

	if base != nil {
		// Do not nest baselines of baselines in the output file.
		base.Baseline, base.Deltas = nil, nil
		rep.Baseline = base
		rep.Deltas = diff(base.Benches, rep.Benches)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphite-bench: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "graphite-bench: %v\n", err)
		os.Exit(1)
	}
	printSummary(rep)
	fmt.Printf("wrote %s\n", *out)

	// Gates run after the report is on disk so CI can upload it as an
	// artifact even when one fails. The hostscale guard is absolute (a
	// property of this report alone, no baseline needed): per-tile wall
	// cost at the largest tile count must stay within 2x of the
	// smallest, or the stack has grown a superlinear per-tile cost.
	if rep.HostScale != nil {
		if bad := hostScaleGuard(rep.HostScale); len(bad) > 0 {
			for _, msg := range bad {
				fmt.Fprintln(os.Stderr, "HOSTSCALE REGRESSION:", msg)
			}
			os.Exit(1)
		}
		fmt.Println("hostscale guard: PASS")
	}

	// The regression gate runs after the report is on disk so CI can
	// upload it as an artifact even when the gate fails.
	if *check > 0 {
		// Wall time only compares within one host shape (reports are
		// host-specific); allocs/op is deterministic and always gated.
		wallComparable := base.GOOS == rep.GOOS && base.GOARCH == rep.GOARCH &&
			base.HostCPUs == rep.HostCPUs
		if !wallComparable {
			fmt.Fprintf(os.Stderr, "note: baseline host (%s/%s, %d cpus) differs from this host (%s/%s, %d cpus); gating allocs/op only\n",
				base.GOOS, base.GOARCH, base.HostCPUs, rep.GOOS, rep.GOARCH, rep.HostCPUs)
		}
		if bad := regressions(rep.Deltas, *check, wallComparable); len(bad) > 0 {
			for _, msg := range bad {
				fmt.Fprintln(os.Stderr, "REGRESSION:", msg)
			}
			fmt.Fprintf(os.Stderr, "graphite-bench: %d bench(es) regressed beyond ±%.0f%% of baseline %s\n",
				len(bad), *check, *baseline)
			os.Exit(1)
		}
		fmt.Printf("bench-regression: PASS (all deltas within ±%.0f%% of %s)\n", *check, *baseline)
	}
}

// hostScaleGuard checks the scaling section's structural invariants: the
// per-tile wall cost (WallSec/Tiles) at the largest tile count must be
// within 2x of the smallest tile count at every worker count measured,
// and every point must have reproduced the 1-worker result exactly. The
// curves run a fixed total problem, so per-tile wall falling (or holding)
// as tiles grow proves per-tile overhead — construction, synchronization,
// directory and mesh state — stays sub-linear in the tile count; any
// quadratic structure in the stack flattens the ratio past the gate.
func hostScaleGuard(hs *experiments.HostScaleResult) []string {
	var bad []string
	minTiles, maxTiles := 0, 0
	for _, p := range hs.Points {
		if !p.Identical {
			bad = append(bad, fmt.Sprintf("tiles=%d workers=%d: result differs from the 1-worker run", p.Tiles, p.Workers))
		}
		if minTiles == 0 || p.Tiles < minTiles {
			minTiles = p.Tiles
		}
		if p.Tiles > maxTiles {
			maxTiles = p.Tiles
		}
	}
	if minTiles == maxTiles {
		return bad // a single curve has no cross-size ratio to judge
	}
	small := make(map[int]float64) // workers -> wall-sec/tile at minTiles
	for _, p := range hs.Points {
		if p.Tiles == minTiles && p.WallSec > 0 {
			small[p.Workers] = p.WallSec / float64(p.Tiles)
		}
	}
	for _, p := range hs.Points {
		ref, ok := small[p.Workers]
		if p.Tiles != maxTiles || !ok || p.WallSec <= 0 {
			continue
		}
		if perTile := p.WallSec / float64(p.Tiles); perTile > 2*ref {
			bad = append(bad, fmt.Sprintf(
				"%d-tile point costs %.2f ms/tile at %d workers, >2x the %d-tile point's %.2f",
				maxTiles, perTile*1e3, p.Workers, minTiles, ref*1e3))
		}
	}
	return bad
}

// regressions lists benches whose wall time, allocations, or simulated
// throughput regressed beyond the tolerance. Improvements never fail the
// gate; wall time and instr/sec (which is wall-derived) are only judged
// when the baseline came from a comparable host (wall-clock numbers do
// not transfer across machines), while allocs/op is deterministic and
// always gated.
func regressions(deltas []Delta, tolerancePct float64, wallComparable bool) []string {
	var bad []string
	for _, d := range deltas {
		if wallComparable && d.WallPct > tolerancePct {
			bad = append(bad, fmt.Sprintf("%s: wall time %+.1f%% (tolerance %.0f%%)", d.Name, d.WallPct, tolerancePct))
		}
		if d.AllocsPct > tolerancePct {
			bad = append(bad, fmt.Sprintf("%s: allocs/op %+.1f%% (tolerance %.0f%%)", d.Name, d.AllocsPct, tolerancePct))
		}
		if wallComparable && d.InstrPct < -tolerancePct {
			bad = append(bad, fmt.Sprintf("%s: sim instr/sec %+.1f%% (tolerance %.0f%%)", d.Name, d.InstrPct, tolerancePct))
		}
	}
	return bad
}

// measure runs fn reps times and fills the wall-time and allocation fields.
// The last repetition's Result (metrics set by fn) is kept.
func measure(reps int, fn func() (Result, error)) (Result, error) {
	var res Result
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < reps; i++ {
		r, err := fn()
		if err != nil {
			return Result{}, err
		}
		res = r
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	res.WallSec = wall.Seconds() / float64(reps)
	res.AllocsPerOp = (m1.Mallocs - m0.Mallocs) / uint64(reps)
	res.BytesPerOp = (m1.TotalAlloc - m0.TotalAlloc) / uint64(reps)
	return res, nil
}

func benchFig4(reps int) (Result, error) {
	return measure(reps, func() (Result, error) {
		r, err := experiments.Fig4(experiments.Quick, []string{"radix"}, []int{1, 2})
		if err != nil {
			return Result{}, err
		}
		return Result{Speedup: r.Points[len(r.Points)-1].Speedup}, nil
	})
}

func benchTable2(reps int) (Result, error) {
	return measure(reps, func() (Result, error) {
		r, err := experiments.Table2(experiments.Quick, []string{"fmm", "radix"})
		if err != nil {
			return Result{}, err
		}
		return Result{Slowdown: r.Median1}, nil
	})
}

func benchFig6(reps int) (Result, error) {
	return measure(reps, func() (Result, error) {
		r, err := experiments.Table3(experiments.Quick, []string{"radix"}, 2)
		if err != nil {
			return Result{}, err
		}
		return Result{Speedup: r.MeanRunTime[graphite.LaxBarrier][0]}, nil
	})
}

func benchThroughput(name string, tiles, scale, reps int) (Result, error) {
	w, ok := workloads.Get(name)
	if !ok {
		return Result{}, fmt.Errorf("unknown workload %s", name)
	}
	cfg := graphite.DefaultConfig()
	cfg.Tiles = tiles
	cfg.L1I = graphite.CacheConfig{Enabled: false}
	cfg.L1D = graphite.CacheConfig{Enabled: true, Size: 16 << 10, Assoc: 8, LineSize: 64, HitLatency: 1}
	cfg.L2 = graphite.CacheConfig{Enabled: true, Size: 256 << 10, Assoc: 8, LineSize: 64, HitLatency: 8}
	// Throughput is aggregated over every repetition (instructions are
	// deterministic, wall time is not): a last-rep-only sample is far too
	// noisy on a shared host for the -check regression gate to act on it.
	var sumInstr, sumWall float64
	res, err := measure(reps, func() (Result, error) {
		rs, err := graphite.Run(cfg, w.Build(workloads.Params{Threads: tiles, Scale: scale}), 0)
		if err != nil {
			return Result{}, err
		}
		sumInstr += float64(rs.Totals.Instructions)
		sumWall += rs.Wall.Seconds()
		return Result{SimCycles: int64(rs.SimulatedCycles)}, nil
	})
	if err != nil {
		return Result{}, err
	}
	if sumWall > 0 {
		res.InstrPerSec = sumInstr / sumWall
	}
	return res, nil
}

func readReport(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func diff(base, cur []Result) []Delta {
	byName := make(map[string]Result, len(base))
	for _, r := range base {
		byName[r.Name] = r
	}
	var ds []Delta
	for _, r := range cur {
		b, ok := byName[r.Name]
		if !ok || b.WallSec == 0 || b.AllocsPerOp == 0 {
			continue
		}
		d := Delta{
			Name:      r.Name,
			WallPct:   100 * (r.WallSec - b.WallSec) / b.WallSec,
			AllocsPct: 100 * (float64(r.AllocsPerOp) - float64(b.AllocsPerOp)) / float64(b.AllocsPerOp),
		}
		if r.InstrPerSec > 0 && b.InstrPerSec > 0 {
			d.InstrPct = 100 * (r.InstrPerSec - b.InstrPerSec) / b.InstrPerSec
		}
		ds = append(ds, d)
	}
	return ds
}

func printSummary(rep *Report) {
	fmt.Printf("%-20s %12s %14s %14s\n", "bench", "wall-sec", "allocs/op", "bytes/op")
	for _, r := range rep.Benches {
		fmt.Printf("%-20s %12.4f %14d %14d\n", r.Name, r.WallSec, r.AllocsPerOp, r.BytesPerOp)
	}
	if rep.HostScale != nil {
		rep.HostScale.Print(os.Stdout)
	}
	for _, d := range rep.Deltas {
		line := fmt.Sprintf("delta %-14s wall %+6.1f%%  allocs %+6.1f%%", d.Name, d.WallPct, d.AllocsPct)
		if d.InstrPct != 0 {
			line += fmt.Sprintf("  instr/s %+6.1f%%", d.InstrPct)
		}
		fmt.Println(line)
	}
}
