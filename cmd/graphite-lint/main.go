// Command graphite-lint runs the repository's custom analyzer suite
// (internal/lint): detpure, hotalloc, atomicword, and wirejson — the
// machine-checked forms of the determinism, zero-allocation, atomic
// single-writer, and wire-schema invariants DESIGN.md argues in prose.
//
// Standalone (the CI mode — includes the wire-schema lock comparison):
//
//	go run ./cmd/graphite-lint ./...
//	go run ./cmd/graphite-lint -write-schema-lock ./...   # after an intentional schema change
//	go run ./cmd/graphite-lint -dir internal/lint/testdata/src/detpure   # analyze a bare dir
//
// As a go vet tool (per-package; the cross-package checks — the wire
// schema lock and wire transitivity across package boundaries — only
// run in the standalone form, since each vet process sees one package):
//
//	go build -o /tmp/graphite-lint ./cmd/graphite-lint
//	go vet -vettool=/tmp/graphite-lint ./...
//
// Exit status: 0 clean, 1 findings (2 in vettool mode, matching vet's
// convention), >2 operational errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	// go vet protocol probes.
	for _, a := range os.Args[1:] {
		switch a {
		case "-V=full", "--V=full":
			// The output is go's content-ID cache key for this tool.
			fmt.Println("graphite-lint version 1")
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}
	if len(os.Args) >= 2 && strings.HasSuffix(os.Args[len(os.Args)-1], ".cfg") {
		os.Exit(vettool(os.Args[len(os.Args)-1]))
	}

	var (
		dir        = flag.String("dir", "", "analyze one directory of Go files instead of package patterns (testdata smokes; skips the schema lock)")
		lockPath   = flag.String("schema-lock", "", "wire schema lock file (default <module>/internal/lint/testdata/wire_schema.lock)")
		writeLock  = flag.Bool("write-schema-lock", false, "regenerate the wire schema lock from the current tree instead of comparing")
		jsonOut    = flag.String("out", "", "also write findings as JSON to this file (CI artifact)")
		listOnly   = flag.Bool("analyzers", false, "list the analyzers and exit")
		noSchemaCk = flag.Bool("no-schema-lock", false, "skip the wire schema lock comparison")
	)
	flag.Parse()

	module, moduleRoot, err := lint.ModuleInfo(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphite-lint:", err)
		os.Exit(3)
	}
	suite := lint.NewSuite(lint.DefaultDetPaths(module))
	suite.ModulePath = module
	suite.CrossPackage = true

	if *listOnly {
		for _, a := range suite.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	loader := lint.NewLoader(suite.DetPaths)
	if *dir != "" {
		pkg, err := loader.LoadDir(moduleRoot, *dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphite-lint:", err)
			os.Exit(3)
		}
		suite.RunPackage(pkg)
		os.Exit(report(suite.Diagnostics(), *jsonOut))
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.LoadPackages(moduleRoot, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphite-lint:", err)
		os.Exit(3)
	}
	for _, pkg := range pkgs {
		suite.RunPackage(pkg)
	}

	if *lockPath == "" {
		*lockPath = filepath.Join(moduleRoot, "internal", "lint", "testdata", "wire_schema.lock")
	}
	diags := suite.Diagnostics()
	switch {
	case *writeLock:
		if err := os.WriteFile(*lockPath, []byte(suite.Schema.Render()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "graphite-lint:", err)
			os.Exit(3)
		}
		fmt.Fprintf(os.Stderr, "graphite-lint: wrote %s\n", *lockPath)
	case *noSchemaCk:
	default:
		lock, err := os.ReadFile(*lockPath)
		if err != nil {
			diags = append(diags, lint.Diagnostic{
				Analyzer: "wirejson",
				Message:  fmt.Sprintf("cannot read wire schema lock %s: %v (bootstrap with -write-schema-lock)", *lockPath, err),
			})
		} else if d := suite.Schema.Diff(string(lock)); d != "" {
			diags = append(diags, lint.Diagnostic{Analyzer: "wirejson", Message: d})
		}
	}
	os.Exit(report(diags, *jsonOut))
}

// report prints findings (working-directory-relative paths) and returns
// the exit code.
func report(diags []lint.Diagnostic, jsonOut string) int {
	cwd, _ := os.Getwd()
	for _, d := range diags {
		if cwd != "" && d.Pos.Filename != "" {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				d.Pos.Filename = rel
			}
		}
		if d.Pos.Filename == "" {
			fmt.Fprintf(os.Stderr, "%s: %s\n", d.Analyzer, d.Message)
		} else {
			fmt.Fprintln(os.Stderr, d.String())
		}
	}
	if jsonOut != "" {
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		data, err := json.MarshalIndent(diags, "", "  ")
		if err == nil {
			err = os.WriteFile(jsonOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphite-lint:", err)
			return 3
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "graphite-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// vetConfig is the JSON unit description go vet hands a -vettool (the
// unitchecker protocol, reimplemented on the standard library).
type vetConfig struct {
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vettool analyzes one package unit on behalf of go vet and returns the
// process exit code.
func vettool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphite-lint:", err)
		return 3
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "graphite-lint: parse vet config:", err)
		return 3
	}
	// vet expects the facts file regardless of outcome; the suite keeps
	// no cross-package facts in this mode, so it is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "graphite-lint:", err)
			return 3
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// Analyze the non-test files only: the suite's invariants are about
	// shipped simulator code, and tests legitimately use wall clocks
	// and allocate (the standalone driver never sees test files either).
	var files []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return 0
	}
	importPath := strings.TrimSpace(strings.SplitN(cfg.ImportPath, " ", 2)[0])
	module := modulePathOf(importPath)
	suite := lint.NewSuite(lint.DefaultDetPaths(module))
	suite.ModulePath = module
	pkg, err := lint.CheckUnit(importPath, files, cfg.ImportMap, cfg.PackageFile, suite.DetPaths)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "graphite-lint:", err)
		return 3
	}
	suite.RunPackage(pkg)
	diags := suite.Diagnostics()
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d.String())
	}
	if len(diags) > 0 {
		return 2 // vet's diagnostic exit convention
	}
	return 0
}

// modulePathOf recovers the module path from an import path: this
// repository's module is "repro", so the first path element is the
// module. (A vettool unit config does not carry the module path.)
func modulePathOf(importPath string) string {
	if i := strings.Index(importPath, "/"); i > 0 {
		return importPath[:i]
	}
	return importPath
}
