// Command graphite-mp runs one simulation distributed across genuinely
// separate OS processes connected by TCP — the deployment mode of the
// paper's cluster experiments. The coordinator (proc 0) hosts the MCP and
// prints results; workers host their striped tiles and exit when the
// coordinator announces teardown (and acknowledges it — see DESIGN.md
// §12).
//
// Single machine, coordinator forks the workers itself:
//
//	graphite-mp -procs 2 -workload radix -fork
//
// Multiple machines: give every process the full host list (the same
// -hosts on each, or a shared -hostfile) and its own -proc. Start the
// workers first or within the connect timeout; processes may come up in
// any order:
//
//	hostB$ graphite-mp -procs 2 -proc 1 -hosts hostA:36400,hostB:36400 -workload radix
//	hostA$ graphite-mp -procs 2 -proc 0 -hosts hostA:36400,hostB:36400 -workload radix
//
// Without -hosts, consecutive localhost ports starting at -port are used.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/core/launch"
	"repro/internal/scenario"
	"repro/internal/workloads"
)

func main() {
	// Forked worker copies of this binary enter here and never return.
	launch.MaybeWorkerProcess()

	var (
		name    = flag.String("workload", "radix", "workload name")
		tiles   = flag.Int("tiles", 16, "target tiles")
		threads = flag.Int("threads", 0, "worker threads (default: tiles)")
		scale   = flag.Int("scale", 0, "problem size (default: workload default)")
		procs   = flag.Int("procs", 2, "OS processes")
		procID  = flag.Int("proc", 0, "this process's ID")
		port    = flag.Int("port", 36400, "first TCP port (localhost default when -hosts is not given)")
		hosts   = flag.String("hosts", "", "comma-separated host:port list, one per process, same order everywhere")
		hostf   = flag.String("hostfile", "", "file with one host:port per line (alternative to -hosts)")
		fork    = flag.Bool("fork", false, "coordinator forks the workers on this machine")
		dialTO  = flag.Duration("connect-timeout", 30*time.Second, "how long to retry fabric connections while peers come up")

		syncName = flag.String("sync", "", "synchronization model: lax, lax_barrier, lax_p2p (default: config default)")
		quantum  = flag.Int64("quantum", 0, "barrier quantum in cycles (0: config default)")

		ckptDir   = flag.String("checkpoint-dir", "", "directory for checkpoint manifests (enables checkpointing with -checkpoint-every; requires -sync lax_barrier)")
		ckptEvery = flag.Int64("checkpoint-every", 0, "checkpoint every N lax-barrier epochs (0 disables)")
		restarts  = flag.Int("max-restarts", 0, "with -fork: re-fork and replay up to N times after a worker dies")
		chaosMS   = flag.Int("chaos-exit-ms", 0, "fault injection: worker 1 SIGKILLs itself after this many milliseconds (testing only)")
	)
	flag.Parse()

	w, ok := workloads.Get(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *name)
		os.Exit(2)
	}
	if *threads == 0 {
		*threads = *tiles
	}
	if *scale == 0 {
		*scale = w.DefaultScale
	}
	if *procs < 1 {
		fmt.Fprintf(os.Stderr, "-procs must be positive, got %d\n", *procs)
		os.Exit(2)
	}

	hostList, err := resolveHosts(*hosts, *hostf, *procs, *port)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := config.Default()
	cfg.Tiles = *tiles
	cfg.Processes = *procs
	cfg.Transport = config.TransportTCP
	cfg.TCPBase = *port
	cfg.L1I = config.CacheConfig{Enabled: false}
	cfg.L1D = config.CacheConfig{Enabled: true, Size: 16 << 10, Assoc: 8, LineSize: 64, HitLatency: 1}
	cfg.L2 = config.CacheConfig{Enabled: true, Size: 256 << 10, Assoc: 8, LineSize: 64, HitLatency: 8}
	if *syncName != "" {
		m, err := config.ParseSyncModel(*syncName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Sync.Model = m
	}
	if *quantum > 0 {
		cfg.Sync.BarrierQuantum = arch.Cycles(*quantum)
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *procID != 0 {
		// Worker role, launched by hand (possibly on another machine).
		if *fork {
			fmt.Fprintln(os.Stderr, "-fork is the coordinator's flag; workers are forked or started by hand, not both")
			os.Exit(2)
		}
		err := launch.RunWorker(&launch.WorkerSpec{
			Proc:          *procID,
			Hosts:         hostList,
			Workload:      *name,
			Threads:       *threads,
			Scale:         *scale,
			DialTimeoutMS: int(dialTO.Milliseconds()),
			Verbose:       true,
			Config:        cfg,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		return
	}

	digest := scenario.Digest(&cfg)
	spec := &launch.Spec{
		Workload:        *name,
		Threads:         *threads,
		Scale:           *scale,
		Config:          cfg,
		Hosts:           hostList,
		DialTimeout:     *dialTO,
		WorkerVerbose:   true,
		PeekAddr:        workloads.DefaultResultAddr,
		PeekLen:         16,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		MaxRestarts:     *restarts,
		ConfigDigest:    digest,
		ChaosExitMS:     *chaosMS,
	}
	fmt.Printf("running %s on %d tiles across %d OS processes\n", *name, *tiles, *procs)
	var res *launch.Result
	if *fork {
		// launch.Run forks the workers and guarantees they are killed and
		// reaped on every exit path, signals included.
		res, err = launch.Run(spec)
	} else {
		res, err = launch.Coordinate(spec)
	}
	if res != nil && res.Stats != nil {
		totals := res.Stats.Totals
		if len(res.Peeked) >= 8 {
			fmt.Printf("checksum          %016x\n", binary.LittleEndian.Uint64(res.Peeked[:8]))
		}
		fmt.Printf("config digest     %s\n", digest)
		fmt.Printf("simulated cycles  %d\n", totals.MaxCycles)
		fmt.Printf("instructions      %d\n", totals.Instructions)
		fmt.Printf("loads / stores    %d / %d\n", totals.Loads, totals.Stores)
		fmt.Printf("L2 miss rate      %.4f%%\n", 100*totals.MissRate())
		fmt.Printf("network bytes     %d\n", totals.NetBytesSent)
		for _, ps := range res.Procs {
			status := "no teardown ack"
			if ps.Acked {
				status = fmt.Sprintf("wall %.3fs", ps.Wall.Seconds())
			}
			fmt.Printf("proc %d            %s\n", ps.Proc, status)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// resolveHosts builds the per-process fabric address list from -hosts,
// -hostfile, or consecutive localhost ports at -port.
func resolveHosts(list, file string, procs, port int) ([]string, error) {
	if list != "" && file != "" {
		return nil, fmt.Errorf("-hosts and -hostfile are mutually exclusive")
	}
	var hosts []string
	var err error
	switch {
	case list != "":
		hosts, err = launch.ParseHosts(list)
	case file != "":
		hosts, err = launch.ReadHostsFile(file)
	default:
		hosts = make([]string, procs)
		for p := range hosts {
			hosts[p] = fmt.Sprintf("127.0.0.1:%d", port+p)
		}
	}
	if err != nil {
		return nil, err
	}
	if len(hosts) != procs {
		return nil, fmt.Errorf("%d hosts for %d processes", len(hosts), procs)
	}
	return hosts, nil
}
