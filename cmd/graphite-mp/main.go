// Command graphite-mp runs one simulation distributed across genuinely
// separate OS processes connected by TCP — the deployment mode of the
// paper's cluster experiments. The coordinator (proc 0) hosts the MCP and
// prints results; workers host their striped tiles and exit when the
// coordinator tears the fabric down.
//
// Run each process with the same flags, varying only -proc:
//
//	graphite-mp -procs 2 -proc 1 -workload radix &
//	graphite-mp -procs 2 -proc 0 -workload radix
//
// Or let the coordinator fork the workers itself:
//
//	graphite-mp -procs 2 -workload radix -fork
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/workloads"
)

func main() {
	var (
		name    = flag.String("workload", "radix", "workload name")
		tiles   = flag.Int("tiles", 16, "target tiles")
		threads = flag.Int("threads", 0, "worker threads (default: tiles)")
		scale   = flag.Int("scale", 0, "problem size (default: workload default)")
		procs   = flag.Int("procs", 2, "OS processes")
		procID  = flag.Int("proc", 0, "this process's ID")
		port    = flag.Int("port", 36400, "first TCP port")
		fork    = flag.Bool("fork", false, "coordinator forks the workers")
	)
	flag.Parse()

	w, ok := workloads.Get(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *name)
		os.Exit(2)
	}
	if *threads == 0 {
		*threads = *tiles
	}
	if *scale == 0 {
		*scale = w.DefaultScale
	}

	cfg := config.Default()
	cfg.Tiles = *tiles
	cfg.Processes = *procs
	cfg.Transport = config.TransportTCP
	cfg.TCPBase = *port
	cfg.L1I = config.CacheConfig{Enabled: false}
	cfg.L1D = config.CacheConfig{Enabled: true, Size: 16 << 10, Assoc: 8, LineSize: 64, HitLatency: 1}
	cfg.L2 = config.CacheConfig{Enabled: true, Size: 256 << 10, Assoc: 8, LineSize: 64, HitLatency: 8}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *fork && *procID == 0 {
		for p := 1; p < *procs; p++ {
			cmd := exec.Command(os.Args[0],
				"-workload", *name,
				"-tiles", fmt.Sprint(*tiles),
				"-threads", fmt.Sprint(*threads),
				"-scale", fmt.Sprint(*scale),
				"-procs", fmt.Sprint(*procs),
				"-proc", fmt.Sprint(p),
				"-port", fmt.Sprint(*port))
			cmd.Stdout = os.Stderr
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				fmt.Fprintln(os.Stderr, "fork worker:", err)
				os.Exit(1)
			}
			defer cmd.Wait()
		}
	}

	addrs := make([]string, *procs)
	for p := range addrs {
		addrs[p] = fmt.Sprintf("127.0.0.1:%d", *port+p)
	}
	tr, err := transport.DialTCP(transport.TCPConfig{
		Proc:  arch.ProcID(*procID),
		Procs: *procs,
		Addrs: addrs,
		Route: transport.StripedRoute(*procs),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "transport:", err)
		os.Exit(1)
	}
	defer tr.Close()

	prog := w.Build(workloads.Params{Threads: *threads, Scale: *scale})
	proc, err := core.NewProc(arch.ProcID(*procID), &cfg, prog, tr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "proc:", err)
		os.Exit(1)
	}
	proc.Start()

	done := make(chan struct{})
	proc.OnShutdown = func() { close(done) }

	if *procID != 0 {
		// Workers serve until the coordinator announces teardown.
		fmt.Fprintf(os.Stderr, "[proc %d] serving %d tiles\n", *procID, len(proc.Tiles()))
		<-done
		return
	}

	// Coordinator: run the application through the MCP.
	fmt.Printf("running %s on %d tiles across %d OS processes\n", *name, *tiles, *procs)
	if err := proc.MCP.StartMain(0); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	<-proc.MCP.Done()
	proc.MCP.FlushCaches()
	tilesStats := proc.MCP.GatherStats()
	totals := stats.Aggregate(tilesStats)
	fmt.Printf("simulated cycles  %d\n", totals.MaxCycles)
	fmt.Printf("instructions      %d\n", totals.Instructions)
	fmt.Printf("loads / stores    %d / %d\n", totals.Loads, totals.Stores)
	fmt.Printf("L2 miss rate      %.4f%%\n", 100*totals.MissRate())
	fmt.Printf("network bytes     %d\n", totals.NetBytesSent)
	proc.MCP.ShutdownWorkers()
}
