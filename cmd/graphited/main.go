// Command graphited is the simulation service daemon: a long-lived HTTP
// server that accepts scenario sweeps as jobs, executes them on its
// worker fleet through the distributed dispatch coordinator, memoizes
// results in a shared record cache, and streams merged JSONL records
// back to clients. See docs/API.md for the wire surface and
// docs/OPERATIONS.md for running it in production.
//
// Usage:
//
//	graphited -addr 127.0.0.1:9640 -cache /var/cache/graphited
//	graphite-sweep -scenario sweep.json -submit http://127.0.0.1:9640 -out r.jsonl
//
// Shutdown: SIGINT/SIGTERM begins a drain — /healthz flips to 503 and
// new jobs are rejected while accepted ones get -drain-timeout to
// finish, after which they are canceled — then the HTTP server closes
// and the record cache's writer lock is released.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core/launch"
	"repro/internal/recordcache"
	"repro/internal/service"
)

func main() {
	// Jobs whose scenarios declare processes > 1 fork worker copies of
	// this binary (launch re-exec); those copies enter here and never
	// return.
	launch.MaybeWorkerProcess()

	var (
		addr       = flag.String("addr", "127.0.0.1:9640", "HTTP listen address")
		workers    = flag.Int("workers", 0, "in-process worker slots per job (0 = host CPUs, negative = external workers only)")
		maxActive  = flag.Int("max-active", 1, "jobs running concurrently; further jobs queue in submission order")
		cacheDir   = flag.String("cache", "", "record cache directory shared by every job (strongly recommended; see docs/OPERATIONS.md)")
		cacheBytes = flag.Int64("cache-max-bytes", 256<<20, "record cache in-memory byte budget (disk tier is unbounded)")
		cacheTTL   = flag.Duration("cache-ttl", 0, "record cache entry time-to-live, e.g. 72h (0 = never expire)")
		drain      = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for accepted jobs before canceling them")
		verbose    = flag.Bool("verbose", false, "log 2xx requests too (non-2xx are always logged)")
		quiet      = flag.Bool("quiet", false, "suppress per-run progress lines")
	)
	flag.Parse()

	var cache *recordcache.Cache
	if *cacheDir != "" {
		c, err := recordcache.Open(recordcache.Options{Dir: *cacheDir, MaxBytes: *cacheBytes, TTL: *cacheTTL})
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphited:", err)
			os.Exit(1)
		}
		if c.Stats().ReadOnly {
			fmt.Fprintf(os.Stderr, "graphited: cache %s: writer lock held by another process, serving read-only\n", *cacheDir)
		}
		cache = c
	}

	opt := service.Options{
		Workers:   *workers,
		MaxActive: *maxActive,
		Log:       os.Stderr,
		Verbose:   *verbose,
	}
	if cache != nil {
		opt.Cache = cache
	}
	if !*quiet {
		opt.Progress = os.Stderr
	}
	svc := service.New(opt)

	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	fmt.Fprintf(os.Stderr, "graphited: serving on %s (workers=%d, max-active=%d, cache=%s)\n",
		*addr, svc.Workers(), *maxActive, orNone(*cacheDir))

	exit := 0
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "graphited: %s: draining (timeout %s)\n", sig, *drain)
		if canceled := svc.DrainAndStop(*drain); canceled > 0 {
			fmt.Fprintf(os.Stderr, "graphited: canceled %d unfinished job(s)\n", canceled)
		}
		// Jobs are settled, so every record stream has ended; Shutdown
		// only waits out idle keep-alives.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		httpSrv.Shutdown(ctx)
		cancel()
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "graphited:", err)
			exit = 1
		}
		svc.Close()
	}
	if cache != nil {
		cache.Close() // releases the cache directory's writer lock
	}
	os.Exit(exit)
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}
