// Command graphite runs one workload on one simulated target architecture
// and prints its statistics — the everyday driver for exploring a
// configuration.
//
// Usage:
//
//	graphite -workload radix -tiles 32 -threads 32 -procs 2 -sync laxp2p
//	graphite -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/core/launch"
	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func main() {
	// If a multi-process run ever forks copies of this binary as fabric
	// workers, those copies enter here and never return.
	launch.MaybeWorkerProcess()

	var (
		name      = flag.String("workload", "radix", "workload name (see -list)")
		list      = flag.Bool("list", false, "list workloads and exit")
		tiles     = flag.Int("tiles", 32, "target tiles")
		threads   = flag.Int("threads", 0, "worker threads (default: tiles)")
		procs     = flag.Int("procs", 1, "simulated host processes")
		scale     = flag.Int("scale", 0, "problem size (default: workload default)")
		syncFlag  = flag.String("sync", "lax", "sync model: lax|laxbarrier|laxp2p")
		coher     = flag.String("coherence", "fullmap", "coherence: fullmap|dirnb|limitless")
		ptrs      = flag.Int("dirptrs", 4, "directory pointers for dirnb/limitless")
		lineSize  = flag.Int("line", 64, "cache line size in bytes")
		transport = flag.String("transport", "channel", "transport: channel|tcp")
		workers   = flag.Int("workers", 0, "host worker cores (GOMAXPROCS), 0 = all")
		seed      = flag.Int64("seed", 1, "model random seed")
		showTiles = flag.Bool("pertile", false, "print per-tile statistics")
	)
	flag.Parse()

	if *list {
		for _, n := range workloads.Names() {
			w, _ := workloads.Get(n)
			fmt.Printf("%-16s scale=%-5d %s\n", n, w.DefaultScale, w.Description)
		}
		return
	}

	w, ok := workloads.Get(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q; try -list\n", *name)
		os.Exit(2)
	}
	if *threads == 0 {
		*threads = *tiles
	}
	if *scale == 0 {
		*scale = w.DefaultScale
	}

	cfg := config.Default()
	cfg.Tiles = *tiles
	cfg.Processes = *procs
	cfg.Workers = *workers
	cfg.RandSeed = *seed
	cfg.L1D.LineSize = *lineSize
	cfg.L1I.LineSize = *lineSize
	cfg.L2.LineSize = *lineSize
	switch strings.ToLower(*syncFlag) {
	case "lax":
		cfg.Sync.Model = config.Lax
	case "laxbarrier":
		cfg.Sync.Model = config.LaxBarrier
	case "laxp2p":
		cfg.Sync.Model = config.LaxP2P
	default:
		fmt.Fprintf(os.Stderr, "unknown sync model %q\n", *syncFlag)
		os.Exit(2)
	}
	switch strings.ToLower(*coher) {
	case "fullmap":
		cfg.Coherence.Kind = config.FullMap
	case "dirnb":
		cfg.Coherence.Kind = config.LimitedNB
		cfg.Coherence.DirPointers = *ptrs
	case "limitless":
		cfg.Coherence.Kind = config.LimitLESS
		cfg.Coherence.DirPointers = *ptrs
	default:
		fmt.Fprintf(os.Stderr, "unknown coherence %q\n", *coher)
		os.Exit(2)
	}
	if strings.ToLower(*transport) == "tcp" {
		cfg.Transport = config.TransportTCP
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	experiments.Table1(os.Stdout, cfg)
	fmt.Println()

	prog := w.Build(workloads.Params{Threads: *threads, Scale: *scale})
	cl, err := core.NewCluster(cfg, prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer cl.Close()
	rs, err := cl.Run(0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("workload          %s (scale %d, %d threads)\n", *name, *scale, *threads)
	fmt.Printf("simulated cycles  %d (%.3f ms of target time)\n",
		rs.SimulatedCycles, float64(rs.SimulatedCycles)/float64(cfg.ClockHz)*1e3)
	fmt.Printf("wall time         %v\n", rs.Wall)
	fmt.Printf("instructions      %d\n", rs.Totals.Instructions)
	fmt.Printf("loads / stores    %d / %d\n", rs.Totals.Loads, rs.Totals.Stores)
	fmt.Printf("L2 miss rate      %.4f%% (cold %.4f%% capacity %.4f%% true %.4f%% false %.4f%%)\n",
		100*rs.Totals.MissRate(),
		100*rs.Totals.MissRateBy(stats.MissCold),
		100*rs.Totals.MissRateBy(stats.MissCapacity),
		100*rs.Totals.MissRateBy(stats.MissTrueSharing),
		100*rs.Totals.MissRateBy(stats.MissFalseSharing))
	fmt.Printf("avg mem latency   %.1f cycles over %d L2 misses\n",
		rs.Totals.AvgMemLatency(), rs.Totals.MemAccesses)
	fmt.Printf("upgrades          %d, invalidations %d, dir traps %d\n",
		rs.Totals.Upgrades, rs.Totals.InvSent, rs.Totals.DirTraps)
	fmt.Printf("DRAM              %d reads, %d writes\n", rs.Totals.DRAMReads, rs.Totals.DRAMWrites)
	fmt.Printf("network           %d packets, %d bytes\n", rs.Totals.NetPacketsSent, rs.Totals.NetBytesSent)
	fmt.Printf("branches          %d (%.2f%% mispredicted)\n", rs.Totals.Branches,
		100*float64(rs.Totals.BranchMispredict)/float64(max(rs.Totals.Branches, 1)))

	if *showTiles {
		fmt.Printf("\n%-6s %14s %12s %10s %10s %10s\n", "tile", "cycles", "instr", "loads", "stores", "l2miss")
		for _, ts := range rs.Tiles {
			fmt.Printf("%-6d %14d %12d %10d %10d %10d\n",
				ts.TileID, ts.Cycles, ts.Instructions, ts.Loads, ts.Stores, ts.L2Misses)
		}
	}
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
