// Command graphite-sweep regenerates the tables and figures of the paper's
// evaluation section (§4). Each -exp selects one experiment; -preset
// scales problem sizes.
//
// Usage:
//
//	graphite-sweep -exp table2 -preset quick
//	graphite-sweep -exp fig9 -preset standard
//	graphite-sweep -exp all -preset quick
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/config"
	"repro/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment: table1|fig4|table2|fig5|table3|fig7|fig8|fig9|all")
		preset = flag.String("preset", "quick", "size preset: quick|standard|full")
		runs   = flag.Int("runs", 0, "repetitions for table3 (default: preset-dependent)")
		benchs = flag.String("benchmarks", "", "comma-separated benchmark subset")
		sizes  = flag.String("sizes", "", "comma-separated int list (line sizes, tile counts, machine counts)")
	)
	flag.Parse()

	pr, err := experiments.ParsePreset(*preset)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var benchmarks []string
	if *benchs != "" {
		benchmarks = strings.Split(*benchs, ",")
	}
	var ints []int
	if *sizes != "" {
		for _, s := range strings.Split(*sizes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			ints = append(ints, v)
		}
	}

	runOne := func(name string) {
		fmt.Printf("==== %s (%s preset) ====\n", name, *preset)
		var err error
		switch name {
		case "table1":
			experiments.Table1(os.Stdout, config.Default())
		case "fig4":
			var r *experiments.Fig4Result
			if r, err = experiments.Fig4(pr, benchmarks, ints); err == nil {
				r.Print(os.Stdout)
			}
		case "table2":
			var r *experiments.Table2Result
			if r, err = experiments.Table2(pr, benchmarks); err == nil {
				r.Print(os.Stdout)
			}
		case "fig5":
			var r *experiments.Fig5Result
			if r, err = experiments.Fig5(pr, ints); err == nil {
				r.Print(os.Stdout)
			}
		case "table3", "fig6":
			var r *experiments.Table3Result
			if r, err = experiments.Table3(pr, benchmarks, *runs); err == nil {
				r.Print(os.Stdout)
			}
		case "fig7":
			var r *experiments.Fig7Result
			if r, err = experiments.Fig7(pr); err == nil {
				r.Print(os.Stdout)
			}
		case "fig8":
			var r *experiments.Fig8Result
			if r, err = experiments.Fig8(pr, benchmarks, ints); err == nil {
				r.Print(os.Stdout)
			}
		case "fig9":
			var r *experiments.Fig9Result
			if r, err = experiments.Fig9(pr, ints); err == nil {
				r.Print(os.Stdout)
			}
		default:
			err = fmt.Errorf("unknown experiment %q", name)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	if *exp == "all" {
		for _, e := range []string{"table1", "fig4", "table2", "fig5", "table3", "fig7", "fig8", "fig9"} {
			runOne(e)
		}
		return
	}
	runOne(*exp)
}
