// Command graphite-sweep runs design-space sweeps. It has two modes:
//
// Scenario mode executes a declarative scenario file (see README,
// "Scenario files") on a host-parallel worker pool and writes one JSONL
// record per run:
//
//	graphite-sweep -scenario examples/scenarios/line-size-sweep.json -parallel 4 -out r.jsonl
//
// Experiment mode regenerates the tables and figures of the paper's
// evaluation section (§4). Each -exp selects one experiment from the
// registry; -preset scales problem sizes:
//
//	graphite-sweep -exp table2 -preset quick
//	graphite-sweep -exp fig9 -preset standard
//	graphite-sweep -exp all -preset quick
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

func main() {
	var (
		scenarioPath = flag.String("scenario", "", "scenario file to run (overrides -exp)")
		parallel     = flag.Int("parallel", 0, "worker pool size for scenario runs (0 = host CPUs)")
		out          = flag.String("out", "", "JSONL output path for -scenario (default: stdout)")
		exp          = flag.String("exp", "all", "experiment: "+experiments.FlagUsage())
		preset       = flag.String("preset", "quick", "size preset: quick|standard|full")
		runs         = flag.Int("runs", 0, "repetitions for table3 (default: preset-dependent)")
		benchs       = flag.String("benchmarks", "", "comma-separated benchmark subset")
		sizes        = flag.String("sizes", "", "comma-separated int list (line sizes, tile counts, machine counts)")
	)
	flag.Parse()

	if *scenarioPath != "" {
		if err := runScenario(*scenarioPath, *parallel, *out); err != nil {
			fmt.Fprintln(os.Stderr, "graphite-sweep:", err)
			os.Exit(1)
		}
		return
	}

	pr, err := experiments.ParsePreset(*preset)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opts := experiments.Options{
		Preset:   pr,
		Runs:     *runs,
		Parallel: *parallel,
	}
	if *benchs != "" {
		opts.Benchmarks = strings.Split(*benchs, ",")
	}
	if *sizes != "" {
		for _, s := range strings.Split(*sizes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			opts.Sizes = append(opts.Sizes, v)
		}
	}

	runOne := func(name string) {
		fmt.Printf("==== %s (%s preset) ====\n", name, pr)
		if err := experiments.RunByName(name, os.Stdout, opts); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if *exp == "all" {
		for _, e := range experiments.Registry() {
			runOne(e.Name)
		}
		return
	}
	runOne(*exp)
}

// runScenario loads, expands, executes, and reports one scenario file.
func runScenario(path string, parallel int, out string) error {
	sc, err := scenario.Load(path)
	if err != nil {
		return err
	}
	specs, err := sc.Expand()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "scenario %s: %d runs (%d grids)\n", sc.Name, len(specs), len(sc.Grids))

	// Create the output file before the sweep so a bad path fails in
	// seconds, not after hours of simulation.
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	records, runErr := scenario.RunExpanded(sc, specs, scenario.Options{Parallel: parallel, Progress: os.Stderr})
	if err := scenario.WriteJSONL(w, records); err != nil {
		return err
	}
	if out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d records to %s\n", len(records), out)
	}
	return runErr
}
