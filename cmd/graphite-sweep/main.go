// Command graphite-sweep runs design-space sweeps. It has three modes:
//
// Scenario mode executes a declarative scenario file (see README,
// "Scenario files") on a host-parallel worker pool and writes one JSONL
// record per run:
//
//	graphite-sweep -scenario examples/scenarios/line-size-sweep.json -parallel 4 -out r.jsonl
//
// Distributed mode spreads one scenario across machines (README,
// "Distributed sweeps"): a coordinator serves the expanded runs over TCP
// and any number of workers pull, execute, and stream records back. The
// merged output is byte-identical to the single-host runner's, up to
// wall_sec:
//
//	graphite-sweep -scenario sweep.json -serve :9640 -workers-expected 2 -out r.jsonl
//	graphite-sweep -worker -connect host:9640 -parallel 8
//
// -resume r.jsonl skips runs that already have an error-free record with
// a matching config digest, so an interrupted sweep continues where it
// stopped.
//
// Service mode submits the scenario to a running graphited daemon
// (README, "Simulation service"; docs/API.md) instead of executing it
// locally, then streams the merged records back — resuming the stream
// if the connection drops — so the written JSONL is byte-identical to
// what local execution would produce, up to the wall-clock fields and
// the cached flag:
//
//	graphite-sweep -scenario sweep.json -submit http://127.0.0.1:9640 -out r.jsonl
//
// Both modes take -cache DIR (README, "Record cache"): a
// content-addressed record store consulted before any run is simulated
// or dispatched. Warm re-runs of a sweep simulate nothing and emit
// byte-identical records up to wall_sec/cached. -cache-max-bytes,
// -cache-ttl, and -no-cache tune or disable it.
//
// Experiment mode regenerates the tables and figures of the paper's
// evaluation section (§4). Each -exp selects one experiment from the
// registry; -preset scales problem sizes:
//
//	graphite-sweep -exp table2 -preset quick
//	graphite-sweep -exp fig9 -preset standard
//	graphite-sweep -exp all -preset quick
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core/launch"
	"repro/internal/experiments"
	"repro/internal/recordcache"
	"repro/internal/scenario"
	"repro/internal/scenario/dispatch"
	"repro/internal/service/client"
)

func main() {
	// Scenarios with processes > 1 fork worker copies of this binary;
	// those copies enter here and never return.
	launch.MaybeWorkerProcess()

	var (
		scenarioPath = flag.String("scenario", "", "scenario file to run (overrides -exp)")
		parallel     = flag.Int("parallel", 0, "worker pool size for scenario/worker runs (0 = host CPUs)")
		out          = flag.String("out", "", "JSONL output path for -scenario (default: stdout)")
		serve        = flag.String("serve", "", "coordinator mode: serve the -scenario runs to workers on this address")
		worker       = flag.Bool("worker", false, "worker mode: pull runs from a coordinator (-connect)")
		connect      = flag.String("connect", "", "coordinator address for -worker (host:port)")
		submit       = flag.String("submit", "", "submit the -scenario to a graphited daemon at this base URL and stream the records back")
		resume       = flag.String("resume", "", "JSONL of a previous partial run; matching error-free records are not re-executed")
		workersExp   = flag.Int("workers-expected", 0, "coordinator waits for this many worker processes before dispatching")
		cacheDir     = flag.String("cache", "", "record cache directory: serve repeated runs from cache instead of re-simulating")
		cacheBytes   = flag.Int64("cache-max-bytes", 256<<20, "record cache in-memory byte budget (disk tier is unbounded)")
		cacheTTL     = flag.Duration("cache-ttl", 0, "record cache entry time-to-live, e.g. 72h (0 = never expire)")
		noCache      = flag.Bool("no-cache", false, "disable the record cache even when -cache is set")
		exp          = flag.String("exp", "all", "experiment: "+experiments.FlagUsage())
		preset       = flag.String("preset", "quick", "size preset: quick|standard|full")
		runs         = flag.Int("runs", 0, "repetitions for table3 (default: preset-dependent)")
		benchs       = flag.String("benchmarks", "", "comma-separated benchmark subset")
		sizes        = flag.String("sizes", "", "comma-separated int list (line sizes, tile counts, machine counts)")
	)
	flag.Parse()

	// -resume and -workers-expected only mean something to the
	// coordinator. Rejecting them elsewhere matters for -resume
	// especially: silently ignoring it in single-host mode would
	// truncate the very file the user asked to resume from.
	if *serve == "" {
		if *resume != "" {
			fmt.Fprintln(os.Stderr, "graphite-sweep: -resume requires -serve (distributed coordinator mode)")
			os.Exit(2)
		}
		if *workersExp != 0 {
			fmt.Fprintln(os.Stderr, "graphite-sweep: -workers-expected requires -serve")
			os.Exit(2)
		}
	}
	if !*worker && *connect != "" {
		fmt.Fprintln(os.Stderr, "graphite-sweep: -connect requires -worker (did you forget -worker?)")
		os.Exit(2)
	}
	if *submit != "" {
		// The daemon owns execution: every local-execution flag is
		// meaningless (and -cache would grab the daemon's lock).
		switch {
		case *scenarioPath == "":
			fmt.Fprintln(os.Stderr, "graphite-sweep: -submit requires -scenario")
			os.Exit(2)
		case *serve != "" || *worker:
			fmt.Fprintln(os.Stderr, "graphite-sweep: -submit is exclusive with -serve/-worker")
			os.Exit(2)
		case *cacheDir != "":
			fmt.Fprintln(os.Stderr, "graphite-sweep: -cache applies to local execution; the daemon owns the cache in -submit mode")
			os.Exit(2)
		}
		if err := submitScenario(*scenarioPath, *submit, *out); err != nil {
			fmt.Fprintln(os.Stderr, "graphite-sweep:", err)
			os.Exit(1)
		}
		return
	}
	if *worker {
		if *connect == "" {
			fmt.Fprintln(os.Stderr, "graphite-sweep: -worker requires -connect host:port")
			os.Exit(2)
		}
		if *cacheDir != "" {
			// The cache hangs off the front doors (runner, coordinator);
			// workers only ever see specs the cache already missed.
			fmt.Fprintln(os.Stderr, "graphite-sweep: -cache applies to -scenario/-serve, not -worker (the coordinator owns the cache)")
			os.Exit(2)
		}
		if err := dispatch.Work(*connect, dispatch.WorkerOptions{Parallel: *parallel, Progress: os.Stderr}); err != nil {
			fmt.Fprintln(os.Stderr, "graphite-sweep:", err)
			os.Exit(1)
		}
		return
	}
	cache, err := openCache(*cacheDir, *cacheBytes, *cacheTTL, *noCache)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphite-sweep:", err)
		os.Exit(1)
	}
	// Close explicitly (not deferred): os.Exit skips defers and the
	// close releases the cache directory's writer lock.
	closeCache := func() {
		if cache != nil {
			cache.Close()
		}
	}
	if *serve != "" {
		if *scenarioPath == "" {
			fmt.Fprintln(os.Stderr, "graphite-sweep: -serve requires -scenario")
			os.Exit(2)
		}
		err := serveScenario(*scenarioPath, *serve, *out, *resume, *workersExp, cache)
		closeCache()
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphite-sweep:", err)
			os.Exit(1)
		}
		return
	}
	if *scenarioPath != "" {
		err := runScenario(*scenarioPath, *parallel, *out, cache)
		closeCache()
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphite-sweep:", err)
			os.Exit(1)
		}
		return
	}
	closeCache()

	pr, err := experiments.ParsePreset(*preset)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opts := experiments.Options{
		Preset:   pr,
		Runs:     *runs,
		Parallel: *parallel,
	}
	if *benchs != "" {
		opts.Benchmarks = strings.Split(*benchs, ",")
	}
	if *sizes != "" {
		for _, s := range strings.Split(*sizes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			opts.Sizes = append(opts.Sizes, v)
		}
	}

	runOne := func(name string) {
		fmt.Printf("==== %s (%s preset) ====\n", name, pr)
		if err := experiments.RunByName(name, os.Stdout, opts); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if *exp == "all" {
		for _, e := range experiments.Registry() {
			runOne(e.Name)
		}
		return
	}
	runOne(*exp)
}

// openCache builds the record cache from the -cache* flags; nil means
// caching is off (no -cache dir, or -no-cache).
func openCache(dir string, maxBytes int64, ttl time.Duration, disabled bool) (*recordcache.Cache, error) {
	if dir == "" || disabled {
		return nil, nil
	}
	c, err := recordcache.Open(recordcache.Options{Dir: dir, MaxBytes: maxBytes, TTL: ttl})
	if err != nil {
		return nil, err
	}
	if c.Stats().ReadOnly {
		fmt.Fprintf(os.Stderr, "cache %s: writer lock held by another sweep, serving read-only\n", dir)
	}
	return c, nil
}

// cacheSummary emits the hit/miss line CI and operators key off: the
// warm-sweep contract is simulated=0 and hit_rate=100.0%.
func cacheSummary(cache *recordcache.Cache, records []scenario.Record) {
	if cache == nil {
		return
	}
	st := cache.Stats()
	cached := 0
	for i := range records {
		if records[i].Cached {
			cached++
		}
	}
	fmt.Fprintf(os.Stderr, "cache: hits=%d misses=%d hit_rate=%.1f%% evictions=%d bytes=%d entries=%d simulated=%d cached=%d\n",
		st.Hits, st.Misses, st.HitRate(), st.Evictions, st.DiskLive, st.DiskEntries, len(records)-cached, cached)
}

// submitScenario runs the scenario through a graphited daemon: POST the
// file, stream the merged JSONL to out (byte-verbatim — the service's
// records are already in final form), resume the stream on connection
// drops, and mirror the job's terminal state in the exit status.
func submitScenario(path, baseURL, out string) error {
	body, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	cl, err := client.New(baseURL)
	if err != nil {
		return err
	}
	ctx := context.Background()

	st, err := cl.Submit(ctx, body)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "scenario %s: %d runs, submitted as job %s to %s\n",
		st.Scenario, st.RunsTotal, st.ID, baseURL)

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	// Stream with resume: the line index is a stable cursor (records
	// arrive in run-index order), so after a drop we continue from the
	// count already written and the output stays byte-identical.
	written := 0
	for attempt := 0; ; {
		n, err := cl.StreamRecords(ctx, st.ID, written, w)
		written += n
		if err == nil {
			break
		}
		attempt++
		if attempt >= 5 {
			return fmt.Errorf("record stream failed %d times (last: %w); resume with: GET /v1/jobs/%s/records?from=%d", attempt, err, st.ID, written)
		}
		fmt.Fprintf(os.Stderr, "record stream interrupted after %d records (%v), resuming\n", written, err)
		time.Sleep(500 * time.Millisecond)
	}

	// The stream ends when the job settles; fetch the terminal state for
	// the summary and the exit status.
	final, err := cl.WaitTerminal(ctx, st.ID)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "job %s %s: %d records (%d executed, %d cached)\n",
		final.ID, final.State, written, final.RunsExecuted, final.RunsCached)
	if out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d records to %s\n", written, out)
	}
	if final.State != "done" {
		return fmt.Errorf("job %s %s: %s", final.ID, final.State, final.Error)
	}
	return nil
}

// runScenario loads, expands, executes, and reports one scenario file.
func runScenario(path string, parallel int, out string, cache *recordcache.Cache) error {
	sc, err := scenario.Load(path)
	if err != nil {
		return err
	}
	specs, err := sc.Expand()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "scenario %s: %d runs (%d grids)\n", sc.Name, len(specs), len(sc.Grids))

	// Create the output file before the sweep so a bad path fails in
	// seconds, not after hours of simulation.
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	opt := scenario.Options{Parallel: parallel, Progress: os.Stderr}
	if cache != nil {
		// Assigned conditionally: a nil *recordcache.Cache in the
		// interface field would dodge the runner's nil check.
		opt.Cache = cache
	}
	records, runErr := scenario.RunExpanded(sc, specs, opt)
	if err := scenario.WriteJSONL(w, records); err != nil {
		return err
	}
	cacheSummary(cache, records)
	if out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d records to %s\n", len(records), out)
	}
	return runErr
}

// serveScenario runs the distributed coordinator: expand the scenario,
// adopt any resumable records, and serve the rest to workers.
func serveScenario(path, addr, out, resumePath string, workersExpected int, cache *recordcache.Cache) error {
	sc, err := scenario.Load(path)
	if err != nil {
		return err
	}
	specs, err := sc.Expand()
	if err != nil {
		return err
	}

	// Read the resume file before creating the output: -resume and -out
	// may name the same path.
	var resume []scenario.Record
	if resumePath != "" {
		resume, err = readResume(resumePath)
		if err != nil {
			return err
		}
	}

	opt := dispatch.Options{
		Addr:            addr,
		WorkersExpected: workersExpected,
		Serial:          scenario.NeedsSerial(sc, specs),
		Verify:          sc.Verify,
		Progress:        os.Stderr,
		Resume:          resume,
	}
	if cache != nil {
		opt.Cache = cache
	}
	c, err := dispatch.NewCoordinator(specs, opt)
	if err != nil {
		return err
	}

	// Truncate the output only now: -out may name the same file as
	// -resume, and a coordinator startup failure (bad address, port in
	// use) must not destroy the records we just read from it.
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	c.SetOutput(w)
	fmt.Fprintf(os.Stderr, "scenario %s: %d runs (%d resumed, %d cached), serving on %s\n",
		sc.Name, len(specs), c.Reused(), c.Cached(), c.Addr())

	records, runErr := c.Wait()
	cacheSummary(cache, records)
	if out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d records to %s (%d executed, %d resumed, %d cached)\n",
			len(records), out, c.Executed(), c.Reused(), c.Cached())
	}
	return runErr
}

// readResume reads a previous run's JSONL, tolerating a torn final line:
// an interrupted coordinator (crash, disk full) can leave a partial last
// record, and that must not make the durable prefix — the whole point of
// -resume — unreadable. Corruption anywhere else still fails loudly.
func readResume(path string) ([]scenario.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("resume: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), 64<<20) // records can embed per-tile stats
	var records []scenario.Record
	lineNo, badLine := 0, 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if badLine != 0 {
			return nil, fmt.Errorf("resume %s: line %d: invalid record (not a torn tail)", path, badLine)
		}
		var rec scenario.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			badLine = lineNo // fatal only if another record follows
			continue
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("resume %s: %w", path, err)
	}
	if badLine != 0 {
		fmt.Fprintf(os.Stderr, "resume %s: dropping torn final record on line %d\n", path, badLine)
	}
	return records, nil
}
