// Command graphite-skew emits the Figure 7 clock-skew traces as CSV, one
// block per synchronization model, suitable for plotting.
//
// Usage:
//
//	graphite-skew -preset quick > skew.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	preset := flag.String("preset", "quick", "size preset: quick|standard|full")
	flag.Parse()
	pr, err := experiments.ParsePreset(*preset)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res, err := experiments.Fig7(pr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("model,wall_ms,min_dev_cycles,max_dev_cycles,mean_cycles")
	for _, tr := range res.Traces {
		for _, s := range tr.Samples {
			fmt.Printf("%s,%.3f,%d,%d,%d\n",
				tr.Model.String(),
				float64(s.Wall.Microseconds())/1000,
				int64(s.Min-s.Mean), int64(s.Max-s.Mean), int64(s.Mean))
		}
	}
	for _, tr := range res.Traces {
		fmt.Fprintf(os.Stderr, "%-11s max skew %d cycles over %d samples\n",
			tr.Model.String(), tr.MaxSkew, len(tr.Samples))
	}
}
