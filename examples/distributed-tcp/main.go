// Distributed simulation over real TCP sockets: the same unmodified
// program runs striped across four simulated host processes that exchange
// every byte of application data, coherence traffic, and control messages
// through the loopback network stack — the paper's cluster deployment in
// miniature (see cmd/graphite-mp for genuinely separate OS processes).
//
//	go run ./examples/distributed-tcp
package main

import (
	"fmt"
	"log"

	graphite "repro"
)

func main() {
	cfg := graphite.DefaultConfig()
	cfg.Tiles = 8
	cfg.Processes = 4 // tiles striped 0,4 | 1,5 | 2,6 | 3,7
	cfg.Transport = graphite.TransportTCP
	cfg.TCPBase = 36300

	// Token ring: each thread receives a token, adds its contribution
	// from shared memory, and passes it on — every hop crosses a process
	// boundary because neighbouring tiles live in different processes.
	const hops = 8
	prog := graphite.Program{
		Name: "token-ring",
		Funcs: []graphite.ThreadFunc{
			func(t *graphite.Thread, arg uint64) {
				vals := t.Malloc(hops * 64)
				for i := 0; i < hops; i++ {
					t.Store64(vals+graphite.Addr(i*64), uint64(i+1)*100)
				}
				blk := t.Malloc(64)
				t.Store64(blk, uint64(vals))
				var tids []graphite.ThreadID
				for w := 1; w < hops; w++ {
					tids = append(tids, t.Spawn(1, uint64(blk)|uint64(w)<<48))
				}
				// Inject the token and let it do one lap.
				t.Send(1, []byte{0, 0, 0, 0, 0, 0, 0, 0})
				data := t.RecvFrom(graphite.ThreadID(hops - 1))
				var token uint64
				for b := 0; b < 8; b++ {
					token |= uint64(data[b]) << (8 * b)
				}
				token += t.Load64(vals) // main's own contribution
				for _, tid := range tids {
					t.Join(tid)
				}
				want := uint64(0)
				for i := 0; i < hops; i++ {
					want += uint64(i+1) * 100
				}
				fmt.Printf("token after one ring lap: %d (want %d)\n", token, want)
			},
			func(t *graphite.Thread, arg uint64) {
				blk := graphite.Addr(arg & 0xFFFF_FFFF_FFFF)
				w := int(arg >> 48)
				vals := graphite.Addr(t.Load64(blk))
				prev := graphite.ThreadID(w - 1)
				if w == 1 {
					prev = 0
				}
				data := t.RecvFrom(prev)
				var token uint64
				for b := 0; b < 8; b++ {
					token |= uint64(data[b]) << (8 * b)
				}
				token += t.Load64(vals + graphite.Addr(w*64))
				out := make([]byte, 8)
				for b := 0; b < 8; b++ {
					out[b] = byte(token >> (8 * b))
				}
				next := graphite.ThreadID((w + 1) % hops)
				t.Send(next, out)
			},
		},
	}

	rs, err := graphite.Run(cfg, prog, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated cycles %d, wall %v\n", rs.SimulatedCycles, rs.Wall)
	fmt.Printf("network: %d packets, %d bytes over TCP\n",
		rs.Totals.NetPacketsSent, rs.Totals.NetBytesSent)
}
