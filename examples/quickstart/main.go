// Quickstart: simulate a small parallel program — four threads summing a
// shared array under a mutex-protected accumulator — on the paper's
// Table 1 target architecture, and print what the simulator measured.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	graphite "repro"
)

func main() {
	cfg := graphite.DefaultConfig()
	cfg.Tiles = 8

	const (
		workers = 4
		items   = 1024
	)

	// The program: main fills an array, workers sum disjoint slices and
	// add their partials into a shared accumulator under a mutex.
	prog := graphite.Program{
		Name: "quickstart",
		Funcs: []graphite.ThreadFunc{
			// Funcs[0] is main.
			func(t *graphite.Thread, arg uint64) {
				data := t.Malloc(items * 8)
				acc := t.Malloc(64)  // shared accumulator
				lock := t.Malloc(64) // its mutex
				for i := 0; i < items; i++ {
					t.Store64(data+graphite.Addr(i*8), uint64(i+1))
				}
				// Parameter block for the workers.
				blk := t.Malloc(64)
				t.Store64(blk, uint64(data))
				t.Store64(blk+8, uint64(acc))
				t.Store64(blk+16, uint64(lock))

				var tids []graphite.ThreadID
				for w := 0; w < workers; w++ {
					tids = append(tids, t.Spawn(1, uint64(blk)|uint64(w)<<48))
				}
				for _, tid := range tids {
					t.Join(tid)
				}
				got := t.Load64(acc)
				want := uint64(items) * (items + 1) / 2
				fmt.Printf("sum = %d (want %d) at simulated cycle %d\n", got, want, t.Now())
			},
			// Funcs[1] is the worker.
			func(t *graphite.Thread, arg uint64) {
				blk := graphite.Addr(arg & 0xFFFF_FFFF_FFFF)
				w := int(arg >> 48)
				data := graphite.Addr(t.Load64(blk))
				acc := graphite.Addr(t.Load64(blk + 8))
				lock := graphite.Addr(t.Load64(blk + 16))

				per := items / workers
				var sum uint64
				for i := w * per; i < (w+1)*per; i++ {
					sum += t.Load64(data + graphite.Addr(i*8))
					t.Compute(graphite.Arith, 1)
				}
				t.MutexLock(lock)
				t.Store64(acc, t.Load64(acc)+sum)
				t.MutexUnlock(lock)
			},
		},
	}

	rs, err := graphite.Run(cfg, prog, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated run time  %d cycles (%.3f ms of target time)\n",
		rs.SimulatedCycles, float64(rs.SimulatedCycles)/1e6)
	fmt.Printf("host wall time      %v\n", rs.Wall)
	fmt.Printf("instructions        %d\n", rs.Totals.Instructions)
	fmt.Printf("L2 miss rate        %.3f%%\n", 100*rs.Totals.MissRate())
	fmt.Printf("network traffic     %d packets / %d bytes\n",
		rs.Totals.NetPacketsSent, rs.Totals.NetBytesSent)
}
