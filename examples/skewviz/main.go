// Skew visualization: run the same compute-and-share program under each
// synchronization model with skew sampling enabled, and render the clock
// spread over time as text — a terminal rendition of Figure 7. Lax drifts
// by orders of magnitude more than LaxP2P; LaxBarrier stays within a
// quantum.
//
//	go run ./examples/skewviz
package main

import (
	"fmt"
	"log"
	"strings"

	graphite "repro"
)

func buildProgram(workers, rounds int) graphite.Program {
	return graphite.Program{
		Name: "skewviz",
		Funcs: []graphite.ThreadFunc{
			func(t *graphite.Thread, arg uint64) {
				shared := t.Malloc(graphite.Addr(workers * 64))
				blk := t.Malloc(64)
				t.Store64(blk, uint64(shared))
				t.Store64(blk+8, uint64(rounds))
				var tids []graphite.ThreadID
				for w := 1; w < workers; w++ {
					tids = append(tids, t.Spawn(1, uint64(blk)|uint64(w)<<48))
				}
				spin(t, blk, 0)
				for _, tid := range tids {
					t.Join(tid)
				}
			},
			func(t *graphite.Thread, arg uint64) {
				spin(t, graphite.Addr(arg&0xFFFF_FFFF_FFFF), int(arg>>48))
			},
		},
	}
}

// spin interleaves unequal compute bursts (to create skew) with stores to
// a shared array (to give the memory system work).
func spin(t *graphite.Thread, blk graphite.Addr, w int) {
	shared := graphite.Addr(t.Load64(blk))
	rounds := int(t.Load64(blk + 8))
	for r := 0; r < rounds; r++ {
		t.Compute(graphite.Arith, 200*(w+1)) // deliberately unbalanced
		t.Store64(shared+graphite.Addr(w*64), uint64(r))
		t.Load64(shared + graphite.Addr(((w+1)%8)*64))
	}
}

func main() {
	const workers = 8
	for _, m := range []struct {
		name  string
		model int
	}{
		{"Lax", int(graphite.Lax)},
		{"LaxP2P", int(graphite.LaxP2P)},
		{"LaxBarrier", int(graphite.LaxBarrier)},
	} {
		cfg := graphite.DefaultConfig()
		cfg.Tiles = workers
		cfg.CollectSkew = true
		cfg.Sync.Model = graphite.Lax
		switch m.name {
		case "LaxP2P":
			cfg.Sync.Model = graphite.LaxP2P
			cfg.Sync.P2PSlack = 50_000
			cfg.Sync.P2PInterval = 5_000
		case "LaxBarrier":
			cfg.Sync.Model = graphite.LaxBarrier
			cfg.Sync.BarrierQuantum = 1_000
		}
		rs, err := graphite.Run(cfg, buildProgram(workers, 3000), 0)
		if err != nil {
			log.Fatal(err)
		}
		var maxSpread graphite.Cycles
		for _, s := range rs.Skew {
			if sp := s.Max - s.Min; sp > maxSpread {
				maxSpread = sp
			}
		}
		fmt.Printf("\n%s: %d samples, max clock spread %d cycles\n", m.name, len(rs.Skew), maxSpread)
		for i, s := range rs.Skew {
			if len(rs.Skew) > 12 && i%(len(rs.Skew)/12+1) != 0 {
				continue
			}
			spread := s.Max - s.Min
			bar := 1
			if maxSpread > 0 {
				bar += int(50 * spread / (maxSpread + 1))
			}
			fmt.Printf("%8.1fms |%-51s| spread %d\n",
				float64(s.Wall.Microseconds())/1000, strings.Repeat("#", bar), spread)
		}
	}
}
