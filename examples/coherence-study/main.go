// Coherence study: the Figure 9 experiment as an application of the public
// API — price options (a read-only-sharing-heavy workload) under four
// directory protocols and watch the limited directories fall behind as
// sharers exceed their pointers.
//
//	go run ./examples/coherence-study
package main

import (
	"fmt"
	"log"
	"math"

	graphite "repro"
)

// buildPricer returns a program where every worker reads a shared
// read-only parameter line for each of its options — the access pattern
// that breaks Dir_iNB once more than i tiles share the line.
func buildPricer(workers, options int) graphite.Program {
	return graphite.Program{
		Name: "pricer",
		Funcs: []graphite.ThreadFunc{
			func(t *graphite.Thread, arg uint64) {
				globals := t.Malloc(64)
				out := t.Malloc(graphite.Addr(options * 64))
				t.StoreF64(globals, 0.05)   // rate
				t.StoreF64(globals+8, 0.30) // volatility
				blk := t.Malloc(64)
				t.Store64(blk, uint64(globals))
				t.Store64(blk+8, uint64(out))
				t.Store64(blk+16, uint64(options))
				t.Store64(blk+24, uint64(workers))
				var tids []graphite.ThreadID
				for w := 1; w < workers; w++ {
					tids = append(tids, t.Spawn(1, uint64(blk)|uint64(w)<<48))
				}
				price(t, blk, 0)
				for _, tid := range tids {
					t.Join(tid)
				}
			},
			func(t *graphite.Thread, arg uint64) {
				price(t, graphite.Addr(arg&0xFFFF_FFFF_FFFF), int(arg>>48))
			},
		},
	}
}

func price(t *graphite.Thread, blk graphite.Addr, w int) {
	globals := graphite.Addr(t.Load64(blk))
	out := graphite.Addr(t.Load64(blk + 8))
	options := int(t.Load64(blk + 16))
	workers := int(t.Load64(blk + 24))
	per := (options + workers - 1) / workers
	// Several pricing passes (as PARSEC's NUM_RUNS loop does): repeated
	// re-reads of the shared globals line are what separate the
	// directory protocols.
	for run := 0; run < 8; run++ {
		for i := w * per; i < (w+1)*per && i < options; i++ {
			rate := t.LoadF64(globals)    // the heavily shared line
			vol := t.LoadF64(globals + 8) //
			spot := 50 + float64(i%97)    // deterministic inputs
			strike := 60 + float64(i%83)  //
			d1 := (math.Log(spot/strike) + (rate + vol*vol/2)) / vol
			t.Compute(graphite.FP, 200)
			t.StoreF64(out+graphite.Addr(i*64), spot*d1)
			t.Branch(true)
		}
	}
}

func main() {
	type scheme struct {
		label string
		apply func(*graphite.Config)
	}
	protocols := []scheme{
		{"Dir2NB", func(c *graphite.Config) {
			c.Coherence.Kind = graphite.LimitedNB
			c.Coherence.DirPointers = 2
		}},
		{"Dir4NB", func(c *graphite.Config) {
			c.Coherence.Kind = graphite.LimitedNB
			c.Coherence.DirPointers = 4
		}},
		{"full-map", func(c *graphite.Config) {
			c.Coherence.Kind = graphite.FullMap
		}},
		{"LimitLESS4", func(c *graphite.Config) {
			c.Coherence.Kind = graphite.LimitLESS
			c.Coherence.DirPointers = 4
			c.Coherence.TrapLatency = 100
		}},
	}

	fmt.Printf("%-12s %6s %14s %10s %12s\n", "scheme", "tiles", "sim-cycles", "speedup", "invalidations")
	for _, p := range protocols {
		var base graphite.Cycles
		for _, tiles := range []int{1, 4, 16} {
			cfg := graphite.DefaultConfig()
			cfg.Tiles = tiles
			cfg.L2.Size = 256 << 10
			cfg.L2.Assoc = 8
			p.apply(&cfg)
			rs, err := graphite.Run(cfg, buildPricer(tiles, 512), 0)
			if err != nil {
				log.Fatal(err)
			}
			if base == 0 {
				base = rs.SimulatedCycles
			}
			fmt.Printf("%-12s %6d %14d %9.2fx %12d\n",
				p.label, tiles, rs.SimulatedCycles,
				float64(base)/float64(rs.SimulatedCycles), rs.Totals.InvSent)
		}
	}
}
