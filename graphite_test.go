package graphite_test

import (
	"sync/atomic"
	"testing"

	graphite "repro"
)

func apiCfg(tiles int) graphite.Config {
	cfg := graphite.DefaultConfig()
	cfg.Tiles = tiles
	cfg.L1I = graphite.CacheConfig{Enabled: false}
	cfg.L1D = graphite.CacheConfig{Enabled: true, Size: 2 << 10, Assoc: 2, LineSize: 64, HitLatency: 1}
	cfg.L2 = graphite.CacheConfig{Enabled: true, Size: 32 << 10, Assoc: 4, LineSize: 64, HitLatency: 8}
	return cfg
}

func TestPublicRunOneShot(t *testing.T) {
	var ran atomic.Bool
	prog := graphite.Program{
		Name: "oneshot",
		Funcs: []graphite.ThreadFunc{func(th *graphite.Thread, arg uint64) {
			if arg != 7 {
				t.Errorf("arg = %d", arg)
			}
			a := th.Malloc(64)
			th.Store64(a, arg)
			if th.Load64(a) != 7 {
				t.Error("store/load roundtrip failed")
			}
			ran.Store(true)
		}},
	}
	rs, err := graphite.Run(apiCfg(2), prog, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !ran.Load() {
		t.Fatal("main never ran")
	}
	if rs.SimulatedCycles <= 0 || rs.Wall <= 0 {
		t.Fatalf("bad run stats %+v", rs)
	}
}

func TestPublicSimulatorPeekPoke(t *testing.T) {
	prog := graphite.Program{
		Name: "pp",
		Funcs: []graphite.ThreadFunc{func(th *graphite.Thread, arg uint64) {
			base := graphite.Addr(arg)
			v := th.Load64(base)
			th.Store64(base+64, v+1)
		}},
	}
	cfg := apiCfg(2)
	sim, err := graphite.New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	base := cfg.AS.StaticBase
	var in [8]byte
	in[0] = 41
	sim.Poke(base, in[:])
	if _, err := sim.Run(uint64(base)); err != nil {
		t.Fatal(err)
	}
	var out [8]byte
	sim.Peek(base+64, out[:])
	if out[0] != 42 {
		t.Fatalf("peek = %d, want 42", out[0])
	}
}

func TestPublicInvalidConfigRejected(t *testing.T) {
	cfg := apiCfg(2)
	cfg.Tiles = 0
	_, err := graphite.New(cfg, graphite.Program{Name: "x", Funcs: []graphite.ThreadFunc{func(*graphite.Thread, uint64) {}}})
	if err == nil {
		t.Fatal("invalid config accepted")
	}
	_, err = graphite.New(apiCfg(2), graphite.Program{Name: "empty"})
	if err == nil {
		t.Fatal("empty program accepted")
	}
}

func TestPublicThreadStack(t *testing.T) {
	cfg := apiCfg(4)
	prog := graphite.Program{
		Name: "stack",
		Funcs: []graphite.ThreadFunc{
			func(th *graphite.Thread, arg uint64) {
				// Each thread writes into its private stack; ranges must
				// not collide.
				b0, size := th.Stack()
				if size == 0 {
					t.Error("zero stack")
				}
				th.Store64(b0, 100)
				tid := th.Spawn(1, 0)
				th.Join(tid)
				if th.Load64(b0) != 100 {
					t.Error("stack clobbered by other thread")
				}
			},
			func(th *graphite.Thread, arg uint64) {
				b1, _ := th.Stack()
				th.Store64(b1, 200)
			},
		},
	}
	if _, err := graphite.Run(cfg, prog, 0); err != nil {
		t.Fatal(err)
	}
}

func TestPublicMessagingTimestamps(t *testing.T) {
	// A receiver that was idle must be pulled forward to the sender's
	// timestamp — the lax-sync clock forwarding on the messaging API.
	prog := graphite.Program{
		Name: "fwd",
		Funcs: []graphite.ThreadFunc{
			func(th *graphite.Thread, arg uint64) {
				tid := th.Spawn(1, 0)
				th.Compute(graphite.Arith, 100_000) // run far ahead
				th.Send(tid, []byte{1})
				th.Join(tid)
			},
			func(th *graphite.Thread, arg uint64) {
				before := th.Now()
				th.Recv()
				if th.Now() < before+50_000 {
					t.Errorf("receiver clock %d not forwarded past sender's", th.Now())
				}
			},
		},
	}
	if _, err := graphite.Run(apiCfg(2), prog, 0); err != nil {
		t.Fatal(err)
	}
}

func TestPublicConstantsDistinct(t *testing.T) {
	if graphite.Lax == graphite.LaxBarrier || graphite.LaxBarrier == graphite.LaxP2P {
		t.Fatal("sync model constants collide")
	}
	if graphite.FullMap == graphite.LimitedNB || graphite.LimitedNB == graphite.LimitLESS {
		t.Fatal("coherence constants collide")
	}
	if graphite.Arith == graphite.Mul || graphite.Div == graphite.FP {
		t.Fatal("instruction kind constants collide")
	}
	if graphite.MissCold == graphite.MissCapacity {
		t.Fatal("miss kind constants collide")
	}
}
