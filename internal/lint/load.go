package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, typechecked package ready for analysis.
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	InScope   bool
}

// listedPkg is the subset of `go list -json` output the loader uses.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Standard   bool
	Export     string
	Module     *struct{ Path, Dir string }
	DepOnly    bool
	Error      *struct{ Err string }
}

// Loader loads and typechecks module packages from source while
// resolving every external import (the standard library) from compiler
// export data produced by `go list -export`. This is the same
// resolution strategy go vet's unitchecker uses, built on the standard
// library only.
type Loader struct {
	Fset *token.FileSet
	// DetPaths marks which loaded import paths are InScope for detpure.
	DetPaths map[string]bool

	exportFiles map[string]string         // import path → export data file
	srcPkgs     map[string]*types.Package // module packages checked from source
	gcImporter  types.ImporterFrom
}

// NewLoader returns an empty loader.
func NewLoader(detPaths map[string]bool) *Loader {
	l := &Loader{
		Fset:        token.NewFileSet(),
		DetPaths:    detPaths,
		exportFiles: make(map[string]string),
		srcPkgs:     make(map[string]*types.Package),
	}
	l.gcImporter = importer.ForCompiler(l.Fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := l.exportFiles[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}).(types.ImporterFrom)
	return l
}

// Import implements types.Importer: module packages resolve to their
// source-typechecked form (dependency order guarantees they exist),
// everything else through gc export data.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.srcPkgs[path]; ok {
		return p, nil
	}
	return l.gcImporter.Import(path)
}

// goList runs `go list` in dir and decodes its JSON stream.
func goList(dir string, args ...string) ([]*listedPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, errb.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(&out)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// LoadPackages lists patterns (plus all dependencies, with export data)
// from moduleDir and typechecks every in-module, non-DepOnly match from
// source. Packages are returned in dependency order — a package's
// module dependencies precede it, which WireJSON's cross-package
// annotation registry relies on.
func (l *Loader) LoadPackages(moduleDir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"-e", "-deps", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,Standard,Export,Module,DepOnly,Error",
	}, patterns...)
	listed, err := goList(moduleDir, args...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Standard || lp.Module == nil {
			l.exportFiles[lp.ImportPath] = lp.Export
			continue
		}
		// In-module package: typecheck from source so analyzers see
		// syntax. Dependencies that matched only as deps still need
		// source checking (their types must be identical objects for
		// cross-package wire lookups), so DepOnly module packages are
		// loaded too, but not analyzed.
		pkg, err := l.checkDir(lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg.InScope = l.DetPaths[lp.ImportPath]
		if !lp.DepOnly {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// LoadDir typechecks one directory of Go files outside the normal build
// (testdata packages). Imports are resolved by listing them — with
// export data — from moduleDir. The resulting package is InScope.
func (l *Loader) LoadDir(moduleDir, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	// Parse first to discover imports, then list those for export data.
	asts, err := l.parseFiles(dir, files)
	if err != nil {
		return nil, err
	}
	imports := make(map[string]bool)
	for _, f := range asts {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			imports[p] = true
		}
	}
	var need []string
	for p := range imports {
		if _, ok := l.exportFiles[p]; !ok {
			if _, ok := l.srcPkgs[p]; !ok {
				need = append(need, p)
			}
		}
	}
	sort.Strings(need)
	if len(need) > 0 {
		listed, err := goList(moduleDir, append([]string{
			"-e", "-deps", "-export",
			"-json=ImportPath,Name,Dir,GoFiles,Standard,Export,Module,DepOnly,Error",
		}, need...)...)
		if err != nil {
			return nil, err
		}
		for _, lp := range listed {
			if lp.Error != nil {
				return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
			}
			if lp.Standard || lp.Module == nil {
				l.exportFiles[lp.ImportPath] = lp.Export
				continue
			}
			if _, err := l.checkDir(lp.ImportPath, lp.Dir, lp.GoFiles); err != nil {
				return nil, err
			}
		}
	}
	pkg, err := l.check(filepath.ToSlash(dir), asts)
	if err != nil {
		return nil, err
	}
	pkg.InScope = true
	return pkg, nil
}

func (l *Loader) parseFiles(dir string, names []string) ([]*ast.File, error) {
	var asts []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
	}
	return asts, nil
}

func (l *Loader) checkDir(importPath, dir string, goFiles []string) (*Package, error) {
	asts, err := l.parseFiles(dir, goFiles)
	if err != nil {
		return nil, err
	}
	pkg, err := l.check(importPath, asts)
	if err != nil {
		return nil, err
	}
	l.srcPkgs[importPath] = pkg.Types
	return pkg, nil
}

// check typechecks parsed files as one package.
func (l *Loader) check(importPath string, asts []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(importPath, l.Fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %v", importPath, err)
	}
	return &Package{
		Path:      importPath,
		Fset:      l.Fset,
		Files:     asts,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// CheckUnit typechecks one go vet unit: the package's own source files
// plus compiler export data for every import, as described by the vet
// config's ImportMap/PackageFile tables. This is how the suite runs
// under `go vet -vettool=graphite-lint`.
func CheckUnit(importPath string, goFiles []string, importMap, packageFile map[string]string, detPaths map[string]bool) (*Package, error) {
	l := NewLoader(detPaths)
	// Resolve vet's two-level mapping: source import path → canonical
	// path → export file.
	l.gcImporter = importer.ForCompiler(l.Fset, "gc", func(path string) (io.ReadCloser, error) {
		if c, ok := importMap[path]; ok {
			path = c
		}
		f, ok := packageFile[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}).(types.ImporterFrom)
	var asts []*ast.File
	for _, f := range goFiles {
		parsed, err := parser.ParseFile(l.Fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, parsed)
	}
	pkg, err := l.check(importPath, asts)
	if err != nil {
		return nil, err
	}
	pkg.InScope = detPaths[importPath]
	return pkg, nil
}

// ModuleInfo reports the module path and root directory that contain
// dir, via `go env`/`go list -m`.
func ModuleInfo(dir string) (path, root string, err error) {
	cmd := exec.Command("go", "list", "-m", "-json")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", "", fmt.Errorf("go list -m: %v", err)
	}
	var m struct{ Path, Dir string }
	if err := json.Unmarshal(out, &m); err != nil {
		return "", "", err
	}
	return m.Path, m.Dir, nil
}
