package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// snakeCase is the wire field-name grammar: lowercase snake_case,
// starting with a letter.
var snakeCase = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// jsonOptions are the tag options the wire schema permits.
var jsonOptions = map[string]bool{"omitempty": true, "string": true}

// WireJSON builds the wirejson analyzer. A struct whose type
// declaration carries //graphite:wire is a wire type: part of a
// persisted or transmitted schema (JSONL records, dispatch frames, the
// service's v1 API, record-cache envelopes). Every field must carry an
// explicit snake_case `json` tag (or `json:"-"`), so no field ever
// falls back to its Go name — renaming a Go field must never silently
// rename a wire field. Named struct types reachable from a wire field
// must themselves be wire types (annotation is transitive), or carry
// //graphite:wireexempt <why> on the field — the documented escape
// hatch for types whose schema is frozen by other means.
//
// Each wire struct's flattened schema is also registered with the
// suite's Schema collector; cmd/graphite-lint compares the collected
// schema against internal/lint/testdata/wire_schema.lock, so any
// wire-schema change must ship an explicit lock update in the same
// diff.
func WireJSON(s *Suite) *Analyzer {
	a := &Analyzer{
		Name: "wirejson",
		Doc:  "require explicit snake_case json tags on //graphite:wire structs and lock the flattened schema",
	}
	a.Run = func(pass *Pass) {
		// Collect this package's wire types first so intra-package
		// references resolve regardless of declaration order.
		type wireDecl struct {
			file *ast.File
			spec *ast.TypeSpec
			st   *ast.StructType
			obj  types.Object
		}
		var decls []wireDecl
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					_, onType := docDirective(ts.Doc, "wire")
					_, onDecl := docDirective(gd.Doc, "wire")
					if !onType && !(onDecl && len(gd.Specs) == 1) {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						pass.Reportf(ts.Pos(), "//graphite:wire applies to struct types only")
						continue
					}
					obj := pass.TypesInfo.Defs[ts.Name]
					if obj == nil {
						continue
					}
					s.wireTypes[obj] = true
					decls = append(decls, wireDecl{file: f, spec: ts, st: st, obj: obj})
				}
			}
		}
		for _, d := range decls {
			pass.checkWireStruct(d.file, d.spec, d.st, d.obj)
		}
	}
	return a
}

func (p *Pass) checkWireStruct(file *ast.File, ts *ast.TypeSpec, st *ast.StructType, obj types.Object) {
	typeName := p.Pkg.Path() + "." + ts.Name.Name
	for _, field := range st.Fields.List {
		jsonName, opts, ok := p.checkFieldTag(file, ts, field)
		p.checkFieldType(file, field)
		// Schema registration: skip json:"-" fields and fields whose
		// tag is missing/invalid (they already produced a finding; a
		// missing tag must not silently enter the lock under its Go
		// name).
		if !ok || jsonName == "-" {
			continue
		}
		for _, name := range fieldNames(field) {
			ft := p.TypesInfo.Types[field.Type].Type
			p.suite.Schema.add(typeName, jsonName, typeString(ft), opts, name)
		}
	}
}

// fieldNames returns the declared names of a field (several for
// `A, B int`), or the embedded type's name.
func fieldNames(field *ast.Field) []string {
	if len(field.Names) == 0 {
		return []string{"(embedded)"}
	}
	var out []string
	for _, n := range field.Names {
		out = append(out, n.Name)
	}
	return out
}

// checkFieldTag enforces the tag grammar and returns the wire name.
func (p *Pass) checkFieldTag(file *ast.File, ts *ast.TypeSpec, field *ast.Field) (jsonName string, opts []string, ok bool) {
	embedded := len(field.Names) == 0
	var tag reflect.StructTag
	if field.Tag != nil {
		raw, err := strconv.Unquote(field.Tag.Value)
		if err == nil {
			tag = reflect.StructTag(raw)
		}
	}
	val, has := tag.Lookup("json")
	if !has {
		if embedded {
			// An untagged embedded wire struct flattens — that is the
			// intended composition pattern and the embedded type's own
			// fields carry the schema.
			return "", nil, false
		}
		p.Reportf(field.Pos(), "wire type %s: field %s has no json tag; every wire field needs an explicit snake_case name", ts.Name.Name, strings.Join(fieldNames(field), ", "))
		return "", nil, false
	}
	parts := strings.Split(val, ",")
	jsonName = parts[0]
	opts = parts[1:]
	if jsonName == "-" && len(opts) == 0 {
		return "-", nil, true
	}
	if jsonName == "" {
		p.Reportf(field.Pos(), "wire type %s: field %s has a json tag with no name (falls back to the Go name)", ts.Name.Name, strings.Join(fieldNames(field), ", "))
		return "", nil, false
	}
	if !snakeCase.MatchString(jsonName) {
		p.Reportf(field.Pos(), "wire type %s: json name %q is not snake_case", ts.Name.Name, jsonName)
		return "", nil, false
	}
	for _, o := range opts {
		if !jsonOptions[o] {
			p.Reportf(field.Pos(), "wire type %s: json option %q is not in the wire grammar (omitempty, string)", ts.Name.Name, o)
			return "", nil, false
		}
	}
	return jsonName, opts, true
}

// checkFieldType enforces wire transitivity: a named struct type
// reachable through the field's type (under pointers, slices, arrays,
// and map values) that belongs to this build must itself be a wire
// type, unless the field carries //graphite:wireexempt <why>.
func (p *Pass) checkFieldType(file *ast.File, field *ast.Field) {
	named := findNamedStruct(p.TypesInfo.Types[field.Type].Type, 0)
	if named == nil {
		return
	}
	obj := named.Obj()
	if p.suite.wireTypes[obj] {
		return
	}
	if !p.suite.inModule(obj.Pkg(), p.Pkg) {
		return // stdlib/external types cannot carry annotations
	}
	if obj.Pkg() != p.Pkg && !p.suite.CrossPackage {
		return // per-package (vettool) mode: other packages' wire marks are invisible here
	}
	p.reportUnlessSuppressed(file, nil, field.Pos(), "wireexempt",
		"field type %s.%s is not a //graphite:wire struct; wire schemas must be wire all the way down (annotate the type, or //graphite:wireexempt <why> here)",
		obj.Pkg().Name(), obj.Name())
}

// inModule reports whether pkg belongs to the module under analysis
// (same package, or under the configured module path).
func (s *Suite) inModule(pkg *types.Package, current *types.Package) bool {
	if pkg == nil {
		return false
	}
	if pkg == current {
		return true
	}
	if s.ModulePath == "" {
		return false
	}
	return pkg.Path() == s.ModulePath || strings.HasPrefix(pkg.Path(), s.ModulePath+"/")
}

// findNamedStruct walks composite type structure to the first named
// struct type, or nil.
func findNamedStruct(t types.Type, depth int) *types.Named {
	if t == nil || depth > 8 {
		return nil
	}
	switch t := t.(type) {
	case *types.Named:
		if _, ok := t.Underlying().(*types.Struct); ok {
			return t
		}
		return nil
	case *types.Pointer:
		return findNamedStruct(t.Elem(), depth+1)
	case *types.Slice:
		return findNamedStruct(t.Elem(), depth+1)
	case *types.Array:
		return findNamedStruct(t.Elem(), depth+1)
	case *types.Map:
		return findNamedStruct(t.Elem(), depth+1)
	}
	return nil
}

// typeString renders a type with full package paths, so the schema lock
// is unambiguous and stable under import renaming.
func typeString(t types.Type) string {
	if t == nil {
		return "?"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Path() })
}

// Schema accumulates the flattened wire schema across every analyzed
// package.
type Schema struct {
	lines map[string]bool
}

// NewSchema returns an empty collector.
func NewSchema() *Schema { return &Schema{lines: make(map[string]bool)} }

func (s *Schema) add(typeName, jsonName, goType string, opts []string, fieldName string) {
	opt := ""
	if len(opts) > 0 {
		opt = "," + strings.Join(opts, ",")
	}
	s.lines[fmt.Sprintf("%s\t%s%s\t%s\t%s", typeName, jsonName, opt, fieldName, goType)] = true
}

// schemaHeader documents the lock file in place.
const schemaHeader = `# graphite wire schema lock — the flattened schema of every
# //graphite:wire struct. A wire-breaking change must update this file
# in the same diff: regenerate with
#   go run ./cmd/graphite-lint -write-schema-lock ./...
# Columns: type, json name[,options], Go field, Go type.`

// Render returns the canonical lock-file content: header plus sorted
// entries.
func (s *Schema) Render() string {
	keys := make([]string, 0, len(s.lines))
	for k := range s.lines {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return schemaHeader + "\n" + strings.Join(keys, "\n") + "\n"
}

// Diff compares the collected schema against lock-file content and
// returns a human-readable summary of the differences ("" if equal).
// Header/comment lines are ignored on the lock side.
func (s *Schema) Diff(lock string) string {
	want := make(map[string]bool)
	for _, line := range strings.Split(lock, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		want[line] = true
	}
	var missing, extra []string
	for k := range s.lines {
		if !want[k] {
			extra = append(extra, k)
		}
	}
	for k := range want {
		if !s.lines[k] {
			missing = append(missing, k)
		}
	}
	if len(missing) == 0 && len(extra) == 0 {
		return ""
	}
	sort.Strings(missing)
	sort.Strings(extra)
	var b strings.Builder
	b.WriteString("wire schema drifted from the committed lock file:\n")
	for _, k := range extra {
		fmt.Fprintf(&b, "  + %s\n", strings.ReplaceAll(k, "\t", " "))
	}
	for _, k := range missing {
		fmt.Fprintf(&b, "  - %s\n", strings.ReplaceAll(k, "\t", " "))
	}
	b.WriteString("  (intentional? regenerate: go run ./cmd/graphite-lint -write-schema-lock ./...)")
	return b.String()
}
