package lint

import (
	"go/ast"
	"go/types"
)

// wallclockFuncs are the time-package entry points that observe or
// depend on the host's wall clock. Any of them inside the determinism
// boundary makes simulated results a function of host speed — the
// failure class the byte-identical-checksum CI gates exist to catch.
// time.Sleep is included: sleeping is wall-clock *pacing* (legitimate
// only in LaxP2P's annotated nap path), never a result input.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
	"Sleep": true,
}

// randConstructors are the math/rand entry points that build an
// explicitly seeded, locally owned generator — the deterministic
// pattern the models are supposed to use. Everything else at package
// level (Intn, Float64, Shuffle, …) draws from the process-global
// source, whose state depends on every other draw in the process.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 spellings.
	"NewPCG": true, "NewChaCha8": true,
}

// DetPure builds the detpure analyzer: inside the determinism boundary
// (Pass.InScope), wall-clock reads, global math/rand state, and
// map-order-dependent iteration are findings unless annotated.
//
//	//graphite:wallclock <why>  on the enclosing function or the line
//	//graphite:maporder <why>   on the range statement or enclosing function
func DetPure(s *Suite) *Analyzer {
	a := &Analyzer{
		Name: "detpure",
		Doc:  "forbid wall-clock, global math/rand, and unordered map iteration in simulation packages",
	}
	a.Run = func(pass *Pass) {
		if !pass.InScope {
			return
		}
		for _, f := range pass.Files {
			file := f
			walkWithStack(file, func(n ast.Node, stack []ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					pass.checkTimeRandRef(file, n, stack)
				case *ast.RangeStmt:
					pass.checkMapRange(file, n, stack)
				}
				return true
			})
		}
	}
	return a
}

// checkTimeRandRef flags references (calls or function values — an
// un-annotated `nowFn: time.Now` is just as impure) to wall-clock and
// global-rand functions.
func (p *Pass) checkTimeRandRef(file *ast.File, sel *ast.SelectorExpr, stack []ast.Node) {
	obj := p.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	fn, isFunc := obj.(*types.Func)
	if isFunc && fn.Type().(*types.Signature).Recv() != nil {
		// Methods are pure relative to their receiver: time.Time.After
		// compares two timestamps the caller already holds, and a
		// (*rand.Rand).Intn draw is deterministic given the seed that
		// built the generator. Only package-level entry points reach
		// host state.
		return
	}
	doc := enclosingFuncDoc(stack)
	switch obj.Pkg().Path() {
	case "time":
		if wallclockFuncs[obj.Name()] {
			p.reportUnlessSuppressed(file, doc, sel.Pos(), "wallclock",
				"time.%s observes the host wall clock inside a simulation package; inject a nowFn or annotate //graphite:wallclock <why>", obj.Name())
		}
	case "math/rand", "math/rand/v2":
		if !isFunc {
			return // types (rand.Rand, rand.Source) are fine
		}
		if randConstructors[obj.Name()] {
			return // building a locally seeded generator is the approved pattern
		}
		p.reportUnlessSuppressed(file, doc, sel.Pos(), "wallclock",
			"rand.%s draws from the process-global generator inside a simulation package; use a per-model seeded rand.New/splitmix64 or annotate //graphite:wallclock <why>", obj.Name())
	}
}

// checkMapRange flags `for … range m` where m is a map: Go randomizes
// the order, so any order-sensitive use makes results host-run
// dependent. Order-insensitive iterations (commutative accumulation,
// set draining into a sort) carry //graphite:maporder <why>.
func (p *Pass) checkMapRange(file *ast.File, rng *ast.RangeStmt, stack []ast.Node) {
	tv, ok := p.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	doc := enclosingFuncDoc(stack)
	p.reportUnlessSuppressed(file, doc, rng.Pos(), "maporder",
		"map iteration order is randomized; prove it cannot affect simulated results with //graphite:maporder <why> (or iterate a sorted slice)")
}
