// Package wirejson is the graphite-lint golden corpus for the wirejson
// analyzer: explicit snake_case json tags on //graphite:wire structs,
// transitive wire annotation, and the documented exemption.
package wirejson

// Good is a fully tagged wire struct: no findings.
//
//graphite:wire
type Good struct {
	Name    string `json:"name"`
	Count   int    `json:"count,omitempty"`
	Stringy uint64 `json:"stringy,string"`
	Skipped string `json:"-"`
	Inner   Nested `json:"inner"`
}

// Nested is wire, so Good's reference to it is legal.
//
//graphite:wire
type Nested struct {
	Value uint64 `json:"value"`
}

// Composed embeds a wire struct untagged: the intended flattening
// composition pattern, no finding.
//
//graphite:wire
type Composed struct {
	Nested
	Extra int `json:"extra"`
}

// Bad gathers one instance of each tag-grammar violation.
//
//graphite:wire
type Bad struct {
	Untagged int      // want `wirejson: wire type Bad: field Untagged has no json tag`
	Unnamed  int      `json:""`          // want `wirejson: wire type Bad: field Unnamed has a json tag with no name`
	Camel    int      `json:"camelCase"` // want `wirejson: wire type Bad: json name "camelCase" is not snake_case`
	BadOpt   int      `json:"x,weird"`   // want `wirejson: wire type Bad: json option "weird" is not in the wire grammar`
	Plain    unfrozen `json:"plain"`     // want `wirejson: field type wirejson\.unfrozen is not a //graphite:wire struct`
	Exempt   unfrozen `json:"exempt"`    //graphite:wireexempt golden for the escape hatch: this type's schema is frozen by other means
}

// unfrozen is a named struct with no wire annotation, referenced by Bad
// both with and without an exemption.
type unfrozen struct {
	X int `json:"x"`
}

// NotStruct shows the directive is rejected on non-struct types.
//
//graphite:wire
type NotStruct int // want `wirejson: //graphite:wire applies to struct types only`
