// Package detpure is the graphite-lint golden corpus for the detpure
// analyzer: wall-clock reads, global math/rand draws, and unordered map
// iteration inside the determinism boundary.
package detpure

import (
	"math/rand"
	"sort"
	"time"
)

// wallNow makes the simulated result a function of host time.
func wallNow() int64 {
	return time.Now().UnixNano() // want `detpure: time\.Now observes the host wall clock`
}

// nowFn shows a stored function value is as impure as a call.
var nowFn = time.Now // want `detpure: time\.Now observes the host wall clock`

// napBad paces on the host clock without a justification.
func napBad() {
	time.Sleep(time.Millisecond) // want `detpure: time\.Sleep observes the host wall clock`
}

// napAnnotated carries the justification on the function.
//
//graphite:wallclock pacing only: the nap throttles host speed and never feeds a simulated clock
func napAnnotated() {
	time.Sleep(time.Millisecond)
}

// napEmptyJustification shows an empty justification is itself a
// finding: every suppression must document itself.
func napEmptyJustification() {
	time.Sleep(time.Millisecond) /* want `detpure: //graphite:wallclock requires a justification` */ //graphite:wallclock
}

// methodsAreFine: time.Time methods compare values the caller already
// holds — only package-level entry points reach host state.
func methodsAreFine(a, b time.Time) bool {
	return a.After(b) && a.Sub(b) > 0
}

// drawGlobal draws from the process-global generator.
func drawGlobal() int {
	return rand.Intn(6) // want `detpure: rand\.Intn draws from the process-global generator`
}

// drawSeeded builds a locally seeded generator — the approved pattern;
// its method draws are deterministic given the seed.
func drawSeeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// sumUnordered iterates a map with no proof of order-insensitivity.
func sumUnordered(m map[int]int) int {
	total := 0
	for _, v := range m { // want `detpure: map iteration order is randomized`
		total += v
	}
	return total
}

// sortedKeys drains into a sort, annotated with the why.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	//graphite:maporder drained into sort.Strings below; iteration order cannot survive the sort
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// sliceRange ranges a slice: deterministic, no finding.
func sliceRange(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}
