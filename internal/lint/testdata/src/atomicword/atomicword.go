// Package atomicword is the graphite-lint golden corpus for the
// atomicword analyzer: a struct field whose address reaches a
// sync/atomic function must never be accessed plainly.
package atomicword

import "sync/atomic"

// gate mixes atomic and plain access to its state word.
type gate struct {
	state uint32
	plain uint32
}

// open publishes through the CAS protocol: this access marks state as
// an atomic word for the whole package.
func (g *gate) open() bool {
	return atomic.CompareAndSwapUint32(&g.state, 0, 1)
}

// load is a second atomic access: fine.
func (g *gate) load() uint32 {
	return atomic.LoadUint32(&g.state)
}

// peek reads the same word plainly — the unordered mixed access the
// analyzer exists to catch.
func (g *gate) peek() uint32 {
	return g.state // want `atomicword: field state is accessed with sync/atomic elsewhere`
}

// reset writes plainly but is justified: the value is unpublished.
func newGate() *gate {
	g := &gate{}
	g.state = 0 //graphite:nonatomic construction: g has not been published to any other goroutine yet
	return g
}

// bump touches a field no atomic call ever names: no finding.
func (g *gate) bump() uint32 {
	g.plain++
	return g.plain
}
