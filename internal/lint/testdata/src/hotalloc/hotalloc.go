// Package hotalloc is the graphite-lint golden corpus for the hotalloc
// analyzer: allocating constructs inside //graphite:hotpath functions.
package hotalloc

// point exists so escaping composite literals have a type.
type point struct{ x, y int }

// hotConstructs collects one instance of each flagged construct.
//
//graphite:hotpath
func hotConstructs(n int, s string) int {
	buf := make([]byte, n) // want `hotalloc: make allocates in a hot path`
	p := new(int)          // want `hotalloc: new allocates in a hot path`
	var xs []int
	xs = append(xs, n) // want `hotalloc: append may grow its backing array`
	b := []byte(s)     // want `hotalloc: string/slice conversion copies and allocates`
	s2 := s + "!"      // want `hotalloc: string concatenation allocates`
	go drain()         // want `hotalloc: go statement allocates a goroutine`
	return len(buf) + *p + len(xs) + len(b) + len(s2)
}

// hotEscape returns a pointer to a literal: it escapes to the heap.
//
//graphite:hotpath
func hotEscape() *point {
	return &point{1, 2} // want `hotalloc: &composite literal escapes`
}

// hotLiterals: slice and map literals allocate their backing store.
//
//graphite:hotpath
func hotLiterals() int {
	xs := []int{1, 2, 3}        // want `hotalloc: slice literal allocates`
	m := map[string]int{"a": 1} // want `hotalloc: map literal allocates`
	return len(xs) + len(m)
}

// hotClosure captures n, so the closure's context heap-allocates.
//
//graphite:hotpath
func hotClosure(n int) func() int {
	f := func() int { return n } // want `hotalloc: closure capturing "n" allocates`
	return f
}

// hotBoxing assigns a bare int where an interface is expected.
//
//graphite:hotpath
func hotBoxing(n int) any {
	var out any
	out = n // want `hotalloc: value of type int boxed into interface`
	return out
}

// hotSuppressed grows a caller-owned buffer: the justified escape hatch.
//
//graphite:hotpath
func hotSuppressed(buf []byte, n int) []byte {
	if cap(buf) < n {
		buf = make([]byte, n) //graphite:alloc growth path: amortized by caller buffer reuse across calls
	}
	return buf[:n]
}

// hotClean allocates nothing: zero findings.
//
//graphite:hotpath
func hotClean(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}

// coldAllocs is not annotated, so the analyzer ignores it entirely.
func coldAllocs(n int) []int {
	return make([]int, n)
}

// drain is the target of the go statement above.
func drain() {}
