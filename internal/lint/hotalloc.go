package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc builds the hotalloc analyzer: a function whose doc comment
// carries //graphite:hotpath must not contain allocating constructs.
// The check is intraprocedural and syntactic-plus-types — it does not
// run escape analysis, so it flags constructs that *may* allocate
// (append can reuse capacity, a boxed small int may hit the runtime
// cache). That asymmetry is deliberate: the dynamic zero-alloc tests
// (TestHitPathZeroAllocAt256Tiles) prove one execution clean, this
// analyzer proves no unexercised branch can regress it; a provably cold
// or capacity-safe construct carries //graphite:alloc <why> on its
// line.
//
// Flagged constructs: make, new, &composite / slice / map literals,
// append, capturing closures, go statements, string concatenation,
// string<->[]byte/[]rune conversions, and value-to-interface boxing
// (passing or assigning a non-pointer-shaped concrete value where an
// interface is expected).
func HotAlloc(s *Suite) *Analyzer {
	a := &Analyzer{
		Name: "hotalloc",
		Doc:  "forbid allocating constructs in //graphite:hotpath functions",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if _, ok := docDirective(fd.Doc, "hotpath"); !ok {
					continue
				}
				pass.checkHotBody(f, fd)
			}
		}
	}
	return a
}

func (p *Pass) checkHotBody(file *ast.File, fd *ast.FuncDecl) {
	report := func(pos token.Pos, format string, args ...any) {
		p.reportUnlessSuppressed(file, nil, pos, "alloc", format, args...)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			p.checkHotCall(n, report)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite literal escapes to the heap in a hot path")
				}
			}
		case *ast.CompositeLit:
			if tv, ok := p.TypesInfo.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					report(n.Pos(), "slice literal allocates in a hot path")
				case *types.Map:
					report(n.Pos(), "map literal allocates in a hot path")
				}
			}
		case *ast.FuncLit:
			if free := p.capturedVar(n); free != "" {
				report(n.Pos(), "closure capturing %q allocates in a hot path", free)
			}
		case *ast.GoStmt:
			report(n.Pos(), "go statement allocates a goroutine in a hot path")
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := p.TypesInfo.Types[n]; ok && isString(tv.Type.Underlying()) {
					report(n.Pos(), "string concatenation allocates in a hot path")
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					if lt, ok := p.TypesInfo.Types[n.Lhs[i]]; ok {
						p.checkBoxing(rhs, lt.Type, report)
					}
				}
			}
		case *ast.ReturnStmt:
			p.checkReturnBoxing(fd, n, report)
		}
		return true
	})
}

func (p *Pass) checkHotCall(call *ast.CallExpr, report func(pos token.Pos, format string, args ...any)) {
	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := p.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				report(call.Pos(), "make allocates in a hot path")
			case "new":
				report(call.Pos(), "new allocates in a hot path")
			case "append":
				report(call.Pos(), "append may grow its backing array in a hot path")
			}
			return
		}
	}
	// Conversion expressions.
	if tv, ok := p.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type.Underlying()
		if from, ok := p.TypesInfo.Types[call.Args[0]]; ok {
			fromU := from.Type.Underlying()
			if (isString(to) && isByteOrRuneSlice(fromU)) ||
				(isByteOrRuneSlice(to) && isString(fromU)) {
				report(call.Pos(), "string/slice conversion copies and allocates in a hot path")
			}
			p.checkBoxing(call.Args[0], tv.Type, report)
		}
		return
	}
	// Ordinary call: arguments assigned to interface parameters box.
	tv, ok := p.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through whole, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		p.checkBoxing(arg, pt, report)
	}
}

// checkReturnBoxing flags returns that box a concrete value into an
// interface result.
func (p *Pass) checkReturnBoxing(fd *ast.FuncDecl, ret *ast.ReturnStmt, report func(pos token.Pos, format string, args ...any)) {
	def := p.TypesInfo.Defs[fd.Name]
	if def == nil {
		return
	}
	sig, ok := def.Type().(*types.Signature)
	if !ok || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, r := range ret.Results {
		p.checkBoxing(r, sig.Results().At(i).Type(), report)
	}
}

// checkBoxing reports expr if assigning it to target converts a
// non-pointer-shaped concrete value into an interface — that conversion
// heap-allocates the value's box.
func (p *Pass) checkBoxing(expr ast.Expr, target types.Type, report func(pos token.Pos, format string, args ...any)) {
	if target == nil {
		return
	}
	if _, isIface := target.Underlying().(*types.Interface); !isIface {
		return
	}
	tv, ok := p.TypesInfo.Types[expr]
	if !ok || tv.Type == nil || tv.IsNil() {
		return
	}
	switch u := tv.Type.Underlying().(type) {
	case *types.Interface:
		return // interface-to-interface, no box
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: fits the interface data word directly
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return
		}
	}
	report(expr.Pos(), "value of type %s boxed into interface %s allocates in a hot path",
		tv.Type.String(), target.String())
}

// capturedVar returns the name of one variable the func literal
// captures from an enclosing scope, or "" if it captures nothing (a
// capture-free literal compiles to a static function — no allocation).
func (p *Pass) capturedVar(fl *ast.FuncLit) string {
	captured := ""
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := p.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.IsField() || obj.Pkg() == nil {
			return true
		}
		// A variable declared outside the literal but inside some
		// function (not a package-level var) is a capture.
		if obj.Parent() == nil || obj.Parent() == types.Universe {
			return true
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return true // package-level var: static reference
		}
		if obj.Pos() < fl.Pos() || obj.Pos() > fl.End() {
			captured = obj.Name()
			return false
		}
		return true
	})
	return captured
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
