// Package lint is graphite's custom static-analysis suite: four
// analyzers that machine-check invariants the simulator's correctness
// story otherwise rests on prose and dynamic tests for.
//
//   - detpure: simulation packages must not consult wall-clock time or
//     the global math/rand state, and must not iterate maps unless the
//     iteration is declared order-insensitive. This is the static side
//     of the byte-identical-checksum CI gates: a time.Now or map-order
//     dependence in a model is exactly the kind of bug those gates
//     catch only after an expensive repro run.
//   - hotalloc: functions annotated //graphite:hotpath must not contain
//     allocating constructs. The static complement of the
//     AllocsPerRun-based tests (TestHitPathZeroAllocAt256Tiles): those
//     prove one execution allocation-free, this proves the code can't
//     grow an allocation on an unexercised branch.
//   - atomicword: a struct field ever passed to a sync/atomic function
//     must never be read or written plainly. DESIGN.md §13/§16 argue
//     this by hand for the ownership and clock words; the analyzer
//     keeps the argument true under refactoring.
//   - wirejson: structs annotated //graphite:wire (records, protocol
//     frames, API documents) must carry explicit snake_case json tags
//     on every field, and the flattened schema must match a committed
//     lock file, so wire-breaking changes are visible in the diff.
//
// The analyzers run from cmd/graphite-lint (standalone over ./..., or
// as a go vet -vettool). They are deliberately built on the standard
// library only (go/ast, go/types, go list): the repository vendors no
// third-party analysis framework.
//
// # Annotation grammar
//
// Annotations are //graphite: directive comments (no space after //,
// like //go: directives). Directives that suppress a diagnostic require
// a justification — the rest of the comment line — and the analyzers
// reject an empty one, so every suppression in the tree documents
// itself. A directive attaches to the declaration whose doc comment it
// appears in, or to the statement on (or immediately below) its line.
//
//	//graphite:wallclock <why>  permit wall-clock/global-rand use
//	//graphite:maporder <why>   permit a map iteration (order-insensitive)
//	//graphite:hotpath          mark a function as an allocation-free hot path
//	//graphite:alloc <why>      permit one allocating construct in a hot path
//	//graphite:nonatomic <why>  permit a plain access to an atomic word
//	//graphite:wire             mark a struct as a wire/record type
//	//graphite:wireexempt <why> permit a non-wire field type in a wire struct
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one named check. This mirrors the shape of
// golang.org/x/tools/go/analysis without importing it.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass carries one package through one analyzer.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// InScope marks the package as belonging to the determinism boundary
	// (the simulation packages detpure patrols). The driver derives it
	// from the import path; test loads force it on.
	InScope bool

	suite      *Suite
	analyzer   *Analyzer
	directives map[*ast.File]map[int]*directive
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.suite.diags = append(p.suite.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Suite is one configured set of analyzers sharing a wire-schema
// collector. Analyzer closures report through the suite, so a Suite is
// good for one Run over one package set.
type Suite struct {
	Analyzers []*Analyzer
	// Schema accumulates the flattened wire schema across packages; the
	// driver compares it against the committed lock file after all
	// packages ran.
	Schema *Schema

	// DetPaths are the import paths detpure patrols. Loaded test
	// packages are always in scope regardless.
	DetPaths map[string]bool
	// ModulePath scopes wirejson's transitivity rule: only types inside
	// this module can be required to carry //graphite:wire (external
	// types cannot be annotated). Empty limits the rule to same-package
	// types (the test loader's mode).
	ModulePath string
	// CrossPackage is true when the suite sees every module package in
	// one run (the standalone driver and the in-process tests). The vet
	// tool protocol analyzes one package per process, so wire
	// registrations from other packages are unavailable there and the
	// transitivity rule applies to same-package types only.
	CrossPackage bool

	wireTypes map[types.Object]bool
	diags     []Diagnostic
}

// DefaultDetPaths returns the determinism boundary of this repository:
// every package whose computation feeds simulated results. Host
// lifecycle (core/launch), transport plumbing, the service daemon, and
// CLIs measure wall time legitimately and stay outside; experiments and
// scenario/dispatch are inside because their output is the reproducible
// record stream (their intentional wall-clock uses carry annotations).
func DefaultDetPaths(module string) map[string]bool {
	m := make(map[string]bool)
	for _, p := range []string{
		"clock", "core", "memsys", "directory", "network", "synchro",
		"queuemodel", "coremodel", "mcp", "workloads",
		"experiments", "scenario", "scenario/dispatch",
	} {
		m[module+"/internal/"+p] = true
	}
	return m
}

// NewSuite builds the standard four-analyzer suite.
func NewSuite(detPaths map[string]bool) *Suite {
	s := &Suite{
		Schema:    NewSchema(),
		DetPaths:  detPaths,
		wireTypes: make(map[types.Object]bool),
	}
	s.Analyzers = []*Analyzer{
		DetPure(s),
		HotAlloc(s),
		AtomicWord(s),
		WireJSON(s),
	}
	return s
}

// Diagnostics returns the findings accumulated so far, in report order.
func (s *Suite) Diagnostics() []Diagnostic { return s.diags }

// RunPackage runs every analyzer of the suite over one loaded package.
func (s *Suite) RunPackage(pkg *Package) {
	for _, a := range s.Analyzers {
		pass := &Pass{
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			InScope:   pkg.InScope,
			suite:     s,
			analyzer:  a,
		}
		pass.indexDirectives()
		a.Run(pass)
	}
}

// directive is one parsed //graphite: comment.
type directive struct {
	name string // e.g. "wallclock"
	arg  string // justification / remainder of the line
	line int    // line the comment appears on
	pos  token.Pos
}

const directivePrefix = "//graphite:"

// parseDirective parses one comment line; ok is false for ordinary
// comments.
func parseDirective(c *ast.Comment) (directive, bool) {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return directive{}, false
	}
	rest := strings.TrimPrefix(c.Text, directivePrefix)
	name, arg, _ := strings.Cut(rest, " ")
	return directive{name: name, arg: strings.TrimSpace(arg), pos: c.Pos()}, true
}

// indexDirectives builds, per file, a line → directive map. A directive
// on its own line covers the next non-comment line too, so both
//
//	//graphite:maporder order-insensitive: counters are summed
//	for k := range m { ... }
//
// and a trailing comment on the statement's own line attach.
func (p *Pass) indexDirectives() {
	p.directives = make(map[*ast.File]map[int]*directive)
	for _, f := range p.Files {
		idx := make(map[int]*directive)
		for _, g := range f.Comments {
			for _, c := range g.List {
				d, ok := parseDirective(c)
				if !ok {
					continue
				}
				d.line = p.Fset.Position(c.Pos()).Line
				dd := d
				idx[d.line] = &dd
			}
		}
		p.directives[f] = idx
	}
}

// directiveAt finds a directive named name attached to the line of pos:
// on the same line, or on the line directly above (a comment of its
// own). justified reports whether the directive carried the required
// justification text; analyzers treat an unjustified directive as a
// finding of its own.
func (p *Pass) directiveAt(f *ast.File, pos token.Pos, name string) (d *directive, ok bool) {
	idx := p.directives[f]
	if idx == nil {
		return nil, false
	}
	line := p.Fset.Position(pos).Line
	if d := idx[line]; d != nil && d.name == name {
		return d, true
	}
	if d := idx[line-1]; d != nil && d.name == name {
		return d, true
	}
	return nil, false
}

// docDirective finds a directive in a doc comment group.
func docDirective(doc *ast.CommentGroup, name string) (*directive, bool) {
	if doc == nil {
		return nil, false
	}
	for _, c := range doc.List {
		if d, ok := parseDirective(c); ok && d.name == name {
			return &d, true
		}
	}
	return nil, false
}

// suppressed reports whether a finding at pos (inside file f, within the
// function whose doc is fnDoc) is covered by a justification-carrying
// directive of the given name. An empty justification does not
// suppress; the caller reports it as its own finding via the returned
// directive.
func (p *Pass) suppressed(f *ast.File, fnDoc *ast.CommentGroup, pos token.Pos, name string) (*directive, bool) {
	if d, ok := docDirective(fnDoc, name); ok {
		return d, d.arg != ""
	}
	if d, ok := p.directiveAt(f, pos, name); ok {
		return d, d.arg != ""
	}
	return nil, false
}

// reportUnlessSuppressed reports the finding unless an annotation with a
// non-empty justification covers it; an annotation with an EMPTY
// justification is reported as a violation of the annotation grammar
// (every suppression must document itself).
func (p *Pass) reportUnlessSuppressed(f *ast.File, fnDoc *ast.CommentGroup, pos token.Pos, name, format string, args ...any) {
	d, ok := p.suppressed(f, fnDoc, pos, name)
	if ok {
		return
	}
	if d != nil {
		p.Reportf(d.pos, "//graphite:%s requires a justification (why is this exempt?)", name)
		return
	}
	p.Reportf(pos, format, args...)
}

// enclosingFuncDoc returns the doc comment of the FuncDecl enclosing
// path's innermost node, if any. path is an ancestor stack as built by
// walkWithStack.
func enclosingFuncDoc(stack []ast.Node) *ast.CommentGroup {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Doc
		}
	}
	return nil
}

// walkWithStack visits every node of root, maintaining the ancestor
// stack (root first). fn returning false prunes the subtree.
func walkWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			// Pruned: Inspect will not deliver a closing nil, so the
			// node must not be pushed.
			return false
		}
		stack = append(stack, n)
		return true
	})
}
