package lint_test

import (
	"os"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// The golden corpora: each package carries at least one clean case and
// one `// want`-annotated violation per analyzer behavior.

func TestDetPureGolden(t *testing.T)    { linttest.Run(t, "testdata/src/detpure") }
func TestHotAllocGolden(t *testing.T)   { linttest.Run(t, "testdata/src/hotalloc") }
func TestAtomicWordGolden(t *testing.T) { linttest.Run(t, "testdata/src/atomicword") }
func TestWireJSONGolden(t *testing.T)   { linttest.Run(t, "testdata/src/wirejson") }

// TestGoldenCorporaFail pins the negative CI smoke's premise: every
// golden corpus actually produces findings, so seeding one into a lint
// run is guaranteed to fail it.
func TestGoldenCorporaFail(t *testing.T) {
	for _, dir := range []string{
		"testdata/src/detpure",
		"testdata/src/hotalloc",
		"testdata/src/atomicword",
		"testdata/src/wirejson",
	} {
		if len(linttest.Findings(t, dir)) == 0 {
			t.Errorf("%s: expected findings, got none", dir)
		}
	}
}

// TestTreeCleanAndSchemaLock is the in-process form of the CI lint job:
// the committed tree must produce zero findings (every suppression
// carries a justification), and the flattened wire schema must match
// the committed lock file exactly.
func TestTreeCleanAndSchemaLock(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module")
	}
	module, moduleRoot, err := lint.ModuleInfo(".")
	if err != nil {
		t.Fatalf("module info: %v", err)
	}
	loader := lint.NewLoader(lint.DefaultDetPaths(module))
	pkgs, err := loader.LoadPackages(moduleRoot, "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	suite := lint.NewSuite(lint.DefaultDetPaths(module))
	suite.ModulePath = module
	suite.CrossPackage = true
	for _, pkg := range pkgs {
		suite.RunPackage(pkg)
	}
	for _, d := range suite.Diagnostics() {
		t.Errorf("finding on committed tree: %s", d)
	}
	lock, err := os.ReadFile("testdata/wire_schema.lock")
	if err != nil {
		t.Fatalf("read schema lock: %v (bootstrap: go run ./cmd/graphite-lint -write-schema-lock ./...)", err)
	}
	if d := suite.Schema.Diff(string(lock)); d != "" {
		t.Errorf("%s", d)
	}
}

// TestSchemaDiffCatchesRemovedField proves the lock comparison is what
// makes a silently dropped wire field (a deleted json tag no longer
// registers its schema line) fail the lint job: a lock line with no
// matching collected line is reported as missing.
func TestSchemaDiffCatchesRemovedField(t *testing.T) {
	s := lint.NewSchema()
	lock := "# header comment\n" +
		"repro/internal/scenario.Record\tschema\tSchema\tstring\n"
	d := s.Diff(lock)
	if d == "" {
		t.Fatal("Diff reported no drift for a lock line absent from the collected schema")
	}
	if !strings.Contains(d, "- repro/internal/scenario.Record schema Schema string") {
		t.Errorf("Diff did not name the missing line:\n%s", d)
	}
}
