package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicWord builds the atomicword analyzer: once any code in a package
// accesses a struct field through a sync/atomic function (its address
// passed to atomic.LoadUint32, atomic.CompareAndSwapUint64, …), every
// plain read or write of that field is a finding. Mixing the two access
// modes is the race class DESIGN.md §13 (the coreState ownership word)
// and §16 (the tile clock word) argue away by hand — the memory model
// gives plain accesses no ordering against the CAS protocol, so one
// stray `w.field = v` silently re-introduces the race the hand argument
// excluded.
//
// Fields of the typed atomic.X values are safe by construction (their
// state is unexported) and need no analysis; this analyzer exists so a
// refactor from atomic.Uint32 to a plain word + function calls — e.g.
// to pack words into a structure-of-arrays slice — cannot shed the
// discipline. Intentional plain access (a constructor initializing the
// word before the value is published) carries //graphite:nonatomic
// <why> on its line or enclosing function.
func AtomicWord(s *Suite) *Analyzer {
	a := &Analyzer{
		Name: "atomicword",
		Doc:  "forbid plain access to struct fields accessed via sync/atomic",
	}
	a.Run = func(pass *Pass) {
		// Pass 1: collect the atomically accessed fields and the
		// selector nodes that appear inside atomic call arguments.
		atomicFields := make(map[types.Object]bool)
		atomicUses := make(map[*ast.SelectorExpr]bool)
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !pass.isAtomicCall(call) {
					return true
				}
				for _, arg := range call.Args {
					un, ok := arg.(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					sel, ok := un.X.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if obj := pass.fieldObject(sel); obj != nil {
						atomicFields[obj] = true
						atomicUses[sel] = true
					}
				}
				return true
			})
		}
		if len(atomicFields) == 0 {
			return
		}
		// Pass 2: every other selector of those fields is plain access.
		for _, f := range pass.Files {
			file := f
			walkWithStack(file, func(n ast.Node, stack []ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if atomicUses[sel] {
					return true
				}
				obj := pass.fieldObject(sel)
				if obj == nil || !atomicFields[obj] {
					return true
				}
				doc := enclosingFuncDoc(stack)
				pass.reportUnlessSuppressed(file, doc, sel.Pos(), "nonatomic",
					"field %s is accessed with sync/atomic elsewhere; a plain access here races with the atomic protocol (annotate //graphite:nonatomic <why> if provably unpublished)", obj.Name())
				return true
			})
		}
	}
	return a
}

// isAtomicCall reports whether call invokes a sync/atomic package-level
// function.
func (p *Pass) isAtomicCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic"
}

// fieldObject resolves sel to a struct field object, or nil.
func (p *Pass) fieldObject(sel *ast.SelectorExpr) types.Object {
	s, ok := p.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj()
}
