// Package linttest runs the graphite-lint analyzer suite over a golden
// source directory and matches the reported findings against // want
// comments, in the style of golang.org/x/tools' analysistest (which
// this module cannot depend on).
//
// A want comment sits on the line the finding anchors to:
//
//	x := time.Now() // want `time\.Now observes the host wall clock`
//
// Each backquoted or double-quoted string after "want" is a regular
// expression that must match one finding's "analyzer: message" text
// reported on that line. Findings with no matching want, and wants with
// no matching finding, fail the test.
package linttest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"testing"

	"repro/internal/lint"
)

// wantRe extracts the expectation list from a comment. Both line and
// block comments work; a block comment (`/* want ... */`) is the form
// for lines whose trailing line comment is itself a lint directive.
var wantRe = regexp.MustCompile(`^/[/*] want (.*)$`)

// quotedRe matches one double-quoted or backquoted expectation.
var quotedRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// expectation is one want regexp awaiting a finding.
type expectation struct {
	file    string // base name
	line    int
	re      *regexp.Regexp
	matched bool
}

// analyze typechecks dir as a testdata package and runs the full suite
// on it, returning the findings plus the parsed syntax for want
// extraction.
func analyze(t *testing.T, dir string) ([]lint.Diagnostic, *token.FileSet, []*ast.File) {
	t.Helper()
	module, moduleRoot, err := lint.ModuleInfo(".")
	if err != nil {
		t.Fatalf("module info: %v", err)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("abs %s: %v", dir, err)
	}
	loader := lint.NewLoader(lint.DefaultDetPaths(module))
	pkg, err := loader.LoadDir(moduleRoot, abs)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	suite := lint.NewSuite(lint.DefaultDetPaths(module))
	suite.ModulePath = module
	suite.CrossPackage = true
	suite.RunPackage(pkg)
	return suite.Diagnostics(), pkg.Fset, pkg.Files
}

// Run loads dir as a testdata package, runs the full analyzer suite on
// it, and reports any mismatch between findings and want comments.
func Run(t *testing.T, dir string) {
	t.Helper()
	diags, fset, files := analyze(t, dir)

	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				qs := quotedRe.FindAllStringSubmatch(m[1], -1)
				if len(qs) == 0 {
					t.Errorf("%s:%d: want comment with no quoted regexp", pos.Filename, pos.Line)
					continue
				}
				for _, q := range qs {
					text := q[1]
					if text == "" {
						text = q[2]
					}
					re, err := regexp.Compile(text)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, text, err)
						continue
					}
					wants = append(wants, &expectation{
						file: filepath.Base(pos.Filename), line: pos.Line, re: re,
					})
				}
			}
		}
	}

	for _, d := range diags {
		text := fmt.Sprintf("%s: %s", d.Analyzer, d.Message)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == filepath.Base(d.Pos.Filename) && w.line == d.Pos.Line && w.re.MatchString(text) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding at %s:%d: %s", d.Pos.Filename, d.Pos.Line, text)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.re.String())
		}
	}
}

// Findings runs the suite on dir and returns the raw findings, sorted
// by position, for tests asserting on counts or content directly.
func Findings(t *testing.T, dir string) []lint.Diagnostic {
	t.Helper()
	diags, _, _ := analyze(t, dir)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return diags
}
