package experiments

import (
	"os"
	"strings"
	"testing"

	"repro/internal/core/launch"
)

// TestMain lets forked copies of this test binary serve as fabric
// workers for MPScale's multi-process points.
func TestMain(m *testing.M) {
	launch.MaybeWorkerProcess()
	os.Exit(m.Run())
}

func TestMPScaleQuick(t *testing.T) {
	r, err := MPScale(Quick, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(r.Points))
	}
	for _, p := range r.Points {
		if !p.Identical {
			t.Errorf("%d-process run diverged from the 1-process reference", p.Processes)
		}
	}
	if got := r.Points[1].ProcWallSec; len(got) != 2 {
		t.Errorf("2-process point carries per-proc walls %v, want 2 entries", got)
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "processes") {
		t.Errorf("print output malformed:\n%s", sb.String())
	}
}
