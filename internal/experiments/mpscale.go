package experiments

import (
	"fmt"
	"io"
	"reflect"

	"repro/internal/config"
	"repro/internal/scenario"
)

// MPScalePoint is one (OS processes, wall time) measurement of a single
// distributed simulation.
type MPScalePoint struct {
	Processes   int
	WallSec     float64
	Speedup     float64 // versus 1 process
	ProcWallSec []float64
	// Identical reports whether this point's checksum, config digest,
	// and stats counters match the 1-process reference exactly.
	Identical bool
}

// MPScaleResult is the single-host rehearsal of the paper's §4.2
// multi-machine study: one simulation striped across growing numbers of
// genuinely separate OS processes (TCP fabric, forked workers), with the
// result-identity contract checked at every point.
type MPScaleResult struct {
	Workload     string
	Tiles        int
	ConfigDigest string
	Points       []MPScalePoint
}

// MPScale runs the OS-process scaling study. The analytical (no-queue)
// network and DRAM models keep the target's timing striping-invariant
// (DESIGN.md §12), so every process count must reproduce the 1-process
// record bit for bit.
func MPScale(pr Preset, counts []int) (*MPScaleResult, error) {
	if len(counts) == 0 {
		counts = []int{1, 2, 4}
	}
	const workload = "fft"
	tiles, scale := 8, 4
	switch pr {
	case Standard:
		tiles, scale = 16, 5
	case Full:
		tiles, scale = 32, 6
	}
	cfg := baseConfig(tiles)
	cfg.MemNet = config.NetworkConfig{Kind: config.NetMeshHop, HopLatency: 2, LinkBandwidth: 32}
	cfg.DRAM.QueueModel = false

	res := &MPScaleResult{Workload: workload, Tiles: tiles, ConfigDigest: scenario.Digest(&cfg)}
	point := func(m int) scenario.RunSpec {
		spec := scenario.RunSpec{
			Scenario: "mpscale",
			Workload: workload,
			Threads:  1,
			Scale:    scale,
			Seed:     cfg.RandSeed,
			Config:   cfg,
		}
		if m > 1 {
			spec.Processes = m
		}
		return spec
	}
	// The baseline is always the 1-process run, whatever counts holds —
	// Speedup and Identical are documented against it.
	refSpec := point(1)
	ref := scenario.Execute(&refSpec)
	if ref.Error != "" {
		return nil, fmt.Errorf("mpscale reference run: %s", ref.Error)
	}
	base := ref.WallSec
	for _, m := range counts {
		rec := ref
		if m != 1 {
			spec := point(m)
			rec = scenario.Execute(&spec)
			if rec.Error != "" {
				return nil, fmt.Errorf("mpscale %d processes: %s", m, rec.Error)
			}
		}
		res.Points = append(res.Points, MPScalePoint{
			Processes:   m,
			WallSec:     rec.WallSec,
			Speedup:     base / rec.WallSec,
			ProcWallSec: rec.ProcWallSec,
			Identical: rec.Checksum == ref.Checksum &&
				rec.ConfigDigest == ref.ConfigDigest &&
				rec.SimCycles == ref.SimCycles &&
				reflect.DeepEqual(rec.Stats, ref.Stats),
		})
	}
	return res, nil
}

// Print renders the scaling series.
func (r *MPScaleResult) Print(w io.Writer) {
	fprintf(w, "Single-simulation scaling across OS processes (%s, %d tiles, 1 thread)\n",
		r.Workload, r.Tiles)
	fprintf(w, "%10s %12s %10s %10s  %s\n", "processes", "wall-sec", "speedup", "identical", "per-proc wall")
	for _, p := range r.Points {
		fprintf(w, "%10d %12.3f %9.2fx %10v  %v\n", p.Processes, p.WallSec, p.Speedup, p.Identical, p.ProcWallSec)
	}
}
