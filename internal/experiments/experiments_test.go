package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
)

func TestParsePreset(t *testing.T) {
	for s, want := range map[string]Preset{"quick": Quick, "standard": Standard, "full": Full} {
		got, err := ParsePreset(s)
		if err != nil || got != want {
			t.Fatalf("ParsePreset(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePreset("bogus"); err == nil {
		t.Fatal("bogus preset accepted")
	}
}

func TestScaleForCoversAllWorkloadsAndPresets(t *testing.T) {
	for _, name := range []string{"fft", "lu_cont", "radix", "blackscholes", "matmul"} {
		for _, pr := range []Preset{Quick, Standard, Full} {
			if s := scaleFor(name, pr); s <= 0 {
				t.Fatalf("scaleFor(%s, %v) = %d", name, pr, s)
			}
		}
	}
}

func TestStatHelpers(t *testing.T) {
	if m := mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("mean = %v", m)
	}
	if mean(nil) != 0 {
		t.Fatal("mean(nil)")
	}
	if s := stddev([]float64{2, 4}); s < 1.41 || s > 1.42 {
		t.Fatalf("stddev = %v", s)
	}
	if stddev([]float64{5}) != 0 {
		t.Fatal("stddev of singleton")
	}
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median = %v", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
	if median(nil) != 0 {
		t.Fatal("median(nil)")
	}
}

func TestTable1Print(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf, config.Default())
	out := buf.String()
	for _, want := range []string{"1 GHz", "32 KB", "3072 KB", "full-map", "5.13 GB/s", "mesh_contention"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig4Quick(t *testing.T) {
	res, err := Fig4(Quick, []string{"radix"}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Points[0].Speedup != 1.0 {
		t.Fatalf("base speedup = %v", res.Points[0].Speedup)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "radix") {
		t.Fatal("print missing benchmark")
	}
}

func TestTable2Quick(t *testing.T) {
	res, err := Table2(Quick, []string{"fmm", "radix"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if !r.ChecksumOK {
			t.Errorf("%s checksum mismatch between simulated and native", r.Benchmark)
		}
		if r.Slowdown1 <= 1 {
			t.Errorf("%s slowdown %v: simulation faster than native?", r.Benchmark, r.Slowdown1)
		}
	}
	if res.Median1 <= 0 || res.Mean1 <= 0 {
		t.Fatal("summary stats empty")
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Median") {
		t.Fatal("print missing summary")
	}
}

func TestFig5Quick(t *testing.T) {
	res, err := Fig5(Quick, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 || res.TargetTiles != 64 {
		t.Fatalf("unexpected result %+v", res)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "machines") {
		t.Fatal("print malformed")
	}
}

func TestTable3Quick(t *testing.T) {
	res, err := Table3(Quick, []string{"radix"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 1 benchmark x 3 models x 2 process counts.
	if len(res.Cells) != 6 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.SimCyclesMean <= 0 {
			t.Fatalf("cell %+v has no simulated time", c)
		}
	}
	// LaxBarrier on 1 process is the baseline: its error must be ~0.
	for _, c := range res.Cells {
		if c.Model == config.LaxBarrier && c.Processes == 1 && c.ErrorPct > 1e-9 {
			t.Fatalf("baseline error = %v%%", c.ErrorPct)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "LaxP2P") {
		t.Fatal("print missing model")
	}
}

func TestFig7Quick(t *testing.T) {
	res, err := Fig7(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) != 3 {
		t.Fatalf("traces = %d", len(res.Traces))
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "LaxBarrier") {
		t.Fatal("print missing model")
	}
}

func TestFig8Quick(t *testing.T) {
	res, err := Fig8(Quick, []string{"lu_cont", "radix"}, []int{32, 256}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Total < 0 || p.Total > 1 {
			t.Fatalf("nonsense miss rate %v", p.Total)
		}
		var sum float64
		for _, r := range p.Rates {
			sum += r
		}
		if abs(sum-p.Total) > 1e-12 {
			t.Fatal("rates do not sum to total")
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "false%") {
		t.Fatal("print missing columns")
	}
	_ = stats.MissCold // keep import honest
}

func TestFig9Quick(t *testing.T) {
	res, err := Fig9(Quick, []int{1, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 4 schemes x 2 tile counts.
	if len(res.Points) != 8 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Tiles == 1 && p.Speedup != 1 {
			t.Fatalf("1-tile speedup = %v", p.Speedup)
		}
		if p.SimCycles <= 0 {
			t.Fatal("no simulated cycles")
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "LimitLESS4") {
		t.Fatal("print missing scheme")
	}
}
