package experiments

import (
	"io"
	"runtime"

	"repro/internal/scenario"
)

// Fig4Point is one (benchmark, host cores) measurement.
type Fig4Point struct {
	Benchmark string
	HostCores int
	WallSec   float64
	Speedup   float64 // versus 1 host core
}

// Fig4Result is the Figure 4 host-core scaling study: simulator wall time
// of a fixed 32-tile target as host parallelism grows.
type Fig4Result struct {
	TargetTiles int
	Points      []Fig4Point
}

// Fig4Scenario expresses the host-core scaling study declaratively: one
// grid per benchmark, sweeping Config.Workers. The runner forces such
// scenarios serial (GOMAXPROCS is process-global), which Figure 4 needs
// anyway: its measurement is wall-clock time under a controlled core
// budget.
func Fig4Scenario(pr Preset, benchmarks []string, hostCores []int, tiles int) *scenario.Scenario {
	sc := &scenario.Scenario{
		Name:   "fig4",
		Preset: "small-cache",
		Size:   pr.String(),
		Base:   map[string]any{"Tiles": tiles},
	}
	vals := make([]any, len(hostCores))
	for i, hc := range hostCores {
		vals[i] = hc
	}
	for _, b := range benchmarks {
		sc.Grids = append(sc.Grids, scenario.Grid{
			Workload: b,
			Axes:     []scenario.Axis{{Field: "Workers", Values: vals}},
		})
	}
	return sc
}

// Fig4 runs the scaling study through the shared scenario runner.
// benchmarks defaults to a representative SPLASH subset; hostCores
// defaults to {1, 2, 4, ...} up to the machine's CPU count (the paper
// scales 1..64 across 8 machines — the curve is truncated by the host
// running this reproduction).
func Fig4(pr Preset, benchmarks []string, hostCores []int) (*Fig4Result, error) {
	if len(benchmarks) == 0 {
		benchmarks = []string{"fmm", "ocean_cont", "radix", "water_spatial"}
	}
	if len(hostCores) == 0 {
		for c := 1; c <= runtime.NumCPU(); c *= 2 {
			hostCores = append(hostCores, c)
		}
	}
	tiles := 32
	if pr == Quick {
		tiles = 8
	}
	records, err := scenario.Run(Fig4Scenario(pr, benchmarks, hostCores, tiles), scenario.Options{})
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{TargetTiles: tiles}
	base := 0.0
	for i, r := range records {
		if r.Point == 0 {
			base = r.WallSec
		}
		res.Points = append(res.Points, Fig4Point{
			Benchmark: r.Workload,
			HostCores: hostCores[i%len(hostCores)],
			WallSec:   r.WallSec,
			Speedup:   base / r.WallSec,
		})
	}
	return res, nil
}

// Print renders the Figure 4 series.
func (r *Fig4Result) Print(w io.Writer) {
	fprintf(w, "Figure 4: speedup of %d-tile simulations vs. host cores (normalized to 1 core)\n", r.TargetTiles)
	fprintf(w, "%-16s %10s %12s %10s\n", "benchmark", "host-cores", "wall-sec", "speedup")
	for _, p := range r.Points {
		fprintf(w, "%-16s %10d %12.3f %9.2fx\n", p.Benchmark, p.HostCores, p.WallSec, p.Speedup)
	}
}
