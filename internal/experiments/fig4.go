package experiments

import (
	"io"
	"runtime"
)

// Fig4Point is one (benchmark, host cores) measurement.
type Fig4Point struct {
	Benchmark string
	HostCores int
	WallSec   float64
	Speedup   float64 // versus 1 host core
}

// Fig4Result is the Figure 4 host-core scaling study: simulator wall time
// of a fixed 32-tile target as host parallelism grows.
type Fig4Result struct {
	TargetTiles int
	Points      []Fig4Point
}

// Fig4 runs the scaling study. benchmarks defaults to a representative
// SPLASH subset; hostCores defaults to {1, 2, 4, ...} up to the machine's
// CPU count (the paper scales 1..64 across 8 machines — the curve is
// truncated by the host running this reproduction).
func Fig4(pr Preset, benchmarks []string, hostCores []int) (*Fig4Result, error) {
	if len(benchmarks) == 0 {
		benchmarks = []string{"fmm", "ocean_cont", "radix", "water_spatial"}
	}
	if len(hostCores) == 0 {
		for c := 1; c <= runtime.NumCPU(); c *= 2 {
			hostCores = append(hostCores, c)
		}
	}
	tiles := 32
	threads := 32
	if pr == Quick {
		tiles, threads = 8, 8
	}
	res := &Fig4Result{TargetTiles: tiles}
	for _, b := range benchmarks {
		scale := scaleFor(b, pr)
		base := 0.0
		for _, hc := range hostCores {
			cfg := baseConfig(tiles)
			cfg.Workers = hc
			rs, _, err := runOnce(b, threads, scale, cfg)
			if err != nil {
				return nil, err
			}
			wall := rs.Wall.Seconds()
			if base == 0 {
				base = wall
			}
			res.Points = append(res.Points, Fig4Point{
				Benchmark: b,
				HostCores: hc,
				WallSec:   wall,
				Speedup:   base / wall,
			})
		}
	}
	return res, nil
}

// Print renders the Figure 4 series.
func (r *Fig4Result) Print(w io.Writer) {
	fprintf(w, "Figure 4: speedup of %d-tile simulations vs. host cores (normalized to 1 core)\n", r.TargetTiles)
	fprintf(w, "%-16s %10s %12s %10s\n", "benchmark", "host-cores", "wall-sec", "speedup")
	for _, p := range r.Points {
		fprintf(w, "%-16s %10d %12.3f %9.2fx\n", p.Benchmark, p.HostCores, p.WallSec, p.Speedup)
	}
}
