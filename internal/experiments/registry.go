package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/config"
)

// Options carries the flag values of cmd/graphite-sweep into an
// experiment run.
type Options struct {
	// Preset scales problem sizes.
	Preset Preset
	// Benchmarks restricts experiments that iterate a benchmark list.
	Benchmarks []string
	// Sizes is the generic integer list flag (line sizes, tile counts,
	// host core counts, machine counts — per experiment).
	Sizes []int
	// Runs is the repetition count of the table3 cells.
	Runs int
	// Parallel bounds the scenario runner's worker pool for experiments
	// that execute host-parallel (0 = host CPUs).
	Parallel int
}

// Experiment is one registered table or figure of the paper.
type Experiment struct {
	// Name is the canonical -exp value.
	Name string
	// Aliases are accepted alternative names (e.g. fig6 for the combined
	// Figure 6 / Table 3 study).
	Aliases []string
	// Summary is one help line.
	Summary string
	// Run regenerates the experiment and prints it to w.
	Run func(w io.Writer, o Options) error
}

// Registry returns every experiment, in the paper's order. The -exp flag
// help, parsing, and "all" iteration all derive from this single list,
// so they cannot disagree.
func Registry() []Experiment {
	return []Experiment{
		{
			Name:    "table1",
			Summary: "target architecture parameters",
			Run: func(w io.Writer, o Options) error {
				Table1(w, config.Default())
				return nil
			},
		},
		{
			Name:    "fig4",
			Summary: "host-core scaling of simulator wall time",
			Run: func(w io.Writer, o Options) error {
				r, err := Fig4(o.Preset, o.Benchmarks, o.Sizes)
				if err != nil {
					return err
				}
				r.Print(w)
				return nil
			},
		},
		{
			Name:    "table2",
			Summary: "simulation slowdown versus native execution",
			Run: func(w io.Writer, o Options) error {
				r, err := Table2(o.Preset, o.Benchmarks)
				if err != nil {
					return err
				}
				r.Print(w)
				return nil
			},
		},
		{
			Name:    "fig5",
			Summary: "large-target scaling across host processes",
			Run: func(w io.Writer, o Options) error {
				r, err := Fig5(o.Preset, o.Sizes)
				if err != nil {
					return err
				}
				r.Print(w)
				return nil
			},
		},
		{
			Name:    "table3",
			Aliases: []string{"fig6"},
			Summary: "synchronization models: performance, error, variability",
			Run: func(w io.Writer, o Options) error {
				r, err := Table3(o.Preset, o.Benchmarks, o.Runs)
				if err != nil {
					return err
				}
				r.Print(w)
				return nil
			},
		},
		{
			Name:    "fig7",
			Summary: "clock skew under the three synchronization models",
			Run: func(w io.Writer, o Options) error {
				r, err := Fig7(o.Preset)
				if err != nil {
					return err
				}
				r.Print(w)
				return nil
			},
		},
		{
			Name:    "mpscale",
			Summary: "single-simulation scaling across OS processes (§4.2, single host)",
			Run: func(w io.Writer, o Options) error {
				r, err := MPScale(o.Preset, o.Sizes)
				if err != nil {
					return err
				}
				r.Print(w)
				return nil
			},
		},
		{
			Name:    "hostscale",
			Summary: "host-worker scaling at 64-1024 simulated tiles in one process",
			Run: func(w io.Writer, o Options) error {
				r, err := HostScale(o.Preset, o.Sizes, nil)
				if err != nil {
					return err
				}
				r.Print(w)
				return nil
			},
		},
		{
			Name:    "fig8",
			Summary: "cache miss breakdown versus line size",
			Run: func(w io.Writer, o Options) error {
				r, err := Fig8(o.Preset, o.Benchmarks, o.Sizes, o.Parallel)
				if err != nil {
					return err
				}
				r.Print(w)
				return nil
			},
		},
		{
			Name:    "fig9",
			Summary: "cache-coherence schemes versus target tile count",
			Run: func(w io.Writer, o Options) error {
				r, err := Fig9(o.Preset, o.Sizes, o.Parallel)
				if err != nil {
					return err
				}
				r.Print(w)
				return nil
			},
		},
	}
}

// Find resolves an experiment by canonical name or alias.
func Find(name string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.Name == name {
			return e, true
		}
		for _, a := range e.Aliases {
			if a == name {
				return e, true
			}
		}
	}
	return Experiment{}, false
}

// Names returns every accepted -exp value (canonical names and aliases),
// in registry order.
func Names() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.Name)
		out = append(out, e.Aliases...)
	}
	return out
}

// FlagUsage renders the -exp help string from the registry.
func FlagUsage() string {
	return strings.Join(append(Names(), "all"), "|")
}

// RunByName executes one experiment (or errors with the accepted list).
func RunByName(name string, w io.Writer, o Options) error {
	e, ok := Find(name)
	if !ok {
		return fmt.Errorf("unknown experiment %q (accepted: %s)", name, FlagUsage())
	}
	return e.Run(w, o)
}
