package experiments

import (
	"io"

	"repro/internal/arch"
	"repro/internal/config"
)

// SyncCell is the measurement of one (benchmark, sync model, processes)
// cell over repeated runs.
type SyncCell struct {
	Benchmark string
	Model     config.SyncModel
	Processes int
	// RunTimeNorm is mean wall time normalized to Lax on 1 process.
	RunTimeNorm float64
	// SimCyclesMean is the mean simulated run time (cycles).
	SimCyclesMean float64
	// ErrorPct is |SimCyclesMean - baseline| / baseline * 100, with the
	// LaxBarrier 1-process mean as baseline (the paper's choice).
	ErrorPct float64
	// CoVPct is the coefficient of variation of simulated cycles.
	CoVPct float64
}

// Table3Result reproduces Figure 6 and Table 3: performance, error, and
// variability of Lax, LaxP2P, and LaxBarrier on one and several host
// processes.
type Table3Result struct {
	Cells []SyncCell
	Runs  int
	// Summary rows (means across benchmarks), keyed by model.
	MeanRunTime map[config.SyncModel][2]float64 // [1 proc, N proc]
	MeanError   map[config.SyncModel]float64
	MeanCoV     map[config.SyncModel]float64
	Procs       int
}

// Table3 runs the synchronization-model study: each benchmark × model ×
// process-count cell is repeated runs times (the paper uses ten).
func Table3(pr Preset, benchmarks []string, runs int) (*Table3Result, error) {
	if len(benchmarks) == 0 {
		benchmarks = []string{"lu_cont", "ocean_cont", "radix"}
	}
	if runs <= 0 {
		runs = 10
	}
	tiles, threads, procs := 32, 32, 4
	// The P2P slack must be small relative to the run's simulated length
	// (the paper's 100k-cycle slack is tuned to multi-billion-cycle runs).
	slack, interval := arch.Cycles(100_000), arch.Cycles(10_000)
	if pr == Quick {
		tiles, threads, procs, runs = 8, 8, 2, min(runs, 3)
		slack, interval = 1_000, 500
	} else if pr == Standard {
		slack, interval = 20_000, 5_000
	}
	models := []config.SyncModel{config.Lax, config.LaxP2P, config.LaxBarrier}
	procCounts := []int{1, procs}

	res := &Table3Result{
		Runs:        runs,
		Procs:       procs,
		MeanRunTime: map[config.SyncModel][2]float64{},
		MeanError:   map[config.SyncModel]float64{},
		MeanCoV:     map[config.SyncModel]float64{},
	}

	type cellData struct {
		wall, cycles []float64
	}
	data := map[string]map[config.SyncModel]map[int]*cellData{}
	for _, b := range benchmarks {
		data[b] = map[config.SyncModel]map[int]*cellData{}
		scale := scaleFor(b, pr)
		for _, m := range models {
			data[b][m] = map[int]*cellData{}
			for _, pc := range procCounts {
				cd := &cellData{}
				for r := 0; r < runs; r++ {
					cfg := baseConfig(tiles)
					cfg.Processes = pc
					cfg.Sync.Model = m
					cfg.Sync.BarrierQuantum = 1000
					cfg.Sync.P2PSlack = slack
					cfg.Sync.P2PInterval = interval
					cfg.RandSeed = int64(r + 1)
					rs, _, err := runOnce(b, threads, scale, cfg)
					if err != nil {
						return nil, err
					}
					cd.wall = append(cd.wall, rs.Wall.Seconds())
					cd.cycles = append(cd.cycles, float64(rs.SimulatedCycles))
				}
				data[b][m][pc] = cd
			}
		}
	}

	// Normalize and summarize.
	sums := map[config.SyncModel][2]float64{}
	errSums := map[config.SyncModel]float64{}
	covSums := map[config.SyncModel]float64{}
	for _, b := range benchmarks {
		laxBase := mean(data[b][config.Lax][1].wall)
		baseline := mean(data[b][config.LaxBarrier][1].cycles)
		for _, m := range models {
			for pi, pc := range procCounts {
				cd := data[b][m][pc]
				wallMean := mean(cd.wall)
				cycMean := mean(cd.cycles)
				errPct := 0.0
				if baseline > 0 {
					errPct = 100 * abs(cycMean-baseline) / baseline
				}
				cov := 0.0
				if cycMean > 0 {
					cov = 100 * stddev(cd.cycles) / cycMean
				}
				res.Cells = append(res.Cells, SyncCell{
					Benchmark:     b,
					Model:         m,
					Processes:     pc,
					RunTimeNorm:   wallMean / laxBase,
					SimCyclesMean: cycMean,
					ErrorPct:      errPct,
					CoVPct:        cov,
				})
				s := sums[m]
				s[pi] += wallMean / laxBase
				sums[m] = s
				if pc == 1 {
					errSums[m] += errPct
					covSums[m] += cov
				}
			}
		}
	}
	nb := float64(len(benchmarks))
	for _, m := range models {
		res.MeanRunTime[m] = [2]float64{sums[m][0] / nb, sums[m][1] / nb}
		res.MeanError[m] = errSums[m] / nb
		res.MeanCoV[m] = covSums[m] / nb
	}
	return res, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Print renders the Figure 6 cells and the Table 3 summary.
func (r *Table3Result) Print(w io.Writer) {
	fprintf(w, "Figure 6 / Table 3: synchronization models (%d runs per cell)\n", r.Runs)
	fprintf(w, "%-14s %-11s %6s %12s %14s %10s %8s\n",
		"benchmark", "model", "procs", "runtime-norm", "sim-cycles", "error%%", "CoV%%")
	for _, c := range r.Cells {
		fprintf(w, "%-14s %-11s %6d %12.3f %14.0f %9.2f%% %7.2f%%\n",
			c.Benchmark, c.Model.String(), c.Processes, c.RunTimeNorm,
			c.SimCyclesMean, c.ErrorPct, c.CoVPct)
	}
	fprintf(w, "\nSummary (means over benchmarks):\n")
	fprintf(w, "%-11s %14s %14s %10s %8s\n", "model", "runtime(1mc)", "runtime(Nmc)", "error%%", "CoV%%")
	for _, m := range []config.SyncModel{config.Lax, config.LaxP2P, config.LaxBarrier} {
		rt := r.MeanRunTime[m]
		fprintf(w, "%-11s %14.3f %14.3f %9.2f%% %7.2f%%\n",
			m.String(), rt[0], rt[1], r.MeanError[m], r.MeanCoV[m])
	}
}
