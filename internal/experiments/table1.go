package experiments

import (
	"io"

	"repro/internal/config"
)

// Table1 prints the target architecture parameters (paper Table 1) for a
// configuration.
func Table1(w io.Writer, cfg config.Config) {
	fprintf(w, "Table 1: target architecture parameters\n")
	fprintf(w, "%-22s %v GHz\n", "Clock frequency", float64(cfg.ClockHz)/1e9)
	cache := func(name string, c config.CacheConfig) {
		if !c.Enabled {
			fprintf(w, "%-22s disabled\n", name)
			return
		}
		fprintf(w, "%-22s private, %d KB, %d B lines, %d-way, LRU, %d-cycle hit\n",
			name, c.Size>>10, c.LineSize, c.Assoc, c.HitLatency)
	}
	cache("L1 instruction cache", cfg.L1I)
	cache("L1 data cache", cfg.L1D)
	cache("L2 cache", cfg.L2)
	switch cfg.Coherence.Kind {
	case config.FullMap:
		fprintf(w, "%-22s full-map directory MSI\n", "Cache coherence")
	case config.LimitedNB:
		fprintf(w, "%-22s Dir%dNB limited directory MSI\n", "Cache coherence", cfg.Coherence.DirPointers)
	case config.LimitLESS:
		fprintf(w, "%-22s LimitLESS(%d) MSI, %d-cycle trap\n", "Cache coherence",
			cfg.Coherence.DirPointers, cfg.Coherence.TrapLatency)
	}
	fprintf(w, "%-22s %.2f GB/s total, one controller per tile (%d-cycle access)\n",
		"DRAM", cfg.DRAM.TotalBandwidth, cfg.DRAM.AccessLatency)
	fprintf(w, "%-22s app=%s mem=%s sys=%s\n", "Interconnect",
		cfg.AppNet.Kind.String(), cfg.MemNet.Kind.String(), cfg.SysNet.Kind.String())
	fprintf(w, "%-22s %s\n", "Synchronization", cfg.Sync.Model.String())
	fprintf(w, "%-22s %d tiles across %d host processes (%s transport)\n",
		"Simulation", cfg.Tiles, cfg.Processes, cfg.Transport.String())
}
