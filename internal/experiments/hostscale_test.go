package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestHostScaleQuick(t *testing.T) {
	res, err := HostScale(Quick, []int{16}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Points[0].Speedup != 1.0 {
		t.Fatalf("base speedup = %v", res.Points[0].Speedup)
	}
	for _, p := range res.Points {
		if !p.Identical {
			t.Errorf("tiles=%d workers=%d diverged from the 1-worker result", p.Tiles, p.Workers)
		}
		if p.NSPerInstr <= 0 {
			t.Errorf("tiles=%d workers=%d has no per-instruction cost", p.Tiles, p.Workers)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "identical") {
		t.Fatal("print malformed")
	}
}

// TestHostScaleSmoke256 is the CI hostscale-smoke anchor: the 256-tile
// point at the quick problem size, run under -race by its dedicated
// workflow job. It exercises the epoch-batched barrier ledger, the dense
// construction path, and the SoA memory system at a tile count no other
// test reaches, and re-asserts the worker-count result-identity contract
// there.
func TestHostScaleSmoke256(t *testing.T) {
	res, err := HostScale(Quick, []int{256}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if !p.Identical {
			t.Errorf("256-tile workers=%d result diverged from 1-worker run", p.Workers)
		}
	}
}
