package experiments

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/scenario"
	"repro/internal/workloads"
)

// soaGoldenPath is the pre-refactor golden record file: one line per run of
// the determinism suite (table2 quick + line-size-sweep), captured before
// the structure-of-arrays cache/directory refactor. The equivalence test
// asserts that the refactored memory system reproduces these checksums and
// config digests byte-for-byte.
const soaGoldenPath = "testdata/soa_prerefactor.jsonl"

// soaGoldenLine is the stable subset of a Record that must survive any
// internal storage refactor: run identity, the config digest (preimage:
// config.Canonical), and the workload checksum (stored as exact float
// bits) for every run. Simulated cycles and the aggregate memory-system
// counters are included only for single-threaded runs — the configuration
// class for which the simulator is fully deterministic (see
// scenario.TestRunDeterminism); multi-threaded lax runs have
// host-scheduling-dependent timing by design (paper §3.6), so only their
// functional results are pinned.
type soaGoldenLine struct {
	Scenario     string `json:"scenario"`
	Run          int    `json:"run"`
	Workload     string `json:"workload"`
	Threads      int    `json:"threads"`
	Scale        int    `json:"scale"`
	Seed         int64  `json:"seed"`
	ConfigDigest string `json:"config_digest"`
	ChecksumBits uint64 `json:"checksum_bits"`
	SimCycles    uint64 `json:"sim_cycles"`
	L2Misses     uint64 `json:"l2_misses"`
	DirTraps     uint64 `json:"dir_traps"`
	InvSent      uint64 `json:"inv_sent"`
}

func goldenLine(r *scenario.Record) soaGoldenLine {
	ln := soaGoldenLine{
		Scenario:     r.Scenario,
		Run:          r.Run,
		Workload:     r.Workload,
		Threads:      r.Threads,
		Scale:        r.Scale,
		Seed:         r.Seed,
		ConfigDigest: r.ConfigDigest,
		ChecksumBits: math.Float64bits(r.Checksum),
	}
	if r.Threads <= 1 {
		ln.SimCycles = r.SimCycles
		ln.L2Misses = r.Stats.L2Misses
		ln.DirTraps = r.Stats.DirTraps
		ln.InvSent = r.Stats.InvSent
	}
	return ln
}

// soaSuite returns the determinism suite scenarios: the quick table2 study
// (multi-threaded SPLASH runs across 1 and 4 simulated host processes) and
// the line-size sweep (single-threaded runs, fully deterministic stats).
func soaSuite(t *testing.T) []*scenario.Scenario {
	t.Helper()
	sweep, err := scenario.Load(filepath.Join("..", "..", "examples", "scenarios", "line-size-sweep.json"))
	if err != nil {
		t.Fatalf("load line-size-sweep: %v", err)
	}
	return []*scenario.Scenario{
		Table2Scenario(Quick, workloads.SplashNames(), 8, 4),
		sweep,
	}
}

func runSoASuite(t *testing.T) []soaGoldenLine {
	t.Helper()
	var out []soaGoldenLine
	for _, sc := range soaSuite(t) {
		records, err := scenario.Run(sc, scenario.Options{})
		if err != nil {
			t.Fatalf("scenario %s: %v", sc.Name, err)
		}
		for i := range records {
			out = append(out, goldenLine(&records[i]))
		}
	}
	return out
}

// TestSoAEquivalence runs the determinism suite and asserts every run's
// checksum, config digest, simulated cycle count, and memory-system
// counters are byte-identical to the golden values captured before the
// structure-of-arrays refactor. Regenerate (only against a known-good
// tree) with GRAPHITE_REGEN_SOA_GOLDEN=1.
func TestSoAEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism suite is not -short")
	}
	got := runSoASuite(t)
	if os.Getenv("GRAPHITE_REGEN_SOA_GOLDEN") != "" {
		f, err := os.Create(soaGoldenPath)
		if err != nil {
			t.Fatal(err)
		}
		w := bufio.NewWriter(f)
		for _, ln := range got {
			b, err := json.Marshal(ln)
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(w, "%s\n", b)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d lines)", soaGoldenPath, len(got))
		return
	}

	f, err := os.Open(soaGoldenPath)
	if err != nil {
		t.Fatalf("open golden (regenerate with GRAPHITE_REGEN_SOA_GOLDEN=1): %v", err)
	}
	defer f.Close()
	var want []soaGoldenLine
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ln soaGoldenLine
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			t.Fatalf("bad golden line: %v", err)
		}
		want = append(want, ln)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("suite produced %d runs, golden has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("run %d (%s/%s) diverged from pre-refactor golden:\n got  %+v\n want %+v",
				i, got[i].Scenario, got[i].Workload, got[i], want[i])
		}
	}
}
