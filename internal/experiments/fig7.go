package experiments

import (
	"io"

	"repro/internal/config"
	"repro/internal/core"
)

// Fig7Trace is the clock-skew trace of one synchronization model.
type Fig7Trace struct {
	Model   config.SyncModel
	Samples []core.SkewSample
	// MaxSkew is the largest observed max-min spread, in cycles.
	MaxSkew int64
}

// Fig7Result reproduces Figure 7: clock skew over the course of an fmm
// run under each synchronization model. The expected shape: Lax skews by
// orders of magnitude more than LaxP2P (which stays within the slack),
// and LaxBarrier stays within one quantum.
type Fig7Result struct {
	Traces []Fig7Trace
}

// Fig7 runs the skew study.
func Fig7(pr Preset) (*Fig7Result, error) {
	tiles, threads := 32, 32
	if pr == Quick {
		tiles, threads = 8, 8
	}
	scale := scaleFor("fmm", pr)
	res := &Fig7Result{}
	for _, m := range []config.SyncModel{config.Lax, config.LaxP2P, config.LaxBarrier} {
		cfg := baseConfig(tiles)
		cfg.CollectSkew = true
		cfg.Sync.Model = m
		cfg.Sync.BarrierQuantum = 1000
		cfg.Sync.P2PSlack = 5_000
		cfg.Sync.P2PInterval = 2_000
		if pr != Quick {
			cfg.Sync.P2PSlack = 20_000
			cfg.Sync.P2PInterval = 5_000
		}
		rs, _, err := runOnce("fmm", threads, scale, cfg)
		if err != nil {
			return nil, err
		}
		tr := Fig7Trace{Model: m, Samples: rs.Skew}
		for _, s := range rs.Skew {
			if spread := int64(s.Max - s.Min); spread > tr.MaxSkew {
				tr.MaxSkew = spread
			}
		}
		res.Traces = append(res.Traces, tr)
	}
	return res, nil
}

// Print renders skew summaries plus a CSV-like series per model.
func (r *Fig7Result) Print(w io.Writer) {
	fprintf(w, "Figure 7: clock skew during fmm, per synchronization model\n")
	for _, tr := range r.Traces {
		fprintf(w, "\n[%s] samples=%d max-skew=%d cycles\n", tr.Model.String(), len(tr.Samples), tr.MaxSkew)
		fprintf(w, "%12s %14s %14s %14s\n", "wall-ms", "min-dev", "max-dev", "mean")
		for i, s := range tr.Samples {
			// Thin long traces for readability.
			if len(tr.Samples) > 40 && i%(len(tr.Samples)/40+1) != 0 {
				continue
			}
			fprintf(w, "%12.2f %14d %14d %14d\n",
				float64(s.Wall.Microseconds())/1000,
				int64(s.Min-s.Mean), int64(s.Max-s.Mean), int64(s.Mean))
		}
	}
}
