package experiments

import (
	"io"

	"repro/internal/config"
)

// HostScalePoint is one (target tiles, host workers) measurement.
//
//graphite:wire
type HostScalePoint struct {
	Tiles   int     `json:"tiles"`
	Workers int     `json:"workers"`
	WallSec float64 `json:"wall_sec"`
	// Speedup is versus the first worker count at the same tile count
	// (the fig4 normalization, applied per curve).
	Speedup float64 `json:"speedup"`
	// InstrPerSec is simulated instructions per host wall second.
	InstrPerSec float64 `json:"sim_instr_per_sec"`
	// NSPerInstr is host nanoseconds spent per simulated instruction —
	// the per-unit-of-target-work cost. Comparing it across tile counts
	// (at the same worker count) exposes superlinear per-tile overhead:
	// a quadratic structure anywhere in the stack makes the 1024-tile
	// value blow past the 64-tile one.
	NSPerInstr float64 `json:"ns_per_instr"`
	// Identical reports whether this point's checksum and config digest
	// match the first worker count's run at the same tile count: host
	// parallelism must never change the computation's result.
	Identical bool `json:"identical"`
}

// HostScaleResult is the thousand-tile host-worker scaling study: the
// fig4 speedup curve measured at 64-1024 simulated tiles inside one OS
// process, sweeping Config.Workers (GOMAXPROCS).
//
//graphite:wire
type HostScaleResult struct {
	Workload string           `json:"workload"`
	Scale    int              `json:"scale"`
	Points   []HostScalePoint `json:"points"`
}

// HostScale runs the host-worker scaling study: the Figure 5 workload
// (matmul, one thread per tile, lean per-tile caches) at growing target
// sizes, each swept across host worker counts. Wall-clock speedup is
// only meaningful when the host actually has the cores (reports record
// the host shape); the checksum-identity and ns-per-instruction columns
// are host-independent.
func HostScale(pr Preset, tileCounts, workers []int) (*HostScaleResult, error) {
	if len(tileCounts) == 0 {
		switch pr {
		case Quick:
			tileCounts = []int{16, 64}
		case Standard:
			tileCounts = []int{64, 256}
		default:
			tileCounts = []int{64, 256, 1024}
		}
	}
	if len(workers) == 0 {
		workers = []int{1, 2, 4}
	}
	const workload = "matmul"
	scale := scaleFor(workload, pr)
	res := &HostScaleResult{Workload: workload, Scale: scale}
	for _, tiles := range tileCounts {
		var base, refChecksum float64
		var refDigest string
		for i, w := range workers {
			cfg := baseConfig(tiles)
			cfg.Workers = w
			// Large targets need lean per-tile caches (host memory);
			// applied at every size so the curves share one target.
			cfg.L1D = config.CacheConfig{Enabled: true, Size: 4 << 10, Assoc: 2, LineSize: 64, HitLatency: 1}
			cfg.L2 = config.CacheConfig{Enabled: true, Size: 32 << 10, Assoc: 4, LineSize: 64, HitLatency: 8}
			rs, rec, err := runOnceRecord(workload, tiles, scale, cfg)
			if err != nil {
				return nil, err
			}
			wall := rs.Wall.Seconds()
			if i == 0 {
				base, refChecksum, refDigest = wall, rec.Checksum, rec.ConfigDigest
			}
			p := HostScalePoint{
				Tiles:   tiles,
				Workers: w,
				WallSec: wall,
				Speedup: base / wall,
				Identical: rec.Checksum == refChecksum &&
					rec.ConfigDigest == refDigest,
			}
			if instr := float64(rs.Totals.Instructions); instr > 0 && wall > 0 {
				p.InstrPerSec = instr / wall
				p.NSPerInstr = wall * 1e9 / instr
			}
			res.Points = append(res.Points, p)
		}
	}
	return res, nil
}

// Print renders the speedup curves, one block per tile count.
func (r *HostScaleResult) Print(w io.Writer) {
	fprintf(w, "Host-worker scaling of %s (scale %d, one thread per tile)\n", r.Workload, r.Scale)
	fprintf(w, "%8s %8s %12s %9s %14s %12s %10s\n",
		"tiles", "workers", "wall-sec", "speedup", "sim-instr/s", "ns/instr", "identical")
	prev := -1
	for _, p := range r.Points {
		if prev != -1 && p.Tiles != prev {
			fprintf(w, "\n")
		}
		prev = p.Tiles
		fprintf(w, "%8d %8d %12.3f %8.2fx %14.0f %12.1f %10v\n",
			p.Tiles, p.Workers, p.WallSec, p.Speedup, p.InstrPerSec, p.NSPerInstr, p.Identical)
	}
}
