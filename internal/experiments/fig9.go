package experiments

import (
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/scenario"
)

// Fig9Scheme names one coherence configuration of the study.
type Fig9Scheme struct {
	Label string
	Kind  config.CoherenceKind
	Ptrs  int
}

// Fig9Point is one (scheme, target tiles) measurement.
type Fig9Point struct {
	Scheme    string
	Tiles     int
	SimCycles arch.Cycles
	// Speedup is simulated-cycles(1 tile) / simulated-cycles(tiles),
	// the paper's y-axis.
	Speedup float64
	// AvgMemLatency tracks the memory-latency growth the paper discusses.
	AvgMemLatency float64
	DirTraps      uint64
	Invalidations uint64
}

// Fig9Result reproduces Figure 9: blackscholes speedup relative to
// simulated single-tile execution under Dir4NB, Dir16NB, full-map, and
// LimitLESS(4) directories, scaling the target tile count.
type Fig9Result struct {
	Points []Fig9Point
}

// Fig9Schemes returns the paper's four protocols.
func Fig9Schemes() []Fig9Scheme {
	return []Fig9Scheme{
		{Label: "Dir4NB", Kind: config.LimitedNB, Ptrs: 4},
		{Label: "Dir16NB", Kind: config.LimitedNB, Ptrs: 16},
		{Label: "full-map", Kind: config.FullMap, Ptrs: 0},
		{Label: "LimitLESS4", Kind: config.LimitLESS, Ptrs: 4},
	}
}

// Fig9Scenario expresses the coherence study declaratively: one grid per
// directory scheme (the scheme is a pair of config fields, set as grid
// base overrides), each sweeping the target tile count. The metric is
// simulated cycles, so the runner executes the grid host-parallel.
func Fig9Scenario(pr Preset, tileCounts []int) *scenario.Scenario {
	tc := make([]any, len(tileCounts))
	for i, t := range tileCounts {
		tc[i] = t
	}
	sc := &scenario.Scenario{
		Name:     "fig9",
		Preset:   "small-cache",
		Size:     pr.String(),
		Workload: "blackscholes",
	}
	for _, sch := range Fig9Schemes() {
		sc.Grids = append(sc.Grids, scenario.Grid{
			Base: map[string]any{
				"Coherence.Kind":        int(sch.Kind),
				"Coherence.DirPointers": sch.Ptrs,
				"Coherence.TrapLatency": 100,
				"Coherence.DirLatency":  10,
			},
			Axes: []scenario.Axis{{Field: "Tiles", Values: tc}},
		})
	}
	return sc
}

// Fig9 runs the coherence study through the shared scenario runner;
// parallel bounds the worker pool (0 = host CPUs).
func Fig9(pr Preset, tileCounts []int, parallel int) (*Fig9Result, error) {
	if len(tileCounts) == 0 {
		switch pr {
		case Quick:
			tileCounts = []int{1, 2, 4, 8, 16}
		case Standard:
			tileCounts = []int{1, 2, 4, 8, 16, 32, 64}
		default:
			tileCounts = []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
		}
	}
	records, err := scenario.Run(Fig9Scenario(pr, tileCounts), scenario.Options{Parallel: parallel})
	if err != nil {
		return nil, fmt.Errorf("fig9: %w", err)
	}
	schemes := Fig9Schemes()
	res := &Fig9Result{}
	base := arch.Cycles(0)
	for _, r := range records {
		if r.Point == 0 {
			base = arch.Cycles(r.SimCycles)
		}
		res.Points = append(res.Points, Fig9Point{
			Scheme:        schemes[r.Grid].Label,
			Tiles:         tileCounts[r.Point],
			SimCycles:     arch.Cycles(r.SimCycles),
			Speedup:       float64(base) / float64(r.SimCycles),
			AvgMemLatency: r.Stats.AvgMemLatency(),
			DirTraps:      r.Stats.DirTraps,
			Invalidations: r.Stats.InvSent,
		})
	}
	return res, nil
}

// Print renders the Figure 9 series.
func (r *Fig9Result) Print(w io.Writer) {
	fprintf(w, "Figure 9: blackscholes speedup vs. simulated 1-tile run, by coherence scheme\n")
	fprintf(w, "%-12s %6s %14s %10s %12s %10s %10s\n",
		"scheme", "tiles", "sim-cycles", "speedup", "avg-mem-lat", "traps", "invals")
	for _, p := range r.Points {
		fprintf(w, "%-12s %6d %14d %9.2fx %12.1f %10d %10d\n",
			p.Scheme, p.Tiles, p.SimCycles, p.Speedup, p.AvgMemLatency, p.DirTraps, p.Invalidations)
	}
}
