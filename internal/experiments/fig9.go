package experiments

import (
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/config"
)

// Fig9Scheme names one coherence configuration of the study.
type Fig9Scheme struct {
	Label string
	Kind  config.CoherenceKind
	Ptrs  int
}

// Fig9Point is one (scheme, target tiles) measurement.
type Fig9Point struct {
	Scheme    string
	Tiles     int
	SimCycles arch.Cycles
	// Speedup is simulated-cycles(1 tile) / simulated-cycles(tiles),
	// the paper's y-axis.
	Speedup float64
	// AvgMemLatency tracks the memory-latency growth the paper discusses.
	AvgMemLatency float64
	DirTraps      uint64
	Invalidations uint64
}

// Fig9Result reproduces Figure 9: blackscholes speedup relative to
// simulated single-tile execution under Dir4NB, Dir16NB, full-map, and
// LimitLESS(4) directories, scaling the target tile count.
type Fig9Result struct {
	Points []Fig9Point
}

// Fig9Schemes returns the paper's four protocols.
func Fig9Schemes() []Fig9Scheme {
	return []Fig9Scheme{
		{Label: "Dir4NB", Kind: config.LimitedNB, Ptrs: 4},
		{Label: "Dir16NB", Kind: config.LimitedNB, Ptrs: 16},
		{Label: "full-map", Kind: config.FullMap, Ptrs: 0},
		{Label: "LimitLESS4", Kind: config.LimitLESS, Ptrs: 4},
	}
}

// Fig9 runs the coherence study.
func Fig9(pr Preset, tileCounts []int) (*Fig9Result, error) {
	if len(tileCounts) == 0 {
		switch pr {
		case Quick:
			tileCounts = []int{1, 2, 4, 8, 16}
		case Standard:
			tileCounts = []int{1, 2, 4, 8, 16, 32, 64}
		default:
			tileCounts = []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
		}
	}
	scale := scaleFor("blackscholes", pr)
	res := &Fig9Result{}
	for _, sch := range Fig9Schemes() {
		base := arch.Cycles(0)
		for _, tiles := range tileCounts {
			cfg := baseConfig(tiles)
			cfg.Coherence = config.CoherenceConfig{
				Kind:        sch.Kind,
				DirPointers: sch.Ptrs,
				TrapLatency: 100,
				DirLatency:  10,
			}
			rs, _, err := runOnce("blackscholes", tiles, scale, cfg)
			if err != nil {
				return nil, fmt.Errorf("fig9 %s/%d tiles: %w", sch.Label, tiles, err)
			}
			if base == 0 {
				base = rs.SimulatedCycles
			}
			res.Points = append(res.Points, Fig9Point{
				Scheme:        sch.Label,
				Tiles:         tiles,
				SimCycles:     rs.SimulatedCycles,
				Speedup:       float64(base) / float64(rs.SimulatedCycles),
				AvgMemLatency: rs.Totals.AvgMemLatency(),
				DirTraps:      rs.Totals.DirTraps,
				Invalidations: rs.Totals.InvSent,
			})
		}
	}
	return res, nil
}

// Print renders the Figure 9 series.
func (r *Fig9Result) Print(w io.Writer) {
	fprintf(w, "Figure 9: blackscholes speedup vs. simulated 1-tile run, by coherence scheme\n")
	fprintf(w, "%-12s %6s %14s %10s %12s %10s %10s\n",
		"scheme", "tiles", "sim-cycles", "speedup", "avg-mem-lat", "traps", "invals")
	for _, p := range r.Points {
		fprintf(w, "%-12s %6d %14d %9.2fx %12.1f %10d %10d\n",
			p.Scheme, p.Tiles, p.SimCycles, p.Speedup, p.AvgMemLatency, p.DirTraps, p.Invalidations)
	}
}
