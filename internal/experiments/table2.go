package experiments

import (
	"io"
	"sort"

	"repro/internal/scenario"
	"repro/internal/workloads"
)

// Table2Row is one benchmark's slowdown measurement.
type Table2Row struct {
	Benchmark  string
	NativeSec  float64
	Sim1Sec    float64 // 1 simulated host process
	Slowdown1  float64
	Sim8Sec    float64 // 8 simulated host processes
	Slowdown8  float64
	ChecksumOK bool
}

// Table2Result reproduces Table 2: wall-clock simulation time and slowdown
// versus native execution, on 1 and 8 host processes, 32 target tiles.
type Table2Result struct {
	Rows                   []Table2Row
	Mean1, Median1         float64
	Mean8, Median8         float64
	TargetTiles, Processes int
}

// Table2Scenario expresses the slowdown study declaratively: one grid
// per benchmark, sweeping the host process count. It runs Serial because
// the measurement is wall-clock time.
func Table2Scenario(pr Preset, benchmarks []string, tiles, procs int) *scenario.Scenario {
	sc := &scenario.Scenario{
		Name:   "table2",
		Preset: "small-cache",
		Size:   pr.String(),
		Base:   map[string]any{"Tiles": tiles},
		Serial: true,
		Verify: true,
	}
	for _, b := range benchmarks {
		sc.Grids = append(sc.Grids, scenario.Grid{
			Workload: b,
			Axes:     []scenario.Axis{{Field: "Processes", Values: []any{1, procs}}},
		})
	}
	return sc
}

// Table2 runs the slowdown study over the SPLASH suite through the
// shared scenario runner.
func Table2(pr Preset, benchmarks []string) (*Table2Result, error) {
	if len(benchmarks) == 0 {
		benchmarks = workloads.SplashNames()
	}
	tiles, threads, procs := 32, 32, 8
	if pr == Quick {
		tiles, threads, procs = 8, 8, 4
	}
	records, err := scenario.Run(Table2Scenario(pr, benchmarks, tiles, procs), scenario.Options{})
	if err != nil {
		return nil, err
	}
	res := &Table2Result{TargetTiles: tiles, Processes: procs}
	// Records arrive grid-ordered: per benchmark, procs=1 then procs=N.
	for i, b := range benchmarks {
		r1, rN := &records[2*i], &records[2*i+1]
		native := nativeTime(b, workloads.Params{Threads: threads, Scale: r1.Scale}).Seconds()
		res.Rows = append(res.Rows, Table2Row{
			Benchmark:  b,
			NativeSec:  native,
			Sim1Sec:    r1.WallSec,
			Slowdown1:  r1.WallSec / native,
			Sim8Sec:    rN.WallSec,
			Slowdown8:  rN.WallSec / native,
			ChecksumOK: r1.ChecksumOK != nil && *r1.ChecksumOK && rN.ChecksumOK != nil && *rN.ChecksumOK,
		})
	}
	var s1, s8 []float64
	for _, r := range res.Rows {
		s1 = append(s1, r.Slowdown1)
		s8 = append(s8, r.Slowdown8)
	}
	res.Mean1, res.Median1 = mean(s1), median(s1)
	res.Mean8, res.Median8 = mean(s8), median(s8)
	return res, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Print renders the Table 2 rows.
func (r *Table2Result) Print(w io.Writer) {
	fprintf(w, "Table 2: simulation wall time vs. native, %d target tiles, 1 and %d host processes\n",
		r.TargetTiles, r.Processes)
	fprintf(w, "%-16s %12s %12s %10s %12s %10s %8s\n",
		"application", "native-sec", "sim1-sec", "slow1", "simN-sec", "slowN", "check")
	for _, row := range r.Rows {
		ok := "ok"
		if !row.ChecksumOK {
			ok = "FAIL"
		}
		fprintf(w, "%-16s %12.4f %12.3f %9.0fx %12.3f %9.0fx %8s\n",
			row.Benchmark, row.NativeSec, row.Sim1Sec, row.Slowdown1,
			row.Sim8Sec, row.Slowdown8, ok)
	}
	fprintf(w, "%-16s %12s %12s %9.0fx %12s %9.0fx\n", "Mean", "-", "-", r.Mean1, "-", r.Mean8)
	fprintf(w, "%-16s %12s %12s %9.0fx %12s %9.0fx\n", "Median", "-", "-", r.Median1, "-", r.Median8)
}
