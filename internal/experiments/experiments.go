// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): host-core scaling (Figure 4), simulation slowdown
// versus native (Table 2), large-target scaling (Figure 5), the
// synchronization-model comparison (Figure 6 / Table 3), clock skew
// (Figure 7), the cache miss-rate characterization (Figure 8), and the
// cache-coherence study (Figure 9).
//
// Each experiment is a pure function from a size preset to structured
// results, plus a printer that renders the same rows the paper reports.
// Absolute numbers differ from the paper's (the substrate is a simulator
// on a small host, not an 8-core Xeon cluster); the shapes — who wins, by
// what factor, where curves bend — are the reproduction target, and
// EXPERIMENTS.md records both sides.
package experiments

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/workloads"
)

// Preset scales an experiment's problem sizes.
type Preset int

const (
	// Quick finishes in seconds; used by unit tests and CI.
	Quick Preset = iota
	// Standard is the default for cmd/graphite-sweep.
	Standard
	// Full approaches the paper's sizes where host memory permits.
	Full
)

// ParsePreset converts a flag value.
func ParsePreset(s string) (Preset, error) {
	switch s {
	case "quick":
		return Quick, nil
	case "standard":
		return Standard, nil
	case "full":
		return Full, nil
	default:
		return Quick, fmt.Errorf("unknown preset %q (quick|standard|full)", s)
	}
}

// scaleFor returns the workload Scale for a preset.
func scaleFor(name string, pr Preset) int {
	w, ok := workloads.Get(name)
	if !ok {
		panic("experiments: unknown workload " + name)
	}
	switch pr {
	case Quick:
		quick := map[string]int{
			"fft": 8, "lu_cont": 24, "lu_non_cont": 24,
			"ocean_cont": 24, "ocean_non_cont": 24, "radix": 9,
			"cholesky": 20, "fmm": 64, "water_nsquared": 32,
			"water_spatial": 48, "barnes": 48, "matmul": 16,
			"blackscholes": 8,
		}
		return quick[name]
	case Standard:
		return w.DefaultScale
	default:
		full := map[string]int{
			"fft": 12, "lu_cont": 128, "lu_non_cont": 128,
			"ocean_cont": 128, "ocean_non_cont": 128, "radix": 14,
			"cholesky": 96, "fmm": 512, "water_nsquared": 192,
			"water_spatial": 256, "barnes": 256, "matmul": 96,
			"blackscholes": 13,
		}
		return full[name]
	}
}

// baseConfig is the Table 1 target scaled to simulation-friendly cache
// sizes (per-tile cache metadata is host memory; see DESIGN.md).
func baseConfig(tiles int) config.Config {
	cfg := config.Default()
	cfg.Tiles = tiles
	cfg.L1I = config.CacheConfig{Enabled: false}
	cfg.L1D = config.CacheConfig{Enabled: true, Size: 16 << 10, Assoc: 8, LineSize: 64, HitLatency: 1}
	cfg.L2 = config.CacheConfig{Enabled: true, Size: 256 << 10, Assoc: 8, LineSize: 64, HitLatency: 8}
	return cfg
}

// runOnce executes one workload configuration and returns its stats and
// checksum. The returned RunStats' SimulatedCycles is replaced by the
// workload's region-of-interest time (the parallel region ending at the
// final join) when the workload recorded one — the standard SPLASH/PARSEC
// measurement; the raw total remains available as the max tile clock.
func runOnce(name string, threads int, scale int, cfg config.Config) (*core.RunStats, float64, error) {
	w, ok := workloads.Get(name)
	if !ok {
		return nil, 0, fmt.Errorf("unknown workload %q", name)
	}
	p := workloads.Params{Threads: threads, Scale: scale}
	cl, err := core.NewCluster(cfg, w.Build(p))
	if err != nil {
		return nil, 0, err
	}
	defer cl.Close()
	rs, err := cl.Run(0)
	if err != nil {
		return nil, 0, err
	}
	var buf [16]byte
	cl.Peek(workloads.DefaultResultAddr, buf[:])
	sum := math.Float64frombits(binary.LittleEndian.Uint64(buf[0:8]))
	if roi := arch.Cycles(binary.LittleEndian.Uint64(buf[8:16])); roi > 0 {
		rs.SimulatedCycles = roi
	}
	return rs, sum, nil
}

// nativeTime measures the wall-clock time of the native variant, repeated
// until at least minDuration has elapsed to get a stable measurement.
func nativeTime(name string, p workloads.Params) time.Duration {
	w, _ := workloads.Get(name)
	const minDuration = 20 * time.Millisecond
	reps := 0
	start := time.Now()
	for time.Since(start) < minDuration {
		w.Native(p)
		reps++
	}
	return time.Since(start) / time.Duration(reps)
}

// mean and stddev over float64 slices.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}
