// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): host-core scaling (Figure 4), simulation slowdown
// versus native (Table 2), large-target scaling (Figure 5), the
// synchronization-model comparison (Figure 6 / Table 3), clock skew
// (Figure 7), the cache miss-rate characterization (Figure 8), and the
// cache-coherence study (Figure 9).
//
// Each experiment is a pure function from a size preset to structured
// results, plus a printer that renders the same rows the paper reports.
// Absolute numbers differ from the paper's (the substrate is a simulator
// on a small host, not an 8-core Xeon cluster); the shapes — who wins, by
// what factor, where curves bend — are the reproduction target, and
// EXPERIMENTS.md records both sides.
package experiments

import (
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/workloads"
)

// Preset scales an experiment's problem sizes.
type Preset int

const (
	// Quick finishes in seconds; used by unit tests and CI.
	Quick Preset = iota
	// Standard is the default for cmd/graphite-sweep.
	Standard
	// Full approaches the paper's sizes where host memory permits.
	Full
)

// String returns the flag/scenario spelling of the preset.
func (p Preset) String() string {
	switch p {
	case Quick:
		return "quick"
	case Standard:
		return "standard"
	default:
		return "full"
	}
}

// ParsePreset converts a flag value.
func ParsePreset(s string) (Preset, error) {
	switch s {
	case "quick":
		return Quick, nil
	case "standard":
		return Standard, nil
	case "full":
		return Full, nil
	default:
		return Quick, fmt.Errorf("unknown preset %q (quick|standard|full)", s)
	}
}

// scaleFor returns the workload Scale for a preset. The tables live in
// the workloads package so scenarios resolve the same sizes.
func scaleFor(name string, pr Preset) int {
	s, err := workloads.ScaleFor(name, pr.String())
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return s
}

// baseConfig is the Table 1 target scaled to simulation-friendly cache
// sizes (per-tile cache metadata is host memory; see DESIGN.md). It is
// the scenario preset "small-cache", so bespoke experiments and scenario
// definitions agree on the base target.
func baseConfig(tiles int) config.Config {
	cfg, err := scenario.Preset("small-cache")
	if err != nil {
		panic("experiments: " + err.Error())
	}
	cfg.Tiles = tiles
	return cfg
}

// runOnce executes one workload configuration and returns its stats and
// checksum. The returned RunStats' SimulatedCycles is replaced by the
// workload's region-of-interest time (the parallel region ending at the
// final join) when the workload recorded one — the standard SPLASH/PARSEC
// measurement; the raw total remains available as the max tile clock.
// Execution and result readback are scenario.ExecuteStats, the same path
// the sweep runner uses, so bespoke experiments and scenarios cannot
// disagree on the result ABI.
func runOnce(name string, threads int, scale int, cfg config.Config) (*core.RunStats, float64, error) {
	rs, rec, err := runOnceRecord(name, threads, scale, cfg)
	if err != nil {
		return nil, 0, err
	}
	return rs, rec.Checksum, nil
}

// runOnceRecord is runOnce returning the whole scenario Record, for
// experiments that also need the config digest or stats snapshot.
func runOnceRecord(name string, threads int, scale int, cfg config.Config) (*core.RunStats, scenario.Record, error) {
	spec := scenario.RunSpec{
		Scenario: "bespoke",
		Workload: name,
		Threads:  threads,
		Scale:    scale,
		Seed:     cfg.RandSeed,
		Config:   cfg,
	}
	rec, rs := scenario.ExecuteStats(&spec)
	if rec.Error != "" {
		return nil, scenario.Record{}, errors.New(rec.Error)
	}
	return rs, rec, nil
}

// nativeTime measures the wall-clock time of the native variant, repeated
// until at least minDuration has elapsed to get a stable measurement.
//
//graphite:wallclock benchmarks the native baseline of Table 2; wall time is the measurement itself, not simulated state
func nativeTime(name string, p workloads.Params) time.Duration {
	w, _ := workloads.Get(name)
	const minDuration = 20 * time.Millisecond
	reps := 0
	start := time.Now()
	for time.Since(start) < minDuration {
		w.Native(p)
		reps++
	}
	return time.Since(start) / time.Duration(reps)
}

// mean and stddev over float64 slices.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}
