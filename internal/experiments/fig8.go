package experiments

import (
	"io"

	"repro/internal/scenario"
	"repro/internal/stats"
)

// Fig8Point is the miss-rate breakdown of one (benchmark, line size) cell.
type Fig8Point struct {
	Benchmark string
	LineSize  int
	// Rates are classified misses per memory reference, by kind.
	Rates [stats.NumMissKinds]float64
	// Total is the overall classified miss rate.
	Total float64
	// Upgrades is the S->M upgrade rate (not part of the 4-way split).
	Upgrades float64
}

// Fig8Result reproduces Figure 8: the breakdown of cache misses by type as
// the line size varies, using the paper's §4.4 memory configuration — L1
// caches disabled and a 1 MB 4-way L2 taking all references.
type Fig8Result struct {
	Points    []Fig8Point
	LineSizes []int
}

// Fig8Scenario expresses the miss-rate characterization declaratively:
// the §4.4 memory system (preset "l2-only") with a single grid sweeping
// benchmark × line size. Runs are independent and the metric is
// simulated (miss counters, not wall time), so the runner executes them
// host-parallel.
func Fig8Scenario(pr Preset, benchmarks []string, lineSizes []int, tiles, l2Size int) *scenario.Scenario {
	wl := make([]any, len(benchmarks))
	for i, b := range benchmarks {
		wl[i] = b
	}
	ls := make([]any, len(lineSizes))
	for i, v := range lineSizes {
		ls[i] = v
	}
	return &scenario.Scenario{
		Name:   "fig8",
		Preset: "l2-only",
		Size:   pr.String(),
		Base:   map[string]any{"Tiles": tiles, "L2.Size": l2Size},
		Grids: []scenario.Grid{{
			Axes: []scenario.Axis{
				{Field: "workload", Values: wl},
				{Field: "L2.LineSize", Values: ls},
			},
		}},
	}
}

// Fig8 runs the miss-rate characterization through the shared scenario
// runner; parallel bounds the worker pool (0 = host CPUs).
func Fig8(pr Preset, benchmarks []string, lineSizes []int, parallel int) (*Fig8Result, error) {
	if len(benchmarks) == 0 {
		// The six benchmarks of Figure 8.
		benchmarks = []string{"lu_cont", "water_spatial", "radix", "barnes", "fft", "ocean_cont"}
	}
	if len(lineSizes) == 0 {
		lineSizes = []int{16, 32, 64, 128, 256}
	}
	tiles := 32
	l2Size := 1 << 20
	if pr == Quick {
		tiles = 8
		l2Size = 64 << 10
	}
	sc := Fig8Scenario(pr, benchmarks, lineSizes, tiles, l2Size)
	records, err := scenario.Run(sc, scenario.Options{Parallel: parallel})
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{LineSizes: lineSizes}
	for i, r := range records {
		refs := float64(r.Stats.Loads + r.Stats.Stores)
		if refs == 0 {
			refs = 1
		}
		pt := Fig8Point{Benchmark: r.Workload, LineSize: lineSizes[i%len(lineSizes)]}
		for k := stats.MissKind(0); k < stats.NumMissKinds; k++ {
			pt.Rates[k] = float64(r.Stats.MissBy[k]) / refs
			pt.Total += pt.Rates[k]
		}
		pt.Upgrades = float64(r.Stats.Upgrades) / refs
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Print renders the Figure 8 breakdown.
func (r *Fig8Result) Print(w io.Writer) {
	fprintf(w, "Figure 8: cache miss breakdown by type vs. line size (L1 off, L2 only)\n")
	fprintf(w, "%-16s %6s %9s %9s %9s %9s %9s %9s\n",
		"benchmark", "line", "total%%", "cold%%", "capac%%", "true%%", "false%%", "upgr%%")
	for _, p := range r.Points {
		fprintf(w, "%-16s %6d %8.3f%% %8.3f%% %8.3f%% %8.3f%% %8.3f%% %8.3f%%\n",
			p.Benchmark, p.LineSize, 100*p.Total,
			100*p.Rates[stats.MissCold], 100*p.Rates[stats.MissCapacity],
			100*p.Rates[stats.MissTrueSharing], 100*p.Rates[stats.MissFalseSharing],
			100*p.Upgrades)
	}
}
