package experiments

import (
	"io"

	"repro/internal/config"
	"repro/internal/stats"
)

// Fig8Point is the miss-rate breakdown of one (benchmark, line size) cell.
type Fig8Point struct {
	Benchmark string
	LineSize  int
	// Rates are classified misses per memory reference, by kind.
	Rates [stats.NumMissKinds]float64
	// Total is the overall classified miss rate.
	Total float64
	// Upgrades is the S->M upgrade rate (not part of the 4-way split).
	Upgrades float64
}

// Fig8Result reproduces Figure 8: the breakdown of cache misses by type as
// the line size varies, using the paper's §4.4 memory configuration — L1
// caches disabled and a 1 MB 4-way L2 taking all references.
type Fig8Result struct {
	Points    []Fig8Point
	LineSizes []int
}

// Fig8 runs the miss-rate characterization.
func Fig8(pr Preset, benchmarks []string, lineSizes []int) (*Fig8Result, error) {
	if len(benchmarks) == 0 {
		// The six benchmarks of Figure 8.
		benchmarks = []string{"lu_cont", "water_spatial", "radix", "barnes", "fft", "ocean_cont"}
	}
	if len(lineSizes) == 0 {
		lineSizes = []int{16, 32, 64, 128, 256}
	}
	tiles, threads := 32, 32
	l2Size := 1 << 20
	if pr == Quick {
		tiles, threads = 8, 8
		l2Size = 64 << 10
	}
	res := &Fig8Result{LineSizes: lineSizes}
	for _, b := range benchmarks {
		scale := scaleFor(b, pr)
		for _, ls := range lineSizes {
			cfg := baseConfig(tiles)
			// §4.4 memory system: no L1s, one cache level.
			cfg.L1I = config.CacheConfig{Enabled: false}
			cfg.L1D = config.CacheConfig{Enabled: false}
			cfg.L2 = config.CacheConfig{Enabled: true, Size: l2Size, Assoc: 4, LineSize: ls, HitLatency: 8}
			rs, _, err := runOnce(b, threads, scale, cfg)
			if err != nil {
				return nil, err
			}
			refs := float64(rs.Totals.Loads + rs.Totals.Stores)
			if refs == 0 {
				refs = 1
			}
			pt := Fig8Point{Benchmark: b, LineSize: ls}
			for k := stats.MissKind(0); k < stats.NumMissKinds; k++ {
				pt.Rates[k] = float64(rs.Totals.MissBy[k]) / refs
				pt.Total += pt.Rates[k]
			}
			pt.Upgrades = float64(rs.Totals.Upgrades) / refs
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

// Print renders the Figure 8 breakdown.
func (r *Fig8Result) Print(w io.Writer) {
	fprintf(w, "Figure 8: cache miss breakdown by type vs. line size (L1 off, L2 only)\n")
	fprintf(w, "%-16s %6s %9s %9s %9s %9s %9s %9s\n",
		"benchmark", "line", "total%%", "cold%%", "capac%%", "true%%", "false%%", "upgr%%")
	for _, p := range r.Points {
		fprintf(w, "%-16s %6d %8.3f%% %8.3f%% %8.3f%% %8.3f%% %8.3f%% %8.3f%%\n",
			p.Benchmark, p.LineSize, 100*p.Total,
			100*p.Rates[stats.MissCold], 100*p.Rates[stats.MissCapacity],
			100*p.Rates[stats.MissTrueSharing], 100*p.Rates[stats.MissFalseSharing],
			100*p.Upgrades)
	}
}
