package experiments

import (
	"fmt"
	"repro/internal/config"
	"testing"
)

func TestDiagFig9Shape(t *testing.T) {
	for _, sch := range Fig9Schemes() {
		base := 0.0
		fmt.Printf("%-11s:", sch.Label)
		for _, tiles := range []int{1, 2, 4, 8, 16, 32} {
			cfg := baseConfig(tiles)
			cfg.Coherence = config.CoherenceConfig{Kind: sch.Kind, DirPointers: sch.Ptrs, TrapLatency: 100, DirLatency: 10}
			rs, _, err := runOnce("blackscholes", tiles, 10, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if base == 0 {
				base = float64(rs.SimulatedCycles)
			}
			fmt.Printf(" %5.2fx", base/float64(rs.SimulatedCycles))
		}
		fmt.Println()
	}
}
