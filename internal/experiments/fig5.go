package experiments

import (
	"io"

	"repro/internal/config"
)

// Fig5Point is one (machines, wall time) measurement.
type Fig5Point struct {
	Machines int
	WallSec  float64
	Speedup  float64 // versus 1 machine
}

// Fig5Result reproduces Figure 5: run time of a matrix-multiply kernel
// with one thread per tile on a large target architecture, across growing
// numbers of host processes ("machines").
type Fig5Result struct {
	TargetTiles int
	Points      []Fig5Point
}

// Fig5 runs the large-target scaling study. The paper uses 1024 tiles on
// 1..10 machines; presets scale the tile count to host memory (per-tile
// cache metadata) while keeping one thread per tile and the neighbour
// messaging pattern.
func Fig5(pr Preset, machines []int) (*Fig5Result, error) {
	if len(machines) == 0 {
		machines = []int{1, 2, 4, 6, 8, 10}
	}
	tiles := 1024
	scale := 320 // ~102,400 elements, as in the paper
	switch pr {
	case Quick:
		tiles, scale = 64, 32
	case Standard:
		tiles, scale = 256, 64
	}
	res := &Fig5Result{TargetTiles: tiles}
	base := 0.0
	for _, m := range machines {
		cfg := baseConfig(tiles)
		cfg.Processes = m
		// Large targets need lean per-tile caches (host memory).
		cfg.L1D = config.CacheConfig{Enabled: true, Size: 4 << 10, Assoc: 2, LineSize: 64, HitLatency: 1}
		cfg.L2 = config.CacheConfig{Enabled: true, Size: 32 << 10, Assoc: 4, LineSize: 64, HitLatency: 8}
		rs, _, err := runOnce("matmul", tiles, scale, cfg)
		if err != nil {
			return nil, err
		}
		wall := rs.Wall.Seconds()
		if base == 0 {
			base = wall
		}
		res.Points = append(res.Points, Fig5Point{Machines: m, WallSec: wall, Speedup: base / wall})
	}
	return res, nil
}

// Print renders the Figure 5 series.
func (r *Fig5Result) Print(w io.Writer) {
	fprintf(w, "Figure 5: %d-thread matrix-multiply on %d target tiles vs. host processes\n",
		r.TargetTiles, r.TargetTiles)
	fprintf(w, "%10s %12s %10s\n", "machines", "wall-sec", "speedup")
	for _, p := range r.Points {
		fprintf(w, "%10d %12.3f %9.2fx\n", p.Machines, p.WallSec, p.Speedup)
	}
}
