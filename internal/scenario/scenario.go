// Package scenario turns the simulator into a general design-space sweep
// machine (the paper's stated purpose, §4: explore many target
// architectures cheaply). A Scenario is a declarative description of a
// set of simulation runs: a named configuration preset, field overrides
// addressed by dotted Go field paths into config.Config, and parameter
// grids whose axes expand into the cross product of independent runs.
// The runner (runner.go) executes the expanded runs on a host-parallel
// worker pool and emits one JSONL record per run.
//
// Scenarios come from two places: JSON files loaded with Load (the
// cmd/graphite-sweep -scenario mode), and Go code building the structs
// directly (the experiments package expresses the paper's tables and
// figures this way, so bespoke loops and declarative sweeps share one
// execution path).
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"sort"
	"strings"

	"repro/internal/config"
	"repro/internal/workloads"
)

// Axis is one swept dimension of a grid. Field is either a run-level
// parameter ("workload", "threads", "scale", "processes" — the last being
// the OS process count of a distributed run), the virtual "line_size"
// (which sets the line size of every cache level together, as
// config.Validate requires), or a dotted path into config.Config
// ("Tiles", "L2.LineSize", "Sync.Model", ...). Enum-typed config fields
// accept their string spellings ("lax_barrier", "dir_nb", "mesh_hop", ...).
//
//graphite:wire
type Axis struct {
	Field  string `json:"field"`
	Values []any  `json:"values"`
}

// Grid is one block of runs: optional per-grid defaults plus the axes
// whose cross product the grid expands to. A grid with no axes is a
// single run.
//
//graphite:wire
type Grid struct {
	// Workload, Threads, Scale, Processes override the scenario-level
	// defaults for this grid (zero values inherit).
	Workload  string `json:"workload,omitempty"`
	Threads   int    `json:"threads,omitempty"`
	Scale     int    `json:"scale,omitempty"`
	Processes int    `json:"processes,omitempty"`
	// Base is applied to the configuration after the scenario-level Base.
	Base map[string]any `json:"base,omitempty"`
	// Axes are expanded right-to-left: the last axis varies fastest.
	Axes []Axis `json:"axes,omitempty"`
}

// CheckpointPolicy is the per-run checkpoint and recovery policy. For
// multi-process runs it also arms worker-loss recovery: the coordinator
// re-forks dead workers and replays, verifying the replay against the
// saved manifests, so a killed worker costs wall-clock time instead of
// the run.
//
//graphite:wire
type CheckpointPolicy struct {
	// Every checkpoints at every Nth barrier epoch (0: checkpointing
	// off). Requires the LaxBarrier synchronization model — epochs are
	// the only globally quiescent points.
	Every int64 `json:"every,omitempty"`
	// Dir receives the checkpoint files. Empty: a per-run temporary
	// directory, removed after the run (useful purely for recovery).
	Dir string `json:"dir,omitempty"`
	// MaxRestarts bounds worker re-fork recovery attempts for
	// multi-process runs (0: give up on the first worker loss).
	MaxRestarts int `json:"max_restarts,omitempty"`
}

// Scenario is a declarative sweep definition.
//
//graphite:wire
type Scenario struct {
	// Name labels every emitted record.
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Preset names the base configuration (see Presets); default "default".
	Preset string `json:"preset,omitempty"`
	// Size resolves workload problem sizes when Scale is 0:
	// "quick" (default), "standard", or "full".
	Size string `json:"size,omitempty"`
	// Workload, Threads, Scale are scenario-wide defaults. Threads 0 means
	// one thread per target tile; Scale 0 means the workload's Size default.
	Workload string `json:"workload,omitempty"`
	Threads  int    `json:"threads,omitempty"`
	Scale    int    `json:"scale,omitempty"`
	// Processes > 1 executes each run as one simulation distributed
	// across that many OS processes (tiles striped, TCP fabric), instead
	// of in-process. Like threads/scale it is a run-level field: grids
	// may override it and axes may sweep it ("processes"). Results are
	// identical to the in-process run of the same spec — the config
	// digest deliberately excludes host-execution fields.
	Processes int `json:"processes,omitempty"`
	// Hosts pins every process's fabric listen address (host:port, one
	// per process) when Processes > 1. Empty: free localhost ports per
	// run. Scenarios with pinned hosts run serially (concurrent runs
	// would collide on the ports).
	Hosts []string `json:"hosts,omitempty"`
	// Seed is the reproducibility base; run i executes with RandSeed
	// Seed+i. Default 1.
	Seed int64 `json:"seed,omitempty"`
	// Repeats runs every grid point this many times (consecutive run
	// indices, hence distinct seeds). Default 1.
	Repeats int `json:"repeats,omitempty"`
	// Serial forces the runner to one worker, e.g. for wall-clock-accurate
	// measurements. Runs that set Config.Workers force this implicitly
	// (GOMAXPROCS is process-global).
	Serial bool `json:"serial,omitempty"`
	// Verify additionally executes each run's native variant and records
	// whether the simulated checksum matches it.
	Verify bool `json:"verify,omitempty"`
	// TileStats embeds the per-tile statistics records in every JSONL
	// record (large; off by default).
	TileStats bool `json:"tile_stats,omitempty"`
	// Checkpoint enables per-run checkpointing (and, for multi-process
	// runs, worker-loss recovery) for every run of the scenario.
	Checkpoint *CheckpointPolicy `json:"checkpoint,omitempty"`
	// Base is applied to the preset configuration before grid overrides.
	Base  map[string]any `json:"base,omitempty"`
	Grids []Grid         `json:"grids"`
}

// RunSpec is one fully resolved run of an expanded scenario. It is
// JSON-round-trippable (config.Config is plain data), which is what lets
// the dispatch package ship specs to remote workers: a worker decodes the
// spec, executes it, and the recomputed config digest matches the
// coordinator's.
//
//graphite:wire
type RunSpec struct {
	Scenario string `json:"scenario"`
	Run      int    `json:"run"`   // global index across the scenario
	Grid     int    `json:"grid"`  // index of the originating grid
	Point    int    `json:"point"` // index within the grid's cross product
	Repeat   int    `json:"repeat"`
	Workload string `json:"workload"`
	Threads  int    `json:"threads"`
	Scale    int    `json:"scale"`
	Seed     int64  `json:"seed"` // Config.RandSeed of this run
	// Processes > 1 distributes this run across that many OS processes;
	// Hosts optionally pins the per-process fabric addresses (see
	// Scenario.Hosts).
	Processes int      `json:"processes,omitempty"`
	Hosts     []string `json:"hosts,omitempty"`
	// Axes records the axis values of this point (for the JSONL record).
	Axes map[string]any `json:"axes,omitempty"`
	// TileStats embeds per-tile records in the run's Record.
	TileStats bool `json:"tile_stats,omitempty"`
	// Checkpoint is the run's checkpoint/recovery policy (nil: off).
	Checkpoint *CheckpointPolicy `json:"checkpoint,omitempty"`
	Config     config.Config     `json:"config"` //graphite:wireexempt Config's wire schema IS its Go field names: config_digest hashes config.Canonical()'s JSON, so retagging would invalidate every recorded digest; the round-trip tests in config freeze it instead
}

// presets maps preset names to base configurations. "default" is the
// paper's Table 1 target; the others are the evaluation section's
// variants, shared with internal/experiments so a figure regenerated
// bespoke and the same figure expressed as a scenario start from the
// same configuration.
var presets = map[string]func() config.Config{
	// The Table 1 target architecture.
	"default": config.Default,
	// The experiments' base: Table 1 scaled to simulation-friendly cache
	// sizes (per-tile cache metadata is host memory; see DESIGN.md).
	"small-cache": func() config.Config {
		cfg := config.Default()
		cfg.L1I = config.CacheConfig{Enabled: false}
		cfg.L1D = config.CacheConfig{Enabled: true, Size: 16 << 10, Assoc: 8, LineSize: 64, HitLatency: 1}
		cfg.L2 = config.CacheConfig{Enabled: true, Size: 256 << 10, Assoc: 8, LineSize: 64, HitLatency: 8}
		return cfg
	},
	// The §4.4 memory system of Figure 8: no L1s, a single 1 MB 4-way L2
	// taking every reference.
	"l2-only": func() config.Config {
		cfg := config.Default()
		cfg.L1I = config.CacheConfig{Enabled: false}
		cfg.L1D = config.CacheConfig{Enabled: false}
		cfg.L2 = config.CacheConfig{Enabled: true, Size: 1 << 20, Assoc: 4, LineSize: 64, HitLatency: 8}
		return cfg
	},
	// Lean per-tile caches for very large targets (Figure 5: 1024 tiles).
	"large-target": func() config.Config {
		cfg := config.Default()
		cfg.L1I = config.CacheConfig{Enabled: false}
		cfg.L1D = config.CacheConfig{Enabled: true, Size: 4 << 10, Assoc: 2, LineSize: 64, HitLatency: 1}
		cfg.L2 = config.CacheConfig{Enabled: true, Size: 32 << 10, Assoc: 4, LineSize: 64, HitLatency: 8}
		return cfg
	},
}

// Presets returns the available preset names, sorted.
func Presets() []string {
	out := make([]string, 0, len(presets))
	//graphite:maporder drained into sort.Strings below; iteration order cannot survive the sort
	for n := range presets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Preset returns the named base configuration.
func Preset(name string) (config.Config, error) {
	if name == "" {
		name = "default"
	}
	f, ok := presets[name]
	if !ok {
		return config.Config{}, fmt.Errorf("scenario: unknown preset %q (have %s)", name, strings.Join(Presets(), ", "))
	}
	return f(), nil
}

// Load reads a scenario file. Unknown fields are rejected so typos in
// sweep definitions fail loudly instead of silently not sweeping.
func Load(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	s, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return s, nil
}

// Parse decodes a scenario from JSON.
func Parse(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	dec.UseNumber()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}

// Expand resolves every grid point into a RunSpec, applying overrides in
// documented precedence order (lowest to highest): preset, scenario Base,
// grid Base, axis values (later axes win on the same field). Every
// resulting configuration is validated; the first invalid point aborts
// the expansion with its grid/point coordinates.
func (s *Scenario) Expand() ([]RunSpec, error) {
	if s.Name == "" {
		return nil, fmt.Errorf("scenario: missing name")
	}
	if len(s.Grids) == 0 {
		return nil, fmt.Errorf("scenario %s: no grids", s.Name)
	}
	size := s.Size
	if size == "" {
		size = "quick"
	}
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	repeats := s.Repeats
	if repeats <= 0 {
		repeats = 1
	}

	var specs []RunSpec
	for gi := range s.Grids {
		g := &s.Grids[gi]
		for ai, ax := range g.Axes {
			if len(ax.Values) == 0 {
				return nil, fmt.Errorf("scenario %s grid %d axis %d (%s): no values", s.Name, gi, ai, ax.Field)
			}
		}
		points := 1
		for _, ax := range g.Axes {
			points *= len(ax.Values)
		}
		for pt := 0; pt < points; pt++ {
			spec, err := s.resolvePoint(gi, pt, size)
			if err != nil {
				return nil, err
			}
			for rep := 0; rep < repeats; rep++ {
				sp := *spec
				sp.Repeat = rep
				sp.Run = len(specs)
				sp.Seed = seed + int64(sp.Run)
				sp.Config.RandSeed = sp.Seed
				specs = append(specs, sp)
			}
		}
	}
	return specs, nil
}

// resolvePoint builds the RunSpec of one grid point (before repeat/seed
// assignment).
func (s *Scenario) resolvePoint(gi, pt int, size string) (*RunSpec, error) {
	g := &s.Grids[gi]
	fail := func(err error) (*RunSpec, error) {
		return nil, fmt.Errorf("scenario %s grid %d point %d: %w", s.Name, gi, pt, err)
	}

	cfg, err := Preset(s.Preset)
	if err != nil {
		return fail(err)
	}
	spec := &RunSpec{
		Scenario:   s.Name,
		Grid:       gi,
		Point:      pt,
		Workload:   s.Workload,
		Threads:    s.Threads,
		Scale:      s.Scale,
		Processes:  s.Processes,
		Axes:       map[string]any{},
		TileStats:  s.TileStats,
		Checkpoint: s.Checkpoint,
	}
	if g.Workload != "" {
		spec.Workload = g.Workload
	}
	if g.Threads != 0 {
		spec.Threads = g.Threads
	}
	if g.Scale != 0 {
		spec.Scale = g.Scale
	}
	if g.Processes != 0 {
		spec.Processes = g.Processes
	}
	for _, over := range []map[string]any{s.Base, g.Base} {
		for _, field := range sortedKeys(over) {
			if err := applyField(&cfg, spec, field, over[field]); err != nil {
				return fail(err)
			}
		}
	}
	// Decompose pt into axis indices, last axis fastest; apply in
	// declaration order so a later axis wins on a shared field.
	vals := make([]any, len(g.Axes))
	idx := pt
	for ai := len(g.Axes) - 1; ai >= 0; ai-- {
		vals[ai] = g.Axes[ai].Values[idx%len(g.Axes[ai].Values)]
		idx /= len(g.Axes[ai].Values)
	}
	for ai, ax := range g.Axes {
		spec.Axes[ax.Field] = vals[ai]
		if err := applyField(&cfg, spec, ax.Field, vals[ai]); err != nil {
			return fail(err)
		}
	}

	if spec.Workload == "" {
		return fail(fmt.Errorf("no workload (set it on the scenario, the grid, or a %q axis)", "workload"))
	}
	if _, ok := workloads.Get(spec.Workload); !ok {
		return fail(fmt.Errorf("unknown workload %q", spec.Workload))
	}
	if spec.Scale == 0 {
		sc, err := workloads.ScaleFor(spec.Workload, size)
		if err != nil {
			return fail(err)
		}
		spec.Scale = sc
	}
	if spec.Threads == 0 {
		spec.Threads = cfg.Tiles
	}
	if spec.Threads < 1 || spec.Threads > cfg.Tiles {
		return fail(fmt.Errorf("threads %d out of range [1, %d tiles]", spec.Threads, cfg.Tiles))
	}
	if spec.Processes < 0 || spec.Processes > cfg.Tiles {
		return fail(fmt.Errorf("processes %d out of range [0, %d tiles]", spec.Processes, cfg.Tiles))
	}
	if spec.Processes > 1 {
		if len(s.Hosts) > 0 && len(s.Hosts) != spec.Processes {
			return fail(fmt.Errorf("%d hosts for %d processes", len(s.Hosts), spec.Processes))
		}
		spec.Hosts = s.Hosts
	}
	if err := cfg.Validate(); err != nil {
		return fail(err)
	}
	spec.Config = cfg
	return spec, nil
}

// applyField applies one override. Run-level fields are the lowercase
// names "workload", "threads", "scale", "processes"; everything else is a
// dotted Go field path into config.Config.
func applyField(cfg *config.Config, spec *RunSpec, field string, v any) error {
	switch field {
	case "workload":
		s, ok := v.(string)
		if !ok {
			return fmt.Errorf("workload: want a string, got %T", v)
		}
		spec.Workload = s
		return nil
	case "threads":
		n, err := toInt(v)
		if err != nil {
			return fmt.Errorf("threads: %w", err)
		}
		spec.Threads = int(n)
		return nil
	case "scale":
		n, err := toInt(v)
		if err != nil {
			return fmt.Errorf("scale: %w", err)
		}
		spec.Scale = int(n)
		return nil
	case "processes":
		// OS process count of the run — a sweepable host-execution
		// parameter (distinct from the config path "Processes", which
		// stripes tiles across simulated processes in-process).
		n, err := toInt(v)
		if err != nil {
			return fmt.Errorf("processes: %w", err)
		}
		spec.Processes = int(n)
		return nil
	case "line_size":
		// Virtual field: the line size must be identical across enabled
		// cache levels (config.Validate), so sweeping it means setting
		// every level at once.
		n, err := toInt(v)
		if err != nil {
			return fmt.Errorf("line_size: %w", err)
		}
		cfg.L1I.LineSize = int(n)
		cfg.L1D.LineSize = int(n)
		cfg.L2.LineSize = int(n)
		return nil
	}
	return setConfigField(cfg, field, v)
}

// enumParsers maps enum-typed config fields to their string parsers.
var enumParsers = map[reflect.Type]func(string) (int64, error){
	reflect.TypeOf(config.SyncModel(0)): func(s string) (int64, error) {
		v, err := config.ParseSyncModel(s)
		return int64(v), err
	},
	reflect.TypeOf(config.NetworkModelKind(0)): func(s string) (int64, error) {
		v, err := config.ParseNetworkModelKind(s)
		return int64(v), err
	},
	reflect.TypeOf(config.CoherenceKind(0)): func(s string) (int64, error) {
		v, err := config.ParseCoherenceKind(s)
		return int64(v), err
	},
	reflect.TypeOf(config.TransportKind(0)): func(s string) (int64, error) {
		v, err := config.ParseTransportKind(s)
		return int64(v), err
	},
	reflect.TypeOf(config.CoreModelKind(0)): func(s string) (int64, error) {
		v, err := config.ParseCoreModelKind(s)
		return int64(v), err
	},
}

// setConfigField sets a leaf field of config.Config addressed by a dotted
// path of exported Go field names, e.g. "L2.LineSize" or "Sync.Model".
func setConfigField(cfg *config.Config, path string, v any) error {
	rv := reflect.ValueOf(cfg).Elem()
	for _, part := range strings.Split(path, ".") {
		if rv.Kind() != reflect.Struct {
			return fmt.Errorf("config field %q: %q is not a struct", path, part)
		}
		f := rv.FieldByName(part)
		if !f.IsValid() {
			return fmt.Errorf("config field %q: no field %q in %s (fields: %s)",
				path, part, rv.Type(), fieldNames(rv.Type()))
		}
		rv = f
	}
	return setLeaf(rv, v, path)
}

// setLeaf assigns v (a JSON scalar or a Go value from a programmatic
// scenario) to the addressed field.
func setLeaf(rv reflect.Value, v any, path string) error {
	if parse, ok := enumParsers[rv.Type()]; ok {
		if s, isStr := v.(string); isStr {
			n, err := parse(s)
			if err != nil {
				return fmt.Errorf("config field %q: %w", path, err)
			}
			rv.SetInt(n)
			return nil
		}
		// Fall through: numeric enum values are accepted too.
	}
	switch rv.Kind() {
	case reflect.Bool:
		b, ok := v.(bool)
		if !ok {
			return fmt.Errorf("config field %q: want a bool, got %v (%T)", path, v, v)
		}
		rv.SetBool(b)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		n, err := toInt(v)
		if err != nil {
			return fmt.Errorf("config field %q: %w", path, err)
		}
		rv.SetInt(n)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		n, err := toInt(v)
		if err != nil || n < 0 {
			return fmt.Errorf("config field %q: want a non-negative integer, got %v", path, v)
		}
		rv.SetUint(uint64(n))
	case reflect.Float32, reflect.Float64:
		f, err := toFloat(v)
		if err != nil {
			return fmt.Errorf("config field %q: %w", path, err)
		}
		rv.SetFloat(f)
	default:
		return fmt.Errorf("config field %q: cannot set %s fields from a scenario", path, rv.Kind())
	}
	return nil
}

// toInt converts a scenario value (json.Number from files, Go numeric
// types from programmatic scenarios) to an integer.
func toInt(v any) (int64, error) {
	switch n := v.(type) {
	case json.Number:
		return n.Int64()
	case int:
		return int64(n), nil
	case int64:
		return n, nil
	case uint64:
		return int64(n), nil
	case float64:
		if n != float64(int64(n)) {
			return 0, fmt.Errorf("want an integer, got %v", n)
		}
		return int64(n), nil
	}
	rv := reflect.ValueOf(v)
	switch rv.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return rv.Int(), nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return int64(rv.Uint()), nil
	}
	return 0, fmt.Errorf("want an integer, got %v (%T)", v, v)
}

func toFloat(v any) (float64, error) {
	switch n := v.(type) {
	case json.Number:
		return n.Float64()
	case float64:
		return n, nil
	case int:
		return float64(n), nil
	case int64:
		return float64(n), nil
	}
	return 0, fmt.Errorf("want a number, got %v (%T)", v, v)
}

func sortedKeys(m map[string]any) []string {
	out := make([]string, 0, len(m))
	//graphite:maporder drained into sort.Strings below; iteration order cannot survive the sort
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func fieldNames(t reflect.Type) string {
	var names []string
	for i := 0; i < t.NumField(); i++ {
		names = append(names, t.Field(i).Name)
	}
	return strings.Join(names, ", ")
}

// Digest returns the canonical configuration digest recorded with every
// run: a SHA-256 over the JSON form of the config's canonical target
// (config.Canonical — host-execution fields like the OS process count,
// transport, and GOMAXPROCS bound are excluded, because they must not
// change results). Two runs with equal digests simulated the identical
// target.
func Digest(cfg *config.Config) string {
	canon := cfg.Canonical()
	buf, err := json.Marshal(&canon)
	if err != nil {
		// Config is plain data; marshalling cannot fail.
		panic("scenario: config digest: " + err.Error())
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:])
}
