// The scenario runner: executes expanded RunSpecs on a host-parallel
// worker pool. Each run is fully isolated — it builds its own Cluster
// (transports, memory system, MCP), so concurrent runs share no mutable
// simulator state and a run's statistics are unaffected by what else the
// pool is doing. Wall-clock time is the only host-dependent field; it is
// recorded but excluded from reproducibility comparisons (see DESIGN.md).

package scenario

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strings"
	"sync"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/core/launch"
	"repro/internal/mcp"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// RecordSchema identifies the JSONL record format.
const RecordSchema = "graphite-scenario/v1"

// Record is one run's result — one line of the output JSONL file.
//
//graphite:wire
type Record struct {
	Schema   string `json:"schema"`
	Scenario string `json:"scenario"`
	Run      int    `json:"run"`
	Grid     int    `json:"grid"`
	Point    int    `json:"point"`
	Repeat   int    `json:"repeat"`
	Workload string `json:"workload"`
	Threads  int    `json:"threads"`
	Scale    int    `json:"scale"`
	Seed     int64  `json:"seed"`
	// Processes is the OS process count of a distributed run (omitted for
	// ordinary in-process runs).
	Processes int `json:"processes,omitempty"`
	// Axes holds this point's swept values, keyed by axis field.
	Axes map[string]any `json:"axes,omitempty"`
	// ConfigDigest is the SHA-256 of the run's full configuration.
	ConfigDigest string `json:"config_digest"`
	// SimCycles is the simulated application run-time (the workload's
	// region of interest when it records one, else the max tile clock).
	SimCycles uint64 `json:"sim_cycles"`
	// Checksum is the workload's result checksum read back from simulated
	// memory; ChecksumOK compares it against the native variant when the
	// scenario sets Verify.
	Checksum   float64 `json:"checksum"`
	ChecksumOK *bool   `json:"checksum_ok,omitempty"`
	// Stats aggregates the per-tile counters (deterministic for a given
	// seed when the run has one application thread; see DESIGN.md).
	Stats stats.Totals `json:"stats"`
	// MissByName is the classified-miss breakdown keyed by kind name —
	// the reader-friendly companion of Stats' positional miss_by array.
	MissByName map[string]uint64 `json:"miss_by_name,omitempty"`
	// Tiles holds the per-tile records when the scenario sets TileStats.
	Tiles []stats.Tile `json:"tiles,omitempty"`
	// Cached marks a record served from a RecordCache instead of being
	// simulated in this invocation (WallSec is zeroed: no host time was
	// spent). Result fields are byte-identical to a fresh run's — that
	// is the determinism contract the cache is built on.
	Cached bool `json:"cached,omitempty"`
	// WallSec is host wall-clock time — never deterministic.
	WallSec float64 `json:"wall_sec"`
	// ProcWallSec holds each OS process's wall-clock serving time (from
	// startup to teardown ack), indexed by process, for distributed runs.
	ProcWallSec []float64 `json:"proc_wall_sec,omitempty"`
	Error       string    `json:"error,omitempty"`
}

// Options configures a runner invocation.
type Options struct {
	// Parallel bounds the worker pool; 0 means one worker per host CPU.
	// Forced to 1 when the scenario is Serial or any run sets
	// Config.Workers (GOMAXPROCS is process-global, so such runs cannot
	// share the host).
	Parallel int
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer
	// Cache, when non-nil, is consulted per RunSpec before simulating
	// (hits are adopted via CacheLookup) and — in RunExpanded, after
	// verification — receives every cacheable fresh record.
	Cache RecordCache
}

// Run expands the scenario and executes every run on the worker pool.
// The returned records are ordered by run index regardless of completion
// order. The error joins all per-run failures (each failed run also
// carries its message in Record.Error); records of successful runs are
// valid even when err != nil.
func Run(s *Scenario, opt Options) ([]Record, error) {
	specs, err := s.Expand()
	if err != nil {
		return nil, err
	}
	return RunExpanded(s, specs, opt)
}

// RunExpanded executes specs previously produced by s.Expand(), for
// callers that inspect the expansion (count it, log it) before running.
func RunExpanded(s *Scenario, specs []RunSpec, opt Options) ([]Record, error) {
	records, err := RunSpecs(specs, NeedsSerial(s, specs), opt)
	if s.Verify {
		VerifyParallel(records, opt.Parallel)
	} else {
		// A cache hit may carry checksum_ok from a verified past sweep;
		// this sweep didn't ask, so drop it or the output would differ
		// from a fresh unverified run (same rule as dispatch's merge).
		for i := range records {
			records[i].ChecksumOK = nil
		}
	}
	if opt.Cache != nil {
		// Put after verification so cached records carry their verdict;
		// a failed verification keeps the record out entirely.
		for i := range records {
			if Cacheable(&records[i]) {
				opt.Cache.Put(records[i])
			}
		}
	}
	return records, err
}

// NeedsSerial reports whether the scenario must run with one worker per
// host process (Serial scenarios, runs that pin Config.Workers —
// GOMAXPROCS is process-global — and multi-process runs with pinned
// fabric addresses, which would collide if run concurrently). The
// dispatch coordinator forwards this to workers so a distributed sweep
// honors the same constraint.
func NeedsSerial(s *Scenario, specs []RunSpec) bool {
	if s.Serial {
		return true
	}
	for i := range specs {
		if specs[i].Config.Workers > 0 {
			return true
		}
		if specs[i].Processes > 1 && len(specs[i].Hosts) > 0 {
			return true
		}
	}
	return false
}

// RunSpecs executes pre-expanded specs (sharing Expand's spec layout)
// with scenario-level options applied by the caller.
func RunSpecs(specs []RunSpec, serial bool, opt Options) ([]Record, error) {
	workers := opt.Parallel
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if serial {
		workers = 1
	}
	if workers > len(specs) {
		workers = len(specs)
	}

	records := make([]Record, len(specs))
	idx := make(chan int)
	var wg sync.WaitGroup
	var progressMu sync.Mutex
	done := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if rec, ok := CacheLookup(opt.Cache, &specs[i], ""); ok {
					records[i] = rec
				} else {
					records[i] = Execute(&specs[i])
				}
				if opt.Progress != nil {
					progressMu.Lock()
					done++
					r := &records[i]
					status := fmt.Sprintf("%d cycles", r.SimCycles)
					if r.Cached {
						status += ", cached"
					}
					if r.Error != "" {
						status = "ERROR: " + r.Error
					}
					fmt.Fprintf(opt.Progress, "[%d/%d] run %d %s %s (%.3fs, %s)\n",
						done, len(specs), r.Run, r.Workload, axesString(r.Axes), r.WallSec, status)
					progressMu.Unlock()
				}
			}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	var errs []error
	for i := range records {
		if records[i].Error != "" {
			errs = append(errs, fmt.Errorf("run %d (%s): %s", records[i].Run, records[i].Workload, records[i].Error))
		}
	}
	return records, errors.Join(errs...)
}

// Execute runs one spec to completion, building and tearing down a
// dedicated cluster. Failures are reported in Record.Error rather than
// aborting: the rest of a sweep is usually still valuable.
func Execute(spec *RunSpec) Record {
	rec, _ := ExecuteStats(spec)
	return rec
}

// ExecuteStats is Execute plus the raw RunStats, for callers that need
// per-run data a Record does not carry (clock-skew samples, per-tile
// records). It is the single owner of the workload result-readback ABI:
// the checksum lives at DefaultResultAddr, the region-of-interest end
// time 8 bytes after it, and the ROI (when recorded) replaces the
// simulated cycle count in both the Record and the RunStats. rs is nil
// when the record carries an error.
func ExecuteStats(spec *RunSpec) (Record, *core.RunStats) {
	rec := Record{
		Schema:       RecordSchema,
		Scenario:     spec.Scenario,
		Run:          spec.Run,
		Grid:         spec.Grid,
		Point:        spec.Point,
		Repeat:       spec.Repeat,
		Workload:     spec.Workload,
		Threads:      spec.Threads,
		Scale:        spec.Scale,
		Seed:         spec.Seed,
		Axes:         spec.Axes,
		ConfigDigest: Digest(&spec.Config),
	}
	if spec.Processes > 1 {
		return executeMultiProcess(spec, rec)
	}
	w, ok := workloads.Get(spec.Workload)
	if !ok {
		rec.Error = fmt.Sprintf("unknown workload %q", spec.Workload)
		return rec, nil
	}
	p := workloads.Params{Threads: spec.Threads, Scale: spec.Scale}
	cl, err := core.NewCluster(spec.Config, w.Build(p))
	if err != nil {
		rec.Error = err.Error()
		return rec, nil
	}
	defer cl.Close()
	// An in-process run has no worker to lose, so checkpointing here is
	// pure state capture — only worth the I/O when the policy names a
	// directory to keep the snapshots in.
	if cp := spec.Checkpoint; cp != nil && cp.Every > 0 && cp.Dir != "" {
		cl.SetCheckpoint(&mcp.CheckpointPolicy{
			Dir:          cp.Dir,
			Every:        cp.Every,
			ConfigDigest: rec.ConfigDigest,
			OnError:      func(err error) { fmt.Fprintf(os.Stderr, "scenario: checkpoint: %v\n", err) },
		})
	}
	rs, err := cl.Run(0)
	if err != nil {
		rec.Error = err.Error()
		return rec, nil
	}
	var buf [16]byte
	cl.Peek(workloads.DefaultResultAddr, buf[:])
	applyResultMem(&rec, rs, buf[:])
	if spec.TileStats {
		rec.Tiles = rs.Tiles
	}
	rec.WallSec = rs.Wall.Seconds()
	return rec, rs
}

// applyResultMem folds the workload result-readback window (checksum at
// byte 0, region-of-interest end time at byte 8) and the run stats into
// the record.
func applyResultMem(rec *Record, rs *core.RunStats, buf []byte) {
	rec.Checksum = math.Float64frombits(binary.LittleEndian.Uint64(buf[0:8]))
	if roi := arch.Cycles(binary.LittleEndian.Uint64(buf[8:16])); roi > 0 {
		rs.SimulatedCycles = roi
	}
	rec.SimCycles = uint64(rs.SimulatedCycles)
	rec.Stats = rs.Totals
	rec.MissByName = rs.Totals.MissByName()
}

// executeMultiProcess runs one spec as a single simulation distributed
// across spec.Processes OS processes (launch.Run forks and supervises the
// workers; this process coordinates). The record's config digest is
// computed from the unmodified spec config — the process count and
// transport are host-execution details the digest deliberately excludes —
// so the record matches the in-process run of the same spec.
func executeMultiProcess(spec *RunSpec, rec Record) (Record, *core.RunStats) {
	rec.Processes = spec.Processes
	cfg := spec.Config
	cfg.Processes = spec.Processes
	cfg.Transport = config.TransportTCP
	ls := &launch.Spec{
		Workload: spec.Workload,
		Threads:  spec.Threads,
		Scale:    spec.Scale,
		Config:   cfg,
		Hosts:    spec.Hosts,
		PeekAddr: workloads.DefaultResultAddr,
		PeekLen:  16,
	}
	if cp := spec.Checkpoint; cp != nil && cp.Every > 0 {
		dir := cp.Dir
		if dir == "" {
			// Recovery-only checkpointing: the snapshots exist so a
			// killed worker costs a replay, not the record; nobody wants
			// them after the run.
			tmp, err := os.MkdirTemp("", "graphite-ckpt-*")
			if err != nil {
				rec.Error = fmt.Sprintf("checkpoint dir: %v", err)
				return rec, nil
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		ls.CheckpointDir = dir
		ls.CheckpointEvery = cp.Every
		ls.MaxRestarts = cp.MaxRestarts
		ls.ConfigDigest = rec.ConfigDigest
	}
	res, err := launch.Run(ls)
	if err != nil {
		rec.Error = err.Error()
		return rec, nil
	}
	rs := res.Stats
	applyResultMem(&rec, rs, res.Peeked)
	if spec.TileStats {
		rec.Tiles = rs.Tiles
	}
	rec.WallSec = rs.Wall.Seconds()
	rec.ProcWallSec = make([]float64, len(res.Procs))
	for i, ps := range res.Procs {
		rec.ProcWallSec[i] = ps.Wall.Seconds()
	}
	return rec, rs
}

// NativeKey identifies one native-execution variant: records sharing a key
// share a native checksum.
type NativeKey struct {
	Workload       string
	Threads, Scale int
}

// NativeChecksum executes the native variant of a workload and returns its
// checksum. ok is false for unknown workloads. The result is deterministic
// for a given key, which is what lets distributed workers verify their own
// records and still match a single-host Verify pass byte for byte.
func NativeChecksum(k NativeKey) (float64, bool) {
	w, found := workloads.Get(k.Workload)
	if !found {
		return 0, false
	}
	return w.Native(workloads.Params{Threads: k.Threads, Scale: k.Scale}), true
}

// Verify runs the native variants of each distinct (workload, threads,
// scale) in records and fills ChecksumOK, using one native execution per
// distinct variant across all host CPUs.
func Verify(records []Record) { VerifyParallel(records, 0) }

// VerifyParallel is Verify with the native executions bounded by parallel
// workers (0 = one per host CPU). The native runs were previously computed
// serially after the sweep finished, making verification the long pole on
// large verified grids; the checksums are independent, so they parallelize
// like the sweep itself.
func VerifyParallel(records []Record, parallel int) {
	seen := map[NativeKey]bool{}
	var keys []NativeKey
	for i := range records {
		r := &records[i]
		if r.Error != "" {
			continue
		}
		k := NativeKey{r.Workload, r.Threads, r.Scale}
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return
	}
	workers := parallel
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(keys) {
		workers = len(keys)
	}
	native := make([]float64, len(keys))
	known := make([]bool, len(keys))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				native[i], known[i] = NativeChecksum(keys[i])
			}
		}()
	}
	for i := range keys {
		idx <- i
	}
	close(idx)
	wg.Wait()

	byKey := make(map[NativeKey]float64, len(keys))
	for i, k := range keys {
		if known[i] {
			byKey[k] = native[i]
		}
	}
	for i := range records {
		r := &records[i]
		if r.Error != "" {
			continue
		}
		want, found := byKey[NativeKey{r.Workload, r.Threads, r.Scale}]
		if !found {
			continue
		}
		ok := workloads.Close(r.Checksum, want)
		r.ChecksumOK = &ok
	}
}

// WriteJSONL writes one compact JSON object per line. Field order and
// formatting are fixed by the Record struct, so two runs of the same
// scenario and seed produce byte-identical lines up to the wall_sec
// field.
func WriteJSONL(w io.Writer, records []Record) error {
	enc := json.NewEncoder(w)
	for i := range records {
		if err := enc.Encode(&records[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses records written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Record, error) {
	dec := json.NewDecoder(r)
	var out []Record
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

func axesString(axes map[string]any) string {
	if len(axes) == 0 {
		return "-"
	}
	parts := make([]string, 0, len(axes))
	for _, k := range sortedKeys(axes) {
		parts = append(parts, fmt.Sprintf("%s=%v", k, axes[k]))
	}
	return "{" + strings.Join(parts, ",") + "}"
}
