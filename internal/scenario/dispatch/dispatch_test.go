package dispatch

import (
	"bytes"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/scenario"
)

// testScenario is a small verified sweep: 2 workloads x 2 line sizes on a
// 4-tile target, single-threaded so records are byte-deterministic.
const testScenarioJSON = `{
  "name": "dispatch-test",
  "preset": "small-cache",
  "size": "quick",
  "threads": 1,
  "seed": 1,
  "verify": true,
  "base": { "Tiles": 4 },
  "grids": [
    {
      "axes": [
        { "field": "workload", "values": ["radix", "fft"] },
        { "field": "line_size", "values": [32, 64] }
      ]
    }
  ]
}`

func loadTestScenario(t *testing.T) (*scenario.Scenario, []scenario.RunSpec) {
	t.Helper()
	s, err := scenario.Parse(strings.NewReader(testScenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	specs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return s, specs
}

var wallSecRe = regexp.MustCompile(`,"wall_sec":[0-9eE.+-]+`)

func stripWall(b []byte) string { return wallSecRe.ReplaceAllString(string(b), "") }

func jsonl(t *testing.T, records []scenario.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := scenario.WriteJSONL(&buf, records); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDistributedMatchesSingleHost is the PR's determinism contract: a
// 2-worker distributed sweep produces JSONL byte-identical to the
// single-host runner's output up to wall_sec.
func TestDistributedMatchesSingleHost(t *testing.T) {
	s, specs := loadTestScenario(t)
	single, err := scenario.RunExpanded(s, specs, scenario.Options{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}

	_, specs2 := loadTestScenario(t) // fresh expansion for the coordinator
	var out bytes.Buffer
	c, err := NewCoordinator(specs2, Options{
		Serial:          scenario.NeedsSerial(s, specs2),
		Verify:          s.Verify,
		Out:             &out,
		WorkersExpected: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := Work(c.Addr(), WorkerOptions{Parallel: 1, DialTimeout: 5 * time.Second}); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	dist, err := c.Wait()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	got, want := stripWall(jsonl(t, dist)), stripWall(jsonl(t, single))
	if got != want {
		t.Fatalf("distributed records differ from single-host records:\n got: %s\nwant: %s", got, want)
	}
	// The incrementally written output must be the same bytes the record
	// slice serializes to.
	if !bytes.Equal(out.Bytes(), jsonl(t, dist)) {
		t.Fatal("incremental Out differs from final records")
	}
	if c.Executed() != len(specs2) {
		t.Fatalf("executed %d runs, want %d", c.Executed(), len(specs2))
	}
}

// TestWorkerKillMidSweep kills a worker that holds an in-flight spec; the
// coordinator must requeue it and the sweep must still complete with a
// full, correctly ordered record set.
func TestWorkerKillMidSweep(t *testing.T) {
	s, specs := loadTestScenario(t)
	var out bytes.Buffer
	c, err := NewCoordinator(specs, Options{Verify: s.Verify, Out: &out})
	if err != nil {
		t.Fatal(err)
	}

	// A worker that takes one spec and dies without replying.
	conn, r, _, err := attach(c.Addr(), 5*time.Second, true)
	if err != nil {
		t.Fatal(err)
	}
	m, err := readMsg(r)
	if err != nil || m.Type != msgSpec {
		t.Fatalf("fake worker expected a spec, got %+v, %v", m, err)
	}
	killed := m.Spec.Run
	conn.Close()

	done := make(chan error, 1)
	go func() { done <- Work(c.Addr(), WorkerOptions{Parallel: 1, DialTimeout: 5 * time.Second}) }()
	records, err := c.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if werr := <-done; werr != nil {
		t.Fatalf("surviving worker: %v", werr)
	}

	if len(records) != len(specs) {
		t.Fatalf("got %d records, want %d", len(records), len(specs))
	}
	seenKilled := false
	for i := range records {
		if records[i].Run != i {
			t.Fatalf("record %d carries run %d: merge order broken", i, records[i].Run)
		}
		if records[i].Error != "" {
			t.Fatalf("run %d failed: %s", i, records[i].Error)
		}
		if records[i].SimCycles == 0 {
			t.Fatalf("run %d has no cycles: spec lost", i)
		}
		if records[i].Run == killed {
			seenKilled = true
		}
	}
	if !seenKilled {
		t.Fatalf("killed run %d missing from records", killed)
	}
	if c.Executed() != len(specs) {
		t.Fatalf("executed %d, want %d (requeued spec must be re-executed)", c.Executed(), len(specs))
	}
}

// TestResumeRoundTrip: records from a partial previous run are reused when
// run index and config digest match and the record is error-free; the
// final output is byte-identical to a full run up to wall_sec.
func TestResumeRoundTrip(t *testing.T) {
	s, specs := loadTestScenario(t)
	full, err := scenario.RunExpanded(s, specs, scenario.Options{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Previous partial output: run 0 completed cleanly, run 1 has a stale
	// digest (config changed since), run 2 is an impostor — as if the
	// workload axis was edited between runs, so the old record carries
	// the same run index and config digest (workload/threads/scale live
	// outside config.Config) but a different workload — and run 3
	// errored. Only run 0 may be adopted.
	partial := []scenario.Record{full[0], full[1], full[2], full[3]}
	partial[1].ConfigDigest = "stale"
	partial[2].Workload = "radix"
	if partial[2].ConfigDigest != scenario.Digest(&specs[2].Config) {
		t.Fatal("test premise broken: impostor record no longer shares run 2's config digest")
	}
	partial[3].Error = "killed"

	_, specs2 := loadTestScenario(t)
	var out bytes.Buffer
	c, err := NewCoordinator(specs2, Options{Verify: s.Verify, Out: &out, Resume: partial})
	if err != nil {
		t.Fatal(err)
	}
	if c.Reused() != 1 {
		t.Fatalf("reused %d records, want 1 (stale digest, impostor workload, and errored record must re-run)", c.Reused())
	}
	done := make(chan error, 1)
	go func() { done <- Work(c.Addr(), WorkerOptions{Parallel: 2, DialTimeout: 5 * time.Second}) }()
	records, err := c.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if werr := <-done; werr != nil {
		t.Fatalf("worker: %v", werr)
	}
	if c.Executed() != 3 {
		t.Fatalf("executed %d runs, want 3", c.Executed())
	}
	got, want := stripWall(jsonl(t, records)), stripWall(jsonl(t, full))
	if got != want {
		t.Fatalf("resumed records differ from full run:\n got: %s\nwant: %s", got, want)
	}
	if !bytes.Equal(out.Bytes(), jsonl(t, records)) {
		t.Fatal("incremental Out differs from final records")
	}
}

// TestAllResumedCompletesWithoutWorkers: a sweep whose every record
// resumes needs no workers at all.
func TestAllResumedCompletesWithoutWorkers(t *testing.T) {
	s, specs := loadTestScenario(t)
	full, err := scenario.RunExpanded(s, specs, scenario.Options{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, specs2 := loadTestScenario(t)
	var out bytes.Buffer
	c, err := NewCoordinator(specs2, Options{Verify: s.Verify, Out: &out, Resume: full})
	if err != nil {
		t.Fatal(err)
	}
	records, err := c.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if c.Reused() != len(specs2) || c.Executed() != 0 {
		t.Fatalf("reused %d / executed %d, want %d / 0", c.Reused(), c.Executed(), len(specs2))
	}
	if got, want := stripWall(jsonl(t, records)), stripWall(jsonl(t, full)); got != want {
		t.Fatal("all-resumed records differ from original run")
	}
}

// TestPoisonSpecAbandonedAfterMaxAttempts: a spec that takes down every
// connection that touches it must not requeue forever; past maxAttempts
// it completes as an error record, like a failed single-host run.
func TestPoisonSpecAbandonedAfterMaxAttempts(t *testing.T) {
	_, specs := loadTestScenario(t)
	c, err := NewCoordinator(specs[:1], Options{})
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < maxAttempts; a++ {
		conn, r, _, err := attach(c.Addr(), 5*time.Second, true)
		if err != nil {
			t.Fatal(err)
		}
		if m, err := readMsg(r); err != nil || m.Type != msgSpec {
			t.Fatalf("attempt %d: expected a spec, got %+v, %v", a, m, err)
		}
		conn.Close() // die without replying, every time
	}
	records, err := c.Wait()
	if err == nil {
		t.Fatal("abandoned run must surface as an error")
	}
	if len(records) != 1 || records[0].Error == "" {
		t.Fatalf("want 1 error record, got %+v", records)
	}
	if c.Executed() != 0 {
		t.Fatalf("executed = %d, want 0", c.Executed())
	}
}

// TestRequeueBackoffSchedule pins the backoff curve: doubling from 100ms,
// capped at 2s, and safe against shift overflow at absurd attempt counts.
func TestRequeueBackoffSchedule(t *testing.T) {
	cases := []struct {
		attempt int
		want    time.Duration
	}{
		{1, 100 * time.Millisecond},
		{2, 200 * time.Millisecond},
		{3, 400 * time.Millisecond},
		{5, 1600 * time.Millisecond},
		{6, 2 * time.Second},
		{40, 2 * time.Second},
		{70, 2 * time.Second}, // base << 69 overflows; the cap must still hold
	}
	for _, c := range cases {
		if got := requeueBackoff(c.attempt); got != c.want {
			t.Errorf("requeueBackoff(%d) = %v, want %v", c.attempt, got, c.want)
		}
	}
}

// TestRequeueUsesBackoff: each failed dispatch of a spec must be
// re-enqueued through the scheduler with that attempt's backoff delay,
// not immediately.
func TestRequeueUsesBackoff(t *testing.T) {
	_, specs := loadTestScenario(t)
	c, err := NewCoordinator(specs[:1], Options{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var delays []time.Duration
	c.afterFunc = func(d time.Duration, f func()) {
		mu.Lock()
		delays = append(delays, d)
		mu.Unlock()
		f() // run immediately: the test asserts scheduling, not pacing
	}

	for a := 0; a < maxAttempts-1; a++ {
		conn, r, _, err := attach(c.Addr(), 5*time.Second, true)
		if err != nil {
			t.Fatal(err)
		}
		if m, err := readMsg(r); err != nil || m.Type != msgSpec {
			t.Fatalf("attempt %d: expected a spec, got %+v, %v", a, m, err)
		}
		conn.Close() // die without replying
	}
	// A healthy worker finishes the much-requeued spec.
	done := make(chan error, 1)
	go func() { done <- Work(c.Addr(), WorkerOptions{Parallel: 1, DialTimeout: 5 * time.Second}) }()
	records, err := c.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if werr := <-done; werr != nil {
		t.Fatalf("surviving worker: %v", werr)
	}
	if len(records) != 1 || records[0].Error != "" {
		t.Fatalf("want 1 clean record, got %+v", records)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}
	if len(delays) != len(want) {
		t.Fatalf("scheduled %d requeues (%v), want %d", len(delays), delays, len(want))
	}
	for i := range want {
		if delays[i] != want[i] {
			t.Errorf("requeue %d scheduled after %v, want %v", i, delays[i], want[i])
		}
	}
}
