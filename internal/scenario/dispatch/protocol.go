// Package dispatch distributes scenario sweeps across machines: a
// coordinator expands a scenario into RunSpecs and serves them over TCP,
// and workers (the same graphite-sweep binary, started with -worker)
// pull specs, execute them with scenario.Execute, and stream Records
// back. This is the evaluation-plane analogue of the paper's core idea —
// one logical job spread transparently across hosts — applied to the
// design-space sweeps of §4 instead of a single simulation.
//
// Wire format: length-prefixed JSON frames (a uint32 little-endian
// payload length followed by one JSON message), matching the framing
// conventions of internal/transport's TCP fabric. The conversation is
// strictly request/response per connection, one spec in flight at a
// time; a worker that wants N concurrent runs opens N connections.
//
//	worker → coordinator   {"type":"hello","proto":1}
//	coordinator → worker   {"type":"welcome","proto":1,"serial":…}
//	coordinator → worker   {"type":"spec","verify":…,"spec":{…}}
//	worker → coordinator   {"type":"record","record":{…}}
//	…                      (spec/record repeats)
//	coordinator → worker   {"type":"done"}
//
// Fault tolerance: the coordinator tracks the single in-flight spec of
// every connection and requeues it the moment the connection errors, so
// killing a worker mid-sweep loses no runs. Output determinism: records
// are merged into run-index order and the coordinator rewrites each
// record's spec-identity fields (run coordinates, axes, config digest)
// from its own expansion, so the merged JSONL is byte-identical to the
// single-host runner's output up to wall_sec (see DESIGN.md §11).
package dispatch

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"

	"repro/internal/scenario"
)

// protoVersion is bumped on incompatible message-format changes; the
// hello/welcome exchange rejects mismatched peers loudly instead of
// letting them mis-decode each other's frames.
const protoVersion = 1

// maxFrame bounds one protocol frame. Specs are small; records can carry
// per-tile stats for large targets, hence the generous cap.
const maxFrame = 64 << 20

// Message types.
const (
	msgHello   = "hello"
	msgWelcome = "welcome"
	msgSpec    = "spec"
	msgRecord  = "record"
	msgDone    = "done"
)

// message is the single envelope of every frame in either direction.
//
//graphite:wire
type message struct {
	Type  string `json:"type"`
	Proto int    `json:"proto,omitempty"`
	// Primary (hello) marks a worker process's first connection. The
	// coordinator's WorkersExpected gate counts primaries, so it means
	// "N worker processes" regardless of each worker's -parallel fan-out
	// (which a serial sweep clamps to one connection anyway).
	Primary bool `json:"primary,omitempty"`
	// Serial (welcome) tells the worker the scenario requires one run at
	// a time per host process (scenario.NeedsSerial).
	Serial bool `json:"serial,omitempty"`
	// Verify (spec) asks the worker to fill Record.ChecksumOK against the
	// native kernel.
	Verify bool              `json:"verify,omitempty"`
	Spec   *scenario.RunSpec `json:"spec,omitempty"`
	Record *scenario.Record  `json:"record,omitempty"`
}

// writeMsg sends one frame. Header and payload go out as a single Write
// so a frame is never interleaved with another from the same goroutine's
// point of view.
func writeMsg(conn net.Conn, m *message) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("dispatch: encode %s: %w", m.Type, err)
	}
	if len(payload) > maxFrame {
		return fmt.Errorf("dispatch: %s frame of %d bytes exceeds limit", m.Type, len(payload))
	}
	buf := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	copy(buf[4:], payload)
	_, err = conn.Write(buf)
	return err
}

// readMsg reads one frame.
func readMsg(r *bufio.Reader) (*message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("dispatch: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	var m message
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("dispatch: decode frame: %w", err)
	}
	return &m, nil
}
