package dispatch

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"time"

	"repro/internal/scenario"
	"repro/internal/workloads"
)

// WorkerOptions configures Work.
type WorkerOptions struct {
	// Parallel is how many specs this worker executes concurrently (it
	// opens one coordinator connection per slot); 0 means one per host
	// CPU. Serial sweeps clamp it to 1 — the coordinator says so in its
	// welcome, exactly like scenario.RunSpecs forces a 1-worker pool.
	Parallel int
	// Progress, when non-nil, receives one line per executed run.
	Progress io.Writer
	// DialTimeout bounds connection establishment (default 30s). Dialing
	// retries until the deadline so workers may start before the
	// coordinator.
	DialTimeout time.Duration
}

// Work attaches to the coordinator at addr and executes specs until the
// coordinator says done. It returns nil on a clean sweep completion.
func Work(addr string, opt WorkerOptions) error {
	timeout := opt.DialTimeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	// The first connection decides the slot count: the welcome message
	// carries the sweep's serial constraint. It is also the process's
	// primary connection — the one the coordinator's WorkersExpected
	// gate counts.
	conn, r, welcome, err := attach(addr, timeout, true)
	if err != nil {
		return err
	}
	slots := opt.Parallel
	if slots <= 0 {
		slots = runtime.NumCPU()
	}
	if welcome.Serial {
		slots = 1
	}

	var v verifier
	var mu sync.Mutex
	var errs []error
	gotDone := false
	var wg sync.WaitGroup
	run := func(conn net.Conn, r *bufio.Reader) {
		defer wg.Done()
		defer conn.Close()
		err := workLoop(conn, r, &v, opt.Progress)
		mu.Lock()
		if err != nil {
			errs = append(errs, err)
		} else {
			gotDone = true
		}
		mu.Unlock()
	}
	wg.Add(1)
	go run(conn, r)
	for s := 1; s < slots; s++ {
		conn, r, _, err := attach(addr, timeout, false)
		if err != nil {
			mu.Lock()
			errs = append(errs, err)
			mu.Unlock()
			break
		}
		wg.Add(1)
		go run(conn, r)
	}
	wg.Wait()
	// A clean done on any slot means the sweep completed; errors on the
	// other slots (a secondary attach racing the coordinator's shutdown,
	// a connection torn down after the last record) change nothing about
	// the outcome and must not fail the worker process.
	if gotDone {
		return nil
	}
	return errors.Join(errs...)
}

// attach dials the coordinator and completes the hello/welcome exchange.
// Only the primary connection retries the dial (workers may start before
// the coordinator); a secondary dial happens while a primary connection
// is already up, so a refusal means the coordinator finished or died and
// redialing it for the full timeout would only delay the worker's exit.
//
//graphite:wallclock dial retry loop: host-fleet startup timing (workers may start before the coordinator); no simulated state exists yet
func attach(addr string, timeout time.Duration, primary bool) (net.Conn, *bufio.Reader, *message, error) {
	deadline := time.Now().Add(timeout)
	var conn net.Conn
	var err error
	for {
		conn, err = net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			break
		}
		if !primary || time.Now().After(deadline) {
			return nil, nil, nil, fmt.Errorf("dispatch: dial coordinator %s: %w", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
		tc.SetKeepAlive(true)
		tc.SetKeepAlivePeriod(30 * time.Second)
	}
	if err := writeMsg(conn, &message{Type: msgHello, Proto: protoVersion, Primary: primary}); err != nil {
		conn.Close()
		return nil, nil, nil, fmt.Errorf("dispatch: hello: %w", err)
	}
	r := bufio.NewReaderSize(conn, 64<<10)
	m, err := readMsg(r)
	if err != nil {
		conn.Close()
		return nil, nil, nil, fmt.Errorf("dispatch: welcome: %w", err)
	}
	if m.Type != msgWelcome || m.Proto != protoVersion {
		conn.Close()
		return nil, nil, nil, fmt.Errorf("dispatch: coordinator speaks %s/proto %d, want %s/proto %d", m.Type, m.Proto, msgWelcome, protoVersion)
	}
	return conn, r, m, nil
}

// workLoop serves one connection: execute every spec the coordinator
// sends, reply with the record, stop at done.
func workLoop(conn net.Conn, r *bufio.Reader, v *verifier, progress io.Writer) error {
	for {
		m, err := readMsg(r)
		if err != nil {
			return fmt.Errorf("dispatch: coordinator connection lost: %w", err)
		}
		switch m.Type {
		case msgSpec:
			if m.Spec == nil {
				return fmt.Errorf("dispatch: spec message without a spec")
			}
			rec := scenario.Execute(m.Spec)
			if m.Verify {
				v.fill(&rec)
			}
			if progress != nil {
				status := fmt.Sprintf("%d cycles", rec.SimCycles)
				if rec.Error != "" {
					status = "ERROR: " + rec.Error
				}
				fmt.Fprintf(progress, "run %d %s (%.3fs, %s)\n", rec.Run, rec.Workload, rec.WallSec, status)
			}
			if err := writeMsg(conn, &message{Type: msgRecord, Record: &rec}); err != nil {
				return fmt.Errorf("dispatch: send record: %w", err)
			}
		case msgDone:
			return nil
		default:
			return fmt.Errorf("dispatch: unexpected %q message", m.Type)
		}
	}
}

// verifier memoizes native checksums per (workload, threads, scale), so a
// worker (or the coordinator, for resumed records) runs each native
// variant once — the same sharing scenario.Verify does for a whole sweep.
// Entries are per-key sync.Onces, so concurrent slots that miss on the
// same key wait for one native execution instead of each running it.
type verifier struct {
	mu    sync.Mutex
	cache map[scenario.NativeKey]*nativeEntry
}

type nativeEntry struct {
	once  sync.Once
	val   float64
	known bool
}

// fill computes ChecksumOK for one record, exactly mirroring what
// scenario.Verify would decide for it in a single-host run.
func (v *verifier) fill(rec *scenario.Record) {
	if rec.Error != "" {
		return
	}
	k := scenario.NativeKey{Workload: rec.Workload, Threads: rec.Threads, Scale: rec.Scale}
	v.mu.Lock()
	if v.cache == nil {
		v.cache = make(map[scenario.NativeKey]*nativeEntry)
	}
	e := v.cache[k]
	if e == nil {
		e = &nativeEntry{}
		v.cache[k] = e
	}
	v.mu.Unlock()
	e.once.Do(func() { e.val, e.known = scenario.NativeChecksum(k) })
	if !e.known {
		return
	}
	ok := workloads.Close(rec.Checksum, e.val)
	rec.ChecksumOK = &ok
}
