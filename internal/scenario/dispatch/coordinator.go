package dispatch

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/scenario"
)

// Options configures a Coordinator.
type Options struct {
	// Addr is the listen address ("" means "127.0.0.1:0").
	Addr string
	// WorkersExpected gates dispatch: no spec is handed out until this
	// many worker processes have completed the hello exchange (each
	// process's first connection is marked primary; extra -parallel
	// connections don't count), so a sweep's work spreads across the
	// fleet instead of racing onto whichever worker connects first.
	// 0 dispatches immediately.
	WorkersExpected int
	// Serial tells workers to run one spec at a time per host process
	// (scenario.NeedsSerial).
	Serial bool
	// Verify asks workers to fill ChecksumOK against the native kernels.
	Verify bool
	// Out, when non-nil, receives the merged JSONL incrementally: record
	// i is written as soon as records 0..i are all complete, so a
	// long sweep's output is durable as it goes and usable by -resume.
	Out io.Writer
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer
	// Resume holds records from a previous partial run of the same
	// scenario. A record is reused — not re-executed — when its run index
	// and config digest match the current expansion and it carries no
	// error.
	Resume []scenario.Record
	// Cache, when non-nil, is consulted per spec before enqueueing it to
	// workers (hits are adopted like Resume records, keyed by content
	// digest instead of run index) and receives every verified record the
	// coordinator merges — executed, resumed, or synthesized nothing: an
	// abandonment error never enters the cache.
	Cache scenario.RecordCache
}

// Coordinator serves one sweep to remote workers.
type Coordinator struct {
	opt     Options
	ln      net.Listener
	specs   []scenario.RunSpec
	digests []string // coordinator-side config digest per spec

	// afterFunc schedules the delayed requeue of a failed spec (nil:
	// time.AfterFunc). Tests inject an immediate or recording variant.
	afterFunc func(time.Duration, func())

	mu           sync.Mutex
	cond         *sync.Cond
	conns        map[net.Conn]struct{} // live worker connections (for Cancel)
	queue        []int                 // pending spec indices, dispatched front to back
	attempts     []int                 // failed dispatch attempts per spec
	done         []bool
	records      []scenario.Record
	remaining    int
	reused       int
	cached       int
	executed     int
	hellos       int
	warnedSerial bool
	finished     bool
	nextWrite    int
	writeErr     error

	handlers sync.WaitGroup
	accept   sync.WaitGroup
}

// NewCoordinator expands nothing itself: it takes the specs of an
// already-expanded scenario (so the caller can log the expansion), applies
// Resume, starts listening, and begins serving. Call Wait to block until
// every record is in.
func NewCoordinator(specs []scenario.RunSpec, opt Options) (*Coordinator, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("dispatch: no runs to serve")
	}
	addr := opt.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dispatch: listen %s: %w", addr, err)
	}
	c := &Coordinator{
		opt:       opt,
		ln:        ln,
		conns:     make(map[net.Conn]struct{}),
		specs:     specs,
		digests:   make([]string, len(specs)),
		attempts:  make([]int, len(specs)),
		done:      make([]bool, len(specs)),
		records:   make([]scenario.Record, len(specs)),
		remaining: len(specs),
	}
	c.cond = sync.NewCond(&c.mu)
	for i := range specs {
		c.digests[i] = scenario.Digest(&specs[i].Config)
	}

	// Adopt resumable records. The config digest covers only
	// config.Config; workload/threads/scale live on the RunSpec outside
	// it (two runs over different workloads share a digest), so they
	// must match explicitly or an edited scenario could adopt another
	// workload's results under a rewritten identity.
	for ri := range opt.Resume {
		r := &opt.Resume[ri]
		i := r.Run
		if i < 0 || i >= len(specs) || c.done[i] || r.Error != "" || r.ConfigDigest != c.digests[i] {
			continue
		}
		if r.Workload != specs[i].Workload || r.Threads != specs[i].Threads || r.Scale != specs[i].Scale {
			continue
		}
		// tile_stats turned on since the record was produced: the tiles
		// field cannot be backfilled without re-running, so re-run.
		// (Turned off is handled by mergeRecord dropping the field.)
		if specs[i].TileStats && len(r.Tiles) == 0 {
			continue
		}
		c.records[i] = c.mergeRecord(i, r)
		c.done[i] = true
		c.remaining--
		c.reused++
	}
	// Consult the record cache for everything -resume didn't cover. The
	// cache is keyed by content digest (scenario.CacheKey) rather than
	// run index, so it serves edited, reordered, and overlapping sweeps
	// where -resume only serves an identical re-expansion. Hits adopt
	// the same field discipline as mergeRecord (CacheLookup re-stamps
	// identity fields; verify/tile_stats mismatches handled below and in
	// CacheLookup).
	if opt.Cache != nil {
		for i := range specs {
			if c.done[i] {
				continue
			}
			rec, ok := scenario.CacheLookup(opt.Cache, &specs[i], c.digests[i])
			if !ok {
				continue
			}
			if !opt.Verify {
				rec.ChecksumOK = nil
			}
			c.records[i] = rec
			c.done[i] = true
			c.remaining--
			c.cached++
		}
	}
	// Fill ChecksumOK for adopted records that predate -verify, so
	// resumed output is indistinguishable from freshly executed output.
	// Bounded-parallel via VerifyParallel — the native runs are the same
	// long pole a large verified sweep has.
	if opt.Verify {
		var need []int
		for i := range c.records {
			if c.done[i] && c.records[i].ChecksumOK == nil {
				need = append(need, i)
			}
		}
		if len(need) > 0 {
			tmp := make([]scenario.Record, len(need))
			for j, i := range need {
				tmp[j] = c.records[i]
			}
			scenario.VerifyParallel(tmp, 0)
			for j, i := range need {
				c.records[i].ChecksumOK = tmp[j].ChecksumOK
			}
		}
	}
	// Feed resume-adopted records into the cache (post-backfill, so they
	// enter with their verification verdict): -resume becomes one more
	// way to warm the cache, layered under it rather than beside it.
	if opt.Cache != nil {
		for i := range specs {
			if c.done[i] && scenario.Cacheable(&c.records[i]) {
				opt.Cache.Put(c.records[i])
			}
		}
	}
	for i := range specs {
		if !c.done[i] {
			c.queue = append(c.queue, i)
		}
	}
	c.mu.Lock()
	c.flushLocked()
	if c.remaining == 0 {
		c.finished = true
	}
	c.mu.Unlock()

	c.accept.Add(1)
	go c.acceptLoop()
	return c, nil
}

// Addr returns the coordinator's listen address (with the resolved port).
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// SetOutput installs (or replaces) the incremental output writer and
// immediately flushes the completed in-order prefix to it. It exists so a
// caller whose output path may equal its resume path can delay truncating
// the file until the coordinator has come up successfully: construct with
// Options.Out nil, then SetOutput once NewCoordinator has returned.
func (c *Coordinator) SetOutput(w io.Writer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.opt.Out = w
	c.flushLocked()
}

// Reused reports how many records were adopted from Options.Resume.
func (c *Coordinator) Reused() int { return c.reused }

// Cached reports how many records were served by Options.Cache instead
// of being dispatched to workers.
func (c *Coordinator) Cached() int { return c.cached }

// Executed reports how many records came back from workers so far.
func (c *Coordinator) Executed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.executed
}

// Progress reports how many of the sweep's runs have a record so far and
// the total. done == total means Wait will not block on further workers.
func (c *Coordinator) Progress() (done, total int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.specs) - c.remaining, len(c.specs)
}

// Cancel abandons every unfinished run: each gets an error record
// carrying reason (flushed to Out like any other completion, so consumers
// of the incremental output see the sweep settle), the pending queue is
// emptied, and every live worker connection is closed. Closing the
// connections bounds cancellation — a handler blocked on a slow or silent
// worker errors out immediately and the requeue path finds the run
// already done — at the cost of discarding in-flight results (the
// simulator has no preemption points; a worker's in-flight run burns to
// completion and its record is dropped with the connection). Wait still
// returns the full record set, with the canceled runs' errors joined into
// its error. Cancel after completion is a no-op.
func (c *Coordinator) Cancel(reason string) {
	c.mu.Lock()
	if c.remaining > 0 {
		c.queue = nil
		for i := range c.specs {
			if c.done[i] {
				continue
			}
			c.records[i] = c.mergeRecord(i, &scenario.Record{Run: c.specs[i].Run, Error: reason})
			c.done[i] = true
			c.remaining--
		}
		c.flushLocked()
		c.cond.Broadcast()
	}
	conns := make([]net.Conn, 0, len(c.conns))
	//graphite:maporder teardown close of a connection set; close order among dead-anyway peers is immaterial
	for conn := range c.conns {
		conns = append(conns, conn)
	}
	c.mu.Unlock()
	for _, conn := range conns {
		conn.Close()
	}
}

// Wait blocks until every run has a record, then shuts the listener down
// and returns the records in run-index order. Like scenario.RunSpecs, the
// error joins all per-run failures plus any output-write failure; records
// of successful runs are valid even when err != nil.
func (c *Coordinator) Wait() ([]scenario.Record, error) {
	c.mu.Lock()
	for c.remaining > 0 {
		c.cond.Wait()
	}
	c.finished = true
	c.cond.Broadcast()
	writeErr := c.writeErr
	c.mu.Unlock()

	// Stop accepting, then let every handler observe completion and send
	// its done message. Handlers never block indefinitely here: the hello
	// exchange runs under a deadline and the dispatch loop re-checks
	// finished after every broadcast.
	c.ln.Close()
	c.accept.Wait()
	c.handlers.Wait()

	var errs []error
	if writeErr != nil {
		errs = append(errs, writeErr)
	}
	for i := range c.records {
		if c.records[i].Error != "" {
			errs = append(errs, fmt.Errorf("run %d (%s): %s", c.records[i].Run, c.records[i].Workload, c.records[i].Error))
		}
	}
	return c.records, errors.Join(errs...)
}

func (c *Coordinator) acceptLoop() {
	defer c.accept.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed by Wait
		}
		c.handlers.Add(1)
		go c.handle(conn)
	}
}

// handle owns one worker connection: hello/welcome, then a dispatch loop
// with exactly one spec in flight. Any error requeues the in-flight spec
// and abandons the connection; the sweep completes on the survivors.
func (c *Coordinator) handle(conn net.Conn) {
	defer c.handlers.Done()
	defer conn.Close()
	c.mu.Lock()
	c.conns[conn] = struct{}{}
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.conns, conn)
		c.mu.Unlock()
	}()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
		// Keepalive makes the requeue contract hold under silent
		// partition too: a blocking record read on a worker whose host
		// vanished without an RST must eventually error, or the
		// in-flight spec would never return to the queue.
		tc.SetKeepAlive(true)
		tc.SetKeepAlivePeriod(30 * time.Second)
	}
	r := bufio.NewReaderSize(conn, 64<<10)

	// The handshake must not be able to wedge shutdown: a connection that
	// never says hello is dropped after the deadline.
	conn.SetReadDeadline(time.Now().Add(30 * time.Second)) //graphite:wallclock handshake I/O deadline; host-fleet liveness, invisible to simulation results
	m, err := readMsg(r)
	if err != nil || m.Type != msgHello || m.Proto != protoVersion {
		return
	}
	conn.SetReadDeadline(time.Time{})
	if err := writeMsg(conn, &message{Type: msgWelcome, Proto: protoVersion, Serial: c.opt.Serial}); err != nil {
		return
	}

	// Count the worker and hold dispatch until the expected fleet is up.
	// The gate is a start condition only: a counted worker that later
	// dies doesn't re-arm it — its in-flight spec requeues and survivors
	// (or late joiners) finish the sweep.
	c.mu.Lock()
	if m.Primary {
		c.hellos++
		// The serial clamp is per worker process; exclusivity across
		// processes is the operator's to provide (one worker per host),
		// so a serial sweep with several workers deserves a note.
		if c.opt.Serial && c.hellos == 2 && !c.warnedSerial && c.opt.Progress != nil {
			c.warnedSerial = true
			fmt.Fprintln(c.opt.Progress, "serial scenario with multiple workers: wall-clock honesty requires each worker to run on its own host")
		}
	}
	c.cond.Broadcast()
	for c.hellos < c.opt.WorkersExpected && !c.finished {
		c.cond.Wait()
	}
	c.mu.Unlock()

	for {
		i, ok := c.pop()
		if !ok {
			// Sweep complete: release the worker cleanly.
			writeMsg(conn, &message{Type: msgDone})
			return
		}
		if err := writeMsg(conn, &message{Type: msgSpec, Verify: c.opt.Verify, Spec: &c.specs[i]}); err != nil {
			c.requeue(i)
			return
		}
		m, err := readMsg(r)
		if err != nil || m.Type != msgRecord || m.Record == nil || m.Record.Run != c.specs[i].Run {
			c.requeue(i)
			return
		}
		c.complete(i, m.Record, true)
	}
}

// pop takes the next pending spec, blocking while the queue is empty but
// the sweep is unfinished (a requeue may still produce work). ok is false
// once every record is in.
func (c *Coordinator) pop() (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.queue) == 0 && c.remaining > 0 {
		c.cond.Wait()
	}
	if c.remaining == 0 {
		return 0, false
	}
	i := c.queue[0]
	c.queue = c.queue[1:]
	return i, true
}

// maxAttempts bounds how often one spec may take a connection down with
// it before the coordinator gives up on it. A worker crash is blamed on
// the worker, but a spec that deterministically kills every worker that
// touches it (say, a record too large to frame) must not requeue forever,
// poisoning the whole fleet and hanging the sweep.
const maxAttempts = 3

// requeueBackoff paces re-dispatch of a failed spec: 100ms after the
// first failure, doubling per subsequent one, capped at 2s. An immediate
// requeue hands the spec straight to the next idle worker, so a
// correlated outage (fleet restart, a flapping link) burns through all
// maxAttempts in milliseconds and abandons runs a healthy fleet would
// have finished; the backoff gives the fleet that recovery window.
func requeueBackoff(attempt int) time.Duration {
	const base, max = 100 * time.Millisecond, 2 * time.Second
	d := base << uint(attempt-1)
	if d <= 0 || d > max {
		return max
	}
	return d
}

// requeue returns an in-flight spec to the queue after its connection
// failed — after the backoff delay for this attempt — or, past
// maxAttempts, records the failure the way a failed single-host run
// would be recorded, so the sweep still completes.
func (c *Coordinator) requeue(i int) {
	c.mu.Lock()
	if c.done[i] {
		c.mu.Unlock()
		return
	}
	c.attempts[i]++
	if c.attempts[i] >= maxAttempts {
		attempts := c.attempts[i]
		c.mu.Unlock()
		c.complete(i, &scenario.Record{
			Run:   c.specs[i].Run,
			Error: fmt.Sprintf("dispatch: run abandoned after %d failed worker connections", attempts),
		}, false)
		return
	}
	delay := requeueBackoff(c.attempts[i])
	after := c.afterFunc
	c.mu.Unlock()
	if after == nil {
		after = func(d time.Duration, f func()) { //graphite:wallclock requeue backoff paces host-level re-dispatch; no simulated clock exists at the sweep layer
			time.AfterFunc(d, f)
		}
	}
	after(delay, func() {
		c.mu.Lock()
		// The spec may have completed meanwhile (an abandonment record,
		// a racing duplicate) — only a still-open spec re-enters.
		if !c.done[i] {
			c.queue = append(c.queue, i)
			c.cond.Broadcast()
		}
		c.mu.Unlock()
	})
}

// complete stores a record and flushes the in-order prefix. executed
// marks records genuinely produced by a worker, as opposed to synthesized
// abandonment errors.
func (c *Coordinator) complete(i int, remote *scenario.Record, executed bool) {
	rec := c.mergeRecord(i, remote)
	// Cache only what a worker genuinely produced and verified: requeue
	// paths never reach here (a killed worker's partial work is simply
	// re-dispatched) and synthesized abandonment records fail both the
	// executed flag and Cacheable's error check, so neither can poison
	// the cache.
	if executed && c.opt.Cache != nil && scenario.Cacheable(&rec) {
		c.opt.Cache.Put(rec)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done[i] {
		return
	}
	c.records[i] = rec
	c.done[i] = true
	c.remaining--
	if executed {
		c.executed++
	}
	c.flushLocked()
	if c.opt.Progress != nil {
		status := fmt.Sprintf("%d cycles", rec.SimCycles)
		if rec.Error != "" {
			status = "ERROR: " + rec.Error
		}
		total := len(c.specs)
		fmt.Fprintf(c.opt.Progress, "[%d/%d] run %d %s (%.3fs, %s)\n",
			total-c.remaining, total, rec.Run, rec.Workload, rec.WallSec, status)
	}
	c.cond.Broadcast()
}

// mergeRecord rebuilds the record's spec-identity fields from the
// coordinator's own expansion. Result fields (cycles, checksum, stats,
// wall time, error) come from the worker; identity fields must not — a
// JSON round trip erases the distinction between json.Number and float64
// in the axes map, and byte-identical merged output is the contract
// (DESIGN.md §11).
func (c *Coordinator) mergeRecord(i int, remote *scenario.Record) scenario.Record {
	spec := &c.specs[i]
	rec := *remote
	rec.Schema = scenario.RecordSchema
	rec.Scenario = spec.Scenario
	rec.Run = spec.Run
	rec.Grid = spec.Grid
	rec.Point = spec.Point
	rec.Repeat = spec.Repeat
	rec.Workload = spec.Workload
	rec.Threads = spec.Threads
	rec.Scale = spec.Scale
	rec.Seed = spec.Seed
	rec.Processes = spec.Processes
	rec.Axes = spec.Axes
	rec.ConfigDigest = c.digests[i]
	// Verify or tile_stats turned off since a resumed record was
	// produced: drop the stale fields, or the merged output would mix
	// row shapes and differ from a fresh single-host run. (Either
	// turned on is the symmetric case: ChecksumOK is backfilled in
	// NewCoordinator, missing tiles force a re-run.)
	if !c.opt.Verify {
		rec.ChecksumOK = nil
	}
	if !spec.TileStats {
		rec.Tiles = nil
	}
	return rec
}

// flushLocked writes the completed in-order prefix to Out. Called with mu
// held.
func (c *Coordinator) flushLocked() {
	if c.opt.Out == nil || c.writeErr != nil {
		return
	}
	for c.nextWrite < len(c.records) && c.done[c.nextWrite] {
		if err := scenario.WriteJSONL(c.opt.Out, c.records[c.nextWrite:c.nextWrite+1]); err != nil {
			c.writeErr = fmt.Errorf("dispatch: write output: %w", err)
			return
		}
		c.nextWrite++
	}
}
