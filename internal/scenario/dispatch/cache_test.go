package dispatch

import (
	"bytes"
	"regexp"
	"testing"
	"time"

	"repro/internal/recordcache"
	"repro/internal/scenario"
)

// replayRe strips the fields a cached replay may differ in (wall clocks
// and the cached flag) — the cache-mode superset of stripWall.
var replayRe = regexp.MustCompile(`,"(wall_sec":[0-9eE.+-]+|proc_wall_sec":\[[^]]*\]|cached":true)`)

func stripReplay(b []byte) string { return replayRe.ReplaceAllString(string(b), "") }

func newMemCache(t *testing.T) *recordcache.Cache {
	t.Helper()
	c, err := recordcache.Open(recordcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestCachePreseededServesWithoutDispatch: a coordinator whose cache
// already holds every record must serve the sweep without dispatching a
// single spec — the counting fake worker must see done immediately —
// and the output must match a fresh run up to wall_sec/cached.
func TestCachePreseededServesWithoutDispatch(t *testing.T) {
	s, specs := loadTestScenario(t)
	cache := newMemCache(t)
	full, err := scenario.RunExpanded(s, specs, scenario.Options{Parallel: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Entries != len(specs) {
		t.Fatalf("seeding failed: %+v", st)
	}

	_, specs2 := loadTestScenario(t)
	var out bytes.Buffer
	c, err := NewCoordinator(specs2, Options{Verify: s.Verify, Out: &out, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}

	// The counting fake worker: any spec frame before done is a dispatch
	// the cache should have absorbed.
	conn, r, _, err := attach(c.Addr(), 5*time.Second, true)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	dispatched := 0
	for {
		m, err := readMsg(r)
		if err != nil {
			t.Fatalf("fake worker: %v", err)
		}
		if m.Type == msgDone {
			break
		}
		if m.Type == msgSpec {
			dispatched++
			// Reply so the sweep can still finish if the cache failed;
			// the counter is the assertion.
			rec := scenario.Execute(m.Spec)
			if err := writeMsg(conn, &message{Type: msgRecord, Record: &rec}); err != nil {
				t.Fatal(err)
			}
		}
	}
	records, err := c.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if dispatched != 0 {
		t.Fatalf("%d specs dispatched to the worker despite a fully seeded cache", dispatched)
	}
	if c.Cached() != len(specs2) || c.Executed() != 0 {
		t.Fatalf("cached %d / executed %d, want %d / 0", c.Cached(), c.Executed(), len(specs2))
	}
	for i := range records {
		if !records[i].Cached {
			t.Fatalf("run %d not flagged cached", i)
		}
	}
	got, want := stripReplay(jsonl(t, records)), stripReplay(jsonl(t, full))
	if got != want {
		t.Fatalf("cache-served records differ from executed records:\n got: %s\nwant: %s", got, want)
	}
	if !bytes.Equal(out.Bytes(), jsonl(t, records)) {
		t.Fatal("incremental Out differs from final records")
	}
}

// TestCachePopulatedByDispatch: records merged from workers land in the
// cache, and a second coordinator over the same cache needs no workers.
func TestCachePopulatedByDispatch(t *testing.T) {
	s, specs := loadTestScenario(t)
	cache := newMemCache(t)
	c, err := NewCoordinator(specs, Options{Verify: s.Verify, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- Work(c.Addr(), WorkerOptions{Parallel: 2, DialTimeout: 5 * time.Second}) }()
	first, err := c.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if werr := <-done; werr != nil {
		t.Fatalf("worker: %v", werr)
	}

	_, specs2 := loadTestScenario(t)
	c2, err := NewCoordinator(specs2, Options{Verify: s.Verify, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	second, err := c2.Wait() // no workers attached at all
	if err != nil {
		t.Fatal(err)
	}
	if c2.Cached() != len(specs2) || c2.Executed() != 0 {
		t.Fatalf("cached %d / executed %d, want %d / 0", c2.Cached(), c2.Executed(), len(specs2))
	}
	if got, want := stripReplay(jsonl(t, second)), stripReplay(jsonl(t, first)); got != want {
		t.Fatalf("cache replay differs from dispatched run:\n got: %s\nwant: %s", got, want)
	}
}

// TestCacheNotPoisonedByFailures: neither a worker killed mid-spec nor a
// worker that reports a failed run may leave anything in the cache that
// a later sweep would mistake for a result.
func TestCacheNotPoisonedByFailures(t *testing.T) {
	_, specs := loadTestScenario(t)
	cache := newMemCache(t)
	c, err := NewCoordinator(specs, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}

	// Worker 1 takes a spec and dies without replying (kill mid-sweep).
	conn1, r1, _, err := attach(c.Addr(), 5*time.Second, true)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := readMsg(r1)
	if err != nil || m1.Type != msgSpec {
		t.Fatalf("fake worker 1 expected a spec, got %+v, %v", m1, err)
	}
	killedKey := m1.Spec.CacheKey()
	conn1.Close()
	if _, ok := cache.Get(killedKey); ok {
		t.Fatal("killed worker's in-flight spec reached the cache")
	}

	// Worker 2 reports its spec as failed — an honest error record.
	conn2, r2, _, err := attach(c.Addr(), 5*time.Second, true)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := readMsg(r2)
	if err != nil || m2.Type != msgSpec {
		t.Fatalf("fake worker 2 expected a spec, got %+v, %v", m2, err)
	}
	failedKey := m2.Spec.CacheKey()
	bad := scenario.Record{Run: m2.Spec.Run, Error: "injected worker failure"}
	if err := writeMsg(conn2, &message{Type: msgRecord, Record: &bad}); err != nil {
		t.Fatal(err)
	}
	// The coordinator treats an error record as complete; drain until it
	// releases this connection (done) or hands out further specs, which
	// we refuse by closing.
	if m, err := readMsg(r2); err == nil && m.Type == msgSpec {
		conn2.Close()
	}

	// A real worker finishes the remainder (including the requeued ones).
	done := make(chan error, 1)
	go func() { done <- Work(c.Addr(), WorkerOptions{Parallel: 1, DialTimeout: 5 * time.Second}) }()
	records, err := c.Wait()
	if err == nil {
		t.Fatal("sweep with an injected failure must surface the error")
	}
	if werr := <-done; werr != nil {
		t.Fatalf("surviving worker: %v", werr)
	}

	if _, ok := cache.Get(failedKey); ok {
		t.Fatal("failed run's error record poisoned the cache")
	}
	// Every error-free record — including the requeued kill victim —
	// must be in the cache, byte-faithful to what was merged.
	good := 0
	for i := range records {
		if records[i].Error != "" {
			continue
		}
		good++
		cached, ok := cache.Get(specs[i].CacheKey())
		if !ok {
			t.Fatalf("run %d executed but not cached", i)
		}
		if cached.SimCycles != records[i].SimCycles || cached.Checksum != records[i].Checksum {
			t.Fatalf("run %d cached with different results", i)
		}
	}
	if good == 0 {
		t.Fatal("test premise broken: no successful runs")
	}
	if killedKey == failedKey {
		t.Fatal("test premise broken: kill and failure hit the same spec")
	}
	// The killed spec was requeued and re-executed; its key must now hit.
	if _, ok := cache.Get(killedKey); !ok {
		t.Fatal("requeued spec's eventual record missing from cache")
	}
}
