// The cold/warm cache equivalence test lives in an external test package
// because it exercises the real store: recordcache imports scenario, so
// an in-package test importing recordcache would be an import cycle.
package scenario_test

import (
	"bytes"
	"regexp"
	"testing"

	"repro/internal/recordcache"
	"repro/internal/scenario"
)

// replayFields strips the fields a cached replay is allowed to differ
// in — wall clocks (host time, never deterministic) and the cached flag
// itself. This is the same normalization the distributed-sweep CI diff
// applies, now also the cache contract.
var replayFields = regexp.MustCompile(`,"(wall_sec":[0-9eE.+-]+|proc_wall_sec":\[[^]]*\]|cached":true)`)

func normalize(t *testing.T, records []scenario.Record) string {
	t.Helper()
	var buf bytes.Buffer
	if err := scenario.WriteJSONL(&buf, records); err != nil {
		t.Fatal(err)
	}
	return replayFields.ReplaceAllString(buf.String(), "")
}

// TestColdWarmEquivalence is the determinism-backed memoization
// contract on the repo's reference sweep: running
// examples/scenarios/line-size-sweep.json cold (populating a cache) and
// then warm (same cache directory, fresh instance — the disk tier must
// carry it) produces byte-identical JSONL up to wall_sec/cached, with
// the warm pass simulating nothing.
func TestColdWarmEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full line-size sweep twice")
	}
	s, err := scenario.Load("../../examples/scenarios/line-size-sweep.json")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	runWith := func() ([]scenario.Record, recordcache.Stats) {
		cache, err := recordcache.Open(recordcache.Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		defer cache.Close()
		records, err := scenario.Run(s, scenario.Options{Parallel: 2, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		return records, cache.Stats()
	}

	cold, coldStats := runWith()
	if coldStats.Hits != 0 || coldStats.Misses != int64(len(cold)) {
		t.Fatalf("cold pass hit a fresh cache: %+v", coldStats)
	}
	for i := range cold {
		if cold[i].Cached {
			t.Fatalf("cold run %d flagged cached", i)
		}
	}

	warm, warmStats := runWith()
	if warmStats.Misses != 0 || warmStats.Hits != int64(len(warm)) {
		t.Fatalf("warm pass missed: %+v (want 100%% hit rate)", warmStats)
	}
	for i := range warm {
		if !warm[i].Cached {
			t.Fatalf("warm run %d was simulated instead of served from cache", i)
		}
		if warm[i].WallSec != 0 {
			t.Fatalf("warm run %d carries wall time %v", i, warm[i].WallSec)
		}
		if warm[i].ChecksumOK == nil || !*warm[i].ChecksumOK {
			t.Fatalf("warm run %d lost its verification verdict", i)
		}
	}

	if got, want := normalize(t, warm), normalize(t, cold); got != want {
		t.Fatalf("warm output differs from cold output:\n--- cold ---\n%s--- warm ---\n%s", want, got)
	}
}

// TestCacheVerifyOffStripsChecksum: a record cached by a verified sweep
// must not leak checksum_ok into an unverified re-run of the same specs
// (the output would differ from a fresh unverified run).
func TestCacheVerifyOffStripsChecksum(t *testing.T) {
	verified := &scenario.Scenario{
		Name:     "cache-verify",
		Preset:   "small-cache",
		Workload: "radix",
		Threads:  1,
		Scale:    6,
		Seed:     3,
		Verify:   true,
		Base:     map[string]any{"Tiles": 4},
		Grids:    []scenario.Grid{{Axes: []scenario.Axis{{Field: "line_size", Values: []any{32, 64}}}}},
	}
	cache, err := recordcache.Open(recordcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	if _, err := scenario.Run(verified, scenario.Options{Parallel: 2, Cache: cache}); err != nil {
		t.Fatal(err)
	}

	unverified := *verified
	unverified.Verify = false
	records, err := scenario.Run(&unverified, scenario.Options{Parallel: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	for i := range records {
		if !records[i].Cached {
			t.Fatalf("run %d missed a warm cache", i)
		}
		if records[i].ChecksumOK != nil {
			t.Fatalf("run %d leaked checksum_ok into an unverified sweep", i)
		}
	}
}
