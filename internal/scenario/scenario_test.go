package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/config"
)

// specLine renders the stable golden-file view of one RunSpec.
func specLine(sp *RunSpec) string {
	return fmt.Sprintf(
		"run=%d grid=%d point=%d repeat=%d wl=%s th=%d sc=%d seed=%d tiles=%d procs=%d line=%d sync=%s coher=%s",
		sp.Run, sp.Grid, sp.Point, sp.Repeat, sp.Workload, sp.Threads, sp.Scale, sp.Seed,
		sp.Config.Tiles, sp.Config.Processes, sp.Config.L2.LineSize,
		sp.Config.Sync.Model, sp.Config.Coherence.Kind)
}

func TestExpandGolden(t *testing.T) {
	s, err := Load(filepath.Join("testdata", "demo.json"))
	if err != nil {
		t.Fatal(err)
	}
	specs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for i := range specs {
		b.WriteString(specLine(&specs[i]))
		b.WriteByte('\n')
	}
	got := b.String()

	goldenPath := filepath.Join("testdata", "demo.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("expansion differs from golden file (rerun with UPDATE_GOLDEN=1 if intended)\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestExpandGridShape(t *testing.T) {
	s, err := Load(filepath.Join("testdata", "demo.json"))
	if err != nil {
		t.Fatal(err)
	}
	specs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Grid 0: 2x2 axes x 2 repeats; grid 1: single point x 2 repeats.
	if len(specs) != 10 {
		t.Fatalf("expanded %d runs, want 10", len(specs))
	}
	// Run indices are dense and seeds derive from them.
	for i := range specs {
		if specs[i].Run != i {
			t.Fatalf("spec %d has run index %d", i, specs[i].Run)
		}
		if want := s.Seed + int64(i); specs[i].Seed != want || specs[i].Config.RandSeed != want {
			t.Fatalf("spec %d seed = %d / RandSeed %d, want %d", i, specs[i].Seed, specs[i].Config.RandSeed, want)
		}
	}
	// The last axis varies fastest.
	if specs[0].Config.L2.LineSize != 32 || specs[2].Config.L2.LineSize != 64 {
		t.Fatalf("axis order wrong: lines %d, %d", specs[0].Config.L2.LineSize, specs[2].Config.L2.LineSize)
	}
	if specs[0].Config.Sync.Model != config.Lax || specs[4].Config.Sync.Model != config.LaxBarrier {
		t.Fatal("sync axis wrong")
	}
	// line_size sets every level (L1D enabled in small-cache).
	if specs[0].Config.L1D.LineSize != 32 {
		t.Fatalf("L1D line = %d, want 32", specs[0].Config.L1D.LineSize)
	}
	// Grid 1 inherits scenario defaults except where overridden.
	last := specs[len(specs)-1]
	if last.Workload != "fft" || last.Threads != 2 || last.Scale != 4 {
		t.Fatalf("grid 1 overrides not applied: %+v", last)
	}
	if last.Config.Processes != 2 || last.Config.Coherence.Kind != config.LimitedNB {
		t.Fatal("grid 1 base overrides not applied")
	}
}

func TestOverridePrecedence(t *testing.T) {
	s := &Scenario{
		Name:     "prec",
		Preset:   "small-cache", // line size 64
		Workload: "radix",
		Threads:  1,
		Scale:    6,
		Base:     map[string]any{"L2.LineSize": 32, "L1D.LineSize": 32, "Tiles": 4},
		Grids: []Grid{
			{
				Base: map[string]any{"L2.LineSize": 16, "L1D.LineSize": 16},
				Axes: []Axis{{Field: "L2.LineSize", Values: []any{128}}, {Field: "L1D.LineSize", Values: []any{128}}},
			},
			{
				Base: map[string]any{"line_size": 16},
			},
		},
	}
	specs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Axis beats grid base beats scenario base beats preset.
	if got := specs[0].Config.L2.LineSize; got != 128 {
		t.Fatalf("axis did not win: line size %d", got)
	}
	// Grid without the axis keeps the grid-base value.
	if got := specs[1].Config.L2.LineSize; got != 16 {
		t.Fatalf("grid base did not win: line size %d", got)
	}
}

func TestSameFieldLaterAxisWins(t *testing.T) {
	s := &Scenario{
		Name:     "dup",
		Preset:   "small-cache",
		Workload: "radix",
		Threads:  1,
		Scale:    6,
		Grids: []Grid{{
			Axes: []Axis{
				{Field: "Tiles", Values: []any{2}},
				{Field: "Tiles", Values: []any{4, 8}},
			},
		}},
	}
	specs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Config.Tiles != 4 || specs[1].Config.Tiles != 8 {
		t.Fatalf("later axis should win: %+v", specs)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse(strings.NewReader(`{"name":"x","grid":[]}`))
	if err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Fatalf("want unknown-field error, got %v", err)
	}
}

func TestExpandErrors(t *testing.T) {
	base := func() *Scenario {
		return &Scenario{
			Name:     "err",
			Preset:   "small-cache",
			Workload: "radix",
			Threads:  1,
			Scale:    6,
			Grids:    []Grid{{}},
		}
	}
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"no name", func(s *Scenario) { s.Name = "" }, "missing name"},
		{"no grids", func(s *Scenario) { s.Grids = nil }, "no grids"},
		{"unknown preset", func(s *Scenario) { s.Preset = "bogus" }, "unknown preset"},
		{"unknown workload", func(s *Scenario) { s.Workload = "nope" }, "unknown workload"},
		{"no workload", func(s *Scenario) { s.Workload = "" }, "no workload"},
		{"unknown size", func(s *Scenario) { s.Size = "huge"; s.Scale = 0 }, "unknown size"},
		{"unknown field", func(s *Scenario) { s.Base = map[string]any{"L2.Linesize": 32} }, `no field "Linesize"`},
		{"unknown leaf parent", func(s *Scenario) { s.Base = map[string]any{"L2.LineSize.X": 1} }, "not a struct"},
		{"bad value type", func(s *Scenario) { s.Base = map[string]any{"Tiles": "many"} }, "want an integer"},
		{"bad enum", func(s *Scenario) { s.Base = map[string]any{"Sync.Model": "chaotic"} }, "unknown sync model"},
		{"composite leaf", func(s *Scenario) { s.Base = map[string]any{"L2": 1} }, "cannot set"},
		{"threads out of range", func(s *Scenario) { s.Threads = 64 }, "threads 64 out of range"},
		{"empty axis", func(s *Scenario) { s.Grids[0].Axes = []Axis{{Field: "Tiles"}} }, "no values"},
		{
			// config.Validate runs on every expanded point.
			"invalid config",
			func(s *Scenario) { s.Base = map[string]any{"line_size": 48} },
			"not a positive power of two",
		},
		{
			"validate coherence",
			func(s *Scenario) {
				s.Base = map[string]any{"Coherence.Kind": "dir_nb", "Coherence.DirPointers": 0}
			},
			"requires DirPointers",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.mut(s)
			_, err := s.Expand()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestEnumStringValues(t *testing.T) {
	s := &Scenario{
		Name:     "enums",
		Workload: "radix",
		Threads:  1,
		Scale:    6,
		Base: map[string]any{
			"Sync.Model":  "LaxP2P",
			"MemNet.Kind": "ring",
			"AppNet.Kind": "magic",
			"Core.Kind":   "out-of-order",
			"Transport":   "channel",
		},
		Grids: []Grid{{}},
	}
	specs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	cfg := &specs[0].Config
	if cfg.Sync.Model != config.LaxP2P || cfg.MemNet.Kind != config.NetRing ||
		cfg.AppNet.Kind != config.NetMagic || cfg.Core.Kind != config.CoreOutOfOrder ||
		cfg.Transport != config.TransportChannel {
		t.Fatalf("enum overrides not applied: %+v", cfg)
	}
}

func TestPresets(t *testing.T) {
	for _, name := range Presets() {
		cfg, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset %s: %v", name, err)
		}
	}
	if _, err := Preset(""); err != nil {
		t.Errorf("empty preset should resolve to default: %v", err)
	}
}

// TestExampleScenariosExpand guards the runnable examples shipped in the
// repo: they must load, expand, and describe at least one run each; the
// acceptance example must be a >= 8-point grid.
func TestExampleScenariosExpand(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no example scenarios")
	}
	for _, e := range entries {
		s, err := Load(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		specs, err := s.Expand()
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if len(specs) == 0 {
			t.Fatalf("%s: no runs", e.Name())
		}
		if e.Name() == "line-size-sweep.json" && len(specs) < 8 {
			t.Fatalf("line-size-sweep expands to %d runs, want >= 8", len(specs))
		}
	}
}

func TestDigestStable(t *testing.T) {
	a, _ := Preset("default")
	b, _ := Preset("default")
	if Digest(&a) != Digest(&b) {
		t.Fatal("identical configs digest differently")
	}
	b.Tiles++
	if Digest(&a) == Digest(&b) {
		t.Fatal("different configs digest identically")
	}
}
