// Record memoization: the runner and the dispatch coordinator consult a
// digest-keyed RecordCache before simulating. Determinism makes this
// sound — a run's record is a pure function of its cache key (see
// CacheKey) — and the key deliberately mirrors what the dispatch
// coordinator's -resume adoption matches: the config.Canonical digest
// plus the run-level identity fields (workload, threads, scale, seed)
// that live on the RunSpec outside config.Config. Presentation fields
// (run index, grid/point coordinates, axes, wall clock) are NOT part of
// the key; they are re-stamped from the consuming spec on every hit, so
// one cached record can serve the same design point wherever it appears
// in any sweep.

package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// RecordCache is the memoization store consulted per RunSpec before
// simulating (implemented by internal/recordcache; defined here so the
// runner does not depend on the store's tiering). Implementations must
// be safe for concurrent use and must return records that the caller
// may hold without further synchronization.
type RecordCache interface {
	// Get returns the record stored under a CacheKey.
	Get(key string) (Record, bool)
	// Put stores an error-free record under its RecordKey.
	Put(Record)
}

// CacheKey derives the memoization key of one run from its identity
// fields. configDigest (Digest) already covers the canonical target
// including RandSeed; workload, threads, scale, and the seed are
// included explicitly because they live on the RunSpec outside
// config.Config — without them two different workloads over the same
// target would collide (the same reason -resume matches them, PR 3).
// Host-execution details (process count, transport, worker pool) are
// excluded via config.Canonical: they must not change results, so an
// in-process run may serve a distributed re-run of the same spec and
// vice versa.
func CacheKey(configDigest, workload string, threads, scale int, seed int64) string {
	h := sha256.New()
	fmt.Fprintf(h, "record/v1\x00%s\x00%s\x00%d\x00%d\x00%d", configDigest, workload, threads, scale, seed)
	return hex.EncodeToString(h.Sum(nil))
}

// CacheKey returns the spec's memoization key.
func (spec *RunSpec) CacheKey() string {
	return CacheKey(Digest(&spec.Config), spec.Workload, spec.Threads, spec.Scale, spec.Seed)
}

// RecordKey returns the memoization key a record is stored under. A
// record carries every key ingredient, so Put needs no companion spec.
func RecordKey(r *Record) string {
	return CacheKey(r.ConfigDigest, r.Workload, r.Threads, r.Scale, r.Seed)
}

// CacheLookup consults cache for spec (digest must be Digest of the
// spec's config; pass "" to have it computed). Hits come back adopted:
// identity fields re-stamped from the spec, wall clock zeroed, flagged
// Cached — the exact field discipline of the dispatch coordinator's
// record merge, so cached output is byte-identical to simulated output
// up to wall_sec/proc_wall_sec/cached. A cached record that cannot
// serve the spec (an error record, or one missing the per-tile stats
// the spec asks for) is a miss.
func CacheLookup(cache RecordCache, spec *RunSpec, digest string) (Record, bool) {
	if cache == nil {
		return Record{}, false
	}
	if digest == "" {
		digest = Digest(&spec.Config)
	}
	rec, ok := cache.Get(CacheKey(digest, spec.Workload, spec.Threads, spec.Scale, spec.Seed))
	if !ok || rec.Error != "" {
		return Record{}, false
	}
	if spec.TileStats && len(rec.Tiles) == 0 {
		// Tiles cannot be backfilled without re-running (same rule as
		// -resume adoption).
		return Record{}, false
	}
	return AdoptCached(spec, digest, rec), true
}

// AdoptCached rebuilds a cached record's identity fields from the
// consuming spec and stamps the replay artifacts: WallSec 0 (no host
// time was spent), ProcWallSec dropped (per-process wall clocks of a
// past run are meaningless here), Cached true. Result fields — cycles,
// checksum, stats, tiles — pass through untouched.
func AdoptCached(spec *RunSpec, digest string, cached Record) Record {
	rec := cached
	rec.Schema = RecordSchema
	rec.Scenario = spec.Scenario
	rec.Run = spec.Run
	rec.Grid = spec.Grid
	rec.Point = spec.Point
	rec.Repeat = spec.Repeat
	rec.Workload = spec.Workload
	rec.Threads = spec.Threads
	rec.Scale = spec.Scale
	rec.Seed = spec.Seed
	rec.Processes = spec.Processes
	rec.Axes = spec.Axes
	rec.ConfigDigest = digest
	rec.Cached = true
	rec.WallSec = 0
	rec.ProcWallSec = nil
	if !spec.TileStats {
		rec.Tiles = nil
	}
	return rec
}

// Cacheable reports whether a record may enter the cache: it must be a
// genuine error-free result, not itself a cache replay, and when it was
// verified the verification must have passed — a checksum-mismatched
// record is a wrong answer and caching it would replay the wrongness.
func Cacheable(r *Record) bool {
	return r.Error == "" && !r.Cached && (r.ChecksumOK == nil || *r.ChecksumOK)
}
