package scenario

import (
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core/launch"
)

// TestMain lets forked copies of this test binary serve as fabric workers
// for multi-process runs (Execute re-executes os.Executable()).
func TestMain(m *testing.M) {
	launch.MaybeWorkerProcess()
	os.Exit(m.Run())
}

// mpScenario is a small target whose timing is striping-invariant: the
// analytical (no-queue) network and DRAM models carry no per-process
// state, so an N-OS-process run must be byte-identical to the in-process
// run (DESIGN.md §12). One application thread on tile 0 still drives
// cross-process coherence traffic — tiles 1 and 3 (directory homes) live
// in the second process.
func mpScenario() *Scenario {
	return &Scenario{
		Name:     "mp-e2e",
		Preset:   "small-cache",
		Workload: "fft",
		Threads:  1,
		Scale:    4,
		Seed:     7,
		Base: map[string]any{
			"Tiles":             4,
			"MemNet.Kind":       "mesh_hop",
			"MemNet.QueueModel": false,
			"DRAM.QueueModel":   false,
		},
		Grids: []Grid{{}},
	}
}

// TestMultiProcessMatchesInProcess is the correctness bar of the
// multi-process mode: a 2-OS-process TCP striped run of a spec must
// produce the same workload checksum, config digest, and stats.Totals as
// the in-process run of the identical spec and seed.
func TestMultiProcessMatchesInProcess(t *testing.T) {
	specs, err := mpScenario().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 {
		t.Fatalf("expanded to %d specs, want 1", len(specs))
	}
	single := Execute(&specs[0])
	if single.Error != "" {
		t.Fatalf("in-process run: %s", single.Error)
	}

	mpSpec := specs[0]
	mpSpec.Processes = 2
	mp := Execute(&mpSpec)
	if mp.Error != "" {
		t.Fatalf("multi-process run: %s", mp.Error)
	}

	if mp.Checksum != single.Checksum {
		t.Errorf("checksum: mp %v != in-process %v", mp.Checksum, single.Checksum)
	}
	if mp.ConfigDigest != single.ConfigDigest {
		t.Errorf("config digest: mp %s != in-process %s", mp.ConfigDigest, single.ConfigDigest)
	}
	if mp.SimCycles != single.SimCycles {
		t.Errorf("sim cycles: mp %d != in-process %d", mp.SimCycles, single.SimCycles)
	}
	if !reflect.DeepEqual(mp.Stats, single.Stats) {
		t.Errorf("stats diverge:\nmp:         %+v\nin-process: %+v", mp.Stats, single.Stats)
	}
	if mp.Processes != 2 {
		t.Errorf("record processes = %d, want 2", mp.Processes)
	}
	if len(mp.ProcWallSec) != 2 {
		t.Errorf("proc wall times %v, want one per process", mp.ProcWallSec)
	}
	for p, w := range mp.ProcWallSec {
		if w <= 0 {
			t.Errorf("proc %d wall time %v", p, w)
		}
	}
}

// TestProcessesIsASweepAxis: the OS process count expands like any other
// run-level field.
func TestProcessesIsASweepAxis(t *testing.T) {
	s := mpScenario()
	s.Grids = []Grid{{Axes: []Axis{{Field: "processes", Values: []any{1, 2}}}}}
	specs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("expanded to %d specs, want 2", len(specs))
	}
	if specs[0].Processes != 1 || specs[1].Processes != 2 {
		t.Fatalf("processes = %d, %d; want 1, 2", specs[0].Processes, specs[1].Processes)
	}
	// Host-execution fields must not perturb the target identity: with
	// the per-run seed normalized away, the two points simulate the same
	// target and must share a digest.
	cfg := specs[1].Config
	cfg.RandSeed = specs[0].Config.RandSeed
	cfg.Processes = 2
	cfg.Transport = specs[0].Config.Transport + 1 // any other transport
	cfg.Workers = 3
	if Digest(&specs[0].Config) != Digest(&cfg) {
		t.Fatal("host-execution fields leaked into the config digest")
	}
}

func TestExpandRejectsBadProcesses(t *testing.T) {
	s := mpScenario()
	s.Processes = 8 // > Tiles (4)
	if _, err := s.Expand(); err == nil || !strings.Contains(err.Error(), "processes") {
		t.Fatalf("want a processes range error, got %v", err)
	}

	s = mpScenario()
	s.Processes = 2
	s.Hosts = []string{"127.0.0.1:39900"} // 1 host for 2 processes
	if _, err := s.Expand(); err == nil || !strings.Contains(err.Error(), "hosts") {
		t.Fatalf("want a hosts mismatch error, got %v", err)
	}
}

// TestNeedsSerialForPinnedHosts: multi-process runs with pinned fabric
// addresses cannot share the host-parallel pool (port collisions).
func TestNeedsSerialForPinnedHosts(t *testing.T) {
	s := mpScenario()
	s.Processes = 2
	s.Hosts = []string{"127.0.0.1:39900", "127.0.0.1:39901"}
	specs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !NeedsSerial(s, specs) {
		t.Fatal("pinned-host multi-process scenario not forced serial")
	}
	s2 := mpScenario()
	s2.Processes = 2
	specs2, err := s2.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if NeedsSerial(s2, specs2) {
		t.Fatal("auto-port multi-process scenario needlessly serialized")
	}
}
