package scenario

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/arch"
	"repro/internal/config"
)

// TestRunSpecJSONRoundTrip is the wire contract of the dispatch package: a
// spec shipped to a worker as JSON must decode to a spec whose re-encoding
// and config digest are identical, or distributed records would disagree
// with single-host ones.
func TestRunSpecJSONRoundTrip(t *testing.T) {
	s := &Scenario{
		Name:     "rt",
		Preset:   "small-cache",
		Workload: "radix",
		Threads:  1,
		Verify:   true,
		Base:     map[string]any{"Tiles": 8},
		Grids: []Grid{{
			Axes: []Axis{
				{Field: "line_size", Values: []any{32, 64}},
				{Field: "Sync.Model", Values: []any{"lax", "lax_p2p"}},
			},
		}},
	}
	specs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Exercise the TileCores map-key path too.
	specs[0].Config.TileCores = map[arch.TileID]config.CoreConfig{
		3: {Kind: config.CoreOutOfOrder, ROBWindow: 128},
	}
	for i := range specs {
		buf, err := json.Marshal(&specs[i])
		if err != nil {
			t.Fatalf("spec %d: marshal: %v", i, err)
		}
		var back RunSpec
		if err := json.Unmarshal(buf, &back); err != nil {
			t.Fatalf("spec %d: unmarshal: %v", i, err)
		}
		buf2, err := json.Marshal(&back)
		if err != nil {
			t.Fatalf("spec %d: re-marshal: %v", i, err)
		}
		if !bytes.Equal(buf, buf2) {
			t.Fatalf("spec %d: round trip not byte-stable:\n  %s\n  %s", i, buf, buf2)
		}
		if d1, d2 := Digest(&specs[i].Config), Digest(&back.Config); d1 != d2 {
			t.Fatalf("spec %d: config digest drifted across round trip: %s != %s", i, d1, d2)
		}
	}
}

// TestRecordJSONRoundTrip: records come back from workers as JSON; their
// re-encoding must match what a single-host run would have written (the
// coordinator rewrites the spec-identity fields, so this covers the
// result fields).
func TestRecordJSONRoundTrip(t *testing.T) {
	okv := true
	rec := Record{
		Schema: RecordSchema, Scenario: "rt", Run: 3, Workload: "fft",
		Threads: 1, Scale: 64, Seed: 4, ConfigDigest: "abc",
		SimCycles: 123456, Checksum: 3.141592653589793, ChecksumOK: &okv,
		MissByName: map[string]uint64{"cold": 7, "sharing": 1},
		WallSec:    0.25,
	}
	buf, err := json.Marshal(&rec)
	if err != nil {
		t.Fatal(err)
	}
	var back Record
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	buf2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Fatalf("record round trip not byte-stable:\n  %s\n  %s", buf, buf2)
	}
}

func TestVerifyParallelMatchesSerial(t *testing.T) {
	recs := func() []Record {
		return []Record{
			{Workload: "radix", Threads: 1, Scale: 64, Checksum: 1},
			{Workload: "nosuch", Threads: 1, Scale: 1, Checksum: 0},
			{Workload: "radix", Threads: 1, Scale: 64, Checksum: 1},
			{Workload: "fft", Threads: 1, Scale: 64, Checksum: 2, Error: "boom"},
		}
	}
	a, b := recs(), recs()
	VerifyParallel(a, 1)
	VerifyParallel(b, 4)
	for i := range a {
		av, bv := a[i].ChecksumOK, b[i].ChecksumOK
		if (av == nil) != (bv == nil) {
			t.Fatalf("record %d: nil mismatch between serial and parallel verify", i)
		}
		if av != nil && *av != *bv {
			t.Fatalf("record %d: verdict mismatch: %v vs %v", i, *av, *bv)
		}
	}
	if a[1].ChecksumOK != nil {
		t.Fatal("unknown workload must stay unverified")
	}
	if a[3].ChecksumOK != nil {
		t.Fatal("errored record must stay unverified")
	}
}
