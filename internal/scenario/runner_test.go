package scenario

import (
	"bytes"
	"strings"
	"testing"
)

// detScenario is a small sweep whose runs are single-threaded, the
// configuration class for which the simulator is fully deterministic
// (no host-scheduling-dependent interleaving of application threads).
func detScenario() *Scenario {
	return &Scenario{
		Name:     "det",
		Preset:   "small-cache",
		Workload: "radix",
		Threads:  1,
		Scale:    6,
		Seed:     3,
		Verify:   true,
		Base:     map[string]any{"Tiles": 4},
		Grids: []Grid{{
			Axes: []Axis{{Field: "line_size", Values: []any{32, 64}}},
		}},
	}
}

// TestRunDeterminism is the reproducibility contract: two executions of
// the same scenario and seed produce byte-identical JSONL stats fields.
// Only wall_sec (host time) may differ.
func TestRunDeterminism(t *testing.T) {
	render := func(parallel int) string {
		records, err := Run(detScenario(), Options{Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		for i := range records {
			records[i].WallSec = 0 // the one host-dependent field
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, records); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first := render(2)
	second := render(2)
	if first != second {
		t.Fatalf("same scenario+seed produced different records\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	// The pool size must not change results either.
	serial := render(1)
	if first != serial {
		t.Fatal("parallel and serial execution disagree")
	}
}

func TestRunRecords(t *testing.T) {
	s := detScenario()
	records, err := Run(s, Options{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("records = %d, want 2", len(records))
	}
	for i, r := range records {
		if r.Run != i {
			t.Fatalf("record %d out of order (run=%d)", i, r.Run)
		}
		if r.Schema != RecordSchema || r.Scenario != "det" {
			t.Fatalf("record header wrong: %+v", r)
		}
		if r.SimCycles == 0 || r.Stats.Instructions == 0 {
			t.Fatalf("record %d has no results", i)
		}
		if r.ConfigDigest == "" {
			t.Fatal("missing config digest")
		}
		if r.ChecksumOK == nil || !*r.ChecksumOK {
			t.Fatalf("record %d checksum not verified against native", i)
		}
		if r.Error != "" {
			t.Fatalf("record %d error: %s", i, r.Error)
		}
	}
	if records[0].ConfigDigest == records[1].ConfigDigest {
		t.Fatal("different configs share a digest")
	}
}

func TestExecuteReportsErrors(t *testing.T) {
	spec := RunSpec{Scenario: "x", Workload: "does-not-exist", Threads: 1, Scale: 1}
	rec := Execute(&spec)
	if rec.Error == "" || !strings.Contains(rec.Error, "does-not-exist") {
		t.Fatalf("error not recorded: %+v", rec)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	records, err := Run(detScenario(), Options{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, records); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(records) {
		t.Fatalf("JSONL lines = %d, want %d", got, len(records))
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(records) {
		t.Fatalf("round trip lost records: %d != %d", len(back), len(records))
	}
	if back[0].Stats != records[0].Stats {
		t.Fatal("stats did not round-trip")
	}
	if back[1].SimCycles != records[1].SimCycles || back[1].Checksum != records[1].Checksum {
		t.Fatal("results did not round-trip")
	}
}

// TestSerialForcedByWorkers: runs that pin GOMAXPROCS may not share the
// host, so the runner must fall back to one worker.
func TestSerialForcedByWorkers(t *testing.T) {
	s := detScenario()
	s.Grids[0].Base = map[string]any{"Workers": 1}
	specs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !NeedsSerial(s, specs) {
		t.Fatal("Workers-pinning scenario not forced serial")
	}
	s2 := detScenario()
	specs2, err := s2.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if NeedsSerial(s2, specs2) {
		t.Fatal("plain scenario wrongly forced serial")
	}
	s2.Serial = true
	if !NeedsSerial(s2, specs2) {
		t.Fatal("Serial flag ignored")
	}
}

// TestTileStats: the scenario-level switch embeds per-tile records.
func TestTileStats(t *testing.T) {
	s := detScenario()
	s.TileStats = true
	records, err := Run(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(records[0].Tiles) != 4 {
		t.Fatalf("tile records = %d, want 4", len(records[0].Tiles))
	}
}
