// Package network implements Graphite's network component (paper §3.3):
// high-level messaging between tiles built on the physical transport layer,
// with per-traffic-class network models that update packet timestamps to
// account for routing, serialization, and contention delays.
//
// Three traffic classes exist, mirroring the paper's default configuration:
// system traffic (simulator control, modeled with zero delay so it cannot
// perturb results), memory traffic (the coherence protocol), and
// application traffic (the user-level messaging API). Each class has its
// own, independently configured model — swapping a model changes timing
// only, never functionality.
//
// Regardless of timestamps, packets are forwarded immediately and delivered
// in the order received; under lax synchronization a packet may therefore
// arrive "early" or out of order in simulated time (paper §3.6.1). The
// receiver's clock discipline (clock.Local.Forward) handles that.
package network

import (
	"encoding/binary"
	"fmt"

	"repro/internal/arch"
)

// Class labels a traffic class with its own network model.
type Class uint8

const (
	// ClassSystem is simulator-internal control traffic.
	ClassSystem Class = iota
	// ClassMemory is cache-coherence and DRAM traffic.
	ClassMemory
	// ClassApp is application-level message-passing traffic.
	ClassApp
	// NumClasses is the number of traffic classes.
	NumClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassSystem:
		return "system"
	case ClassMemory:
		return "memory"
	case ClassApp:
		return "app"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Packet is one network message. Time carries the simulated timestamp: the
// sender stamps it with its local clock plus the modeled network latency,
// so at delivery it reads "the cycle this packet arrives at Dst".
type Packet struct {
	// Class selects the network model and receive queue.
	Class Class
	// Type is a protocol-specific message type tag, opaque to the network.
	Type uint8
	// Src and Dst are tile endpoints. Control endpoints (MCP/LCP) are
	// addressed via their negative transport IDs in Src/Dst as well.
	Src, Dst arch.TileID
	// Time is the simulated arrival time at Dst.
	Time arch.Cycles
	// Seq correlates requests with replies in higher-level protocols.
	Seq uint64
	// Payload is the message body; it may be nil.
	Payload []byte
}

// headerLen is the encoded size of everything but the payload.
const headerLen = 1 + 1 + 4 + 4 + 8 + 8 + 4

// Bytes returns the modeled wire size of the packet: header plus payload.
func (p *Packet) Bytes() int { return headerLen + len(p.Payload) }

// Encode serializes the packet for the transport layer.
func (p *Packet) Encode() []byte {
	return p.encodeInto(make([]byte, headerLen+len(p.Payload)))
}

// encodeInto serializes into buf, which must be exactly Bytes() long.
func (p *Packet) encodeInto(buf []byte) []byte {
	buf[0] = byte(p.Class)
	buf[1] = p.Type
	binary.LittleEndian.PutUint32(buf[2:6], uint32(int32(p.Src)))
	binary.LittleEndian.PutUint32(buf[6:10], uint32(int32(p.Dst)))
	binary.LittleEndian.PutUint64(buf[10:18], uint64(p.Time))
	binary.LittleEndian.PutUint64(buf[18:26], p.Seq)
	binary.LittleEndian.PutUint32(buf[26:30], uint32(len(p.Payload)))
	copy(buf[headerLen:], p.Payload)
	return buf
}

// FrameArena carves wire frames out of chunked buffers, so a sender's
// steady message stream costs one allocation per chunk instead of one per
// frame. Receivers own delivered frames indefinitely (payloads alias
// them), which individual allocation would service with one garbage
// object per message; the arena trades that for chunks that stay alive
// while any frame cut from them is still referenced — protocol messages
// are consumed promptly, so the pinned set stays small. A FrameArena is
// owned by a single sending context and is not safe for concurrent use.
type FrameArena struct {
	buf []byte
}

// frameArenaChunk is the arena chunk size — big enough to amortize
// allocation over ~100 typical frames, small enough that the unused tail
// of each sender's current chunk stays cheap in short simulations (one
// arena exists per sending context per tile). Frames bigger than a
// quarter chunk are allocated individually so one giant payload cannot
// waste most of a chunk.
const frameArenaChunk = 8 << 10

// alloc returns a frame of n bytes.
func (a *FrameArena) alloc(n int) []byte {
	if n > len(a.buf) {
		if n > frameArenaChunk/4 {
			return make([]byte, n)
		}
		a.buf = make([]byte, frameArenaChunk)
	}
	f := a.buf[:n:n]
	a.buf = a.buf[n:]
	return f
}

// Decode parses a packet from a transport frame. The payload aliases data;
// callers must not reuse the frame buffer.
func Decode(data []byte) (Packet, error) {
	if len(data) < headerLen {
		return Packet{}, fmt.Errorf("network: short packet (%d bytes)", len(data))
	}
	p := Packet{
		Class: Class(data[0]),
		Type:  data[1],
		Src:   arch.TileID(int32(binary.LittleEndian.Uint32(data[2:6]))),
		Dst:   arch.TileID(int32(binary.LittleEndian.Uint32(data[6:10]))),
		Time:  arch.Cycles(binary.LittleEndian.Uint64(data[10:18])),
		Seq:   binary.LittleEndian.Uint64(data[18:26]),
	}
	n := binary.LittleEndian.Uint32(data[26:30])
	if int(n) != len(data)-headerLen {
		return Packet{}, fmt.Errorf("network: payload length %d does not match frame %d", n, len(data)-headerLen)
	}
	if p.Class >= NumClasses {
		return Packet{}, fmt.Errorf("network: unknown class %d", data[0])
	}
	if n > 0 {
		p.Payload = data[headerLen : headerLen+int(n)]
	}
	return p, nil
}
