package network

import (
	"repro/internal/arch"
	"repro/internal/clock"
	"repro/internal/config"
	"repro/internal/queuemodel"
)

// Model computes the latency of one packet. Implementations share a common
// interface so they are swappable per traffic class (paper §3.3); models
// may keep internal contention state and must be safe for concurrent use.
type Model interface {
	// Name identifies the model in statistics output.
	Name() string
	// Delay returns the modeled network latency, in cycles, for a packet
	// of the given wire size departing src for dst at time depart.
	Delay(src, dst arch.TileID, bytes int, depart arch.Cycles) arch.Cycles
}

// NewModel constructs the configured model for one traffic class. tiles is
// the target tile count (mesh geometry); progress supplies the global
// progress approximation for contention queues.
func NewModel(cfg config.NetworkConfig, tiles int, progress *clock.ProgressWindow) Model {
	switch cfg.Kind {
	case config.NetMagic:
		return Magic{}
	case config.NetMeshHop:
		return newMesh(cfg, tiles, nil)
	case config.NetMeshContention:
		return newMesh(cfg, tiles, progress)
	case config.NetRing:
		return &Ring{cfg: cfg, tiles: tiles}
	default:
		return Magic{}
	}
}

// Ring models a bidirectional ring: packets take the shorter direction,
// paying per-hop latency plus serialization. It exists to demonstrate the
// paper's claim that any topology with one endpoint per tile is
// modelable behind the common Model interface.
type Ring struct {
	cfg   config.NetworkConfig
	tiles int
}

// Name implements Model.
func (r *Ring) Name() string { return "ring" }

// HopCount returns the shorter ring distance between two tiles.
func (r *Ring) HopCount(src, dst arch.TileID) int {
	if r.tiles <= 1 {
		return 0
	}
	d := int(dst) - int(src)
	if d < 0 {
		d = -d
	}
	if alt := r.tiles - d; alt < d {
		d = alt
	}
	return d
}

// Delay implements Model.
func (r *Ring) Delay(src, dst arch.TileID, bytes int, _ arch.Cycles) arch.Cycles {
	ser := arch.Cycles(0)
	if r.cfg.LinkBandwidth > 0 {
		ser = arch.Cycles((bytes + r.cfg.LinkBandwidth - 1) / r.cfg.LinkBandwidth)
	}
	return arch.Cycles(r.HopCount(src, dst))*r.cfg.HopLatency + ser
}

// Magic forwards packets with zero modeled delay. System traffic uses it so
// simulator control messages never influence simulated time.
type Magic struct{}

// Name implements Model.
func (Magic) Name() string { return "magic" }

// Delay implements Model.
func (Magic) Delay(arch.TileID, arch.TileID, int, arch.Cycles) arch.Cycles { return 0 }

// Mesh models a 2-D mesh with XY dimension-ordered routing. Latency is
// per-hop router latency times hop count plus serialization (packet size
// over link bandwidth). With a progress window attached, every link on the
// route is additionally a lax contention queue (queuemodel.Queue), giving
// the analytical contention model of the paper.
type Mesh struct {
	cfg    config.NetworkConfig
	width  int
	height int

	// links holds one contention queue per (router, direction), densely
	// indexed — (y*width+x)*4+dir — and fully constructed up front, so the
	// per-hop hot path is an array load with no map or mesh-wide lock
	// (each Queue synchronizes itself). nil without a contention model.
	links []*queuemodel.Queue
	prog  *clock.ProgressWindow
}

// Link directions: 0=east 1=west 2=north 3=south.

func newMesh(cfg config.NetworkConfig, tiles int, prog *clock.ProgressWindow) *Mesh {
	w := 1
	for w*w < tiles {
		w++
	}
	h := (tiles + w - 1) / w
	m := &Mesh{cfg: cfg, width: w, height: h, prog: prog}
	if prog != nil {
		m.links = make([]*queuemodel.Queue, w*h*4)
		for i := range m.links {
			m.links[i] = queuemodel.New(prog)
		}
	}
	return m
}

// Name implements Model.
func (m *Mesh) Name() string {
	if m.prog != nil {
		return "mesh_contention"
	}
	return "mesh_hop"
}

// Geometry returns the mesh dimensions (for tests and reporting).
func (m *Mesh) Geometry() (w, h int) { return m.width, m.height }

func (m *Mesh) coord(t arch.TileID) (x, y int) {
	return int(t) % m.width, int(t) / m.width
}

// HopCount returns the XY-routing hop count between two tiles.
func (m *Mesh) HopCount(src, dst arch.TileID) int {
	sx, sy := m.coord(src)
	dx, dy := m.coord(dst)
	return abs(dx-sx) + abs(dy-sy)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func (m *Mesh) serialization(bytes int) arch.Cycles {
	bw := m.cfg.LinkBandwidth
	if bw <= 0 {
		return 0
	}
	return arch.Cycles((bytes + bw - 1) / bw)
}

// Delay implements Model.
func (m *Mesh) Delay(src, dst arch.TileID, bytes int, depart arch.Cycles) arch.Cycles {
	ser := m.serialization(bytes)
	if src == dst {
		// Loopback through the local switch: serialization only.
		return ser
	}
	hops := m.HopCount(src, dst)
	latency := arch.Cycles(hops)*m.cfg.HopLatency + ser
	if m.prog == nil {
		return latency
	}
	// Contention: walk the XY route and charge each link's queue.
	x, y := m.coord(src)
	dx, dy := m.coord(dst)
	t := depart
	var contention arch.Cycles
	step := func(dir uint8, nx, ny int) {
		q := m.links[(y*m.width+x)*4+int(dir)]
		wait := q.Delay(t, ser)
		contention += wait
		t += wait + m.cfg.HopLatency
		x, y = nx, ny
	}
	for x != dx {
		if x < dx {
			step(0, x+1, y)
		} else {
			step(1, x-1, y)
		}
	}
	for y != dy {
		if y < dy {
			step(3, x, y+1)
		} else {
			step(2, x, y-1)
		}
	}
	return latency + contention
}

// ContentionStats aggregates queueing statistics over all links.
func (m *Mesh) ContentionStats() (packets uint64, totalDelay arch.Cycles) {
	for _, q := range m.links {
		p, d, _ := q.Stats()
		packets += p
		totalDelay += d
	}
	return packets, totalDelay
}
