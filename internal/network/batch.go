package network

import (
	"repro/internal/arch"
	"repro/internal/transport"
)

// Batch accumulates outgoing packets per destination endpoint and hands
// them to the transport as coalesced batches (transport.SendBatch), so a
// burst of protocol messages costs one fabric operation per destination
// instead of one per packet.
//
// Timing is identical to Net.Send: each packet's modeled delay and arrival
// timestamp are computed at Send time from the sender's clock, and traffic
// statistics are counted immediately. Only the physical hand-off to the
// transport is deferred until Flush.
//
// A Batch is owned by a single goroutine and is not safe for concurrent
// use. Ordering caution: packets queued on a Batch are delivered when
// Flush runs, so a sender that also performs direct Net.Sends to the same
// destination (or signals another goroutine that will) must Flush first,
// or per-sender FIFO is lost. The memory server flushes before blocking
// and before waking its core thread for exactly this reason.
type Batch struct {
	n     *Net
	order []transport.EndpointID
	pend  map[transport.EndpointID][][]byte
	arena FrameArena
	// Per-class traffic counters accumulated locally and folded into the
	// Net's shared atomics once per Flush instead of three times per Send.
	pkts, bytes [NumClasses]uint64
	delay       [NumClasses]int64
}

// NewBatch creates a batching sender on this Net.
func (n *Net) NewBatch() *Batch {
	return &Batch{n: n, pend: make(map[transport.EndpointID][][]byte)}
}

// Send models and queues a packet for dst, returning its simulated arrival
// time. The packet reaches the fabric at the next Flush.
func (b *Batch) Send(class Class, typ uint8, dst arch.TileID, seq uint64, payload []byte, now arch.Cycles) arch.Cycles {
	n := b.n
	p := Packet{Class: class, Type: typ, Src: n.node, Dst: dst, Seq: seq, Payload: payload}
	delay := n.models.Delay(class, n.node, dst, p.Bytes(), now)
	p.Time = now + delay
	b.pkts[class]++
	b.bytes[class] += uint64(p.Bytes())
	b.delay[class] += int64(delay)
	// Empty (not absent): Flush keeps drained entries in the map for
	// reuse, so membership in order is "has pending frames", not "known".
	ep := transport.EndpointID(dst)
	if len(b.pend[ep]) == 0 {
		b.order = append(b.order, ep)
	}
	b.pend[ep] = append(b.pend[ep], p.encodeInto(b.arena.alloc(p.Bytes())))
	return p.Time
}

// Len reports how many packets are queued.
func (b *Batch) Len() int {
	total := 0
	//graphite:maporder commutative sum of per-destination queue lengths
	for _, fs := range b.pend {
		total += len(fs)
	}
	return total
}

// Flush hands every queued batch to the transport, one SendBatch per
// destination in first-queued order, and empties the Batch. The first
// transport error is returned; later destinations are still attempted so
// a teardown race cannot strand deliverable messages.
func (b *Batch) Flush() error {
	for c := range b.pkts {
		if b.pkts[c] != 0 {
			b.n.stats.PacketsSent[c].Add(b.pkts[c])
			b.n.stats.BytesSent[c].Add(b.bytes[c])
			b.n.stats.TotalDelay[c].Add(b.delay[c])
			b.pkts[c], b.bytes[c], b.delay[c] = 0, 0, 0
		}
	}
	var firstErr error
	for _, ep := range b.order {
		frames := b.pend[ep]
		if len(frames) == 0 {
			continue
		}
		if err := b.n.tr.SendBatch(ep, frames); err != nil && firstErr == nil {
			firstErr = err
		}
		// Keep the map entry but drop the frame references; the backing
		// header array is reused by the next burst to this destination.
		for i := range frames {
			frames[i] = nil
		}
		b.pend[ep] = frames[:0]
	}
	b.order = b.order[:0]
	return firstErr
}
