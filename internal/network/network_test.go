package network

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/clock"
	"repro/internal/config"
	"repro/internal/transport"
)

func TestPacketRoundtrip(t *testing.T) {
	in := Packet{
		Class:   ClassMemory,
		Type:    7,
		Src:     3,
		Dst:     12,
		Time:    123456789,
		Seq:     42,
		Payload: []byte("line data"),
	}
	out, err := Decode(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Class != in.Class || out.Type != in.Type || out.Src != in.Src ||
		out.Dst != in.Dst || out.Time != in.Time || out.Seq != in.Seq ||
		!bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("roundtrip mismatch: %+v != %+v", out, in)
	}
}

func TestPacketRoundtripControlEndpoints(t *testing.T) {
	in := Packet{Class: ClassSystem, Src: arch.TileID(transport.MCP), Dst: arch.TileID(transport.LCP(2))}
	out, err := Decode(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Src != -1 || out.Dst != -4 {
		t.Fatalf("negative IDs mangled: src=%d dst=%d", out.Src, out.Dst)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("decoded nil frame")
	}
	if _, err := Decode(make([]byte, headerLen-1)); err == nil {
		t.Fatal("decoded short frame")
	}
	p := Packet{Class: ClassApp, Payload: []byte("xyz")}
	enc := p.Encode()
	enc[0] = 200 // bogus class
	if _, err := Decode(enc); err == nil {
		t.Fatal("decoded bogus class")
	}
	enc2 := p.Encode()
	enc2 = enc2[:len(enc2)-1] // truncated payload
	if _, err := Decode(enc2); err == nil {
		t.Fatal("decoded truncated payload")
	}
}

func TestPacketEncodeQuick(t *testing.T) {
	f := func(typ uint8, src, dst int16, tm uint32, seq uint64, payload []byte) bool {
		in := Packet{Class: ClassApp, Type: typ, Src: arch.TileID(src), Dst: arch.TileID(dst),
			Time: arch.Cycles(tm), Seq: seq, Payload: payload}
		out, err := Decode(in.Encode())
		if err != nil {
			return false
		}
		return out.Type == in.Type && out.Src == in.Src && out.Dst == in.Dst &&
			out.Time == in.Time && out.Seq == in.Seq && bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMagicModelZeroDelay(t *testing.T) {
	m := Magic{}
	if d := m.Delay(0, 31, 4096, 1000); d != 0 {
		t.Fatalf("magic delay = %d", d)
	}
}

func meshCfg(kind config.NetworkModelKind) config.NetworkConfig {
	return config.NetworkConfig{Kind: kind, HopLatency: 2, LinkBandwidth: 32}
}

func TestMeshGeometry(t *testing.T) {
	m := newMesh(meshCfg(config.NetMeshHop), 16, nil)
	if w, h := m.Geometry(); w != 4 || h != 4 {
		t.Fatalf("16 tiles -> %dx%d, want 4x4", w, h)
	}
	m = newMesh(meshCfg(config.NetMeshHop), 17, nil)
	if w, h := m.Geometry(); w != 5 || h != 4 {
		t.Fatalf("17 tiles -> %dx%d, want 5x4", w, h)
	}
	m = newMesh(meshCfg(config.NetMeshHop), 1, nil)
	if w, h := m.Geometry(); w != 1 || h != 1 {
		t.Fatalf("1 tile -> %dx%d", w, h)
	}
}

func TestMeshHopCount(t *testing.T) {
	m := newMesh(meshCfg(config.NetMeshHop), 16, nil) // 4x4
	cases := []struct {
		src, dst arch.TileID
		hops     int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 3},
		{0, 4, 1},  // one row down
		{0, 15, 6}, // 3 east + 3 south
		{5, 10, 2},
		{15, 0, 6},
	}
	for _, c := range cases {
		if got := m.HopCount(c.src, c.dst); got != c.hops {
			t.Errorf("hops(%v,%v) = %d, want %d", c.src, c.dst, got, c.hops)
		}
	}
}

func TestMeshHopDelayFormula(t *testing.T) {
	m := newMesh(meshCfg(config.NetMeshHop), 16, nil)
	// 0 -> 15: 6 hops * 2 cycles + ceil(64/32)=2 serialization = 14.
	if d := m.Delay(0, 15, 64, 0); d != 14 {
		t.Fatalf("delay = %d, want 14", d)
	}
	// Loopback: serialization only.
	if d := m.Delay(7, 7, 64, 0); d != 2 {
		t.Fatalf("loopback delay = %d, want 2", d)
	}
	// Delay must not depend on departure time without contention.
	if m.Delay(0, 15, 64, 0) != m.Delay(0, 15, 64, 1_000_000) {
		t.Fatal("hop model depends on time")
	}
}

func TestMeshDelaySymmetricAndMonotonicInDistance(t *testing.T) {
	m := newMesh(meshCfg(config.NetMeshHop), 64, nil)
	f := func(a, b uint8) bool {
		src := arch.TileID(a % 64)
		dst := arch.TileID(b % 64)
		return m.Delay(src, dst, 32, 0) == m.Delay(dst, src, 32, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if m.Delay(0, 1, 32, 0) >= m.Delay(0, 63, 32, 0) {
		t.Fatal("longer route not slower")
	}
}

func TestMeshContentionAddsQueueing(t *testing.T) {
	prog := clock.NewProgressWindow(8)
	m := newMesh(meshCfg(config.NetMeshContention), 16, prog)
	base := m.Delay(0, 3, 64, 1000)
	// Hammer the same route at the same timestamp: later packets must
	// queue behind earlier ones on the shared links.
	var last arch.Cycles
	for i := 0; i < 50; i++ {
		last = m.Delay(0, 3, 64, 1000)
	}
	if last <= base {
		t.Fatalf("contention did not grow: first %d, after load %d", base, last)
	}
	pkts, delay := m.ContentionStats()
	if pkts == 0 || delay == 0 {
		t.Fatalf("contention stats empty: %d pkts %d delay", pkts, delay)
	}
}

func TestMeshContentionIndependentLinks(t *testing.T) {
	prog := clock.NewProgressWindow(8)
	m := newMesh(meshCfg(config.NetMeshContention), 16, prog)
	for i := 0; i < 50; i++ {
		m.Delay(0, 3, 64, 1000) // load the top row eastward
	}
	// A disjoint route (12 -> 15 along the bottom row) sees no contention
	// from the top-row load beyond global progress effects.
	d := m.Delay(12, 15, 64, 1000)
	hop := m.Delay(12, 15, 64, 1_000_000_000) // long after queues drain
	if d > hop+arch.Cycles(10) {
		t.Fatalf("disjoint route contended: %d vs base %d", d, hop)
	}
}

func TestRingHopCount(t *testing.T) {
	r := &Ring{cfg: meshCfg(config.NetRing), tiles: 8}
	cases := []struct {
		src, dst arch.TileID
		hops     int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 4, 4}, // antipodal
		{0, 5, 3}, // shorter the other way
		{0, 7, 1},
		{7, 0, 1},
		{2, 6, 4},
	}
	for _, c := range cases {
		if got := r.HopCount(c.src, c.dst); got != c.hops {
			t.Errorf("ring hops(%v,%v) = %d, want %d", c.src, c.dst, got, c.hops)
		}
	}
}

func TestRingDelaySymmetric(t *testing.T) {
	r := &Ring{cfg: meshCfg(config.NetRing), tiles: 16}
	f := func(a, b uint8) bool {
		src := arch.TileID(a % 16)
		dst := arch.TileID(b % 16)
		return r.Delay(src, dst, 64, 0) == r.Delay(dst, src, 64, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Ring distance never exceeds tiles/2.
	for src := arch.TileID(0); src < 16; src++ {
		for dst := arch.TileID(0); dst < 16; dst++ {
			if h := r.HopCount(src, dst); h > 8 {
				t.Fatalf("ring hops(%v,%v) = %d > 8", src, dst, h)
			}
		}
	}
}

func TestRingSingleTile(t *testing.T) {
	r := &Ring{cfg: meshCfg(config.NetRing), tiles: 1}
	if d := r.Delay(0, 0, 64, 0); d != 2 { // serialization only
		t.Fatalf("single-tile ring delay %d", d)
	}
}

func TestNewModelSelectsKinds(t *testing.T) {
	prog := clock.NewProgressWindow(4)
	for kind, name := range map[config.NetworkModelKind]string{
		config.NetMagic:          "magic",
		config.NetMeshHop:        "mesh_hop",
		config.NetMeshContention: "mesh_contention",
		config.NetRing:           "ring",
	} {
		m := NewModel(config.NetworkConfig{Kind: kind, HopLatency: 1, LinkBandwidth: 8}, 16, prog)
		if m.Name() != name {
			t.Errorf("kind %v built model %q", kind, m.Name())
		}
	}
}

func newTestNode(t *testing.T, tiles int) (*Net, *Net, func()) {
	t.Helper()
	cfg := config.Default()
	cfg.Tiles = tiles
	prog := clock.NewProgressWindow(tiles)
	models := NewModels(&cfg, prog)
	fab := transport.NewChannelFabric(transport.StripedRoute(1))
	tr := fab.Process(0)
	ep0, err := tr.Register(0)
	if err != nil {
		t.Fatal(err)
	}
	ep1, err := tr.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	n0 := New(0, tr, ep0, models, prog)
	n1 := New(1, tr, ep1, models, prog)
	n0.Start()
	n1.Start()
	return n0, n1, func() { n0.Close(); n1.Close(); fab.Close() }
}

func TestNetSendRecv(t *testing.T) {
	n0, n1, done := newTestNode(t, 4)
	defer done()
	arrival, err := n0.Send(ClassApp, 9, 1, 77, []byte("ping"), 500)
	if err != nil {
		t.Fatal(err)
	}
	if arrival <= 500 {
		t.Fatalf("arrival %d not after send time", arrival)
	}
	pkt, ok := n1.Recv(ClassApp)
	if !ok {
		t.Fatal("recv failed")
	}
	if pkt.Src != 0 || pkt.Dst != 1 || pkt.Type != 9 || pkt.Seq != 77 ||
		string(pkt.Payload) != "ping" || pkt.Time != arrival {
		t.Fatalf("bad packet: %+v (want arrival %d)", pkt, arrival)
	}
}

func TestNetClassIsolation(t *testing.T) {
	n0, n1, done := newTestNode(t, 4)
	defer done()
	n0.Send(ClassMemory, 1, 1, 0, []byte("mem"), 0)
	n0.Send(ClassApp, 2, 1, 0, []byte("app"), 0)
	pkt, ok := n1.Recv(ClassApp)
	if !ok || string(pkt.Payload) != "app" {
		t.Fatalf("app queue returned %q", pkt.Payload)
	}
	pkt, ok = n1.Recv(ClassMemory)
	if !ok || string(pkt.Payload) != "mem" {
		t.Fatalf("memory queue returned %q", pkt.Payload)
	}
}

func TestNetRecvMatchBuffersOthers(t *testing.T) {
	n0, n1, done := newTestNode(t, 4)
	defer done()
	n0.Send(ClassApp, 0, 1, 1, []byte("a"), 0)
	n0.Send(ClassApp, 0, 1, 2, []byte("b"), 0)
	n0.Send(ClassApp, 0, 1, 3, []byte("c"), 0)
	pkt, ok := n1.RecvMatch(ClassApp, func(p *Packet) bool { return p.Seq == 2 })
	if !ok || string(pkt.Payload) != "b" {
		t.Fatalf("RecvMatch returned %q", pkt.Payload)
	}
	// The skipped packets are still there, in order.
	pkt, _ = n1.Recv(ClassApp)
	if string(pkt.Payload) != "a" {
		t.Fatalf("buffered packet lost: got %q", pkt.Payload)
	}
	pkt, _ = n1.Recv(ClassApp)
	if string(pkt.Payload) != "c" {
		t.Fatalf("buffered packet lost: got %q", pkt.Payload)
	}
}

func TestNetSystemTrafficHasZeroDelay(t *testing.T) {
	n0, n1, done := newTestNode(t, 4)
	defer done()
	arrival, err := n0.Send(ClassSystem, 0, 1, 0, nil, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if arrival != 12345 {
		t.Fatalf("system packet delayed: arrival %d", arrival)
	}
	if _, ok := n1.Recv(ClassSystem); !ok {
		t.Fatal("system packet lost")
	}
}

func TestNetFeedsProgressWindow(t *testing.T) {
	cfg := config.Default()
	cfg.Tiles = 2
	prog := clock.NewProgressWindow(1)
	models := NewModels(&cfg, prog)
	fab := transport.NewChannelFabric(transport.StripedRoute(1))
	tr := fab.Process(0)
	ep0, _ := tr.Register(0)
	ep1, _ := tr.Register(1)
	n0 := New(0, tr, ep0, models, prog)
	n1 := New(1, tr, ep1, models, prog)
	n0.Start()
	n1.Start()
	defer func() { n0.Close(); n1.Close(); fab.Close() }()

	n0.Send(ClassApp, 0, 1, 0, nil, 10_000)
	if _, ok := n1.Recv(ClassApp); !ok {
		t.Fatal("recv failed")
	}
	if got := prog.Now(); got < 10_000 {
		t.Fatalf("progress window not fed by delivery: %d", got)
	}
}

func TestNetConcurrentSenders(t *testing.T) {
	n0, n1, done := newTestNode(t, 4)
	defer done()
	const senders, per = 4, 200
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := n0.Send(ClassApp, 0, 1, 0, []byte{1}, arch.Cycles(i)); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < senders*per; i++ {
		if _, ok := n1.Recv(ClassApp); !ok {
			t.Fatal("premature close")
		}
	}
	wg.Wait()
	if got := n0.Stats().PacketsSent[ClassApp].Load(); got != senders*per {
		t.Fatalf("sent counter = %d", got)
	}
	if got := n1.Stats().PacketsRecv[ClassApp].Load(); got != senders*per {
		t.Fatalf("recv counter = %d", got)
	}
}

func TestNetCloseUnblocksRecv(t *testing.T) {
	n0, _, done := newTestNode(t, 4)
	unblocked := make(chan bool, 1)
	go func() {
		_, ok := n0.Recv(ClassApp)
		unblocked <- ok
	}()
	done()
	if ok := <-unblocked; ok {
		t.Fatal("Recv returned ok after close")
	}
}
