package network

import (
	"sync"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/clock"
	"repro/internal/config"
	"repro/internal/transport"
)

// Models bundles the per-class network models of one simulated process.
// All tiles of the process share the same model instances, so contention
// state aggregates across them.
type Models struct {
	ms [NumClasses]Model
}

// NewModels builds the three class models from the configuration.
func NewModels(cfg *config.Config, progress *clock.ProgressWindow) *Models {
	var m Models
	m.ms[ClassSystem] = NewModel(cfg.SysNet, cfg.Tiles, progress)
	m.ms[ClassMemory] = NewModel(cfg.MemNet, cfg.Tiles, progress)
	m.ms[ClassApp] = NewModel(cfg.AppNet, cfg.Tiles, progress)
	return &m
}

// Model returns the model serving a class.
func (m *Models) Model(c Class) Model { return m.ms[c] }

// Delay computes the modeled latency for one packet. Traffic to or from
// control endpoints (negative IDs) is control-plane only and has no
// modeled delay regardless of class.
func (m *Models) Delay(c Class, src, dst arch.TileID, bytes int, depart arch.Cycles) arch.Cycles {
	if src < 0 || dst < 0 {
		return 0
	}
	return m.ms[c].Delay(src, dst, bytes, depart)
}

// Stats counts traffic per class for one Net.
type Stats struct {
	PacketsSent [NumClasses]atomic.Uint64
	BytesSent   [NumClasses]atomic.Uint64
	PacketsRecv [NumClasses]atomic.Uint64
	TotalDelay  [NumClasses]atomic.Int64 // summed modeled latency of sent packets
}

// pktQueue is an unbounded FIFO of packets, stored in a ring buffer so
// steady-state traffic recycles one allocation instead of regrowing an
// append-and-reslice queue (whose head capacity is unrecoverable).
type pktQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []Packet // ring of count packets starting at head
	head   int
	count  int
	closed bool
}

func newPktQueue() *pktQueue {
	// Start at the steady-state minimum ring size: the first packets of a
	// run then never trigger a growth step.
	q := &pktQueue{buf: make([]Packet, 16)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// at indexes the ring: logical position i counted from the head.
// Called with mu held.
func (q *pktQueue) at(i int) *Packet {
	return &q.buf[(q.head+i)%len(q.buf)]
}

func (q *pktQueue) put(p Packet) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.grow(1)
	*q.at(q.count) = p
	q.count++
	q.cond.Signal()
}

// grow ensures room for n more packets. Called with mu held.
func (q *pktQueue) grow(n int) {
	if q.count+n <= len(q.buf) {
		return
	}
	newCap := len(q.buf) * 2
	if newCap < 16 {
		newCap = 16
	}
	for newCap < q.count+n {
		newCap *= 2
	}
	nb := make([]Packet, newCap)
	for i := 0; i < q.count; i++ {
		nb[i] = *q.at(i)
	}
	q.buf, q.head = nb, 0
}

// putBatch appends ps in order under one lock acquisition with one
// receiver wakeup, preserving arrival order.
func (q *pktQueue) putBatch(ps []Packet) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.grow(len(ps))
	for i := range ps {
		*q.at(q.count) = ps[i]
		q.count++
	}
	if len(ps) > 1 {
		q.cond.Broadcast()
	} else {
		q.cond.Signal()
	}
}

// pop removes and returns the head packet. Called with mu held, count > 0.
func (q *pktQueue) pop() Packet {
	p := q.buf[q.head]
	q.buf[q.head] = Packet{}
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	return p
}

// tryGet returns the next packet without blocking; ok is false when the
// queue is momentarily empty or closed.
func (q *pktQueue) tryGet() (Packet, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.count == 0 {
		return Packet{}, false
	}
	return q.pop(), true
}

// tryGetBurst pops up to len(out) queued packets without blocking under
// one lock acquisition, returning how many it moved.
func (q *pktQueue) tryGetBurst(out []Packet) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	k := q.count
	if k > len(out) {
		k = len(out)
	}
	for i := 0; i < k; i++ {
		out[i] = q.pop()
	}
	return k
}

func (q *pktQueue) get() (Packet, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.count == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.count == 0 {
		return Packet{}, false
	}
	return q.pop(), true
}

// getMatch returns the first packet satisfying pred, buffering others in
// arrival order. It blocks until a match arrives or the queue closes.
func (q *pktQueue) getMatch(pred func(*Packet) bool) (Packet, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	scanned := 0
	for {
		for i := scanned; i < q.count; i++ {
			if pred(q.at(i)) {
				p := *q.at(i)
				// Close the gap: shift everything after i forward one slot.
				for j := i; j+1 < q.count; j++ {
					*q.at(j) = *q.at(j + 1)
				}
				*q.at(q.count - 1) = Packet{}
				q.count--
				return p, true
			}
		}
		scanned = q.count
		if q.closed {
			return Packet{}, false
		}
		q.cond.Wait()
	}
}

func (q *pktQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// Net is one node's interface to the on-chip networks: a target tile or a
// simulator control thread (MCP/LCP, which only ever uses ClassSystem).
// Transport frames reach per-class receive queues either through a
// demultiplexing goroutine (the default) or, when a primary class is
// declared, inline in the primary consumer's Recv — the tile's memory
// server then pumps the endpoint itself, and the dominant traffic class
// pays no extra goroutine hand-off or queue hop at all. Start must be
// called once before any Recv.
type Net struct {
	node     arch.TileID // may be negative for control endpoints
	tr       transport.Transport
	ep       transport.Endpoint
	models   *Models
	progress *clock.ProgressWindow
	queues   [NumClasses]*pktQueue
	primary  Class // NumClasses when unset
	stats    Stats
	wg       sync.WaitGroup
}

// New creates the network interface for a node. The endpoint must already
// be registered on the transport. progress may be nil for control nodes.
func New(node arch.TileID, tr transport.Transport, ep transport.Endpoint, models *Models, progress *clock.ProgressWindow) *Net {
	n := &Net{node: node, tr: tr, ep: ep, models: models, progress: progress, primary: NumClasses}
	for c := range n.queues {
		n.queues[c] = newPktQueue()
	}
	return n
}

// Node returns the node ID this Net serves.
func (n *Net) Node() arch.TileID { return n.node }

// SetPrimary declares class's consumer the endpoint pump: its Recv reads
// transport frames directly, returning packets of its own class and
// routing others to their queues, so no demux goroutine runs. The primary
// consumer must keep receiving for the other classes to make progress —
// the tile memory server's Serve loop does exactly that. Must be called
// before Start.
func (n *Net) SetPrimary(c Class) { n.primary = c }

// Start launches the demultiplexer (unless a primary consumer pumps the
// endpoint inline).
func (n *Net) Start() {
	if n.primary < NumClasses {
		return
	}
	n.wg.Add(1)
	go n.demux()
}

// demuxBurst bounds how many already-delivered frames demux moves in one
// sweep before releasing them to the class queues.
const demuxBurst = 32

func (n *Net) demux() {
	defer n.wg.Done()
	var burst [NumClasses][]Packet
	for {
		frame, err := n.ep.Recv()
		if err != nil {
			for _, q := range n.queues {
				q.close()
			}
			return
		}
		// Sweep whatever else the transport already delivered and hand the
		// packets to each class queue as one batch: a protocol burst costs
		// one queue lock and one receiver wakeup instead of one per packet.
		for {
			pkt, err := Decode(frame)
			if err == nil {
				n.recvPacket(&pkt)
				burst[pkt.Class] = append(burst[pkt.Class], pkt)
			}
			// Malformed frames indicate a simulator bug; dropping them is
			// the only safe action mid-simulation.
			if len(burst[ClassMemory])+len(burst[ClassSystem])+len(burst[ClassApp]) >= demuxBurst {
				break
			}
			var ok bool
			if frame, ok, err = n.ep.TryRecv(); err != nil || !ok {
				break
			}
		}
		for c := range burst {
			if len(burst[c]) > 0 {
				n.queues[c].putBatch(burst[c])
				clear(burst[c])
				burst[c] = burst[c][:0]
			}
		}
	}
}

// Send models and transmits a packet, returning its simulated arrival time
// at dst. now is the sender's current clock.
func (n *Net) Send(class Class, typ uint8, dst arch.TileID, seq uint64, payload []byte, now arch.Cycles) (arch.Cycles, error) {
	return n.SendFrom(nil, class, typ, dst, seq, payload, now)
}

// SendFrom is Send with the wire frame carved from the caller-owned arena
// (nil falls back to an individual allocation). High-rate senders — the
// memory system's core context — use it to keep the per-message frame off
// the garbage collector's plate.
func (n *Net) SendFrom(ar *FrameArena, class Class, typ uint8, dst arch.TileID, seq uint64, payload []byte, now arch.Cycles) (arch.Cycles, error) {
	p := Packet{Class: class, Type: typ, Src: n.node, Dst: dst, Seq: seq, Payload: payload}
	delay := n.models.Delay(class, n.node, dst, p.Bytes(), now)
	p.Time = now + delay
	n.stats.PacketsSent[class].Add(1)
	n.stats.BytesSent[class].Add(uint64(p.Bytes()))
	n.stats.TotalDelay[class].Add(int64(delay))
	var frame []byte
	if ar != nil {
		frame = p.encodeInto(ar.alloc(p.Bytes()))
	} else {
		frame = p.Encode()
	}
	if err := n.tr.Send(transport.EndpointID(dst), frame); err != nil {
		return 0, err
	}
	return p.Time, nil
}

// recvPacket accounts one decoded inbound packet.
func (n *Net) recvPacket(pkt *Packet) {
	if n.progress != nil && pkt.Time >= 0 {
		n.progress.Observe(pkt.Time)
	}
	n.stats.PacketsRecv[pkt.Class].Add(1)
}

// pump reads transport frames from the primary consumer's context,
// returning the first primary-class packet and routing every other class
// to its queue. ok is false once the endpoint closes, after which all
// queues are closed so secondary consumers unblock too.
func (n *Net) pump() (Packet, bool) {
	if p, ok := n.queues[n.primary].tryGet(); ok {
		return p, true
	}
	for {
		frame, err := n.ep.Recv()
		if err != nil {
			for _, q := range n.queues {
				q.close()
			}
			return Packet{}, false
		}
		pkt, err := Decode(frame)
		if err != nil {
			// A malformed frame indicates a simulator bug; dropping it is
			// the only safe action mid-simulation.
			continue
		}
		n.recvPacket(&pkt)
		if pkt.Class == n.primary {
			return pkt, true
		}
		n.queues[pkt.Class].put(pkt)
	}
}

// Recv blocks for the next packet of a class, in arrival order.
// ok is false after Close.
func (n *Net) Recv(class Class) (Packet, bool) {
	if class == n.primary {
		return n.pump()
	}
	return n.queues[class].get()
}

// TryRecv returns the next packet of a class without blocking; ok is false
// when none is queued (or the Net is closed). Server loops use it to drain
// bursts before flushing batched replies.
func (n *Net) TryRecv(class Class) (Packet, bool) {
	return n.queues[class].tryGet()
}

// TryRecvBurst moves up to len(out) queued packets of a class into out
// without blocking, under one queue lock, returning the count. Server
// loops use it to drain inbound bursts at one lock per burst instead of
// one per packet. The primary consumer additionally sweeps frames the
// transport has already delivered.
func (n *Net) TryRecvBurst(class Class, out []Packet) int {
	k := n.queues[class].tryGetBurst(out)
	if class != n.primary {
		return k
	}
	for k < len(out) {
		frame, ok, err := n.ep.TryRecv()
		if err != nil || !ok {
			break
		}
		pkt, derr := Decode(frame)
		if derr != nil {
			continue
		}
		n.recvPacket(&pkt)
		if pkt.Class == class {
			out[k] = pkt
			k++
		} else {
			n.queues[pkt.Class].put(pkt)
		}
	}
	return k
}

// RecvMatch blocks for the next packet of a class satisfying pred,
// buffering non-matching packets for later Recv/RecvMatch calls.
func (n *Net) RecvMatch(class Class, pred func(*Packet) bool) (Packet, bool) {
	return n.queues[class].getMatch(pred)
}

// Delay returns the modeled network latency of a packet with the given
// payload size departing for dst now, without sending anything. The
// memory system's local-home shortcut uses it to charge exactly the
// timing a loopback message would have had.
func (n *Net) Delay(class Class, dst arch.TileID, payloadBytes int, depart arch.Cycles) arch.Cycles {
	return n.models.Delay(class, n.node, dst, headerLen+payloadBytes, depart)
}

// Observe feeds a timestamp into the process's progress window, exactly
// as receiving a packet with that timestamp would. Loopback shortcuts
// call it so the global-progress approximation sees the same sample
// stream whether or not the message physically traversed the transport.
func (n *Net) Observe(t arch.Cycles) {
	if n.progress != nil && t >= 0 {
		n.progress.Observe(t)
	}
}

// Stats exposes the traffic counters.
func (n *Net) Stats() *Stats { return &n.stats }

// Close shuts down the receive queues and the endpoint. In-flight Recv
// calls return ok == false.
func (n *Net) Close() {
	n.ep.Close()
	for _, q := range n.queues {
		q.close()
	}
	n.wg.Wait()
}
