// Package arch defines the primitive architectural types shared by every
// Graphite subsystem: tile identifiers, simulated addresses, and simulated
// cycle counts.
//
// The package is a leaf: it imports nothing and exists so that the network,
// memory, and core-model packages can agree on these vocabulary types
// without import cycles.
package arch

import "fmt"

// TileID identifies a tile of the target architecture. Tiles are numbered
// densely from 0 to Tiles-1. Negative values identify simulator control
// endpoints (the MCP and per-process LCPs) on the transport fabric.
type TileID int32

// InvalidTile is returned by lookups that found no tile.
const InvalidTile TileID = -1

// String implements fmt.Stringer.
func (t TileID) String() string {
	if t < 0 {
		return fmt.Sprintf("ctrl(%d)", int32(t))
	}
	return fmt.Sprintf("tile%d", int32(t))
}

// Addr is an address in the single simulated application address space that
// Graphite presents to all target threads, regardless of which host process
// the thread executes in.
type Addr uint64

// Cycles counts simulated target clock cycles. It is signed so that clock
// differences (skew, queueing delays) can be represented directly.
type Cycles int64

// ThreadID identifies an application thread. Thread 0 is the main thread.
type ThreadID int32

// InvalidThread is returned by spawn failures and empty joins.
const InvalidThread ThreadID = -1

// ProcID identifies a simulated host process participating in a simulation.
type ProcID int32

// MaxCycles is a sentinel "infinitely far in the future" cycle count.
const MaxCycles Cycles = 1<<63 - 1
