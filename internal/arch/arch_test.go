package arch

import "testing"

func TestTileIDString(t *testing.T) {
	cases := []struct {
		id   TileID
		want string
	}{
		{0, "tile0"},
		{17, "tile17"},
		{InvalidTile, "ctrl(-1)"},
		{-2, "ctrl(-2)"},
	}
	for _, c := range cases {
		if got := c.id.String(); got != c.want {
			t.Errorf("TileID(%d).String() = %q, want %q", int32(c.id), got, c.want)
		}
	}
}

func TestSentinels(t *testing.T) {
	if InvalidTile >= 0 {
		t.Error("InvalidTile must be negative (control endpoints share the negative space)")
	}
	if InvalidThread >= 0 {
		t.Error("InvalidThread must be negative")
	}
	if MaxCycles != 1<<63-1 {
		t.Errorf("MaxCycles = %d, want max int64", MaxCycles)
	}
}

func TestCyclesAreSigned(t *testing.T) {
	// Clock skew and queueing math relies on Cycles being signed.
	a, b := Cycles(100), Cycles(250)
	if diff := a - b; diff != -150 {
		t.Errorf("cycle difference = %d, want -150", diff)
	}
}
