package stats

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"testing"
)

func TestMissKindStrings(t *testing.T) {
	for k := MissKind(0); k < NumMissKinds; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if MissKind(200).String() != "unknown" {
		t.Fatal("unknown kind not labeled")
	}
}

func TestAggregate(t *testing.T) {
	tiles := []Tile{
		{TileID: 0, Instructions: 100, Cycles: 500, Loads: 10, Stores: 5,
			L2Hits: 8, L2Misses: 7, MissBy: [NumMissKinds]uint64{3, 2, 1, 1},
			MemLatencyTotal: 700, MemAccesses: 7, Branches: 4, BranchMispredict: 1},
		{TileID: 1, Instructions: 200, Cycles: 900, Loads: 20, Stores: 15,
			L2Hits: 30, L2Misses: 5, MissBy: [NumMissKinds]uint64{5, 0, 0, 0},
			MemLatencyTotal: 500, MemAccesses: 5, Branches: 6, BranchMispredict: 2},
	}
	tot := Aggregate(tiles)
	if tot.Tiles != 2 || tot.Instructions != 300 {
		t.Fatalf("totals: %+v", tot)
	}
	if tot.MaxCycles != 900 || tot.SumCycles != 1400 {
		t.Fatalf("cycles: max=%d sum=%d", tot.MaxCycles, tot.SumCycles)
	}
	if tot.Loads != 30 || tot.Stores != 20 {
		t.Fatal("memory refs wrong")
	}
	if tot.MissBy[MissCold] != 8 || tot.MissBy[MissTrueSharing] != 1 {
		t.Fatalf("miss kinds: %v", tot.MissBy)
	}
	// 12 classified misses over 50 refs.
	if r := tot.MissRate(); r != 12.0/50 {
		t.Fatalf("miss rate = %v", r)
	}
	if r := tot.MissRateBy(MissCold); r != 8.0/50 {
		t.Fatalf("cold rate = %v", r)
	}
	if l := tot.AvgMemLatency(); l != 100 {
		t.Fatalf("avg latency = %v", l)
	}
}

func TestAggregateEmpty(t *testing.T) {
	tot := Aggregate(nil)
	if tot.MissRate() != 0 || tot.AvgMemLatency() != 0 || tot.MissRateBy(MissCold) != 0 {
		t.Fatal("empty totals must not divide by zero")
	}
}

func TestTileTotalL2Misses(t *testing.T) {
	ti := Tile{MissBy: [NumMissKinds]uint64{1, 2, 3, 4}}
	if ti.TotalL2Misses() != 10 {
		t.Fatalf("total = %d", ti.TotalL2Misses())
	}
}

func TestTileGobRoundtrip(t *testing.T) {
	// Tiles cross process boundaries gob-encoded (MCP stats gathering).
	in := Tile{TileID: 3, Instructions: 42, Cycles: 99, IFetchMisses: 7,
		MissBy: [NumMissKinds]uint64{1, 2, 3, 4}}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode([]Tile{in}); err != nil {
		t.Fatal(err)
	}
	var out []Tile
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != in {
		t.Fatalf("roundtrip mismatch: %+v", out)
	}
}

func TestTotalsJSONExport(t *testing.T) {
	// The JSON tags are the stable structured-export schema; scenario
	// JSONL records embed Totals verbatim and must round-trip exactly.
	in := Totals{Tiles: 2, Instructions: 10, MaxCycles: 99, Loads: 5, Stores: 3,
		MissBy: [NumMissKinds]uint64{1, 0, 2, 1}}
	buf, err := json.Marshal(&in)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"tiles"`, `"instructions"`, `"max_cycles"`, `"loads"`, `"stores"`, `"miss_by"`} {
		if !bytes.Contains(buf, []byte(key)) {
			t.Errorf("export missing %s: %s", key, buf)
		}
	}
	var out Totals
	if err := json.Unmarshal(buf, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
}

func TestTileJSONExport(t *testing.T) {
	in := Tile{TileID: 1, Instructions: 7, L1DHits: 3, L1DMisses: 1, DRAMReads: 2}
	buf, err := json.Marshal(&in)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"tile"`, `"l1d_hits"`, `"l1d_misses"`, `"dram_reads"`} {
		if !bytes.Contains(buf, []byte(key)) {
			t.Errorf("export missing %s: %s", key, buf)
		}
	}
	var out Tile
	if err := json.Unmarshal(buf, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatal("round trip mismatch")
	}
}

func TestMissByName(t *testing.T) {
	tot := Totals{MissBy: [NumMissKinds]uint64{4, 3, 2, 1}}
	m := tot.MissByName()
	if m["cold"] != 4 || m["capacity"] != 3 || m["true-sharing"] != 2 || m["false-sharing"] != 1 {
		t.Fatalf("MissByName = %v", m)
	}
}
