// Package stats defines the per-tile statistics records collected during a
// simulation and their aggregation. Records are plain data and gob-encodable
// so the MCP can gather them from every host process at simulation end.
package stats

import (
	"repro/internal/arch"
)

// MissKind classifies misses at the coherence point (L2), following the
// classification used by the SPLASH-2 characterization the paper validates
// against (Figure 8): cold (first access by this tile), capacity/conflict
// (line was evicted for space), and coherence misses split into true
// sharing (a word this tile accesses was written by the invalidating tile)
// and false sharing (the invalidating writes touched only other words of
// the line).
type MissKind uint8

const (
	// MissCold is a compulsory miss.
	MissCold MissKind = iota
	// MissCapacity is a capacity or conflict miss.
	MissCapacity
	// MissTrueSharing is a coherence miss on truly shared words.
	MissTrueSharing
	// MissFalseSharing is a coherence miss caused only by line granularity.
	MissFalseSharing
	// NumMissKinds is the number of classified kinds.
	NumMissKinds
)

// String implements fmt.Stringer.
func (k MissKind) String() string {
	switch k {
	case MissCold:
		return "cold"
	case MissCapacity:
		return "capacity"
	case MissTrueSharing:
		return "true-sharing"
	case MissFalseSharing:
		return "false-sharing"
	default:
		return "unknown"
	}
}

// Tile is the statistics record of one target tile.
type Tile struct {
	TileID arch.TileID

	// Core model.
	Instructions     uint64
	Cycles           arch.Cycles // final local clock
	Branches         uint64
	BranchMispredict uint64
	ComputeCycles    arch.Cycles
	MemStallCycles   arch.Cycles
	SyncWaitCycles   arch.Cycles

	// Memory references issued by the application.
	Loads, Stores uint64

	// Cache hierarchy.
	L1IHits, L1IMisses uint64
	L1DHits, L1DMisses uint64
	L2Hits, L2Misses   uint64
	L2Evictions        uint64
	L2Writebacks       uint64
	Upgrades           uint64
	// MissBy classifies data misses only; instruction-fetch misses are
	// counted separately so they cannot distort Figure 8.
	MissBy       [NumMissKinds]uint64
	IFetchMisses uint64

	// Memory timing.
	MemLatencyTotal arch.Cycles // summed end-to-end latency of L2 misses
	MemAccesses     uint64      // L2 misses measured by MemLatencyTotal

	// Home-tile roles.
	DirRequests   uint64 // coherence requests served as home
	DirTraps      uint64 // LimitLESS software traps
	InvSent       uint64 // invalidations issued as home
	DRAMReads     uint64
	DRAMWrites    uint64
	DRAMQueueWait arch.Cycles

	// Network (filled from the tile's Net at collection time).
	NetPacketsSent uint64
	NetBytesSent   uint64
	NetPacketsRecv uint64
}

// TotalL2Misses returns the sum of the classified miss counters.
func (t *Tile) TotalL2Misses() uint64 {
	var n uint64
	for _, v := range t.MissBy {
		n += v
	}
	return n
}

// Totals aggregates tile records for reporting.
type Totals struct {
	Tiles            int
	Instructions     uint64
	MaxCycles        arch.Cycles // simulated run-time: max over tile clocks
	SumCycles        arch.Cycles
	Loads, Stores    uint64
	L1DHits          uint64
	L1DMisses        uint64
	L2Hits           uint64
	L2Misses         uint64
	Upgrades         uint64
	MissBy           [NumMissKinds]uint64
	MemLatencyTotal  arch.Cycles
	MemAccesses      uint64
	DirTraps         uint64
	InvSent          uint64
	DRAMReads        uint64
	DRAMWrites       uint64
	NetPacketsSent   uint64
	NetBytesSent     uint64
	Branches         uint64
	BranchMispredict uint64
}

// Aggregate folds tile records into totals.
func Aggregate(tiles []Tile) Totals {
	var out Totals
	out.Tiles = len(tiles)
	for i := range tiles {
		t := &tiles[i]
		out.Instructions += t.Instructions
		if t.Cycles > out.MaxCycles {
			out.MaxCycles = t.Cycles
		}
		out.SumCycles += t.Cycles
		out.Loads += t.Loads
		out.Stores += t.Stores
		out.L1DHits += t.L1DHits
		out.L1DMisses += t.L1DMisses
		out.L2Hits += t.L2Hits
		out.L2Misses += t.L2Misses
		out.Upgrades += t.Upgrades
		for k := range t.MissBy {
			out.MissBy[k] += t.MissBy[k]
		}
		out.MemLatencyTotal += t.MemLatencyTotal
		out.MemAccesses += t.MemAccesses
		out.DirTraps += t.DirTraps
		out.InvSent += t.InvSent
		out.DRAMReads += t.DRAMReads
		out.DRAMWrites += t.DRAMWrites
		out.NetPacketsSent += t.NetPacketsSent
		out.NetBytesSent += t.NetBytesSent
		out.Branches += t.Branches
		out.BranchMispredict += t.BranchMispredict
	}
	return out
}

// MissRate returns classified L2 misses per memory reference, as a
// fraction (the Figure 8 y-axis).
func (t *Totals) MissRate() float64 {
	refs := t.Loads + t.Stores
	if refs == 0 {
		return 0
	}
	var misses uint64
	for _, v := range t.MissBy {
		misses += v
	}
	return float64(misses) / float64(refs)
}

// MissRateBy returns the per-kind miss rate.
func (t *Totals) MissRateBy(k MissKind) float64 {
	refs := t.Loads + t.Stores
	if refs == 0 {
		return 0
	}
	return float64(t.MissBy[k]) / float64(refs)
}

// AvgMemLatency returns the mean end-to-end L2 miss latency in cycles.
func (t *Totals) AvgMemLatency() float64 {
	if t.MemAccesses == 0 {
		return 0
	}
	return float64(t.MemLatencyTotal) / float64(t.MemAccesses)
}
