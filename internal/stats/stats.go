// Package stats defines the per-tile statistics records collected during a
// simulation and their aggregation. Records are plain data and gob-encodable
// so the MCP can gather them from every host process at simulation end.
package stats

import (
	"repro/internal/arch"
)

// MissKind classifies misses at the coherence point (L2), following the
// classification used by the SPLASH-2 characterization the paper validates
// against (Figure 8): cold (first access by this tile), capacity/conflict
// (line was evicted for space), and coherence misses split into true
// sharing (a word this tile accesses was written by the invalidating tile)
// and false sharing (the invalidating writes touched only other words of
// the line).
type MissKind uint8

const (
	// MissCold is a compulsory miss.
	MissCold MissKind = iota
	// MissCapacity is a capacity or conflict miss.
	MissCapacity
	// MissTrueSharing is a coherence miss on truly shared words.
	MissTrueSharing
	// MissFalseSharing is a coherence miss caused only by line granularity.
	MissFalseSharing
	// NumMissKinds is the number of classified kinds.
	NumMissKinds
)

// String implements fmt.Stringer.
func (k MissKind) String() string {
	switch k {
	case MissCold:
		return "cold"
	case MissCapacity:
		return "capacity"
	case MissTrueSharing:
		return "true-sharing"
	case MissFalseSharing:
		return "false-sharing"
	default:
		return "unknown"
	}
}

// Tile is the statistics record of one target tile. The JSON field names
// are the stable export schema consumed by scenario JSONL records and any
// external analysis tooling; gob encoding (the MCP gather path) ignores
// the tags.
//
//graphite:wire
type Tile struct {
	TileID arch.TileID `json:"tile"`

	// Core model.
	Instructions     uint64      `json:"instructions"`
	Cycles           arch.Cycles `json:"cycles"` // final local clock
	Branches         uint64      `json:"branches"`
	BranchMispredict uint64      `json:"branch_mispredict"`
	ComputeCycles    arch.Cycles `json:"compute_cycles"`
	MemStallCycles   arch.Cycles `json:"mem_stall_cycles"`
	SyncWaitCycles   arch.Cycles `json:"sync_wait_cycles"`

	// Memory references issued by the application.
	Loads  uint64 `json:"loads"`
	Stores uint64 `json:"stores"`

	// Cache hierarchy.
	L1IHits      uint64 `json:"l1i_hits"`
	L1IMisses    uint64 `json:"l1i_misses"`
	L1DHits      uint64 `json:"l1d_hits"`
	L1DMisses    uint64 `json:"l1d_misses"`
	L2Hits       uint64 `json:"l2_hits"`
	L2Misses     uint64 `json:"l2_misses"`
	L2Evictions  uint64 `json:"l2_evictions"`
	L2Writebacks uint64 `json:"l2_writebacks"`
	Upgrades     uint64 `json:"upgrades"`
	// MissBy classifies data misses only; instruction-fetch misses are
	// counted separately so they cannot distort Figure 8.
	MissBy       [NumMissKinds]uint64 `json:"miss_by"`
	IFetchMisses uint64               `json:"ifetch_misses"`

	// Memory timing.
	MemLatencyTotal arch.Cycles `json:"mem_latency_total"` // summed end-to-end latency of L2 misses
	MemAccesses     uint64      `json:"mem_accesses"`      // L2 misses measured by MemLatencyTotal

	// Home-tile roles.
	DirRequests   uint64      `json:"dir_requests"` // coherence requests served as home
	DirTraps      uint64      `json:"dir_traps"`    // LimitLESS software traps
	InvSent       uint64      `json:"inv_sent"`     // invalidations issued as home
	DRAMReads     uint64      `json:"dram_reads"`
	DRAMWrites    uint64      `json:"dram_writes"`
	DRAMQueueWait arch.Cycles `json:"dram_queue_wait"`

	// Network (filled from the tile's Net at collection time).
	NetPacketsSent uint64 `json:"net_packets_sent"`
	NetBytesSent   uint64 `json:"net_bytes_sent"`
	NetPacketsRecv uint64 `json:"net_packets_recv"`
}

// TotalL2Misses returns the sum of the classified miss counters.
func (t *Tile) TotalL2Misses() uint64 {
	var n uint64
	for _, v := range t.MissBy {
		n += v
	}
	return n
}

// Totals aggregates tile records for reporting. Like Tile, the JSON tags
// are the stable structured-export schema (scenario JSONL embeds Totals
// verbatim); field values are integers, so records round-trip exactly.
//
//graphite:wire
type Totals struct {
	Tiles            int                  `json:"tiles"`
	Instructions     uint64               `json:"instructions"`
	MaxCycles        arch.Cycles          `json:"max_cycles"` // simulated run-time: max over tile clocks
	SumCycles        arch.Cycles          `json:"sum_cycles"`
	Loads            uint64               `json:"loads"`
	Stores           uint64               `json:"stores"`
	L1DHits          uint64               `json:"l1d_hits"`
	L1DMisses        uint64               `json:"l1d_misses"`
	L2Hits           uint64               `json:"l2_hits"`
	L2Misses         uint64               `json:"l2_misses"`
	Upgrades         uint64               `json:"upgrades"`
	MissBy           [NumMissKinds]uint64 `json:"miss_by"`
	MemLatencyTotal  arch.Cycles          `json:"mem_latency_total"`
	MemAccesses      uint64               `json:"mem_accesses"`
	DirTraps         uint64               `json:"dir_traps"`
	InvSent          uint64               `json:"inv_sent"`
	DRAMReads        uint64               `json:"dram_reads"`
	DRAMWrites       uint64               `json:"dram_writes"`
	NetPacketsSent   uint64               `json:"net_packets_sent"`
	NetBytesSent     uint64               `json:"net_bytes_sent"`
	Branches         uint64               `json:"branches"`
	BranchMispredict uint64               `json:"branch_mispredict"`
}

// MissByName returns the classified miss counters keyed by kind name —
// the reader-friendly companion of the positional MissBy array in JSON
// exports.
func (t *Totals) MissByName() map[string]uint64 {
	out := make(map[string]uint64, NumMissKinds)
	for k := MissKind(0); k < NumMissKinds; k++ {
		out[k.String()] = t.MissBy[k]
	}
	return out
}

// Aggregate folds tile records into totals.
func Aggregate(tiles []Tile) Totals {
	var out Totals
	out.Tiles = len(tiles)
	for i := range tiles {
		t := &tiles[i]
		out.Instructions += t.Instructions
		if t.Cycles > out.MaxCycles {
			out.MaxCycles = t.Cycles
		}
		out.SumCycles += t.Cycles
		out.Loads += t.Loads
		out.Stores += t.Stores
		out.L1DHits += t.L1DHits
		out.L1DMisses += t.L1DMisses
		out.L2Hits += t.L2Hits
		out.L2Misses += t.L2Misses
		out.Upgrades += t.Upgrades
		for k := range t.MissBy {
			out.MissBy[k] += t.MissBy[k]
		}
		out.MemLatencyTotal += t.MemLatencyTotal
		out.MemAccesses += t.MemAccesses
		out.DirTraps += t.DirTraps
		out.InvSent += t.InvSent
		out.DRAMReads += t.DRAMReads
		out.DRAMWrites += t.DRAMWrites
		out.NetPacketsSent += t.NetPacketsSent
		out.NetBytesSent += t.NetBytesSent
		out.Branches += t.Branches
		out.BranchMispredict += t.BranchMispredict
	}
	return out
}

// MissRate returns classified L2 misses per memory reference, as a
// fraction (the Figure 8 y-axis).
func (t *Totals) MissRate() float64 {
	refs := t.Loads + t.Stores
	if refs == 0 {
		return 0
	}
	var misses uint64
	for _, v := range t.MissBy {
		misses += v
	}
	return float64(misses) / float64(refs)
}

// MissRateBy returns the per-kind miss rate.
func (t *Totals) MissRateBy(k MissKind) float64 {
	refs := t.Loads + t.Stores
	if refs == 0 {
		return 0
	}
	return float64(t.MissBy[k]) / float64(refs)
}

// AvgMemLatency returns the mean end-to-end L2 miss latency in cycles.
func (t *Totals) AvgMemLatency() float64 {
	if t.MemAccesses == 0 {
		return 0
	}
	return float64(t.MemLatencyTotal) / float64(t.MemAccesses)
}
