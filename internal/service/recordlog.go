package service

import (
	"bytes"
	"context"
	"sync"
)

// recordLog accumulates one job's merged JSONL output and hands complete
// lines to any number of concurrent streamers. The dispatch coordinator
// is its only writer: Options.Out receives record i exactly when records
// 0..i are all complete (coordinator flush discipline, DESIGN.md §11), so
// the log's line order IS run-index order and a streamer that has read i
// lines resumes losslessly from line i — that single property is what
// makes GET /v1/jobs/{id}/records?from= sound without any bookkeeping
// beyond a line count.
//
// Writes are buffered until a newline completes a record: the JSON
// encoder's write granularity is not part of its contract, and a torn
// line must never reach a client.
type recordLog struct {
	mu      sync.Mutex
	cond    *sync.Cond
	lines   [][]byte // complete JSONL lines, trailing newline included
	partial []byte
	closed  bool
	// onLine, when non-nil, is called (without the lock) once per
	// completed line — the runs-completed metrics hook.
	onLine func()
}

func newRecordLog(onLine func()) *recordLog {
	l := &recordLog{onLine: onLine}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Write implements io.Writer for the coordinator's Options.Out.
func (l *recordLog) Write(p []byte) (int, error) {
	l.mu.Lock()
	completed := 0
	l.partial = append(l.partial, p...)
	for {
		i := bytes.IndexByte(l.partial, '\n')
		if i < 0 {
			break
		}
		line := make([]byte, i+1)
		copy(line, l.partial[:i+1])
		l.lines = append(l.lines, line)
		l.partial = l.partial[i+1:]
		completed++
	}
	if completed > 0 {
		l.cond.Broadcast()
	}
	l.mu.Unlock()
	if l.onLine != nil {
		for ; completed > 0; completed-- {
			l.onLine()
		}
	}
	return len(p), nil
}

// close marks the log complete: waiters past the last line get EOF
// instead of blocking. Idempotent.
func (l *recordLog) close() {
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
}

// len reports how many complete lines the log holds.
func (l *recordLog) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.lines)
}

// wait blocks until line i exists (returning it), the log closes with
// fewer lines (ok false: end of stream), or ctx is done (ok false).
// Returned lines are never mutated after publication, so callers may
// write them out without copying.
func (l *recordLog) wait(ctx context.Context, i int) (line []byte, ok bool) {
	// A context cancellation must wake the cond waiter; Broadcast without
	// holding the lock is explicitly allowed.
	stop := context.AfterFunc(ctx, l.cond.Broadcast)
	defer stop()
	l.mu.Lock()
	defer l.mu.Unlock()
	for i >= len(l.lines) && !l.closed && ctx.Err() == nil {
		l.cond.Wait()
	}
	if i < len(l.lines) && ctx.Err() == nil {
		return l.lines[i], true
	}
	return nil, false
}
