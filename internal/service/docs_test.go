package service

import (
	"os"
	"regexp"
	"testing"
)

// TestAPIDocsCoverRouter enforces the docs contract both ways: every
// route registered on the daemon's mux appears as a `### `METHOD /path“
// heading in docs/API.md, and every such heading names a route that is
// actually registered. Adding an endpoint without documenting it — or
// documenting one that does not exist — fails this test.
func TestAPIDocsCoverRouter(t *testing.T) {
	doc, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatalf("docs/API.md must ship with the service: %v", err)
	}
	headingRe := regexp.MustCompile("(?m)^### `((?:GET|POST|PUT|DELETE|PATCH|HEAD) [^`]+)`")
	documented := map[string]bool{}
	for _, m := range headingRe.FindAllStringSubmatch(string(doc), -1) {
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("docs/API.md has no `### `METHOD /path`` endpoint headings")
	}
	registered := map[string]bool{}
	for _, pat := range New(Options{Workers: -1}).RoutePatterns() {
		registered[pat] = true
		if !documented[pat] {
			t.Errorf("route %q is registered but not documented in docs/API.md", pat)
		}
	}
	for pat := range documented {
		if !registered[pat] {
			t.Errorf("docs/API.md documents %q, which is not a registered route", pat)
		}
	}
	if t.Failed() {
		t.Logf("registered routes: %v", New(Options{Workers: -1}).RoutePatterns())
	}
}
