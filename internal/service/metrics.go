package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// metrics holds the daemon's Prometheus counters. The policy follows the
// exemplar service this daemon is modeled on (SNIPPETS.md §1): counters
// are monotonic for the life of the process, and no metric carries a
// per-job label — job IDs are unbounded, so jobs appear only aggregated
// by state. Cache counters are not duplicated here; they are read from
// the record cache's own monotonic Stats at scrape time.
type metrics struct {
	jobsSubmitted atomic.Int64 // jobs accepted by POST /v1/jobs
	runsCompleted atomic.Int64 // records merged in run-index order
	recordsServed atomic.Int64 // JSONL lines written to record streams

	mu   sync.Mutex
	http map[httpKey]int64 // requests by route pattern and status code
}

// httpKey is one cell of the request counter: the matched route pattern
// (bounded by the route table; "unmatched" for 404/405s) and the status.
type httpKey struct {
	route string
	code  int
}

func newMetrics() *metrics {
	return &metrics{http: make(map[httpKey]int64)}
}

func (m *metrics) countRequest(route string, code int) {
	if route == "" {
		route = "unmatched"
	}
	m.mu.Lock()
	m.http[httpKey{route, code}]++
	m.mu.Unlock()
}

// jobGauges is the point-in-time jobs-by-state snapshot rendered into
// graphited_jobs; the Server computes it under its own lock.
type jobGauges struct {
	queued, running, done, failed int
}

// render writes the Prometheus text exposition. cache may be a zero
// CacheStats when no cache directory is configured — the series are still
// emitted (at zero) so dashboards need no existence checks.
func (m *metrics) render(w io.Writer, jobs jobGauges, workers int, cache cacheStats) {
	c := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	g := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	fmt.Fprintf(w, "# HELP graphited_jobs Jobs known to the daemon, by lifecycle state.\n# TYPE graphited_jobs gauge\n")
	fmt.Fprintf(w, "graphited_jobs{state=\"queued\"} %d\n", jobs.queued)
	fmt.Fprintf(w, "graphited_jobs{state=\"running\"} %d\n", jobs.running)
	fmt.Fprintf(w, "graphited_jobs{state=\"done\"} %d\n", jobs.done)
	fmt.Fprintf(w, "graphited_jobs{state=\"failed\"} %d\n", jobs.failed)

	c("graphited_jobs_submitted_total", "Jobs accepted by POST /v1/jobs.", m.jobsSubmitted.Load())
	c("graphited_runs_completed_total", "Simulation runs merged into job output, in run-index order.", m.runsCompleted.Load())
	c("graphited_records_served_total", "JSONL record lines written to /records streams.", m.recordsServed.Load())
	g("graphited_workers", "In-process worker slots attached to each running job.", int64(workers))

	c("graphited_cache_hits_total", "Record cache hits (runs served without simulating).", cache.hits)
	c("graphited_cache_misses_total", "Record cache misses.", cache.misses)
	c("graphited_cache_evictions_total", "Record cache memory-tier evictions.", cache.evictions)
	g("graphited_cache_entries", "Record cache in-memory entries.", cache.entries)
	g("graphited_cache_bytes", "Record cache in-memory record bytes.", cache.bytes)
	g("graphited_cache_disk_entries", "Record cache live disk entries.", cache.diskEntries)
	g("graphited_cache_disk_bytes", "Record cache live disk bytes.", cache.diskLive)

	m.mu.Lock()
	keys := make([]httpKey, 0, len(m.http))
	for k := range m.http {
		keys = append(keys, k)
	}
	counts := make(map[httpKey]int64, len(keys))
	for _, k := range keys {
		counts[k] = m.http[k]
	}
	m.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].route != keys[j].route {
			return keys[i].route < keys[j].route
		}
		return keys[i].code < keys[j].code
	})
	fmt.Fprintf(w, "# HELP graphited_http_requests_total HTTP requests by route pattern and status code.\n# TYPE graphited_http_requests_total counter\n")
	for _, k := range keys {
		fmt.Fprintf(w, "graphited_http_requests_total{route=%q,code=\"%d\"} %d\n", k.route, k.code, counts[k])
	}
}

// cacheStats is the slice of recordcache.Stats the metrics page exposes,
// decoupled from the concrete cache type so render needs no cache import.
type cacheStats struct {
	hits, misses, evictions int64
	entries, bytes          int64
	diskEntries, diskLive   int64
}
