// The v1 HTTP surface. Routes are declared in one walkable table
// (routes) so tests can assert that every registered pattern is
// documented in docs/API.md and vice versa; the method-qualified
// patterns make net/http answer 405 for wrong methods on known paths.
//
// Logging follows the exemplar policy (SNIPPETS.md §1): non-2xx
// responses are always logged, 2xx only in verbose mode, one structured
// JSON line per request.

package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/scenario"
)

// JobStatus is the wire form of one job on the v1 API (GET /v1/jobs and
// GET /v1/jobs/{id}). Unlike Records, status is about the daemon, not
// the simulation — it carries wall-clock fields freely.
//
//graphite:wire
type JobStatus struct {
	ID       string `json:"id"`
	State    string `json:"state"` // queued | running | done | failed
	Scenario string `json:"scenario"`
	// RunsTotal is the scenario's expanded run count; RunsDone of them
	// have a record (executed, cache-served, or error-stamped).
	RunsTotal int `json:"runs_total"`
	RunsDone  int `json:"runs_done"`
	// RunsExecuted were simulated by workers; RunsCached were served by
	// the record cache without dispatching.
	RunsExecuted int `json:"runs_executed"`
	RunsCached   int `json:"runs_cached"`
	// RecordsAvailable is how many JSONL lines /records can serve right
	// now (== RunsDone once the in-order flush catches up).
	RecordsAvailable int `json:"records_available"`
	// DispatchAddr is the running job's coordinator address: external
	// `graphite-sweep -worker -connect` processes may attach to it to
	// lend the job capacity. Empty unless the job is running.
	DispatchAddr string `json:"dispatch_addr,omitempty"`
	Error        string `json:"error,omitempty"`
	CreatedAt    string `json:"created_at"`
	StartedAt    string `json:"started_at,omitempty"`
	FinishedAt   string `json:"finished_at,omitempty"`
}

// JobList is the wire form of GET /v1/jobs.
//
//graphite:wire
type JobList struct {
	Jobs []JobStatus `json:"jobs"`
}

// apiError is the wire form of every non-2xx response.
//
//graphite:wire
type apiError struct {
	Error string `json:"error"`
}

// maxScenarioBytes bounds a POST /v1/jobs body. Scenario files are a few
// KB; the cap only exists so a stray upload cannot balloon the daemon.
const maxScenarioBytes = 8 << 20

// route is one row of the v1 routing table.
type route struct {
	// Pattern is a method-qualified net/http ServeMux pattern, e.g.
	// "GET /v1/jobs/{id}". It is the unit the docs test walks.
	Pattern string
	handler http.HandlerFunc
}

func (s *Server) routes() []route {
	return []route{
		{"POST /v1/jobs", s.handleSubmit},
		{"GET /v1/jobs", s.handleList},
		{"GET /v1/jobs/{id}", s.handleStatus},
		{"GET /v1/jobs/{id}/records", s.handleRecords},
		{"DELETE /v1/jobs/{id}", s.handleCancel},
		{"GET /healthz", s.handleHealthz},
		{"GET /metrics", s.handleMetrics},
	}
}

// RoutePatterns returns every registered route pattern — the contract
// docs/API.md must cover (enforced by a test).
func (s *Server) RoutePatterns() []string {
	var out []string
	for _, rt := range s.routes() {
		out = append(out, rt.Pattern)
	}
	return out
}

// Handler builds the daemon's HTTP handler: the v1 mux wrapped in the
// logging/metrics middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range s.routes() {
		mux.Handle(rt.Pattern, rt.handler)
	}
	return s.instrument(mux)
}

// instrument counts and (per the logging policy) logs every request.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		code := rec.code
		if code == 0 {
			code = http.StatusOK
		}
		// r.Pattern is set by ServeMux on match; empty means 404/405
		// territory, which the counter files under "unmatched".
		s.metrics.countRequest(r.Pattern, code)
		if s.opt.Log == nil || (code < 300 && !s.opt.Verbose) {
			return
		}
		line, _ := json.Marshal(map[string]any{
			"time":   start.UTC().Format(time.RFC3339Nano),
			"method": r.Method,
			"path":   r.URL.Path,
			"status": code,
			"dur_ms": float64(time.Since(start).Microseconds()) / 1e3,
		})
		fmt.Fprintf(s.opt.Log, "%s\n", line)
	})
}

// statusRecorder captures the response code for the middleware. Unwrap
// keeps http.ResponseController (and so the streaming handler's Flush)
// working through the wrapper.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(p)
}

func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// handleSubmit: POST /v1/jobs — body is a scenario JSON document, the
// same schema graphite-sweep -scenario reads from a file.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	sc, err := parseScenarioBody(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, err := s.Submit(sc)
	if err != nil {
		if errors.Is(err, errDraining) {
			writeErr(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusCreated, s.status(j))
}

func parseScenarioBody(r *http.Request) (*scenario.Scenario, error) {
	defer io.Copy(io.Discard, r.Body)
	return scenario.Parse(http.MaxBytesReader(nil, r.Body, maxScenarioBytes))
}

// handleList: GET /v1/jobs — every job, submission order.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.JobsInOrder()
	list := JobList{Jobs: make([]JobStatus, 0, len(jobs))}
	for _, j := range jobs {
		list.Jobs = append(list.Jobs, s.status(j))
	}
	writeJSON(w, http.StatusOK, list)
}

// handleStatus: GET /v1/jobs/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.status(j))
}

// handleRecords: GET /v1/jobs/{id}/records[?from=N] — the job's merged
// JSONL, streamed incrementally in run-index order. The response stays
// open until the job settles; ?from=N skips the first N records, so a
// client that read N lines before losing its connection resumes exactly
// where it stopped (the lines are immutable once flushed).
func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeErr(w, http.StatusBadRequest, "from must be a non-negative integer, got %q", q)
			return
		}
		from = v
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	rc.Flush() // commit the header before the first (possibly slow) record
	for i := from; ; i++ {
		line, ok := j.log.wait(r.Context(), i)
		if !ok {
			return
		}
		if _, err := w.Write(line); err != nil {
			return
		}
		if err := rc.Flush(); err != nil {
			return
		}
		s.metrics.recordsServed.Add(1)
	}
}

// handleCancel: DELETE /v1/jobs/{id}. Cancellation is asynchronous for a
// running job: the response carries the status snapshot at cancel time;
// the job settles to failed once its in-flight work unwinds.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		if errors.Is(err, errNoJob) {
			writeErr(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
			return
		}
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.status(j))
}

// handleHealthz: GET /healthz — 200 "ok" while serving, 503 "draining"
// once shutdown has begun (so load balancers rotate the daemon out while
// in-flight jobs finish).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	io.WriteString(w, "ok\n")
}

// handleMetrics: GET /metrics — Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var cs cacheStats
	if s.opt.Cache != nil {
		st := s.opt.Cache.Stats()
		cs = cacheStats{
			hits: st.Hits, misses: st.Misses, evictions: st.Evictions,
			entries: int64(st.Entries), bytes: st.Bytes,
			diskEntries: int64(st.DiskEntries), diskLive: st.DiskLive,
		}
	}
	s.mu.Lock()
	gauges := s.gaugesLocked()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.render(w, gauges, s.workers, cs)
}

// status snapshots one job into its wire form.
func (s *Server) status(j *Job) JobStatus {
	s.mu.Lock()
	st := JobStatus{
		ID:               j.id,
		State:            j.state,
		Scenario:         j.name,
		RunsTotal:        j.runsTotal,
		RecordsAvailable: j.log.len(),
		Error:            j.errMsg,
		CreatedAt:        j.created.UTC().Format(time.RFC3339Nano),
	}
	if !j.started.IsZero() {
		st.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
	}
	coord := j.coord
	if j.state == StateRunning && coord != nil {
		st.DispatchAddr = coord.Addr()
	}
	s.mu.Unlock()
	if coord != nil {
		st.RunsDone, _ = coord.Progress()
		st.RunsExecuted = coord.Executed()
		st.RunsCached = coord.Cached()
	}
	return st
}
