// Package service implements graphited, the long-lived
// simulation-as-a-service daemon: an HTTP front end over the distributed
// sweep machinery of internal/scenario/dispatch. Clients POST a scenario
// (the same JSON schema graphite-sweep -scenario reads) to /v1/jobs and
// get back a job ID; the daemon expands the scenario, runs it through a
// dispatch coordinator backed by its worker fleet and shared record
// cache, and streams the merged JSONL back from /v1/jobs/{id}/records —
// incrementally, in run-index order, resumable via ?from=.
//
// The daemon is deliberately a thin shell over existing, separately
// tested layers. A job IS a dispatch.Coordinator: queueing, in-flight
// requeue on worker death, run-index-ordered merging, verification
// backfill, and record-cache adoption all come from PR 3/PR 6 machinery
// unchanged, which is what makes a daemon-served sweep byte-identical to
// graphite-sweep output up to the wall-clock fields (DESIGN.md §15).
//
// Job lifecycle: queued → running → done | failed. A job fails when any
// run ends with an error — including cancellation, which stamps every
// unfinished run with an error record via Coordinator.Cancel. Results
// live in memory for the daemon's lifetime; durability across restarts
// is the record cache's job (resubmitting a scenario to a restarted
// daemon with the same -cache directory replays it without simulating).
package service

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/recordcache"
	"repro/internal/scenario"
	"repro/internal/scenario/dispatch"
)

// defaultWorkers sizes the in-process fleet when Options.Workers is 0.
func defaultWorkers() int { return runtime.NumCPU() }

// Job lifecycle states, as reported by the v1 API.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Options configures a Server.
type Options struct {
	// Workers is the in-process fleet: how many worker slots attach to
	// each running job's coordinator (0 = one per host CPU). Negative
	// means no in-process workers — jobs are served only by external
	// `graphite-sweep -worker` processes attached to the job's advertised
	// dispatch_addr.
	Workers int
	// MaxActive bounds concurrently running jobs (0 = 1). Jobs beyond it
	// wait in submission order. The default of one running job at a time
	// keeps wall-clock honesty for serial scenarios and stops two sweeps
	// from fighting over the host.
	MaxActive int
	// Cache, when non-nil, is the record cache shared by every job: each
	// job's coordinator consults it before dispatching and feeds verified
	// records back. The Server does not own it — the caller closes it
	// after Close.
	Cache *recordcache.Cache
	// Progress, when non-nil, receives the coordinators' per-run progress
	// lines (the daemon's stderr, typically).
	Progress io.Writer
	// Log, when non-nil, receives one structured access-log line per
	// request — non-2xx always, 2xx only when Verbose is set.
	Log     io.Writer
	Verbose bool
	// now overrides time.Now in tests.
	now func() time.Time
}

// Server owns the job table, the scheduler, and the metrics. It serves
// HTTP via Handler; the caller owns the net listener and process
// lifecycle (cmd/graphited).
type Server struct {
	opt     Options
	workers int // resolved in-process slots (0 = external only)
	metrics *metrics

	mu       sync.Mutex
	cond     *sync.Cond // signaled on any job state change
	jobs     map[string]*Job
	order    []*Job // submission order, for listing and scheduling
	nextID   int
	active   int
	draining bool
}

// Job is one submitted sweep. Fields past the construction block are
// guarded by the Server's mutex; the record log has its own lock.
type Job struct {
	id     string
	name   string // scenario name, for listings
	sc     *scenario.Scenario
	specs  []scenario.RunSpec
	log    *recordLog
	coord  *dispatch.Coordinator // nil until running (and after a failed start)
	state  string
	errMsg string
	// canceled marks a DELETE observed before the coordinator existed, so
	// a cancel racing the scheduler still lands.
	canceled  bool
	created   time.Time
	started   time.Time
	finished  time.Time
	runsTotal int
}

// New builds a Server. Call Close (or DrainAndStop) before discarding it.
func New(opt Options) *Server {
	if opt.now == nil {
		opt.now = time.Now
	}
	s := &Server{
		opt:     opt,
		workers: resolveWorkers(opt.Workers),
		metrics: newMetrics(),
		jobs:    make(map[string]*Job),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func resolveWorkers(n int) int {
	if n < 0 {
		return 0
	}
	if n == 0 {
		return defaultWorkers()
	}
	return n
}

func (s *Server) maxActive() int {
	if s.opt.MaxActive <= 0 {
		return 1
	}
	return s.opt.MaxActive
}

// Workers reports the resolved in-process fleet size (0 when the daemon
// relies on external workers).
func (s *Server) Workers() int { return s.workers }

// Submit validates and enqueues one scenario, returning the new job. The
// scenario is expanded eagerly so a bad sweep definition fails the POST
// with a diagnostic instead of failing a queued job minutes later.
func (s *Server) Submit(sc *scenario.Scenario) (*Job, error) {
	specs, err := sc.Expand()
	if err != nil {
		return nil, err
	}
	// Multi-process runs fork worker OS processes that can be killed out
	// from under the daemon (OOM, operator, machine trouble). Unless the
	// scenario chose its own policy, arm the default one: checkpoint
	// periodically and recover a lost worker by replay, so the loss costs
	// wall-clock time instead of error-stamping the job's records.
	for i := range specs {
		if specs[i].Processes > 1 && specs[i].Checkpoint == nil {
			specs[i].Checkpoint = defaultCheckpoint
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, errDraining
	}
	s.nextID++
	j := &Job{
		id:        fmt.Sprintf("j%d", s.nextID),
		name:      sc.Name,
		sc:        sc,
		specs:     specs,
		state:     StateQueued,
		created:   s.opt.now(),
		runsTotal: len(specs),
	}
	j.log = newRecordLog(func() { s.metrics.runsCompleted.Add(1) })
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	s.metrics.jobsSubmitted.Add(1)
	s.scheduleLocked()
	return j, nil
}

var errDraining = fmt.Errorf("service: draining, not accepting jobs")

// defaultCheckpoint is the worker-loss policy applied to multi-process
// runs whose scenario set none: checkpoint every 8 barrier epochs into a
// per-run temporary directory and re-fork up to twice. Configurations
// without LaxBarrier epochs simply never checkpoint, but the re-fork
// recovery still applies.
var defaultCheckpoint = &scenario.CheckpointPolicy{Every: 8, MaxRestarts: 2}

// scheduleLocked starts queued jobs while slots are free. Called with mu
// held on every event that can open a slot or add work.
func (s *Server) scheduleLocked() {
	for s.active < s.maxActive() {
		var next *Job
		for _, j := range s.order {
			if j.state == StateQueued {
				next = j
				break
			}
		}
		if next == nil {
			return
		}
		next.state = StateRunning
		next.started = s.opt.now()
		s.active++
		go s.runJob(next)
	}
}

// runJob drives one job start-to-finish: build the coordinator, attach
// the in-process fleet, wait, settle. It owns the job's running→terminal
// transition.
func (s *Server) runJob(j *Job) {
	opt := dispatch.Options{
		Addr:     "127.0.0.1:0",
		Serial:   scenario.NeedsSerial(j.sc, j.specs),
		Verify:   j.sc.Verify,
		Out:      j.log,
		Progress: s.opt.Progress,
	}
	if s.opt.Cache != nil {
		opt.Cache = s.opt.Cache
	}
	coord, err := dispatch.NewCoordinator(j.specs, opt)
	if err != nil {
		s.settle(j, nil, err)
		return
	}
	s.mu.Lock()
	j.coord = coord
	canceled := j.canceled
	s.mu.Unlock()
	if canceled {
		coord.Cancel(cancelReason)
	}
	// Attach the fleet only if the cache left anything to execute: a
	// fully warm job completes before a worker could even say hello, and
	// the worker's dial-after-close error would be noise.
	if done, total := coord.Progress(); done < total && s.workers > 0 {
		go func() {
			err := dispatch.Work(coord.Addr(), dispatch.WorkerOptions{Parallel: s.workers})
			if err != nil && s.opt.Progress != nil {
				// Expected on Cancel (connections are closed under the
				// workers); worth a line, never fatal — the coordinator's
				// requeue discipline owns correctness.
				fmt.Fprintf(s.opt.Progress, "job %s: worker fleet: %v\n", j.id, err)
			}
		}()
	}
	_, err = coord.Wait()
	s.settle(j, coord, err)
}

// cancelReason is the error stamped into every run a cancellation
// abandons — the service analogue of the coordinator's abandonment
// records.
const cancelReason = "dispatch: job canceled"

// settle moves a job to its terminal state and frees its scheduler slot.
func (s *Server) settle(j *Job, coord *dispatch.Coordinator, err error) {
	j.log.close()
	s.mu.Lock()
	j.coord = coord
	j.finished = s.opt.now()
	if err != nil {
		j.state = StateFailed
		j.errMsg = err.Error()
	} else {
		j.state = StateDone
	}
	s.active--
	s.scheduleLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Cancel cancels a job. Queued jobs fail immediately; running jobs have
// their coordinator canceled (unfinished runs get error records, worker
// connections close, the job settles as failed once Wait returns).
// Canceling a terminal job is an error.
func (s *Server) Cancel(id string) (*Job, error) {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil {
		s.mu.Unlock()
		return nil, errNoJob
	}
	switch j.state {
	case StateQueued:
		j.canceled = true
		j.state = StateFailed
		j.errMsg = cancelReason
		j.finished = s.opt.now()
		j.log.close()
		s.cond.Broadcast()
		s.mu.Unlock()
		return j, nil
	case StateRunning:
		j.canceled = true
		coord := j.coord
		s.mu.Unlock()
		if coord != nil {
			// Outside the lock: Cancel closes worker connections.
			coord.Cancel(cancelReason)
		}
		// The runJob goroutine settles the job when Wait returns.
		return j, nil
	default:
		s.mu.Unlock()
		return nil, fmt.Errorf("service: job %s already %s", id, j.state)
	}
}

var errNoJob = fmt.Errorf("service: no such job")

// Job returns a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// JobsInOrder returns every job in submission order.
func (s *Server) JobsInOrder() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, len(s.order))
	copy(out, s.order)
	return out
}

// BeginDrain stops the daemon accepting new jobs: POST /v1/jobs returns
// 503 and /healthz flips to 503 so load balancers rotate it out. Already
// accepted jobs keep running.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// DrainAndStop is the shutdown path: stop accepting jobs, give already
// accepted ones up to timeout to finish, then cancel whatever is left
// and wait for every job to settle. It returns the number of jobs that
// had to be canceled.
func (s *Server) DrainAndStop(timeout time.Duration) int {
	s.BeginDrain()
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() { s.cond.Broadcast() })
	defer timer.Stop()

	s.mu.Lock()
	for s.pendingLocked() > 0 && time.Now().Before(deadline) {
		s.cond.Wait()
	}
	var cancel []string
	for _, j := range s.order {
		if j.state == StateQueued || j.state == StateRunning {
			cancel = append(cancel, j.id)
		}
	}
	s.mu.Unlock()

	for _, id := range cancel {
		s.Cancel(id) // racing a natural completion is fine: "already done" errors are the good case
	}
	s.mu.Lock()
	for s.pendingLocked() > 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
	return len(cancel)
}

// Close cancels everything immediately and waits for jobs to settle —
// the test-friendly shutdown.
func (s *Server) Close() { s.DrainAndStop(0) }

func (s *Server) pendingLocked() int {
	n := 0
	for _, j := range s.order {
		if j.state == StateQueued || j.state == StateRunning {
			n++
		}
	}
	return n
}

// gaugesLocked snapshots the jobs-by-state counts for /metrics.
func (s *Server) gaugesLocked() jobGauges {
	var g jobGauges
	for _, j := range s.order {
		switch j.state {
		case StateQueued:
			g.queued++
		case StateRunning:
			g.running++
		case StateDone:
			g.done++
		case StateFailed:
			g.failed++
		}
	}
	return g
}
