// Package client is the thin Go client of graphited's v1 API (see
// docs/API.md). It is deliberately dumb about records: StreamRecords
// copies the daemon's JSONL lines through verbatim, never decoding and
// re-encoding them, because byte-identity with graphite-sweep output is
// the service's contract and a round trip through json.Unmarshal would
// destroy it. graphite-sweep -submit is its only in-repo consumer, and
// doubles as its usage example.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client talks to one graphited daemon. The zero value is not usable;
// call New.
type Client struct {
	base string
	http *http.Client
}

// New builds a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:9640"). The underlying http.Client has no overall
// timeout — record streams are open-ended — so bound calls with their
// contexts.
func New(baseURL string) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: base url %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: base url %q: want http:// or https://", baseURL)
	}
	return &Client{base: strings.TrimRight(u.String(), "/"), http: &http.Client{}}, nil
}

// JobStatus mirrors the daemon's job status document (docs/API.md).
//
//graphite:wire
type JobStatus struct {
	ID               string `json:"id"`
	State            string `json:"state"`
	Scenario         string `json:"scenario"`
	RunsTotal        int    `json:"runs_total"`
	RunsDone         int    `json:"runs_done"`
	RunsExecuted     int    `json:"runs_executed"`
	RunsCached       int    `json:"runs_cached"`
	RecordsAvailable int    `json:"records_available"`
	DispatchAddr     string `json:"dispatch_addr,omitempty"`
	Error            string `json:"error,omitempty"`
	CreatedAt        string `json:"created_at"`
	StartedAt        string `json:"started_at,omitempty"`
	FinishedAt       string `json:"finished_at,omitempty"`
}

// Terminal reports whether the job has settled (done or failed).
func (s *JobStatus) Terminal() bool { return s.State == "done" || s.State == "failed" }

// APIError is a non-2xx response, carrying the daemon's diagnostic.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("graphited: %s (HTTP %d)", e.Message, e.Status)
}

// Submit posts a scenario document (raw JSON, the graphite-sweep
// -scenario file format) and returns the created job's status.
func (c *Client) Submit(ctx context.Context, scenarioJSON []byte) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", scenarioJSON, &st)
	return st, err
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Jobs lists every job the daemon knows, in submission order.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &list)
	return list.Jobs, err
}

// Cancel cancels a job. The returned status is the snapshot at cancel
// time; a running job settles to failed asynchronously.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Health checks /healthz; nil means the daemon answered 200.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// streamRetries bounds StreamRecords' transparent reconnects: after
// this many consecutive connection attempts that deliver zero new
// records, the last transport error surfaces to the caller. Any
// received record resets the budget — a daemon that keeps making
// progress is retried indefinitely.
const streamRetries = 5

// errSink marks a failure of the caller's writer, as opposed to the
// daemon connection. Reconnecting cannot help — the same writer would
// fail again — so StreamRecords surfaces these immediately.
var errSink = errors.New("record sink write failed")

// StreamRecords copies the job's JSONL records from index from onward
// into w, line-verbatim, blocking until the daemon ends the stream (the
// job settled and every line was delivered). Dropped connections are
// retried transparently with capped exponential backoff, resuming at
// ?from=<lines already written> — the service's in-order flush makes
// the line index a stable cursor, so each record is written exactly
// once. Only transport faults are retried: API errors (the job does
// not exist, the daemon rejected the request) and failures of w
// surface immediately, as does ctx cancellation. It returns the number
// of complete lines written; partial lines are never written.
func (c *Client) StreamRecords(ctx context.Context, id string, from int, w io.Writer) (n int, err error) {
	backoff := 100 * time.Millisecond
	const maxBackoff = 5 * time.Second
	for dry := 0; ; {
		m, err := c.streamOnce(ctx, id, from+n, w)
		n += m
		if err == nil {
			return n, nil
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) || errors.Is(err, errSink) || ctx.Err() != nil {
			return n, err
		}
		if m > 0 {
			dry, backoff = 0, 100*time.Millisecond
		} else if dry++; dry >= streamRetries {
			return n, err
		}
		select {
		case <-ctx.Done():
			return n, fmt.Errorf("client: record stream: %w", ctx.Err())
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// streamOnce is one connection's worth of StreamRecords: it opens the
// record stream at index from and copies lines into w until the daemon
// ends the stream or the connection drops.
func (c *Client) streamOnce(ctx context.Context, id string, from int, w io.Writer) (n int, err error) {
	path := "/v1/jobs/" + url.PathEscape(id) + "/records"
	if from > 0 {
		path += "?from=" + strconv.Itoa(from)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return 0, fmt.Errorf("client: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 64<<20) // records can embed per-tile stats
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if _, err := w.Write(line); err != nil {
			return n, fmt.Errorf("client: %w: %v", errSink, err)
		}
		if _, err := w.Write([]byte("\n")); err != nil {
			return n, fmt.Errorf("client: %w: %v", errSink, err)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, fmt.Errorf("client: record stream: %w", err)
	}
	return n, nil
}

// WaitTerminal polls the job until it settles (or ctx ends), returning
// the terminal status.
func (c *Client) WaitTerminal(ctx context.Context, id string) (JobStatus, error) {
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// do issues one JSON request/response exchange.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode %s %s response: %w", method, path, err)
	}
	return nil
}

// decodeError turns a non-2xx response into an *APIError, preserving the
// daemon's {"error": ...} diagnostic when present.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return &APIError{Status: resp.StatusCode, Message: e.Error}
	}
	return &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(body))}
}
