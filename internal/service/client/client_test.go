package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// flakyRecords serves /v1/jobs/{id}/records with a configurable number
// of connections that are severed mid-stream, then one clean pass. It
// records the ?from cursor of every connection so tests can assert the
// client resumed where it left off.
type flakyRecords struct {
	mu       sync.Mutex
	lines    []string
	dropAt   int // sever the connection after this many lines...
	drops    int // ...on the first this-many connections
	attempts int
	froms    []int
}

func (f *flakyRecords) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !strings.HasSuffix(r.URL.Path, "/records") {
		http.NotFound(w, r)
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			w.WriteHeader(http.StatusBadRequest)
			fmt.Fprintf(w, `{"error":"from must be a non-negative integer, got %q"}`, q)
			return
		}
		from = v
	}
	f.mu.Lock()
	f.attempts++
	sever := f.attempts <= f.drops
	f.froms = append(f.froms, from)
	lines := f.lines
	f.mu.Unlock()

	sent := 0
	for i := from; i < len(lines); i++ {
		if sever && sent == f.dropAt {
			// Sever without a graceful close: the client sees an
			// unexpected EOF / reset, the same signature as a
			// crashed or restarted daemon.
			hj, ok := w.(http.Hijacker)
			if !ok {
				panic("client_test: response writer is not hijackable")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				panic(err)
			}
			conn.Close()
			return
		}
		fmt.Fprintf(w, "%s\n", lines[i])
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		sent++
	}
}

func testLines(n int) []string {
	lines := make([]string, n)
	for i := range lines {
		lines[i] = fmt.Sprintf(`{"seq":%d,"checksum":"%016x"}`, i, i*7)
	}
	return lines
}

// TestStreamRecordsResumesAfterDrop drops the connection twice
// mid-stream and asserts the client transparently reconnects with the
// line cursor advanced, delivering every record exactly once.
func TestStreamRecordsResumesAfterDrop(t *testing.T) {
	srv := &flakyRecords{lines: testLines(10), dropAt: 3, drops: 2}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := c.StreamRecords(context.Background(), "job-1", 0, &buf)
	if err != nil {
		t.Fatalf("StreamRecords: %v", err)
	}
	if n != 10 {
		t.Fatalf("StreamRecords reported %d lines, want 10", n)
	}
	got := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	want := testLines(10)
	if len(got) != len(want) {
		t.Fatalf("received %d lines, want %d:\n%s", len(got), len(want), buf.String())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("line %d: got %q, want %q", i, got[i], want[i])
		}
	}
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if srv.attempts != 3 {
		t.Fatalf("server saw %d connections, want 3 (two drops + one clean)", srv.attempts)
	}
	// Each reconnect must resume exactly where the previous connection
	// stopped: 3 lines per severed attempt.
	if wantFroms := []int{0, 3, 6}; !equalInts(srv.froms, wantFroms) {
		t.Fatalf("resume cursors %v, want %v", srv.froms, wantFroms)
	}
}

// TestStreamRecordsHonorsFromOffset checks the caller-supplied starting
// cursor composes with reconnect resume.
func TestStreamRecordsHonorsFromOffset(t *testing.T) {
	srv := &flakyRecords{lines: testLines(8), dropAt: 2, drops: 1}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := c.StreamRecords(context.Background(), "job-1", 5, &buf)
	if err != nil {
		t.Fatalf("StreamRecords: %v", err)
	}
	if n != 3 {
		t.Fatalf("StreamRecords reported %d lines, want 3", n)
	}
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if wantFroms := []int{5, 7}; !equalInts(srv.froms, wantFroms) {
		t.Fatalf("resume cursors %v, want %v", srv.froms, wantFroms)
	}
}

// TestStreamRecordsAPIErrorNotRetried asserts a daemon-side rejection
// (e.g. unknown job) surfaces immediately instead of being retried.
func TestStreamRecordsAPIErrorNotRetried(t *testing.T) {
	var attempts int
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		attempts++
		mu.Unlock()
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":"no such job"}`)
	}))
	defer ts.Close()

	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, err = c.StreamRecords(context.Background(), "nope", 0, &buf)
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *APIError, got %v", err)
	}
	if apiErr.Status != http.StatusNotFound {
		t.Fatalf("want HTTP 404, got %d", apiErr.Status)
	}
	mu.Lock()
	defer mu.Unlock()
	if attempts != 1 {
		t.Fatalf("server saw %d attempts, want 1 (API errors must not be retried)", attempts)
	}
}

// TestStreamRecordsGivesUpWhenDry asserts the retry budget is bounded:
// a daemon that never delivers a record stops being retried after
// streamRetries consecutive dry connections.
func TestStreamRecordsGivesUpWhenDry(t *testing.T) {
	srv := &flakyRecords{lines: testLines(4), dropAt: 0, drops: 1 << 20}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	start := time.Now()
	n, err := c.StreamRecords(context.Background(), "job-1", 0, &buf)
	if err == nil {
		t.Fatal("want error after exhausting retries, got nil")
	}
	if n != 0 {
		t.Fatalf("want 0 lines, got %d", n)
	}
	srv.mu.Lock()
	attempts := srv.attempts
	srv.mu.Unlock()
	if attempts != streamRetries {
		t.Fatalf("server saw %d attempts, want %d", attempts, streamRetries)
	}
	// Backoff schedule 100+200+400+800ms ≈ 1.5s; well under a minute
	// even on a loaded host.
	if elapsed := time.Since(start); elapsed > time.Minute {
		t.Fatalf("retries took %v, backoff cap is not working", elapsed)
	}
}

// TestStreamRecordsCtxCancelStopsRetry asserts cancellation during the
// backoff sleep surfaces promptly instead of burning the retry budget.
func TestStreamRecordsCtxCancelStopsRetry(t *testing.T) {
	srv := &flakyRecords{lines: testLines(4), dropAt: 0, drops: 1 << 20}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	var buf bytes.Buffer
	_, err = c.StreamRecords(ctx, "job-1", 0, &buf)
	if err == nil {
		t.Fatal("want error after ctx cancel, got nil")
	}
	if !errors.Is(err, context.Canceled) && !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("want context cancellation error, got %v", err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
