package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/recordcache"
	"repro/internal/scenario"
	"repro/internal/scenario/dispatch"
	"repro/internal/service/client"
)

// testScenarioJSON is the same shape the dispatch tests use: a small
// verified sweep, single-threaded so records are byte-deterministic.
const testScenarioJSON = `{
  "name": "service-test",
  "preset": "small-cache",
  "size": "quick",
  "threads": 1,
  "seed": 1,
  "verify": true,
  "base": { "Tiles": 4 },
  "grids": [
    {
      "axes": [
        { "field": "workload", "values": ["radix", "fft"] },
        { "field": "line_size", "values": [32, 64] }
      ]
    }
  ]
}`

// replayRe strips the fields a daemon-served record may differ in from a
// locally executed one: wall clocks and the cached flag.
var replayRe = regexp.MustCompile(`,"(wall_sec":[0-9eE.+-]+|proc_wall_sec":\[[^]]*\]|cached":true)`)

func stripReplay(b []byte) string { return replayRe.ReplaceAllString(string(b), "") }

// newTestService spins up a Server (with cleanup) and an httptest front
// end, returning a client bound to it.
func newTestService(t *testing.T, opt Options) (*Server, *client.Client) {
	t.Helper()
	svc := New(opt)
	hs := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		svc.Close()
		hs.Close()
	})
	cl, err := client.New(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	return svc, cl
}

// referenceJSONL executes the test scenario locally and returns its
// stripped JSONL — the byte-identity baseline for daemon-served output.
func referenceJSONL(t *testing.T) string {
	t.Helper()
	sc, err := scenario.Parse(strings.NewReader(testScenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	records, err := scenario.Run(sc, scenario.Options{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := scenario.WriteJSONL(&buf, records); err != nil {
		t.Fatal(err)
	}
	return stripReplay(buf.Bytes())
}

// TestJobLifecycle is the service's core contract: submit → stream →
// resubmit-with-warm-cache. The daemon-served records must be
// byte-identical to local execution (up to wall clocks and the cached
// flag), the warm resubmission must simulate nothing, and /metrics must
// report the warm job's cache hits.
func TestJobLifecycle(t *testing.T) {
	cache, err := recordcache.Open(recordcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	svc, cl := newTestService(t, Options{Workers: 2, Cache: cache})
	ctx := context.Background()
	want := referenceJSONL(t)

	// Cold submission: everything executes.
	st, err := cl.Submit(ctx, []byte(testScenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("fresh job in state %q", st.State)
	}
	if st.RunsTotal != 4 {
		t.Fatalf("runs_total = %d, want 4", st.RunsTotal)
	}
	var cold bytes.Buffer
	if n, err := cl.StreamRecords(ctx, st.ID, 0, &cold); err != nil || n != 4 {
		t.Fatalf("cold stream: %d lines, %v", n, err)
	}
	if got := stripReplay(cold.Bytes()); got != want {
		t.Fatalf("daemon-served records differ from local execution:\n got: %s\nwant: %s", got, want)
	}
	final, err := cl.WaitTerminal(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.RunsExecuted != 4 || final.RunsCached != 0 {
		t.Fatalf("cold job settled as %+v", final)
	}

	// Warm resubmission: the shared cache serves every run, nothing is
	// simulated.
	st2, err := cl.Submit(ctx, []byte(testScenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	var warm bytes.Buffer
	if n, err := cl.StreamRecords(ctx, st2.ID, 0, &warm); err != nil || n != 4 {
		t.Fatalf("warm stream: %d lines, %v", n, err)
	}
	if got := stripReplay(warm.Bytes()); got != want {
		t.Fatalf("warm records differ from local execution:\n got: %s\nwant: %s", got, want)
	}
	for _, line := range bytes.Split(bytes.TrimSpace(warm.Bytes()), []byte("\n")) {
		if !bytes.Contains(line, []byte(`"cached":true`)) {
			t.Fatalf("warm record not flagged cached: %s", line)
		}
	}
	final2, err := cl.WaitTerminal(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final2.State != StateDone || final2.RunsExecuted != 0 || final2.RunsCached != 4 {
		t.Fatalf("warm job settled as %+v", final2)
	}

	// ?from= resumes mid-stream: the suffix matches the cold read.
	var tail bytes.Buffer
	if n, err := cl.StreamRecords(ctx, st.ID, 2, &tail); err != nil || n != 2 {
		t.Fatalf("resumed stream: %d lines, %v", n, err)
	}
	coldLines := bytes.SplitAfter(cold.Bytes(), []byte("\n"))
	if want := string(coldLines[2]) + string(coldLines[3]); tail.String() != want {
		t.Fatalf("?from=2 suffix mismatch:\n got: %q\nwant: %q", tail.String(), want)
	}

	// Listing shows both jobs in submission order.
	jobs, err := cl.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || jobs[0].ID != st.ID || jobs[1].ID != st2.ID {
		t.Fatalf("job list %+v", jobs)
	}

	// Canceling a settled job is a conflict.
	if _, err := cl.Cancel(ctx, st.ID); err == nil {
		t.Fatal("cancel of a done job succeeded")
	} else {
		var ae *client.APIError
		if !errors.As(err, &ae) || ae.Status != http.StatusConflict {
			t.Fatalf("cancel of a done job: %v, want HTTP 409", err)
		}
	}

	// /metrics reports the warm job's cache hits and the fleet size.
	body := httpGet(t, svc, "/metrics")
	for _, want := range []string{
		"graphited_cache_hits_total 4",
		"graphited_jobs_submitted_total 2",
		"graphited_runs_completed_total 8",
		"graphited_jobs{state=\"done\"} 2",
		"graphited_workers 2",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	if !strings.Contains(httpGet(t, svc, "/healthz"), "ok") {
		t.Fatal("healthz not ok")
	}
}

// httpGet fetches a path directly off the handler (no live listener
// needed for non-streaming routes).
func httpGet(t *testing.T, svc *Server, path string) string {
	t.Helper()
	rec := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec.Body.String()
}

// TestCancelRunningJob: with no fleet attached, a submitted job sits
// running forever; DELETE must settle it as failed, stamp every run with
// the cancel error, and end open record streams.
func TestCancelRunningJob(t *testing.T) {
	_, cl := newTestService(t, Options{Workers: -1})
	ctx := context.Background()
	st, err := cl.Submit(ctx, []byte(testScenarioJSON))
	if err != nil {
		t.Fatal(err)
	}

	// Open the stream before canceling: cancellation must release it.
	streamed := make(chan struct {
		n   int
		err error
	}, 1)
	var buf bytes.Buffer
	go func() {
		n, err := cl.StreamRecords(ctx, st.ID, 0, &buf)
		streamed <- struct {
			n   int
			err error
		}{n, err}
	}()

	if _, err := cl.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	final, err := cl.WaitTerminal(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateFailed || !strings.Contains(final.Error, "canceled") {
		t.Fatalf("canceled job settled as %+v", final)
	}
	res := <-streamed
	if res.err != nil || res.n != 4 {
		t.Fatalf("stream after cancel: %d lines, %v", res.n, res.err)
	}
	for _, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var rec scenario.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("canceled stream line %q: %v", line, err)
		}
		if !strings.Contains(rec.Error, "canceled") {
			t.Fatalf("canceled run %d carries error %q", rec.Run, rec.Error)
		}
	}
}

// TestCancelQueuedJob: a job canceled while waiting for a slot never
// runs and serves an empty record stream.
func TestCancelQueuedJob(t *testing.T) {
	_, cl := newTestService(t, Options{Workers: -1, MaxActive: 1})
	ctx := context.Background()
	// First job occupies the only slot (no workers — it never finishes).
	blocker, err := cl.Submit(ctx, []byte(testScenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := cl.Submit(ctx, []byte(testScenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	if st, err := cl.Job(ctx, queued.ID); err != nil || st.State != StateQueued {
		t.Fatalf("second job state %v, %v", st.State, err)
	}
	if _, err := cl.Cancel(ctx, queued.ID); err != nil {
		t.Fatal(err)
	}
	final, err := cl.WaitTerminal(ctx, queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateFailed || final.RunsDone != 0 {
		t.Fatalf("canceled queued job settled as %+v", final)
	}
	var buf bytes.Buffer
	if n, err := cl.StreamRecords(ctx, queued.ID, 0, &buf); err != nil || n != 0 {
		t.Fatalf("canceled queued job streamed %d lines, %v", n, err)
	}
	if _, err := cl.Cancel(ctx, blocker.ID); err != nil {
		t.Fatal(err)
	}
}

// TestWorkerDeathRequeue: an external worker that takes a spec and dies
// must not lose the run — the coordinator requeues it and a healthy
// worker finishes the job. This is PR 3's requeue contract observed
// through the service's front door, using the same counting-fake-worker
// technique as the dispatch tests (the dispatch wire protocol is spoken
// inline here: length-prefixed JSON frames).
func TestWorkerDeathRequeue(t *testing.T) {
	_, cl := newTestService(t, Options{Workers: -1})
	ctx := context.Background()
	st, err := cl.Submit(ctx, []byte(testScenarioJSON))
	if err != nil {
		t.Fatal(err)
	}

	// The job advertises its coordinator for external workers.
	var addr string
	for deadline := time.Now().Add(5 * time.Second); ; {
		js, err := cl.Job(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if js.DispatchAddr != "" {
			addr = js.DispatchAddr
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never advertised a dispatch address")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Fake worker: hello, welcome, take one spec, die without replying.
	taken := takeSpecAndDie(t, addr)
	if taken != 1 {
		t.Fatalf("fake worker took %d specs, want 1", taken)
	}

	// A healthy worker completes the sweep — including the requeued run.
	done := make(chan error, 1)
	go func() { done <- dispatch.Work(addr, dispatch.WorkerOptions{Parallel: 2, DialTimeout: 5 * time.Second}) }()
	final, err := cl.WaitTerminal(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if werr := <-done; werr != nil {
		t.Fatalf("healthy worker: %v", werr)
	}
	if final.State != StateDone || final.RunsExecuted != final.RunsTotal {
		t.Fatalf("job settled as %+v, want done with every run executed", final)
	}
	var buf bytes.Buffer
	if n, err := cl.StreamRecords(ctx, st.ID, 0, &buf); err != nil || n != final.RunsTotal {
		t.Fatalf("stream: %d lines, %v", n, err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"error"`)) {
		t.Fatalf("worker death leaked an error record: %s", buf.Bytes())
	}
}

// takeSpecAndDie speaks just enough of the dispatch protocol to claim
// one spec and vanish: hello → welcome → spec → close.
func takeSpecAndDie(t *testing.T, addr string) int {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	writeFrame(t, conn, map[string]any{"type": "hello", "proto": 1, "primary": true})
	r := bufio.NewReader(conn)
	if m := readFrame(t, r); m["type"] != "welcome" {
		t.Fatalf("expected welcome, got %v", m)
	}
	taken := 0
	if m := readFrame(t, r); m["type"] == "spec" {
		taken++
	}
	return taken
}

func writeFrame(t *testing.T, conn net.Conn, m map[string]any) {
	t.Helper()
	payload, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
}

func readFrame(t *testing.T, r *bufio.Reader) map[string]any {
	t.Helper()
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, binary.LittleEndian.Uint32(hdr[:]))
	if _, err := io.ReadFull(r, payload); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(payload, &m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSubmitRejectsBadScenarios: validation failures surface on the POST
// with a diagnostic, not on a queued job later.
func TestSubmitRejectsBadScenarios(t *testing.T) {
	_, cl := newTestService(t, Options{Workers: -1})
	ctx := context.Background()
	for _, bad := range []string{
		`not json`,
		`{"name":"x","grids":[]}`,
		`{"name":"x","typo_field":1,"grids":[{"axes":[]}]}`,
		`{"name":"x","workload":"no-such-kernel","grids":[{}]}`,
	} {
		_, err := cl.Submit(ctx, []byte(bad))
		var ae *client.APIError
		if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
			t.Fatalf("submit(%q) = %v, want HTTP 400", bad, err)
		}
	}
	if _, err := cl.Job(ctx, "j999"); err == nil {
		t.Fatal("status of unknown job succeeded")
	}
}

// TestDrainRejectsNewJobs: after BeginDrain the daemon flips /healthz to
// 503 and refuses submissions, while status of existing jobs stays
// served.
func TestDrainRejectsNewJobs(t *testing.T) {
	svc, cl := newTestService(t, Options{Workers: -1})
	ctx := context.Background()
	st, err := cl.Submit(ctx, []byte(testScenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	svc.BeginDrain()
	if err := cl.Health(ctx); err == nil {
		t.Fatal("healthz still ok while draining")
	}
	_, err = cl.Submit(ctx, []byte(testScenarioJSON))
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %v, want HTTP 503", err)
	}
	if _, err := cl.Job(ctx, st.ID); err != nil {
		t.Fatalf("status while draining: %v", err)
	}
	// Close (via cleanup) cancels the worker-less job; make sure that
	// settles rather than hanging the test binary.
	svc.Close()
	if final, err := cl.Job(ctx, st.ID); err != nil || final.State != StateFailed {
		t.Fatalf("drained job settled as %+v, %v", final, err)
	}
}

// TestMethodNotAllowed: the method-qualified route table turns wrong
// methods into 405s, not 404s.
func TestMethodNotAllowed(t *testing.T) {
	svc, _ := newTestService(t, Options{Workers: -1})
	rec := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPut, "/v1/jobs", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("PUT /v1/jobs = %d, want 405", rec.Code)
	}
}
