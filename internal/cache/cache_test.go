package cache

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/config"
)

func testCfg(size, assoc, line int) config.CacheConfig {
	return config.CacheConfig{Enabled: true, Size: size, Assoc: assoc, LineSize: line, HitLatency: 3}
}

func TestLookupMissThenHit(t *testing.T) {
	c := New(testCfg(1024, 2, 64))
	if _, ok := c.Lookup(5); ok {
		t.Fatal("hit in empty cache")
	}
	data := bytes.Repeat([]byte{0xAB}, 64)
	c.Insert(5, Shared, data)
	ln, ok := c.Lookup(5)
	if !ok {
		t.Fatal("miss after insert")
	}
	if ln.State() != Shared || !bytes.Equal(ln.Data(), data) {
		t.Fatalf("bad line: state=%v", ln.State())
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("counters: hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestInsertCopiesData(t *testing.T) {
	c := New(testCfg(1024, 2, 64))
	data := make([]byte, 64)
	data[0] = 1
	c.Insert(1, Modified, data)
	data[0] = 99 // caller reuses its buffer
	if ln, ok := c.Peek(1); !ok || ln.Data()[0] != 1 {
		t.Fatal("cache aliased caller's buffer")
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, 64 B lines, 256 B total -> 2 sets. Lines 0,2,4 map to set 0.
	c := New(testCfg(256, 2, 64))
	zero := make([]byte, 64)
	c.Insert(0, Shared, zero)
	c.Insert(2, Shared, zero)
	c.Lookup(0) // make line 2 the LRU
	victim, evicted := c.Insert(4, Shared, zero)
	if !evicted {
		t.Fatal("no eviction from full set")
	}
	if victim.Addr != 2 {
		t.Fatalf("evicted line %d, want LRU line 2", victim.Addr)
	}
	if _, ok := c.Peek(0); !ok {
		t.Fatal("line 0 missing after eviction")
	}
	if _, ok := c.Peek(4); !ok {
		t.Fatal("line 4 missing after eviction")
	}
	if _, ok := c.Peek(2); ok {
		t.Fatal("evicted line 2 still resident")
	}
}

func TestInsertNeverDuplicatesLine(t *testing.T) {
	c := New(testCfg(256, 2, 64))
	zero := make([]byte, 64)
	// Fill slot 1 of set 0, leave slot 0 invalid, then re-insert line 2:
	// the existing copy must be upgraded, not duplicated into the empty slot.
	c.Insert(2, Shared, zero)
	c.Insert(0, Shared, zero)
	c.Invalidate(0)
	c.Insert(2, Modified, zero)
	count := 0
	c.ForEach(func(l Line) {
		if l.Addr() == 2 {
			count++
			if l.State() != Modified {
				t.Fatalf("upgrade lost: %v", l.State())
			}
		}
	})
	if count != 1 {
		t.Fatalf("line duplicated %d times", count)
	}
}

func TestUpgradePreservesDirtyAndMask(t *testing.T) {
	c := New(testCfg(256, 2, 64))
	zero := make([]byte, 64)
	c.Insert(2, Modified, zero)
	ln, _ := c.Peek(2)
	ln.SetDirty(true)
	ln.SetWriteMask(0b1010)
	c.Insert(2, Modified, zero) // refill in place
	ln, _ = c.Peek(2)
	if !ln.Dirty() || ln.WriteMask() != 0b1010 {
		t.Fatalf("in-place refill dropped dirty/mask: %v %b", ln.Dirty(), ln.WriteMask())
	}
}

func TestInvalidate(t *testing.T) {
	c := New(testCfg(256, 2, 64))
	data := bytes.Repeat([]byte{7}, 64)
	c.Insert(3, Modified, data)
	v, ok := c.Invalidate(3)
	if !ok || !bytes.Equal(v.Data, data) || v.State != Modified {
		t.Fatalf("invalidate returned %v %v", ok, v.State)
	}
	if _, ok := c.Peek(3); ok {
		t.Fatal("line still present")
	}
	if _, ok := c.Invalidate(3); ok {
		t.Fatal("double invalidate reported present")
	}
}

func TestDowngrade(t *testing.T) {
	c := New(testCfg(256, 2, 64))
	c.Insert(3, Modified, make([]byte, 64))
	ln, _ := c.Peek(3)
	ln.SetDirty(true)
	ln.SetWriteMask(5)
	got, ok := c.Downgrade(3)
	if !ok || got.State() != Shared || got.Dirty() || got.WriteMask() != 0 {
		t.Fatalf("downgrade: state=%v dirty=%v mask=%b ok=%v", got.State(), got.Dirty(), got.WriteMask(), ok)
	}
	if _, ok := c.Downgrade(99); ok {
		t.Fatal("downgraded absent line")
	}
}

func TestWritebackCounter(t *testing.T) {
	c := New(testCfg(128, 1, 64)) // direct-mapped, 2 sets
	c.Insert(0, Modified, make([]byte, 64))
	ln, _ := c.Peek(0)
	ln.SetDirty(true)
	_, evicted := c.Insert(2, Shared, make([]byte, 64)) // same set as line 0
	if !evicted {
		t.Fatal("expected eviction")
	}
	if c.Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Writebacks)
	}
}

func TestLineAddrConversion(t *testing.T) {
	c := New(testCfg(1024, 2, 64))
	if c.LineOf(0) != 0 || c.LineOf(63) != 0 || c.LineOf(64) != 1 {
		t.Fatal("LineOf wrong")
	}
	if c.Base(3) != 192 {
		t.Fatalf("Base(3) = %d", c.Base(3))
	}
	if c.LineBits() != 6 {
		t.Fatalf("LineBits = %d", c.LineBits())
	}
}

func TestOccupancyAndForEach(t *testing.T) {
	c := New(testCfg(1024, 2, 64))
	if c.Occupancy() != 0 {
		t.Fatal("empty cache occupied")
	}
	for i := LineAddr(0); i < 5; i++ {
		c.Insert(i, Shared, make([]byte, 64))
	}
	if c.Occupancy() != 5 {
		t.Fatalf("occupancy = %d", c.Occupancy())
	}
	seen := map[LineAddr]bool{}
	c.ForEach(func(l Line) { seen[l.Addr()] = true })
	if len(seen) != 5 {
		t.Fatalf("ForEach visited %d lines", len(seen))
	}
}

func TestReleaseRecyclesStorage(t *testing.T) {
	cfg := testCfg(1024, 2, 64)
	c := New(cfg)
	c.Insert(7, Modified, bytes.Repeat([]byte{0xEE}, 64))
	c.Release()
	// A fresh instance of the same geometry must start empty even if it
	// reuses the released arrays.
	c2 := New(cfg)
	if c2.Occupancy() != 0 {
		t.Fatalf("recycled cache not empty: occupancy=%d", c2.Occupancy())
	}
	if _, ok := c2.Peek(7); ok {
		t.Fatal("stale line visible after recycle")
	}
}

func TestWordMask(t *testing.T) {
	if m := WordMask(0, 8, 64); m != 1 {
		t.Fatalf("first word mask = %b", m)
	}
	if m := WordMask(0, 4, 64); m != 1 {
		t.Fatalf("sub-word mask = %b", m)
	}
	if m := WordMask(8, 8, 64); m != 2 {
		t.Fatalf("second word mask = %b", m)
	}
	if m := WordMask(4, 8, 64); m != 3 {
		t.Fatalf("straddling mask = %b", m)
	}
	if m := WordMask(0, 64, 64); m != 0xFF {
		t.Fatalf("full 64B line mask = %b", m)
	}
	if m := WordMask(0, 0, 64); m != 0 {
		t.Fatalf("empty mask = %b", m)
	}
	if m := WordMask(0, 1, 1024); m != ^uint64(0) {
		t.Fatal("oversize lines must saturate")
	}
	if m := WordMask(248, 8, 256); m != 1<<31 {
		t.Fatalf("256B line last word = %b", m)
	}
}

func TestCacheNeverExceedsCapacityQuick(t *testing.T) {
	c := New(testCfg(512, 2, 64)) // 8 lines max
	f := func(addrs []uint16) bool {
		for _, a := range addrs {
			c.Insert(LineAddr(a), Shared, make([]byte, 64))
		}
		return c.Occupancy() <= 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLookupAfterManyInsertsFindsLatestData(t *testing.T) {
	c := New(testCfg(512, 2, 64))
	f := func(addr uint8, v1, v2 byte) bool {
		l := LineAddr(addr)
		d := make([]byte, 64)
		d[0] = v1
		c.Insert(l, Modified, d)
		d[0] = v2
		c.Insert(l, Modified, d)
		ln, ok := c.Peek(l)
		return ok && ln.Data()[0] == v2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
