package cache

import (
	"fmt"

	"repro/internal/checkpoint"
)

// Capture snapshots the cache's complete state — every slot, valid or
// not, in set×assoc order, plus the LRU tick and counters. The full
// array image (rather than a valid-lines-only walk) preserves slot
// placement and LRU ordering exactly, so a restored cache replays the
// original's eviction decisions bit for bit. Invalid slots are emitted
// as canonical zeros: Invalidate leaves the departed line's address and
// payload in the arrays, and pooled slot storage (Release/New) carries
// a prior simulation's bytes — neither is observable through cache
// operations, but either would leak host history into the snapshot
// digest and break replay verification across runs.
func (c *Cache) Capture() *checkpoint.CacheState {
	s := &checkpoint.CacheState{
		Addrs:      make([]uint64, len(c.addrs)),
		States:     make([]uint8, len(c.states)),
		Dirtys:     make([]bool, len(c.dirtys)),
		Masks:      make([]uint64, len(c.masks)),
		LRUs:       make([]uint64, len(c.lrus)),
		Data:       make([]byte, len(c.data)),
		Tick:       c.tick,
		Hits:       c.Hits,
		Misses:     c.Misses,
		Evictions:  c.Evictions,
		Writebacks: c.Writebacks,
	}
	for i, st := range c.states {
		if st == Invalid {
			continue
		}
		s.Addrs[i] = uint64(c.addrs[i])
		s.States[i] = uint8(st)
		s.Dirtys[i] = c.dirtys[i]
		s.Masks[i] = c.masks[i]
		s.LRUs[i] = c.lrus[i]
		copy(s.Data[i*c.lineSize:(i+1)*c.lineSize], c.data[i*c.lineSize:(i+1)*c.lineSize])
	}
	return s
}

// Restore overwrites the cache's state from a snapshot taken by Capture
// on a cache of identical geometry. It errors (rather than corrupting
// slots) when the snapshot's shape does not match this cache's
// configuration.
func (c *Cache) Restore(s *checkpoint.CacheState) error {
	if len(s.Addrs) != len(c.addrs) || len(s.Data) != len(c.data) {
		return fmt.Errorf("cache: restore geometry mismatch: snapshot %d slots/%d bytes, cache %d slots/%d bytes",
			len(s.Addrs), len(s.Data), len(c.addrs), len(c.data))
	}
	if len(s.States) != len(c.states) || len(s.Dirtys) != len(c.dirtys) ||
		len(s.Masks) != len(c.masks) || len(s.LRUs) != len(c.lrus) {
		return fmt.Errorf("cache: restore snapshot internally inconsistent (%d slots)", len(s.Addrs))
	}
	for i, a := range s.Addrs {
		c.addrs[i] = LineAddr(a)
	}
	for i, st := range s.States {
		c.states[i] = State(st)
	}
	copy(c.dirtys, s.Dirtys)
	copy(c.masks, s.Masks)
	copy(c.lrus, s.LRUs)
	copy(c.data, s.Data)
	c.tick = s.Tick
	c.Hits = s.Hits
	c.Misses = s.Misses
	c.Evictions = s.Evictions
	c.Writebacks = s.Writebacks
	return nil
}
