// Package cache implements the set-associative caches of the target memory
// hierarchy (paper §3.2). Following Graphite's design, the cache is both a
// timing model and the functional store: lines carry real data bytes, and
// the application's loads and stores are served from them. A simulation
// that produces correct program output therefore certifies the coherence
// protocol built on top.
package cache

import (
	"fmt"
	"sync"

	"repro/internal/arch"
	"repro/internal/config"
)

// State is the MSI coherence state of a line at the coherence point (L2).
type State uint8

const (
	// Invalid means the line is not present.
	Invalid State = iota
	// Shared means a clean, read-only copy.
	Shared
	// Modified means an exclusive, writable, possibly dirty copy.
	Modified
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// LineAddr is a cache-line-granular address: Addr >> log2(lineSize).
type LineAddr uint64

// Line is one cache line.
type Line struct {
	// Addr is the line address; valid only when State != Invalid.
	Addr LineAddr
	// State is the MSI state.
	State State
	// Dirty reports whether Data differs from the home memory copy.
	Dirty bool
	// WriteMask records which 8-byte words have been written while the
	// line was held Modified; it feeds true/false-sharing classification.
	WriteMask uint64
	// Data is the line payload (lineSize bytes).
	Data []byte

	lru uint64
}

// Cache is one set-associative cache array with LRU replacement. It is not
// internally synchronized: the owning core context serializes access (see
// the single-writer ownership rules in internal/memsys and DESIGN.md §13).
type Cache struct {
	cfg      config.CacheConfig
	sets     []Line // sets*assoc lines, set-major
	setMask  uint64
	lineBits uint
	tick     uint64
	// victimBuf backs the Data slice of lines returned by Insert on
	// eviction, so the steady state allocates nothing: the evicted slot
	// keeps its storage for the incoming line and the victim's bytes are
	// copied here. One buffer suffices because victims are consumed
	// (encoded into a writeback message) before the next Insert.
	victimBuf []byte

	// Statistics.
	Hits, Misses, Evictions, Writebacks uint64
}

// linePools recycles line arrays — including their lazily allocated data
// buffers — across cache instances of the same geometry. Sweep-style
// workloads construct thousands of short-lived simulator instances; the
// line metadata array is the single largest construction allocation, and
// recycling it turns that recurring garbage (and the GC churn it causes
// between runs) into a handful of long-lived arrays.
var linePools sync.Map // packed geometry key -> *sync.Pool

func linePool(lines, lineSize int) *sync.Pool {
	key := uint64(lines)<<16 | uint64(lineSize)
	if p, ok := linePools.Load(key); ok {
		return p.(*sync.Pool)
	}
	p, _ := linePools.LoadOrStore(key, &sync.Pool{})
	return p.(*sync.Pool)
}

// New builds a cache from a validated configuration. It panics on invalid
// geometry; configs must be validated at simulation start.
func New(cfg config.CacheConfig) *Cache {
	if err := cfg.Validate("cache"); err != nil {
		panic(err)
	}
	if !cfg.Enabled {
		panic("cache: New called for disabled cache")
	}
	sets := cfg.Sets()
	lines := sets * cfg.Assoc
	c := &Cache{
		cfg:       cfg,
		setMask:   uint64(sets - 1),
		victimBuf: make([]byte, cfg.LineSize),
	}
	if v := linePool(lines, cfg.LineSize).Get(); v != nil {
		c.sets = v.([]Line)
		for i := range c.sets {
			// Reset metadata but keep each slot's data buffer.
			c.sets[i] = Line{Data: c.sets[i].Data}
		}
	} else {
		c.sets = make([]Line, lines)
	}
	for ls := cfg.LineSize; ls > 1; ls >>= 1 {
		c.lineBits++
	}
	return c
}

// Release returns the cache's line array (with its data buffers) to the
// geometry pool for reuse by a future instance. The cache must not be
// used afterwards; callers must guarantee no other goroutine can still
// touch it (simulation torn down, server stopped).
func (c *Cache) Release() {
	if c.sets == nil {
		return
	}
	linePool(len(c.sets), c.cfg.LineSize).Put(c.sets)
	c.sets = nil
}

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() int { return c.cfg.LineSize }

// LineBits returns log2(lineSize).
func (c *Cache) LineBits() uint { return c.lineBits }

// HitLatency returns the configured hit latency.
func (c *Cache) HitLatency() arch.Cycles { return c.cfg.HitLatency }

// LineOf converts a byte address to its line address.
func (c *Cache) LineOf(a arch.Addr) LineAddr { return LineAddr(uint64(a) >> c.lineBits) }

// Base returns the first byte address of a line.
func (c *Cache) Base(l LineAddr) arch.Addr { return arch.Addr(uint64(l) << c.lineBits) }

func (c *Cache) set(l LineAddr) []Line {
	s := uint64(l) & c.setMask
	return c.sets[s*uint64(c.cfg.Assoc) : (s+1)*uint64(c.cfg.Assoc)]
}

// Lookup returns the line if present, updating LRU and hit/miss counters.
func (c *Cache) Lookup(l LineAddr) *Line {
	set := c.set(l)
	for i := range set {
		if set[i].State != Invalid && set[i].Addr == l {
			c.tick++
			set[i].lru = c.tick
			c.Hits++
			return &set[i]
		}
	}
	c.Misses++
	return nil
}

// Peek returns the line if present without touching LRU or counters.
func (c *Cache) Peek(l LineAddr) *Line {
	set := c.set(l)
	for i := range set {
		if set[i].State != Invalid && set[i].Addr == l {
			return &set[i]
		}
	}
	return nil
}

// Insert places a line with the given state and data, evicting the LRU
// victim of the set if needed. The returned victim (valid when evicted is
// true) carries its bytes in a cache-owned scratch buffer that the next
// Insert overwrites: callers must consume the victim (typically by
// encoding its writeback) before inserting again. data is copied into the
// cache's own storage. Slot storage is allocated on a slot's first use
// and retained across invalidations and evictions, so the steady state
// allocates nothing.
func (c *Cache) Insert(l LineAddr, st State, data []byte) (victim Line, evicted bool) {
	if st == Invalid {
		panic("cache: inserting Invalid line")
	}
	set := c.set(l)
	// Prefer an existing copy of the line (state upgrade in place) over an
	// empty slot, so a line can never be duplicated within a set.
	slot := -1
	for i := range set {
		if set[i].State != Invalid && set[i].Addr == l {
			slot = i
			break
		}
	}
	if slot < 0 {
		for i := range set {
			if set[i].State == Invalid {
				slot = i
				break
			}
		}
	}
	if slot < 0 {
		// Evict the least recently used line. The victim's bytes move to
		// the scratch buffer; the slot keeps its storage for the new line.
		slot = 0
		for i := 1; i < len(set); i++ {
			if set[i].lru < set[slot].lru {
				slot = i
			}
		}
		victim = set[slot]
		copy(c.victimBuf, set[slot].Data)
		victim.Data = c.victimBuf
		evicted = true
		c.Evictions++
		if victim.Dirty {
			c.Writebacks++
		}
	}
	ln := &set[slot]
	prevMask := uint64(0)
	prevDirty := false
	if !evicted && ln.State != Invalid && ln.Addr == l {
		prevMask = ln.WriteMask
		prevDirty = ln.Dirty
	}
	if ln.Data == nil {
		ln.Data = make([]byte, c.cfg.LineSize)
	}
	copy(ln.Data, data)
	ln.Addr = l
	ln.State = st
	ln.Dirty = prevDirty
	ln.WriteMask = prevMask
	c.tick++
	ln.lru = c.tick
	return victim, evicted
}

// Invalidate removes a line, returning a copy of it and whether it was
// present. The copy's Data aliases the slot's storage, which stays in
// place for the slot's next occupant: it is valid only until the next
// Insert that lands in this line's set.
func (c *Cache) Invalidate(l LineAddr) (Line, bool) {
	set := c.set(l)
	for i := range set {
		if set[i].State != Invalid && set[i].Addr == l {
			out := set[i]
			set[i].State = Invalid
			set[i].Dirty = false
			set[i].WriteMask = 0
			set[i].lru = 0
			return out, true
		}
	}
	return Line{}, false
}

// Downgrade moves a Modified line to Shared, clearing dirty state, and
// returns it (without removing it). ok is false if absent.
func (c *Cache) Downgrade(l LineAddr) (*Line, bool) {
	set := c.set(l)
	for i := range set {
		if set[i].State != Invalid && set[i].Addr == l {
			set[i].State = Shared
			set[i].Dirty = false
			set[i].WriteMask = 0
			return &set[i], true
		}
	}
	return nil, false
}

// ForEach visits every valid line. The callback must not insert or
// invalidate lines.
func (c *Cache) ForEach(fn func(*Line)) {
	for i := range c.sets {
		if c.sets[i].State != Invalid {
			fn(&c.sets[i])
		}
	}
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.sets {
		if c.sets[i].State != Invalid {
			n++
		}
	}
	return n
}

// WordMask returns the write-mask bits covering [off, off+n) within a
// line, at 8-byte word granularity. Line sizes up to 512 bytes map onto
// the 64 mask bits; larger lines saturate the mask (all bits), which only
// makes sharing classification more conservative.
func WordMask(off, n, lineSize int) uint64 {
	if n <= 0 {
		return 0
	}
	if lineSize > 512 {
		return ^uint64(0)
	}
	first := off / 8
	last := (off + n - 1) / 8
	var m uint64
	for w := first; w <= last && w < 64; w++ {
		m |= 1 << uint(w)
	}
	return m
}
