// Package cache implements the set-associative caches of the target memory
// hierarchy (paper §3.2). Following Graphite's design, the cache is both a
// timing model and the functional store: lines carry real data bytes, and
// the application's loads and stores are served from them. A simulation
// that produces correct program output therefore certifies the coherence
// protocol built on top.
//
// Storage is structure-of-arrays: per-slot metadata (tag, state, dirty,
// write mask, LRU stamp) lives in parallel slices and the payload bytes in
// one contiguous buffer, all indexed by set×assoc+way. A set lookup walks
// a short contiguous run of tags instead of chasing per-line pointers,
// which is what keeps lookups cheap when a single host process simulates
// hundreds or thousands of tiles. Line is a lightweight handle (cache
// pointer + slot index) over that storage.
package cache

import (
	"fmt"
	"sync"

	"repro/internal/arch"
	"repro/internal/config"
)

// State is the MSI coherence state of a line at the coherence point (L2).
type State uint8

const (
	// Invalid means the line is not present.
	Invalid State = iota
	// Shared means a clean, read-only copy.
	Shared
	// Modified means an exclusive, writable, possibly dirty copy.
	Modified
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// LineAddr is a cache-line-granular address: Addr >> log2(lineSize).
type LineAddr uint64

// Line is a handle to one resident cache slot: a cache pointer plus a slot
// index into the structure-of-arrays storage. Handles are values; copying
// one copies the reference, not the line. A handle stays valid until the
// slot's occupant changes (an Insert landing in the slot or an Invalidate
// of the line); the single-writer ownership rules in internal/memsys
// guarantee no concurrent mutation in between.
type Line struct {
	c   *Cache
	idx int32
}

// Addr returns the line address.
func (h Line) Addr() LineAddr { return h.c.addrs[h.idx] }

// State returns the MSI state.
func (h Line) State() State { return h.c.states[h.idx] }

// SetState sets the MSI state.
func (h Line) SetState(s State) { h.c.states[h.idx] = s }

// Dirty reports whether Data differs from the home memory copy.
func (h Line) Dirty() bool { return h.c.dirtys[h.idx] }

// SetDirty sets the dirty flag.
func (h Line) SetDirty(d bool) { h.c.dirtys[h.idx] = d }

// WriteMask returns the 8-byte-word write mask accumulated while the line
// was held Modified; it feeds true/false-sharing classification.
func (h Line) WriteMask() uint64 { return h.c.masks[h.idx] }

// SetWriteMask replaces the write mask.
func (h Line) SetWriteMask(m uint64) { h.c.masks[h.idx] = m }

// OrWriteMask accumulates bits into the write mask.
func (h Line) OrWriteMask(m uint64) { h.c.masks[h.idx] |= m }

// Data returns the line payload (lineSize bytes), a slice into the cache's
// contiguous data buffer.
func (h Line) Data() []byte {
	off := int(h.idx) * h.c.lineSize
	return h.c.data[off : off+h.c.lineSize : off+h.c.lineSize]
}

// Victim is a snapshot of a line leaving the cache (eviction or
// invalidation). Data points into cache-owned storage — the shared victim
// scratch buffer for Insert evictions, the slot itself for Invalidate —
// and is valid only until the next Insert touching that storage; callers
// must consume it (typically by encoding a writeback) first.
type Victim struct {
	Addr      LineAddr
	State     State
	Dirty     bool
	WriteMask uint64
	Data      []byte
}

// Cache is one set-associative cache array with LRU replacement. It is not
// internally synchronized: the owning core context serializes access (see
// the single-writer ownership rules in internal/memsys and DESIGN.md §13).
type Cache struct {
	cfg      config.CacheConfig
	setMask  uint64
	lineBits uint
	assoc    int
	lineSize int
	tick     uint64

	// Structure-of-arrays slot storage, indexed by set*assoc+way.
	addrs  []LineAddr
	states []State
	dirtys []bool
	masks  []uint64
	lrus   []uint64
	data   []byte // slots*lineSize contiguous payload bytes

	// victimBuf backs the Data slice of victims returned by Insert on
	// eviction, so the steady state allocates nothing: the evicted slot
	// keeps its storage for the incoming line and the victim's bytes are
	// copied here. One buffer suffices because victims are consumed
	// (encoded into a writeback message) before the next Insert.
	victimBuf []byte

	// Statistics.
	Hits, Misses, Evictions, Writebacks uint64
}

// lineArrays bundles one geometry's slot storage for pooling.
type lineArrays struct {
	addrs  []LineAddr
	states []State
	dirtys []bool
	masks  []uint64
	lrus   []uint64
	data   []byte
}

// linePools recycles slot storage — including the contiguous data
// buffer — across cache instances of the same geometry. Sweep-style
// workloads construct thousands of short-lived simulator instances; the
// slot arrays are the single largest construction allocation, and
// recycling them turns that recurring garbage (and the GC churn it causes
// between runs) into a handful of long-lived arrays.
var linePools sync.Map // packed geometry key -> *sync.Pool

func linePool(lines, lineSize int) *sync.Pool {
	key := uint64(lines)<<16 | uint64(lineSize)
	if p, ok := linePools.Load(key); ok {
		return p.(*sync.Pool)
	}
	p, _ := linePools.LoadOrStore(key, &sync.Pool{})
	return p.(*sync.Pool)
}

// New builds a cache from a validated configuration. It panics on invalid
// geometry; configs must be validated at simulation start.
func New(cfg config.CacheConfig) *Cache {
	if err := cfg.Validate("cache"); err != nil {
		panic(err)
	}
	if !cfg.Enabled {
		panic("cache: New called for disabled cache")
	}
	sets := cfg.Sets()
	lines := sets * cfg.Assoc
	c := &Cache{
		cfg:       cfg,
		setMask:   uint64(sets - 1),
		assoc:     cfg.Assoc,
		lineSize:  cfg.LineSize,
		victimBuf: make([]byte, cfg.LineSize),
	}
	if v := linePool(lines, cfg.LineSize).Get(); v != nil {
		a := v.(*lineArrays)
		// Reset metadata but keep the payload buffer; stale addrs are
		// unreachable behind Invalid states.
		clear(a.states)
		clear(a.dirtys)
		clear(a.masks)
		clear(a.lrus)
		c.addrs, c.states, c.dirtys, c.masks, c.lrus, c.data =
			a.addrs, a.states, a.dirtys, a.masks, a.lrus, a.data
	} else {
		c.addrs = make([]LineAddr, lines)
		c.states = make([]State, lines)
		c.dirtys = make([]bool, lines)
		c.masks = make([]uint64, lines)
		c.lrus = make([]uint64, lines)
		c.data = make([]byte, lines*cfg.LineSize)
	}
	for ls := cfg.LineSize; ls > 1; ls >>= 1 {
		c.lineBits++
	}
	return c
}

// Release returns the cache's slot storage (with its data buffer) to the
// geometry pool for reuse by a future instance. The cache must not be
// used afterwards; callers must guarantee no other goroutine can still
// touch it (simulation torn down, server stopped).
func (c *Cache) Release() {
	if c.states == nil {
		return
	}
	linePool(len(c.states), c.cfg.LineSize).Put(&lineArrays{
		addrs: c.addrs, states: c.states, dirtys: c.dirtys,
		masks: c.masks, lrus: c.lrus, data: c.data,
	})
	c.addrs, c.states, c.dirtys, c.masks, c.lrus, c.data = nil, nil, nil, nil, nil, nil
}

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() int { return c.cfg.LineSize }

// LineBits returns log2(lineSize).
func (c *Cache) LineBits() uint { return c.lineBits }

// HitLatency returns the configured hit latency.
func (c *Cache) HitLatency() arch.Cycles { return c.cfg.HitLatency }

// LineOf converts a byte address to its line address.
func (c *Cache) LineOf(a arch.Addr) LineAddr { return LineAddr(uint64(a) >> c.lineBits) }

// Base returns the first byte address of a line.
func (c *Cache) Base(l LineAddr) arch.Addr { return arch.Addr(uint64(l) << c.lineBits) }

// setBase returns the first slot index of the line's set.
func (c *Cache) setBase(l LineAddr) int {
	return int(uint64(l)&c.setMask) * c.assoc
}

func (c *Cache) slotData(i int) []byte {
	off := i * c.lineSize
	return c.data[off : off+c.lineSize : off+c.lineSize]
}

// Lookup returns a handle to the line if present, updating LRU and
// hit/miss counters.
func (c *Cache) Lookup(l LineAddr) (Line, bool) {
	base := c.setBase(l)
	for i := base; i < base+c.assoc; i++ {
		if c.states[i] != Invalid && c.addrs[i] == l {
			c.tick++
			c.lrus[i] = c.tick
			c.Hits++
			return Line{c, int32(i)}, true
		}
	}
	c.Misses++
	return Line{}, false
}

// Peek returns a handle to the line if present without touching LRU or
// counters.
func (c *Cache) Peek(l LineAddr) (Line, bool) {
	base := c.setBase(l)
	for i := base; i < base+c.assoc; i++ {
		if c.states[i] != Invalid && c.addrs[i] == l {
			return Line{c, int32(i)}, true
		}
	}
	return Line{}, false
}

// Insert places a line with the given state and data, evicting the LRU
// victim of the set if needed. The returned victim (valid when evicted is
// true) carries its bytes in a cache-owned scratch buffer that the next
// Insert overwrites: callers must consume the victim (typically by
// encoding its writeback) before inserting again. data is copied into the
// cache's own storage, so the steady state allocates nothing.
func (c *Cache) Insert(l LineAddr, st State, data []byte) (victim Victim, evicted bool) {
	if st == Invalid {
		panic("cache: inserting Invalid line")
	}
	base := c.setBase(l)
	// Prefer an existing copy of the line (state upgrade in place) over an
	// empty slot, so a line can never be duplicated within a set.
	slot := -1
	for i := base; i < base+c.assoc; i++ {
		if c.states[i] != Invalid && c.addrs[i] == l {
			slot = i
			break
		}
	}
	if slot < 0 {
		for i := base; i < base+c.assoc; i++ {
			if c.states[i] == Invalid {
				slot = i
				break
			}
		}
	}
	if slot < 0 {
		// Evict the least recently used line. The victim's bytes move to
		// the scratch buffer; the slot keeps its storage for the new line.
		slot = base
		for i := base + 1; i < base+c.assoc; i++ {
			if c.lrus[i] < c.lrus[slot] {
				slot = i
			}
		}
		copy(c.victimBuf, c.slotData(slot))
		victim = Victim{
			Addr:      c.addrs[slot],
			State:     c.states[slot],
			Dirty:     c.dirtys[slot],
			WriteMask: c.masks[slot],
			Data:      c.victimBuf,
		}
		evicted = true
		c.Evictions++
		if victim.Dirty {
			c.Writebacks++
		}
	}
	prevMask := uint64(0)
	prevDirty := false
	if !evicted && c.states[slot] != Invalid && c.addrs[slot] == l {
		prevMask = c.masks[slot]
		prevDirty = c.dirtys[slot]
	}
	copy(c.slotData(slot), data)
	c.addrs[slot] = l
	c.states[slot] = st
	c.dirtys[slot] = prevDirty
	c.masks[slot] = prevMask
	c.tick++
	c.lrus[slot] = c.tick
	return victim, evicted
}

// Invalidate removes a line, returning a snapshot of it and whether it was
// present. The snapshot's Data aliases the slot's storage, which stays in
// place for the slot's next occupant: it is valid only until the next
// Insert that lands in this line's set.
func (c *Cache) Invalidate(l LineAddr) (Victim, bool) {
	base := c.setBase(l)
	for i := base; i < base+c.assoc; i++ {
		if c.states[i] != Invalid && c.addrs[i] == l {
			out := Victim{
				Addr:      c.addrs[i],
				State:     c.states[i],
				Dirty:     c.dirtys[i],
				WriteMask: c.masks[i],
				Data:      c.slotData(i),
			}
			c.states[i] = Invalid
			c.dirtys[i] = false
			c.masks[i] = 0
			c.lrus[i] = 0
			return out, true
		}
	}
	return Victim{}, false
}

// Downgrade moves a Modified line to Shared, clearing dirty state, and
// returns a handle to it (without removing it). ok is false if absent.
func (c *Cache) Downgrade(l LineAddr) (Line, bool) {
	base := c.setBase(l)
	for i := base; i < base+c.assoc; i++ {
		if c.states[i] != Invalid && c.addrs[i] == l {
			c.states[i] = Shared
			c.dirtys[i] = false
			c.masks[i] = 0
			return Line{c, int32(i)}, true
		}
	}
	return Line{}, false
}

// ForEach visits every valid line. The callback must not insert or
// invalidate lines.
func (c *Cache) ForEach(fn func(Line)) {
	for i := range c.states {
		if c.states[i] != Invalid {
			fn(Line{c, int32(i)})
		}
	}
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.states {
		if c.states[i] != Invalid {
			n++
		}
	}
	return n
}

// WordMask returns the write-mask bits covering [off, off+n) within a
// line, at 8-byte word granularity. Line sizes up to 512 bytes map onto
// the 64 mask bits; larger lines saturate the mask (all bits), which only
// makes sharing classification more conservative.
func WordMask(off, n, lineSize int) uint64 {
	if n <= 0 {
		return 0
	}
	if lineSize > 512 {
		return ^uint64(0)
	}
	first := off / 8
	last := (off + n - 1) / 8
	var m uint64
	for w := first; w <= last && w < 64; w++ {
		m |= 1 << uint(w)
	}
	return m
}
