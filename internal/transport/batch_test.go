package transport

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"repro/internal/arch"
)

// frameVal tags a frame with its sender and a per-sender sequence number.
func frameVal(sender, seq int) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint32(b[0:4], uint32(sender))
	binary.LittleEndian.PutUint32(b[4:8], uint32(seq))
	return b
}

// checkFIFO drains total frames from ep and asserts each sender's sequence
// numbers arrive strictly in order.
func checkFIFO(t *testing.T, ep Endpoint, total, senders int) {
	t.Helper()
	next := make([]int, senders)
	for i := 0; i < total; i++ {
		data, err := ep.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if len(data) != 8 {
			t.Fatalf("recv %d: frame of %d bytes", i, len(data))
		}
		sender := int(binary.LittleEndian.Uint32(data[0:4]))
		seq := int(binary.LittleEndian.Uint32(data[4:8]))
		if seq != next[sender] {
			t.Fatalf("sender %d: got seq %d, want %d (batching broke per-sender FIFO)", sender, seq, next[sender])
		}
		next[sender]++
	}
}

// sendMixed interleaves plain Sends and SendBatches of varying width from
// one sender, all to dst, numbering frames sequentially.
func sendMixed(t *testing.T, tr Transport, dst EndpointID, sender, count int) {
	t.Helper()
	seq := 0
	for seq < count {
		switch seq % 3 {
		case 0: // single send
			if err := tr.Send(dst, frameVal(sender, seq)); err != nil {
				t.Errorf("send: %v", err)
				return
			}
			seq++
		default: // batch of up to 4
			var frames [][]byte
			for k := 0; k < 4 && seq < count; k++ {
				frames = append(frames, frameVal(sender, seq))
				seq++
			}
			if err := tr.SendBatch(dst, frames); err != nil {
				t.Errorf("sendbatch: %v", err)
				return
			}
		}
	}
}

// TestChannelBatchFIFO drives concurrent senders mixing Send and SendBatch
// over the in-memory fabric and asserts per-sender FIFO delivery.
func TestChannelBatchFIFO(t *testing.T) {
	const senders, perSender = 4, 300
	fab := NewChannelFabric(StripedRoute(1))
	tr := fab.Process(0)
	ep, err := tr.Register(0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sendMixed(t, tr, 0, s, perSender)
		}(s)
	}
	checkFIFO(t, ep, senders*perSender, senders)
	wg.Wait()
	fab.Close()
}

// TestChannelBatchEmptyAndErrors covers the degenerate batch cases.
func TestChannelBatchEmptyAndErrors(t *testing.T) {
	fab := NewChannelFabric(StripedRoute(1))
	tr := fab.Process(0)
	if _, err := tr.Register(0); err != nil {
		t.Fatal(err)
	}
	if err := tr.SendBatch(0, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := tr.SendBatch(7, [][]byte{{1}}); err == nil {
		t.Fatal("batch to unregistered endpoint did not error")
	}
	fab.Close()
	if err := tr.SendBatch(0, [][]byte{{1}}); err != ErrClosed {
		t.Fatalf("batch after close = %v, want ErrClosed", err)
	}
}

// TestTCPBatchFIFO runs the same mixed Send/SendBatch FIFO check across a
// real two-process TCP fabric, covering the batch wire framing (flagged
// frame, sub-frame split) and local-delivery batches.
func TestTCPBatchFIFO(t *testing.T) {
	const perSender = 200
	addrs := tcpAddrs(t, 2)
	route := StripedRoute(2)
	var trs [2]Transport
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			tr, err := DialTCP(TCPConfig{Proc: arch.ProcID(p), Procs: 2, Addrs: addrs, Route: route, DialTimeout: 5 * time.Second})
			trs[p], errs[p] = tr, err
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("proc %d: %v", p, err)
		}
	}
	defer trs[0].Close()
	defer trs[1].Close()

	ep0, err := trs[0].Register(0) // tile 0 -> proc 0
	if err != nil {
		t.Fatal(err)
	}
	// Sender 0 is remote (proc 1, batch wire framing); sender 1 is local
	// (proc 0, direct mailbox batches).
	var sg sync.WaitGroup
	for s, tr := range []Transport{trs[1], trs[0]} {
		sg.Add(1)
		go func(s int, tr Transport) {
			defer sg.Done()
			sendMixed(t, tr, 0, s, perSender)
		}(s, tr)
	}
	checkFIFO(t, ep0, 2*perSender, 2)
	sg.Wait()
}

// TestTCPBatchOversized verifies that a batch whose total exceeds the frame
// limit still arrives intact via the per-frame fallback.
func TestTCPBatchOversized(t *testing.T) {
	addrs := tcpAddrs(t, 2)
	route := StripedRoute(2)
	var trs [2]Transport
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			tr, err := DialTCP(TCPConfig{Proc: arch.ProcID(p), Procs: 2, Addrs: addrs, Route: route, DialTimeout: 5 * time.Second})
			trs[p], errs[p] = tr, err
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("proc %d: %v", p, err)
		}
	}
	defer trs[0].Close()
	defer trs[1].Close()

	ep0, err := trs[0].Register(0)
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 9<<20) // two of these exceed maxFrame as one batch
	big[0] = 0xAB
	if err := trs[1].SendBatch(0, [][]byte{big, big}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		got, err := ep0.Recv()
		if err != nil || len(got) != len(big) || got[0] != 0xAB {
			t.Fatalf("oversized batch frame %d: len %d, err %v", i, len(got), err)
		}
	}
}
