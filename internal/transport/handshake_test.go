package transport

import (
	"encoding/binary"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/arch"
)

// freeAddrs reserves n distinct localhost addresses by binding ephemeral
// ports and releasing them immediately.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// TestHandshakeRejectsProtoSkew: a peer answering the hello with a welcome
// pinning a different wire-format version must fail the dial loudly.
func TestHandshakeRejectsProtoSkew(t *testing.T) {
	addrs := freeAddrs(t, 2)
	ln, err := net.Listen("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var hello [32]byte
		if _, err := io.ReadFull(conn, hello[:]); err != nil {
			return
		}
		var welcome [24]byte
		binary.LittleEndian.PutUint32(welcome[0:4], helloMagic)
		binary.LittleEndian.PutUint32(welcome[4:8], tcpProto+999)
		conn.Write(welcome[:])
	}()

	_, err = DialTCP(TCPConfig{
		Proc: 1, Procs: 2, Addrs: addrs,
		DialTimeout: 2 * time.Second,
	})
	if err == nil {
		t.Fatal("dial against a proto-skewed peer succeeded")
	}
	if !strings.Contains(err.Error(), "proto") {
		t.Fatalf("error does not name the proto skew: %v", err)
	}
}

// TestHandshakeRejectsClusterSizeMismatch: a hello claiming a different
// total process count is a misconfigured launch (two simulations pointed
// at each other) and must be rejected by the accepting side.
func TestHandshakeRejectsClusterSizeMismatch(t *testing.T) {
	addrs := freeAddrs(t, 2)

	// A fake proc 1 that lets proc 0's outbound dial complete normally.
	ln, err := net.Listen("tcp", addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var hello [32]byte
		if _, err := io.ReadFull(conn, hello[:]); err != nil {
			return
		}
		var welcome [24]byte
		binary.LittleEndian.PutUint32(welcome[0:4], helloMagic)
		binary.LittleEndian.PutUint32(welcome[4:8], tcpProto)
		conn.Write(welcome[:])
	}()

	result := make(chan error, 1)
	go func() {
		tr, err := DialTCP(TCPConfig{
			Proc: 0, Procs: 2, Addrs: addrs,
			DialTimeout: 5 * time.Second,
		})
		if tr != nil {
			tr.Close()
		}
		result <- err
	}()

	// Dial proc 0's listener claiming to be proc 1 of a THREE-process run.
	conn, err := dialRetry(addrs[0], 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(encodeHello(3, arch.ProcID(1), 0, 0)); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-result:
		if err == nil {
			t.Fatal("accepting a peer from a different-size fabric succeeded")
		}
		if !strings.Contains(err.Error(), "3-process") {
			t.Fatalf("error does not name the size mismatch: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("DialTCP did not return")
	}
}

// TestHandshakeRejectsGenerationSkew: a worker surviving from a dead
// recovery attempt dials the re-forked fabric with its old generation
// number; the accepting side must refuse it so the zombie cannot inject
// pre-recovery traffic into the replacement run.
func TestHandshakeRejectsGenerationSkew(t *testing.T) {
	addrs := freeAddrs(t, 2)

	// A fake proc 1 that lets proc 0's outbound dial complete normally.
	ln, err := net.Listen("tcp", addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var hello [32]byte
		if _, err := io.ReadFull(conn, hello[:]); err != nil {
			return
		}
		var welcome [24]byte
		binary.LittleEndian.PutUint32(welcome[0:4], helloMagic)
		binary.LittleEndian.PutUint32(welcome[4:8], tcpProto)
		binary.LittleEndian.PutUint64(welcome[16:24], 2)
		conn.Write(welcome[:])
	}()

	result := make(chan error, 1)
	go func() {
		tr, err := DialTCP(TCPConfig{
			Proc: 0, Procs: 2, Addrs: addrs,
			DialTimeout: 5 * time.Second,
			Generation:  2,
		})
		if tr != nil {
			tr.Close()
		}
		result <- err
	}()

	// Dial proc 0's listener as proc 1 of generation 1 — the attempt that
	// already died.
	conn, err := dialRetry(addrs[0], 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(encodeHello(2, arch.ProcID(1), 0, 1)); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-result:
		if err == nil {
			t.Fatal("accepting a stale-generation peer succeeded")
		}
		if !strings.Contains(err.Error(), "generation") {
			t.Fatalf("error does not name the generation skew: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("DialTCP did not return")
	}
}

// TestHandshakeRejectsGarbage: random bytes on the listen port (a port
// scanner, a stray client) must not be interpreted as fabric frames.
func TestHandshakeRejectsGarbage(t *testing.T) {
	addrs := freeAddrs(t, 2)

	ln, err := net.Listen("tcp", addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var hello [32]byte
		if _, err := io.ReadFull(conn, hello[:]); err != nil {
			return
		}
		var welcome [24]byte
		binary.LittleEndian.PutUint32(welcome[0:4], helloMagic)
		binary.LittleEndian.PutUint32(welcome[4:8], tcpProto)
		conn.Write(welcome[:])
	}()

	result := make(chan error, 1)
	go func() {
		tr, err := DialTCP(TCPConfig{
			Proc: 0, Procs: 2, Addrs: addrs,
			DialTimeout: 5 * time.Second,
		})
		if tr != nil {
			tr.Close()
		}
		result <- err
	}()

	conn, err := dialRetry(addrs[0], 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\nHost: nope\r\nUser-Agent: scanner\r\n\r\n")); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-result:
		if err == nil {
			t.Fatal("accepting a non-graphite peer succeeded")
		}
		if !strings.Contains(err.Error(), "not a graphite transport peer") {
			t.Fatalf("error does not identify the stranger: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("DialTCP did not return")
	}
}
