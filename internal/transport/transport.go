// Package transport implements Graphite's physical transport layer
// (paper §3.3.1): generic point-to-point byte delivery between simulation
// endpoints, abstracting whether two endpoints live in the same host
// process or on different ones.
//
// Endpoints are identified by integer IDs: target tiles use their tile
// number (0..Tiles-1), and simulator control threads use negative IDs (the
// MCP and one LCP per process). The network layer (internal/network) is
// built on top of this package; nothing above the network layer sends raw
// transport messages.
//
// Two implementations are provided, mirroring the paper's design where the
// TCP/IP backend is swappable:
//
//   - ChannelFabric: in-memory mailboxes, for single-OS-process
//     simulations and tests.
//   - TCP: real sockets with length-prefixed framing, for genuinely
//     distributed simulations (see cmd/graphite-mp).
//
// Delivery is reliable and per-sender FIFO. Mailboxes are unbounded:
// transport-level sends never block, which is what makes the higher-level
// memory protocol deadlock-free (a tile can always answer an invalidation
// even while its own core blocks on a miss).
package transport

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/arch"
)

// EndpointID addresses one logical receiver on the fabric.
type EndpointID int32

// MCP is the endpoint of the Master Control Program (one per simulation,
// hosted by process 0).
const MCP EndpointID = -1

// LCP returns the endpoint of the Local Control Program of process p.
func LCP(p arch.ProcID) EndpointID { return EndpointID(-2 - int32(p)) }

// LCPProc inverts LCP: it returns the process whose Local Control
// Program owns endpoint id, and whether id is an LCP endpoint at all.
// It is the single other site that knows the LCP encoding.
func LCPProc(id EndpointID) (arch.ProcID, bool) {
	if id >= -1 { // tiles and the MCP
		return 0, false
	}
	return arch.ProcID(-2 - int32(id)), true
}

// TileEndpoint returns the endpoint of a target tile.
func TileEndpoint(t arch.TileID) EndpointID { return EndpointID(t) }

// ErrClosed is returned by operations on a closed endpoint or transport.
var ErrClosed = errors.New("transport: closed")

// Transport is one process's handle on the fabric.
type Transport interface {
	// Register claims ownership of endpoint id in this process and
	// returns its receive handle. Each endpoint may be registered once,
	// and only by the process that owns it according to the routing map.
	Register(id EndpointID) (Endpoint, error)
	// Send delivers data to dst, which may live in any process.
	// The data slice is owned by the transport after the call.
	Send(dst EndpointID, data []byte) error
	// SendBatch delivers frames to dst in order, as one fabric operation.
	// It is semantically identical to calling Send once per frame but lets
	// backends amortize locking, wire framing, and receiver wakeups across
	// the whole batch. Like Send it never blocks on the receiver. Each
	// frame's byte slice is owned by the transport after the call, but the
	// containing frames slice reverts to the caller when SendBatch
	// returns — implementations must copy the frame references out before
	// returning (senders recycle the container across batches).
	SendBatch(dst EndpointID, frames [][]byte) error
	// Close shuts down the transport; pending Recv calls return ErrClosed.
	Close() error
}

// Endpoint is the receive side of one endpoint ID.
type Endpoint interface {
	// ID returns the endpoint's address.
	ID() EndpointID
	// Recv blocks until a message arrives and returns it. It returns
	// ErrClosed after Close.
	Recv() ([]byte, error)
	// TryRecv returns the next message without blocking; ok reports
	// whether one was available.
	TryRecv() (data []byte, ok bool, err error)
	// Close closes only this endpoint.
	Close() error
}

// RouteFunc maps an endpoint to the process that owns it.
type RouteFunc func(EndpointID) arch.ProcID

// StripedRoute returns the standard Graphite routing: tile t is owned by
// process t mod procs, LCP(p) by process p, and the MCP by process 0.
func StripedRoute(procs int) RouteFunc {
	return func(id EndpointID) arch.ProcID {
		switch {
		case id == MCP:
			return 0
		case id < 0: // LCP(p) == -2-p
			return arch.ProcID(-2 - int32(id))
		default:
			return arch.ProcID(int(id) % procs)
		}
	}
}

// mailbox is an unbounded FIFO of messages, stored in a ring buffer so
// steady-state traffic recycles one allocation instead of regrowing an
// append-and-reslice queue (the head capacity of a sliced queue is
// unrecoverable, so it reallocates continuously under load).
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    [][]byte // ring of count frames starting at head
	head   int
	count  int
	closed bool
	id     EndpointID
}

func newMailbox(id EndpointID) *mailbox {
	// The ring starts at its steady-state minimum so the first messages of
	// a simulation don't each pay a growth step; construction of all
	// mailboxes is one allocation sweep instead of load-triggered regrowth.
	m := &mailbox{id: id, buf: make([][]byte, 16)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// grow ensures room for n more frames. Called with mu held.
func (m *mailbox) grow(n int) {
	if m.count+n <= len(m.buf) {
		return
	}
	newCap := len(m.buf) * 2
	if newCap < 16 {
		newCap = 16
	}
	for newCap < m.count+n {
		newCap *= 2
	}
	nb := make([][]byte, newCap)
	for i := 0; i < m.count; i++ {
		nb[i] = m.buf[(m.head+i)%len(m.buf)]
	}
	m.buf, m.head = nb, 0
}

func (m *mailbox) push(data []byte) {
	m.grow(1)
	m.buf[(m.head+m.count)%len(m.buf)] = data
	m.count++
}

func (m *mailbox) pop() []byte {
	data := m.buf[m.head]
	m.buf[m.head] = nil
	m.head = (m.head + 1) % len(m.buf)
	m.count--
	return data
}

func (m *mailbox) put(data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.push(data)
	m.cond.Signal()
	return nil
}

// putBatch appends a whole batch under one lock acquisition and wakes the
// receiver once, preserving the order of frames.
func (m *mailbox) putBatch(frames [][]byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.grow(len(frames))
	for _, f := range frames {
		m.buf[(m.head+m.count)%len(m.buf)] = f
		m.count++
	}
	// Broadcast, not Signal: with more than one message queued, several
	// concurrent Recv callers can all make progress.
	if len(frames) > 1 {
		m.cond.Broadcast()
	} else {
		m.cond.Signal()
	}
	return nil
}

// ID implements Endpoint.
func (m *mailbox) ID() EndpointID { return m.id }

// Recv implements Endpoint.
func (m *mailbox) Recv() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.count == 0 && !m.closed {
		m.cond.Wait()
	}
	if m.count == 0 {
		return nil, ErrClosed
	}
	return m.pop(), nil
}

// TryRecv implements Endpoint.
func (m *mailbox) TryRecv() ([]byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.count == 0 {
		if m.closed {
			return nil, false, ErrClosed
		}
		return nil, false, nil
	}
	return m.pop(), true, nil
}

// Close implements Endpoint.
func (m *mailbox) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
	return nil
}

// ChannelFabric is an in-memory fabric shared by every simulated process
// of one simulation. Create it once, then hand each process its Transport
// via Process.
//
// Tile mailboxes (non-negative endpoint IDs) live in a dense array, sized
// up front when the tile count is known (NewChannelFabricSized): every
// send then resolves its destination with an array index instead of a
// hash lookup, and constructing a thousand-tile simulation performs one
// slice allocation rather than growing a map through its rehash
// schedule. The handful of control endpoints (MCP, LCPs — negative IDs)
// stay in a small map off the hot path.
type ChannelFabric struct {
	mu    sync.RWMutex
	tiles []*mailbox              // dense, indexed by tile endpoint ID
	ctrl  map[EndpointID]*mailbox // MCP and LCPs (negative IDs)
	route RouteFunc
	done  bool
}

// NewChannelFabric creates a fabric using the given routing map. The map
// is consulted only to enforce registration ownership; in-memory delivery
// itself needs no routing. The tile array grows on demand; callers that
// know the tile count should use NewChannelFabricSized.
func NewChannelFabric(route RouteFunc) *ChannelFabric {
	return NewChannelFabricSized(route, 0)
}

// NewChannelFabricSized creates a fabric with the dense tile-mailbox
// array allocated up front for the given tile count.
func NewChannelFabricSized(route RouteFunc, tiles int) *ChannelFabric {
	return &ChannelFabric{
		tiles: make([]*mailbox, tiles),
		ctrl:  make(map[EndpointID]*mailbox),
		route: route,
	}
}

// Process returns the transport handle of process p.
func (f *ChannelFabric) Process(p arch.ProcID) Transport {
	return &channelTransport{fabric: f, proc: p}
}

// Close closes every mailbox on the fabric.
func (f *ChannelFabric) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return nil
	}
	f.done = true
	for _, b := range f.tiles {
		if b != nil {
			b.Close()
		}
	}
	for _, b := range f.ctrl {
		b.Close()
	}
	return nil
}

func (f *ChannelFabric) register(p arch.ProcID, id EndpointID) (Endpoint, error) {
	if owner := f.route(id); owner != p {
		return nil, fmt.Errorf("transport: endpoint %d owned by process %d, registered from %d", id, owner, p)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return nil, ErrClosed
	}
	if id < 0 {
		if _, dup := f.ctrl[id]; dup {
			return nil, fmt.Errorf("transport: endpoint %d registered twice", id)
		}
		b := newMailbox(id)
		f.ctrl[id] = b
		return b, nil
	}
	for int(id) >= len(f.tiles) { // unsized fabric: amortized growth
		f.tiles = append(f.tiles, nil)
	}
	if f.tiles[id] != nil {
		return nil, fmt.Errorf("transport: endpoint %d registered twice", id)
	}
	b := newMailbox(id)
	f.tiles[id] = b
	return b, nil
}

func (f *ChannelFabric) box(dst EndpointID) (*mailbox, error) {
	f.mu.RLock()
	var b *mailbox
	if dst >= 0 {
		if int(dst) < len(f.tiles) {
			b = f.tiles[dst]
		}
	} else {
		b = f.ctrl[dst]
	}
	done := f.done
	f.mu.RUnlock()
	if done {
		return nil, ErrClosed
	}
	if b == nil {
		return nil, fmt.Errorf("transport: send to unregistered endpoint %d", dst)
	}
	return b, nil
}

func (f *ChannelFabric) send(dst EndpointID, data []byte) error {
	b, err := f.box(dst)
	if err != nil {
		return err
	}
	return b.put(data)
}

func (f *ChannelFabric) sendBatch(dst EndpointID, frames [][]byte) error {
	if len(frames) == 0 {
		return nil
	}
	b, err := f.box(dst)
	if err != nil {
		return err
	}
	return b.putBatch(frames)
}

type channelTransport struct {
	fabric *ChannelFabric
	proc   arch.ProcID
}

// Register implements Transport.
func (t *channelTransport) Register(id EndpointID) (Endpoint, error) {
	return t.fabric.register(t.proc, id)
}

// Send implements Transport.
func (t *channelTransport) Send(dst EndpointID, data []byte) error {
	return t.fabric.send(dst, data)
}

// SendBatch implements Transport.
//
//graphite:hotpath
func (t *channelTransport) SendBatch(dst EndpointID, frames [][]byte) error {
	return t.fabric.sendBatch(dst, frames)
}

// Close implements Transport. Closing any process handle closes the whole
// fabric; simulations tear down all processes together.
func (t *channelTransport) Close() error { return t.fabric.Close() }
