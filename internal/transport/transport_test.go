package transport

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/arch"
)

func newEphemeralListener() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

func TestEndpointIDMapping(t *testing.T) {
	if MCP != -1 {
		t.Fatalf("MCP endpoint = %d", MCP)
	}
	if LCP(0) != -2 || LCP(3) != -5 {
		t.Fatalf("LCP mapping wrong: %d %d", LCP(0), LCP(3))
	}
	if TileEndpoint(7) != 7 {
		t.Fatalf("tile endpoint mapping wrong")
	}
}

func TestStripedRoute(t *testing.T) {
	r := StripedRoute(4)
	if r(MCP) != 0 {
		t.Fatal("MCP must live on process 0")
	}
	for p := 0; p < 4; p++ {
		if got := r(LCP(arch.ProcID(p))); got != arch.ProcID(p) {
			t.Fatalf("LCP(%d) routed to %d", p, got)
		}
	}
	for tile := 0; tile < 16; tile++ {
		if got := r(EndpointID(tile)); got != arch.ProcID(tile%4) {
			t.Fatalf("tile %d routed to %d", tile, got)
		}
	}
}

func TestChannelRoundtrip(t *testing.T) {
	f := NewChannelFabric(StripedRoute(1))
	tr := f.Process(0)
	ep0, err := tr.Register(0)
	if err != nil {
		t.Fatal(err)
	}
	ep1, err := tr.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := ep1.Recv()
	if err != nil || string(got) != "hello" {
		t.Fatalf("Recv = %q, %v", got, err)
	}
	if err := tr.Send(0, []byte("back")); err != nil {
		t.Fatal(err)
	}
	got, err = ep0.Recv()
	if err != nil || string(got) != "back" {
		t.Fatalf("Recv = %q, %v", got, err)
	}
}

func TestChannelFIFOPerSender(t *testing.T) {
	f := NewChannelFabric(StripedRoute(1))
	tr := f.Process(0)
	ep, _ := tr.Register(0)
	const n = 1000
	for i := 0; i < n; i++ {
		if err := tr.Send(0, []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		got, err := ep.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if v := int(got[0]) | int(got[1])<<8; v != i {
			t.Fatalf("out of order: got %d at position %d", v, i)
		}
	}
}

func TestChannelTryRecv(t *testing.T) {
	f := NewChannelFabric(StripedRoute(1))
	tr := f.Process(0)
	ep, _ := tr.Register(0)
	if _, ok, err := ep.TryRecv(); ok || err != nil {
		t.Fatalf("TryRecv on empty = %v, %v", ok, err)
	}
	tr.Send(0, []byte("x"))
	data, ok, err := ep.TryRecv()
	if !ok || err != nil || string(data) != "x" {
		t.Fatalf("TryRecv = %q, %v, %v", data, ok, err)
	}
	ep.Close()
	if _, _, err := ep.TryRecv(); err != ErrClosed {
		t.Fatalf("TryRecv on closed = %v, want ErrClosed", err)
	}
}

func TestChannelRegistrationOwnership(t *testing.T) {
	f := NewChannelFabric(StripedRoute(2))
	p0 := f.Process(0)
	p1 := f.Process(1)
	if _, err := p0.Register(1); err == nil {
		t.Fatal("process 0 registered tile 1, which belongs to process 1")
	}
	if _, err := p1.Register(1); err != nil {
		t.Fatal(err)
	}
	if _, err := p1.Register(1); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestChannelSendToUnregistered(t *testing.T) {
	f := NewChannelFabric(StripedRoute(1))
	tr := f.Process(0)
	if err := tr.Send(5, []byte("x")); err == nil {
		t.Fatal("send to unregistered endpoint succeeded")
	}
}

func TestChannelCloseUnblocksRecv(t *testing.T) {
	f := NewChannelFabric(StripedRoute(1))
	tr := f.Process(0)
	ep, _ := tr.Register(0)
	done := make(chan error, 1)
	go func() {
		_, err := ep.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	f.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("Recv after close = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on close")
	}
	if err := tr.Send(0, []byte("x")); err != ErrClosed {
		t.Fatalf("Send after close = %v, want ErrClosed", err)
	}
}

func TestChannelConcurrentSenders(t *testing.T) {
	f := NewChannelFabric(StripedRoute(1))
	tr := f.Process(0)
	ep, _ := tr.Register(0)
	const senders, per = 8, 250
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := tr.Send(0, []byte{byte(s)}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	counts := make([]int, senders)
	for i := 0; i < senders*per; i++ {
		data, err := ep.Recv()
		if err != nil {
			t.Fatal(err)
		}
		counts[data[0]]++
	}
	wg.Wait()
	for s, n := range counts {
		if n != per {
			t.Fatalf("sender %d delivered %d of %d", s, n, per)
		}
	}
}

func tcpAddrs(t *testing.T, n int) []string {
	t.Helper()
	// Bind ephemeral listeners to find n free ports, then release them.
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := newEphemeralListener()
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

func TestTCPTwoProcesses(t *testing.T) {
	addrs := tcpAddrs(t, 2)
	route := StripedRoute(2)
	var trs [2]Transport
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			tr, err := DialTCP(TCPConfig{Proc: arch.ProcID(p), Procs: 2, Addrs: addrs, Route: route, DialTimeout: 5 * time.Second})
			trs[p], errs[p] = tr, err
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("proc %d: %v", p, err)
		}
	}
	defer trs[0].Close()
	defer trs[1].Close()

	ep0, err := trs[0].Register(0) // tile 0 -> proc 0
	if err != nil {
		t.Fatal(err)
	}
	ep1, err := trs[1].Register(1) // tile 1 -> proc 1
	if err != nil {
		t.Fatal(err)
	}

	if err := trs[0].Send(1, []byte("cross")); err != nil {
		t.Fatal(err)
	}
	got, err := ep1.Recv()
	if err != nil || string(got) != "cross" {
		t.Fatalf("cross-process Recv = %q, %v", got, err)
	}
	if err := trs[1].Send(0, []byte("reply")); err != nil {
		t.Fatal(err)
	}
	got, err = ep0.Recv()
	if err != nil || string(got) != "reply" {
		t.Fatalf("reply Recv = %q, %v", got, err)
	}
	// Local delivery on a TCP transport must not touch the network.
	if err := trs[0].Send(0, []byte("local")); err != nil {
		t.Fatal(err)
	}
	got, err = ep0.Recv()
	if err != nil || string(got) != "local" {
		t.Fatalf("local Recv = %q, %v", got, err)
	}
}

func TestTCPThreeProcessesAllPairs(t *testing.T) {
	const procs = 3
	addrs := tcpAddrs(t, procs)
	trs := make([]Transport, procs)
	var wg sync.WaitGroup
	errs := make([]error, procs)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			trs[p], errs[p] = DialTCP(TCPConfig{Proc: arch.ProcID(p), Procs: procs, Addrs: addrs, DialTimeout: 5 * time.Second})
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("proc %d: %v", p, err)
		}
	}
	eps := make([]Endpoint, procs)
	for p := 0; p < procs; p++ {
		ep, err := trs[p].Register(EndpointID(p)) // tile p lives on proc p when procs == tiles
		if err != nil {
			t.Fatal(err)
		}
		eps[p] = ep
		defer trs[p].Close()
	}
	for src := 0; src < procs; src++ {
		for dst := 0; dst < procs; dst++ {
			if src == dst {
				continue
			}
			msg := fmt.Sprintf("%d->%d", src, dst)
			if err := trs[src].Send(EndpointID(dst), []byte(msg)); err != nil {
				t.Fatalf("send %s: %v", msg, err)
			}
			got, err := eps[dst].Recv()
			if err != nil || string(got) != msg {
				t.Fatalf("recv %s = %q, %v", msg, got, err)
			}
		}
	}
}

func TestTCPRejectsForeignRegistration(t *testing.T) {
	addrs := tcpAddrs(t, 2)
	var trs [2]Transport
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			trs[p], _ = DialTCP(TCPConfig{Proc: arch.ProcID(p), Procs: 2, Addrs: addrs, DialTimeout: 5 * time.Second})
		}(p)
	}
	wg.Wait()
	defer trs[0].Close()
	defer trs[1].Close()
	if _, err := trs[0].Register(1); err == nil {
		t.Fatal("registered an endpoint owned by another process")
	}
}

func TestTCPOversizeFrameRejected(t *testing.T) {
	addrs := tcpAddrs(t, 2)
	var trs [2]Transport
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			trs[p], _ = DialTCP(TCPConfig{Proc: arch.ProcID(p), Procs: 2, Addrs: addrs, DialTimeout: 5 * time.Second})
		}(p)
	}
	wg.Wait()
	defer trs[0].Close()
	defer trs[1].Close()
	huge := make([]byte, maxFrame+1)
	if err := trs[0].Send(1, huge); err == nil {
		t.Fatal("oversize frame accepted")
	}
}

func TestTCPSendAfterCloseReturnsErrClosed(t *testing.T) {
	addrs := tcpAddrs(t, 2)
	var trs [2]Transport
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			trs[p], _ = DialTCP(TCPConfig{Proc: arch.ProcID(p), Procs: 2, Addrs: addrs, DialTimeout: 5 * time.Second})
		}(p)
	}
	wg.Wait()
	defer trs[1].Close()
	if trs[0] == nil || trs[1] == nil {
		t.Fatal("dial failed")
	}
	if _, err := trs[0].Register(0); err != nil {
		t.Fatal(err)
	}
	if err := trs[0].Close(); err != nil {
		t.Fatal(err)
	}
	// Local destination (tile 0) and remote destination (tile 1) must both
	// report the transport's closed state, not a raw connection error.
	if err := trs[0].Send(0, []byte("x")); err != ErrClosed {
		t.Fatalf("local Send after Close = %v, want ErrClosed", err)
	}
	if err := trs[0].Send(1, []byte("x")); err != ErrClosed {
		t.Fatalf("remote Send after Close = %v, want ErrClosed", err)
	}
	if err := trs[0].SendBatch(1, [][]byte{[]byte("a"), []byte("b")}); err != ErrClosed {
		t.Fatalf("remote SendBatch after Close = %v, want ErrClosed", err)
	}
}
