package transport

import (
	"testing"
	"time"

	"repro/internal/arch"
)

// TestEarlyFramesWaitForRegister is the regression test for the
// multi-process startup race: processes finish DialTCP together but
// register endpoints at their own pace, so a fast peer's first frames
// can arrive before the local Register. They must be held and delivered
// in order once the endpoint registers — dropping them loses protocol
// messages and hangs the simulation.
func TestEarlyFramesWaitForRegister(t *testing.T) {
	addrs := freeAddrs(t, 2)
	type dialed struct {
		tr  Transport
		err error
	}
	ch := make([]chan dialed, 2)
	for p := 0; p < 2; p++ {
		ch[p] = make(chan dialed, 1)
		go func(p int) {
			tr, err := DialTCP(TCPConfig{
				Proc: arch.ProcID(p), Procs: 2, Addrs: addrs,
				DialTimeout: 10 * time.Second,
			})
			ch[p] <- dialed{tr, err}
		}(p)
	}
	d0, d1 := <-ch[0], <-ch[1]
	if d0.err != nil || d1.err != nil {
		t.Fatalf("dial: %v / %v", d0.err, d1.err)
	}
	defer d0.tr.Close()
	defer d1.tr.Close()

	// Proc 0 sends to proc 1's endpoint 1 before proc 1 registers it —
	// a mix of single and batched frames to cover both delivery paths.
	const n = 6
	if err := d0.tr.Send(1, []byte{0}); err != nil {
		t.Fatal(err)
	}
	if err := d0.tr.SendBatch(1, [][]byte{{1}, {2}, {3}}); err != nil {
		t.Fatal(err)
	}
	if err := d0.tr.Send(1, []byte{4}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let the frames land pre-Register

	ep, err := d1.tr.Register(TileEndpoint(1))
	if err != nil {
		t.Fatal(err)
	}
	// And one more after registration: must queue behind the early ones.
	if err := d0.tr.Send(1, []byte{5}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got := recvOne(t, ep)
		if len(got) != 1 || got[0] != byte(i) {
			t.Fatalf("frame %d: got %v", i, got)
		}
	}
}

func recvOne(t *testing.T, ep Endpoint) []byte {
	t.Helper()
	type res struct {
		data []byte
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		data, err := ep.Recv()
		ch <- res{data, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatal(r.err)
		}
		return r.data
	case <-time.After(10 * time.Second):
		t.Fatal("frame never delivered")
	}
	panic("unreachable")
}
