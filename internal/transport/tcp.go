package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/arch"
)

// maxFrame bounds a single transport message (dst header + payload). The
// largest simulator messages are cache lines plus protocol headers and
// syscall buffers; 16 MiB is far above anything legitimate and protects
// against corrupt frames.
const maxFrame = 16 << 20

// batchFlag marks a coalesced frame in the length word of the wire header.
// The payload of a batch frame is a frame count followed by that many
// length-prefixed sub-frames, all destined for the same endpoint; the
// reader splits them and delivers each as an ordinary message, preserving
// order. maxFrame leaves the top bits of the length word free.
const batchFlag = 1 << 31

// helloMagic opens every fabric connection ("GMP\x01" little-endian). A
// peer that does not present it is not a Graphite transport at all —
// someone dialed the wrong port — and is rejected before any frame is
// interpreted.
const helloMagic = 0x01504D47

// tcpProto is the fabric wire-format version. It is pinned in the
// connection handshake: processes of one simulation may run on different
// machines from different builds, and a version skew must fail the dial
// loudly instead of mis-framing traffic. Bump on any change to the frame
// or handshake layout. Proto 3 added the run generation to the hello
// and welcome.
const tcpProto = 3

// hello is the 32-byte header the dialing process sends on a fresh
// connection: magic, proto, total process count, the dialer's ProcID,
// the fabric ID of the run, and the run generation. The acceptor
// validates all of them (the process count and fabric ID catch two
// simulations misconfigured onto each other — auto-allocated localhost
// ports can be recycled between concurrent runs; the generation catches
// a zombie worker from a pre-recovery attempt dialing into the re-forked
// fabric) and answers with a 24-byte welcome (magic, proto, fabric ID,
// generation) so the dialer can diagnose a skewed or foreign peer too.
// A zero fabric ID or generation means "unchecked" (manually launched
// multi-host runs share no generated ID); each is enforced only when
// both sides carry one.
func encodeHello(procs int, proc arch.ProcID, fabric, generation uint64) []byte {
	b := make([]byte, 32)
	binary.LittleEndian.PutUint32(b[0:4], helloMagic)
	binary.LittleEndian.PutUint32(b[4:8], tcpProto)
	binary.LittleEndian.PutUint32(b[8:12], uint32(procs))
	binary.LittleEndian.PutUint32(b[12:16], uint32(proc))
	binary.LittleEndian.PutUint64(b[16:24], fabric)
	binary.LittleEndian.PutUint64(b[24:32], generation)
	return b
}

// TCPConfig configures one process's attachment to a TCP fabric.
type TCPConfig struct {
	// Proc is this process's ID.
	Proc arch.ProcID
	// Procs is the total process count.
	Procs int
	// Addrs lists the listen address of every process, indexed by ProcID.
	Addrs []string
	// Route maps endpoints to owning processes.
	Route RouteFunc
	// DialTimeout bounds how long to wait for peers to come up.
	DialTimeout time.Duration
	// FabricID identifies this run; the handshake rejects peers carrying
	// a different non-zero ID, so two simulations racing over recycled
	// localhost ports cannot cross-connect. Zero disables the check.
	FabricID uint64
	// Generation is the recovery attempt number of this run (0 or 1 for
	// a first launch, incremented on each re-fork after a worker loss).
	// The handshake rejects peers carrying a different non-zero
	// generation, so a zombie worker from a dead attempt cannot join the
	// replacement fabric. Zero disables the check.
	Generation uint64
}

// tcpTransport implements Transport over a full mesh of TCP connections.
// The connection dialed from p to q carries only p→q traffic; each process
// accepts Procs-1 inbound connections and demultiplexes frames into local
// mailboxes by endpoint ID.
type tcpTransport struct {
	cfg      TCPConfig
	listener net.Listener

	mu    sync.RWMutex
	boxes map[EndpointID]*mailbox
	// pending holds inbound frames for endpoints this process has not
	// registered yet, in arrival order. Processes finish DialTCP together
	// but register endpoints at their own pace, so a fast peer's first
	// frames can beat the local Register; dropping them would lose
	// protocol messages and hang the simulation (a blocked core waits
	// forever for its reply). Register drains them into the new mailbox.
	pending map[EndpointID][][]byte
	peers   []*tcpPeer // indexed by ProcID; nil for self
	closed  bool

	wg sync.WaitGroup
}

type tcpPeer struct {
	mu   sync.Mutex
	conn net.Conn
	w    *bufio.Writer
}

// DialTCP attaches process cfg.Proc to the fabric: it listens on its own
// address, dials every other process (retrying until DialTimeout), and
// starts reader goroutines for inbound connections. All processes must
// call DialTCP concurrently.
func DialTCP(cfg TCPConfig) (Transport, error) {
	if cfg.Procs <= 0 || int(cfg.Proc) >= cfg.Procs {
		return nil, fmt.Errorf("transport: bad proc %d of %d", cfg.Proc, cfg.Procs)
	}
	if len(cfg.Addrs) != cfg.Procs {
		return nil, fmt.Errorf("transport: %d addrs for %d procs", len(cfg.Addrs), cfg.Procs)
	}
	if cfg.Route == nil {
		cfg.Route = StripedRoute(cfg.Procs)
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 30 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.Addrs[cfg.Proc])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.Addrs[cfg.Proc], err)
	}
	t := &tcpTransport{
		cfg:      cfg,
		listener: ln,
		boxes:    make(map[EndpointID]*mailbox),
		pending:  make(map[EndpointID][][]byte),
		peers:    make([]*tcpPeer, cfg.Procs),
	}

	// Accept inbound connections from the other Procs-1 processes. Each
	// must present a valid hello before its frames are trusted.
	accepted := make(chan error, 1)
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		var err error
		seen := make(map[arch.ProcID]bool)
		for i := 0; i < cfg.Procs-1; i++ {
			conn, aerr := ln.Accept()
			if aerr != nil {
				err = aerr
				break
			}
			from, herr := t.acceptHandshake(conn)
			if herr != nil {
				err = herr
				conn.Close()
				break
			}
			if seen[from] {
				err = fmt.Errorf("process %d connected twice", from)
				conn.Close()
				break
			}
			seen[from] = true
			t.wg.Add(1)
			go t.readLoop(conn)
		}
		accepted <- err
	}()

	// Dial outbound connections.
	var dialErr error
	for p := 0; p < cfg.Procs; p++ {
		if arch.ProcID(p) == cfg.Proc {
			continue
		}
		conn, err := dialHandshake(cfg, p)
		if err != nil {
			dialErr = err
			break
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		t.peers[p] = &tcpPeer{conn: conn, w: bufio.NewWriterSize(conn, 64<<10)}
	}
	if dialErr != nil {
		t.Close()
		return nil, dialErr
	}
	if err := <-accepted; err != nil {
		t.Close()
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	return t, nil
}

// acceptHandshake validates a fresh inbound connection's hello and answers
// with a welcome. It returns the dialing process's ID.
func (t *tcpTransport) acceptHandshake(conn net.Conn) (arch.ProcID, error) {
	conn.SetReadDeadline(time.Now().Add(t.cfg.DialTimeout))
	defer conn.SetReadDeadline(time.Time{})
	var hello [32]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return 0, fmt.Errorf("reading hello from %s: %w", conn.RemoteAddr(), err)
	}
	if m := binary.LittleEndian.Uint32(hello[0:4]); m != helloMagic {
		// Not a Graphite peer at all: do not answer, just reject.
		return 0, fmt.Errorf("%s is not a graphite transport peer (magic %#x)", conn.RemoteAddr(), m)
	}
	// Always answer a well-formed hello, even one we reject: the dialer is
	// a Graphite peer blocked on the welcome, and the reply lets it report
	// the version skew on its own side too.
	var welcome [24]byte
	binary.LittleEndian.PutUint32(welcome[0:4], helloMagic)
	binary.LittleEndian.PutUint32(welcome[4:8], tcpProto)
	binary.LittleEndian.PutUint64(welcome[8:16], t.cfg.FabricID)
	binary.LittleEndian.PutUint64(welcome[16:24], t.cfg.Generation)
	if _, err := conn.Write(welcome[:]); err != nil {
		return 0, fmt.Errorf("writing welcome to %s: %w", conn.RemoteAddr(), err)
	}
	if v := binary.LittleEndian.Uint32(hello[4:8]); v != tcpProto {
		return 0, fmt.Errorf("peer %s speaks transport proto %d, this build speaks %d", conn.RemoteAddr(), v, tcpProto)
	}
	if n := int(binary.LittleEndian.Uint32(hello[8:12])); n != t.cfg.Procs {
		return 0, fmt.Errorf("peer %s belongs to a %d-process fabric, this one has %d", conn.RemoteAddr(), n, t.cfg.Procs)
	}
	if f := binary.LittleEndian.Uint64(hello[16:24]); f != 0 && t.cfg.FabricID != 0 && f != t.cfg.FabricID {
		return 0, fmt.Errorf("peer %s belongs to a different run (fabric %#x, this one is %#x)", conn.RemoteAddr(), f, t.cfg.FabricID)
	}
	if g := binary.LittleEndian.Uint64(hello[24:32]); g != 0 && t.cfg.Generation != 0 && g != t.cfg.Generation {
		return 0, fmt.Errorf("peer %s belongs to run generation %d, this fabric is generation %d", conn.RemoteAddr(), g, t.cfg.Generation)
	}
	from := arch.ProcID(binary.LittleEndian.Uint32(hello[12:16]))
	if int(from) >= t.cfg.Procs || from == t.cfg.Proc {
		return 0, fmt.Errorf("peer %s claims invalid process ID %d", conn.RemoteAddr(), from)
	}
	return from, nil
}

// dialHandshake connects to process p (retrying until the config deadline
// — peers of a multi-host launch come up in any order) and completes the
// hello/welcome exchange.
func dialHandshake(cfg TCPConfig, p int) (net.Conn, error) {
	conn, err := dialRetry(cfg.Addrs[p], cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial proc %d (%s): %w", p, cfg.Addrs[p], err)
	}
	fail := func(err error) (net.Conn, error) {
		conn.Close()
		return nil, fmt.Errorf("transport: handshake with proc %d (%s): %w", p, cfg.Addrs[p], err)
	}
	if _, err := conn.Write(encodeHello(cfg.Procs, cfg.Proc, cfg.FabricID, cfg.Generation)); err != nil {
		return fail(err)
	}
	conn.SetReadDeadline(time.Now().Add(cfg.DialTimeout))
	var welcome [24]byte
	if _, err := io.ReadFull(conn, welcome[:]); err != nil {
		return fail(fmt.Errorf("reading welcome: %w", err))
	}
	conn.SetReadDeadline(time.Time{})
	if m := binary.LittleEndian.Uint32(welcome[0:4]); m != helloMagic {
		return fail(fmt.Errorf("not a graphite transport peer (magic %#x)", m))
	}
	if v := binary.LittleEndian.Uint32(welcome[4:8]); v != tcpProto {
		return fail(fmt.Errorf("peer speaks transport proto %d, this build speaks %d", v, tcpProto))
	}
	if f := binary.LittleEndian.Uint64(welcome[8:16]); f != 0 && cfg.FabricID != 0 && f != cfg.FabricID {
		return fail(fmt.Errorf("peer belongs to a different run (fabric %#x, this one is %#x)", f, cfg.FabricID))
	}
	if g := binary.LittleEndian.Uint64(welcome[16:24]); g != 0 && cfg.Generation != 0 && g != cfg.Generation {
		return fail(fmt.Errorf("peer belongs to run generation %d, this process is generation %d", g, cfg.Generation))
	}
	return conn, nil
}

func dialRetry(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	var lastErr error
	for attempt := 0; ; attempt++ {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("%w (gave up after %d attempts over %v)", lastErr, attempt+1, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (t *tcpTransport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 64<<10)
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		dst := EndpointID(int32(binary.LittleEndian.Uint32(hdr[4:8])))
		isBatch := n&batchFlag != 0
		n &^= batchFlag
		if n > maxFrame {
			return
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(r, data); err != nil {
			return
		}
		if !isBatch {
			t.deliverLocal(dst, data)
			continue
		}
		frames, ok := splitBatch(data)
		if !ok {
			return // corrupt batch framing; the connection is unusable
		}
		t.deliverLocalBatch(dst, frames)
	}
}

// splitBatch parses a batch payload into its sub-frames. The sub-frames
// alias data, which is fine: receivers own delivered frames and the buffer
// is never reused.
func splitBatch(data []byte) ([][]byte, bool) {
	if len(data) < 4 {
		return nil, false
	}
	count := binary.LittleEndian.Uint32(data[0:4])
	data = data[4:]
	// Every sub-frame costs at least 4 header bytes, so a valid count can
	// never exceed len(data)/4. Reject corrupt counts before sizing the
	// slice — a hostile value must not drive a huge allocation.
	if uint64(count) > uint64(len(data))/4 {
		return nil, false
	}
	frames := make([][]byte, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(data) < 4 {
			return nil, false
		}
		n := binary.LittleEndian.Uint32(data[0:4])
		if uint32(len(data)-4) < n {
			return nil, false
		}
		frames = append(frames, data[4:4+n])
		data = data[4+n:]
	}
	if len(data) != 0 {
		return nil, false
	}
	return frames, true
}

func (t *tcpTransport) deliverLocal(dst EndpointID, data []byte) {
	t.mu.RLock()
	b := t.boxes[dst]
	t.mu.RUnlock()
	if b != nil {
		b.put(data)
		return
	}
	t.stashPending(dst, data)
}

func (t *tcpTransport) deliverLocalBatch(dst EndpointID, frames [][]byte) {
	t.mu.RLock()
	b := t.boxes[dst]
	t.mu.RUnlock()
	if b != nil {
		b.putBatch(frames)
		return
	}
	t.stashPending(dst, frames...)
}

// stashPending queues frames for a not-yet-registered endpoint (the
// startup race described on the pending field). Frames arriving after
// Close are dropped — that is the shutdown race, and it is harmless
// because simulations quiesce before teardown.
func (t *tcpTransport) stashPending(dst EndpointID, frames ...[]byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if b := t.boxes[dst]; b != nil {
		// Register won the race; deliver normally (still in arrival
		// order: this readLoop is the only writer for its sender).
		b.putBatch(frames)
		return
	}
	if !t.closed {
		t.pending[dst] = append(t.pending[dst], frames...)
	}
}

// Register implements Transport.
func (t *tcpTransport) Register(id EndpointID) (Endpoint, error) {
	if owner := t.cfg.Route(id); owner != t.cfg.Proc {
		return nil, fmt.Errorf("transport: endpoint %d owned by process %d, registered from %d", id, owner, t.cfg.Proc)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if _, dup := t.boxes[id]; dup {
		return nil, fmt.Errorf("transport: endpoint %d registered twice", id)
	}
	b := newMailbox(id)
	t.boxes[id] = b
	// Drain frames that arrived before registration, preserving their
	// arrival order ahead of anything delivered from now on.
	if early := t.pending[id]; len(early) > 0 {
		delete(t.pending, id)
		b.putBatch(early)
	}
	return b, nil
}

// Send implements Transport.
func (t *tcpTransport) Send(dst EndpointID, data []byte) error {
	owner := t.cfg.Route(dst)
	if owner == t.cfg.Proc {
		t.mu.RLock()
		b := t.boxes[dst]
		closed := t.closed
		t.mu.RUnlock()
		if closed {
			return ErrClosed
		}
		if b == nil {
			return fmt.Errorf("transport: send to unregistered local endpoint %d", dst)
		}
		return b.put(data)
	}
	// The remote path must observe Close just like the local path does:
	// after Close the peer connections are being torn down, and letting a
	// send race them surfaces as a raw bufio/conn write error instead of
	// the documented ErrClosed.
	t.mu.RLock()
	closed := t.closed
	t.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if int(owner) >= len(t.peers) || t.peers[owner] == nil {
		return fmt.Errorf("transport: no connection to process %d", owner)
	}
	if len(data) > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(data))
	}
	p := t.peers[owner]
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(data)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(int32(dst)))
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, err := p.w.Write(hdr[:]); err != nil {
		return t.closedOr(err)
	}
	if _, err := p.w.Write(data); err != nil {
		return t.closedOr(err)
	}
	return t.closedOr(p.w.Flush())
}

// closedOr maps a peer write error to ErrClosed when Close raced the
// write: the pre-write closed check is check-then-act, so a Close landing
// between it and the conn write still surfaces here, and callers are
// promised ErrClosed — not a raw "use of closed network connection" —
// once Close has begun.
//
// A write error on a fabric that is NOT closing means a peer process is
// gone (killed, crashed, machine lost): the simulation cannot make
// progress without it, and every send path in the simulator treats
// ErrClosed — and only ErrClosed — as orderly teardown. So the first such
// error fails the whole fabric: Close the transport (idempotent, wakes
// every local receiver) and report ErrClosed, turning an unrecoverable
// distributed fault into the same local unwind a deliberate teardown
// takes. The supervisor (launch.Run, or graphited) decides whether to
// re-fork and replay.
func (t *tcpTransport) closedOr(err error) error {
	if err == nil {
		return nil
	}
	t.mu.RLock()
	closed := t.closed
	t.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	fmt.Fprintf(os.Stderr, "transport: fabric write failed (peer process lost?): %v\n", err)
	t.Close()
	return ErrClosed
}

// SendBatch implements Transport. Remote batches travel as one flagged
// frame — a single buffered write and flush for the whole batch instead of
// one per message.
// SendBatch implements Transport: one writer-lock acquisition and one
// framed write per destination burst.
//
//graphite:hotpath
func (t *tcpTransport) SendBatch(dst EndpointID, frames [][]byte) error {
	switch len(frames) {
	case 0:
		return nil
	case 1:
		return t.Send(dst, frames[0])
	}
	owner := t.cfg.Route(dst)
	if owner == t.cfg.Proc {
		t.mu.RLock()
		b := t.boxes[dst]
		closed := t.closed
		t.mu.RUnlock()
		if closed {
			return ErrClosed
		}
		if b == nil {
			return fmt.Errorf("transport: send to unregistered local endpoint %d", dst) //graphite:alloc error path; a misrouted endpoint aborts the run
		}
		return b.putBatch(frames)
	}
	t.mu.RLock()
	tClosed := t.closed
	t.mu.RUnlock()
	if tClosed {
		return ErrClosed
	}
	if int(owner) >= len(t.peers) || t.peers[owner] == nil {
		return fmt.Errorf("transport: no connection to process %d", owner) //graphite:alloc error path; a missing peer aborts the run
	}
	total := 4
	for _, f := range frames {
		total += 4 + len(f)
	}
	if total > maxFrame {
		// A batch this large is pathological; fall back to per-frame sends
		// rather than widening the frame format.
		for _, f := range frames {
			if err := t.Send(dst, f); err != nil {
				return err
			}
		}
		return nil
	}
	p := t.peers[owner]
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(total)|batchFlag)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(int32(dst)))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(frames)))
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, err := p.w.Write(hdr[:]); err != nil {
		return t.closedOr(err)
	}
	var sub [4]byte
	for _, f := range frames {
		binary.LittleEndian.PutUint32(sub[:], uint32(len(f)))
		if _, err := p.w.Write(sub[:]); err != nil {
			return t.closedOr(err)
		}
		if _, err := p.w.Write(f); err != nil {
			return t.closedOr(err)
		}
	}
	return t.closedOr(p.w.Flush())
}

// Close implements Transport.
func (t *tcpTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	boxes := make([]*mailbox, 0, len(t.boxes))
	for _, b := range t.boxes {
		boxes = append(boxes, b)
	}
	t.mu.Unlock()

	for _, b := range boxes {
		b.Close()
	}
	if t.listener != nil {
		t.listener.Close()
	}
	for _, p := range t.peers {
		if p != nil {
			p.conn.Close()
		}
	}
	return nil
}
