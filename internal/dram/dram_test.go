package dram

import (
	"bytes"
	"testing"

	"repro/internal/arch"
	"repro/internal/clock"
	"repro/internal/config"
)

func newCtl(tiles int, queue bool) *Controller {
	cfg := config.Default()
	cfg.Tiles = tiles
	cfg.DRAM.QueueModel = queue
	return New(&cfg, clock.NewProgressWindow(tiles))
}

func TestReadUnwrittenLineIsZero(t *testing.T) {
	c := newCtl(4, false)
	dst := bytes.Repeat([]byte{0xFF}, 64)
	lat := c.ReadLine(10, dst, 0)
	if lat <= 0 {
		t.Fatalf("latency = %d", lat)
	}
	for _, b := range dst {
		if b != 0 {
			t.Fatal("unwritten DRAM not zero")
		}
	}
}

func TestWriteThenRead(t *testing.T) {
	c := newCtl(4, false)
	src := bytes.Repeat([]byte{0x5A}, 64)
	c.WriteLine(3, src, 0)
	dst := make([]byte, 64)
	c.ReadLine(3, dst, 0)
	if !bytes.Equal(dst, src) {
		t.Fatal("readback mismatch")
	}
	if c.Reads != 1 || c.Writes != 1 {
		t.Fatalf("counters: %d reads %d writes", c.Reads, c.Writes)
	}
}

func TestWriteCopiesBuffer(t *testing.T) {
	c := newCtl(4, false)
	src := make([]byte, 64)
	src[0] = 1
	c.WriteLine(0, src, 0)
	src[0] = 2
	dst := make([]byte, 64)
	c.ReadLine(0, dst, 0)
	if dst[0] != 1 {
		t.Fatal("DRAM aliased caller buffer")
	}
}

func TestServiceTimeScalesWithTiles(t *testing.T) {
	// Table 1: total bandwidth is fixed, so doubling tiles doubles the
	// per-controller service time.
	a := newCtl(16, false)
	b := newCtl(32, false)
	if b.ServiceTime() < 2*a.ServiceTime()-1 || b.ServiceTime() > 2*a.ServiceTime()+1 {
		t.Fatalf("service time 16 tiles = %d, 32 tiles = %d; want ~2x", a.ServiceTime(), b.ServiceTime())
	}
}

func TestQueueingDelayGrowsUnderLoad(t *testing.T) {
	c := newCtl(32, true)
	dst := make([]byte, 64)
	first := c.ReadLine(0, dst, 1000)
	var last arch.Cycles
	for i := 0; i < 20; i++ {
		last = c.ReadLine(uint64(i), dst, 1000)
	}
	if last <= first {
		t.Fatalf("no queueing under load: first %d, last %d", first, last)
	}
	if c.TotalQueueDelay == 0 {
		t.Fatal("queue delay not accounted")
	}
}

func TestNoQueueModelFixedLatency(t *testing.T) {
	c := newCtl(32, false)
	dst := make([]byte, 64)
	a := c.ReadLine(0, dst, 1000)
	for i := 0; i < 20; i++ {
		c.ReadLine(uint64(i), dst, 1000)
	}
	b := c.ReadLine(99, dst, 1000)
	if a != b {
		t.Fatalf("latency varied without queue model: %d vs %d", a, b)
	}
}

func TestPeekPoke(t *testing.T) {
	c := newCtl(4, false)
	c.Poke(7, 8, []byte{1, 2, 3})
	got := make([]byte, 3)
	c.Peek(7, 8, got)
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("peek = %v", got)
	}
	// Peek of untouched line yields zeros.
	got2 := []byte{9, 9}
	c.Peek(100, 0, got2)
	if got2[0] != 0 || got2[1] != 0 {
		t.Fatal("peek of cold line not zero")
	}
	if c.Reads != 0 || c.Writes != 0 {
		t.Fatal("peek/poke affected timing counters")
	}
	if c.Lines() != 1 {
		t.Fatalf("Lines() = %d, want 1 (Peek must not allocate)", c.Lines())
	}
}
