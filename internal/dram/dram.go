// Package dram models the memory controllers of the target architecture
// (paper §3.2, Table 1). The default target places one controller at every
// tile, splitting total off-chip bandwidth evenly; per-access service time
// therefore grows with the tile count, which is the effect behind the
// memory-latency saturation discussed with Figure 9.
//
// The controller also owns the functional backing store for the lines
// homed at its tile: the "DRAM contents" of that slice of the simulated
// address space. Only the home tile's memory server touches the backing
// store, so it needs no locking.
package dram

import (
	"math"

	"repro/internal/arch"
	"repro/internal/clock"
	"repro/internal/config"
	"repro/internal/queuemodel"
)

// Controller is one tile's DRAM controller.
type Controller struct {
	latency  arch.Cycles
	service  arch.Cycles // per-line service time from partitioned bandwidth
	queue    *queuemodel.Queue
	lineSize int

	store map[uint64][]byte // line address -> line data
	// slab carves line buffers in chunks: one allocation per
	// dramSlabLines lines touched instead of one per line.
	slab []byte

	// Statistics.
	Reads, Writes   uint64
	TotalQueueDelay arch.Cycles
}

// dramSlabLines is the slab chunk size in lines.
const dramSlabLines = 256

// lineBuf carves storage for one newly touched line.
func (c *Controller) lineBuf() []byte {
	if len(c.slab) < c.lineSize {
		c.slab = make([]byte, dramSlabLines*c.lineSize)
	}
	b := c.slab[:c.lineSize:c.lineSize]
	c.slab = c.slab[c.lineSize:]
	return b
}

// New builds a controller. cfg supplies bandwidth partitioning (via the
// whole-simulation config, which knows the tile count and clock), progress
// feeds the lax queue model (may be nil to disable queue modeling).
func New(cfg *config.Config, progress *clock.ProgressWindow) *Controller {
	bytesPerCycle := cfg.BytesPerCyclePerController()
	service := arch.Cycles(math.Ceil(float64(cfg.LineSize()) / bytesPerCycle))
	c := &Controller{
		latency:  cfg.DRAM.AccessLatency,
		service:  service,
		lineSize: cfg.LineSize(),
		store:    make(map[uint64][]byte),
	}
	if cfg.DRAM.QueueModel && progress != nil {
		c.queue = queuemodel.New(progress)
	}
	return c
}

// ServiceTime returns the modeled per-line service time.
func (c *Controller) ServiceTime() arch.Cycles { return c.service }

// ReadLine returns the latency of a line read beginning at time now and
// copies the line's data into dst (zeros if never written). dst must be
// lineSize bytes.
func (c *Controller) ReadLine(line uint64, dst []byte, now arch.Cycles) arch.Cycles {
	c.Reads++
	lat := c.access(now)
	if data, ok := c.store[line]; ok {
		copy(dst, data)
	} else {
		for i := range dst {
			dst[i] = 0
		}
	}
	return lat
}

// WriteLine stores a line (a writeback) and returns the modeled latency.
func (c *Controller) WriteLine(line uint64, src []byte, now arch.Cycles) arch.Cycles {
	c.Writes++
	lat := c.access(now)
	buf, ok := c.store[line]
	if !ok {
		buf = c.lineBuf()
		c.store[line] = buf
	}
	copy(buf, src)
	return lat
}

// Peek reads bytes functionally with no timing effects. It is valid only
// when no cache holds the addressed line dirty (pre-run or post-flush).
func (c *Controller) Peek(line uint64, off int, dst []byte) {
	if data, ok := c.store[line]; ok {
		copy(dst, data[off:off+len(dst)])
		return
	}
	for i := range dst {
		dst[i] = 0
	}
}

// Poke writes bytes functionally with no timing effects (same caveat as
// Peek).
func (c *Controller) Poke(line uint64, off int, src []byte) {
	buf, ok := c.store[line]
	if !ok {
		buf = c.lineBuf()
		c.store[line] = buf
	}
	copy(buf[off:], src)
}

func (c *Controller) access(now arch.Cycles) arch.Cycles {
	lat := c.latency + c.service
	if c.queue != nil {
		d := c.queue.Delay(now, c.service)
		c.TotalQueueDelay += d
		lat += d
	}
	return lat
}

// Lines returns the number of distinct lines ever touched (diagnostics).
func (c *Controller) Lines() int { return len(c.store) }
