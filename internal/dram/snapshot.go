package dram

import (
	"sort"

	"repro/internal/arch"
	"repro/internal/checkpoint"
)

// Capture snapshots the controller's functional backing store (lines in
// ascending address order, so the encoding is canonical) and its
// counters. The lax queue model's window state is deliberately excluded:
// it shapes contention latency, not architectural state, and recovery
// re-derives it by deterministic replay (DESIGN.md §18).
func (c *Controller) Capture() *checkpoint.DRAMState {
	s := &checkpoint.DRAMState{
		Lines:           make([]checkpoint.DRAMLine, 0, len(c.store)),
		Reads:           c.Reads,
		Writes:          c.Writes,
		TotalQueueDelay: int64(c.TotalQueueDelay),
	}
	//graphite:maporder lines are sorted by address below, so iteration
	// order never reaches the snapshot.
	for line, data := range c.store {
		s.Lines = append(s.Lines, checkpoint.DRAMLine{Addr: line, Data: append([]byte(nil), data...)})
	}
	sort.Slice(s.Lines, func(i, j int) bool { return s.Lines[i].Addr < s.Lines[j].Addr })
	return s
}

// Restore replaces the controller's backing store and counters with a
// snapshot taken by Capture on an identically configured controller.
func (c *Controller) Restore(s *checkpoint.DRAMState) {
	c.store = make(map[uint64][]byte, len(s.Lines))
	c.slab = nil
	for _, ln := range s.Lines {
		buf := c.lineBuf()
		copy(buf, ln.Data)
		c.store[ln.Addr] = buf
	}
	c.Reads = s.Reads
	c.Writes = s.Writes
	c.TotalQueueDelay = arch.Cycles(s.TotalQueueDelay)
}
