package synchro

import (
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/config"
)

func TestLaxNeverBlocks(t *testing.T) {
	m := NewLax()
	for i := 0; i < 100; i++ {
		m.Tick(arch.Cycles(i * 1_000_000))
	}
}

func TestBarrierWaitsAtQuantumBoundaries(t *testing.T) {
	var epochs []int64
	m := NewBarrier(1000, func(e int64) { epochs = append(epochs, e) })
	m.Tick(500) // before first boundary: no wait
	if len(epochs) != 0 {
		t.Fatalf("waited before quantum: %v", epochs)
	}
	m.Tick(1000) // boundary 1
	m.Tick(3500) // clock jumped to epoch 3: waits there directly
	want := []int64{1, 3}
	if len(epochs) != len(want) {
		t.Fatalf("epochs = %v, want %v", epochs, want)
	}
	for i := range want {
		if epochs[i] != want[i] {
			t.Fatalf("epochs = %v, want %v", epochs, want)
		}
	}
	// No re-wait within an already-reached epoch.
	m.Tick(3600)
	if len(epochs) != 2 {
		t.Fatalf("re-waited: %v", epochs)
	}
	// Monotonic progress: steady ticking waits at each new boundary.
	m.Tick(4000)
	m.Tick(5000)
	if epochs[len(epochs)-1] != 5 || len(epochs) != 4 {
		t.Fatalf("epochs = %v", epochs)
	}
}

func TestBarrierZeroQuantumSafe(t *testing.T) {
	m := NewBarrier(0, func(int64) {})
	m.Tick(5) // must not divide by zero or loop forever
}

func newTestP2P(self arch.TileID, tiles int, partnerClock arch.Cycles, probed *[]arch.TileID, naps *[]time.Duration) *p2p {
	cfg := config.SyncConfig{P2PSlack: 1000, P2PInterval: 100}
	m := NewP2P(cfg, self, tiles, 42,
		func(target arch.TileID) (arch.Cycles, bool) {
			*probed = append(*probed, target)
			return partnerClock, true
		},
		func(d time.Duration) { *naps = append(*naps, d) },
	).(*p2p)
	// Deterministic wall clock: 1 second since start.
	start := time.Now()
	m.start = start
	m.nowFn = func() time.Time { return start.Add(time.Second) }
	return m
}

func TestP2PSleepsWhenAhead(t *testing.T) {
	var probed []arch.TileID
	var naps []time.Duration
	m := newTestP2P(0, 4, 1000, &probed, &naps)
	m.Tick(100_000) // we are at 100k, partner at 1k: 99k ahead >> slack
	if len(probed) != 1 {
		t.Fatalf("probes = %v", probed)
	}
	if len(naps) != 1 {
		t.Fatal("no nap despite being far ahead")
	}
	// rate = 100_000 cycles/sec, lead = 99_000 -> nap 0.99 s, capped at
	// maxNap (100 ms).
	if naps[0] != m.maxNap {
		t.Fatalf("nap = %v, want cap %v", naps[0], m.maxNap)
	}
}

func TestP2PNoSleepWithinSlack(t *testing.T) {
	var probed []arch.TileID
	var naps []time.Duration
	m := newTestP2P(0, 4, 99_500, &probed, &naps)
	m.Tick(100_000) // only 500 ahead, slack is 1000
	if len(naps) != 0 {
		t.Fatalf("napped within slack: %v", naps)
	}
}

func TestP2PNoSleepWhenBehind(t *testing.T) {
	var probed []arch.TileID
	var naps []time.Duration
	m := newTestP2P(0, 4, 10_000_000, &probed, &naps)
	m.Tick(100_000)
	if len(naps) != 0 {
		t.Fatalf("napped while behind: %v", naps)
	}
}

func TestP2PRespectsInterval(t *testing.T) {
	var probed []arch.TileID
	var naps []time.Duration
	m := newTestP2P(0, 4, 0, &probed, &naps)
	m.Tick(100)
	m.Tick(150) // within interval of the last probe
	if len(probed) != 1 {
		t.Fatalf("probed %d times, want 1", len(probed))
	}
	m.Tick(250)
	if len(probed) != 2 {
		t.Fatalf("probed %d times, want 2", len(probed))
	}
}

func TestP2PNeverProbesSelf(t *testing.T) {
	var probed []arch.TileID
	var naps []time.Duration
	m := newTestP2P(2, 8, 0, &probed, &naps)
	for i := 1; i <= 200; i++ {
		m.Tick(arch.Cycles(i * 100))
	}
	for _, p := range probed {
		if p == 2 {
			t.Fatal("tile probed itself")
		}
		if p < 0 || p >= 8 {
			t.Fatalf("probe target %v out of range", p)
		}
	}
	if len(probed) == 0 {
		t.Fatal("no probes")
	}
}

func TestP2PSingleTileNoop(t *testing.T) {
	var probed []arch.TileID
	var naps []time.Duration
	m := newTestP2P(0, 1, 0, &probed, &naps)
	m.Tick(1_000_000)
	if len(probed) != 0 {
		t.Fatal("single-tile simulation probed")
	}
}

func TestNapFor(t *testing.T) {
	if d := NapFor(1000, 1000); d != time.Second {
		t.Fatalf("NapFor(1000 cycles, 1000 cyc/s) = %v, want 1s", d)
	}
	if d := NapFor(500, 1000); d != 500*time.Millisecond {
		t.Fatalf("NapFor = %v", d)
	}
	if NapFor(-5, 1000) != 0 || NapFor(100, 0) != 0 {
		t.Fatal("degenerate inputs must nap 0")
	}
}

func TestP2PRateAnchorsAtFirstTick(t *testing.T) {
	var naps []time.Duration
	cfg := config.SyncConfig{P2PSlack: 1000, P2PInterval: 100}
	m := NewP2P(cfg, 0, 2, 7,
		func(arch.TileID) (arch.Cycles, bool) { return 0, true }, // partner far behind
		func(d time.Duration) { naps = append(naps, d) },
	).(*p2p)
	now := time.Unix(1000, 0)
	m.nowFn = func() time.Time { return now }
	m.maxNap = time.Hour // expose the raw nap computation

	// A thread spawned mid-simulation inherits a clock of 1M cycles. Its
	// first Tick must open the rate-measurement window here — zero elapsed
	// wall time, 1M-cycle baseline — so no rate exists yet and no nap is
	// taken even though the partner is far behind.
	m.Tick(1_000_000)
	if len(naps) != 0 {
		t.Fatalf("napped on the anchoring tick: %v", naps)
	}

	// One real second later it has executed 100k further cycles: the rate
	// is 100k cycles/sec measured from the first Tick. The old
	// construction-time anchor folded the inherited 1M cycles into the
	// rate (1.1M cyc/s here — 11x overstated), cutting naps to a
	// fraction of what the partner needs to catch up.
	now = now.Add(time.Second)
	m.Tick(1_100_000)
	if len(naps) != 1 {
		t.Fatalf("naps = %v, want exactly one", naps)
	}
	if want := NapFor(1_100_000, 100_000); naps[0] != want {
		t.Fatalf("nap = %v, want %v (rate measured from first tick)", naps[0], want)
	}
}
