package synchro

import (
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/arch"
)

// batchRecorder captures flushed batches.
type batchRecorder struct {
	mu      sync.Mutex
	batches [][]EpochWait
}

func (r *batchRecorder) flush(ws []EpochWait) {
	r.mu.Lock()
	cp := append([]EpochWait(nil), ws...)
	r.batches = append(r.batches, cp)
	r.mu.Unlock()
}

func (r *batchRecorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.batches)
}

func (r *batchRecorder) last() []EpochWait {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.batches) == 0 {
		return nil
	}
	cp := append([]EpochWait(nil), r.batches[len(r.batches)-1]...)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Tile < cp[j].Tile })
	return cp
}

// wait runs l.Wait on its own goroutine and returns a channel closed when
// it returns.
func wait(l *Ledger, tile arch.TileID, epoch int64) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		l.Wait(tile, epoch)
		close(done)
	}()
	return done
}

func settle() { time.Sleep(10 * time.Millisecond) }

func TestLedgerFlushesWhenAllActiveWait(t *testing.T) {
	rec := &batchRecorder{}
	l := NewLedger(rec.flush)
	l.ThreadStarted(0)
	l.ThreadStarted(1)

	d0 := wait(l, 0, 3)
	settle()
	// Tile 1 still runs: tile 0's wait must be held locally.
	if rec.count() != 0 {
		t.Fatalf("flushed with a thread running: %v", rec.batches)
	}
	d1 := wait(l, 1, 3)
	settle()
	if rec.count() != 1 {
		t.Fatalf("flush count %d, want 1", rec.count())
	}
	got := rec.last()
	want := []EpochWait{{Tile: 0, Epoch: 3}, {Tile: 1, Epoch: 3}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("batch %v, want %v", got, want)
	}

	l.Release(3)
	<-d0
	<-d1
}

func TestLedgerBlockedThreadCompletesRound(t *testing.T) {
	rec := &batchRecorder{}
	l := NewLedger(rec.flush)
	l.ThreadStarted(0)
	l.ThreadStarted(1)

	d0 := wait(l, 0, 1)
	settle()
	if rec.count() != 0 {
		t.Fatal("premature flush")
	}
	// Tile 1 blocks in a control-plane RPC: it cannot wait this round, so
	// the ledger must forward tile 0's wait now (the MCP excludes blocked
	// threads from its release condition).
	l.SetBlocked(1, true)
	settle()
	if rec.count() != 1 {
		t.Fatalf("flush count %d after block, want 1", rec.count())
	}
	if got := rec.last(); len(got) != 1 || got[0] != (EpochWait{Tile: 0, Epoch: 1}) {
		t.Fatalf("batch %v", got)
	}
	// Unblocking must not re-send anything.
	l.SetBlocked(1, false)
	settle()
	if rec.count() != 1 {
		t.Fatal("unblock triggered a flush")
	}
	// Tile 1 reaches the barrier later: a second batch with only its wait.
	d1 := wait(l, 1, 1)
	settle()
	if rec.count() != 2 {
		t.Fatalf("flush count %d, want 2", rec.count())
	}
	if got := rec.last(); len(got) != 1 || got[0] != (EpochWait{Tile: 1, Epoch: 1}) {
		t.Fatalf("batch %v", got)
	}

	l.Release(1)
	<-d0
	<-d1
}

func TestLedgerReleaseWakesExactEpochOnly(t *testing.T) {
	rec := &batchRecorder{}
	l := NewLedger(rec.flush)
	l.ThreadStarted(0)
	l.ThreadStarted(1)

	d0 := wait(l, 0, 2) // straggler epoch
	d1 := wait(l, 1, 5) // jumped ahead
	settle()
	l.Release(2)
	<-d0
	select {
	case <-d1:
		t.Fatal("epoch-5 waiter woken by epoch-2 release")
	case <-time.After(10 * time.Millisecond):
	}
	l.Release(5)
	<-d1
}

func TestLedgerThreadExitCompletesRound(t *testing.T) {
	rec := &batchRecorder{}
	l := NewLedger(rec.flush)
	l.ThreadStarted(0)
	l.ThreadStarted(1)

	d0 := wait(l, 0, 1)
	settle()
	if rec.count() != 0 {
		t.Fatal("premature flush")
	}
	l.ThreadExited(1)
	settle()
	if rec.count() != 1 {
		t.Fatalf("flush count %d after exit, want 1", rec.count())
	}
	l.Release(1)
	<-d0
}

func TestLedgerCloseWakesAndDisables(t *testing.T) {
	rec := &batchRecorder{}
	l := NewLedger(rec.flush)
	l.ThreadStarted(0)
	l.ThreadStarted(1)
	d0 := wait(l, 0, 1)
	l.Close()
	select {
	case <-d0:
	case <-time.After(time.Second):
		t.Fatal("Close did not wake parked waiter")
	}
	// Post-close waits return immediately instead of parking forever.
	done := wait(l, 1, 2)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("post-close Wait parked")
	}
}
