// Package synchro implements Graphite's simulation synchronization models
// (paper §3.6): Lax (free-running clocks synchronized only by application
// events), LaxBarrier (a global barrier every quantum of simulated cycles,
// the accuracy baseline), and LaxP2P (random point-to-point clock
// comparison where a tile that runs ahead of its partner by more than the
// slack sleeps in real time until the partner catches up).
//
// A model's Tick is invoked by the thread runtime after every application
// event. Models gate wall-clock execution only; they never advance
// simulated clocks.
package synchro

import (
	"time"

	"repro/internal/arch"
	"repro/internal/config"
)

// prng is a splitmix64 generator owned by one model. LaxP2P previously
// drew partner picks from a math/rand.Rand per model; splitmix64 keeps
// the per-model ownership (no locks, no shared global source) in eight
// lines of arithmetic, and its full-period 64-bit state cannot degenerate
// for any seed — including zero.
type prng struct{ state uint64 }

func newPRNG(seed int64) *prng { return &prng{state: uint64(seed)} }

func (p *prng) next() uint64 {
	p.state += 0x9E3779B97F4A7C15
	z := p.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a value in [0, n). Partner selection needs uniformity only
// to balance probe load, so the negligible modulo bias (n is a tile
// count, far below 2^63) is acceptable.
func (p *prng) intn(n int) int { return int(p.next() % uint64(n)) }

// Model is one synchronization scheme, owned by a single thread.
type Model interface {
	// Tick is called with the tile's current simulated clock. It may
	// block (barrier) or sleep (P2P) in real time.
	Tick(now arch.Cycles)
}

// lax is the baseline: no extra synchronization.
type lax struct{}

// NewLax returns the lax synchronization model.
func NewLax() Model { return lax{} }

// Tick implements Model.
func (lax) Tick(arch.Cycles) {}

// barrier implements LaxBarrier via a wait function provided by the
// runtime (an RPC to the MCP's simulation-barrier service).
type barrier struct {
	quantum arch.Cycles
	epoch   int64
	wait    func(epoch int64)
}

// NewBarrier returns a LaxBarrier model. wait blocks until every active,
// unblocked thread has reached the given epoch.
func NewBarrier(quantum arch.Cycles, wait func(epoch int64)) Model {
	if quantum <= 0 {
		quantum = 1
	}
	return &barrier{quantum: quantum, wait: wait}
}

// Tick implements Model: the thread stops at the quantum boundary its
// clock has reached. A synchronization event can jump a clock across many
// quanta at once (a barrier release or message receive); the thread then
// waits at its new epoch directly — the barrier service releases the
// lowest pending epoch, so stragglers catch up boundary by boundary while
// jumped threads wait, and no thread can run more than one quantum past
// the slowest active one.
func (b *barrier) Tick(now arch.Cycles) {
	target := int64(now / b.quantum)
	if target > b.epoch {
		b.epoch = target
		b.wait(target)
	}
}

// ProbeFunc asks a tile for its current clock. ok is false if the probe
// could not be answered (teardown).
type ProbeFunc func(target arch.TileID) (arch.Cycles, bool)

// p2p implements LaxP2P.
type p2p struct {
	cfg   config.SyncConfig
	self  arch.TileID
	tiles int
	rng   *prng
	probe ProbeFunc
	sleep func(time.Duration)
	// start/base anchor the rate measurement: the wall-clock time and the
	// tile's simulated clock at the first Tick. Anchoring the wall clock
	// alone at construction mis-scales the rate of a thread spawned
	// mid-simulation: its clock starts at a large inherited value, so
	// cycles it never executed are divided by only its own wall time —
	// an overstated rate, naps far too short to let partners catch up
	// (and, had construction preceded the thread's start by long enough,
	// the opposite error). Both anchors must open at the same event.
	start  time.Time
	base   arch.Cycles
	nowFn  func() time.Time
	last   arch.Cycles
	maxNap time.Duration
}

// NewP2P returns a LaxP2P model for one tile. probe reads a random
// partner's clock; sleep is time.Sleep (injectable for tests).
//
//graphite:wallclock LaxP2P pacing (paper §3.6.3): the wall clock and sleep only throttle host execution speed; naps never advance or feed a simulated clock, so results are unaffected
func NewP2P(cfg config.SyncConfig, self arch.TileID, tiles int, seed int64, probe ProbeFunc, sleep func(time.Duration)) Model {
	if sleep == nil {
		sleep = time.Sleep
	}
	return &p2p{
		cfg:    cfg,
		self:   self,
		tiles:  tiles,
		rng:    newPRNG(seed ^ int64(self)*0x5851F42D4C957F2D),
		probe:  probe,
		sleep:  sleep,
		nowFn:  time.Now,
		maxNap: 10 * time.Millisecond,
	}
}

// Tick implements Model: every P2PInterval simulated cycles the tile
// synchronizes with one random partner. If this tile is ahead by more than
// the slack, it naps for s = c/r real seconds, where c is the clock
// difference and r the tile's real-time simulation rate, so the partner
// has caught up when it wakes (paper §3.6.3).
func (p *p2p) Tick(now arch.Cycles) {
	if p.start.IsZero() {
		// Lazy anchor: the rate window opens at the thread's first event,
		// not at model construction (see the field comment).
		p.start = p.nowFn()
		p.base = now
	}
	if p.tiles < 2 || now-p.last < p.cfg.P2PInterval {
		return
	}
	p.last = now
	target := arch.TileID(p.rng.intn(p.tiles - 1))
	if target >= p.self {
		target++
	}
	theirs, ok := p.probe(target)
	if !ok {
		return
	}
	c := now - theirs
	if c <= p.cfg.P2PSlack {
		return
	}
	elapsed := p.nowFn().Sub(p.start).Seconds()
	if elapsed <= 0 {
		return
	}
	rate := float64(now-p.base) / elapsed // simulated cycles per real second
	if rate <= 0 {
		return
	}
	nap := time.Duration(float64(c) / rate * float64(time.Second))
	if nap > p.maxNap {
		nap = p.maxNap
	}
	if nap > 0 {
		p.sleep(nap)
	}
}

// NapFor exposes the sleep computation for tests and analysis: given a
// clock lead c and rate r (cycles/sec), the nap is c/r seconds.
func NapFor(c arch.Cycles, rate float64) time.Duration {
	if rate <= 0 || c <= 0 {
		return 0
	}
	return time.Duration(float64(c) / rate * float64(time.Second))
}
