package synchro

import (
	"sync"

	"repro/internal/arch"
)

// EpochWait is one tile's pending LaxBarrier wait: the tile and the epoch
// its clock has reached.
type EpochWait struct {
	Tile  arch.TileID
	Epoch int64
}

// Ledger aggregates the LaxBarrier waits of one host process's tiles into
// batches. Without it, every thread crossing a quantum boundary performs
// its own RPC to the MCP's simulation-barrier service — at a thousand
// tiles, a thousand control-plane round trips per quantum, all landing on
// one server goroutine. The ledger instead parks waiting threads locally
// and forwards their waits to the MCP in one batch message per process
// once every local thread has stopped: a quantum then costs roughly one
// sync message per worker process, not one per tile.
//
// Correctness does not move here. The MCP remains the sole authority on
// when an epoch releases (every running, non-service-blocked thread
// waiting — see mcp.Server.recheckSimBarrier); the ledger only decides
// when waits are *transported* to it. A batch is flushed as soon as no
// local thread can produce further waits for the current round: every
// locally active thread is either parked at the ledger or blocked in a
// control-plane RPC / application receive (rpcBlocked). Holding waits
// while some local thread still runs delays nothing, because the MCP
// cannot release while that thread is counted active anyway; and every
// local transition that could complete the round — a new wait, a thread
// blocking, a thread exiting — re-evaluates the flush condition, so no
// wait is held once the round is quiescent. See DESIGN.md §16 for the
// full ordering argument.
type Ledger struct {
	// flush transports one batch of waits to the MCP. It is called outside
	// the ledger lock; per-tile ordering is still serial because a tile
	// cannot register a new wait until its previous one was released.
	flush func([]EpochWait)

	mu sync.Mutex
	// cond signals epoch releases and Close to parked threads. One
	// condition shared by every slot keeps the steady-state wait path
	// allocation-free (a per-wait channel would be one allocation per
	// tile per quantum); stragglers woken by a foreign epoch's broadcast
	// re-check their slot and park again.
	cond   sync.Cond
	slots  map[arch.TileID]*ledgerSlot
	closed bool
}

// ledgerSlot tracks one local tile's thread.
type ledgerSlot struct {
	active  bool // thread running on this tile
	blocked bool // blocked in a control-plane RPC or app receive
	waiting bool // parked at a barrier epoch
	flushed bool // current wait already transported to the MCP
	epoch   int64
}

// NewLedger builds a ledger whose batches are delivered by flush
// (typically a system-class send from the process's LCP endpoint to the
// MCP).
func NewLedger(flush func([]EpochWait)) *Ledger {
	l := &Ledger{flush: flush, slots: make(map[arch.TileID]*ledgerSlot)}
	l.cond.L = &l.mu
	return l
}

func (l *Ledger) slot(tile arch.TileID) *ledgerSlot {
	s := l.slots[tile]
	if s == nil {
		s = &ledgerSlot{}
		l.slots[tile] = s
	}
	return s
}

// ThreadStarted records that an application thread now runs on tile.
func (l *Ledger) ThreadStarted(tile arch.TileID) {
	l.mu.Lock()
	s := l.slot(tile)
	s.active = true
	s.blocked = false
	s.waiting = false
	l.mu.Unlock()
}

// ThreadExited records that tile's thread returned, and flushes any round
// its exit completes.
func (l *Ledger) ThreadExited(tile arch.TileID) {
	l.mu.Lock()
	s := l.slot(tile)
	s.active = false
	batch := l.takeBatchLocked()
	l.mu.Unlock()
	l.send(batch)
}

// SetBlocked records a tile's rpcBlocked transition. Entering the blocked
// state can complete a round (the tile can produce no wait until it
// returns), so it may trigger a flush; leaving it never does.
func (l *Ledger) SetBlocked(tile arch.TileID, blocked bool) {
	l.mu.Lock()
	s := l.slot(tile)
	s.blocked = blocked
	var batch []EpochWait
	if blocked {
		batch = l.takeBatchLocked()
	}
	l.mu.Unlock()
	l.send(batch)
}

// Wait parks the calling thread at the given barrier epoch until the MCP
// releases that epoch (via Release) or the ledger closes. It registers
// the wait, flushes the batch if this wait completes the local round, and
// blocks.
//
//graphite:hotpath
func (l *Ledger) Wait(tile arch.TileID, epoch int64) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	s := l.slot(tile)
	s.waiting = true
	s.flushed = false
	s.epoch = epoch
	if batch := l.takeBatchLocked(); batch != nil {
		// Flush outside the lock; a release racing this window just
		// clears s.waiting before we re-park, and the loop below exits.
		l.mu.Unlock()
		l.send(batch)
		l.mu.Lock()
	}
	for s.waiting && !l.closed {
		l.cond.Wait()
	}
	l.mu.Unlock()
}

// Release wakes every local thread parked at exactly the given epoch (the
// MCP releases one epoch — the minimum pending — at a time; higher-epoch
// waiters stay parked).
func (l *Ledger) Release(epoch int64) {
	l.mu.Lock()
	woke := false
	//graphite:maporder commutative flag clears on disjoint slots; wakeup order is the scheduler's regardless
	for _, s := range l.slots {
		if s.waiting && s.epoch == epoch {
			s.waiting = false
			s.flushed = false
			woke = true
		}
	}
	if woke {
		l.cond.Broadcast()
	}
	l.mu.Unlock()
}

// Close wakes every parked thread and makes all future Waits return
// immediately (simulation teardown).
func (l *Ledger) Close() {
	l.mu.Lock()
	l.closed = true
	//graphite:maporder commutative flag clears on disjoint slots during teardown
	for _, s := range l.slots {
		s.waiting = false
	}
	l.cond.Broadcast()
	l.mu.Unlock()
}

// takeBatchLocked returns the unflushed waits if the local round is
// complete — every active tile parked or blocked — and nil otherwise.
// Caller holds l.mu.
func (l *Ledger) takeBatchLocked() []EpochWait {
	if l.closed {
		return nil
	}
	pending := 0
	//graphite:maporder commutative count/any-still-running scan over disjoint slots
	for _, s := range l.slots {
		if !s.active {
			continue
		}
		if !s.waiting && !s.blocked {
			return nil // a local thread still runs: it decides this round
		}
		if s.waiting && !s.flushed {
			pending++
		}
	}
	if pending == 0 {
		return nil
	}
	batch := make([]EpochWait, 0, pending)
	//graphite:maporder the batch is a set: the MCP keys each wait by tile (Server.simWaits), so entry order never reaches a result or an output byte
	for tile, s := range l.slots {
		if s.active && s.waiting && !s.flushed {
			s.flushed = true
			batch = append(batch, EpochWait{Tile: tile, Epoch: s.epoch})
		}
	}
	return batch
}

func (l *Ledger) send(batch []EpochWait) {
	if len(batch) > 0 && l.flush != nil {
		l.flush(batch)
	}
}
