package config

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/arch"
)

func TestDefaultMatchesTable1(t *testing.T) {
	c := Default()
	if c.ClockHz != 1_000_000_000 {
		t.Errorf("clock = %d Hz, Table 1 says 1 GHz", c.ClockHz)
	}
	if c.L1D.Size != 32<<10 || c.L1D.Assoc != 8 || c.L1D.LineSize != 64 {
		t.Errorf("L1D = %+v, Table 1 says 32 KB, 8-way, 64 B lines", c.L1D)
	}
	if c.L1I.Size != 32<<10 || c.L1I.Assoc != 8 || c.L1I.LineSize != 64 {
		t.Errorf("L1I = %+v, Table 1 says 32 KB, 8-way, 64 B lines", c.L1I)
	}
	if c.L2.Size != 3<<20 || c.L2.Assoc != 24 || c.L2.LineSize != 64 {
		t.Errorf("L2 = %+v, Table 1 says 3 MB, 24-way, 64 B lines", c.L2)
	}
	if c.Coherence.Kind != FullMap {
		t.Errorf("coherence = %v, Table 1 says full-map directory", c.Coherence.Kind)
	}
	if c.DRAM.TotalBandwidth != 5.13 {
		t.Errorf("DRAM bandwidth = %v GB/s, Table 1 says 5.13", c.DRAM.TotalBandwidth)
	}
	if c.MemNet.Kind != NetMeshContention {
		t.Errorf("memory network = %v, Table 1 says mesh", c.MemNet.Kind)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestValidateRejectsBadGeometry(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero tiles", func(c *Config) { c.Tiles = 0 }},
		{"more procs than tiles", func(c *Config) { c.Processes = c.Tiles + 1 }},
		{"non-pow2 line", func(c *Config) { c.L2.LineSize = 48; c.L1D.LineSize = 48; c.L1I.LineSize = 48 }},
		{"L1/L2 line mismatch", func(c *Config) { c.L1D.LineSize = 32 }},
		{"L2 disabled", func(c *Config) { c.L2.Enabled = false }},
		{"zero assoc", func(c *Config) { c.L2.Assoc = 0 }},
		{"dirNB without pointers", func(c *Config) { c.Coherence.Kind = LimitedNB; c.Coherence.DirPointers = 0 }},
		{"zero bandwidth", func(c *Config) { c.DRAM.TotalBandwidth = 0 }},
		{"zero clock", func(c *Config) { c.ClockHz = 0 }},
		{"barrier without quantum", func(c *Config) { c.Sync.Model = LaxBarrier; c.Sync.BarrierQuantum = 0 }},
		{"p2p without slack", func(c *Config) { c.Sync.Model = LaxP2P; c.Sync.P2PSlack = 0 }},
		{"stack too small", func(c *Config) { c.AS.StackSize = 1 << 10 }},
		{"overlapping segments", func(c *Config) { c.AS.HeapBase = c.AS.StaticBase }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := Default()
			tc.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
		})
	}
}

func TestCacheSets(t *testing.T) {
	c := CacheConfig{Enabled: true, Size: 32 << 10, Assoc: 8, LineSize: 64}
	if got := c.Sets(); got != 64 {
		t.Fatalf("Sets() = %d, want 64", got)
	}
	var off CacheConfig
	if got := off.Sets(); got != 0 {
		t.Fatalf("disabled cache Sets() = %d", got)
	}
}

func TestHomeTileStripesLines(t *testing.T) {
	c := Default()
	c.Tiles = 4
	line := arch.Addr(c.LineSize())
	seen := map[arch.TileID]bool{}
	for i := arch.Addr(0); i < 8; i++ {
		home := c.HomeTile(i * line)
		if home < 0 || int(home) >= c.Tiles {
			t.Fatalf("home %v out of range", home)
		}
		seen[home] = true
	}
	if len(seen) != 4 {
		t.Fatalf("line striping only reached %d of 4 tiles", len(seen))
	}
	// Two addresses on the same line share a home.
	if c.HomeTile(0) != c.HomeTile(arch.Addr(c.LineSize()-1)) {
		t.Fatal("same line mapped to different homes")
	}
}

func TestProcStriping(t *testing.T) {
	c := Default()
	c.Tiles = 10
	c.Processes = 4
	counts := make([]int, 4)
	for tile := 0; tile < c.Tiles; tile++ {
		p := c.ProcOf(arch.TileID(tile))
		counts[p]++
	}
	// 10 tiles over 4 procs stripes 3,3,2,2.
	want := []int{3, 3, 2, 2}
	for i, n := range counts {
		if n != want[i] {
			t.Fatalf("proc %d simulates %d tiles, want %d", i, n, want[i])
		}
	}
	for p := 0; p < 4; p++ {
		for _, tile := range c.TilesOf(arch.ProcID(p)) {
			if c.ProcOf(tile) != arch.ProcID(p) {
				t.Fatalf("TilesOf(%d) returned %v owned by %d", p, tile, c.ProcOf(tile))
			}
		}
	}
}

func TestBandwidthPartitioning(t *testing.T) {
	// Doubling the tile count must halve per-controller bandwidth — the
	// effect behind the Figure 9 memory-latency growth.
	a := Default()
	a.Tiles = 16
	b := Default()
	b.Tiles = 32
	ra := a.BytesPerCyclePerController()
	rb := b.BytesPerCyclePerController()
	if ra <= 0 || rb <= 0 {
		t.Fatalf("non-positive bandwidth: %v %v", ra, rb)
	}
	if ratio := ra / rb; ratio < 1.99 || ratio > 2.01 {
		t.Fatalf("16->32 tiles changed per-controller bandwidth by %vx, want 2x", ratio)
	}
}

func TestNsToCycles(t *testing.T) {
	c := Default() // 1 GHz: 1 ns == 1 cycle
	if got := c.NsToCycles(100); got != 100 {
		t.Fatalf("NsToCycles(100) = %d at 1 GHz", got)
	}
}

func TestStringers(t *testing.T) {
	for _, s := range []string{Lax.String(), LaxBarrier.String(), LaxP2P.String(),
		NetMagic.String(), NetMeshHop.String(), NetMeshContention.String(),
		FullMap.String(), LimitedNB.String(), LimitLESS.String(),
		TransportChannel.String(), TransportTCP.String()} {
		if s == "" {
			t.Fatal("empty stringer")
		}
	}
	if SyncModel(99).String() == "" || NetworkModelKind(99).String() == "" ||
		CoherenceKind(99).String() == "" || TransportKind(99).String() == "" {
		t.Fatal("unknown enum produced empty string")
	}
}

func TestParsers(t *testing.T) {
	// Parsers accept both the scenario-file snake_case spellings and the
	// String() forms, case-insensitively.
	if m, err := ParseSyncModel("lax_barrier"); err != nil || m != LaxBarrier {
		t.Fatalf("ParseSyncModel(lax_barrier) = %v, %v", m, err)
	}
	if m, err := ParseSyncModel("LaxP2P"); err != nil || m != LaxP2P {
		t.Fatalf("ParseSyncModel(LaxP2P) = %v, %v", m, err)
	}
	if k, err := ParseNetworkModelKind("mesh_contention"); err != nil || k != NetMeshContention {
		t.Fatalf("ParseNetworkModelKind = %v, %v", k, err)
	}
	if k, err := ParseCoherenceKind("dir_nb"); err != nil || k != LimitedNB {
		t.Fatalf("ParseCoherenceKind = %v, %v", k, err)
	}
	if k, err := ParseCoherenceKind("LimitLESS"); err != nil || k != LimitLESS {
		t.Fatalf("ParseCoherenceKind(LimitLESS) = %v, %v", k, err)
	}
	if k, err := ParseTransportKind("tcp"); err != nil || k != TransportTCP {
		t.Fatalf("ParseTransportKind = %v, %v", k, err)
	}
	if k, err := ParseCoreModelKind("out-of-order"); err != nil || k != CoreOutOfOrder {
		t.Fatalf("ParseCoreModelKind = %v, %v", k, err)
	}
	// Round trip: every String() form parses back to its value.
	for _, m := range []SyncModel{Lax, LaxBarrier, LaxP2P} {
		if got, err := ParseSyncModel(m.String()); err != nil || got != m {
			t.Fatalf("round trip %v: %v, %v", m, got, err)
		}
	}
	for _, k := range []NetworkModelKind{NetMagic, NetMeshHop, NetMeshContention, NetRing} {
		if got, err := ParseNetworkModelKind(k.String()); err != nil || got != k {
			t.Fatalf("round trip %v: %v, %v", k, got, err)
		}
	}
	for _, k := range []CoherenceKind{FullMap, LimitedNB, LimitLESS} {
		if got, err := ParseCoherenceKind(k.String()); err != nil || got != k {
			t.Fatalf("round trip %v: %v, %v", k, got, err)
		}
	}
	for _, bad := range []func() error{
		func() error { _, err := ParseSyncModel("chaotic"); return err },
		func() error { _, err := ParseNetworkModelKind("torus"); return err },
		func() error { _, err := ParseCoherenceKind("snooping"); return err },
		func() error { _, err := ParseTransportKind("pigeon"); return err },
		func() error { _, err := ParseCoreModelKind("vliw"); return err },
	} {
		if bad() == nil {
			t.Fatal("invalid spelling accepted")
		}
	}
}

// TestConfigJSONRoundTrip: Config is the payload of distributed sweep
// dispatch (scenario.RunSpec travels as JSON), so decode(encode(cfg)) must
// reproduce the value exactly — including the integer-keyed TileCores map.
func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := Default()
	cfg.Tiles = 16
	cfg.Sync.Model = LaxP2P
	cfg.Coherence.Kind = LimitLESS
	cfg.TileCores = map[arch.TileID]CoreConfig{
		0: {Kind: CoreOutOfOrder, ROBWindow: 128},
		9: {Kind: CoreInOrder, ArithCost: 2},
	}
	buf, err := json.Marshal(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg, back) {
		t.Fatalf("config did not round-trip:\n got %+v\nwant %+v", back, cfg)
	}
	buf2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(buf2) {
		t.Fatalf("re-encoding not byte-stable:\n %s\n %s", buf, buf2)
	}
}
