// Package config holds the runtime configuration of a Graphite simulation:
// the target architecture parameters (Table 1 of the paper), the host
// distribution parameters (number of simulated host processes), and the
// knobs of every swappable model (network, coherence, synchronization).
//
// A Config is plain data. Models receive the sub-struct they care about at
// construction time; nothing reads configuration from globals.
package config

import (
	"fmt"
	"strings"

	"repro/internal/arch"
)

// SyncModel selects the simulation synchronization scheme (paper §3.6).
type SyncModel int

const (
	// Lax lets tile clocks run freely; they synchronize only on true
	// application events (locks, barriers, messages, spawn/join).
	Lax SyncModel = iota
	// LaxBarrier adds a quanta-based global barrier every BarrierQuantum
	// simulated cycles. With a small quantum it closely approximates a
	// cycle-accurate simulation and serves as the accuracy baseline.
	LaxBarrier
	// LaxP2P adds random point-to-point clock synchronization: a tile that
	// is more than Slack cycles ahead of a randomly chosen partner sleeps
	// in real time until the partner catches up.
	LaxP2P
)

// String implements fmt.Stringer.
func (m SyncModel) String() string {
	switch m {
	case Lax:
		return "Lax"
	case LaxBarrier:
		return "LaxBarrier"
	case LaxP2P:
		return "LaxP2P"
	default:
		return fmt.Sprintf("SyncModel(%d)", int(m))
	}
}

// ParseSyncModel converts a scenario-file spelling ("lax", "lax_barrier",
// "lax_p2p", or the String() forms) into a SyncModel.
func ParseSyncModel(s string) (SyncModel, error) {
	switch normalize(s) {
	case "lax":
		return Lax, nil
	case "laxbarrier", "lax_barrier":
		return LaxBarrier, nil
	case "laxp2p", "lax_p2p":
		return LaxP2P, nil
	default:
		return Lax, fmt.Errorf("unknown sync model %q (lax|lax_barrier|lax_p2p)", s)
	}
}

// NetworkModelKind selects the latency model of an on-chip network
// (paper §3.3). Each traffic class can use a different model.
type NetworkModelKind int

const (
	// NetMagic forwards packets with zero modeled delay. It is used for
	// simulator-internal system traffic so that control messages never
	// perturb simulation results.
	NetMagic NetworkModelKind = iota
	// NetMeshHop models a 2-D mesh where latency is the number of
	// dimension-ordered hops times the per-hop latency plus serialization.
	NetMeshHop
	// NetMeshContention is NetMeshHop plus an analytical contention model:
	// every link on the route is a lax queue (see internal/queuemodel).
	NetMeshContention
	// NetRing models a unidirectional-link bidirectional ring: latency is
	// the shorter ring distance times the hop latency plus serialization.
	// It demonstrates the paper's claim that any topology with a per-tile
	// endpoint can be modeled.
	NetRing
)

// String implements fmt.Stringer.
func (k NetworkModelKind) String() string {
	switch k {
	case NetMagic:
		return "magic"
	case NetMeshHop:
		return "mesh_hop"
	case NetMeshContention:
		return "mesh_contention"
	case NetRing:
		return "ring"
	default:
		return fmt.Sprintf("NetworkModelKind(%d)", int(k))
	}
}

// ParseNetworkModelKind converts a scenario-file spelling (the String()
// forms) into a NetworkModelKind.
func ParseNetworkModelKind(s string) (NetworkModelKind, error) {
	switch normalize(s) {
	case "magic":
		return NetMagic, nil
	case "mesh_hop", "meshhop":
		return NetMeshHop, nil
	case "mesh_contention", "meshcontention":
		return NetMeshContention, nil
	case "ring":
		return NetRing, nil
	default:
		return NetMagic, fmt.Errorf("unknown network model %q (magic|mesh_hop|mesh_contention|ring)", s)
	}
}

// CoherenceKind selects the directory-based cache coherence protocol
// (paper §3.2 and §4.4).
type CoherenceKind int

const (
	// FullMap keeps a full sharer bit-vector per directory entry.
	FullMap CoherenceKind = iota
	// LimitedNB is the Dir_iNB limited-directory protocol: at most
	// DirPointers sharers are tracked; adding a sharer beyond that evicts
	// (invalidates) an existing one instead of broadcasting.
	LimitedNB
	// LimitLESS tracks the first DirPointers sharers in hardware; further
	// sharers are handled by a software trap that costs extra latency at
	// the home tile but preserves the full sharer set.
	LimitLESS
)

// String implements fmt.Stringer.
func (k CoherenceKind) String() string {
	switch k {
	case FullMap:
		return "full_map"
	case LimitedNB:
		return "dir_nb"
	case LimitLESS:
		return "limitless"
	default:
		return fmt.Sprintf("CoherenceKind(%d)", int(k))
	}
}

// ParseCoherenceKind converts a scenario-file spelling (the String()
// forms) into a CoherenceKind.
func ParseCoherenceKind(s string) (CoherenceKind, error) {
	switch normalize(s) {
	case "full_map", "fullmap":
		return FullMap, nil
	case "dir_nb", "dirnb", "limited_nb", "limitednb":
		return LimitedNB, nil
	case "limitless":
		return LimitLESS, nil
	default:
		return FullMap, fmt.Errorf("unknown coherence kind %q (full_map|dir_nb|limitless)", s)
	}
}

// TransportKind selects the physical transport layer implementation
// (paper §3.3.1).
type TransportKind int

const (
	// TransportChannel moves packets over in-memory channels. It is the
	// default for single-OS-process simulations and for tests.
	TransportChannel TransportKind = iota
	// TransportTCP moves packets over real TCP/IP sockets, exercising the
	// same code paths a cluster deployment would.
	TransportTCP
)

// String implements fmt.Stringer.
func (k TransportKind) String() string {
	switch k {
	case TransportChannel:
		return "channel"
	case TransportTCP:
		return "tcp"
	default:
		return fmt.Sprintf("TransportKind(%d)", int(k))
	}
}

// ParseTransportKind converts a scenario-file spelling (the String()
// forms) into a TransportKind.
func ParseTransportKind(s string) (TransportKind, error) {
	switch normalize(s) {
	case "channel":
		return TransportChannel, nil
	case "tcp":
		return TransportTCP, nil
	default:
		return TransportChannel, fmt.Errorf("unknown transport %q (channel|tcp)", s)
	}
}

// CacheConfig configures one level of the cache hierarchy.
type CacheConfig struct {
	// Enabled turns the cache on. A disabled cache forwards every access
	// to the next level (used by the Figure 8 study, which models only a
	// single 1 MB L2).
	Enabled bool
	// Size is the total capacity in bytes.
	Size int
	// Assoc is the set associativity.
	Assoc int
	// LineSize is the cache line size in bytes; it must be a power of two
	// and identical across levels.
	LineSize int
	// HitLatency is the access latency in cycles on a hit.
	HitLatency arch.Cycles
}

// Sets returns the number of sets implied by the geometry.
func (c CacheConfig) Sets() int {
	if !c.Enabled || c.Assoc == 0 || c.LineSize == 0 {
		return 0
	}
	return c.Size / (c.Assoc * c.LineSize)
}

// Validate reports whether the geometry is self-consistent.
func (c CacheConfig) Validate(name string) error {
	if !c.Enabled {
		return nil
	}
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("%s: line size %d is not a positive power of two", name, c.LineSize)
	}
	if c.Assoc <= 0 {
		return fmt.Errorf("%s: associativity %d must be positive", name, c.Assoc)
	}
	if c.Size <= 0 || c.Size%(c.Assoc*c.LineSize) != 0 {
		return fmt.Errorf("%s: size %d is not a multiple of assoc*line (%d)", name, c.Size, c.Assoc*c.LineSize)
	}
	sets := c.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("%s: set count %d is not a power of two", name, sets)
	}
	return nil
}

// CoherenceConfig configures the directory protocol.
type CoherenceConfig struct {
	// Kind selects the protocol.
	Kind CoherenceKind
	// DirPointers is i in Dir_iNB and LimitLESS(i). Ignored by FullMap.
	DirPointers int
	// TrapLatency is the software-trap cost, in cycles, charged by
	// LimitLESS when the sharer count exceeds DirPointers.
	TrapLatency arch.Cycles
	// DirLatency is the directory lookup cost at the home tile.
	DirLatency arch.Cycles
	// DirShards is the number of independently locked directory regions
	// per home tile. Home-side protocol state is sharded by line address
	// so that directory traffic does not contend with the tile's own core
	// on one mutex. Must be a power of two; 0 selects the default (16).
	// This is a host-performance knob with no effect on modeled timing.
	DirShards int
}

// DRAMConfig configures the memory controllers.
type DRAMConfig struct {
	// TotalBandwidth is the aggregate off-chip bandwidth in GB/s. It is
	// split evenly across all controllers (one per tile by default), so
	// per-controller service time grows with the tile count — the effect
	// behind the Figure 9 saturation discussion.
	TotalBandwidth float64
	// AccessLatency is the fixed DRAM access latency in cycles.
	AccessLatency arch.Cycles
	// QueueModel enables the lax queueing-delay model at each controller.
	QueueModel bool
}

// NetworkConfig configures one network traffic class.
type NetworkConfig struct {
	// Kind selects the latency model.
	Kind NetworkModelKind
	// HopLatency is the per-hop router latency in cycles.
	HopLatency arch.Cycles
	// LinkBandwidth is the link width in bytes per cycle, used for
	// serialization delay and the contention model.
	LinkBandwidth int
	// QueueModel enables per-link lax queue contention (only meaningful
	// for NetMeshContention, where it defaults on).
	QueueModel bool
}

// CostConfig holds the modeled latencies of the MCP's intercepted
// services (paper §3.4-§3.5: futexes, thread creation, memory
// management, and file I/O execute at the MCP).
type CostConfig struct {
	// Mutex is charged per lock grant.
	Mutex arch.Cycles
	// Barrier is charged at barrier release.
	Barrier arch.Cycles
	// Cond is charged at condition-variable wake.
	Cond arch.Cycles
	// Spawn separates a spawn request from the child's first cycle.
	Spawn arch.Cycles
	// Malloc is charged per dynamic memory request.
	Malloc arch.Cycles
	// File is charged per forwarded file operation.
	File arch.Cycles
}

// SyncConfig configures the synchronization model.
type SyncConfig struct {
	// Model selects Lax, LaxBarrier or LaxP2P.
	Model SyncModel
	// BarrierQuantum is the LaxBarrier quantum in cycles.
	BarrierQuantum arch.Cycles
	// P2PSlack is the maximum tolerated clock difference for LaxP2P.
	P2PSlack arch.Cycles
	// P2PInterval is how often (in cycles) a tile initiates a LaxP2P probe.
	P2PInterval arch.Cycles
}

// CoreModelKind selects the core performance model (paper §3.1: the core
// model is swappable and may differ drastically from the functional
// execution; the functional simulator stays in-order and sequentially
// consistent either way).
type CoreModelKind int

const (
	// CoreInOrder blocks on every load (the paper's released model).
	CoreInOrder CoreModelKind = iota
	// CoreOutOfOrder hides load latency up to the reorder window,
	// modeling an out-of-order core with a relaxed memory model.
	CoreOutOfOrder
)

// String implements fmt.Stringer.
func (k CoreModelKind) String() string {
	switch k {
	case CoreInOrder:
		return "in-order"
	case CoreOutOfOrder:
		return "out-of-order"
	default:
		return fmt.Sprintf("CoreModelKind(%d)", int(k))
	}
}

// ParseCoreModelKind converts a scenario-file spelling (the String()
// forms) into a CoreModelKind.
func ParseCoreModelKind(s string) (CoreModelKind, error) {
	switch normalize(s) {
	case "in-order", "in_order", "inorder":
		return CoreInOrder, nil
	case "out-of-order", "out_of_order", "outoforder", "ooo":
		return CoreOutOfOrder, nil
	default:
		return CoreInOrder, fmt.Errorf("unknown core model %q (in-order|out-of-order)", s)
	}
}

// normalize lower-cases a kind spelling so parsers accept both the
// scenario-file convention (snake_case) and the String() forms.
func normalize(s string) string {
	return strings.ToLower(strings.TrimSpace(s))
}

// CoreConfig configures the core performance model.
type CoreConfig struct {
	// Kind selects in-order or out-of-order timing.
	Kind CoreModelKind
	// ROBWindow is the out-of-order reorder window in cycles: the load
	// latency a CoreOutOfOrder core can overlap with execution.
	ROBWindow arch.Cycles
	// ArithCost, MulCost, DivCost, FPCost are instruction costs in cycles.
	ArithCost, MulCost, DivCost, FPCost arch.Cycles
	// BranchCost is the cost of a correctly predicted branch.
	BranchCost arch.Cycles
	// MispredictPenalty is added on a branch misprediction.
	MispredictPenalty arch.Cycles
	// BranchPredictorSize is the number of 2-bit counters (power of two).
	BranchPredictorSize int
	// StoreBufferSize is the number of outstanding stores that retire
	// without stalling the core; 0 disables the store buffer.
	StoreBufferSize int
	// LoadQueueSize bounds outstanding loads (the functional simulator
	// blocks on loads, so this shapes timing only through drain modeling).
	LoadQueueSize int
	// CodeFootprint is the per-tile synthetic code working set in bytes,
	// driving instruction-fetch modeling (the loop kernel size); 0
	// disables fetch modeling.
	CodeFootprint int
}

// AddressSpaceConfig describes the simulated application address space
// layout (paper Figure 3).
type AddressSpaceConfig struct {
	// StaticBase/StaticSize bound the static data segment.
	StaticBase, StaticSize arch.Addr
	// HeapBase/HeapSize bound the dynamically allocated segment.
	HeapBase, HeapSize arch.Addr
	// StackBase/StackSize bound the per-thread stack region; each thread
	// receives StackPerThread bytes within it.
	StackBase, StackSize arch.Addr
	// StackPerThread is the stack reservation per spawned thread.
	StackPerThread arch.Addr
}

// Config is the complete configuration of one simulation.
type Config struct {
	// Tiles is the number of target tiles. Application threads map 1:1
	// onto tiles; at most Tiles threads may be live at once.
	Tiles int
	// Processes is the number of simulated host processes the tiles are
	// striped across (tile t lives in process t % Processes).
	Processes int
	// Workers bounds host OS parallelism (GOMAXPROCS) for the simulation;
	// 0 means "leave as is". Used by the host-scaling experiments.
	Workers int
	// ClockHz is the target clock frequency (Table 1: 1 GHz).
	ClockHz uint64
	// Transport selects the physical transport layer.
	Transport TransportKind
	// TCPBase is the first TCP port used when Transport == TransportTCP.
	TCPBase int

	L1I, L1D, L2 CacheConfig
	Coherence    CoherenceConfig
	DRAM         DRAMConfig

	// AppNet carries application message traffic, MemNet carries memory
	// subsystem traffic, SysNet carries simulator control traffic.
	AppNet, MemNet, SysNet NetworkConfig

	Sync  SyncConfig
	Core  CoreConfig
	AS    AddressSpaceConfig
	Costs CostConfig

	// TileCores overrides the core model of individual tiles, enabling
	// heterogeneous targets (paper §2: tiles may be heterogeneous; the
	// paper evaluates homogeneous ones). Tiles absent from the map use
	// Core.
	TileCores map[arch.TileID]CoreConfig

	// ProgressWindow is the size of the global-progress timestamp window
	// (paper §3.6.1: "on the order of the number of tiles"); 0 means one
	// entry per tile.
	ProgressWindow int
	// RandSeed seeds model-internal randomness (LaxP2P partner choice).
	RandSeed int64
	// CollectSkew enables periodic clock-skew sampling (Figure 7).
	CollectSkew bool
}

// Default returns the target architecture of Table 1: 1 GHz tiles, private
// 32 KB L1s and a private 3 MB L2 per tile with 64-byte lines, a full-map
// directory MSI protocol, 5.13 GB/s of DRAM bandwidth split across one
// controller per tile, and a mesh interconnect with an analytical
// contention model. Lax synchronization is the baseline model.
func Default() Config {
	return Config{
		Tiles:     32,
		Processes: 1,
		ClockHz:   1_000_000_000,
		Transport: TransportChannel,
		TCPBase:   36200,
		L1I: CacheConfig{
			Enabled: true, Size: 32 << 10, Assoc: 8, LineSize: 64, HitLatency: 1,
		},
		L1D: CacheConfig{
			Enabled: true, Size: 32 << 10, Assoc: 8, LineSize: 64, HitLatency: 1,
		},
		L2: CacheConfig{
			Enabled: true, Size: 3 << 20, Assoc: 24, LineSize: 64, HitLatency: 8,
		},
		Coherence: CoherenceConfig{Kind: FullMap, DirPointers: 64, TrapLatency: 100, DirLatency: 10},
		DRAM: DRAMConfig{
			TotalBandwidth: 5.13,
			AccessLatency:  100,
			QueueModel:     true,
		},
		AppNet: NetworkConfig{Kind: NetMeshHop, HopLatency: 2, LinkBandwidth: 32},
		MemNet: NetworkConfig{Kind: NetMeshContention, HopLatency: 2, LinkBandwidth: 32, QueueModel: true},
		SysNet: NetworkConfig{Kind: NetMagic},
		Sync: SyncConfig{
			Model:          Lax,
			BarrierQuantum: 1_000,
			P2PSlack:       100_000,
			P2PInterval:    10_000,
		},
		Core: CoreConfig{
			Kind:                CoreInOrder,
			ROBWindow:           64,
			ArithCost:           1,
			MulCost:             3,
			DivCost:             18,
			FPCost:              2,
			BranchCost:          1,
			MispredictPenalty:   14,
			BranchPredictorSize: 1024,
			StoreBufferSize:     8,
			LoadQueueSize:       4,
			CodeFootprint:       8 << 10,
		},
		Costs: CostConfig{
			Mutex:   100,
			Barrier: 100,
			Cond:    100,
			Spawn:   300,
			Malloc:  200,
			File:    500,
		},
		AS: AddressSpaceConfig{
			StaticBase:     0x0001_0000,
			StaticSize:     64 << 20,
			HeapBase:       0x1000_0000,
			HeapSize:       1 << 30,
			StackBase:      0x5000_0000,
			StackSize:      1 << 30,
			StackPerThread: 1 << 20,
		},
		ProgressWindow: 0,
		RandSeed:       1,
	}
}

// Canonical returns a copy with the host-execution fields — how the
// simulation is executed, not what it simulates — reset to canonical
// values. Two configurations with equal canonical forms describe the
// identical target architecture: the same run striped across a different
// number of OS processes, over a different transport, or with a different
// GOMAXPROCS bound must produce identical results (paper §3.1: process
// count is a performance knob, not a correctness one), so those fields
// are excluded from the configuration digest recorded with every run.
func (c Config) Canonical() Config {
	c.Processes = 1
	c.Transport = TransportChannel
	c.TCPBase = 0
	c.Workers = 0
	c.CollectSkew = false
	return c
}

// Validate checks the configuration for internal consistency.
func (c *Config) Validate() error {
	if c.Tiles <= 0 {
		return fmt.Errorf("config: tiles must be positive, got %d", c.Tiles)
	}
	if c.Processes <= 0 {
		return fmt.Errorf("config: processes must be positive, got %d", c.Processes)
	}
	if c.Processes > c.Tiles {
		return fmt.Errorf("config: processes (%d) may not exceed tiles (%d)", c.Processes, c.Tiles)
	}
	if err := c.L1I.Validate("L1I"); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	if err := c.L1D.Validate("L1D"); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	if err := c.L2.Validate("L2"); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	if !c.L2.Enabled {
		return fmt.Errorf("config: the L2 cache (the coherence point) must be enabled")
	}
	line := c.L2.LineSize
	if c.L1D.Enabled && c.L1D.LineSize != line {
		return fmt.Errorf("config: L1D line size %d != L2 line size %d", c.L1D.LineSize, line)
	}
	if c.L1I.Enabled && c.L1I.LineSize != line {
		return fmt.Errorf("config: L1I line size %d != L2 line size %d", c.L1I.LineSize, line)
	}
	switch c.Coherence.Kind {
	case FullMap:
	case LimitedNB, LimitLESS:
		if c.Coherence.DirPointers <= 0 {
			return fmt.Errorf("config: %v requires DirPointers > 0", c.Coherence.Kind)
		}
	default:
		return fmt.Errorf("config: unknown coherence kind %d", int(c.Coherence.Kind))
	}
	if s := c.Coherence.DirShards; s < 0 || s&(s-1) != 0 {
		return fmt.Errorf("config: DirShards %d is not a power of two", s)
	}
	if c.DRAM.TotalBandwidth <= 0 {
		return fmt.Errorf("config: DRAM bandwidth must be positive")
	}
	if c.ClockHz == 0 {
		return fmt.Errorf("config: clock frequency must be positive")
	}
	if c.Sync.Model == LaxBarrier && c.Sync.BarrierQuantum <= 0 {
		return fmt.Errorf("config: LaxBarrier requires a positive quantum")
	}
	if c.Sync.Model == LaxP2P {
		if c.Sync.P2PSlack <= 0 || c.Sync.P2PInterval <= 0 {
			return fmt.Errorf("config: LaxP2P requires positive slack and interval")
		}
	}
	if c.AS.StackPerThread == 0 || c.AS.StackSize/c.AS.StackPerThread < arch.Addr(c.Tiles) {
		return fmt.Errorf("config: stack segment too small for %d threads", c.Tiles)
	}
	if overlap(c.AS.StaticBase, c.AS.StaticSize, c.AS.HeapBase, c.AS.HeapSize) ||
		overlap(c.AS.HeapBase, c.AS.HeapSize, c.AS.StackBase, c.AS.StackSize) ||
		overlap(c.AS.StaticBase, c.AS.StaticSize, c.AS.StackBase, c.AS.StackSize) {
		return fmt.Errorf("config: address space segments overlap")
	}
	for t := range c.TileCores {
		if int(t) < 0 || int(t) >= c.Tiles {
			return fmt.Errorf("config: core override for nonexistent tile %v", t)
		}
	}
	return nil
}

// CoreFor returns the core configuration of one tile, honoring overrides.
func (c *Config) CoreFor(t arch.TileID) CoreConfig {
	if o, ok := c.TileCores[t]; ok {
		return o
	}
	return c.Core
}

func overlap(aBase, aSize, bBase, bSize arch.Addr) bool {
	return aBase < bBase+bSize && bBase < aBase+aSize
}

// LineSize returns the coherence-point line size in bytes.
func (c *Config) LineSize() int { return c.L2.LineSize }

// ProgressWindowSize resolves the configured window size (default: Tiles).
func (c *Config) ProgressWindowSize() int {
	if c.ProgressWindow > 0 {
		return c.ProgressWindow
	}
	return c.Tiles
}

// HomeTile returns the tile on whose memory controller/directory the cache
// line containing addr is homed. Lines are striped across tiles, which
// distributes the directory uniformly (paper §3.2).
func (c *Config) HomeTile(addr arch.Addr) arch.TileID {
	line := uint64(addr) / uint64(c.LineSize())
	return arch.TileID(line % uint64(c.Tiles))
}

// ProcOf returns the host process that simulates tile t. Tiles are striped
// across processes (paper §3.5).
func (c *Config) ProcOf(t arch.TileID) arch.ProcID {
	return arch.ProcID(int(t) % c.Processes)
}

// TilesOf returns the tiles simulated by process p, in ascending order.
func (c *Config) TilesOf(p arch.ProcID) []arch.TileID {
	var out []arch.TileID
	for t := int(p); t < c.Tiles; t += c.Processes {
		out = append(out, arch.TileID(t))
	}
	return out
}

// NsToCycles converts nanoseconds of target time to cycles.
func (c *Config) NsToCycles(ns float64) arch.Cycles {
	return arch.Cycles(ns * float64(c.ClockHz) / 1e9)
}

// BytesPerCyclePerController returns the DRAM service bandwidth of one
// controller in bytes/cycle, after splitting total bandwidth evenly across
// one controller per tile.
func (c *Config) BytesPerCyclePerController() float64 {
	totalBytesPerSec := c.DRAM.TotalBandwidth * 1e9
	perController := totalBytesPerSec / float64(c.Tiles)
	return perController / float64(c.ClockHz)
}
