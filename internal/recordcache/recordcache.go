// Package recordcache memoizes scenario run records by their content
// digest, so repeated or overlapping sweeps answer from the cache
// instead of re-simulating. The determinism work of PRs 2-5 is what
// makes this sound: a record is fully determined by its cache key
// (config.Canonical digest + workload/threads/scale/seed — see
// scenario.CacheKey), byte-identically across in-process, multi-process,
// and distributed execution, so replaying a stored record is
// indistinguishable from re-running the simulation — minus the hours.
//
// The cache is two tiers:
//
//   - An in-memory LRU over the marshaled record bytes, bounded by an
//     entry-count budget and a byte budget, with an optional TTL.
//     Eviction only forgets the memory copy; the disk tier still holds
//     the entry.
//   - A disk tier of append-only JSONL segment files under Options.Dir.
//     Each line is a self-validating envelope {key, at, sum, record}
//     where sum is the SHA-256 of the record bytes, so truncation,
//     bit flips, and torn tails are detected per entry and skipped
//     instead of erroring the sweep. Dead bytes (overwritten, expired,
//     or corrupt entries) are reclaimed by compaction: live entries are
//     rewritten to a temp file which is fsynced and renamed into place
//     before the old segments are removed, so a crash at any point
//     leaves a readable cache (at worst with duplicate entries, which
//     the later-segment-wins scan collapses).
//
// Single-writer discipline: one Cache instance owns the directory's
// writer lock (a LOCK file holding its pid; stale locks from dead
// processes are stolen). Instances that cannot take the lock open
// read-only — they serve Gets from disk and keep Puts in memory only —
// so two concurrent sweeps can share a cache directory safely.
//
// All methods are safe for concurrent use: the dispatch coordinator's
// merge goroutines and the K-parallel scenario runner workers share one
// Cache.
package recordcache

import (
	"bufio"
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/scenario"
)

// Options configures Open.
type Options struct {
	// Dir is the disk tier's directory (created if missing). Empty means
	// memory-only: no persistence, no sharing.
	Dir string
	// MaxEntries bounds the in-memory tier's entry count (0 = unlimited).
	MaxEntries int
	// MaxBytes bounds the in-memory tier's record bytes (0 = unlimited).
	// An entry larger than the whole budget is served from disk only.
	MaxBytes int64
	// TTL expires entries (memory and disk) this long after their Put
	// (0 = never). Expiry is evaluated against this instance's clock at
	// Get time and at segment scan.
	TTL time.Duration
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"` // memory-tier LRU evictions
	Expired   int64 `json:"expired"`   // TTL drops (memory or disk)
	Corrupt   int64 `json:"corrupt"`   // disk entries failing checksum/decode
	Compacts  int64 `json:"compacts"`

	Entries int   `json:"entries"` // in-memory tier
	Bytes   int64 `json:"bytes"`   // in-memory record bytes

	DiskEntries int   `json:"disk_entries"` // live disk index entries
	DiskLive    int64 `json:"disk_live"`    // live bytes across segments
	DiskDead    int64 `json:"disk_dead"`    // reclaimable bytes

	ReadOnly bool `json:"read_only"` // another instance holds the writer lock
}

// HitRate returns hits/(hits+misses) as a percentage (100 when idle).
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 100
	}
	return 100 * float64(s.Hits) / float64(s.Hits+s.Misses)
}

// diskLine is one segment line: a self-validating record envelope.
//
//graphite:wire
type diskLine struct {
	Key    string          `json:"key"`
	At     int64           `json:"at"` // Put time, unix nanoseconds
	Sum    string          `json:"sum"`
	Record json.RawMessage `json:"record"`
}

// diskEntry locates one live line inside a segment.
type diskEntry struct {
	seg string
	off int64
	len int // line length excluding the trailing newline
	at  int64
}

// memEntry is one in-memory tier entry (an LRU list value).
type memEntry struct {
	key  string
	at   int64
	data []byte // marshaled record
}

// Cache is a two-tier digest-keyed record store. See the package comment.
type Cache struct {
	opt Options
	now func() time.Time // injectable for TTL tests

	mu sync.Mutex

	// memory tier
	lru   *list.List // front = most recently used; values are *memEntry
	mem   map[string]*list.Element
	bytes int64

	// disk tier
	dir      string
	readOnly bool
	locked   bool
	index    map[string]diskEntry
	segments []string // every known segment file, scan order
	readers  map[string]*os.File
	active   *os.File
	activeNm string
	activeOf int64
	segSeq   int64
	live     int64
	dead     int64
	diskErr  error // first append failure; disables further appends

	hits, misses, evictions, expired, corrupt, compacts int64
}

const (
	lockFile = "LOCK"
	segExt   = ".jsonl"
	// compactMinDead is the dead-byte floor below which automatic
	// compaction is not worth the rewrite.
	compactMinDead = 64 << 10
	// maxLine bounds one segment line (records can embed per-tile stats).
	maxLine = 64 << 20
)

// Open opens (creating if necessary) a cache. Open never fails on cache
// *content* — corrupt or torn entries are skipped and scheduled for
// compaction — only on environmental errors (unusable directory).
func Open(opt Options) (*Cache, error) {
	c := &Cache{
		opt:     opt,
		now:     time.Now,
		lru:     list.New(),
		mem:     map[string]*list.Element{},
		index:   map[string]diskEntry{},
		readers: map[string]*os.File{},
		dir:     opt.Dir,
	}
	if c.dir == "" {
		return c, nil
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return nil, fmt.Errorf("recordcache: %w", err)
	}
	c.acquireLock()
	if c.locked {
		// Leftover temp files are failed compactions from a crashed
		// writer; only the lock holder may remove them.
		if tmps, err := filepath.Glob(filepath.Join(c.dir, ".compact-*.tmp")); err == nil {
			for _, t := range tmps {
				os.Remove(t)
			}
		}
	}
	names, err := segmentNames(c.dir)
	if err != nil {
		return nil, fmt.Errorf("recordcache: %w", err)
	}
	for _, name := range names {
		c.scanSegment(name)
	}
	c.segments = names
	// Corruption found at open is compacted away immediately so it can
	// never be rescanned; plain dead weight waits for the usual trigger.
	if c.corrupt > 0 && !c.readOnly {
		c.mu.Lock()
		c.compactLocked()
		c.mu.Unlock()
	}
	return c, nil
}

// segmentNames lists the directory's segment files in scan order
// (lexical = chronological: names embed a zero-padded creation time).
func segmentNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.Type().IsRegular() {
			continue
		}
		if strings.HasPrefix(e.Name(), "seg-") && strings.HasSuffix(e.Name(), segExt) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// acquireLock takes the directory writer lock or degrades to read-only.
// A lock whose pid no longer runs is stale (crashed writer) and stolen.
func (c *Cache) acquireLock() {
	path := filepath.Join(c.dir, lockFile)
	for attempt := 0; attempt < 2; attempt++ {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			fmt.Fprintf(f, "%d\n", os.Getpid())
			f.Close()
			c.locked = true
			return
		}
		if !os.IsExist(err) {
			break
		}
		b, rerr := os.ReadFile(path)
		pid, perr := strconv.Atoi(strings.TrimSpace(string(b)))
		if rerr == nil && perr == nil && pidAlive(pid) {
			break
		}
		os.Remove(path)
	}
	c.readOnly = true
}

// scanSegment builds the disk index from one segment, later lines (and
// later segments) winning per key. Invalid lines are skipped: a torn
// final line (no newline — an interrupted append) is expected crash
// debris, anything else counts as corruption and schedules compaction.
func (c *Cache) scanSegment(name string) {
	f, err := os.Open(filepath.Join(c.dir, name))
	if err != nil {
		return // unreadable segment: treat as absent
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	var off int64
	for {
		line, err := r.ReadBytes('\n')
		if len(line) == 0 {
			return // clean EOF
		}
		n := int64(len(line))
		complete := err == nil
		trimmed := bytes.TrimRight(line, "\n")
		if len(bytes.TrimSpace(trimmed)) == 0 {
			off += n
			if !complete {
				return
			}
			continue
		}
		dl, ok := decodeLine(trimmed)
		switch {
		case !ok:
			c.dead += n
			if complete {
				c.corrupt++
			}
		case c.expiredAt(dl.At):
			c.dead += n
			c.expired++
		default:
			if old, live := c.index[dl.Key]; live {
				c.dead += int64(old.len) + 1
				c.live -= int64(old.len) + 1
			}
			c.index[dl.Key] = diskEntry{seg: name, off: off, len: len(trimmed), at: dl.At}
			c.live += n
		}
		off += n
		if !complete {
			return
		}
	}
}

// decodeLine parses and checksums one segment line.
func decodeLine(line []byte) (diskLine, bool) {
	var dl diskLine
	if json.Unmarshal(line, &dl) != nil || dl.Key == "" || len(dl.Record) == 0 {
		return dl, false
	}
	return dl, sumHex(dl.Record) == dl.Sum
}

func sumHex(b []byte) string {
	s := sha256.Sum256(b)
	return hex.EncodeToString(s[:])
}

func (c *Cache) expiredAt(at int64) bool {
	return c.opt.TTL > 0 && c.now().Sub(time.Unix(0, at)) > c.opt.TTL
}

// Get returns the record stored under key, consulting the memory tier
// first and promoting disk hits into it. Implements scenario.RecordCache.
func (c *Cache) Get(key string) (scenario.Record, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if data, ok := c.lookupLocked(key); ok {
		var rec scenario.Record
		if json.Unmarshal(data, &rec) == nil {
			c.hits++
			return rec, true
		}
	}
	c.misses++
	return scenario.Record{}, false
}

// lookupLocked returns the marshaled record bytes for key, or false.
func (c *Cache) lookupLocked(key string) ([]byte, bool) {
	if el, ok := c.mem[key]; ok {
		me := el.Value.(*memEntry)
		if !c.expiredAt(me.at) {
			c.lru.MoveToFront(el)
			return me.data, true
		}
		c.expired++
		c.removeMemLocked(el)
	}
	e, ok := c.index[key]
	if !ok {
		return nil, false
	}
	if c.expiredAt(e.at) {
		c.expired++
		c.dropDiskLocked(key, e)
		return nil, false
	}
	data, at, ok := c.readEntryLocked(key, e)
	if !ok {
		// Bit rot since the open-time scan: forget the entry and let
		// compaction rewrite the survivors.
		c.corrupt++
		c.dropDiskLocked(key, e)
		c.maybeCompactLocked()
		return nil, false
	}
	c.insertMemLocked(key, at, data)
	return data, true
}

// readEntryLocked reads and re-validates one indexed line from disk.
func (c *Cache) readEntryLocked(key string, e diskEntry) ([]byte, int64, bool) {
	f := c.readers[e.seg]
	if f == nil {
		var err error
		f, err = os.Open(filepath.Join(c.dir, e.seg))
		if err != nil {
			return nil, 0, false
		}
		c.readers[e.seg] = f
	}
	buf := make([]byte, e.len)
	if _, err := f.ReadAt(buf, e.off); err != nil {
		return nil, 0, false
	}
	dl, ok := decodeLine(buf)
	if !ok || dl.Key != key {
		return nil, 0, false
	}
	return dl.Record, dl.At, true
}

// dropDiskLocked forgets a disk entry, moving its bytes to the dead pool.
func (c *Cache) dropDiskLocked(key string, e diskEntry) {
	delete(c.index, key)
	c.dead += int64(e.len) + 1
	c.live -= int64(e.len) + 1
}

// Put stores one record under its content key (scenario.RecordKey).
// Failed runs are never cached — an error record must not masquerade as
// a result on the next sweep. Implements scenario.RecordCache.
func (c *Cache) Put(rec scenario.Record) {
	if rec.Error != "" {
		return
	}
	// The cached flag and wall clock are replay artifacts of *this* run;
	// the stored record is the pristine result, stamped on the way out.
	rec.Cached = false
	data, err := json.Marshal(&rec)
	if err != nil {
		return
	}
	key := scenario.RecordKey(&rec)
	c.mu.Lock()
	defer c.mu.Unlock()
	at := c.now().UnixNano()
	c.insertMemLocked(key, at, data)
	c.appendDiskLocked(key, at, data)
	c.maybeCompactLocked()
}

// insertMemLocked adds (or refreshes) a memory-tier entry and evicts
// from the cold end until the budgets hold again. An entry larger than
// the whole byte budget is evicted immediately (disk still serves it).
func (c *Cache) insertMemLocked(key string, at int64, data []byte) {
	if el, ok := c.mem[key]; ok {
		me := el.Value.(*memEntry)
		c.bytes += int64(len(data)) - int64(len(me.data))
		me.at, me.data = at, data
		c.lru.MoveToFront(el)
	} else {
		c.mem[key] = c.lru.PushFront(&memEntry{key: key, at: at, data: data})
		c.bytes += int64(len(data))
	}
	for c.lru.Len() > 0 && c.overBudgetLocked() {
		c.evictions++
		c.removeMemLocked(c.lru.Back())
	}
}

func (c *Cache) overBudgetLocked() bool {
	return (c.opt.MaxEntries > 0 && c.lru.Len() > c.opt.MaxEntries) ||
		(c.opt.MaxBytes > 0 && c.bytes > c.opt.MaxBytes)
}

func (c *Cache) removeMemLocked(el *list.Element) {
	me := el.Value.(*memEntry)
	c.lru.Remove(el)
	delete(c.mem, me.key)
	c.bytes -= int64(len(me.data))
}

// appendDiskLocked appends one envelope line to the active segment. A
// write failure disables the disk tier for the rest of the run (memory
// keeps serving) rather than failing the sweep.
func (c *Cache) appendDiskLocked(key string, at int64, data []byte) {
	if c.dir == "" || c.readOnly || c.diskErr != nil {
		return
	}
	if c.active == nil {
		name := c.segNameLocked()
		f, err := os.OpenFile(filepath.Join(c.dir, name), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			c.diskErr = err
			return
		}
		c.active, c.activeNm, c.activeOf = f, name, 0
		c.segments = append(c.segments, name)
	}
	line := encodeLine(key, at, data)
	if _, err := c.active.Write(line); err != nil {
		c.diskErr = err
		return
	}
	if old, live := c.index[key]; live {
		c.dead += int64(old.len) + 1
		c.live -= int64(old.len) + 1
	}
	c.index[key] = diskEntry{seg: c.activeNm, off: c.activeOf, len: len(line) - 1, at: at}
	c.live += int64(len(line))
	c.activeOf += int64(len(line))
}

func encodeLine(key string, at int64, data []byte) []byte {
	line, err := json.Marshal(&diskLine{Key: key, At: at, Sum: sumHex(data), Record: data})
	if err != nil {
		// diskLine is plain data over already-marshaled bytes.
		panic("recordcache: encode segment line: " + err.Error())
	}
	return append(line, '\n')
}

// segNameLocked mints a fresh segment name that sorts after every
// existing one (zero-padded wall nanoseconds + pid + per-instance seq).
func (c *Cache) segNameLocked() string {
	c.segSeq++
	return fmt.Sprintf("seg-%020d-%d-%d%s", c.now().UnixNano(), os.Getpid(), c.segSeq, segExt)
}

// maybeCompactLocked rewrites the disk tier when enough of it is dead
// weight (at least half, and past an absolute floor so tiny caches
// don't churn).
func (c *Cache) maybeCompactLocked() {
	if c.dead >= compactMinDead && c.dead >= c.live {
		c.compactLocked()
	}
}

// Compact rewrites all live entries into one fresh segment and removes
// the old ones. Crash-safe: the new segment is fully written, fsynced,
// and renamed into place before anything is deleted, and duplicate
// entries from a crash between rename and delete collapse at next scan.
func (c *Cache) Compact() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.compactLocked()
}

func (c *Cache) compactLocked() error {
	if c.dir == "" || c.readOnly {
		return nil
	}
	// Stable output order: disk layout order of the surviving entries.
	type kv struct {
		key string
		e   diskEntry
	}
	entries := make([]kv, 0, len(c.index))
	for k, e := range c.index {
		entries = append(entries, kv{k, e})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].e.seg != entries[j].e.seg {
			return entries[i].e.seg < entries[j].e.seg
		}
		return entries[i].e.off < entries[j].e.off
	})

	newName := c.segNameLocked()
	tmp := filepath.Join(c.dir, fmt.Sprintf(".compact-%d-%d.tmp", os.Getpid(), c.segSeq))
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("recordcache: compact: %w", err)
	}
	newIndex := make(map[string]diskEntry, len(entries))
	var off int64
	for _, kv := range entries {
		data, at, ok := c.readEntryLocked(kv.key, kv.e)
		if !ok {
			c.corrupt++
			continue // rotted since indexing: compaction is how it dies
		}
		line := encodeLine(kv.key, at, data)
		if _, err := f.Write(line); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("recordcache: compact: %w", err)
		}
		newIndex[kv.key] = diskEntry{seg: newName, off: off, len: len(line) - 1, at: at}
		off += int64(len(line))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("recordcache: compact: %w", err)
	}
	f.Close()
	if err := os.Rename(tmp, filepath.Join(c.dir, newName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("recordcache: compact: %w", err)
	}

	// The new segment is durable; retire everything older.
	old := c.segments
	c.closeFilesLocked()
	for _, name := range old {
		os.Remove(filepath.Join(c.dir, name))
	}
	c.segments = []string{newName}
	c.index = newIndex
	c.live, c.dead = off, 0
	c.compacts++
	// Reopen the compacted segment for further appends.
	af, err := os.OpenFile(filepath.Join(c.dir, newName), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		c.diskErr = err
		return nil
	}
	c.active, c.activeNm, c.activeOf = af, newName, off
	return nil
}

// closeFilesLocked closes the active writer and all segment readers.
func (c *Cache) closeFilesLocked() {
	if c.active != nil {
		c.active.Close()
		c.active = nil
	}
	for _, f := range c.readers {
		f.Close()
	}
	c.readers = map[string]*os.File{}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
		Expired:     c.expired,
		Corrupt:     c.corrupt,
		Compacts:    c.compacts,
		Entries:     c.lru.Len(),
		Bytes:       c.bytes,
		DiskEntries: len(c.index),
		DiskLive:    c.live,
		DiskDead:    c.dead,
		ReadOnly:    c.readOnly,
	}
}

// Close releases file handles and the writer lock. The cache must not
// be used afterwards.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closeFilesLocked()
	if c.locked {
		os.Remove(filepath.Join(c.dir, lockFile))
		c.locked = false
	}
	return c.diskErr
}
