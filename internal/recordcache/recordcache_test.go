package recordcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/scenario"
)

// testRecord builds a distinguishable, key-complete record. pad inflates
// the marshaled size via the axes map, so byte-budget tests can steer
// entry sizes without inventing record fields.
func testRecord(n int, pad int) scenario.Record {
	rec := scenario.Record{
		Schema:       scenario.RecordSchema,
		Scenario:     "cache-test",
		Run:          n,
		Workload:     fmt.Sprintf("wl-%d", n),
		Threads:      1,
		Scale:        4,
		Seed:         int64(n + 1),
		ConfigDigest: fmt.Sprintf("digest-%04d", n),
		SimCycles:    uint64(1000 + n),
		Checksum:     float64(n) * 1.5,
	}
	if pad > 0 {
		rec.Axes = map[string]any{"pad": strings.Repeat("x", pad)}
	}
	return rec
}

func key(rec *scenario.Record) string { return scenario.RecordKey(rec) }

func mustGet(t *testing.T, c *Cache, rec scenario.Record) scenario.Record {
	t.Helper()
	got, ok := c.Get(key(&rec))
	if !ok {
		t.Fatalf("record %d (%s) missing from cache", rec.Run, rec.Workload)
	}
	if got.SimCycles != rec.SimCycles || got.Checksum != rec.Checksum || got.Workload != rec.Workload {
		t.Fatalf("record %d corrupted on round trip:\n got %+v\nwant %+v", rec.Run, got, rec)
	}
	return got
}

func TestMemoryOnlyRoundTrip(t *testing.T) {
	c, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := testRecord(1, 0)
	if _, ok := c.Get(key(&r)); ok {
		t.Fatal("hit on an empty cache")
	}
	c.Put(r)
	mustGet(t, c, r)
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

func TestErrorRecordsNeverCached(t *testing.T) {
	c, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := testRecord(1, 0)
	r.Error = "simulated failure"
	c.Put(r)
	if _, ok := c.Get(key(&r)); ok {
		t.Fatal("error record entered the cache")
	}
}

// TestDiskPersistence: entries survive Close/Open and a disk promotion
// returns the identical record.
func TestDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var recs []scenario.Record
	for i := 0; i < 5; i++ {
		recs = append(recs, testRecord(i, 10*i))
		c.Put(recs[i])
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	st := c2.Stats()
	if st.DiskEntries != 5 || st.Entries != 0 {
		t.Fatalf("after reopen: %+v, want 5 disk entries, cold memory", st)
	}
	for _, r := range recs {
		mustGet(t, c2, r)
	}
	if st := c2.Stats(); st.Entries != 5 {
		t.Fatalf("disk hits were not promoted to memory: %+v", st)
	}
}

// TestOverwriteLatestWins: re-putting a key serves the newest record and
// the superseded line becomes dead weight that compaction reclaims.
func TestOverwriteLatestWins(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	r := testRecord(1, 0)
	c.Put(r)
	r.SimCycles = 99999
	c.Put(r)
	mustGet(t, c, r)
	if st := c.Stats(); st.DiskEntries != 1 || st.DiskDead == 0 {
		t.Fatalf("overwrite accounting wrong: %+v", st)
	}
	if err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.DiskDead != 0 || st.DiskEntries != 1 {
		t.Fatalf("compaction did not reclaim dead bytes: %+v", st)
	}
	mustGet(t, c, r)
	c.Close()

	// Latest-wins must also hold across a reopen scan.
	c2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	mustGet(t, c2, r)
}

func TestTTLExpiry(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Options{Dir: dir, TTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	now := time.Unix(1_000_000, 0)
	c.now = func() time.Time { return now }
	r := testRecord(1, 0)
	c.Put(r)
	now = now.Add(30 * time.Minute)
	mustGet(t, c, r)
	now = now.Add(31 * time.Minute)
	if _, ok := c.Get(key(&r)); ok {
		t.Fatal("expired entry served")
	}
	st := c.Stats()
	if st.Expired == 0 || st.DiskEntries != 0 || st.Entries != 0 {
		t.Fatalf("expiry accounting wrong: %+v", st)
	}
}

// segmentFiles returns the cache directory's segment paths.
func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	paths := make([]string, len(names))
	for i, n := range names {
		paths[i] = filepath.Join(dir, n)
	}
	return paths
}

// corruptByte flips one bit inside the segment line holding marker and
// returns whether it found it.
func corruptByte(t *testing.T, path string, marker string) bool {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(data, []byte(marker))
	if i < 0 {
		return false
	}
	data[i] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return true
}

// TestBitFlipDetectedAndCompactedAway is the corruption-recovery
// contract: a flipped byte fails the entry's checksum at the reopen
// scan, the entry is skipped (not an error), and the open-time compact
// removes the bad bytes from disk while every healthy entry survives.
func TestBitFlipDetectedAndCompactedAway(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var recs []scenario.Record
	for i := 0; i < 4; i++ {
		recs = append(recs, testRecord(i, 100))
		c.Put(recs[i])
	}
	c.Close()

	// Flip a bit inside record 2's payload (its workload name).
	flipped := false
	for _, p := range segmentFiles(t, dir) {
		if corruptByte(t, p, `\"workload\":\"wl-2\"`) || corruptByte(t, p, `"workload":"wl-2"`) {
			flipped = true
			break
		}
	}
	if !flipped {
		t.Fatal("test premise broken: record 2 not found in any segment")
	}

	c2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("corruption must not error the open: %v", err)
	}
	defer c2.Close()
	st := c2.Stats()
	if st.Corrupt == 0 {
		t.Fatalf("bit flip not detected: %+v", st)
	}
	if st.Compacts == 0 || st.DiskDead != 0 {
		t.Fatalf("corruption detected but not compacted away: %+v", st)
	}
	if _, ok := c2.Get(key(&recs[2])); ok {
		t.Fatal("corrupted record served")
	}
	for i, r := range recs {
		if i == 2 {
			continue
		}
		mustGet(t, c2, r)
	}
	// The compacted segment must no longer contain the corrupt entry.
	for _, p := range segmentFiles(t, dir) {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(data, []byte("wl-2")) || bytes.Contains(data, []byte(key(&recs[2]))) {
			t.Fatalf("corrupt entry still present on disk in %s", p)
		}
	}
}

// TestTruncatedTailTolerated: a segment cut mid-line (interrupted append
// or crash) loses only the torn entry; everything before it still
// serves, and the cache keeps accepting writes.
func TestTruncatedTailTolerated(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var recs []scenario.Record
	for i := 0; i < 3; i++ {
		recs = append(recs, testRecord(i, 50))
		c.Put(recs[i])
	}
	c.Close()

	segs := segmentFiles(t, dir)
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, have %d", len(segs))
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Cut inside the final line.
	if err := os.WriteFile(segs[0], data[:len(data)-20], 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("torn tail must not error the open: %v", err)
	}
	defer c2.Close()
	mustGet(t, c2, recs[0])
	mustGet(t, c2, recs[1])
	if _, ok := c2.Get(key(&recs[2])); ok {
		t.Fatal("torn record served")
	}
	// A torn tail is crash debris, not corruption.
	if st := c2.Stats(); st.Corrupt != 0 {
		t.Fatalf("torn tail miscounted as corruption: %+v", st)
	}
	// The tier must still accept and serve new writes.
	r := testRecord(9, 0)
	c2.Put(r)
	mustGet(t, c2, r)
}

// TestStaleCompactionTempIgnored: a temp file left by a compaction that
// crashed mid-write must not be scanned as cache content, and the lock
// holder cleans it up.
func TestStaleCompactionTempIgnored(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	r := testRecord(1, 0)
	c.Put(r)
	c.Close()

	tmp := filepath.Join(dir, ".compact-99999-1.tmp")
	if err := os.WriteFile(tmp, []byte("{half a line"), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	mustGet(t, c2, r)
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("stale compaction temp file not removed by the lock holder")
	}
}

// TestSecondOpenerDegradesToReadOnly: while one instance holds the
// writer lock, a second instance on the same directory serves reads but
// keeps its puts out of the shared segments.
func TestSecondOpenerDegradesToReadOnly(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	shared := testRecord(1, 0)
	w.Put(shared)

	ro, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if st := ro.Stats(); !st.ReadOnly {
		t.Fatal("second opener did not degrade to read-only")
	}
	mustGet(t, ro, shared) // reads pass through to the shared disk tier
	private := testRecord(2, 0)
	ro.Put(private)
	mustGet(t, ro, private) // memory tier still works
	if st := ro.Stats(); st.DiskEntries != 1 {
		t.Fatalf("read-only instance wrote to disk: %+v", st)
	}
	// The writer never sees the read-only instance's private put.
	if _, ok := w.Get(key(&private)); ok {
		t.Fatal("read-only put leaked into the shared tier")
	}
}

// TestStaleLockStolen: a LOCK file naming a dead pid must not wedge the
// directory read-only forever.
func TestStaleLockStolen(t *testing.T) {
	dir := t.TempDir()
	// Pid 1 is init: alive but not ours — a *held* lock. Use an absurd
	// pid that cannot exist instead.
	if err := os.WriteFile(filepath.Join(dir, lockFile), []byte("999999999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if st := c.Stats(); st.ReadOnly {
		t.Fatal("stale lock not stolen")
	}
	r := testRecord(1, 0)
	c.Put(r)
	if st := c.Stats(); st.DiskEntries != 1 {
		t.Fatalf("writes disabled after lock steal: %+v", st)
	}
}
