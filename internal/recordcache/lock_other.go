//go:build !unix

package recordcache

// pidAlive is conservatively true on platforms without a cheap liveness
// probe: a lock that might be held is treated as held, and the opener
// degrades to read-only instead of corrupting a live writer's segments.
func pidAlive(pid int) bool {
	return pid > 0
}
