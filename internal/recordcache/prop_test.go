package recordcache

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/scenario"
)

// The memory-tier property test: a randomized Get/Put/TTL-advance
// sequence is mirrored against a map+timestamp reference model, and
// after every operation the tier's invariants must hold:
//
//   - entry count never exceeds MaxEntries, bytes never exceed MaxBytes;
//   - Stats' byte counter equals the sum of the resident entries' sizes
//     (checked via the model on hits);
//   - a hit always returns exactly the record most recently Put under
//     that key, and never one past its TTL;
//   - a key Put moments ago hits immediately (unless its entry alone
//     exceeds the byte budget — such entries are not retained);
//   - hits+misses equals the number of Gets issued.
//
// Misses beyond that are legal (LRU eviction may forget any key), so the
// model asserts correctness of what IS served, not a full LRU mirror.
func TestMemoryTierProperties(t *testing.T) {
	const (
		ops        = 4000
		keyspace   = 40
		maxEntries = 12
		maxBytes   = 8 << 10
	)
	rng := rand.New(rand.NewSource(7))
	c, err := Open(Options{MaxEntries: maxEntries, MaxBytes: maxBytes, TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	now := time.Unix(1_700_000_000, 0)
	c.now = func() time.Time { return now }

	type refEntry struct {
		rec  scenario.Record
		size int64
		at   time.Time
	}
	model := map[int]refEntry{}
	gets := int64(0)

	makeRec := func(k int) (scenario.Record, int64) {
		rec := testRecord(k, rng.Intn(600))
		rec.SimCycles = uint64(rng.Int63n(1 << 40)) // distinguish successive puts
		data, err := json.Marshal(&rec)
		if err != nil {
			t.Fatal(err)
		}
		return rec, int64(len(data))
	}

	for op := 0; op < ops; op++ {
		k := rng.Intn(keyspace)
		kr := testRecord(k, 0)
		kk := key(&kr)
		switch rng.Intn(5) {
		case 0, 1: // Put
			rec, size := makeRec(k)
			c.Put(rec)
			model[k] = refEntry{rec: rec, size: size, at: now}
			if size <= maxBytes {
				if _, ok := c.Get(kk); !ok {
					t.Fatalf("op %d: key %d missing immediately after Put", op, k)
				}
				gets++
			}
		case 2, 3: // Get
			got, ok := c.Get(kk)
			gets++
			if ok {
				ref, known := model[k]
				if !known {
					t.Fatalf("op %d: hit on key %d that was never Put", op, k)
				}
				if now.Sub(ref.at) > time.Minute {
					t.Fatalf("op %d: key %d served %v past its TTL", op, k, now.Sub(ref.at)-time.Minute)
				}
				if got.SimCycles != ref.rec.SimCycles || got.Checksum != ref.rec.Checksum {
					t.Fatalf("op %d: key %d returned stale data: got cycles %d, want %d",
						op, k, got.SimCycles, ref.rec.SimCycles)
				}
			}
		case 4: // advance time (TTL pressure)
			now = now.Add(time.Duration(rng.Intn(40)) * time.Second)
		}

		st := c.Stats()
		if st.Entries > maxEntries {
			t.Fatalf("op %d: %d entries exceeds budget %d", op, st.Entries, maxEntries)
		}
		if st.Bytes > maxBytes {
			t.Fatalf("op %d: %d bytes exceeds budget %d", op, st.Bytes, maxBytes)
		}
		if st.Bytes < 0 || st.Entries < 0 {
			t.Fatalf("op %d: negative accounting: %+v", op, st)
		}
		if (st.Entries == 0) != (st.Bytes == 0) {
			t.Fatalf("op %d: entry/byte accounting disagree: %+v", op, st)
		}
		if st.Hits+st.Misses != gets {
			t.Fatalf("op %d: hits+misses = %d, want %d gets", op, st.Hits+st.Misses, gets)
		}
	}
	if st := c.Stats(); st.Evictions == 0 || st.Expired == 0 {
		t.Fatalf("test exercised no evictions/expiries (%+v) — budgets too loose to mean anything", st)
	}
}

// TestConcurrentReadersUnderWriter hammers one cache with parallel
// readers while a writer churns the same keyspace — run under -race this
// is the memory-tier's concurrency contract. Any record served must be
// internally consistent (the key fields a record derives its identity
// from must match the workload stamped at Put time).
func TestConcurrentReadersUnderWriter(t *testing.T) {
	c, err := Open(Options{MaxEntries: 16, MaxBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const keyspace = 24

	keys := make([]string, keyspace)
	for k := 0; k < keyspace; k++ {
		kr := testRecord(k, 0)
		keys[k] = key(&kr)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Intn(keyspace)
				if rec, ok := c.Get(keys[k]); ok {
					if want := fmt.Sprintf("wl-%d", k); rec.Workload != want {
						t.Errorf("key %d served record for %s", k, rec.Workload)
						return
					}
					if !strings.HasPrefix(rec.ConfigDigest, "digest-") {
						t.Errorf("key %d served malformed record %+v", k, rec)
						return
					}
				}
			}
		}(int64(g))
	}
	wrng := rand.New(rand.NewSource(99))
	for op := 0; op < 2000; op++ {
		rec := testRecord(wrng.Intn(keyspace), wrng.Intn(200))
		rec.SimCycles = uint64(op)
		c.Put(rec)
	}
	close(stop)
	wg.Wait()
}
