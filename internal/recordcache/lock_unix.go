//go:build unix

package recordcache

import (
	"os"
	"syscall"
)

// pidAlive reports whether pid names a running process. Signal 0 probes
// without delivering; EPERM means the process exists but is not ours —
// still alive, still holding the lock.
func pidAlive(pid int) bool {
	if pid <= 0 {
		return false
	}
	p, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = p.Signal(syscall.Signal(0))
	return err == nil || err == syscall.EPERM
}
