package directory

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/arch"
	"repro/internal/config"
)

// sharersOf collects and sorts a Ref's sharer set.
func sharersOf(r Ref) []int {
	var out []int
	r.ForEachSharer(func(t arch.TileID) { out = append(out, int(t)) })
	sort.Ints(out)
	return out
}

// sharersOfSet collects and sorts a reference SharerSet.
func sharersOfSet(s SharerSet) []int {
	var out []int
	s.ForEach(func(t arch.TileID) { out = append(out, int(t)) })
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStoreMatchesReference drives a Store entry and the reference
// SharerSet implementation through the same random operation sequence for
// every directory policy and asserts identical observable behavior:
// Add's evict/trap results, membership, counts, the sharer sets
// themselves, and InvTrap. This is the equivalence property that lets the
// memory system switch to the structure-of-arrays arena without
// re-deriving the protocol arguments.
func TestStoreMatchesReference(t *testing.T) {
	cases := []struct {
		name  string
		kind  config.CoherenceKind
		ptrs  int
		tiles int
	}{
		{"fullmap-16", config.FullMap, 0, 16},
		{"fullmap-100", config.FullMap, 0, 100},
		{"fullmap-1024", config.FullMap, 0, 1024},
		{"dirinb-4", config.LimitedNB, 4, 64},
		{"dirinb-2-1024", config.LimitedNB, 2, 1024},
		{"limitless-4", config.LimitLESS, 4, 64},
		{"limitless-4-1024", config.LimitLESS, 4, 1024},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := config.CoherenceConfig{Kind: tc.kind, DirPointers: tc.ptrs}
			store := NewStore(cfg, tc.tiles, 0)
			ref := store.Alloc()
			want := New(tc.kind, tc.ptrs, tc.tiles)
			rng := rand.New(rand.NewSource(int64(tc.tiles)*31 + int64(tc.ptrs)))
			for op := 0; op < 4096; op++ {
				tile := arch.TileID(rng.Intn(tc.tiles))
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4: // Add dominates: sharer sets grow in practice
					ge, gt := ref.AddSharer(tile)
					we, wt := want.Add(tile)
					// Dir_iNB eviction order depends only on operation order,
					// which is identical here, so even the evicted pointer
					// must match.
					if ge != we || gt != wt {
						t.Fatalf("op %d: Add(%d) = (%v,%v), reference (%v,%v)", op, tile, ge, gt, we, wt)
					}
				case 5, 6:
					ref.RemoveSharer(tile)
					want.Remove(tile)
				case 7:
					if got := ref.ContainsSharer(tile); got != want.Contains(tile) {
						t.Fatalf("op %d: Contains(%d) = %v, reference %v", op, tile, got, want.Contains(tile))
					}
				case 8:
					if rng.Intn(8) == 0 { // Clear rarely: keep sets populated
						ref.ClearSharers()
						want.Clear()
					}
				case 9:
					if got := ref.InvTrap(); got != want.InvTrap() {
						t.Fatalf("op %d: InvTrap = %v, reference %v", op, got, want.InvTrap())
					}
				}
				if ref.SharerCount() != want.Count() {
					t.Fatalf("op %d: count %d, reference %d", op, ref.SharerCount(), want.Count())
				}
				if !equalInts(sharersOf(ref), sharersOfSet(want)) {
					t.Fatalf("op %d: sharers %v, reference %v", op, sharersOf(ref), sharersOfSet(want))
				}
			}
		})
	}
}

// TestStoreEntryLifecycle mirrors TestEntryLifecycle against the arena:
// owner and last-writer bookkeeping plus idleness.
func TestStoreEntryLifecycle(t *testing.T) {
	s := NewStore(config.CoherenceConfig{Kind: config.FullMap}, 16, 0)
	e := s.Alloc()
	if !e.Idle() {
		t.Fatal("fresh entry not idle")
	}
	if e.Owner() != arch.InvalidTile || e.LastWriter() != arch.InvalidTile {
		t.Fatal("fresh entry has owner or writer")
	}
	e.AddSharer(3)
	if e.Idle() {
		t.Fatal("entry with sharer reported idle")
	}
	e.ClearSharers()
	e.SetOwner(5)
	e.SetLastWriter(5)
	e.SetLastWriterMask(0xF0)
	if e.Idle() {
		t.Fatal("owned entry reported idle")
	}
	if e.Owner() != 5 || e.LastWriter() != 5 || e.LastWriterMask() != 0xF0 {
		t.Fatal("owner/writer state lost")
	}
	e.SetOwner(arch.InvalidTile)
	if !e.Idle() {
		t.Fatal("released entry not idle")
	}
}

// TestStoreManyEntries checks that handles into a grown arena stay
// consistent: interleaved mutations of many entries never bleed into each
// other (the per-entry strides must be disjoint).
func TestStoreManyEntries(t *testing.T) {
	const entries = 300
	tiles := 130 // three bit-vector words per entry
	s := NewStore(config.CoherenceConfig{Kind: config.FullMap}, tiles, 0)
	refs := make([]Ref, entries)
	for i := range refs {
		refs[i] = s.Alloc()
		refs[i].AddSharer(arch.TileID(i % tiles))
		refs[i].SetLastWriterMask(uint64(i))
	}
	if s.Len() != entries {
		t.Fatalf("Len = %d, want %d", s.Len(), entries)
	}
	for i := range refs {
		if !refs[i].ContainsSharer(arch.TileID(i % tiles)) {
			t.Fatalf("entry %d lost its sharer", i)
		}
		if refs[i].SharerCount() != 1 {
			t.Fatalf("entry %d count = %d", i, refs[i].SharerCount())
		}
		if refs[i].LastWriterMask() != uint64(i) {
			t.Fatalf("entry %d mask = %d", i, refs[i].LastWriterMask())
		}
	}
}
