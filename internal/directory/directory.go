// Package directory implements the sharer-tracking policies of Graphite's
// directory-based MSI coherence protocols (paper §3.2 and §4.4): the
// full-map directory, the limited directory Dir_iNB of Agarwal et al., and
// the LimitLESS scheme of Chaiken et al., in which a limited number of
// hardware pointers track the first sharers and overflow is handled by a
// software trap that preserves the full sharer set at extra latency.
//
// The package is purely bookkeeping: protocol message flow and timing live
// in internal/memsys. Entries are owned by a single home-tile server
// goroutine and need no locking.
package directory

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/config"
)

// SharerSet tracks which tiles hold a line in Shared state, under one of
// the three directory policies.
type SharerSet interface {
	// Add records t as a sharer. If the policy must reclaim a pointer, it
	// returns the tile to invalidate (Dir_iNB); otherwise evict is
	// arch.InvalidTile. trap reports that the add overflowed into
	// software (LimitLESS) and must be charged the trap latency.
	Add(t arch.TileID) (evict arch.TileID, trap bool)
	// Remove forgets a sharer. Removing an absent tile is a no-op.
	Remove(t arch.TileID)
	// Contains reports whether t is currently tracked as a sharer.
	Contains(t arch.TileID) bool
	// Count returns the number of tracked sharers.
	Count() int
	// ForEach visits every tracked sharer.
	ForEach(fn func(arch.TileID))
	// Clear forgets all sharers.
	Clear()
	// InvTrap reports whether invalidating the current sharer set
	// requires a software trap (LimitLESS with overflowed pointers).
	InvTrap() bool
}

// New builds a sharer set for the configured protocol. tiles bounds the
// full-map bit vector; pointers is i for Dir_iNB and LimitLESS(i).
func New(kind config.CoherenceKind, pointers, tiles int) SharerSet {
	switch kind {
	case config.FullMap:
		return newFullMap(tiles)
	case config.LimitedNB:
		return &limitedNB{cap: pointers}
	case config.LimitLESS:
		return &limitless{cap: pointers, fullMap: newFullMap(tiles)}
	default:
		panic(fmt.Sprintf("directory: unknown coherence kind %d", int(kind)))
	}
}

// fullMap is a bit-vector sharer set. Targets of at most 64 tiles (the
// common case) fit in the inline word, so an in-place init allocates
// nothing.
type fullMap struct {
	bits   []uint64
	inline [1]uint64
	count  int
}

func newFullMap(tiles int) *fullMap {
	f := &fullMap{}
	f.init(tiles)
	return f
}

// init prepares the map for tiles sharers, reusing the inline word when it
// suffices.
func (f *fullMap) init(tiles int) {
	if tiles <= 64 {
		f.inline[0] = 0
		f.bits = f.inline[:]
	} else {
		f.bits = make([]uint64, (tiles+63)/64)
	}
	f.count = 0
}

func (f *fullMap) Add(t arch.TileID) (arch.TileID, bool) {
	w, b := int(t)/64, uint(t)%64
	if f.bits[w]&(1<<b) == 0 {
		f.bits[w] |= 1 << b
		f.count++
	}
	return arch.InvalidTile, false
}

func (f *fullMap) Remove(t arch.TileID) {
	w, b := int(t)/64, uint(t)%64
	if f.bits[w]&(1<<b) != 0 {
		f.bits[w] &^= 1 << b
		f.count--
	}
}

func (f *fullMap) Contains(t arch.TileID) bool {
	return f.bits[int(t)/64]&(1<<(uint(t)%64)) != 0
}

func (f *fullMap) Count() int { return f.count }

func (f *fullMap) ForEach(fn func(arch.TileID)) {
	for w, word := range f.bits {
		for word != 0 {
			b := word & -word
			bit := 0
			for m := b; m > 1; m >>= 1 {
				bit++
			}
			fn(arch.TileID(w*64 + bit))
			word &^= b
		}
	}
}

func (f *fullMap) Clear() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.count = 0
}

func (f *fullMap) InvTrap() bool { return false }

// limitedNB is the Dir_iNB limited directory: i pointers, no broadcast.
// When the pointers are exhausted, adding a sharer evicts an existing one.
type limitedNB struct {
	cap  int
	ptrs []arch.TileID
	next int // round-robin eviction cursor
}

func (d *limitedNB) Add(t arch.TileID) (arch.TileID, bool) {
	for _, p := range d.ptrs {
		if p == t {
			return arch.InvalidTile, false
		}
	}
	if len(d.ptrs) < d.cap {
		d.ptrs = append(d.ptrs, t)
		return arch.InvalidTile, false
	}
	// Reclaim a pointer round-robin: the caller must invalidate the
	// returned tile's copy before granting the new one.
	victim := d.ptrs[d.next%len(d.ptrs)]
	d.ptrs[d.next%len(d.ptrs)] = t
	d.next++
	return victim, false
}

func (d *limitedNB) Remove(t arch.TileID) {
	for i, p := range d.ptrs {
		if p == t {
			d.ptrs[i] = d.ptrs[len(d.ptrs)-1]
			d.ptrs = d.ptrs[:len(d.ptrs)-1]
			return
		}
	}
}

func (d *limitedNB) Contains(t arch.TileID) bool {
	for _, p := range d.ptrs {
		if p == t {
			return true
		}
	}
	return false
}

func (d *limitedNB) Count() int { return len(d.ptrs) }

func (d *limitedNB) ForEach(fn func(arch.TileID)) {
	for _, p := range d.ptrs {
		fn(p)
	}
}

func (d *limitedNB) Clear() { d.ptrs = d.ptrs[:0] }

func (d *limitedNB) InvTrap() bool { return false }

// limitless keeps the first cap sharers in "hardware" and overflows to a
// software-maintained full map; overflow operations trap.
type limitless struct {
	cap     int
	fullMap *fullMap
}

func (l *limitless) Add(t arch.TileID) (arch.TileID, bool) {
	if l.fullMap.Contains(t) {
		return arch.InvalidTile, false
	}
	trap := l.fullMap.Count() >= l.cap
	l.fullMap.Add(t)
	return arch.InvalidTile, trap
}

func (l *limitless) Remove(t arch.TileID)        { l.fullMap.Remove(t) }
func (l *limitless) Contains(t arch.TileID) bool { return l.fullMap.Contains(t) }
func (l *limitless) Count() int                  { return l.fullMap.Count() }
func (l *limitless) ForEach(fn func(arch.TileID)) {
	l.fullMap.ForEach(fn)
}
func (l *limitless) Clear() { l.fullMap.Clear() }

// InvTrap implements SharerSet: walking an overflowed sharer list is done
// by the software handler.
func (l *limitless) InvTrap() bool { return l.fullMap.Count() > l.cap }

// Entry is the directory state of one line at its home tile.
type Entry struct {
	// Sharers tracks Shared-state copies.
	Sharers SharerSet
	// Owner is the Modified-state owner, or arch.InvalidTile.
	Owner arch.TileID
	// LastWriter and LastWriterMask record the most recent writer and the
	// 8-byte-word mask it dirtied, for true/false-sharing classification
	// of later misses (paper §4.4, Figure 8).
	LastWriter     arch.TileID
	LastWriterMask uint64

	// full backs Sharers for the full-map protocol so that an Entry
	// embedded in a larger home-side record costs no extra allocations
	// (directories hold one entry per line ever homed — the dominant
	// steady-state allocation before entries were embedded).
	full fullMap
}

// InitEntry initializes an idle entry in place for the configured
// protocol. Full-map targets reuse the entry's inline sharer storage;
// limited directories allocate their pointer state.
func InitEntry(e *Entry, cfg config.CoherenceConfig, tiles int) {
	e.Owner = arch.InvalidTile
	e.LastWriter = arch.InvalidTile
	e.LastWriterMask = 0
	if cfg.Kind == config.FullMap {
		e.full.init(tiles)
		e.Sharers = &e.full
	} else {
		e.Sharers = New(cfg.Kind, cfg.DirPointers, tiles)
	}
}

// NewEntry builds an idle entry for the configured protocol.
func NewEntry(cfg config.CoherenceConfig, tiles int) *Entry {
	e := &Entry{}
	InitEntry(e, cfg, tiles)
	return e
}

// Idle reports whether no tile caches the line.
func (e *Entry) Idle() bool {
	return e.Owner == arch.InvalidTile && e.Sharers.Count() == 0
}
