package directory

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/config"
)

func TestFullMapBasics(t *testing.T) {
	s := New(config.FullMap, 0, 128)
	if s.Count() != 0 || s.Contains(5) {
		t.Fatal("fresh set not empty")
	}
	for _, tile := range []arch.TileID{0, 5, 63, 64, 127} {
		evict, trap := s.Add(tile)
		if evict != arch.InvalidTile || trap {
			t.Fatalf("full map evicted/trapped on add of %v", tile)
		}
	}
	if s.Count() != 5 {
		t.Fatalf("count = %d", s.Count())
	}
	// Duplicate add is idempotent.
	s.Add(5)
	if s.Count() != 5 {
		t.Fatalf("duplicate add changed count to %d", s.Count())
	}
	seen := map[arch.TileID]bool{}
	s.ForEach(func(tile arch.TileID) { seen[tile] = true })
	for _, tile := range []arch.TileID{0, 5, 63, 64, 127} {
		if !seen[tile] {
			t.Fatalf("ForEach missed %v", tile)
		}
	}
	s.Remove(63)
	if s.Contains(63) || s.Count() != 4 {
		t.Fatal("remove failed")
	}
	s.Remove(63) // no-op
	if s.Count() != 4 {
		t.Fatal("double remove changed count")
	}
	s.Clear()
	if s.Count() != 0 {
		t.Fatal("clear failed")
	}
	if s.InvTrap() {
		t.Fatal("full map never traps")
	}
}

func TestLimitedNBEvictsOnOverflow(t *testing.T) {
	s := New(config.LimitedNB, 4, 64)
	for tile := arch.TileID(0); tile < 4; tile++ {
		if evict, _ := s.Add(tile); evict != arch.InvalidTile {
			t.Fatalf("eviction before pointers full: %v", evict)
		}
	}
	evict, trap := s.Add(10)
	if trap {
		t.Fatal("Dir_iNB must not trap")
	}
	if evict == arch.InvalidTile {
		t.Fatal("no eviction at pointer overflow")
	}
	if !s.Contains(10) {
		t.Fatal("new sharer not tracked")
	}
	if s.Contains(evict) {
		t.Fatalf("evicted sharer %v still tracked", evict)
	}
	if s.Count() != 4 {
		t.Fatalf("count = %d, want 4", s.Count())
	}
}

func TestLimitedNBEvictionRotates(t *testing.T) {
	s := New(config.LimitedNB, 2, 64)
	s.Add(0)
	s.Add(1)
	e1, _ := s.Add(2)
	e2, _ := s.Add(3)
	if e1 == e2 {
		t.Fatalf("round-robin reclaimed the same pointer twice: %v", e1)
	}
}

func TestLimitedNBDuplicateAdd(t *testing.T) {
	s := New(config.LimitedNB, 2, 64)
	s.Add(7)
	s.Add(7)
	if s.Count() != 1 {
		t.Fatalf("duplicate add duplicated pointer: count=%d", s.Count())
	}
	if evict, _ := s.Add(8); evict != arch.InvalidTile {
		t.Fatal("eviction with free pointer")
	}
}

func TestLimitLESSTrapsBeyondPointers(t *testing.T) {
	s := New(config.LimitLESS, 4, 64)
	for tile := arch.TileID(0); tile < 4; tile++ {
		if evict, trap := s.Add(tile); trap || evict != arch.InvalidTile {
			t.Fatalf("hardware pointer add trapped or evicted")
		}
	}
	if s.InvTrap() {
		t.Fatal("InvTrap before overflow")
	}
	evict, trap := s.Add(20)
	if !trap {
		t.Fatal("overflow add did not trap")
	}
	if evict != arch.InvalidTile {
		t.Fatal("LimitLESS must never evict sharers")
	}
	if s.Count() != 5 || !s.Contains(20) {
		t.Fatal("overflow sharer lost — LimitLESS preserves the full set")
	}
	if !s.InvTrap() {
		t.Fatal("InvTrap must report software involvement after overflow")
	}
	// Shrinking back under the pointer count stops trapping.
	s.Remove(20)
	if s.InvTrap() {
		t.Fatal("InvTrap after shrink")
	}
	// Re-adding an existing sharer never traps.
	if _, trap := s.Add(3); trap {
		t.Fatal("duplicate add trapped")
	}
}

func TestEntryLifecycle(t *testing.T) {
	e := NewEntry(config.CoherenceConfig{Kind: config.FullMap}, 16)
	if !e.Idle() {
		t.Fatal("fresh entry not idle")
	}
	e.Sharers.Add(3)
	if e.Idle() {
		t.Fatal("entry with sharer is idle")
	}
	e.Sharers.Clear()
	e.Owner = 5
	if e.Idle() {
		t.Fatal("entry with owner is idle")
	}
	e.Owner = arch.InvalidTile
	if !e.Idle() {
		t.Fatal("cleared entry not idle")
	}
}

func TestPoliciesAgreeOnMembershipQuick(t *testing.T) {
	// Property: for any operation sequence within pointer capacity, all
	// three policies track exactly the same membership.
	f := func(ops []uint8) bool {
		full := New(config.FullMap, 0, 16)
		nb := New(config.LimitedNB, 16, 16) // capacity == tiles: never evicts
		ll := New(config.LimitLESS, 16, 16)
		for _, op := range ops {
			tile := arch.TileID(op % 16)
			if op&0x80 != 0 {
				full.Remove(tile)
				nb.Remove(tile)
				ll.Remove(tile)
			} else {
				full.Add(tile)
				nb.Add(tile)
				ll.Add(tile)
			}
		}
		if full.Count() != nb.Count() || full.Count() != ll.Count() {
			return false
		}
		for tile := arch.TileID(0); tile < 16; tile++ {
			if full.Contains(tile) != nb.Contains(tile) || full.Contains(tile) != ll.Contains(tile) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLimitedNBNeverExceedsPointersQuick(t *testing.T) {
	f := func(ops []uint8, capRaw uint8) bool {
		capacity := int(capRaw%8) + 1
		s := New(config.LimitedNB, capacity, 64)
		for _, op := range ops {
			s.Add(arch.TileID(op % 64))
			if s.Count() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
