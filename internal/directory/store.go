package directory

import (
	"repro/internal/arch"
	"repro/internal/config"
)

// Store is a structure-of-arrays arena of directory entries. Where Entry
// embeds per-line sharer state behind an interface (and, beyond 64 tiles,
// a per-line heap-allocated bit vector), a Store packs the state of every
// line homed in one directory shard into parallel slices: owners, last
// writers and their masks, sharer counts, and — per policy — either a
// fixed stride of sharer bit-vector words (full map, LimitLESS) or a
// fixed stride of pointer slots (Dir_iNB). A thousand-tile simulation
// then costs one bulk allocation per growth step instead of one bit
// vector per line ever homed, and a directory walk touches contiguous
// memory.
//
// A Store belongs to a single directory shard and inherits its locking:
// all access happens with the shard mutex held (see internal/memsys).
// Ref is the lightweight handle (store pointer + entry index) through
// which protocol code reads and mutates one entry.
type Store struct {
	kind   config.CoherenceKind
	stride int // bit-vector words per entry (FullMap, LimitLESS)
	pcap   int // pointer slots per entry (LimitedNB); trap threshold (LimitLESS)

	owners  []arch.TileID
	writers []arch.TileID
	wmasks  []uint64
	counts  []int32
	bits    []uint64      // FullMap/LimitLESS: stride words per entry
	ptrs    []arch.TileID // LimitedNB: pcap slots per entry
	cursors []int32       // LimitedNB: round-robin eviction cursor
}

// NewStore builds an empty entry arena for the configured protocol. hint
// presizes the arena (entries); zero is fine — the arena grows by
// amortized doubling.
func NewStore(cfg config.CoherenceConfig, tiles, hint int) *Store {
	s := &Store{kind: cfg.Kind, pcap: cfg.DirPointers}
	switch cfg.Kind {
	case config.FullMap, config.LimitLESS:
		s.stride = (tiles + 63) / 64
	case config.LimitedNB:
	default:
		panic("directory: unknown coherence kind")
	}
	if hint > 0 {
		s.presize(hint)
	}
	return s
}

// presize reserves capacity for n entries across every parallel slice.
func (s *Store) presize(n int) {
	s.owners = make([]arch.TileID, 0, n)
	s.writers = make([]arch.TileID, 0, n)
	s.wmasks = make([]uint64, 0, n)
	s.counts = make([]int32, 0, n)
	if s.stride > 0 {
		s.bits = make([]uint64, 0, n*s.stride)
	}
	if s.kind == config.LimitedNB {
		s.ptrs = make([]arch.TileID, 0, n*s.pcap)
		s.cursors = make([]int32, 0, n)
	}
}

// Len returns the number of allocated entries.
func (s *Store) Len() int { return len(s.owners) }

// Alloc appends one idle entry and returns its handle.
func (s *Store) Alloc() Ref {
	if cap(s.owners) == 0 {
		// First entry of an unhinted store: jump straight to a useful
		// capacity. Growing seven parallel slices through append's early
		// doubling schedule costs ~40 small allocations per shard before
		// reaching this size; one presize costs seven. Shards never
		// touched (every line homed elsewhere) still cost nothing.
		s.presize(64)
	}
	i := int32(len(s.owners))
	s.owners = append(s.owners, arch.InvalidTile)
	s.writers = append(s.writers, arch.InvalidTile)
	s.wmasks = append(s.wmasks, 0)
	s.counts = append(s.counts, 0)
	if s.stride > 0 {
		for w := 0; w < s.stride; w++ {
			s.bits = append(s.bits, 0)
		}
	}
	if s.kind == config.LimitedNB {
		for p := 0; p < s.pcap; p++ {
			s.ptrs = append(s.ptrs, arch.InvalidTile)
		}
		s.cursors = append(s.cursors, 0)
	}
	return Ref{s: s, i: i}
}

// Ref is a handle to one directory entry: a store pointer plus an entry
// index. Refs are values; they stay valid for the life of the store
// (entries are never freed — a line's home state persists, as with the
// embedded-Entry design it replaces).
type Ref struct {
	s *Store
	i int32
}

// Owner returns the Modified-state owner, or arch.InvalidTile.
func (r Ref) Owner() arch.TileID { return r.s.owners[r.i] }

// SetOwner records the Modified-state owner.
func (r Ref) SetOwner(t arch.TileID) { r.s.owners[r.i] = t }

// LastWriter returns the most recent writer (for true/false-sharing
// classification of later misses; paper §4.4).
func (r Ref) LastWriter() arch.TileID { return r.s.writers[r.i] }

// SetLastWriter records the most recent writer.
func (r Ref) SetLastWriter(t arch.TileID) { r.s.writers[r.i] = t }

// LastWriterMask returns the 8-byte-word mask the last writer dirtied.
func (r Ref) LastWriterMask() uint64 { return r.s.wmasks[r.i] }

// SetLastWriterMask records the last writer's mask.
func (r Ref) SetLastWriterMask(m uint64) { r.s.wmasks[r.i] = m }

// SharerCount returns the number of tracked sharers.
func (r Ref) SharerCount() int { return int(r.s.counts[r.i]) }

// Idle reports whether no tile caches the line.
func (r Ref) Idle() bool {
	return r.s.owners[r.i] == arch.InvalidTile && r.s.counts[r.i] == 0
}

func (r Ref) words() []uint64 {
	base := int(r.i) * r.s.stride
	return r.s.bits[base : base+r.s.stride]
}

func (r Ref) slots() []arch.TileID {
	base := int(r.i) * r.s.pcap
	return r.s.ptrs[base : base+r.s.pcap]
}

// AddSharer records t as a sharer under the entry's policy. If the policy
// must reclaim a pointer, it returns the tile to invalidate (Dir_iNB);
// otherwise evict is arch.InvalidTile. trap reports that the add
// overflowed into software (LimitLESS) and must be charged the trap
// latency. Semantics match SharerSet.Add exactly.
func (r Ref) AddSharer(t arch.TileID) (evict arch.TileID, trap bool) {
	s := r.s
	switch s.kind {
	case config.FullMap, config.LimitLESS:
		words := r.words()
		w, b := int(t)/64, uint(t)%64
		if words[w]&(1<<b) != 0 {
			return arch.InvalidTile, false
		}
		trap = s.kind == config.LimitLESS && int(s.counts[r.i]) >= s.pcap
		words[w] |= 1 << b
		s.counts[r.i]++
		return arch.InvalidTile, trap
	case config.LimitedNB:
		slots := r.slots()
		n := int(s.counts[r.i])
		for _, p := range slots[:n] {
			if p == t {
				return arch.InvalidTile, false
			}
		}
		if n < s.pcap {
			slots[n] = t
			s.counts[r.i]++
			return arch.InvalidTile, false
		}
		// Reclaim a pointer round-robin: the caller must invalidate the
		// returned tile's copy before granting the new one.
		cur := int(s.cursors[r.i]) % n
		victim := slots[cur]
		slots[cur] = t
		s.cursors[r.i]++
		return victim, false
	}
	panic("directory: unknown coherence kind")
}

// RemoveSharer forgets a sharer. Removing an absent tile is a no-op.
func (r Ref) RemoveSharer(t arch.TileID) {
	s := r.s
	switch s.kind {
	case config.FullMap, config.LimitLESS:
		words := r.words()
		w, b := int(t)/64, uint(t)%64
		if words[w]&(1<<b) != 0 {
			words[w] &^= 1 << b
			s.counts[r.i]--
		}
	case config.LimitedNB:
		slots := r.slots()
		n := int(s.counts[r.i])
		for j, p := range slots[:n] {
			if p == t {
				slots[j] = slots[n-1]
				slots[n-1] = arch.InvalidTile
				s.counts[r.i]--
				return
			}
		}
	}
}

// ContainsSharer reports whether t is currently tracked as a sharer.
func (r Ref) ContainsSharer(t arch.TileID) bool {
	s := r.s
	switch s.kind {
	case config.FullMap, config.LimitLESS:
		return r.words()[int(t)/64]&(1<<(uint(t)%64)) != 0
	case config.LimitedNB:
		for _, p := range r.slots()[:s.counts[r.i]] {
			if p == t {
				return true
			}
		}
	}
	return false
}

// ForEachSharer visits every tracked sharer.
func (r Ref) ForEachSharer(fn func(arch.TileID)) {
	s := r.s
	switch s.kind {
	case config.FullMap, config.LimitLESS:
		for w, word := range r.words() {
			for word != 0 {
				b := word & -word
				bit := 0
				for m := b; m > 1; m >>= 1 {
					bit++
				}
				fn(arch.TileID(w*64 + bit))
				word &^= b
			}
		}
	case config.LimitedNB:
		for _, p := range r.slots()[:s.counts[r.i]] {
			fn(p)
		}
	}
}

// ClearSharers forgets all sharers.
func (r Ref) ClearSharers() {
	s := r.s
	switch s.kind {
	case config.FullMap, config.LimitLESS:
		words := r.words()
		for j := range words {
			words[j] = 0
		}
	case config.LimitedNB:
		slots := r.slots()
		for j := range slots[:s.counts[r.i]] {
			slots[j] = arch.InvalidTile
		}
	}
	s.counts[r.i] = 0
}

// InvTrap reports whether invalidating the current sharer set requires a
// software trap (LimitLESS with overflowed pointers).
func (r Ref) InvTrap() bool {
	return r.s.kind == config.LimitLESS && int(r.s.counts[r.i]) > r.s.pcap
}
