package directory

import "repro/internal/config"

// Checkpoint accessors. A directory entry is captured as (arena index,
// owner, last writer + mask, sharers, cursor) and rebuilt by re-Allocing
// entries in arena-index order and re-adding sharers in ForEachSharer's
// order — slot order for limited-pointer policies, ascending tile order
// for bit vectors — which reproduces the arena byte for byte, including
// pointer-slot layout and round-robin cursors.

// Index returns the entry's arena index within its store.
func (r Ref) Index() int { return int(r.i) }

// Entry returns the handle of the i'th allocated entry.
func (s *Store) Entry(i int) Ref { return Ref{s: s, i: int32(i)} }

// Cursor returns the LimitedNB round-robin eviction cursor (zero for
// other policies).
func (r Ref) Cursor() int32 {
	if r.s.kind != config.LimitedNB {
		return 0
	}
	return r.s.cursors[r.i]
}

// SetCursor restores the LimitedNB eviction cursor; a no-op for other
// policies.
func (r Ref) SetCursor(v int32) {
	if r.s.kind != config.LimitedNB {
		return
	}
	r.s.cursors[r.i] = v
}
