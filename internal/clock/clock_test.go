package clock

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func TestLocalAdvance(t *testing.T) {
	var c Local
	if got := c.Now(); got != 0 {
		t.Fatalf("zero-value clock reads %d, want 0", got)
	}
	if got := c.Advance(5); got != 5 {
		t.Fatalf("Advance(5) = %d, want 5", got)
	}
	if got := c.Advance(0); got != 5 {
		t.Fatalf("Advance(0) moved clock to %d", got)
	}
	if got := c.Advance(-10); got != 5 {
		t.Fatalf("negative advance moved clock to %d", got)
	}
	if got := c.Advance(3); got != 8 {
		t.Fatalf("Advance(3) = %d, want 8", got)
	}
}

func TestLocalForwardMonotonic(t *testing.T) {
	var c Local
	c.Advance(100)
	if got := c.Forward(50); got != 100 {
		t.Fatalf("Forward(50) on clock at 100 = %d, want 100 (no backwards motion)", got)
	}
	if got := c.Forward(250); got != 250 {
		t.Fatalf("Forward(250) = %d, want 250", got)
	}
	if got := c.Now(); got != 250 {
		t.Fatalf("Now() = %d after Forward(250)", got)
	}
}

func TestLocalConcurrentAdvance(t *testing.T) {
	var c Local
	const workers = 8
	const perWorker = 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Advance(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); got != workers*perWorker {
		t.Fatalf("concurrent advances lost updates: %d != %d", got, workers*perWorker)
	}
}

func TestLocalConcurrentForwardNeverRegresses(t *testing.T) {
	var c Local
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			prev := arch.Cycles(0)
			for i := 0; i < 5_000; i++ {
				got := c.Forward(arch.Cycles(i * (w + 1)))
				if got < prev {
					t.Errorf("clock regressed: %d after %d", got, prev)
					return
				}
				prev = got
			}
		}(w)
	}
	wg.Wait()
}

func TestProgressWindowAverages(t *testing.T) {
	w := NewProgressWindow(4)
	if got := w.Now(); got != 0 {
		t.Fatalf("empty window reads %d", got)
	}
	w.Observe(100)
	if got := w.Now(); got != 100 {
		t.Fatalf("one sample: Now() = %d, want 100", got)
	}
	w.Observe(200)
	if got := w.Now(); got != 150 {
		t.Fatalf("two samples: Now() = %d, want 150", got)
	}
	w.Observe(300)
	w.Observe(400)
	if got := w.Now(); got != 250 {
		t.Fatalf("full window: Now() = %d, want 250", got)
	}
	// Fifth sample evicts the first.
	w.Observe(500)
	if got := w.Now(); got != (200+300+400+500)/4 {
		t.Fatalf("after eviction: Now() = %d, want %d", got, (200+300+400+500)/4)
	}
}

func TestProgressWindowIgnoresNegative(t *testing.T) {
	w := NewProgressWindow(2)
	w.Observe(-5)
	if got := w.Now(); got != 0 {
		t.Fatalf("negative observation affected window: %d", got)
	}
}

func TestProgressWindowOutlierDamping(t *testing.T) {
	// A single runaway clock in a large window must not dominate the
	// average — the reason the paper sizes the window by tile count.
	w := NewProgressWindow(64)
	for i := 0; i < 63; i++ {
		w.Observe(1000)
	}
	w.Observe(1_000_000)
	got := w.Now()
	if got > 20_000 {
		t.Fatalf("outlier dominated window average: %d", got)
	}
	if got < 1000 {
		t.Fatalf("average below all samples: %d", got)
	}
}

func TestProgressWindowConcurrent(t *testing.T) {
	w := NewProgressWindow(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= 2_000; i++ {
				w.Observe(arch.Cycles(i))
				_ = w.Now()
			}
		}()
	}
	wg.Wait()
	got := w.Now()
	if got <= 0 || got > 2_000 {
		t.Fatalf("window average %d outside observed range", got)
	}
}

func TestProgressWindowQuickBounded(t *testing.T) {
	// Property: the progress estimate is at least the minimum of the last
	// window of observations and never exceeds the largest observation
	// ever made (monotonic clamp included).
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		w := NewProgressWindow(8)
		hi := arch.Cycles(0)
		for _, v := range raw {
			w.Observe(arch.Cycles(v))
			if arch.Cycles(v) > hi {
				hi = arch.Cycles(v)
			}
		}
		start := 0
		if len(raw) > 8 {
			start = len(raw) - 8
		}
		lo := arch.Cycles(1 << 62)
		for _, v := range raw[start:] {
			if c := arch.Cycles(v); c < lo {
				lo = c
			}
		}
		got := w.Now()
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProgressWindowMonotonicNow(t *testing.T) {
	// Global progress must never regress, even when laggard timestamps
	// displace fast ones in the window — the divergence guard for the lax
	// queue models.
	w := NewProgressWindow(4)
	for _, v := range []arch.Cycles{1000, 2000, 3000, 4000} {
		w.Observe(v)
	}
	high := w.Now()
	for i := 0; i < 8; i++ {
		w.Observe(1) // laggard floods the window
		if got := w.Now(); got < high {
			t.Fatalf("progress regressed: %d after %d", got, high)
		}
	}
}
