// Package clock implements the timekeeping primitives of lax
// synchronization (paper §3.6.1): per-tile local clocks that advance
// independently, and the windowed timestamp average that approximates
// global simulation progress for out-of-order queue models.
package clock

import (
	"sync/atomic"

	"repro/internal/arch"
)

// Local is the simulated clock of one tile. It is read and advanced by the
// tile's own core model and forwarded (monotonically) by synchronization
// events carrying remote timestamps. All methods are safe for concurrent
// use; other tiles and queue models read clocks they do not own.
type Local struct {
	cycles atomic.Int64
}

// Now returns the current simulated time of this tile.
func (c *Local) Now() arch.Cycles {
	return arch.Cycles(c.cycles.Load())
}

// Advance adds d cycles to the clock and returns the new time. Negative
// advances are ignored: local time never runs backwards.
func (c *Local) Advance(d arch.Cycles) arch.Cycles {
	if d <= 0 {
		return c.Now()
	}
	return arch.Cycles(c.cycles.Add(int64(d)))
}

// Forward moves the clock to t if t is in the future, implementing the
// paper's rule that a synchronization event forwards the clock to the time
// the event occurred, and does nothing if the event is in the simulated
// past. It returns the resulting time.
func (c *Local) Forward(t arch.Cycles) arch.Cycles {
	for {
		cur := c.cycles.Load()
		if int64(t) <= cur {
			return arch.Cycles(cur)
		}
		if c.cycles.CompareAndSwap(cur, int64(t)) {
			return t
		}
	}
}

// Set unconditionally sets the clock. It exists for tests and for thread
// re-initialization; simulation code should use Advance and Forward.
func (c *Local) Set(t arch.Cycles) {
	c.cycles.Store(int64(t))
}

// ProgressWindow approximates the global simulated clock from a sliding
// window of recently observed message timestamps (paper §3.6.1). The
// window is sized on the order of the number of tiles so that a few
// outlier clocks cannot dominate the average, while frequent messages
// (every cache miss) keep it current.
//
// The implementation is a fixed ring of timestamps plus a running sum,
// updated lock-free; Observe and Now are safe for concurrent use from
// every tile of a process.
//
// Now is monotonic: global progress cannot regress. Without this clamp
// the windowed average oscillates when slow tiles' timestamps displace
// fast ones, and queue models that charge "queue clock minus global"
// diverge — a laggard sample drops the average, the resulting huge
// queueing delay inflates some tile's clock, that clock re-raises the
// average, and so on without bound.
type ProgressWindow struct {
	slots []atomic.Int64
	sum   atomic.Int64
	next  atomic.Uint64
	high  atomic.Int64 // monotonic floor of Now
	n     int64
}

// NewProgressWindow returns a window holding size samples. Size must be
// positive.
func NewProgressWindow(size int) *ProgressWindow {
	if size <= 0 {
		size = 1
	}
	return &ProgressWindow{
		slots: make([]atomic.Int64, size),
		n:     int64(size),
	}
}

// Observe records a message timestamp.
func (w *ProgressWindow) Observe(t arch.Cycles) {
	if t < 0 {
		return
	}
	i := w.next.Add(1) - 1
	slot := &w.slots[i%uint64(len(w.slots))]
	old := slot.Swap(int64(t))
	w.sum.Add(int64(t) - old)
}

// Now returns the current approximation of global progress: the average of
// the timestamps in the window, clamped to be monotonically non-decreasing
// across calls. Before any observation it returns 0.
func (w *ProgressWindow) Now() arch.Cycles {
	seen := w.next.Load()
	if seen == 0 {
		return 0
	}
	n := int64(seen)
	if n > w.n {
		n = w.n
	}
	avg := w.sum.Load() / n
	for {
		cur := w.high.Load()
		if avg <= cur {
			return arch.Cycles(cur)
		}
		if w.high.CompareAndSwap(cur, avg) {
			return arch.Cycles(avg)
		}
	}
}

// Size returns the window capacity.
func (w *ProgressWindow) Size() int { return len(w.slots) }
