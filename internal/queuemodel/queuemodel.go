// Package queuemodel implements the out-of-order queue contention model of
// paper §3.6.1. Under lax synchronization a packet reaching a shared
// resource (a memory controller, a mesh link) is processed immediately and
// may carry a timestamp in the simulated past or future, so a conventional
// cycle-by-cycle queue cannot be simulated. Instead each queue keeps an
// independent "queue clock" representing when the processing of everything
// already accepted will complete:
//
//	arrival(pkt) = max(timestamp(pkt), globalProgress)
//	delay(pkt)   = max(0, queueClock - arrival)
//	queueClock   = max(queueClock, arrival) + processingTime(pkt)
//
// where globalProgress comes from a clock.ProgressWindow. A packet's own
// timestamp participates in the arrival estimate: a tile that has run
// ahead sends packets that arrive after the backlog has drained and must
// not be charged for it, while packets from laggard tiles (and tiles with
// no running thread) are measured against global progress as the paper
// prescribes. Individual packets are modeled out of order, but aggregate
// queueing delay matches the offered load.
package queuemodel

import (
	"sync"

	"repro/internal/arch"
	"repro/internal/clock"
)

// Queue models one contended resource.
type Queue struct {
	mu       sync.Mutex
	qclock   arch.Cycles
	progress *clock.ProgressWindow

	// stats
	packets    uint64
	totalDelay arch.Cycles
	busyCycles arch.Cycles
}

// New returns a queue that measures delay against the given progress
// window. The window may be shared by many queues.
func New(progress *clock.ProgressWindow) *Queue {
	return &Queue{progress: progress}
}

// Delay accepts a packet that needs processing cycles of service and
// returns its modeled queueing delay (waiting time, excluding service).
// now is the packet's own timestamp; it feeds the progress window so that
// queues stay current even on tiles with no active thread.
func (q *Queue) Delay(now, processing arch.Cycles) arch.Cycles {
	if processing < 0 {
		processing = 0
	}
	q.progress.Observe(now)
	arrive := q.progress.Now()
	if now > arrive {
		arrive = now
	}

	q.mu.Lock()
	defer q.mu.Unlock()
	var wait arch.Cycles
	if q.qclock > arrive {
		wait = q.qclock - arrive
		q.qclock += processing
	} else {
		q.qclock = arrive + processing
	}
	q.packets++
	q.totalDelay += wait
	q.busyCycles += processing
	return wait
}

// Clock returns the current queue clock (diagnostics and tests).
func (q *Queue) Clock() arch.Cycles {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.qclock
}

// Stats reports the number of packets seen, the cumulative queueing delay,
// and the cumulative service time.
func (q *Queue) Stats() (packets uint64, totalDelay, busy arch.Cycles) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.packets, q.totalDelay, q.busyCycles
}

// Reset clears the queue clock and statistics.
func (q *Queue) Reset() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.qclock = 0
	q.packets = 0
	q.totalDelay = 0
	q.busyCycles = 0
}
