package queuemodel

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/clock"
)

func newQueue(windowSize int) (*Queue, *clock.ProgressWindow) {
	w := clock.NewProgressWindow(windowSize)
	return New(w), w
}

func TestUncontendedQueueHasNoDelay(t *testing.T) {
	q, _ := newQueue(4)
	// Packets arriving with timestamps far apart never queue behind each
	// other: the queue clock is always at/behind global progress.
	for i := 1; i <= 10; i++ {
		now := arch.Cycles(i * 1_000_000)
		if d := q.Delay(now, 10); d != 0 && i > 1 {
			t.Fatalf("packet %d saw delay %d in an idle queue", i, d)
		}
	}
}

func TestBackToBackPacketsQueue(t *testing.T) {
	q, _ := newQueue(1)
	// Same timestamp repeatedly: global progress stays at 1000 while the
	// queue clock climbs by the processing time of each packet, so packet
	// k waits (k-1)*proc cycles.
	const proc = 50
	for k := 0; k < 5; k++ {
		d := q.Delay(1000, proc)
		want := arch.Cycles(k * proc)
		if d != want {
			t.Fatalf("packet %d delay = %d, want %d", k, d, want)
		}
	}
}

func TestAggregateDelayMatchesOfferedLoad(t *testing.T) {
	// With N simultaneous packets of service time s, cumulative waiting
	// time must be s * N*(N-1)/2 — the queueing triangle — regardless of
	// processing order. This is the paper's claim that "the aggregate
	// queueing delay is correct" even though packets are seen out of
	// order.
	q, _ := newQueue(1)
	const n, s = 20, 7
	for i := 0; i < n; i++ {
		q.Delay(500, s)
	}
	_, total, busy := q.Stats()
	want := arch.Cycles(s * n * (n - 1) / 2)
	if total != want {
		t.Fatalf("aggregate delay = %d, want %d", total, want)
	}
	if busy != n*s {
		t.Fatalf("busy = %d, want %d", busy, n*s)
	}
}

func TestQueueDrainsWhenGlobalProgressPasses(t *testing.T) {
	q, _ := newQueue(1)
	q.Delay(100, 500) // queue clock -> 600
	if c := q.Clock(); c != 600 {
		t.Fatalf("queue clock = %d, want 600", c)
	}
	// A packet arriving when global progress (1_000_000) has passed the
	// queue clock sees an idle queue.
	if d := q.Delay(1_000_000, 500); d != 0 {
		t.Fatalf("drained queue gave delay %d", d)
	}
	if c := q.Clock(); c != 1_000_500 {
		t.Fatalf("queue clock after drain = %d, want 1000500", c)
	}
}

func TestNegativeProcessingClamped(t *testing.T) {
	q, _ := newQueue(1)
	if d := q.Delay(100, -5); d < 0 {
		t.Fatalf("negative delay %d", d)
	}
	if c := q.Clock(); c < 0 {
		t.Fatalf("negative queue clock %d", c)
	}
}

func TestReset(t *testing.T) {
	q, _ := newQueue(1)
	q.Delay(100, 100)
	q.Reset()
	p, d, b := q.Stats()
	if p != 0 || d != 0 || b != 0 || q.Clock() != 0 {
		t.Fatalf("reset left state: packets=%d delay=%d busy=%d clock=%d", p, d, b, q.Clock())
	}
}

func TestConcurrentDelayKeepsAccounting(t *testing.T) {
	q, _ := newQueue(8)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if d := q.Delay(1000, 3); d < 0 {
					t.Errorf("negative delay %d", d)
					return
				}
			}
		}()
	}
	wg.Wait()
	p, _, busy := q.Stats()
	if p != workers*per {
		t.Fatalf("packets = %d, want %d", p, workers*per)
	}
	if busy != arch.Cycles(workers*per*3) {
		t.Fatalf("busy = %d, want %d", busy, workers*per*3)
	}
}

func TestDelayNeverNegativeQuick(t *testing.T) {
	q, _ := newQueue(4)
	f := func(now uint32, proc uint16) bool {
		return q.Delay(arch.Cycles(now), arch.Cycles(proc)) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
