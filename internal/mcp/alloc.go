package mcp

import (
	"fmt"
	"sort"

	"repro/internal/arch"
)

// allocAlign is the allocation granularity. Aligning to the cache line
// size avoids accidental false sharing between unrelated allocations,
// matching what real allocators do for pthread applications.
const allocAlign = 64

// span is a contiguous free range [base, base+size).
type span struct {
	base, size arch.Addr
}

// Allocator is the dynamic memory manager behind the application's malloc
// and free (the paper's brk/mmap/munmap interception, §3.2.1). It manages
// the heap segment of the simulated address space with a first-fit free
// list; block sizes are tracked simulator-side, so no headers pollute the
// simulated heap.
type Allocator struct {
	free      []span // sorted by base
	allocated map[arch.Addr]arch.Addr
	inUse     arch.Addr
	peak      arch.Addr
}

// NewAllocator manages [base, base+size).
func NewAllocator(base, size arch.Addr) *Allocator {
	return &Allocator{
		free:      []span{{base: base, size: size}},
		allocated: make(map[arch.Addr]arch.Addr),
	}
}

// Alloc returns the address of a fresh block of at least n bytes, or an
// error when the heap segment is exhausted.
func (a *Allocator) Alloc(n arch.Addr) (arch.Addr, error) {
	if n == 0 {
		n = 1
	}
	n = (n + allocAlign - 1) &^ arch.Addr(allocAlign-1)
	for i := range a.free {
		if a.free[i].size >= n {
			addr := a.free[i].base
			a.free[i].base += n
			a.free[i].size -= n
			if a.free[i].size == 0 {
				a.free = append(a.free[:i], a.free[i+1:]...)
			}
			a.allocated[addr] = n
			a.inUse += n
			if a.inUse > a.peak {
				a.peak = a.inUse
			}
			return addr, nil
		}
	}
	return 0, fmt.Errorf("mcp: heap exhausted allocating %d bytes (%d in use)", n, a.inUse)
}

// Free releases a block returned by Alloc. Freeing an unknown address is
// an error (application bug surfaced loudly, as a real allocator would).
func (a *Allocator) Free(addr arch.Addr) error {
	n, ok := a.allocated[addr]
	if !ok {
		return fmt.Errorf("mcp: free of unallocated address %#x", uint64(addr))
	}
	delete(a.allocated, addr)
	a.inUse -= n
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].base >= addr })
	a.free = append(a.free, span{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = span{base: addr, size: n}
	// Coalesce with neighbors.
	if i+1 < len(a.free) && a.free[i].base+a.free[i].size == a.free[i+1].base {
		a.free[i].size += a.free[i+1].size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].base+a.free[i-1].size == a.free[i].base {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
	return nil
}

// InUse returns the bytes currently allocated.
func (a *Allocator) InUse() arch.Addr { return a.inUse }

// Peak returns the high-water mark of allocated bytes.
func (a *Allocator) Peak() arch.Addr { return a.peak }

// FreeSpans returns the number of fragments in the free list.
func (a *Allocator) FreeSpans() int { return len(a.free) }
