package mcp

import (
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/clock"
	"repro/internal/config"
	"repro/internal/network"
	"repro/internal/transport"
)

// mcpHarness drives a real MCP server with crafted packets from fake
// tiles, exposing the raw request/reply exchange the integration tests
// can't observe.
type mcpHarness struct {
	srv   *Server
	tiles []*network.Net // fake tile endpoints, read replies directly
	lcp   *network.Net   // fake LCP endpoint, captures StartThread
	seq   uint64
}

func newHarness(t *testing.T, tiles int) *mcpHarness {
	t.Helper()
	cfg := config.Default()
	cfg.Tiles = tiles
	fab := transport.NewChannelFabric(transport.StripedRoute(1))
	tr := fab.Process(0)
	prog := clock.NewProgressWindow(tiles)
	models := network.NewModels(&cfg, prog)

	h := &mcpHarness{}
	for i := 0; i < tiles; i++ {
		ep, err := tr.Register(transport.TileEndpoint(arch.TileID(i)))
		if err != nil {
			t.Fatal(err)
		}
		n := network.New(arch.TileID(i), tr, ep, models, prog)
		n.Start()
		h.tiles = append(h.tiles, n)
	}
	lcpEP, err := tr.Register(transport.LCP(0))
	if err != nil {
		t.Fatal(err)
	}
	h.lcp = network.New(arch.TileID(transport.LCP(0)), tr, lcpEP, models, nil)
	h.lcp.Start()

	mcpEP, err := tr.Register(transport.MCP)
	if err != nil {
		t.Fatal(err)
	}
	mcpNet := network.New(arch.TileID(transport.MCP), tr, mcpEP, models, nil)
	mcpNet.Start()
	h.srv = NewServer(&cfg, mcpNet)
	go h.srv.Serve()

	t.Cleanup(func() {
		for _, n := range h.tiles {
			n.Close()
		}
		h.lcp.Close()
		mcpNet.Close()
		fab.Close()
		<-h.srv.Stopped()
	})
	return h
}

// send fires a request from a tile and returns its sequence number.
func (h *mcpHarness) send(tile int, typ uint8, payload []byte, at arch.Cycles) uint64 {
	h.seq++
	if _, err := h.tiles[tile].Send(network.ClassSystem, typ, arch.TileID(transport.MCP), h.seq, payload, at); err != nil {
		panic(err)
	}
	return h.seq
}

// recv awaits the next system-class reply at a tile.
func (h *mcpHarness) recv(t *testing.T, tile int) network.Packet {
	t.Helper()
	type res struct {
		pkt network.Packet
		ok  bool
	}
	ch := make(chan res, 1)
	go func() {
		pkt, ok := h.tiles[tile].Recv(network.ClassSystem)
		ch <- res{pkt, ok}
	}()
	select {
	case r := <-ch:
		if !r.ok {
			t.Fatal("net closed while awaiting reply")
		}
		return r.pkt
	case <-time.After(5 * time.Second):
		t.Fatal("timed out awaiting MCP reply")
		return network.Packet{}
	}
}

// noReply polls briefly to assert no NEW reply arrives at a tile.
func (h *mcpHarness) noReply(t *testing.T, tile int, within time.Duration) {
	t.Helper()
	base := h.tiles[tile].Stats().PacketsRecv[network.ClassSystem].Load()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if h.tiles[tile].Stats().PacketsRecv[network.ClassSystem].Load() > base {
			t.Fatal("unexpected reply")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMutexGrantAndQueueFIFO(t *testing.T) {
	h := newHarness(t, 4)
	// Tile 1 locks free mutex at t=100: grant at 100 + MutexCost.
	h.send(1, MsgMutexLock, EncodeU64(0x1000), 100)
	rep := h.recv(t, 1)
	if rep.Type != MsgMutexLockRep {
		t.Fatalf("reply type %d", rep.Type)
	}
	if rep.Time != 100+h.srv.cfg.Costs.Mutex {
		t.Fatalf("grant time %d", rep.Time)
	}
	// Tiles 2 and 3 queue up in order.
	h.send(2, MsgMutexLock, EncodeU64(0x1000), 150)
	h.send(3, MsgMutexLock, EncodeU64(0x1000), 160)
	h.noReply(t, 2, 20*time.Millisecond)
	// Unlock at t=500 grants tile 2 at max(150,500)+cost.
	h.send(1, MsgMutexUnlock, EncodeU64(0x1000), 500)
	rep2 := h.recv(t, 2)
	if rep2.Time != 500+h.srv.cfg.Costs.Mutex {
		t.Fatalf("queued grant time %d", rep2.Time)
	}
	// Tile 3 still waits until tile 2 unlocks.
	h.send(2, MsgMutexUnlock, EncodeU64(0x1000), 700)
	rep3 := h.recv(t, 3)
	if rep3.Time != 700+h.srv.cfg.Costs.Mutex {
		t.Fatalf("second queued grant %d", rep3.Time)
	}
}

func TestMutexIndependentAddresses(t *testing.T) {
	h := newHarness(t, 2)
	h.send(0, MsgMutexLock, EncodeU64(0xA), 10)
	h.recv(t, 0)
	// A different mutex is free despite 0xA being held.
	h.send(1, MsgMutexLock, EncodeU64(0xB), 20)
	if rep := h.recv(t, 1); rep.Type != MsgMutexLockRep {
		t.Fatal("independent mutex blocked")
	}
}

func TestBarrierReleaseAtMaxArrival(t *testing.T) {
	h := newHarness(t, 3)
	h.send(0, MsgBarrierWait, EncodeU64Pair(0x2000, 3), 100)
	h.send(1, MsgBarrierWait, EncodeU64Pair(0x2000, 3), 900)
	h.noReply(t, 0, 20*time.Millisecond)
	h.send(2, MsgBarrierWait, EncodeU64Pair(0x2000, 3), 400)
	want := arch.Cycles(900) + h.srv.cfg.Costs.Barrier
	for tile := 0; tile < 3; tile++ {
		rep := h.recv(t, tile)
		if rep.Type != MsgBarrierRep || rep.Time != want {
			t.Fatalf("tile %d: type=%d time=%d want %d", tile, rep.Type, rep.Time, want)
		}
	}
	// The barrier is reusable for a second round.
	h.send(0, MsgBarrierWait, EncodeU64Pair(0x2000, 2), 1000)
	h.send(1, MsgBarrierWait, EncodeU64Pair(0x2000, 2), 1100)
	if rep := h.recv(t, 0); rep.Time != 1100+h.srv.cfg.Costs.Barrier {
		t.Fatalf("second round release %d", rep.Time)
	}
	h.recv(t, 1)
}

func TestCondSignalNoWaitersIsNoop(t *testing.T) {
	h := newHarness(t, 2)
	h.send(0, MsgCondSignal, EncodeU64(0x3000), 50)
	// Then a normal mutex op must still work (server not wedged).
	h.send(1, MsgMutexLock, EncodeU64(0x1), 60)
	h.recv(t, 1)
}

func TestCondWaitSignalHandsMutexBack(t *testing.T) {
	h := newHarness(t, 3)
	const mtx, cv = 0x10, 0x20
	// Tile 1 holds the mutex and waits on the condition (releasing it).
	h.send(1, MsgMutexLock, EncodeU64(mtx), 100)
	h.recv(t, 1)
	h.send(1, MsgCondWait, EncodeU64Pair(cv, mtx), 200)
	// Tile 2 can now take the mutex (it was released by the wait).
	h.send(2, MsgMutexLock, EncodeU64(mtx), 300)
	h.recv(t, 2)
	// Signal while tile 2 holds the mutex: tile 1 wakes only after it is
	// re-granted the mutex, i.e. after tile 2 unlocks.
	h.send(0, MsgCondSignal, EncodeU64(cv), 400)
	h.noReply(t, 1, 20*time.Millisecond)
	h.send(2, MsgMutexUnlock, EncodeU64(mtx), 1000)
	rep := h.recv(t, 1)
	if rep.Type != MsgCondRep {
		t.Fatalf("reply type %d", rep.Type)
	}
	if rep.Time < 1000 {
		t.Fatalf("woke at %d before mutex was free", rep.Time)
	}
}

func TestJoinUnknownThreadRepliesImmediately(t *testing.T) {
	h := newHarness(t, 2)
	h.send(0, MsgJoin, EncodeU64(99), 10)
	if rep := h.recv(t, 0); rep.Type != MsgJoinRep {
		t.Fatalf("reply %d", rep.Type)
	}
}

func TestSpawnRoutesToLCPAndOverflows(t *testing.T) {
	h := newHarness(t, 2)
	if err := h.srv.StartMain(0); err != nil {
		t.Fatal(err)
	}
	// StartMain sends a StartThread for tile 0 to the LCP.
	pkt, ok := h.lcp.Recv(network.ClassSystem)
	if !ok || pkt.Type != MsgStartThread {
		t.Fatalf("LCP got %d", pkt.Type)
	}
	st, err := DecodeStartThread(pkt.Payload)
	if err != nil || st.Tile != 0 {
		t.Fatalf("start thread %+v %v", st, err)
	}
	// Tile 0 spawns one more: tile 1 is granted.
	h.send(0, MsgSpawn, EncodeSpawnReq(SpawnReq{Func: 1, Arg: 7}), 500)
	rep := h.recv(t, 0)
	tid, start, err := DecodeU64Pair(rep.Payload)
	if err != nil || tid != 1 {
		t.Fatalf("spawn rep %d %v", tid, err)
	}
	if arch.Cycles(start) != 500+h.srv.cfg.Costs.Spawn {
		t.Fatalf("child start %d", start)
	}
	pkt, _ = h.lcp.Recv(network.ClassSystem)
	st, _ = DecodeStartThread(pkt.Payload)
	if st.Tile != 1 || st.Func != 1 || st.Arg != 7 {
		t.Fatalf("forwarded %+v", st)
	}
	// A third spawn overflows.
	h.send(0, MsgSpawn, EncodeSpawnReq(SpawnReq{Func: 1}), 600)
	rep = h.recv(t, 0)
	tid, _, _ = DecodeU64Pair(rep.Payload)
	if tid != ^uint64(0) {
		t.Fatalf("overflow spawn returned tile %d", tid)
	}
}

func TestJoinThenExitReleasesJoiner(t *testing.T) {
	h := newHarness(t, 2)
	h.srv.StartMain(0)
	h.lcp.Recv(network.ClassSystem)
	h.send(0, MsgSpawn, EncodeSpawnReq(SpawnReq{Func: 1}), 100)
	h.recv(t, 0)
	h.lcp.Recv(network.ClassSystem)
	// Tile 0 joins tile 1 before it exits.
	h.send(0, MsgJoin, EncodeU64(1), 200)
	h.noReply(t, 0, 0) // consumed replies above; just proceed
	// Tile 1 exits at 5000: the joiner gets the exit time.
	h.send(1, MsgThreadExit, nil, 5000)
	rep := h.recv(t, 0)
	v, err := DecodeU64(rep.Payload)
	if err != nil || arch.Cycles(v) != 5000 {
		t.Fatalf("join exit time %d %v", v, err)
	}
	// Joining the already-exited thread replies immediately, forwarding
	// to max(own time, exit time).
	h.send(0, MsgJoin, EncodeU64(1), 9000)
	rep = h.recv(t, 0)
	if rep.Time != 9000 {
		t.Fatalf("late join reply time %d", rep.Time)
	}
}

func TestSimBarrierReleasesMinEpochOnly(t *testing.T) {
	h := newHarness(t, 2)
	h.srv.StartMain(0)
	h.lcp.Recv(network.ClassSystem)
	h.send(0, MsgSpawn, EncodeSpawnReq(SpawnReq{Func: 1}), 0)
	h.recv(t, 0)
	h.lcp.Recv(network.ClassSystem)
	// Tile 0 waits at epoch 5, tile 1 at epoch 3: only epoch 3 releases.
	h.send(0, MsgSimBarrier, EncodeU64(5), 5000)
	h.send(1, MsgSimBarrier, EncodeU64(3), 3000)
	rep := h.recv(t, 1)
	if rep.Type != MsgSimBarrierRep {
		t.Fatalf("reply %d", rep.Type)
	}
	// Tile 1 advances to epoch 4 and waits again; now min=4 releases it.
	h.send(1, MsgSimBarrier, EncodeU64(4), 4000)
	h.recv(t, 1)
	// Finally both at 5: tile 0 releases.
	h.send(1, MsgSimBarrier, EncodeU64(5), 5000)
	h.recv(t, 0)
	h.recv(t, 1)
}

func TestSimBarrierExcludesBlockedThreads(t *testing.T) {
	h := newHarness(t, 2)
	h.srv.StartMain(0)
	h.lcp.Recv(network.ClassSystem)
	h.send(0, MsgSpawn, EncodeSpawnReq(SpawnReq{Func: 1}), 0)
	h.recv(t, 0)
	h.lcp.Recv(network.ClassSystem)
	// Tile 1 blocks on a mutex held by tile 0.
	h.send(0, MsgMutexLock, EncodeU64(0x9), 10)
	h.recv(t, 0)
	h.send(1, MsgMutexLock, EncodeU64(0x9), 20)
	// Tile 0 hits the sim barrier: tile 1 is blocked, so the barrier must
	// release tile 0 rather than deadlock.
	h.send(0, MsgSimBarrier, EncodeU64(1), 1000)
	rep := h.recv(t, 0)
	if rep.Type != MsgSimBarrierRep {
		t.Fatalf("reply %d", rep.Type)
	}
}

func TestSimBarrierBatchReleasesViaLCP(t *testing.T) {
	h := newHarness(t, 2)
	h.srv.StartMain(0)
	h.lcp.Recv(network.ClassSystem)
	h.send(0, MsgSpawn, EncodeSpawnReq(SpawnReq{Func: 1}), 0)
	h.recv(t, 0)
	h.lcp.Recv(network.ClassSystem)
	// The process ledger forwards both tiles' waits in one batch; the MCP
	// answers the whole process with a single release of the min epoch.
	batch := []SimWait{{Tile: 0, Epoch: 5}, {Tile: 1, Epoch: 3}}
	if _, err := h.lcp.Send(network.ClassSystem, MsgSimBarrierBatch, arch.TileID(transport.MCP), 0, EncodeSimBatch(batch), 0); err != nil {
		t.Fatal(err)
	}
	rel, _ := h.lcp.Recv(network.ClassSystem)
	if rel.Type != MsgSimBarrierRelease {
		t.Fatalf("reply type %s", MsgName(rel.Type))
	}
	if e, _ := DecodeU64(rel.Payload); e != 3 {
		t.Fatalf("released epoch %d, want 3", e)
	}
	// Tile 1 (released) advances and waits again at 5: now both pending
	// waits share the min epoch and one release covers them.
	batch = []SimWait{{Tile: 1, Epoch: 5}}
	if _, err := h.lcp.Send(network.ClassSystem, MsgSimBarrierBatch, arch.TileID(transport.MCP), 0, EncodeSimBatch(batch), 0); err != nil {
		t.Fatal(err)
	}
	rel, _ = h.lcp.Recv(network.ClassSystem)
	if e, _ := DecodeU64(rel.Payload); rel.Type != MsgSimBarrierRelease || e != 5 {
		t.Fatalf("second release = type %s epoch %d, want epoch 5", MsgName(rel.Type), e)
	}
}

func TestSimBarrierBatchMixesWithDirectWaits(t *testing.T) {
	h := newHarness(t, 2)
	h.srv.StartMain(0)
	h.lcp.Recv(network.ClassSystem)
	h.send(0, MsgSpawn, EncodeSpawnReq(SpawnReq{Func: 1}), 0)
	h.recv(t, 0)
	h.lcp.Recv(network.ClassSystem)
	// Tile 0 waits via the legacy per-tile RPC, tile 1 via a batch: the
	// release must answer each through its own path.
	h.send(0, MsgSimBarrier, EncodeU64(2), 2000)
	if _, err := h.lcp.Send(network.ClassSystem, MsgSimBarrierBatch, arch.TileID(transport.MCP), 0, EncodeSimBatch([]SimWait{{Tile: 1, Epoch: 2}}), 0); err != nil {
		t.Fatal(err)
	}
	if rep := h.recv(t, 0); rep.Type != MsgSimBarrierRep {
		t.Fatalf("direct waiter got %s", MsgName(rep.Type))
	}
	rel, _ := h.lcp.Recv(network.ClassSystem)
	if e, _ := DecodeU64(rel.Payload); rel.Type != MsgSimBarrierRelease || e != 2 {
		t.Fatalf("batched waiter got type %s epoch %d", MsgName(rel.Type), e)
	}
}

func TestSimBatchCodecRoundTrip(t *testing.T) {
	in := []SimWait{{Tile: 0, Epoch: 1}, {Tile: 1023, Epoch: 1 << 40}, {Tile: 7, Epoch: 0}}
	out, err := DecodeSimBatch(EncodeSimBatch(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, out[i], in[i])
		}
	}
	if _, err := DecodeSimBatch([]byte{1, 2, 3}); err == nil {
		t.Fatal("short payload accepted")
	}
	if _, err := DecodeSimBatch(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}

func TestMallocExhaustionRepliesZero(t *testing.T) {
	h := newHarness(t, 2)
	h.send(0, MsgMalloc, EncodeU64(1<<62), 10)
	rep := h.recv(t, 0)
	v, err := DecodeU64(rep.Payload)
	if err != nil || v != 0 {
		t.Fatalf("oversized malloc returned %#x", v)
	}
	// Normal allocation still works afterwards.
	h.send(0, MsgMalloc, EncodeU64(64), 20)
	rep = h.recv(t, 0)
	v, _ = DecodeU64(rep.Payload)
	if v == 0 {
		t.Fatal("allocation failed after exhaustion probe")
	}
}
