package mcp

// Checkpoint orchestration (DESIGN.md §18). The MCP initiates a
// checkpoint at a LaxBarrier release point: every running, unblocked
// thread is parked waiting for the epoch release, so simulated state is
// changing nowhere except the terminating tails of in-flight memory
// traffic (evictions and their acks). The MCP stashes the release,
// captures its own service state (stable for the whole window — only
// checkpoint replies can arrive), probes every process until residual
// traffic drains, orders each process to serialize its state, writes the
// manifest, and only then performs the stashed release. The serve loop
// never blocks: each stage is driven by reply arrival.

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/checkpoint"
	"repro/internal/network"
	"repro/internal/transport"
)

// CheckpointPolicy configures MCP-initiated checkpoints. It is attached
// before the simulation starts (Cluster.SetCheckpoint) and never mutated
// afterwards.
type CheckpointPolicy struct {
	// Dir receives the per-process state files and manifests. Every
	// process must see the same path (shared filesystem or single host).
	Dir string
	// Every checkpoints at epochs divisible by it (quanta since start);
	// zero disables automatic checkpoints.
	Every int64
	// FabricID, Generation, and ConfigDigest identify the run in the
	// manifest; Generation counts launch attempts (0 = first).
	FabricID     uint64
	Generation   uint64
	ConfigDigest string
	// Verify maps epoch -> the VerifyDigests list a previous attempt
	// recorded at that epoch. A replayed run reaching the epoch with
	// different digests has diverged. With StrictVerify the divergence is
	// fatal (reported on CkptFailed, release withheld); without it the
	// mismatch goes to OnError and the run continues — the right default,
	// because multi-thread runs are deterministic only in their workload
	// checksum, not in timing-dependent state (see DESIGN.md §18).
	Verify       map[int64][]string
	StrictVerify bool
	// OnSaved, if non-nil, is called from the serve goroutine after each
	// manifest is written; it must not block.
	OnSaved func(epoch int64, m *checkpoint.Manifest)
	// OnError, if non-nil, observes non-fatal checkpoint failures (probe
	// overflow, save I/O errors). The simulation continues without the
	// checkpoint; it must not block.
	OnError func(err error)
}

// ckptMaxProbeRounds bounds the drain probe. Residual post-barrier
// traffic is a bounded set of eviction chains, each shortened by every
// round trip, so a drain that outlasts this many rounds means the fabric
// is wedged; the checkpoint is abandoned and the run released.
const ckptMaxProbeRounds = 1000

// SetCheckpoint attaches the policy. Call before the simulation starts
// (the serve goroutine reads the field without locking).
func (s *Server) SetCheckpoint(p *CheckpointPolicy) { s.ckpt = p }

// CkptFailed reports a fatal checkpoint failure: a replay-verification
// digest mismatch. The simulation cannot produce trustworthy results
// past it; launchers select on this alongside run completion.
func (s *Server) CkptFailed() <-chan error { return s.ckptFailed }

// maybeCheckpoint begins a checkpoint at a barrier release point when
// the policy calls for one, deferring the release (already collected in
// releaseProcs/releaseDirect) until the save completes. It returns true
// when the release was stashed. No recheckSimBarrier can run during the
// window — every unblocked thread is parked on this very release — so
// the stashed scratch state stays intact.
func (s *Server) maybeCheckpoint(epoch int64) bool {
	cp := s.ckpt
	if cp == nil || cp.Every <= 0 || epoch <= 0 || epoch%cp.Every != 0 || epoch == s.ckptLast {
		return false
	}
	s.ckptLast = epoch
	s.ckptEpoch = epoch
	s.ckptMCP = s.CaptureState()
	s.ckptPrevSent = ^uint64(0)
	s.ckptPrevRecv = ^uint64(0)
	s.ckptRounds = 0
	s.ckptSaves = s.ckptSaves[:0]
	s.sendCkptProbes()
	return true
}

// sendCkptProbes starts one drain-probe round.
func (s *Server) sendCkptProbes() {
	s.ckptAcks = 0
	s.ckptSent, s.ckptRecv = 0, 0
	s.ckptQuiesced = true
	for p := 0; p < s.cfg.Processes; p++ {
		s.sendCkpt(arch.ProcID(p), MsgCkptProbe, nil)
	}
}

func (s *Server) sendCkpt(p arch.ProcID, typ uint8, payload []byte) {
	dst := arch.TileID(transport.LCP(p))
	if _, err := s.net.Send(network.ClassSystem, typ, dst, 0, payload, 0); err != nil && !errors.Is(err, transport.ErrClosed) {
		panic("mcp: checkpoint send failed: " + err.Error())
	}
}

// handleCkptProbeRep accumulates one process's drain report and, when
// the round is complete, either starts the save (traffic quiesced,
// globally balanced, and unchanged since the previous round — cumulative
// counters, so equality means nothing moved) or probes again.
func (s *Server) handleCkptProbeRep(pkt network.Packet) {
	rep, err := DecodeCkptProbeRep(pkt.Payload)
	if err != nil {
		panic("mcp: " + err.Error())
	}
	s.ckptAcks++
	s.ckptSent += rep.Sent
	s.ckptRecv += rep.Recv
	s.ckptQuiesced = s.ckptQuiesced && rep.Quiesced
	if s.ckptAcks < s.cfg.Processes {
		return
	}
	if s.ckptQuiesced && s.ckptSent == s.ckptRecv &&
		s.ckptSent == s.ckptPrevSent && s.ckptRecv == s.ckptPrevRecv {
		s.sendCkptSaves()
		return
	}
	s.ckptPrevSent, s.ckptPrevRecv = s.ckptSent, s.ckptRecv
	s.ckptRounds++
	if s.ckptRounds > ckptMaxProbeRounds {
		s.abortCheckpoint(fmt.Errorf("mcp: checkpoint at epoch %d abandoned: traffic did not drain in %d probe rounds", s.ckptEpoch, ckptMaxProbeRounds))
		return
	}
	s.sendCkptProbes()
}

// sendCkptSaves orders every process to serialize its state.
func (s *Server) sendCkptSaves() {
	s.ckptAcks = 0
	payload := EncodeU64(uint64(s.ckptEpoch))
	for p := 0; p < s.cfg.Processes; p++ {
		s.sendCkpt(arch.ProcID(p), MsgCkptSave, payload)
	}
}

// handleCkptSaveRep collects one process's save acknowledgement; the
// last one completes the checkpoint: manifest write, replay-identity
// verification, and the stashed epoch release.
func (s *Server) handleCkptSaveRep(pkt network.Packet) {
	var res CkptSaveResult
	if err := gob.NewDecoder(bytes.NewReader(pkt.Payload)).Decode(&res); err != nil {
		panic("mcp: bad ckpt save reply: " + err.Error())
	}
	s.ckptSaves = append(s.ckptSaves, res)
	if len(s.ckptSaves) < s.cfg.Processes {
		return
	}
	for _, r := range s.ckptSaves {
		if r.Err != "" {
			s.abortCheckpoint(fmt.Errorf("mcp: checkpoint at epoch %d abandoned: proc %d save: %s", s.ckptEpoch, r.Proc, r.Err))
			return
		}
	}
	sort.Slice(s.ckptSaves, func(i, j int) bool { return s.ckptSaves[i].Proc < s.ckptSaves[j].Proc })
	cp := s.ckpt
	m := &checkpoint.Manifest{
		Epoch:        s.ckptEpoch,
		FabricID:     cp.FabricID,
		Generation:   cp.Generation,
		ConfigDigest: cp.ConfigDigest,
		Procs:        make([]checkpoint.ManifestProc, len(s.ckptSaves)),
		MCP:          s.ckptMCP,
	}
	for i, r := range s.ckptSaves {
		m.Procs[i] = checkpoint.ManifestProc{
			Proc:        r.Proc,
			File:        r.File,
			FileSum:     r.FileSum,
			StateDigest: r.StateDigest,
		}
	}
	if want, ok := cp.Verify[s.ckptEpoch]; ok && !equalDigests(want, m.VerifyDigests()) {
		err := fmt.Errorf("mcp: replay diverged at epoch %d: checkpoint digests do not match previous attempt", s.ckptEpoch)
		if cp.StrictVerify {
			// Strict mode treats the divergence as fatal: the release stays
			// withheld (parked threads are torn down with the run) and the
			// launcher aborts via CkptFailed.
			select {
			case s.ckptFailed <- err:
			default:
			}
			return
		}
		// Default mode reports and continues: timing-dependent state may
		// legitimately differ across attempts of a multi-thread run; the
		// workload checksum of the finished run is the identity criterion.
		if cp.OnError != nil {
			cp.OnError(err)
		}
	}
	if err := checkpoint.WriteManifest(cp.Dir, m); err != nil {
		s.abortCheckpoint(fmt.Errorf("mcp: checkpoint at epoch %d abandoned: %w", s.ckptEpoch, err))
		return
	}
	if cp.OnSaved != nil {
		cp.OnSaved(s.ckptEpoch, m)
	}
	s.ckptMCP = nil
	s.releaseEpoch(s.ckptEpoch)
}

// abortCheckpoint abandons the in-progress checkpoint (non-fatal: the
// simulation is intact, only the snapshot is lost) and performs the
// stashed release so the run continues.
func (s *Server) abortCheckpoint(err error) {
	if cp := s.ckpt; cp != nil && cp.OnError != nil {
		cp.OnError(err)
	}
	s.ckptMCP = nil
	s.releaseEpoch(s.ckptEpoch)
}

func equalDigests(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CaptureState snapshots the MCP's service tables. It must run either in
// the serve goroutine or while no simulation traffic can arrive (before
// the first thread starts, or after the run completes). Every map is
// flattened in sorted order so the encoding is canonical.
func (s *Server) CaptureState() *checkpoint.MCPState {
	ms := &checkpoint.MCPState{
		TileBusy: append([]bool(nil), s.tileBusy...),
		Running:  s.running,
		NextFD:   s.fs.nextFD,
	}

	//graphite:maporder flattened sorted below
	for tid, rec := range s.threads {
		ts := checkpoint.ThreadState{
			Thread:   int32(tid),
			Exited:   rec.exited,
			ExitTime: int64(rec.exitTime),
		}
		for _, j := range rec.joiners {
			ts.Joiners = append(ts.Joiners, checkpoint.WaiterState{Tile: int32(j.src), Seq: j.seq})
		}
		ms.Threads = append(ms.Threads, ts)
	}
	sort.Slice(ms.Threads, func(i, j int) bool { return ms.Threads[i].Thread < ms.Threads[j].Thread })

	//graphite:maporder flattened sorted below
	for tile := range s.blocked {
		ms.Blocked = append(ms.Blocked, int32(tile))
	}
	sort.Slice(ms.Blocked, func(i, j int) bool { return ms.Blocked[i] < ms.Blocked[j] })

	//graphite:maporder flattened sorted below
	for addr, m := range s.mutexes {
		rec := checkpoint.MutexState{Addr: uint64(addr), Locked: m.locked, LastFree: int64(m.lastFree)}
		for _, w := range m.queue {
			rec.Queue = append(rec.Queue, checkpoint.WaiterState{
				Tile: int32(w.to.src), Seq: w.to.seq, Time: int64(w.t), ReplyType: w.replyType,
			})
		}
		ms.Mutexes = append(ms.Mutexes, rec)
	}
	sort.Slice(ms.Mutexes, func(i, j int) bool { return ms.Mutexes[i].Addr < ms.Mutexes[j].Addr })

	//graphite:maporder flattened sorted below
	for addr, b := range s.barriers {
		rec := checkpoint.BarrierState{Addr: uint64(addr)}
		for _, w := range b.waiters {
			rec.Waiters = append(rec.Waiters, checkpoint.WaiterState{
				Tile: int32(w.to.src), Seq: w.to.seq, Time: int64(w.t),
			})
		}
		ms.Barriers = append(ms.Barriers, rec)
	}
	sort.Slice(ms.Barriers, func(i, j int) bool { return ms.Barriers[i].Addr < ms.Barriers[j].Addr })

	//graphite:maporder flattened sorted below
	for addr, c := range s.conds {
		rec := checkpoint.CondState{Addr: uint64(addr)}
		for _, w := range c.waiters {
			rec.Waiters = append(rec.Waiters, checkpoint.WaiterState{
				Tile: int32(w.to.src), Seq: w.to.seq, Time: int64(w.t), Mutex: uint64(w.mutex),
			})
		}
		ms.Conds = append(ms.Conds, rec)
	}
	sort.Slice(ms.Conds, func(i, j int) bool { return ms.Conds[i].Addr < ms.Conds[j].Addr })

	ms.Alloc = checkpoint.AllocState{InUse: uint64(s.alloc.inUse), Peak: uint64(s.alloc.peak)}
	for _, sp := range s.alloc.free {
		ms.Alloc.Free = append(ms.Alloc.Free, checkpoint.AllocSpanState{Base: uint64(sp.base), Size: uint64(sp.size)})
	}
	//graphite:maporder flattened sorted below
	for addr, size := range s.alloc.allocated {
		ms.Alloc.Allocated = append(ms.Alloc.Allocated, checkpoint.AllocBlockState{Addr: uint64(addr), Size: uint64(size)})
	}
	sort.Slice(ms.Alloc.Allocated, func(i, j int) bool { return ms.Alloc.Allocated[i].Addr < ms.Alloc.Allocated[j].Addr })

	//graphite:maporder flattened sorted below
	for path, f := range s.fs.files {
		ms.Files = append(ms.Files, checkpoint.FileState{Path: path, Data: append([]byte(nil), f.data...)})
	}
	sort.Slice(ms.Files, func(i, j int) bool { return ms.Files[i].Path < ms.Files[j].Path })
	//graphite:maporder flattened sorted below
	for fd, e := range s.fs.fds {
		fs := checkpoint.FDState{FD: fd, Off: e.off, Path: s.fs.pathOf(e.file)}
		if fs.Path == "" {
			// Unlinked-but-open file: its contents survive only through
			// the descriptor. Sharing between two such descriptors is not
			// preserved (each restores its own copy).
			fs.Data = append([]byte(nil), e.file.data...)
		}
		ms.FDs = append(ms.FDs, fs)
	}
	sort.Slice(ms.FDs, func(i, j int) bool { return ms.FDs[i].FD < ms.FDs[j].FD })
	return ms
}

// pathOf finds the table name of a file, or "" for unlinked files.
func (fs *FS) pathOf(f *memFile) string {
	found := ""
	//graphite:maporder pointer-identity lookup; at most one path matches
	for path, g := range fs.files {
		if g == f {
			found = path
			break
		}
	}
	return found
}

// RestoreState overwrites the MCP's service tables from a snapshot taken
// by CaptureState. It must run while no simulation traffic can arrive —
// in practice on a freshly constructed cluster before any thread starts.
func (s *Server) RestoreState(ms *checkpoint.MCPState) error {
	if len(ms.TileBusy) != len(s.tileBusy) {
		return fmt.Errorf("mcp: restore tile-count mismatch: snapshot %d, server %d", len(ms.TileBusy), len(s.tileBusy))
	}
	copy(s.tileBusy, ms.TileBusy)
	s.running = ms.Running
	s.everStarted = ms.Running > 0 || len(ms.Threads) > 0

	s.threads = make(map[arch.ThreadID]*threadRec, len(ms.Threads))
	for _, ts := range ms.Threads {
		rec := &threadRec{exited: ts.Exited, exitTime: arch.Cycles(ts.ExitTime)}
		for _, j := range ts.Joiners {
			rec.joiners = append(rec.joiners, replyTo{src: arch.TileID(j.Tile), seq: j.Seq})
		}
		s.threads[arch.ThreadID(ts.Thread)] = rec
	}

	s.blocked = make(map[arch.TileID]bool, len(ms.Blocked))
	for _, t := range ms.Blocked {
		s.blocked[arch.TileID(t)] = true
	}

	s.mutexes = make(map[arch.Addr]*mutexRec, len(ms.Mutexes))
	for _, rec := range ms.Mutexes {
		m := &mutexRec{locked: rec.Locked, lastFree: arch.Cycles(rec.LastFree)}
		for _, w := range rec.Queue {
			m.queue = append(m.queue, lockWaiter{
				to: replyTo{src: arch.TileID(w.Tile), seq: w.Seq}, t: arch.Cycles(w.Time), replyType: w.ReplyType,
			})
		}
		s.mutexes[arch.Addr(rec.Addr)] = m
	}

	s.barriers = make(map[arch.Addr]*barrierRec, len(ms.Barriers))
	for _, rec := range ms.Barriers {
		b := &barrierRec{}
		for _, w := range rec.Waiters {
			b.waiters = append(b.waiters, barrierWaiter{
				to: replyTo{src: arch.TileID(w.Tile), seq: w.Seq}, t: arch.Cycles(w.Time),
			})
		}
		s.barriers[arch.Addr(rec.Addr)] = b
	}

	s.conds = make(map[arch.Addr]*condRec, len(ms.Conds))
	for _, rec := range ms.Conds {
		c := &condRec{}
		for _, w := range rec.Waiters {
			c.waiters = append(c.waiters, condWaiter{
				to: replyTo{src: arch.TileID(w.Tile), seq: w.Seq}, t: arch.Cycles(w.Time), mutex: arch.Addr(w.Mutex),
			})
		}
		s.conds[arch.Addr(rec.Addr)] = c
	}

	s.alloc.free = s.alloc.free[:0]
	for _, sp := range ms.Alloc.Free {
		s.alloc.free = append(s.alloc.free, span{base: arch.Addr(sp.Base), size: arch.Addr(sp.Size)})
	}
	s.alloc.allocated = make(map[arch.Addr]arch.Addr, len(ms.Alloc.Allocated))
	for _, blk := range ms.Alloc.Allocated {
		s.alloc.allocated[arch.Addr(blk.Addr)] = arch.Addr(blk.Size)
	}
	s.alloc.inUse = arch.Addr(ms.Alloc.InUse)
	s.alloc.peak = arch.Addr(ms.Alloc.Peak)

	s.fs.files = make(map[string]*memFile, len(ms.Files))
	for _, f := range ms.Files {
		s.fs.files[f.Path] = &memFile{data: append([]byte(nil), f.Data...)}
	}
	s.fs.fds = make(map[int32]*fdEntry, len(ms.FDs))
	for _, fd := range ms.FDs {
		e := &fdEntry{off: fd.Off}
		if fd.Path != "" {
			f := s.fs.files[fd.Path]
			if f == nil {
				return fmt.Errorf("mcp: restore fd %d references unknown file %q", fd.FD, fd.Path)
			}
			e.file = f
		} else {
			e.file = &memFile{data: append([]byte(nil), fd.Data...)}
		}
		s.fs.fds[fd.FD] = e
	}
	s.fs.nextFD = ms.NextFD
	return nil
}
