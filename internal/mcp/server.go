package mcp

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/checkpoint"
	"repro/internal/config"
	"repro/internal/network"
	"repro/internal/stats"
	"repro/internal/transport"
)

// replyTo addresses a blocked requester.
type replyTo struct {
	src arch.TileID
	seq uint64
}

// threadRec tracks one application thread (thread ID == tile ID).
type threadRec struct {
	exited   bool
	exitTime arch.Cycles
	joiners  []replyTo
}

type lockWaiter struct {
	to        replyTo
	t         arch.Cycles
	replyType uint8 // MsgMutexLockRep or MsgCondRep
}

type mutexRec struct {
	locked   bool
	lastFree arch.Cycles
	queue    []lockWaiter
}

type barrierWaiter struct {
	to replyTo
	t  arch.Cycles
}

type barrierRec struct {
	waiters []barrierWaiter
}

type condWaiter struct {
	to    replyTo
	t     arch.Cycles
	mutex arch.Addr
}

type condRec struct {
	waiters []condWaiter
}

type simWait struct {
	epoch int64
	// batched waits arrived in a process ledger's MsgSimBarrierBatch and
	// are released with one MsgSimBarrierRelease to that process's LCP;
	// unbatched waits are individual MsgSimBarrier RPCs answered at `to`.
	batched bool
	to      replyTo
}

// Server is the Master Control Program. Exactly one exists per simulation,
// on host process 0. Run Serve in its own goroutine; it exits when the
// network closes.
type Server struct {
	cfg   *config.Config
	net   *network.Net
	alloc *Allocator
	fs    *FS

	threads     map[arch.ThreadID]*threadRec
	tileBusy    []bool
	running     int
	everStarted bool
	blocked     map[arch.TileID]bool

	mutexes  map[arch.Addr]*mutexRec
	barriers map[arch.Addr]*barrierRec
	conds    map[arch.Addr]*condRec

	simWaits map[arch.TileID]simWait
	// simBatch, releaseProcs, and releaseDirect are serve-loop scratch
	// (one goroutine): reused across quanta so the steady-state barrier
	// service does not allocate per round. When a checkpoint intercepts a
	// release, releaseProcs/releaseDirect hold the stashed release until
	// the save completes; no recheck can run in between (every unblocked
	// thread is parked on that very release), so they stay intact.
	simBatch      []SimWait
	releaseProcs  map[arch.ProcID]bool
	releaseDirect []replyTo

	// Checkpoint state machine (see checkpoint.go). All fields are
	// serve-goroutine-private except ckpt (set before Serve runs) and
	// ckptFailed (read by launchers).
	ckpt         *CheckpointPolicy
	ckptLast     int64
	ckptEpoch    int64
	ckptMCP      *checkpoint.MCPState
	ckptAcks     int
	ckptSent     uint64
	ckptRecv     uint64
	ckptQuiesced bool
	ckptPrevSent uint64
	ckptPrevRecv uint64
	ckptRounds   int
	ckptSaves    []CkptSaveResult
	ckptFailed   chan error

	statsCh chan []stats.Tile
	flushCh chan struct{}
	shutCh  chan shutdownAck
	doneCh  chan struct{}
	stopped chan struct{}
}

// shutdownAck is one LCP's acknowledgement of teardown.
type shutdownAck struct {
	proc arch.ProcID
	wall time.Duration
}

// NewServer builds the MCP. net must be registered on the MCP endpoint.
func NewServer(cfg *config.Config, net *network.Net) *Server {
	return &Server{
		cfg:          cfg,
		net:          net,
		alloc:        NewAllocator(cfg.AS.HeapBase, cfg.AS.HeapSize),
		fs:           NewFS(),
		threads:      make(map[arch.ThreadID]*threadRec),
		tileBusy:     make([]bool, cfg.Tiles),
		blocked:      make(map[arch.TileID]bool),
		mutexes:      make(map[arch.Addr]*mutexRec),
		barriers:     make(map[arch.Addr]*barrierRec),
		conds:        make(map[arch.Addr]*condRec),
		simWaits:     make(map[arch.TileID]simWait),
		releaseProcs: make(map[arch.ProcID]bool),
		ckptFailed:   make(chan error, 1),
		statsCh:      make(chan []stats.Tile, cfg.Processes),
		flushCh:      make(chan struct{}, cfg.Processes),
		shutCh:       make(chan shutdownAck, cfg.Processes),
		doneCh:       make(chan struct{}),
		stopped:      make(chan struct{}),
	}
}

// Done is closed when every application thread has exited.
func (s *Server) Done() <-chan struct{} { return s.doneCh }

// Stopped is closed when the serve loop exits.
func (s *Server) Stopped() <-chan struct{} { return s.stopped }

// StartMain launches the application's main thread (function 0, argument
// arg) on the lowest-numbered tile at simulated time 0. It must be called
// once, after Serve is running.
func (s *Server) StartMain(arg uint64) error {
	tile := s.pickTile()
	if tile == arch.InvalidTile {
		return fmt.Errorf("mcp: no tile available for main")
	}
	s.threads[arch.ThreadID(tile)] = &threadRec{}
	s.running++
	s.everStarted = true
	s.sendToLCP(tile, StartThread{Tile: tile, Func: 0, Arg: arg}, 0)
	return nil
}

func (s *Server) pickTile() arch.TileID {
	for i, busy := range s.tileBusy {
		if !busy {
			s.tileBusy[i] = true
			return arch.TileID(i)
		}
	}
	return arch.InvalidTile
}

func (s *Server) sendToLCP(tile arch.TileID, st StartThread, when arch.Cycles) {
	proc := s.cfg.ProcOf(tile)
	dst := arch.TileID(transport.LCP(proc))
	if _, err := s.net.Send(network.ClassSystem, MsgStartThread, dst, 0, EncodeStartThread(st), when); err != nil && !errors.Is(err, transport.ErrClosed) {
		panic("mcp: send to LCP failed: " + err.Error())
	}
}

func (s *Server) reply(typ uint8, to replyTo, payload []byte, when arch.Cycles) {
	// Replies racing teardown (transport closed) are dropped; the waiting
	// thread is being torn down with the fabric.
	if _, err := s.net.Send(network.ClassSystem, typ, to.src, to.seq, payload, when); err != nil && !errors.Is(err, transport.ErrClosed) {
		panic("mcp: reply failed: " + err.Error())
	}
}

// Serve is the MCP message loop.
func (s *Server) Serve() {
	defer close(s.stopped)
	for {
		pkt, ok := s.net.Recv(network.ClassSystem)
		if !ok {
			return
		}
		s.handle(pkt)
	}
}

func (s *Server) handle(pkt network.Packet) {
	to := replyTo{src: pkt.Src, seq: pkt.Seq}
	switch pkt.Type {
	case MsgSpawn:
		s.handleSpawn(pkt, to)
	case MsgThreadExit:
		s.handleThreadExit(pkt)
	case MsgJoin:
		s.handleJoin(pkt, to)
	case MsgMutexLock:
		s.handleMutexLock(pkt, to)
	case MsgMutexUnlock:
		s.handleMutexUnlock(pkt)
	case MsgBarrierWait:
		s.handleBarrierWait(pkt, to)
	case MsgCondWait:
		s.handleCondWait(pkt, to)
	case MsgCondSignal:
		s.handleCondSignal(pkt, false)
	case MsgCondBroadcast:
		s.handleCondSignal(pkt, true)
	case MsgMalloc:
		s.handleMalloc(pkt, to)
	case MsgFree:
		s.handleFree(pkt)
	case MsgSimBarrier:
		s.handleSimBarrier(pkt, to)
	case MsgSimBarrierBatch:
		s.handleSimBarrierBatch(pkt)
	case MsgFileOp:
		s.handleFileOp(pkt, to)
	case MsgCkptProbeRep:
		s.handleCkptProbeRep(pkt)
	case MsgCkptSaveRep:
		s.handleCkptSaveRep(pkt)
	case MsgStatsRep:
		var tiles []stats.Tile
		dec := gob.NewDecoder(bytes.NewReader(pkt.Payload))
		if err := dec.Decode(&tiles); err != nil {
			panic("mcp: bad stats payload: " + err.Error())
		}
		s.statsCh <- tiles
	case MsgFlushRep:
		s.flushCh <- struct{}{}
	case MsgShutdownRep:
		ns, err := DecodeU64(pkt.Payload)
		if err != nil {
			panic("mcp: bad shutdown ack: " + err.Error())
		}
		// The sender is an LCP; its endpoint encodes the process ID.
		proc, ok := transport.LCPProc(transport.EndpointID(pkt.Src))
		if !ok {
			panic(fmt.Sprintf("mcp: shutdown ack from non-LCP endpoint %d", pkt.Src))
		}
		s.shutCh <- shutdownAck{proc: proc, wall: time.Duration(ns)}
	}
}

func (s *Server) handleSpawn(pkt network.Packet, to replyTo) {
	req, err := DecodeSpawnReq(pkt.Payload)
	if err != nil {
		panic("mcp: " + err.Error())
	}
	tile := s.pickTile()
	if tile == arch.InvalidTile {
		// The paper's limit: live threads may not exceed tiles.
		s.reply(MsgSpawnRep, to, EncodeU64Pair(^uint64(0), 0), pkt.Time)
		return
	}
	s.threads[arch.ThreadID(tile)] = &threadRec{}
	s.running++
	s.everStarted = true
	start := pkt.Time + s.cfg.Costs.Spawn
	s.sendToLCP(tile, StartThread{Tile: tile, Func: req.Func, Arg: req.Arg}, start)
	s.reply(MsgSpawnRep, to, EncodeU64Pair(uint64(tile), uint64(start)), start)
}

func (s *Server) handleThreadExit(pkt network.Packet) {
	tid := arch.ThreadID(pkt.Src)
	rec := s.threads[tid]
	if rec == nil || rec.exited {
		return
	}
	rec.exited = true
	rec.exitTime = pkt.Time
	for _, j := range rec.joiners {
		s.reply(MsgJoinRep, j, EncodeU64(uint64(rec.exitTime)), rec.exitTime)
		s.unblock(j.src)
	}
	rec.joiners = nil
	s.tileBusy[pkt.Src] = false
	s.running--
	delete(s.simWaits, pkt.Src)
	s.recheckSimBarrier()
	if s.running == 0 && s.everStarted {
		select {
		case <-s.doneCh:
		default:
			close(s.doneCh)
		}
	}
}

func (s *Server) handleJoin(pkt network.Packet, to replyTo) {
	tid64, err := DecodeU64(pkt.Payload)
	if err != nil {
		panic("mcp: " + err.Error())
	}
	rec := s.threads[arch.ThreadID(tid64)]
	if rec == nil {
		s.reply(MsgJoinRep, to, EncodeU64(0), pkt.Time)
		return
	}
	if rec.exited {
		t := rec.exitTime
		if pkt.Time > t {
			t = pkt.Time
		}
		s.reply(MsgJoinRep, to, EncodeU64(uint64(rec.exitTime)), t)
		return
	}
	rec.joiners = append(rec.joiners, to)
	s.block(pkt.Src)
}

func (s *Server) mutex(addr arch.Addr) *mutexRec {
	m := s.mutexes[addr]
	if m == nil {
		m = &mutexRec{}
		s.mutexes[addr] = m
	}
	return m
}

func (s *Server) handleMutexLock(pkt network.Packet, to replyTo) {
	addr64, err := DecodeU64(pkt.Payload)
	if err != nil {
		panic("mcp: " + err.Error())
	}
	m := s.mutex(arch.Addr(addr64))
	if !m.locked {
		m.locked = true
		grant := pkt.Time
		if m.lastFree > grant {
			grant = m.lastFree
		}
		grant += s.cfg.Costs.Mutex
		s.reply(MsgMutexLockRep, to, nil, grant)
		return
	}
	m.queue = append(m.queue, lockWaiter{to: to, t: pkt.Time, replyType: MsgMutexLockRep})
	s.block(pkt.Src)
}

func (s *Server) handleMutexUnlock(pkt network.Packet) {
	addr64, err := DecodeU64(pkt.Payload)
	if err != nil {
		panic("mcp: " + err.Error())
	}
	m := s.mutex(arch.Addr(addr64))
	s.releaseMutex(m, pkt.Time)
}

// releaseMutex hands the mutex to the next waiter or marks it free.
func (s *Server) releaseMutex(m *mutexRec, t arch.Cycles) {
	if len(m.queue) == 0 {
		m.locked = false
		if t > m.lastFree {
			m.lastFree = t
		}
		return
	}
	w := m.queue[0]
	m.queue = m.queue[1:]
	grant := w.t
	if t > grant {
		grant = t
	}
	grant += s.cfg.Costs.Mutex
	s.reply(w.replyType, w.to, nil, grant)
	s.unblock(w.to.src)
}

func (s *Server) handleBarrierWait(pkt network.Packet, to replyTo) {
	addr64, n64, err := DecodeU64Pair(pkt.Payload)
	if err != nil {
		panic("mcp: " + err.Error())
	}
	b := s.barriers[arch.Addr(addr64)]
	if b == nil {
		b = &barrierRec{}
		s.barriers[arch.Addr(addr64)] = b
	}
	b.waiters = append(b.waiters, barrierWaiter{to: to, t: pkt.Time})
	if uint64(len(b.waiters)) < n64 {
		s.block(pkt.Src)
		return
	}
	// Last arrival releases everyone at max(arrival times) + cost.
	release := arch.Cycles(0)
	for _, w := range b.waiters {
		if w.t > release {
			release = w.t
		}
	}
	release += s.cfg.Costs.Barrier
	for _, w := range b.waiters {
		s.reply(MsgBarrierRep, w.to, nil, release)
		if w.to.src != pkt.Src {
			s.unblock(w.to.src)
		}
	}
	delete(s.barriers, arch.Addr(addr64))
}

func (s *Server) handleCondWait(pkt network.Packet, to replyTo) {
	cond64, mutex64, err := DecodeU64Pair(pkt.Payload)
	if err != nil {
		panic("mcp: " + err.Error())
	}
	// Atomically release the mutex and sleep.
	s.releaseMutex(s.mutex(arch.Addr(mutex64)), pkt.Time)
	c := s.conds[arch.Addr(cond64)]
	if c == nil {
		c = &condRec{}
		s.conds[arch.Addr(cond64)] = c
	}
	c.waiters = append(c.waiters, condWaiter{to: to, t: pkt.Time, mutex: arch.Addr(mutex64)})
	s.block(pkt.Src)
}

func (s *Server) handleCondSignal(pkt network.Packet, broadcast bool) {
	cond64, err := DecodeU64(pkt.Payload)
	if err != nil {
		panic("mcp: " + err.Error())
	}
	c := s.conds[arch.Addr(cond64)]
	if c == nil || len(c.waiters) == 0 {
		return
	}
	n := 1
	if broadcast {
		n = len(c.waiters)
	}
	for i := 0; i < n; i++ {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		t := w.t
		if pkt.Time > t {
			t = pkt.Time
		}
		t += s.cfg.Costs.Cond
		// The woken thread re-acquires its mutex before returning.
		m := s.mutex(w.mutex)
		if !m.locked {
			m.locked = true
			grant := t
			if m.lastFree > grant {
				grant = m.lastFree
			}
			grant += s.cfg.Costs.Mutex
			s.reply(MsgCondRep, w.to, nil, grant)
			s.unblock(w.to.src)
		} else {
			m.queue = append(m.queue, lockWaiter{to: w.to, t: t, replyType: MsgCondRep})
			// Still blocked: now on the mutex queue.
		}
	}
}

func (s *Server) handleMalloc(pkt network.Packet, to replyTo) {
	size64, err := DecodeU64(pkt.Payload)
	if err != nil {
		panic("mcp: " + err.Error())
	}
	addr, aerr := s.alloc.Alloc(arch.Addr(size64))
	if aerr != nil {
		s.reply(MsgMallocRep, to, EncodeU64(0), pkt.Time+s.cfg.Costs.Malloc)
		return
	}
	s.reply(MsgMallocRep, to, EncodeU64(uint64(addr)), pkt.Time+s.cfg.Costs.Malloc)
}

func (s *Server) handleFree(pkt network.Packet) {
	addr64, err := DecodeU64(pkt.Payload)
	if err != nil {
		panic("mcp: " + err.Error())
	}
	// Double frees indicate an application bug; surface loudly.
	if ferr := s.alloc.Free(arch.Addr(addr64)); ferr != nil {
		panic(ferr)
	}
}

func (s *Server) handleSimBarrier(pkt network.Packet, to replyTo) {
	epoch64, err := DecodeU64(pkt.Payload)
	if err != nil {
		panic("mcp: " + err.Error())
	}
	s.simWaits[pkt.Src] = simWait{epoch: int64(epoch64), to: to}
	s.recheckSimBarrier()
}

// handleSimBarrierBatch merges one process ledger's batch of waits into
// the wait table. Entries are independent — a tile cannot have two waits
// in flight (it stays parked until released) — so merge order across
// batches is irrelevant.
func (s *Server) handleSimBarrierBatch(pkt network.Packet) {
	waits, err := AppendSimBatch(s.simBatch[:0], pkt.Payload)
	if err != nil {
		panic("mcp: " + err.Error())
	}
	s.simBatch = waits[:0]
	for _, w := range waits {
		s.simWaits[w.Tile] = simWait{epoch: w.Epoch, batched: true}
	}
	s.recheckSimBarrier()
}

// recheckSimBarrier releases the lowest pending LaxBarrier epoch once
// every running, unblocked thread is waiting on the barrier. Threads
// blocked in MCP services (mutex queues, joins, condition waits) are not
// advancing their clocks and are excluded, which keeps the quanta barrier
// deadlock-free. Batched waiters are released with one notification per
// host process; direct RPC waiters get individual replies.
func (s *Server) recheckSimBarrier() {
	if len(s.simWaits) == 0 {
		return
	}
	active := s.running - len(s.blocked)
	if len(s.simWaits) < active {
		return
	}
	min := int64(1<<62 - 1)
	//graphite:maporder commutative minimum over pending epochs
	for _, w := range s.simWaits {
		if w.epoch < min {
			min = w.epoch
		}
	}
	clear(s.releaseProcs)
	s.releaseDirect = s.releaseDirect[:0]
	//graphite:maporder releases go to disjoint tiles/processes; the fabric orders only per-pair FIFO, so wake order was never defined, and released threads re-synchronize at the next quantum regardless
	for tile, w := range s.simWaits {
		if w.epoch != min {
			continue
		}
		if w.batched {
			s.releaseProcs[s.cfg.ProcOf(tile)] = true
		} else {
			s.releaseDirect = append(s.releaseDirect, w.to)
		}
		delete(s.simWaits, tile)
	}
	// A checkpoint-eligible epoch intercepts the release: the collected
	// targets stay stashed in releaseProcs/releaseDirect until the save
	// completes, and releaseEpoch runs from the checkpoint machine.
	if s.maybeCheckpoint(min) {
		return
	}
	s.releaseEpoch(min)
}

// releaseEpoch performs a collected epoch release: one notification per
// batched process, one reply per direct RPC waiter.
func (s *Server) releaseEpoch(min int64) {
	for _, to := range s.releaseDirect {
		s.reply(MsgSimBarrierRep, to, nil, 0)
	}
	s.releaseDirect = s.releaseDirect[:0]
	//graphite:maporder one release notification per distinct process; delivery order across processes is unordered by the fabric anyway
	for proc := range s.releaseProcs {
		dst := arch.TileID(transport.LCP(proc))
		if _, err := s.net.Send(network.ClassSystem, MsgSimBarrierRelease, dst, 0, EncodeU64(uint64(min)), 0); err != nil && !errors.Is(err, transport.ErrClosed) {
			panic("mcp: barrier release failed: " + err.Error())
		}
	}
	clear(s.releaseProcs)
}

func (s *Server) handleFileOp(pkt network.Packet, to replyTo) {
	var req FileReq
	dec := gob.NewDecoder(bytes.NewReader(pkt.Payload))
	if err := dec.Decode(&req); err != nil {
		panic("mcp: bad file payload: " + err.Error())
	}
	rep := s.fs.Handle(req)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&rep); err != nil {
		panic("mcp: encode file reply: " + err.Error())
	}
	s.reply(MsgFileRep, to, buf.Bytes(), pkt.Time+s.cfg.Costs.File)
}

func (s *Server) block(tile arch.TileID) {
	s.blocked[tile] = true
	s.recheckSimBarrier()
}

func (s *Server) unblock(tile arch.TileID) {
	delete(s.blocked, tile)
}

// GatherStats asks every LCP for its tiles' records and returns them all,
// ordered by tile ID. Call only after the application has finished.
func (s *Server) GatherStats() []stats.Tile {
	for p := 0; p < s.cfg.Processes; p++ {
		dst := arch.TileID(transport.LCP(arch.ProcID(p)))
		if _, err := s.net.Send(network.ClassSystem, MsgStatsGather, dst, 0, nil, 0); err != nil {
			panic("mcp: stats gather send: " + err.Error())
		}
	}
	var all []stats.Tile
	for p := 0; p < s.cfg.Processes; p++ {
		all = append(all, <-s.statsCh...)
	}
	byTile := make([]stats.Tile, s.cfg.Tiles)
	for _, t := range all {
		if int(t.TileID) < len(byTile) {
			byTile[t.TileID] = t
		}
	}
	return byTile
}

// ProcShutdown reports one host process's teardown acknowledgement.
type ProcShutdown struct {
	Proc arch.ProcID
	// Wall is the process's wall-clock serving time (LCP construction to
	// shutdown ack), valid when Acked.
	Wall time.Duration
	// Acked reports whether the process acknowledged teardown before the
	// deadline. An unacked worker may still be running.
	Acked bool
}

// shutdownAckTimeout bounds how long ShutdownWorkers waits for teardown
// acknowledgements. Acks arrive in milliseconds on a healthy fabric; a
// worker that stays silent this long has crashed or hung, and the
// coordinator must report that rather than block forever.
const shutdownAckTimeout = 15 * time.Second

// ShutdownWorkers announces teardown to every LCP and waits for each to
// acknowledge (acknowledge-then-close: workers send the ack before their
// Shutdown callback exits the process, so a full set of acks means every
// worker saw the teardown and is past its last fabric send). The returned
// slice, indexed by process, carries per-process wall times. In-process
// simulations with no Shutdown callbacks still ack; callers that don't
// care may ignore the result.
func (s *Server) ShutdownWorkers() []ProcShutdown {
	out := make([]ProcShutdown, s.cfg.Processes)
	announced := 0
	for p := range out {
		out[p].Proc = arch.ProcID(p)
	}
	for p := 0; p < s.cfg.Processes; p++ {
		dst := arch.TileID(transport.LCP(arch.ProcID(p)))
		// A failed send (dead peer connection, closed transport) must not
		// stop the announcement: the REMAINING workers still need their
		// teardown, or they block forever. The failed process simply
		// yields no ack.
		if _, err := s.net.Send(network.ClassSystem, MsgShutdown, dst, 0, nil, 0); err == nil {
			announced++
		}
	}
	//graphite:wallclock bounded teardown-ack wait: a dead worker must not hang shutdown; the timeout only abandons acks, simulation results are already final
	deadline := time.NewTimer(shutdownAckTimeout)
	defer deadline.Stop()
	for n := 0; n < announced; n++ {
		select {
		case ack := <-s.shutCh:
			if int(ack.proc) < len(out) {
				out[ack.proc].Wall = ack.wall
				out[ack.proc].Acked = true
			}
		case <-s.stopped:
			return out // serve loop gone (transport closed): no more acks
		case <-deadline.C:
			return out
		}
	}
	return out
}

// FlushCaches asks every LCP to flush its tiles' caches and waits for
// completion. Call only after the application has finished.
func (s *Server) FlushCaches() {
	for p := 0; p < s.cfg.Processes; p++ {
		dst := arch.TileID(transport.LCP(arch.ProcID(p)))
		if _, err := s.net.Send(network.ClassSystem, MsgFlush, dst, 0, nil, 0); err != nil {
			panic("mcp: flush send: " + err.Error())
		}
	}
	for p := 0; p < s.cfg.Processes; p++ {
		<-s.flushCh
	}
}
