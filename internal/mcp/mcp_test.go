package mcp

import (
	"io"
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func TestAllocatorBasic(t *testing.T) {
	a := NewAllocator(0x1000, 0x10000)
	p1, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != 0x1000 {
		t.Fatalf("first alloc at %#x", uint64(p1))
	}
	if p1%allocAlign != 0 {
		t.Fatal("unaligned allocation")
	}
	p2, _ := a.Alloc(1)
	if p2 < p1+128 { // 100 rounds to 128
		t.Fatalf("second alloc %#x overlaps first", uint64(p2))
	}
	if a.InUse() != 128+64 {
		t.Fatalf("InUse = %d", a.InUse())
	}
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p1); err == nil {
		t.Fatal("double free accepted")
	}
	if err := a.Free(0xDEAD); err == nil {
		t.Fatal("bogus free accepted")
	}
}

func TestAllocatorReusesFreedSpace(t *testing.T) {
	a := NewAllocator(0, 1024)
	p1, _ := a.Alloc(512)
	if _, err := a.Alloc(512); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(64); err == nil {
		t.Fatal("alloc beyond capacity succeeded")
	}
	a.Free(p1)
	p3, err := a.Alloc(512)
	if err != nil {
		t.Fatal(err)
	}
	if p3 != p1 {
		t.Fatalf("freed space not reused: %#x vs %#x", uint64(p3), uint64(p1))
	}
}

func TestAllocatorCoalesces(t *testing.T) {
	a := NewAllocator(0, 1024)
	p1, _ := a.Alloc(256)
	p2, _ := a.Alloc(256)
	p3, _ := a.Alloc(256)
	a.Free(p2)
	a.Free(p1)
	a.Free(p3)
	if a.FreeSpans() != 1 {
		t.Fatalf("free list fragmented into %d spans after full free", a.FreeSpans())
	}
	if _, err := a.Alloc(1024); err != nil {
		t.Fatalf("coalesced heap cannot satisfy full-size alloc: %v", err)
	}
}

func TestAllocatorPeak(t *testing.T) {
	a := NewAllocator(0, 4096)
	p1, _ := a.Alloc(1024)
	a.Alloc(1024)
	a.Free(p1)
	if a.Peak() != 2048 {
		t.Fatalf("peak = %d", a.Peak())
	}
	if a.InUse() != 1024 {
		t.Fatalf("inUse = %d", a.InUse())
	}
}

func TestAllocatorNeverOverlapsQuick(t *testing.T) {
	f := func(sizes []uint16) bool {
		a := NewAllocator(0, 1<<20)
		type block struct{ base, size arch.Addr }
		var blocks []block
		for _, s := range sizes {
			sz := arch.Addr(s%2048) + 1
			p, err := a.Alloc(sz)
			if err != nil {
				continue
			}
			for _, b := range blocks {
				if p < b.base+b.size && b.base < p+sz {
					return false
				}
			}
			blocks = append(blocks, block{p, sz})
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFSOpenReadWrite(t *testing.T) {
	fs := NewFS()
	rep := fs.Handle(FileReq{Op: FileOpen, Path: "/out.dat", Flags: OCreate})
	if rep.Err != "" {
		t.Fatal(rep.Err)
	}
	fd := rep.FD
	if fd < 3 {
		t.Fatalf("fd = %d", fd)
	}
	rep = fs.Handle(FileReq{Op: FileWrite, FD: fd, Data: []byte("hello ")})
	if rep.Err != "" || rep.N != 6 {
		t.Fatalf("write: %+v", rep)
	}
	fs.Handle(FileReq{Op: FileWrite, FD: fd, Data: []byte("world")})
	// Seek to start and read back.
	rep = fs.Handle(FileReq{Op: FileSeek, FD: fd, Off: 0, Whence: io.SeekStart})
	if rep.Err != "" || rep.N != 0 {
		t.Fatalf("seek: %+v", rep)
	}
	rep = fs.Handle(FileReq{Op: FileRead, FD: fd, N: 100})
	if rep.Err != "" || string(rep.Data) != "hello world" {
		t.Fatalf("read: %q %s", rep.Data, rep.Err)
	}
	// EOF.
	rep = fs.Handle(FileReq{Op: FileRead, FD: fd, N: 10})
	if rep.Err != "" || rep.N != 0 {
		t.Fatalf("EOF read: %+v", rep)
	}
	if rep := fs.Handle(FileReq{Op: FileStat, FD: fd}); rep.N != 11 {
		t.Fatalf("stat: %+v", rep)
	}
	if rep := fs.Handle(FileReq{Op: FileClose, FD: fd}); rep.Err != "" {
		t.Fatal(rep.Err)
	}
	if fs.OpenFDs() != 0 {
		t.Fatal("fd leaked")
	}
}

func TestFSDescriptorSharingAcrossThreads(t *testing.T) {
	// The consistency property of paper §3.4: one thread writes through an
	// fd, another thread (possibly in another host process) reads through
	// a second fd on the same path.
	fs := NewFS()
	w := fs.Handle(FileReq{Op: FileOpen, Path: "/shared", Flags: OCreate})
	fs.Handle(FileReq{Op: FileWrite, FD: w.FD, Data: []byte("xyz")})
	r := fs.Handle(FileReq{Op: FileOpen, Path: "/shared"})
	rep := fs.Handle(FileReq{Op: FileRead, FD: r.FD, N: 3})
	if string(rep.Data) != "xyz" {
		t.Fatalf("cross-fd read = %q", rep.Data)
	}
	// And the very same fd value works from "another thread" (same table).
	rep = fs.Handle(FileReq{Op: FileSeek, FD: w.FD, Off: 0, Whence: io.SeekStart})
	if rep.Err != "" {
		t.Fatal(rep.Err)
	}
	rep = fs.Handle(FileReq{Op: FileRead, FD: w.FD, N: 3})
	if string(rep.Data) != "xyz" {
		t.Fatalf("same-fd read = %q", rep.Data)
	}
}

func TestFSErrors(t *testing.T) {
	fs := NewFS()
	if rep := fs.Handle(FileReq{Op: FileOpen, Path: "/missing"}); rep.Err == "" {
		t.Fatal("open of missing file without O_CREATE succeeded")
	}
	if rep := fs.Handle(FileReq{Op: FileRead, FD: 99, N: 1}); rep.Err == "" {
		t.Fatal("read on bad fd succeeded")
	}
	if rep := fs.Handle(FileReq{Op: FileWrite, FD: 99}); rep.Err == "" {
		t.Fatal("write on bad fd succeeded")
	}
	if rep := fs.Handle(FileReq{Op: FileUnlink, Path: "/missing"}); rep.Err == "" {
		t.Fatal("unlink of missing file succeeded")
	}
	if rep := fs.Handle(FileReq{Op: 200}); rep.Err == "" {
		t.Fatal("unknown op succeeded")
	}
}

func TestFSTruncAndAppend(t *testing.T) {
	fs := NewFS()
	a := fs.Handle(FileReq{Op: FileOpen, Path: "/f", Flags: OCreate})
	fs.Handle(FileReq{Op: FileWrite, FD: a.FD, Data: []byte("0123456789")})
	b := fs.Handle(FileReq{Op: FileOpen, Path: "/f", Flags: OTrunc})
	if rep := fs.Handle(FileReq{Op: FileStat, FD: b.FD}); rep.N != 0 {
		t.Fatalf("O_TRUNC left %d bytes", rep.N)
	}
	fs.Handle(FileReq{Op: FileWrite, FD: b.FD, Data: []byte("ab")})
	c := fs.Handle(FileReq{Op: FileOpen, Path: "/f", Flags: OAppend})
	fs.Handle(FileReq{Op: FileWrite, FD: c.FD, Data: []byte("cd")})
	r := fs.Handle(FileReq{Op: FileOpen, Path: "/f"})
	rep := fs.Handle(FileReq{Op: FileRead, FD: r.FD, N: 10})
	if string(rep.Data) != "abcd" {
		t.Fatalf("append result = %q", rep.Data)
	}
}

func TestMsgCodecs(t *testing.T) {
	sr, err := DecodeSpawnReq(EncodeSpawnReq(SpawnReq{Func: 7, Arg: 0xDEADBEEF}))
	if err != nil || sr.Func != 7 || sr.Arg != 0xDEADBEEF {
		t.Fatalf("spawn codec: %+v %v", sr, err)
	}
	st, err := DecodeStartThread(EncodeStartThread(StartThread{Tile: 5, Func: 2, Arg: 9}))
	if err != nil || st.Tile != 5 || st.Func != 2 || st.Arg != 9 {
		t.Fatalf("start codec: %+v %v", st, err)
	}
	v, err := DecodeU64(EncodeU64(42))
	if err != nil || v != 42 {
		t.Fatal("u64 codec")
	}
	x, y, err := DecodeU64Pair(EncodeU64Pair(1, 2))
	if err != nil || x != 1 || y != 2 {
		t.Fatal("pair codec")
	}
	if _, err := DecodeSpawnReq(nil); err == nil {
		t.Fatal("decoded nil spawn")
	}
	if _, err := DecodeU64([]byte{1}); err == nil {
		t.Fatal("decoded short u64")
	}
	if _, _, err := DecodeU64Pair([]byte{1}); err == nil {
		t.Fatal("decoded short pair")
	}
	if _, err := DecodeStartThread([]byte{1}); err == nil {
		t.Fatal("decoded short start")
	}
	for m := uint8(0); m <= MsgFlushRep; m++ {
		if MsgName(m) == "" {
			t.Fatal("empty message name")
		}
	}
}
