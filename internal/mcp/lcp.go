package mcp

import (
	"bytes"
	"encoding/gob"
	"errors"
	"time"

	"repro/internal/arch"
	"repro/internal/network"
	"repro/internal/stats"
	"repro/internal/transport"
)

// LCPCallbacks connect the Local Control Program to its process's tile
// runtime. StartThread must not block (launch a goroutine); Flush may
// block until local caches are written back.
type LCPCallbacks struct {
	// StartThread launches an application thread on a local tile with the
	// given start clock.
	StartThread func(st StartThread, start arch.Cycles)
	// CollectStats snapshots the statistics of every local tile.
	CollectStats func() []stats.Tile
	// Flush writes back and drops all cached state of every local tile.
	Flush func()
	// Shutdown, if non-nil, is invoked when the MCP announces simulation
	// teardown (used by worker OS processes to exit cleanly).
	Shutdown func()
	// SimRelease, if non-nil, is invoked when the MCP releases a
	// LaxBarrier epoch for this process's batched waiters; the process
	// ledger wakes the parked threads.
	SimRelease func(epoch int64)
	// CkptProbe, if non-nil, reports the process's drain status: summed
	// memory-class traffic counters over local tiles and whether every
	// local memory node is quiesced. It must not block.
	CkptProbe func() CkptProbeRep
	// CkptSave, if non-nil, serializes the process's complete simulation
	// state for the given epoch and returns the manifest entry. It runs on
	// the LCP serve goroutine and may block: during a save the simulation
	// is globally drained and parked, so no other ClassSystem traffic
	// needs this loop (the epoch release is stashed at the MCP until every
	// save acknowledgement is in).
	CkptSave func(epoch int64) CkptSaveResult
}

// LCP is the Local Control Program: one per host process. It executes
// thread-start requests from the MCP and serves collection requests.
type LCP struct {
	proc    arch.ProcID
	net     *network.Net
	cb      LCPCallbacks
	started time.Time
	stopped chan struct{}
}

// NewLCP builds the LCP for one process. net must be registered on the
// process's LCP endpoint.
//
//graphite:wallclock anchors the per-process wall-serving timer reported as proc_wall_sec — reporting only, excluded from reproducibility diffs, never feeds simulated state
func NewLCP(proc arch.ProcID, net *network.Net, cb LCPCallbacks) *LCP {
	return &LCP{proc: proc, net: net, cb: cb, started: time.Now(), stopped: make(chan struct{})}
}

// Stopped is closed when the serve loop exits.
func (l *LCP) Stopped() <-chan struct{} { return l.stopped }

// Serve is the LCP message loop; it exits when the network closes.
func (l *LCP) Serve() {
	defer close(l.stopped)
	for {
		pkt, ok := l.net.Recv(network.ClassSystem)
		if !ok {
			return
		}
		switch pkt.Type {
		case MsgStartThread:
			st, err := DecodeStartThread(pkt.Payload)
			if err != nil {
				panic("mcp: " + err.Error())
			}
			l.cb.StartThread(st, pkt.Time)
		case MsgStatsGather:
			tiles := l.cb.CollectStats()
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(tiles); err != nil {
				panic("mcp: encode stats: " + err.Error())
			}
			if _, err := l.net.Send(network.ClassSystem, MsgStatsRep, pkt.Src, pkt.Seq, buf.Bytes(), 0); err != nil && !errors.Is(err, transport.ErrClosed) {
				panic("mcp: stats reply: " + err.Error())
			}
		case MsgFlush:
			l.cb.Flush()
			if _, err := l.net.Send(network.ClassSystem, MsgFlushRep, pkt.Src, pkt.Seq, nil, 0); err != nil && !errors.Is(err, transport.ErrClosed) {
				panic("mcp: flush reply: " + err.Error())
			}
		case MsgSimBarrierRelease:
			epoch64, err := DecodeU64(pkt.Payload)
			if err != nil {
				panic("mcp: " + err.Error())
			}
			if l.cb.SimRelease != nil {
				l.cb.SimRelease(int64(epoch64))
			}
		case MsgCkptProbe:
			var rep CkptProbeRep
			if l.cb.CkptProbe != nil {
				rep = l.cb.CkptProbe()
			} else {
				rep.Quiesced = true
			}
			if _, err := l.net.Send(network.ClassSystem, MsgCkptProbeRep, pkt.Src, pkt.Seq, EncodeCkptProbeRep(rep), 0); err != nil && !errors.Is(err, transport.ErrClosed) {
				panic("mcp: ckpt probe reply: " + err.Error())
			}
		case MsgCkptSave:
			epoch64, err := DecodeU64(pkt.Payload)
			if err != nil {
				panic("mcp: " + err.Error())
			}
			res := CkptSaveResult{Proc: int32(l.proc), Err: "process has no checkpoint support"}
			if l.cb.CkptSave != nil {
				res = l.cb.CkptSave(int64(epoch64))
			}
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(&res); err != nil {
				panic("mcp: encode ckpt save reply: " + err.Error())
			}
			if _, err := l.net.Send(network.ClassSystem, MsgCkptSaveRep, pkt.Src, pkt.Seq, buf.Bytes(), 0); err != nil && !errors.Is(err, transport.ErrClosed) {
				panic("mcp: ckpt save reply: " + err.Error())
			}
		case MsgShutdown:
			// Acknowledge-then-close: the ack (carrying this process's
			// wall-clock serving time) must be on the wire before the
			// Shutdown callback runs, because worker processes exit from
			// that callback and tear the transport down with them.
			wall := time.Since(l.started) //graphite:wallclock proc_wall_sec reporting; excluded from reproducibility diffs
			if _, err := l.net.Send(network.ClassSystem, MsgShutdownRep, pkt.Src, pkt.Seq, EncodeU64(uint64(wall.Nanoseconds())), 0); err != nil && !errors.Is(err, transport.ErrClosed) {
				panic("mcp: shutdown ack: " + err.Error())
			}
			if l.cb.Shutdown != nil {
				l.cb.Shutdown()
			}
		}
	}
}
