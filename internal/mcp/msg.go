// Package mcp implements Graphite's simulation control plane (paper §2.2,
// §3.4, §3.5): the Master Control Program — one per simulation, hosted by
// process 0 — and the Local Control Program, one per host process.
//
// The MCP provides the services that preserve the illusion of a single
// process across distributed host processes:
//
//   - thread management: spawn requests are forwarded to the MCP, which
//     picks an available tile and asks the owning process's LCP to start
//     the thread; joins synchronize through the MCP;
//   - synchronization: the futex-style services behind application
//     mutexes, barriers, and condition variables, keyed by simulated
//     address;
//   - dynamic memory management: brk/mmap-equivalent allocation from the
//     heap segment of the single application address space;
//   - consistent file I/O: a simulation-wide file table so threads in
//     different host processes can pass file descriptors to each other;
//   - the LaxBarrier epoch service used by the quanta-based
//     synchronization model.
//
// All services communicate over ClassSystem packets, which ride the
// zero-delay "magic" network so control traffic never perturbs simulated
// time. Simulated timestamps for synchronization events travel in the
// packet Time field.
package mcp

import (
	"encoding/binary"
	"fmt"

	"repro/internal/arch"
	"repro/internal/synchro"
)

// System message types (network.Packet.Type within ClassSystem).
const (
	// MsgClockProbe / MsgClockProbeRep implement LaxP2P partner probes;
	// they are answered directly by the target tile's system router, not
	// by the MCP.
	MsgClockProbe uint8 = iota
	MsgClockProbeRep

	// Thread management (tile <-> MCP, MCP -> LCP).
	MsgSpawn
	MsgSpawnRep
	MsgJoin
	MsgJoinRep
	MsgThreadExit
	MsgStartThread

	// Application synchronization (futex-style services).
	MsgMutexLock
	MsgMutexLockRep
	MsgMutexUnlock
	MsgBarrierWait
	MsgBarrierRep
	MsgCondWait
	MsgCondRep
	MsgCondSignal
	MsgCondBroadcast

	// Dynamic memory management.
	MsgMalloc
	MsgMallocRep
	MsgFree

	// LaxBarrier epoch service.
	MsgSimBarrier
	MsgSimBarrierRep

	// File I/O forwarding (gob payloads).
	MsgFileOp
	MsgFileRep

	// Collection and teardown (MCP <-> LCP).
	MsgStatsGather
	MsgStatsRep
	MsgFlush
	MsgFlushRep
	MsgShutdown
	// MsgShutdownRep acknowledges MsgShutdown. The LCP sends it *before*
	// invoking its Shutdown callback, carrying the process's wall-clock
	// serving time in nanoseconds, so the MCP knows every worker saw the
	// teardown (acknowledge-then-close) and can report per-process wall
	// time.
	MsgShutdownRep

	// Batched LaxBarrier epoch service: each host process's ledger
	// forwards all of its tiles' pending waits in one MsgSimBarrierBatch
	// (sent from the LCP endpoint); the MCP answers with one
	// MsgSimBarrierRelease per process carrying the released epoch, and
	// the ledger wakes the parked threads locally. A quantum costs one
	// message per worker process instead of one RPC per tile.
	MsgSimBarrierBatch
	MsgSimBarrierRelease

	// Checkpoint protocol (MCP <-> LCP; DESIGN.md §18). The MCP probes
	// each process's drain status (MsgCkptProbe / MsgCkptProbeRep) until
	// residual memory traffic settles, then orders each process to
	// serialize its state (MsgCkptSave, carrying the epoch) and collects
	// the gob-encoded CkptSaveResult acknowledgements (MsgCkptSaveRep)
	// before writing the manifest and performing the stashed barrier
	// release.
	MsgCkptProbe
	MsgCkptProbeRep
	MsgCkptSave
	MsgCkptSaveRep
)

// MsgName returns a human-readable message name for diagnostics.
func MsgName(t uint8) string {
	names := []string{
		"ClockProbe", "ClockProbeRep", "Spawn", "SpawnRep", "Join",
		"JoinRep", "ThreadExit", "StartThread", "MutexLock", "MutexLockRep",
		"MutexUnlock", "BarrierWait", "BarrierRep", "CondWait", "CondRep",
		"CondSignal", "CondBroadcast", "Malloc", "MallocRep", "Free",
		"SimBarrier", "SimBarrierRep", "FileOp", "FileRep", "StatsGather",
		"StatsRep", "Flush", "FlushRep", "Shutdown", "ShutdownRep",
		"SimBarrierBatch", "SimBarrierRelease",
		"CkptProbe", "CkptProbeRep", "CkptSave", "CkptSaveRep",
	}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("sys(%d)", t)
}

// SpawnReq asks the MCP to start a thread running registered function
// Func with argument Arg. Time (the parent's clock) rides Packet.Time.
type SpawnReq struct {
	Func uint32
	Arg  uint64
}

// EncodeSpawnReq serializes a SpawnReq.
func EncodeSpawnReq(r SpawnReq) []byte {
	b := make([]byte, 12)
	binary.LittleEndian.PutUint32(b[0:4], r.Func)
	binary.LittleEndian.PutUint64(b[4:12], r.Arg)
	return b
}

// DecodeSpawnReq parses a SpawnReq.
func DecodeSpawnReq(b []byte) (SpawnReq, error) {
	if len(b) != 12 {
		return SpawnReq{}, fmt.Errorf("mcp: bad SpawnReq (%d bytes)", len(b))
	}
	return SpawnReq{
		Func: binary.LittleEndian.Uint32(b[0:4]),
		Arg:  binary.LittleEndian.Uint64(b[4:12]),
	}, nil
}

// StartThread tells an LCP to launch a thread on one of its tiles.
type StartThread struct {
	Tile arch.TileID
	Func uint32
	Arg  uint64
}

// EncodeStartThread serializes a StartThread.
func EncodeStartThread(r StartThread) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint32(b[0:4], uint32(int32(r.Tile)))
	binary.LittleEndian.PutUint32(b[4:8], r.Func)
	binary.LittleEndian.PutUint64(b[8:16], r.Arg)
	return b
}

// DecodeStartThread parses a StartThread.
func DecodeStartThread(b []byte) (StartThread, error) {
	if len(b) != 16 {
		return StartThread{}, fmt.Errorf("mcp: bad StartThread (%d bytes)", len(b))
	}
	return StartThread{
		Tile: arch.TileID(int32(binary.LittleEndian.Uint32(b[0:4]))),
		Func: binary.LittleEndian.Uint32(b[4:8]),
		Arg:  binary.LittleEndian.Uint64(b[8:16]),
	}, nil
}

// EncodeU64 serializes one uint64 (thread IDs, addresses, epochs, sizes).
func EncodeU64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

// DecodeU64 parses one uint64.
func DecodeU64(b []byte) (uint64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("mcp: bad u64 payload (%d bytes)", len(b))
	}
	return binary.LittleEndian.Uint64(b), nil
}

// SimWait is one tile's pending LaxBarrier wait inside a batch. It is
// the ledger's EpochWait so process runtimes encode their batches with
// no per-round conversion copy.
type SimWait = synchro.EpochWait

// EncodeSimBatch serializes a batch of barrier waits: 12 bytes per entry
// (tile as uint32, epoch as uint64).
func EncodeSimBatch(ws []SimWait) []byte {
	b := make([]byte, 12*len(ws))
	for i, w := range ws {
		binary.LittleEndian.PutUint32(b[i*12:], uint32(int32(w.Tile)))
		binary.LittleEndian.PutUint64(b[i*12+4:], uint64(w.Epoch))
	}
	return b
}

// AppendSimBatch parses a batch of barrier waits into dst (retaining
// dst's backing array: the MCP's serve loop reuses one scratch slice
// across batches).
func AppendSimBatch(dst []SimWait, b []byte) ([]SimWait, error) {
	if len(b) == 0 || len(b)%12 != 0 {
		return nil, fmt.Errorf("mcp: bad sim batch (%d bytes)", len(b))
	}
	for i := 0; i < len(b)/12; i++ {
		dst = append(dst, SimWait{
			Tile:  arch.TileID(int32(binary.LittleEndian.Uint32(b[i*12:]))),
			Epoch: int64(binary.LittleEndian.Uint64(b[i*12+4:])),
		})
	}
	return dst, nil
}

// DecodeSimBatch parses a batch of barrier waits.
func DecodeSimBatch(b []byte) ([]SimWait, error) {
	return AppendSimBatch(nil, b)
}

// CkptProbeRep is one process's drain-status report: cumulative
// memory-class packets sent and received across its local tiles, and
// whether every local memory node is individually quiesced.
type CkptProbeRep struct {
	Sent, Recv uint64
	Quiesced   bool
}

// EncodeCkptProbeRep serializes a CkptProbeRep.
func EncodeCkptProbeRep(r CkptProbeRep) []byte {
	b := make([]byte, 17)
	binary.LittleEndian.PutUint64(b[0:8], r.Sent)
	binary.LittleEndian.PutUint64(b[8:16], r.Recv)
	if r.Quiesced {
		b[16] = 1
	}
	return b
}

// DecodeCkptProbeRep parses a CkptProbeRep.
func DecodeCkptProbeRep(b []byte) (CkptProbeRep, error) {
	if len(b) != 17 {
		return CkptProbeRep{}, fmt.Errorf("mcp: bad ckpt probe reply (%d bytes)", len(b))
	}
	return CkptProbeRep{
		Sent:     binary.LittleEndian.Uint64(b[0:8]),
		Recv:     binary.LittleEndian.Uint64(b[8:16]),
		Quiesced: b[16] != 0,
	}, nil
}

// CkptSaveResult is one process's save acknowledgement (gob payload of
// MsgCkptSaveRep): the manifest entry for its state file, or the error
// that prevented writing it.
type CkptSaveResult struct {
	Proc        int32
	File        string
	FileSum     string
	StateDigest string
	Err         string
}

// EncodeU64Pair serializes two uint64s (cond/mutex address pairs,
// barrier address + count).
func EncodeU64Pair(a, b uint64) []byte {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf[0:8], a)
	binary.LittleEndian.PutUint64(buf[8:16], b)
	return buf
}

// DecodeU64Pair parses two uint64s.
func DecodeU64Pair(buf []byte) (a, b uint64, err error) {
	if len(buf) != 16 {
		return 0, 0, fmt.Errorf("mcp: bad u64 pair (%d bytes)", len(buf))
	}
	return binary.LittleEndian.Uint64(buf[0:8]), binary.LittleEndian.Uint64(buf[8:16]), nil
}
