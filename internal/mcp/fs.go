package mcp

import (
	"fmt"
	"io"
)

// File operation codes for FileReq.Op.
const (
	FileOpen uint8 = iota
	FileRead
	FileWrite
	FileClose
	FileSeek
	FileStat
	FileUnlink
)

// Open flags (subset of POSIX semantics).
const (
	OCreate = 1 << 0
	OTrunc  = 1 << 1
	OAppend = 1 << 2
)

// FileReq is a forwarded file system call (gob-encoded; paper §3.4: file
// I/O executes at the MCP so descriptors are consistent across processes).
type FileReq struct {
	Op     uint8
	FD     int32
	Path   string
	Flags  int32
	Data   []byte
	N      int32
	Off    int64
	Whence int32
}

// FileRep is the result of a forwarded file system call.
type FileRep struct {
	Err  string
	FD   int32
	Data []byte
	N    int64
}

// memFile is one file's contents.
type memFile struct {
	data []byte
}

// fdEntry is an open descriptor: file plus offset. Descriptors are
// simulation-global: any thread in any process may use an FD another
// thread opened — the consistency property the MCP exists to provide.
type fdEntry struct {
	file *memFile
	off  int64
}

// FS is the MCP's in-memory file system. Real Graphite forwards to the
// host OS; an in-memory store preserves the property under test (one
// consistent file table for the whole simulation) while keeping
// simulations hermetic.
type FS struct {
	files  map[string]*memFile
	fds    map[int32]*fdEntry
	nextFD int32
}

// NewFS returns an empty file system.
func NewFS() *FS {
	return &FS{
		files:  make(map[string]*memFile),
		fds:    make(map[int32]*fdEntry),
		nextFD: 3, // 0-2 reserved, as on a real system
	}
}

// Handle executes one file request.
func (fs *FS) Handle(req FileReq) FileRep {
	switch req.Op {
	case FileOpen:
		f, ok := fs.files[req.Path]
		if !ok {
			if req.Flags&OCreate == 0 {
				return FileRep{Err: fmt.Sprintf("open %s: no such file", req.Path)}
			}
			f = &memFile{}
			fs.files[req.Path] = f
		}
		if req.Flags&OTrunc != 0 {
			f.data = nil
		}
		fd := fs.nextFD
		fs.nextFD++
		e := &fdEntry{file: f}
		if req.Flags&OAppend != 0 {
			e.off = int64(len(f.data))
		}
		fs.fds[fd] = e
		return FileRep{FD: fd}
	case FileRead:
		e, ok := fs.fds[req.FD]
		if !ok {
			return FileRep{Err: fmt.Sprintf("read: bad fd %d", req.FD)}
		}
		if e.off >= int64(len(e.file.data)) {
			return FileRep{N: 0} // EOF
		}
		n := int64(req.N)
		if rem := int64(len(e.file.data)) - e.off; n > rem {
			n = rem
		}
		out := make([]byte, n)
		copy(out, e.file.data[e.off:])
		e.off += n
		return FileRep{Data: out, N: n}
	case FileWrite:
		e, ok := fs.fds[req.FD]
		if !ok {
			return FileRep{Err: fmt.Sprintf("write: bad fd %d", req.FD)}
		}
		end := e.off + int64(len(req.Data))
		if end > int64(len(e.file.data)) {
			grown := make([]byte, end)
			copy(grown, e.file.data)
			e.file.data = grown
		}
		copy(e.file.data[e.off:], req.Data)
		e.off = end
		return FileRep{N: int64(len(req.Data))}
	case FileClose:
		if _, ok := fs.fds[req.FD]; !ok {
			return FileRep{Err: fmt.Sprintf("close: bad fd %d", req.FD)}
		}
		delete(fs.fds, req.FD)
		return FileRep{}
	case FileSeek:
		e, ok := fs.fds[req.FD]
		if !ok {
			return FileRep{Err: fmt.Sprintf("seek: bad fd %d", req.FD)}
		}
		var base int64
		switch req.Whence {
		case io.SeekStart:
			base = 0
		case io.SeekCurrent:
			base = e.off
		case io.SeekEnd:
			base = int64(len(e.file.data))
		default:
			return FileRep{Err: "seek: bad whence"}
		}
		pos := base + req.Off
		if pos < 0 {
			return FileRep{Err: "seek: negative offset"}
		}
		e.off = pos
		return FileRep{N: pos}
	case FileStat:
		e, ok := fs.fds[req.FD]
		if !ok {
			return FileRep{Err: fmt.Sprintf("stat: bad fd %d", req.FD)}
		}
		return FileRep{N: int64(len(e.file.data))}
	case FileUnlink:
		if _, ok := fs.files[req.Path]; !ok {
			return FileRep{Err: fmt.Sprintf("unlink %s: no such file", req.Path)}
		}
		delete(fs.files, req.Path)
		return FileRep{}
	default:
		return FileRep{Err: fmt.Sprintf("bad file op %d", req.Op)}
	}
}

// OpenFDs returns the number of open descriptors (diagnostics).
func (fs *FS) OpenFDs() int { return len(fs.fds) }
