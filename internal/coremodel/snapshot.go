package coremodel

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/checkpoint"
)

// Capture snapshots the model's dynamic state: synthetic PC, fetched
// line, predictor table, store buffer, and retirement counters. The
// configuration-derived fields (costs, masks, geometry) are re-derived by
// New at restore time.
func (c *Core) Capture() *checkpoint.CoreState {
	s := &checkpoint.CoreState{
		PC:           uint64(c.pc),
		FetchedLine:  uint64(c.fetchedLn),
		Predictor:    append([]uint8(nil), c.predictor...),
		Instructions: c.instructions,
		Branches:     c.branches,
		Mispredicts:  c.mispredicts,
		ComputeCyc:   int64(c.computeCyc),
		MemStallCyc:  int64(c.memStallCyc),
	}
	if c.storeBuf != nil {
		s.StoreBuf = make([]int64, len(c.storeBuf))
		for i, t := range c.storeBuf {
			s.StoreBuf[i] = int64(t)
		}
	}
	return s
}

// Restore overwrites the model's dynamic state from a snapshot taken by
// Capture on an identically configured core.
func (c *Core) Restore(s *checkpoint.CoreState) error {
	if len(s.Predictor) != len(c.predictor) {
		return fmt.Errorf("coremodel: restore predictor size mismatch: snapshot %d, core %d", len(s.Predictor), len(c.predictor))
	}
	if len(s.StoreBuf) != len(c.storeBuf) {
		return fmt.Errorf("coremodel: restore store-buffer size mismatch: snapshot %d, core %d", len(s.StoreBuf), len(c.storeBuf))
	}
	c.pc = arch.Addr(s.PC)
	c.fetchedLn = arch.Addr(s.FetchedLine)
	copy(c.predictor, s.Predictor)
	for i, t := range s.StoreBuf {
		c.storeBuf[i] = arch.Cycles(t)
	}
	c.instructions = s.Instructions
	c.branches = s.Branches
	c.mispredicts = s.Mispredicts
	c.computeCyc = arch.Cycles(s.ComputeCyc)
	c.memStallCyc = arch.Cycles(s.MemStallCyc)
	return nil
}
