// Package coremodel implements the core performance model of paper §3.1:
// a purely modeled, in-order pipeline with an out-of-order memory system.
// It follows the producer-consumer design of the paper — the application
// (running natively) produces instruction batches, branches, and memory
// operations; the model consumes them and advances the tile's local clock.
// Store buffers, a branch predictor, instruction costs, and instruction
// fetch are all modeled and configurable.
//
// The model is driven by the tile's application thread only and is not
// safe for concurrent use (the clock it advances is).
package coremodel

import (
	"repro/internal/arch"
	"repro/internal/clock"
	"repro/internal/config"
)

// InstrKind labels the cost class of a computational instruction.
type InstrKind int

const (
	// Arith is a simple ALU operation (add, sub, logic, compare).
	Arith InstrKind = iota
	// Mul is an integer multiply.
	Mul
	// Div is an integer divide.
	Div
	// FP is a floating-point operation.
	FP
)

// FetchFunc models an instruction fetch of n bytes at pc starting at time
// now, returning its latency. The tile wires this to its L1I path.
type FetchFunc func(pc arch.Addr, n int, now arch.Cycles) arch.Cycles

// Core is the performance model of one tile's in-order core.
type Core struct {
	cfg   config.CoreConfig
	clk   *clock.Local
	fetch FetchFunc

	// Synthetic program counter for instruction-fetch modeling. It
	// advances instrBytes per instruction and wraps within the code
	// segment, approximating a loop working set.
	pc        arch.Addr
	codeBase  arch.Addr
	codeSize  int
	lineSize  int
	fetchedLn arch.Addr // current fetched line base

	// Branch predictor: 2-bit saturating counters.
	predictor []uint8
	predMask  uint64

	// Store buffer: completion times of outstanding stores.
	storeBuf []arch.Cycles

	// Statistics.
	instructions uint64
	branches     uint64
	mispredicts  uint64
	computeCyc   arch.Cycles
	memStallCyc  arch.Cycles
}

// instrBytes is the modeled instruction size.
const instrBytes = 4

// New builds a core model. clk is the tile's local clock; fetch may be nil
// to disable instruction-fetch modeling; codeBase/codeSize bound the
// synthetic code segment (codeSize 0 also disables fetch modeling).
func New(cfg config.CoreConfig, clk *clock.Local, codeBase arch.Addr, codeSize, lineSize int, fetch FetchFunc) *Core {
	size := cfg.BranchPredictorSize
	if size <= 0 {
		size = 1
	}
	// Round up to a power of two for cheap indexing.
	p := 1
	for p < size {
		p <<= 1
	}
	c := &Core{
		cfg:       cfg,
		clk:       clk,
		fetch:     fetch,
		codeBase:  codeBase,
		codeSize:  codeSize,
		pc:        codeBase,
		lineSize:  lineSize,
		predictor: make([]uint8, p),
		predMask:  uint64(p - 1),
		fetchedLn: ^arch.Addr(0),
	}
	if cfg.StoreBufferSize > 0 {
		c.storeBuf = make([]arch.Cycles, cfg.StoreBufferSize)
	}
	return c
}

// Now returns the core's current clock.
func (c *Core) Now() arch.Cycles { return c.clk.Now() }

func (c *Core) cost(k InstrKind) arch.Cycles {
	switch k {
	case Mul:
		return c.cfg.MulCost
	case Div:
		return c.cfg.DivCost
	case FP:
		return c.cfg.FPCost
	default:
		return c.cfg.ArithCost
	}
}

// advancePC models fetching n instructions, charging I-cache latencies
// when the synthetic PC crosses a line boundary. It strides line by line
// rather than instruction by instruction — the observable behaviour (one
// fetch per line entered, wrap at the code-segment end) is identical, but
// a large Compute batch costs O(lines crossed) instead of O(n).
func (c *Core) advancePC(n int) {
	if c.fetch == nil || c.codeSize <= 0 || c.lineSize <= 0 {
		return
	}
	end := c.codeBase + arch.Addr(c.codeSize)
	for n > 0 {
		line := c.pc &^ arch.Addr(c.lineSize-1)
		if line != c.fetchedLn {
			c.fetchedLn = line
			lat := c.fetch(line, c.lineSize, c.clk.Now())
			if lat > c.cfg.ArithCost {
				// Fetch stalls beyond the overlapped issue cycle.
				c.clk.Advance(lat - c.cfg.ArithCost)
				c.memStallCyc += lat - c.cfg.ArithCost
			}
		}
		limit := line + arch.Addr(c.lineSize)
		if limit > end {
			limit = end
		}
		// Instructions whose start lies before limit — the ceiling keeps a
		// boundary-straddling instruction in this iteration (its fetch was
		// charged to the line containing its start, as the per-instruction
		// walk did), so misaligned code bases and footprints advance
		// correctly. limit > pc always, so step >= 1 and the loop advances.
		step := int((limit - c.pc + instrBytes - 1) / instrBytes)
		if step > n {
			step = n
		}
		c.pc += arch.Addr(step * instrBytes)
		if c.pc >= end {
			c.pc = c.codeBase
		}
		n -= step
	}
}

// Compute retires n instructions of kind k.
func (c *Core) Compute(k InstrKind, n int) {
	if n <= 0 {
		return
	}
	c.advancePC(n)
	d := arch.Cycles(n) * c.cost(k)
	c.clk.Advance(d)
	c.computeCyc += d
	c.instructions += uint64(n)
}

// Branch retires one branch instruction at the current synthetic PC,
// consulting the 2-bit predictor and charging the misprediction penalty
// when it is wrong.
func (c *Core) Branch(taken bool) {
	c.advancePC(1)
	idx := (uint64(c.pc) / instrBytes) & c.predMask
	ctr := c.predictor[idx]
	predictTaken := ctr >= 2
	d := c.cfg.BranchCost
	c.branches++
	if predictTaken != taken {
		c.mispredicts++
		d += c.cfg.MispredictPenalty
	}
	if taken && ctr < 3 {
		c.predictor[idx] = ctr + 1
	} else if !taken && ctr > 0 {
		c.predictor[idx] = ctr - 1
	}
	c.clk.Advance(d)
	c.computeCyc += d
	c.instructions++
}

// Load retires a load whose memory latency was lat. The in-order model
// blocks until the data returns; the out-of-order model overlaps up to
// ROBWindow cycles of the latency with execution (paper §3.1: core models
// may differ drastically from the in-order functional execution).
func (c *Core) Load(lat arch.Cycles) {
	c.advancePC(1)
	c.instructions++
	issue := c.cfg.ArithCost
	c.clk.Advance(issue)
	c.computeCyc += issue
	if c.cfg.Kind == config.CoreOutOfOrder && c.cfg.ROBWindow > 0 {
		lat -= c.cfg.ROBWindow
	}
	if lat > issue {
		stall := lat - issue
		c.clk.Advance(stall)
		c.memStallCyc += stall
	}
}

// Store retires a store whose memory latency was lat. With a store buffer
// the latency is hidden unless the buffer is full, in which case the core
// stalls until the oldest outstanding store completes.
func (c *Core) Store(lat arch.Cycles) {
	c.advancePC(1)
	c.instructions++
	issue := c.cfg.ArithCost
	c.clk.Advance(issue)
	c.computeCyc += issue
	now := c.clk.Now()
	if c.storeBuf == nil {
		if lat > 0 {
			c.clk.Advance(lat)
			c.memStallCyc += lat
		}
		return
	}
	// Find a free slot (completion in the past) or stall for the earliest.
	free := -1
	earliest := 0
	for i, done := range c.storeBuf {
		if done <= now {
			free = i
			break
		}
		if done < c.storeBuf[earliest] {
			earliest = i
		}
	}
	if free < 0 {
		stall := c.storeBuf[earliest] - now
		c.clk.Advance(stall)
		c.memStallCyc += stall
		now += stall
		free = earliest
	}
	c.storeBuf[free] = now + lat
}

// SpawnCost charges the thread-spawn pseudo-instruction (paper §3.1).
func (c *Core) SpawnCost(d arch.Cycles) {
	c.clk.Advance(d)
	c.instructions++
}

// Stats returns the model's counters.
func (c *Core) Stats() (instructions, branches, mispredicts uint64, compute, memStall arch.Cycles) {
	return c.instructions, c.branches, c.mispredicts, c.computeCyc, c.memStallCyc
}
