package coremodel

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/clock"
	"repro/internal/config"
)

func coreCfg() config.CoreConfig {
	return config.CoreConfig{
		Kind:      config.CoreInOrder,
		ArithCost: 1, MulCost: 3, DivCost: 18, FPCost: 2,
		BranchCost: 1, MispredictPenalty: 14,
		BranchPredictorSize: 16,
		StoreBufferSize:     2,
	}
}

func newCore(cfg config.CoreConfig) (*Core, *clock.Local) {
	var clk clock.Local
	return New(cfg, &clk, 0, 0, 0, nil), &clk
}

func TestComputeCosts(t *testing.T) {
	c, clk := newCore(coreCfg())
	c.Compute(Arith, 10)
	if clk.Now() != 10 {
		t.Fatalf("10 arith -> %d cycles", clk.Now())
	}
	c.Compute(Mul, 2)
	if clk.Now() != 16 {
		t.Fatalf("after 2 mul -> %d cycles, want 16", clk.Now())
	}
	c.Compute(Div, 1)
	if clk.Now() != 34 {
		t.Fatalf("after div -> %d, want 34", clk.Now())
	}
	c.Compute(FP, 5)
	if clk.Now() != 44 {
		t.Fatalf("after 5 fp -> %d, want 44", clk.Now())
	}
	instr, _, _, compute, _ := c.Stats()
	if instr != 18 || compute != 44 {
		t.Fatalf("stats: %d instr, %d compute cycles", instr, compute)
	}
	c.Compute(Arith, 0)
	c.Compute(Arith, -3)
	if clk.Now() != 44 {
		t.Fatal("non-positive compute changed clock")
	}
}

func TestBranchPredictorLearnsLoop(t *testing.T) {
	c, _ := newCore(coreCfg())
	// A loop branch taken 100 times: the 2-bit counter saturates quickly,
	// so mispredicts must be a small constant, not O(n).
	for i := 0; i < 100; i++ {
		c.Branch(true)
	}
	_, branches, miss, _, _ := c.Stats()
	if branches != 100 {
		t.Fatalf("branches = %d", branches)
	}
	if miss > 3 {
		t.Fatalf("predictor failed to learn: %d mispredicts", miss)
	}
}

func TestBranchAlternatingMispredicts(t *testing.T) {
	c, _ := newCore(coreCfg())
	for i := 0; i < 100; i++ {
		c.Branch(i%2 == 0)
	}
	_, _, miss, _, _ := c.Stats()
	// A 2-bit counter on alternating outcomes mispredicts roughly half.
	if miss < 30 {
		t.Fatalf("alternating pattern too predictable: %d mispredicts", miss)
	}
}

func TestMispredictPenaltyCharged(t *testing.T) {
	cfg := coreCfg()
	c, clk := newCore(cfg)
	c.Branch(true) // predictor initialized to not-taken: mispredict
	if clk.Now() != cfg.BranchCost+cfg.MispredictPenalty {
		t.Fatalf("first taken branch cost %d", clk.Now())
	}
}

func TestLoadBlocks(t *testing.T) {
	c, clk := newCore(coreCfg())
	c.Load(100)
	if clk.Now() != 100 {
		t.Fatalf("load of 100 cycles advanced clock by %d", clk.Now())
	}
	_, _, _, _, stall := c.Stats()
	if stall != 99 { // one issue cycle overlaps
		t.Fatalf("memStall = %d, want 99", stall)
	}
}

func TestStoreBufferHidesLatency(t *testing.T) {
	c, clk := newCore(coreCfg()) // buffer of 2
	c.Store(1000)
	c.Store(1000)
	if clk.Now() != 2 {
		t.Fatalf("two buffered stores advanced clock to %d, want 2", clk.Now())
	}
	// Third store must stall until the first completes (~1001).
	c.Store(1000)
	if clk.Now() < 1000 {
		t.Fatalf("full buffer did not stall: clock %d", clk.Now())
	}
}

func TestStoreBufferDrainsOverTime(t *testing.T) {
	c, clk := newCore(coreCfg())
	c.Store(100)
	c.Store(100)
	// Enough compute for both stores to complete.
	c.Compute(Arith, 500)
	before := clk.Now()
	c.Store(100) // should not stall
	if clk.Now() != before+1 {
		t.Fatalf("drained buffer stalled: %d -> %d", before, clk.Now())
	}
}

func TestNoStoreBufferBlocks(t *testing.T) {
	cfg := coreCfg()
	cfg.StoreBufferSize = 0
	c, clk := newCore(cfg)
	c.Store(100)
	if clk.Now() != 101 {
		t.Fatalf("unbuffered store advanced clock by %d, want 101", clk.Now())
	}
}

func TestInstructionFetchModeling(t *testing.T) {
	var clk clock.Local
	var fetches []arch.Addr
	fetch := func(pc arch.Addr, n int, now arch.Cycles) arch.Cycles {
		fetches = append(fetches, pc)
		return 5
	}
	// 64-byte lines, 256-byte code segment = 4 lines; 16 instrs per line.
	c := New(coreCfg(), &clk, 0x1000, 256, 64, fetch)
	c.Compute(Arith, 16) // exactly one line
	if len(fetches) != 1 || fetches[0] != 0x1000 {
		t.Fatalf("fetches = %v", fetches)
	}
	c.Compute(Arith, 16)
	if len(fetches) != 2 || fetches[1] != 0x1040 {
		t.Fatalf("fetches = %v", fetches)
	}
	// Wrap-around: two more lines finish the segment and wrap to base.
	c.Compute(Arith, 33)
	if fetches[len(fetches)-1] != 0x1000 {
		t.Fatalf("PC did not wrap: %v", fetches)
	}
}

func TestOutOfOrderHidesLoadLatency(t *testing.T) {
	cfg := coreCfg()
	cfg.Kind = config.CoreOutOfOrder
	cfg.ROBWindow = 64
	c, clk := newCore(cfg)
	c.Load(100) // 64 cycles hidden by the window
	if clk.Now() != 100-64 {
		t.Fatalf("OoO load of 100 advanced clock by %d, want 36", clk.Now())
	}
	// Short loads are fully hidden (only the issue cycle remains).
	c2, clk2 := newCore(cfg)
	c2.Load(30)
	if clk2.Now() != 1 {
		t.Fatalf("OoO short load advanced clock by %d, want 1", clk2.Now())
	}
}

func TestInOrderVsOutOfOrderOrdering(t *testing.T) {
	inCfg := coreCfg()
	ooCfg := coreCfg()
	ooCfg.Kind = config.CoreOutOfOrder
	ooCfg.ROBWindow = 32
	in, inClk := newCore(inCfg)
	oo, ooClk := newCore(ooCfg)
	for i := 0; i < 50; i++ {
		in.Load(80)
		oo.Load(80)
		in.Compute(Arith, 10)
		oo.Compute(Arith, 10)
	}
	if ooClk.Now() >= inClk.Now() {
		t.Fatalf("OoO (%d) not faster than in-order (%d)", ooClk.Now(), inClk.Now())
	}
}

func TestSpawnCost(t *testing.T) {
	c, clk := newCore(coreCfg())
	c.SpawnCost(250)
	if clk.Now() != 250 {
		t.Fatalf("spawn pseudo-instruction cost %d", clk.Now())
	}
	instr, _, _, _, _ := c.Stats()
	if instr != 1 {
		t.Fatalf("spawn not counted as instruction")
	}
}
