package core

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/checkpoint"
	"repro/internal/config"
	"repro/internal/coremodel"
	"repro/internal/mcp"
)

// ckptProgram interleaves compute, shared-memory contention, and enough
// quanta that a LaxBarrier run crosses several checkpoint epochs.
func ckptProgram(t *testing.T) Program {
	prog := Program{Name: "ckpt"}
	prog.Funcs = []ThreadFunc{
		func(th *Thread, arg uint64) {
			shared := th.Malloc(64)
			mtx := th.Malloc(64)
			var kids []arch.ThreadID
			for i := 0; i < 3; i++ {
				kids = append(kids, th.Spawn(1, uint64(shared)<<32|uint64(mtx)))
			}
			for _, k := range kids {
				th.Join(k)
			}
			if got := th.Load64(shared); got != 3*40 {
				t.Errorf("counter = %d, want %d", got, 3*40)
			}
		},
		func(th *Thread, arg uint64) {
			shared, mtx := arch.Addr(arg>>32), arch.Addr(arg&0xFFFFFFFF)
			for i := 0; i < 40; i++ {
				th.Compute(coremodel.Arith, 200)
				th.MutexLock(mtx)
				th.Store64(shared, th.Load64(shared)+1)
				th.MutexUnlock(mtx)
			}
		},
	}
	return prog
}

func ckptCfg() config.Config {
	cfg := testCfg(4, 2)
	cfg.Sync.Model = config.LaxBarrier
	cfg.Sync.BarrierQuantum = 500
	return cfg
}

// TestCheckpointRestoreIdentity is the tentpole's state-identity check:
// a run checkpoints itself at epoch boundaries; restoring the snapshot
// into a freshly built cluster and re-capturing must reproduce the
// digests bit-for-bit for every manifest the run wrote.
func TestCheckpointRestoreIdentity(t *testing.T) {
	cfg := ckptCfg()
	prog := ckptProgram(t)
	dir := t.TempDir()

	c, err := NewCluster(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	saved := 0
	c.SetCheckpoint(&mcp.CheckpointPolicy{
		Dir:          dir,
		Every:        2,
		ConfigDigest: "test-digest",
		OnSaved:      func(epoch int64, m *checkpoint.Manifest) { saved++ },
		OnError:      func(err error) { t.Errorf("checkpoint error: %v", err) },
	})
	if _, err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if saved == 0 {
		t.Fatal("run wrote no checkpoints; increase work or lower Every")
	}

	manifests, err := checkpoint.LoadManifests(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(manifests) != saved {
		t.Fatalf("loaded %d manifests, OnSaved fired %d times", len(manifests), saved)
	}
	for _, m := range manifests {
		m := m
		restoreDir := t.TempDir()
		rc, err := RestoreCluster(cfg, prog, dir, m)
		if err != nil {
			t.Fatalf("restore epoch %d: %v", m.Epoch, err)
		}
		rc.SetCheckpoint(&mcp.CheckpointPolicy{Dir: restoreDir, ConfigDigest: "test-digest"})
		m2, err := rc.CaptureState(m.Epoch)
		rc.Close()
		if err != nil {
			t.Fatalf("re-capture epoch %d: %v", m.Epoch, err)
		}
		want, got := m.VerifyDigests(), m2.VerifyDigests()
		if len(want) != len(got) {
			t.Fatalf("epoch %d: digest count %d != %d", m.Epoch, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Errorf("epoch %d digest %d: restore is not bit-identical:\n  saved     %s\n  recapture %s", m.Epoch, i, want[i], got[i])
			}
		}
	}
}

// TestCheckpointDeterministicDigests runs the same single-threaded
// checkpointed program twice and requires identical digest chains — the
// property strict replay verification stands on. Single-threaded,
// because that is the repo's determinism boundary for timing-dependent
// state: multi-thread runs guarantee only workload-checksum identity
// (control-plane arrival order varies with host scheduling).
func TestCheckpointDeterministicDigests(t *testing.T) {
	cfg := ckptCfg()
	prog := Program{Name: "ckpt1t"}
	prog.Funcs = []ThreadFunc{
		func(th *Thread, arg uint64) {
			buf := th.Malloc(4096)
			for i := 0; i < 30; i++ {
				th.Compute(coremodel.Arith, 300)
				th.Store64(buf+arch.Addr((i%64)*64), uint64(i))
				_ = th.Load64(buf + arch.Addr(((i+7)%64)*64))
			}
		},
	}
	runOnce := func(dir string) []*checkpoint.Manifest {
		t.Helper()
		c, err := NewCluster(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.SetCheckpoint(&mcp.CheckpointPolicy{Dir: dir, Every: 2, ConfigDigest: "test-digest"})
		if _, err := c.Run(0); err != nil {
			t.Fatal(err)
		}
		ms, err := checkpoint.LoadManifests(dir)
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}
	a := runOnce(t.TempDir())
	b := runOnce(t.TempDir())
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("manifest counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Epoch != b[i].Epoch {
			t.Fatalf("epoch schedule differs at %d: %d vs %d", i, a[i].Epoch, b[i].Epoch)
		}
		wa, wb := a[i].VerifyDigests(), b[i].VerifyDigests()
		for j := range wa {
			if wa[j] != wb[j] {
				t.Errorf("epoch %d digest %d differs across identical runs", a[i].Epoch, j)
			}
		}
	}
}

// TestCheckpointVerifyMismatchFatal attaches a Verify table with a wrong
// digest and requires the MCP to report the divergence on CkptFailed.
func TestCheckpointVerifyMismatchFatal(t *testing.T) {
	cfg := ckptCfg()
	c, err := NewCluster(cfg, ckptProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetCheckpoint(&mcp.CheckpointPolicy{
		Dir:          t.TempDir(),
		Every:        2,
		ConfigDigest: "test-digest",
		Verify:       map[int64][]string{2: {"bogus-digest"}},
		StrictVerify: true,
	})
	done := make(chan error, 1)
	go func() {
		_, err := c.Run(0)
		done <- err
	}()
	select {
	case err := <-c.CkptFailed():
		if err == nil {
			t.Fatal("nil error on CkptFailed")
		}
	case err := <-done:
		t.Fatalf("run completed (err=%v) despite digest mismatch", err)
	}
	// The run is wedged by design (the epoch release was withheld);
	// Close tears it down via the deferred cleanup.
}
