package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/coremodel"
	"repro/internal/mcp"
)

func TestCondBroadcastWakesAll(t *testing.T) {
	const waiters = 3
	var woken atomic.Int32
	prog := Program{Name: "bcast"}
	prog.Funcs = []ThreadFunc{
		func(th *Thread, arg uint64) {
			base := th.Malloc(3 * 64)
			flag, m, cv := base, base+64, base+128
			var tids []arch.ThreadID
			for i := 0; i < waiters; i++ {
				tids = append(tids, th.Spawn(1, uint64(base)))
			}
			// Give waiters time (in wall-clock terms their RPCs block at
			// the MCP regardless; ordering is enforced by the flag).
			th.Compute(coremodel.Arith, 5000)
			th.MutexLock(m)
			th.Store64(flag, 1)
			th.MutexUnlock(m)
			th.CondBroadcast(cv)
			for _, tid := range tids {
				th.Join(tid)
			}
			if woken.Load() != waiters {
				t.Errorf("woken = %d, want %d", woken.Load(), waiters)
			}
			_ = flag
		},
		func(th *Thread, arg uint64) {
			base := arch.Addr(arg)
			flag, m, cv := base, base+64, base+128
			th.MutexLock(m)
			for th.Load64(flag) == 0 {
				th.CondWait(cv, m)
			}
			th.MutexUnlock(m)
			woken.Add(1)
		},
	}
	run(t, testCfg(4, 1), prog, 0)
}

func TestMallocFreeReuse(t *testing.T) {
	prog := Program{Name: "free"}
	prog.Funcs = []ThreadFunc{
		func(th *Thread, arg uint64) {
			a := th.Malloc(1 << 20)
			th.Store64(a, 1)
			th.Free(a)
			// After freeing the megabyte, it must be allocatable again
			// (first-fit returns the same block).
			b := th.Malloc(1 << 20)
			th.Store64(b, 2)
			if b != a {
				t.Errorf("freed block not reused: %#x vs %#x", uint64(b), uint64(a))
			}
		},
	}
	run(t, testCfg(2, 1), prog, 0)
}

func TestComputeKindsAdvanceDifferently(t *testing.T) {
	prog := Program{Name: "kinds"}
	prog.Funcs = []ThreadFunc{
		func(th *Thread, arg uint64) {
			start := th.Now()
			th.Compute(coremodel.Arith, 100)
			arith := th.Now() - start
			start = th.Now()
			th.Compute(coremodel.Div, 100)
			div := th.Now() - start
			if div <= arith {
				t.Errorf("div (%d) not slower than arith (%d)", div, arith)
			}
		},
	}
	run(t, testCfg(2, 1), prog, 0)
}

func TestFileSeekAndStatViaThread(t *testing.T) {
	prog := Program{Name: "seek"}
	prog.Funcs = []ThreadFunc{
		func(th *Thread, arg uint64) {
			fd, err := th.Open("/s.bin", mcp.OCreate)
			if err != nil {
				t.Error(err)
				return
			}
			th.WriteFile(fd, []byte("abcdef"))
			rep := th.FileOp(mcp.FileReq{Op: mcp.FileSeek, FD: fd, Off: 2, Whence: 0})
			if rep.Err != "" || rep.N != 2 {
				t.Errorf("seek: %+v", rep)
			}
			data, _ := th.ReadFile(fd, 2)
			if string(data) != "cd" {
				t.Errorf("read after seek = %q", data)
			}
			if rep := th.FileOp(mcp.FileReq{Op: mcp.FileStat, FD: fd}); rep.N != 6 {
				t.Errorf("stat = %+v", rep)
			}
			th.CloseFile(fd)
		},
	}
	run(t, testCfg(2, 1), prog, 0)
}

func TestThreadIdentityAndTiles(t *testing.T) {
	prog := Program{Name: "id"}
	prog.Funcs = []ThreadFunc{
		func(th *Thread, arg uint64) {
			if th.ID() != 0 {
				t.Errorf("main thread id = %v", th.ID())
			}
			if th.Tiles() != 4 {
				t.Errorf("tiles = %d", th.Tiles())
			}
			tid := th.Spawn(1, 0)
			if tid != 1 {
				t.Errorf("first spawned tid = %v, want 1 (lowest free tile)", tid)
			}
			th.Join(tid)
		},
		func(th *Thread, arg uint64) {
			if th.ID() != 1 {
				t.Errorf("worker id = %v", th.ID())
			}
		},
	}
	run(t, testCfg(4, 1), prog, 0)
}

func TestTileReuseAfterExit(t *testing.T) {
	// Threads are long-living but tiles free on exit; sequential spawns
	// beyond the tile count must succeed once earlier threads exit.
	prog := Program{Name: "reuse"}
	prog.Funcs = []ThreadFunc{
		func(th *Thread, arg uint64) {
			for round := 0; round < 3; round++ {
				tid := th.Spawn(1, uint64(round))
				if tid == arch.InvalidThread {
					t.Errorf("round %d: no free tile despite exits", round)
					return
				}
				th.Join(tid)
			}
		},
		func(th *Thread, arg uint64) {
			th.Compute(coremodel.Arith, 10)
		},
	}
	run(t, testCfg(2, 1), prog, 0) // only one spare tile: reuse required
}

func TestOutOfOrderCoreEndToEnd(t *testing.T) {
	cfg := testCfg(2, 1)
	cfg.Core.Kind = config.CoreOutOfOrder
	cfg.Core.ROBWindow = 64
	inCfg := testCfg(2, 1)

	prog := func() Program {
		return Program{Name: "ooo", Funcs: []ThreadFunc{
			func(th *Thread, arg uint64) {
				a := th.Malloc(256 * 64)
				for i := 0; i < 256; i++ {
					th.Store64(a+arch.Addr(i*64), uint64(i))
				}
				var sum uint64
				for i := 0; i < 256; i++ {
					sum += th.Load64(a + arch.Addr(i*64))
				}
				if sum != 255*256/2 {
					t.Errorf("sum = %d", sum)
				}
			},
		}}
	}
	rsOoO, _ := run(t, cfg, prog(), 0)
	rsIn, _ := run(t, inCfg, prog(), 0)
	if rsOoO.SimulatedCycles >= rsIn.SimulatedCycles {
		t.Fatalf("OoO core (%d cycles) not faster than in-order (%d)",
			rsOoO.SimulatedCycles, rsIn.SimulatedCycles)
	}
}
