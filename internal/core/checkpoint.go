package core

// Per-process checkpoint support (DESIGN.md §18). The LCP's CkptProbe
// and CkptSave callbacks land here. A save runs each tile's capture
// inside that tile's own memory-server goroutine: the function is queued
// with EnqueueCtrl and the server is poked with one CtrlMsg packet sent
// from the LCP endpoint (control endpoints are negative, so the packet
// neither takes a network delay nor perturbs the server's self-traffic
// accounting). Restore uses the same path on a freshly constructed,
// not-yet-started cluster.

import (
	"fmt"
	"sync"

	"repro/internal/arch"
	"repro/internal/checkpoint"
	"repro/internal/mcp"
	"repro/internal/memsys"
	"repro/internal/network"
)

// ckptConfig is the per-process slice of the checkpoint policy: where to
// write state files and the config digest stamped into them. Set by
// Cluster.SetCheckpoint before any thread starts.
type ckptConfig struct {
	dir    string
	digest string
}

// SetCheckpoint attaches the per-process checkpoint configuration. Call
// before the simulation starts.
func (p *Proc) SetCheckpoint(dir, configDigest string) {
	p.ckpt = &ckptConfig{dir: dir, digest: configDigest}
}

// ckptProbe reports this process's drain status: cumulative memory-class
// traffic over the local tiles and whether every local node is quiesced.
// All reads are atomic; the serve goroutine calls this without blocking.
func (p *Proc) ckptProbe() mcp.CkptProbeRep {
	rep := mcp.CkptProbeRep{Quiesced: true}
	for _, t := range p.tileList {
		ns := t.Net.Stats()
		rep.Sent += ns.PacketsSent[network.ClassMemory].Load()
		rep.Recv += ns.PacketsRecv[network.ClassMemory].Load()
		if !t.Mem.Quiesced() {
			rep.Quiesced = false
		}
	}
	// Control pokes from earlier checkpoints arrived on the memory class;
	// without this correction sent/recv would stay unbalanced forever.
	rep.Recv -= p.ckptPokes.Load()
	return rep
}

// ckptSave serializes the process's complete simulation state for one
// epoch and writes the per-process state file. It runs on the LCP serve
// goroutine and blocks until every local tile has captured.
func (p *Proc) ckptSave(epoch int64) mcp.CkptSaveResult {
	res := mcp.CkptSaveResult{Proc: int32(p.id)}
	cp := p.ckpt
	if cp == nil {
		res.Err = "process has no checkpoint configuration"
		return res
	}
	ps := &checkpoint.ProcState{
		Version:      checkpoint.Version,
		Proc:         int32(p.id),
		Epoch:        epoch,
		ConfigDigest: cp.digest,
		Tiles:        make([]checkpoint.TileState, len(p.tileList)),
	}
	if err := p.forEachTileCtrl(func(i int, t *Tile) error {
		ts := &ps.Tiles[i]
		ts.Tile = int32(t.ID)
		ts.Clock = int64(t.Clock.Now())
		ts.Core = t.Core.Capture()
		return t.Mem.Capture(ts)
	}); err != nil {
		res.Err = err.Error()
		return res
	}
	file, fileSum, stateDigest, err := checkpoint.WriteProcState(cp.dir, ps)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.File = file
	res.FileSum = fileSum
	res.StateDigest = stateDigest
	return res
}

// RestoreState overwrites every local tile's state from a snapshot taken
// by ckptSave on an identically configured process. It must run on a
// started but idle process — servers pumping, no thread started.
func (p *Proc) RestoreState(ps *checkpoint.ProcState) error {
	if ps.Version != checkpoint.Version {
		return fmt.Errorf("core: proc %d restore: checkpoint version %d, want %d", p.id, ps.Version, checkpoint.Version)
	}
	if int32(p.id) != ps.Proc {
		return fmt.Errorf("core: proc %d restoring proc %d state", p.id, ps.Proc)
	}
	if len(ps.Tiles) != len(p.tileList) {
		return fmt.Errorf("core: proc %d restore tile-count mismatch: snapshot %d, process %d", p.id, len(ps.Tiles), len(p.tileList))
	}
	return p.forEachTileCtrl(func(i int, t *Tile) error {
		ts := &ps.Tiles[i]
		if arch.TileID(ts.Tile) != t.ID {
			return fmt.Errorf("core: tile order mismatch at %d: snapshot tile %d, local tile %d", i, ts.Tile, t.ID)
		}
		if err := t.Mem.Restore(ts); err != nil {
			return err
		}
		if ts.Core != nil {
			if err := t.Core.Restore(ts.Core); err != nil {
				return err
			}
		}
		t.Clock.Set(arch.Cycles(ts.Clock))
		return nil
	})
}

// forEachTileCtrl runs fn(i, tile) for every local tile inside that
// tile's memory-server goroutine and waits for all of them. Errors are
// collected per tile; the first (in stripe order) is returned.
func (p *Proc) forEachTileCtrl(fn func(i int, t *Tile) error) error {
	errs := make([]error, len(p.tileList))
	var wg sync.WaitGroup
	for i, t := range p.tileList {
		i, t := i, t
		wg.Add(1)
		t.Mem.EnqueueCtrl(func() {
			defer wg.Done()
			errs[i] = fn(i, t)
		})
		// The poke must come from a control endpoint (the LCP net): the
		// memory server balances self-traffic accounting for packets whose
		// Src is the tile itself, and a control packet must not participate.
		if _, err := p.lcpNet.Send(network.ClassMemory, memsys.CtrlMsg, t.ID, 0, nil, 0); err != nil {
			return fmt.Errorf("core: ctrl poke of tile %d: %w", t.ID, err)
		}
		p.ckptPokes.Add(1)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
