package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/mcp"
	"repro/internal/stats"
	"repro/internal/transport"
)

// SkewSample is one observation of clock skew across tiles (Figure 7).
type SkewSample struct {
	// Wall is the wall-clock offset from simulation start.
	Wall time.Duration
	// Min, Max, Mean summarize the clocks of tiles with running threads.
	Min, Max, Mean arch.Cycles
}

// RunStats is the outcome of one simulation run.
type RunStats struct {
	// SimulatedCycles is the application's simulated run-time: the
	// largest final tile clock.
	SimulatedCycles arch.Cycles
	// Wall is the wall-clock duration of the run.
	Wall time.Duration
	// Tiles are the per-tile statistics records, indexed by tile ID.
	Tiles []stats.Tile
	// Totals aggregates Tiles.
	Totals stats.Totals
	// Skew holds clock-skew samples when Config.CollectSkew is set.
	Skew []SkewSample
}

// Slowdown returns the simulation slowdown versus a native execution of
// the same work taking native wall time.
func (r *RunStats) Slowdown(native time.Duration) float64 {
	if native <= 0 {
		return 0
	}
	return float64(r.Wall) / float64(native)
}

// Cluster is a fully wired simulation: all simulated host processes, their
// transports, and the MCP.
type Cluster struct {
	cfg   config.Config
	prog  Program
	procs []*Proc
	mcp   interface {
		StartMain(arg uint64) error
		Done() <-chan struct{}
		GatherStats() []stats.Tile
		FlushCaches()
	}

	transports []transport.Transport
	fabric     *transport.ChannelFabric

	// ckpt, if set via SetCheckpoint before Run, enables MCP-initiated
	// checkpoints and direct idle-cluster capture.
	ckpt *mcp.CheckpointPolicy

	skewMu   sync.Mutex
	skew     []SkewSample
	skewStop chan struct{}

	closed bool
}

// NewCluster builds and starts a simulation of prog under cfg. The caller
// must Close it.
func NewCluster(cfg config.Config, prog Program) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, prog: prog}

	switch cfg.Transport {
	case config.TransportChannel:
		c.fabric = transport.NewChannelFabricSized(transport.StripedRoute(cfg.Processes), cfg.Tiles)
		for p := 0; p < cfg.Processes; p++ {
			c.transports = append(c.transports, c.fabric.Process(arch.ProcID(p)))
		}
	case config.TransportTCP:
		addrs := make([]string, cfg.Processes)
		for p := range addrs {
			addrs[p] = fmt.Sprintf("127.0.0.1:%d", cfg.TCPBase+p)
		}
		c.transports = make([]transport.Transport, cfg.Processes)
		errs := make([]error, cfg.Processes)
		var wg sync.WaitGroup
		for p := 0; p < cfg.Processes; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				c.transports[p], errs[p] = transport.DialTCP(transport.TCPConfig{
					Proc:  arch.ProcID(p),
					Procs: cfg.Processes,
					Addrs: addrs,
					Route: transport.StripedRoute(cfg.Processes),
				})
			}(p)
		}
		wg.Wait()
		for p, err := range errs {
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("core: proc %d transport: %w", p, err)
			}
		}
	default:
		return nil, fmt.Errorf("core: unknown transport %v", cfg.Transport)
	}

	for p := 0; p < cfg.Processes; p++ {
		proc, err := NewProc(arch.ProcID(p), &c.cfg, prog, c.transports[p])
		if err != nil {
			c.Close()
			return nil, err
		}
		c.procs = append(c.procs, proc)
	}
	c.mcp = c.procs[0].MCP
	for _, p := range c.procs {
		p.Start()
	}
	return c, nil
}

// Run executes the program's main thread with arg and blocks until every
// application thread has exited; it then flushes caches and gathers
// statistics. Run may be called once per Cluster.
func (c *Cluster) Run(arg uint64) (*RunStats, error) {
	if c.cfg.Workers > 0 {
		prev := runtime.GOMAXPROCS(c.cfg.Workers)
		defer runtime.GOMAXPROCS(prev)
	}
	start := time.Now() //graphite:wallclock wall_sec slowdown reporting (Table 2); measures host time only, never feeds simulated state
	if c.cfg.CollectSkew {
		c.skewStop = make(chan struct{})
		go c.sampleSkew(start)
	}
	if err := c.mcp.StartMain(arg); err != nil {
		return nil, err
	}
	<-c.mcp.Done()
	wall := time.Since(start) //graphite:wallclock wall_sec slowdown reporting; excluded from reproducibility diffs
	if c.skewStop != nil {
		close(c.skewStop)
	}
	for _, p := range c.procs {
		p.Wait()
	}
	c.mcp.FlushCaches()
	tiles := c.mcp.GatherStats()
	totals := stats.Aggregate(tiles)
	c.skewMu.Lock()
	skew := c.skew
	c.skewMu.Unlock()
	return &RunStats{
		SimulatedCycles: totals.MaxCycles,
		Wall:            wall,
		Tiles:           tiles,
		Totals:          totals,
		Skew:            skew,
	}, nil
}

// sampleSkew periodically snapshots all running tiles' clocks. It reads
// clocks directly (all simulated processes share this OS process), which
// corresponds to the approximate skew measurement of Figure 7.
func (c *Cluster) sampleSkew(start time.Time) {
	//graphite:wallclock Figure 7 skew measurement is wall-clock-paced by design: samples observe simulated clocks, they never advance them
	tick := time.NewTicker(500 * time.Microsecond)
	defer tick.Stop()
	for {
		select {
		case <-c.skewStop:
			return
		case <-tick.C:
		}
		// Only running, unblocked threads participate: exited or
		// RPC-blocked threads have frozen clocks that would read as
		// ever-growing skew while they are merely waiting.
		var clocks []arch.Cycles
		for _, p := range c.procs {
			for _, t := range p.Tiles() {
				if t.Running() {
					clocks = append(clocks, t.Clock.Now())
				}
			}
		}
		if len(clocks) < 2 {
			continue
		}
		sort.Slice(clocks, func(i, j int) bool { return clocks[i] < clocks[j] })
		var sum arch.Cycles
		for _, v := range clocks {
			sum += v
		}
		s := SkewSample{
			Wall: time.Since(start), //graphite:wallclock sample timestamp in the skew report; observation only
			Min:  clocks[0],
			Max:  clocks[len(clocks)-1],
			Mean: sum / arch.Cycles(len(clocks)),
		}
		c.skewMu.Lock()
		c.skew = append(c.skew, s)
		c.skewMu.Unlock()
	}
}

// Peek reads simulated memory functionally. Valid before Run or after Run
// returns (caches are flushed at completion).
func (c *Cluster) Peek(addr arch.Addr, buf []byte) {
	c.procs[0].tileList[0].Mem.Peek(addr, buf)
}

// Poke writes simulated memory functionally (same validity as Peek).
func (c *Cluster) Poke(addr arch.Addr, buf []byte) {
	c.procs[0].tileList[0].Mem.Poke(addr, buf)
}

// Tiles returns every tile across processes, ordered by ID.
func (c *Cluster) Tiles() []*Tile {
	var out []*Tile
	for _, p := range c.procs {
		out = append(out, p.Tiles()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Config returns the cluster's configuration.
func (c *Cluster) Config() *config.Config { return &c.cfg }

// Close tears the simulation down. Safe to call more than once. Cluster
// state (tiles, stats) must not be touched after Close: cache storage is
// recycled into pools for future simulator instances.
func (c *Cluster) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for _, p := range c.procs {
		p.Close()
	}
	for _, tr := range c.transports {
		if tr != nil {
			tr.Close()
		}
	}
	if c.fabric != nil {
		c.fabric.Close()
	}
	// With every transport closed the memory servers exit; once a tile's
	// server has stopped its caches can safely return to the pools.
	for _, p := range c.procs {
		p.Wait()
		for _, t := range p.Tiles() {
			<-t.Mem.Stopped()
			t.Mem.ReleaseCaches()
		}
	}
}
