package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/coremodel"
	"repro/internal/mcp"
	"repro/internal/network"
	"repro/internal/transport"
)

// ThreadFunc is the signature of an application thread. Thread function 0
// of a Program is main.
type ThreadFunc func(t *Thread, arg uint64)

// Program is a target application: a set of registered thread functions.
// Every simulated host process constructs the same Program, so spawn
// requests can name functions by index across process boundaries (the
// single-process illusion of paper §3.5).
type Program struct {
	// Name identifies the workload in reports.
	Name string
	// Funcs are the spawnable thread functions; Funcs[0] is main.
	Funcs []ThreadFunc
}

// Thread is the execution context handed to application code: the
// Graphite programming interface. It exposes the simulated memory space,
// pthread-like threading and synchronization, the user-level messaging
// API, file I/O, and the instruction-modeling hooks that a dynamic binary
// translator would drive implicitly.
//
// A Thread is bound to one tile and must be used only from its own
// goroutine.
type Thread struct {
	tile *Tile
	proc *Proc
	// tickFn drives the synchronization model after every application
	// event. It is nil under plain Lax, which makes tick a single nil
	// check: the common case pays neither an interface call nor an atomic
	// clock load for a model that would ignore both.
	tickFn func(arch.Cycles)
	// scratch backs the fixed-width Load/Store helpers. A heap field
	// rather than a stack array: the miss path retains the buffer until
	// the reply applies it, so a local would escape and every Load64 /
	// Store64 would allocate. The thread blocks for the duration of each
	// access, so one buffer per thread is safe.
	scratch [8]byte
}

// mcpTile addresses the MCP endpoint as a TileID.
const mcpTile = arch.TileID(transport.MCP)

// tornDown is the panic value Thread APIs throw when the simulation is
// dismantled under a still-running application thread — teardown of a
// wedged or recovering run closes the transport and wakes parked
// threads, whose next control-plane call cannot complete. startThread
// recovers exactly this type and lets the goroutine exit quietly; any
// other panic is an application or simulator bug and propagates.
type tornDown string

func (e tornDown) Error() string {
	return "graphite: simulation torn down during " + string(e)
}

// Small fixed instruction costs for operations not individually modeled.
const (
	sendCost   arch.Cycles = 10
	recvCost   arch.Cycles = 10
	unlockCost arch.Cycles = 10
)

// ID returns the thread's ID, which equals its tile ID.
func (t *Thread) ID() arch.ThreadID { return arch.ThreadID(t.tile.ID) }

// Stack returns this thread's private stack range in the simulated
// address space (paper §3.2.1: Graphite reserves a stack segment and
// carves a per-thread slice from it). Applications may use it for
// simulated-memory locals without calling Malloc.
func (t *Thread) Stack() (base arch.Addr, size arch.Addr) {
	as := t.tile.cfg.AS
	return as.StackBase + arch.Addr(t.tile.ID)*as.StackPerThread, as.StackPerThread
}

// Tiles returns the number of target tiles in the simulation.
func (t *Thread) Tiles() int { return t.tile.cfg.Tiles }

// Now returns the thread's current simulated clock.
func (t *Thread) Now() arch.Cycles { return t.tile.Clock.Now() }

// tick drives the synchronization model after every application event.
// Under plain Lax synchronization it is a nil check and nothing else.
func (t *Thread) tick() {
	if t.tickFn != nil {
		t.tickFn(t.tile.Clock.Now())
	}
}

// Compute models n instructions of kind k executing natively.
func (t *Thread) Compute(k coremodel.InstrKind, n int) {
	t.tile.Core.Compute(k, n)
	t.tick()
}

// Branch models one conditional branch.
func (t *Thread) Branch(taken bool) {
	t.tile.Core.Branch(taken)
	t.tick()
}

// Read performs an application load into buf.
func (t *Thread) Read(addr arch.Addr, buf []byte) {
	res := t.tile.Mem.Read(addr, buf, t.tile.Clock.Now())
	t.tile.Core.Load(res.Latency)
	t.tick()
}

// Write performs an application store of buf.
func (t *Thread) Write(addr arch.Addr, buf []byte) {
	res := t.tile.Mem.Write(addr, buf, t.tile.Clock.Now())
	t.tile.Core.Store(res.Latency)
	t.tick()
}

// Load64 loads a uint64.
func (t *Thread) Load64(addr arch.Addr) uint64 {
	t.Read(addr, t.scratch[:8])
	return binary.LittleEndian.Uint64(t.scratch[:8])
}

// Store64 stores a uint64.
func (t *Thread) Store64(addr arch.Addr, v uint64) {
	binary.LittleEndian.PutUint64(t.scratch[:8], v)
	t.Write(addr, t.scratch[:8])
}

// Load32 loads a uint32.
func (t *Thread) Load32(addr arch.Addr) uint32 {
	t.Read(addr, t.scratch[:4])
	return binary.LittleEndian.Uint32(t.scratch[:4])
}

// Store32 stores a uint32.
func (t *Thread) Store32(addr arch.Addr, v uint32) {
	binary.LittleEndian.PutUint32(t.scratch[:4], v)
	t.Write(addr, t.scratch[:4])
}

// LoadF64 loads a float64.
func (t *Thread) LoadF64(addr arch.Addr) float64 {
	return math.Float64frombits(t.Load64(addr))
}

// StoreF64 stores a float64.
func (t *Thread) StoreF64(addr arch.Addr, v float64) {
	t.Store64(addr, math.Float64bits(v))
}

// Malloc allocates n bytes from the simulated heap. It panics when the
// heap is exhausted (like running out of memory in the target).
func (t *Thread) Malloc(n arch.Addr) arch.Addr {
	pkt, ok := t.call(mcp.MsgMalloc, mcp.EncodeU64(uint64(n)))
	if !ok {
		panic(tornDown("malloc"))
	}
	addr, err := mcp.DecodeU64(pkt.Payload)
	if err != nil {
		panic(err)
	}
	if addr == 0 {
		panic(fmt.Sprintf("graphite: out of simulated heap allocating %d bytes", n))
	}
	t.forward(pkt.Time)
	t.tick()
	return arch.Addr(addr)
}

// Free releases a Malloc'd block.
func (t *Thread) Free(addr arch.Addr) {
	t.tile.sys.notify(mcp.MsgFree, mcpTile, mcp.EncodeU64(uint64(addr)), t.Now())
	t.tick()
}

// Spawn starts a new thread running Program.Funcs[fn] with arg on a free
// tile chosen by the MCP. It returns the child's thread ID, or
// arch.InvalidThread if every tile is busy.
func (t *Thread) Spawn(fn int, arg uint64) arch.ThreadID {
	pkt, ok := t.call(mcp.MsgSpawn, mcp.EncodeSpawnReq(mcp.SpawnReq{Func: uint32(fn), Arg: arg}))
	if !ok {
		panic(tornDown("spawn"))
	}
	tid64, _, err := mcp.DecodeU64Pair(pkt.Payload)
	if err != nil {
		panic(err)
	}
	if tid64 == ^uint64(0) {
		return arch.InvalidThread
	}
	t.tile.Core.SpawnCost(pkt.Time - t.Now())
	t.forward(pkt.Time)
	t.tick()
	return arch.ThreadID(tid64)
}

// Join blocks until the given thread exits, forwarding this thread's
// clock to the later of its own time and the child's exit time.
func (t *Thread) Join(tid arch.ThreadID) {
	before := t.Now()
	pkt, ok := t.call(mcp.MsgJoin, mcp.EncodeU64(uint64(tid)))
	if !ok {
		panic(tornDown("join"))
	}
	t.forward(pkt.Time)
	t.waited(before)
	t.tick()
}

// MutexLock acquires the application mutex at simulated address m
// (emulating an intercepted futex, paper §3.4).
func (t *Thread) MutexLock(m arch.Addr) {
	before := t.Now()
	pkt, ok := t.call(mcp.MsgMutexLock, mcp.EncodeU64(uint64(m)))
	if !ok {
		panic(tornDown("lock"))
	}
	t.forward(pkt.Time)
	t.waited(before)
	t.tick()
}

// MutexUnlock releases the mutex at m.
func (t *Thread) MutexUnlock(m arch.Addr) {
	t.tile.Clock.Advance(unlockCost)
	t.tile.sys.notify(mcp.MsgMutexUnlock, mcpTile, mcp.EncodeU64(uint64(m)), t.Now())
	t.tick()
}

// BarrierWait blocks until n threads have reached the barrier at b; all
// are released at the latest arrival time.
func (t *Thread) BarrierWait(b arch.Addr, n int) {
	before := t.Now()
	pkt, ok := t.call(mcp.MsgBarrierWait, mcp.EncodeU64Pair(uint64(b), uint64(n)))
	if !ok {
		panic(tornDown("barrier"))
	}
	t.forward(pkt.Time)
	t.waited(before)
	t.tick()
}

// CondWait atomically releases the mutex m and blocks on the condition
// variable c; on wake the mutex has been re-acquired.
func (t *Thread) CondWait(c, m arch.Addr) {
	before := t.Now()
	pkt, ok := t.call(mcp.MsgCondWait, mcp.EncodeU64Pair(uint64(c), uint64(m)))
	if !ok {
		panic(tornDown("cond wait"))
	}
	t.forward(pkt.Time)
	t.waited(before)
	t.tick()
}

// CondSignal wakes one waiter of c.
func (t *Thread) CondSignal(c arch.Addr) {
	t.tile.sys.notify(mcp.MsgCondSignal, mcpTile, mcp.EncodeU64(uint64(c)), t.Now())
	t.tick()
}

// CondBroadcast wakes all waiters of c.
func (t *Thread) CondBroadcast(c arch.Addr) {
	t.tile.sys.notify(mcp.MsgCondBroadcast, mcpTile, mcp.EncodeU64(uint64(c)), t.Now())
	t.tick()
}

// Send delivers data to another thread over the application network (the
// user-level messaging API of paper §3.3).
func (t *Thread) Send(dst arch.ThreadID, data []byte) {
	t.tile.Clock.Advance(sendCost)
	if _, err := t.tile.Net.Send(network.ClassApp, 0, arch.TileID(dst), 0, data, t.Now()); err != nil {
		panic("graphite: app send failed: " + err.Error())
	}
	t.tick()
}

// Recv blocks for the next application message from any sender. Receiving
// is a true synchronization event: the clock forwards to the message
// timestamp.
func (t *Thread) Recv() (arch.ThreadID, []byte) {
	before := t.Now()
	t.tile.setRPCBlocked(true)
	pkt, ok := t.tile.Net.Recv(network.ClassApp)
	t.tile.setRPCBlocked(false)
	if !ok {
		panic(tornDown("recv"))
	}
	t.forward(pkt.Time + recvCost)
	t.waited(before)
	t.tick()
	return arch.ThreadID(pkt.Src), pkt.Payload
}

// RecvFrom blocks for the next application message from a specific sender.
func (t *Thread) RecvFrom(src arch.ThreadID) []byte {
	before := t.Now()
	t.tile.setRPCBlocked(true)
	pkt, ok := t.tile.Net.RecvMatch(network.ClassApp, func(p *network.Packet) bool {
		return p.Src == arch.TileID(src)
	})
	t.tile.setRPCBlocked(false)
	if !ok {
		panic(tornDown("recv"))
	}
	t.forward(pkt.Time + recvCost)
	t.waited(before)
	t.tick()
	return pkt.Payload
}

// FileOp forwards one file system call to the MCP (paper §3.4). All
// threads share one file table regardless of host process.
func (t *Thread) FileOp(req mcp.FileReq) mcp.FileRep {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&req); err != nil {
		panic(err)
	}
	pkt, ok := t.call(mcp.MsgFileOp, buf.Bytes())
	if !ok {
		panic(tornDown("file op"))
	}
	var rep mcp.FileRep
	if err := gob.NewDecoder(bytes.NewReader(pkt.Payload)).Decode(&rep); err != nil {
		panic(err)
	}
	t.forward(pkt.Time)
	t.tick()
	return rep
}

// Open opens (or creates) a file, returning its simulation-global fd.
func (t *Thread) Open(path string, flags int32) (int32, error) {
	rep := t.FileOp(mcp.FileReq{Op: mcp.FileOpen, Path: path, Flags: flags})
	if rep.Err != "" {
		return -1, fmt.Errorf("%s", rep.Err)
	}
	return rep.FD, nil
}

// WriteFile writes data at the fd's offset.
func (t *Thread) WriteFile(fd int32, data []byte) (int64, error) {
	rep := t.FileOp(mcp.FileReq{Op: mcp.FileWrite, FD: fd, Data: data})
	if rep.Err != "" {
		return 0, fmt.Errorf("%s", rep.Err)
	}
	return rep.N, nil
}

// ReadFile reads up to n bytes at the fd's offset.
func (t *Thread) ReadFile(fd int32, n int32) ([]byte, error) {
	rep := t.FileOp(mcp.FileReq{Op: mcp.FileRead, FD: fd, N: n})
	if rep.Err != "" {
		return nil, fmt.Errorf("%s", rep.Err)
	}
	return rep.Data, nil
}

// CloseFile closes an fd.
func (t *Thread) CloseFile(fd int32) error {
	rep := t.FileOp(mcp.FileReq{Op: mcp.FileClose, FD: fd})
	if rep.Err != "" {
		return fmt.Errorf("%s", rep.Err)
	}
	return nil
}

// call performs a blocking MCP RPC, marking the tile blocked so skew
// sampling and LaxP2P probes ignore its frozen clock while it waits. The
// memory node needs no notice: a thread blocked here leaves the ownership
// word free, so the node's server answers coherence interventions itself
// (DESIGN.md §13).
func (t *Thread) call(typ uint8, payload []byte) (network.Packet, bool) {
	t.tile.setRPCBlocked(true)
	pkt, ok := t.tile.sys.call(typ, mcpTile, payload, t.Now())
	t.tile.setRPCBlocked(false)
	return pkt, ok
}

func (t *Thread) forward(to arch.Cycles) {
	t.tile.Clock.Forward(to)
}

// waited records blocked simulated time in the tile's statistics.
func (t *Thread) waited(before arch.Cycles) {
	if d := t.Now() - before; d > 0 {
		t.tile.Mem.AddSyncWait(d)
	}
}
