package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/coremodel"
	"repro/internal/mcp"
)

func testCfg(tiles, procs int) config.Config {
	cfg := config.Default()
	cfg.Tiles = tiles
	cfg.Processes = procs
	// Small caches keep tests brisk while exercising evictions.
	cfg.L1I = config.CacheConfig{Enabled: false}
	cfg.L1D = config.CacheConfig{Enabled: true, Size: 2 << 10, Assoc: 2, LineSize: 64, HitLatency: 1}
	cfg.L2 = config.CacheConfig{Enabled: true, Size: 16 << 10, Assoc: 4, LineSize: 64, HitLatency: 8}
	return cfg
}

func run(t *testing.T, cfg config.Config, prog Program, arg uint64) (*RunStats, *Cluster) {
	t.Helper()
	c, err := NewCluster(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	rs, err := c.Run(arg)
	if err != nil {
		t.Fatal(err)
	}
	return rs, c
}

func TestSingleThreadProgram(t *testing.T) {
	prog := Program{
		Name: "hello",
		Funcs: []ThreadFunc{func(th *Thread, arg uint64) {
			a := th.Malloc(64)
			th.Store64(a, arg*2)
			th.Compute(coremodel.Arith, 100)
			if got := th.Load64(a); got != arg*2 {
				t.Errorf("load = %d", got)
			}
		}},
	}
	rs, _ := run(t, testCfg(2, 1), prog, 21)
	if rs.SimulatedCycles <= 0 {
		t.Fatal("no simulated time elapsed")
	}
	if rs.Totals.Instructions < 100 {
		t.Fatalf("instructions = %d", rs.Totals.Instructions)
	}
	if rs.Totals.Loads == 0 || rs.Totals.Stores == 0 {
		t.Fatal("memory ops not counted")
	}
}

func TestParallelSumSharedMemory(t *testing.T) {
	// Main fills an array, spawns workers that sum disjoint halves into
	// result slots, joins, and verifies — shared memory plus spawn/join.
	const n = 512
	prog := Program{Name: "psum"}
	prog.Funcs = []ThreadFunc{
		func(th *Thread, arg uint64) { // main
			data := th.Malloc(n * 8)
			results := th.Malloc(2 * 64) // one cache line each
			for i := 0; i < n; i++ {
				th.Store64(data+arch.Addr(i*8), uint64(i+1))
			}
			t1 := th.Spawn(1, uint64(data)|0<<48)
			t2 := th.Spawn(1, uint64(data)|1<<48)
			_ = results
			th.Join(t1)
			th.Join(t2)
			// Workers stored partial sums at data[n] area? Use messaging
			// instead: receive both partials.
			var total uint64
			for i := 0; i < 2; i++ {
				_, msg := th.Recv()
				var v uint64
				for b := 0; b < 8; b++ {
					v |= uint64(msg[b]) << (8 * b)
				}
				total += v
			}
			want := uint64(n * (n + 1) / 2)
			if total != want {
				t.Errorf("parallel sum = %d, want %d", total, want)
			}
		},
		func(th *Thread, arg uint64) { // worker
			data := arch.Addr(arg & 0xFFFFFFFFFFFF)
			half := int(arg >> 48)
			var sum uint64
			for i := half * n / 2; i < (half+1)*n/2; i++ {
				sum += th.Load64(data + arch.Addr(i*8))
				th.Compute(coremodel.Arith, 1)
			}
			var msg [8]byte
			for b := 0; b < 8; b++ {
				msg[b] = byte(sum >> (8 * b))
			}
			th.Send(0, msg[:])
		},
	}
	rs, _ := run(t, testCfg(4, 1), prog, 0)
	if rs.Totals.L2Misses == 0 {
		t.Fatal("no L2 misses in a shared-memory program")
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	// 4 threads increment a shared counter 50 times each under a mutex.
	// Lost updates would reveal broken lock or coherence semantics.
	const workers, iters = 3, 50
	prog := Program{Name: "mutex"}
	prog.Funcs = []ThreadFunc{
		func(th *Thread, arg uint64) {
			ctr := th.Malloc(64)
			m := th.Malloc(64)
			var tids []arch.ThreadID
			for i := 0; i < workers; i++ {
				tids = append(tids, th.Spawn(1, uint64(ctr)|uint64(m)<<32))
			}
			for _, tid := range tids {
				th.Join(tid)
			}
			if got := th.Load64(ctr); got != workers*iters {
				t.Errorf("counter = %d, want %d", got, workers*iters)
			}
		},
		func(th *Thread, arg uint64) {
			ctr := arch.Addr(arg & 0xFFFFFFFF)
			m := arch.Addr(arg >> 32)
			for i := 0; i < iters; i++ {
				th.MutexLock(m)
				th.Store64(ctr, th.Load64(ctr)+1)
				th.MutexUnlock(m)
			}
		},
	}
	run(t, testCfg(4, 1), prog, 0)
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	// After a barrier, every participant's clock is at least the latest
	// arrival time: phase 2 loads must see phase 1 stores.
	const workers = 4
	prog := Program{Name: "barrier"}
	// Layout within one allocation: workers data slots, then the barrier.
	prog.Funcs = []ThreadFunc{
		func(th *Thread, arg uint64) {
			base := th.Malloc((workers + 1) * 64)
			bar := base + arch.Addr(workers*64)
			var tids []arch.ThreadID
			for i := 0; i < workers-1; i++ {
				tids = append(tids, th.Spawn(1, uint64(base)|uint64(i+1)<<48))
			}
			// Main is participant 0.
			th.Store64(base, 1000)
			th.BarrierWait(bar, workers)
			var sum uint64
			for i := 0; i < workers; i++ {
				sum += th.Load64(base + arch.Addr(i*64))
			}
			if sum != 1000*workers {
				t.Errorf("post-barrier sum = %d, want %d", sum, 1000*workers)
			}
			for _, tid := range tids {
				th.Join(tid)
			}
		},
		func(th *Thread, arg uint64) {
			base := arch.Addr(arg & 0xFFFFFFFFFFFF)
			bar := base + arch.Addr(workers*64)
			idx := int(arg >> 48)
			th.Compute(coremodel.Arith, idx*500) // desynchronize clocks
			th.Store64(base+arch.Addr(idx*64), 1000)
			before := th.Now()
			th.BarrierWait(bar, workers)
			if th.Now() < before {
				t.Error("clock went backwards across barrier")
			}
		},
	}
	run(t, testCfg(4, 1), prog, 0)
}

func TestCondVarProducerConsumer(t *testing.T) {
	prog := Program{Name: "cond"}
	// Layout within one allocation: flag, mutex, and condvar lines.
	prog.Funcs = []ThreadFunc{
		func(th *Thread, arg uint64) { // consumer (main)
			base := th.Malloc(3 * 64)
			flag, m, cv := base, base+64, base+128
			tid := th.Spawn(1, uint64(base))
			th.MutexLock(m)
			for th.Load64(flag) == 0 {
				th.CondWait(cv, m)
			}
			th.MutexUnlock(m)
			if got := th.Load64(flag); got != 7 {
				t.Errorf("flag = %d", got)
			}
			th.Join(tid)
		},
		func(th *Thread, arg uint64) { // producer
			base := arch.Addr(arg)
			flag, m, cv := base, base+64, base+128
			th.Compute(coremodel.Arith, 2000)
			th.MutexLock(m)
			th.Store64(flag, 7)
			th.MutexUnlock(m)
			th.CondSignal(cv)
		},
	}
	run(t, testCfg(2, 1), prog, 0)
}

func TestMessagingPingPong(t *testing.T) {
	const rounds = 20
	prog := Program{Name: "pingpong"}
	prog.Funcs = []ThreadFunc{
		func(th *Thread, arg uint64) {
			tid := th.Spawn(1, 0)
			for i := 0; i < rounds; i++ {
				th.Send(tid, []byte{byte(i)})
				data := th.RecvFrom(tid)
				if data[0] != byte(i)+1 {
					t.Errorf("round %d: got %d", i, data[0])
				}
			}
			th.Join(tid)
		},
		func(th *Thread, arg uint64) {
			for i := 0; i < rounds; i++ {
				src, data := th.Recv()
				th.Send(src, []byte{data[0] + 1})
			}
		},
	}
	rs, _ := run(t, testCfg(2, 1), prog, 0)
	// Message receipt forwards clocks: the final time must reflect the
	// chain of round trips.
	if rs.SimulatedCycles <= 0 {
		t.Fatal("no simulated time")
	}
}

func TestMultiProcessDistribution(t *testing.T) {
	// Same mutex program, striped across 4 simulated host processes: the
	// single-process illusion must hold.
	const workers, iters = 7, 20
	var ran atomic.Int32
	prog := Program{Name: "mp"}
	prog.Funcs = []ThreadFunc{
		func(th *Thread, arg uint64) {
			ctr := th.Malloc(64)
			m := th.Malloc(64)
			var tids []arch.ThreadID
			for i := 0; i < workers; i++ {
				tids = append(tids, th.Spawn(1, uint64(ctr)|uint64(m)<<32))
			}
			for _, tid := range tids {
				th.Join(tid)
			}
			if got := th.Load64(ctr); got != workers*iters {
				t.Errorf("counter = %d, want %d", got, workers*iters)
			}
		},
		func(th *Thread, arg uint64) {
			ran.Add(1)
			ctr := arch.Addr(arg & 0xFFFFFFFF)
			m := arch.Addr(arg >> 32)
			for i := 0; i < iters; i++ {
				th.MutexLock(m)
				th.Store64(ctr, th.Load64(ctr)+1)
				th.MutexUnlock(m)
			}
		},
	}
	run(t, testCfg(8, 4), prog, 0)
	if ran.Load() != workers {
		t.Fatalf("only %d workers ran", ran.Load())
	}
}

func TestTCPTransportRun(t *testing.T) {
	cfg := testCfg(4, 2)
	cfg.Transport = config.TransportTCP
	cfg.TCPBase = 38_451
	prog := Program{Name: "tcp"}
	prog.Funcs = []ThreadFunc{
		func(th *Thread, arg uint64) {
			a := th.Malloc(1024)
			tid := th.Spawn(1, uint64(a))
			th.Join(tid)
			if got := th.Load64(a); got != 4242 {
				t.Errorf("cross-process value = %d", got)
			}
		},
		func(th *Thread, arg uint64) {
			th.Store64(arch.Addr(arg), 4242)
		},
	}
	run(t, cfg, prog, 0)
}

func TestLaxBarrierModelRuns(t *testing.T) {
	cfg := testCfg(4, 1)
	cfg.Sync.Model = config.LaxBarrier
	cfg.Sync.BarrierQuantum = 1000
	prog := twoWorkerComputeProgram(t)
	rs, _ := run(t, cfg, prog, 0)
	if rs.SimulatedCycles <= 0 {
		t.Fatal("no simulated time")
	}
}

func TestLaxP2PModelRuns(t *testing.T) {
	cfg := testCfg(4, 1)
	cfg.Sync.Model = config.LaxP2P
	cfg.Sync.P2PSlack = 10_000
	cfg.Sync.P2PInterval = 1_000
	prog := twoWorkerComputeProgram(t)
	rs, _ := run(t, cfg, prog, 0)
	if rs.SimulatedCycles <= 0 {
		t.Fatal("no simulated time")
	}
}

// TestLaxBarrierMultiProcess drives the batched epoch ledger across two
// host processes: each process forwards its tiles' waits in one batch,
// and the MCP releases per process. The workers also contend on a mutex,
// so threads transition through the control-plane-blocked state that the
// ledger must treat as round-completing (a blocked thread can produce no
// wait, and holding its neighbors' waits would deadlock the barrier).
func TestLaxBarrierMultiProcess(t *testing.T) {
	cfg := testCfg(4, 2)
	cfg.Sync.Model = config.LaxBarrier
	cfg.Sync.BarrierQuantum = 500
	prog := Program{Name: "barrier2proc"}
	prog.Funcs = []ThreadFunc{
		func(th *Thread, arg uint64) {
			shared := th.Malloc(64)
			mtx := th.Malloc(64)
			// Tiles stripe across processes, so the three children land in
			// both host processes.
			var kids []arch.ThreadID
			for i := 0; i < 3; i++ {
				kids = append(kids, th.Spawn(1, uint64(shared)<<32|uint64(mtx)))
			}
			for _, k := range kids {
				th.Join(k)
			}
			if got := th.Load64(arch.Addr(shared)); got != 3*20 {
				t.Errorf("counter = %d, want 60", got)
			}
		},
		func(th *Thread, arg uint64) {
			shared, mtx := arch.Addr(arg>>32), arch.Addr(arg&0xFFFFFFFF)
			for i := 0; i < 20; i++ {
				th.Compute(coremodel.Arith, 50)
				th.MutexLock(mtx)
				th.Store64(shared, th.Load64(shared)+1)
				th.MutexUnlock(mtx)
			}
		},
	}
	rs, _ := run(t, cfg, prog, 0)
	if rs.SimulatedCycles <= 0 {
		t.Fatal("no simulated time")
	}
}

// BenchmarkClusterConstruction1024 measures building and tearing down a
// thousand-tile simulation: per-tile rings, the dense transport array,
// cache arenas, and directory stores must all be sized up front rather
// than grown through rehash/regrowth schedules, or construction dominates
// short sweep runs at this scale.
func BenchmarkClusterConstruction1024(b *testing.B) {
	cfg := testCfg(1024, 1)
	prog := Program{Name: "noop", Funcs: []ThreadFunc{func(th *Thread, arg uint64) {}}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := NewCluster(cfg, prog)
		if err != nil {
			b.Fatal(err)
		}
		c.Close()
	}
}

// twoWorkerComputeProgram builds a program whose two workers interleave
// compute and shared-memory traffic, giving sync models work to do.
func twoWorkerComputeProgram(t *testing.T) Program {
	prog := Program{Name: "compute2"}
	prog.Funcs = []ThreadFunc{
		func(th *Thread, arg uint64) {
			shared := th.Malloc(4 * 64)
			t1 := th.Spawn(1, uint64(shared))
			t2 := th.Spawn(1, uint64(shared)+64)
			th.Join(t1)
			th.Join(t2)
			a := th.Load64(arch.Addr(shared))
			b := th.Load64(arch.Addr(shared) + 64)
			if a != 50 || b != 50 {
				t.Errorf("worker results %d %d", a, b)
			}
		},
		func(th *Thread, arg uint64) {
			addr := arch.Addr(arg)
			for i := 0; i < 50; i++ {
				th.Compute(coremodel.Arith, 20)
				th.Store64(addr, uint64(i+1))
			}
		},
	}
	return prog
}

func TestSpawnOverflowReturnsInvalid(t *testing.T) {
	prog := Program{Name: "overflow"}
	prog.Funcs = []ThreadFunc{
		func(th *Thread, arg uint64) {
			t1 := th.Spawn(1, 0) // occupies tile 1
			if t1 == arch.InvalidThread {
				t.Error("first spawn failed")
			}
			if t2 := th.Spawn(1, 0); t2 != arch.InvalidThread {
				t.Error("overflow spawn succeeded beyond tile count")
			}
			th.Join(t1)
		},
		func(th *Thread, arg uint64) {
			th.Compute(coremodel.Arith, 100)
		},
	}
	run(t, testCfg(2, 1), prog, 0)
}

func TestFileIOAcrossThreads(t *testing.T) {
	prog := Program{Name: "files"}
	prog.Funcs = []ThreadFunc{
		func(th *Thread, arg uint64) {
			fd, err := th.Open("/data.bin", mcp.OCreate)
			if err != nil {
				t.Error(err)
				return
			}
			th.WriteFile(fd, []byte("from main"))
			// Pass the fd itself to the child — the paper's file
			// descriptor consistency scenario.
			tid := th.Spawn(1, uint64(fd))
			th.Join(tid)
			th.CloseFile(fd)
		},
		func(th *Thread, arg uint64) {
			// Re-open to read from the start (the shared fd's offset is
			// at EOF after main's write).
			fd, err := th.Open("/data.bin", 0)
			if err != nil {
				t.Error(err)
				return
			}
			data, err := th.ReadFile(fd, 100)
			if err != nil || string(data) != "from main" {
				t.Errorf("child read %q, %v", data, err)
			}
			// And the inherited descriptor is usable for appending.
			if _, err := th.WriteFile(int32(arg), []byte("!")); err != nil {
				t.Errorf("inherited fd write: %v", err)
			}
			th.CloseFile(fd)
		},
	}
	run(t, testCfg(4, 2), prog, 0)
}

func TestPeekPokeAroundRun(t *testing.T) {
	cfg := testCfg(2, 1)
	prog := Program{Name: "peekpoke"}
	prog.Funcs = []ThreadFunc{
		func(th *Thread, arg uint64) {
			// Read what the harness poked, double it, store it back.
			base := arch.Addr(arg)
			v := th.Load64(base)
			th.Store64(base+8, v*2)
		},
	}
	c, err := NewCluster(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	base := cfg.AS.StaticBase
	var in [8]byte
	in[0] = 21
	c.Poke(base, in[:])
	if _, err := c.Run(uint64(base)); err != nil {
		t.Fatal(err)
	}
	var out [8]byte
	c.Peek(base+8, out[:])
	if out[0] != 42 {
		t.Fatalf("peeked %d, want 42", out[0])
	}
}

func TestSkewCollection(t *testing.T) {
	cfg := testCfg(4, 1)
	cfg.CollectSkew = true
	prog := twoWorkerComputeProgram(t)
	rs, _ := run(t, cfg, prog, 0)
	// Short runs may or may not capture samples; if any were captured
	// they must be well-formed.
	for _, s := range rs.Skew {
		if s.Min > s.Mean || s.Mean > s.Max {
			t.Fatalf("malformed skew sample %+v", s)
		}
	}
}

func TestRunStatsSlowdown(t *testing.T) {
	rs := &RunStats{Wall: 100_000_000} // 100 ms
	if sd := rs.Slowdown(1_000_000); sd != 100 {
		t.Fatalf("slowdown = %v", sd)
	}
	if rs.Slowdown(0) != 0 {
		t.Fatal("zero native must not divide by zero")
	}
}
