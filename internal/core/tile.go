// Package core assembles Graphite's target tiles into a running simulation
// (paper §2): each tile couples a local clock, the in-order core
// performance model, the memory subsystem node, and a network interface;
// tiles are grouped into simulated host processes (Proc), each with a
// Local Control Program, and process 0 additionally hosts the Master
// Control Program. Cluster wires the processes over the configured
// transport and drives a whole simulation run.
package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/clock"
	"repro/internal/config"
	"repro/internal/coremodel"
	"repro/internal/mcp"
	"repro/internal/memsys"
	"repro/internal/network"
)

// Tile is one target tile: compute core, network switch, and memory node.
type Tile struct {
	ID    arch.TileID
	Clock clock.Local
	Net   *network.Net
	Mem   *memsys.Node
	Core  *coremodel.Core
	sys   *sysRouter
	cfg   *config.Config

	// active reports whether an application thread is currently running
	// on this tile; rpcBlocked reports that the thread is blocked in a
	// control-plane RPC (join, lock, barrier, receive) with a frozen
	// clock. Skew sampling and LaxP2P probes consider only running,
	// unblocked tiles — a frozen clock is not "behind", it is waiting.
	active     atomic.Bool
	rpcBlocked atomic.Bool

	// onBlock, if set (LaxBarrier only), forwards rpcBlocked transitions
	// to the process's epoch ledger: a thread entering a control-plane
	// wait can complete the local barrier round, so the ledger must
	// re-evaluate its flush condition. Nil under Lax and LaxP2P — the
	// transition then costs one atomic store and a nil check, as before.
	onBlock func(arch.TileID, bool)
}

// setRPCBlocked records an rpcBlocked transition and notifies the epoch
// ledger when one is attached.
func (t *Tile) setRPCBlocked(blocked bool) {
	t.rpcBlocked.Store(blocked)
	if t.onBlock != nil {
		t.onBlock(t.ID, blocked)
	}
}

// Active reports whether the tile currently runs an application thread.
func (t *Tile) Active() bool { return t.active.Load() }

// Running reports whether the tile's thread is running and not blocked in
// a control-plane RPC.
func (t *Tile) Running() bool { return t.active.Load() && !t.rpcBlocked.Load() }

// NewTile builds a tile. net must be registered on the tile's endpoint and
// started; progress is the process's shared progress window.
func NewTile(id arch.TileID, cfg *config.Config, net *network.Net, progress *clock.ProgressWindow) *Tile {
	t := &Tile{ID: id, Net: net, cfg: cfg}
	t.Mem = memsys.NewNode(id, cfg, net, progress)
	// The synthetic code segment lives at the top of the static data
	// segment: one loop working set of CodeFootprint bytes per tile.
	coreCfg := cfg.CoreFor(id) // heterogeneous targets override per tile
	foot := coreCfg.CodeFootprint
	codeBase := cfg.AS.StaticBase + arch.Addr(int(id))*arch.Addr(foot)
	t.Core = coremodel.New(coreCfg, &t.Clock, codeBase, foot, cfg.LineSize(),
		func(pc arch.Addr, n int, now arch.Cycles) arch.Cycles {
			return t.Mem.Fetch(pc, n, now).Latency
		})
	t.sys = newSysRouter(net, &t.Clock)
	t.sys.running = t.Running
	return t
}

// Start launches the tile's server goroutines (memory node and system
// router).
func (t *Tile) Start() {
	go t.Mem.Serve()
	go t.sys.serve()
}

// sysRouter serves the tile's system-class traffic: it answers LaxP2P
// clock probes directly (even when the tile has no running thread, the
// clock is readable) and routes RPC replies to blocked callers by
// sequence number.
type sysRouter struct {
	net *network.Net
	clk *clock.Local
	// running reports whether the tile's thread is running and unblocked;
	// probe replies carry it so LaxP2P partners skip waiting tiles.
	running func() bool

	mu      sync.Mutex
	waiters map[uint64]chan network.Packet
	seq     uint64
	closed  bool

	stopped chan struct{}
}

func newSysRouter(net *network.Net, clk *clock.Local) *sysRouter {
	return &sysRouter{
		net:     net,
		clk:     clk,
		waiters: make(map[uint64]chan network.Packet),
		stopped: make(chan struct{}),
	}
}

func (r *sysRouter) serve() {
	defer close(r.stopped)
	for {
		pkt, ok := r.net.Recv(network.ClassSystem)
		if !ok {
			r.mu.Lock()
			r.closed = true
			//graphite:maporder teardown close of per-request channels; each waiter observes only its own channel
			for seq, ch := range r.waiters {
				close(ch)
				delete(r.waiters, seq)
			}
			r.mu.Unlock()
			return
		}
		if pkt.Type == mcp.MsgClockProbe {
			running := uint64(0)
			if r.running != nil && r.running() {
				running = 1
			}
			payload := mcp.EncodeU64Pair(uint64(r.clk.Now()), running)
			r.net.Send(network.ClassSystem, mcp.MsgClockProbeRep, pkt.Src, pkt.Seq, payload, 0)
			continue
		}
		r.mu.Lock()
		ch := r.waiters[pkt.Seq]
		delete(r.waiters, pkt.Seq)
		r.mu.Unlock()
		if ch != nil {
			ch <- pkt
		}
	}
}

// call performs a blocking RPC: it sends a system packet and waits for the
// reply bearing the same sequence number. ok is false on teardown.
func (r *sysRouter) call(typ uint8, dst arch.TileID, payload []byte, now arch.Cycles) (network.Packet, bool) {
	ch := make(chan network.Packet, 1)
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return network.Packet{}, false
	}
	r.seq++
	seq := r.seq
	r.waiters[seq] = ch
	r.mu.Unlock()
	if _, err := r.net.Send(network.ClassSystem, typ, dst, seq, payload, now); err != nil {
		r.mu.Lock()
		delete(r.waiters, seq)
		r.mu.Unlock()
		return network.Packet{}, false
	}
	pkt, ok := <-ch
	return pkt, ok
}

// notify sends a fire-and-forget system packet.
func (r *sysRouter) notify(typ uint8, dst arch.TileID, payload []byte, now arch.Cycles) {
	r.net.Send(network.ClassSystem, typ, dst, 0, payload, now)
}
