package launch

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"time"

	"repro/internal/arch"
	"repro/internal/checkpoint"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/mcp"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/workloads"
)

// ErrWorkerDied reports that a worker OS process exited while the run was
// still in flight. Run treats it as recoverable (re-fork and replay, up to
// MaxRestarts); a manual Coordinate surfaces it to the caller.
var ErrWorkerDied = errors.New("launch: worker process died mid-run")

// Spec describes one simulation distributed across Config.Processes OS
// processes.
type Spec struct {
	// Workload, Threads, Scale select the program (by registry name, so
	// every process builds the identical Program).
	Workload string
	Threads  int
	Scale    int
	// Config is the simulation configuration; Config.Processes is the OS
	// process count. Transport is forced to TCP.
	Config config.Config
	// Hosts lists every process's fabric listen address (host:port), by
	// process ID. Empty: free localhost ports are allocated (Run only;
	// Coordinate needs the addresses the workers were given).
	Hosts []string
	// DialTimeout bounds fabric connection setup (0: transport default).
	DialTimeout time.Duration
	// FabricID pins the run identity in the transport handshake (see
	// transport.TCPConfig.FabricID). Run generates one when forking; a
	// manual Coordinate over explicit hosts may leave it 0 (unchecked).
	FabricID uint64
	// PeekAddr/PeekLen select simulated memory to read back after the run
	// (the workload result-readback window); PeekLen 0 skips the read.
	PeekAddr arch.Addr
	PeekLen  int
	// WorkerVerbose forwards per-worker serve/teardown logs to stderr.
	WorkerVerbose bool
	// WorkerOutput receives forked workers' stdout+stderr (Run only;
	// default os.Stderr).
	WorkerOutput io.Writer

	// CheckpointDir and CheckpointEvery enable auto-checkpointing: the
	// MCP quiesces the fabric every CheckpointEvery barrier epochs and
	// every process serializes its simulation state under CheckpointDir
	// (shared filesystem, or per-machine paths on a manual multi-host
	// launch). Both must be set for checkpoints to happen.
	CheckpointDir   string
	CheckpointEvery int64
	// ConfigDigest stamps checkpoint manifests with the run's canonical
	// configuration hash (scenario.Digest); restore refuses a manifest
	// carrying a different digest.
	ConfigDigest string
	// MaxRestarts bounds how many times Run re-forks the workers and
	// replays the run after a worker process dies (0: die on first loss).
	MaxRestarts int
	// RestartBackoff is the delay before the first re-fork, doubled per
	// subsequent attempt and capped at 5s (0: 250ms).
	RestartBackoff time.Duration
	// Generation is the recovery attempt number carried in the fabric
	// handshake so zombie workers of a dead attempt cannot rejoin (Run
	// manages it; manual Coordinate launches may leave it 0 = unchecked).
	Generation uint64
	// Verify maps barrier epoch → expected per-process state digests; a
	// replay whose checkpoint digests diverge is reported through the
	// checkpoint error path (and aborts the run when StrictVerify is
	// set). Run fills it from the dead attempt's manifests on recovery.
	Verify       map[int64][]string
	StrictVerify bool
	// ChaosExitMS, when nonzero, instructs the first forked worker to
	// SIGKILL itself after this many wall-clock milliseconds —
	// fault-injection for recovery tests and the CI chaos smoke. Run
	// clears it after the first death so the replay can complete.
	ChaosExitMS int
	// WorkerDied, when non-nil, makes Coordinate abort with
	// ErrWorkerDied if the channel closes mid-run. Run wires it to its
	// worker Group; manual coordinators may supply their own signal.
	WorkerDied <-chan struct{}
}

// Result is the outcome of a multi-process run.
type Result struct {
	// Stats mirrors the single-OS-process Cluster.Run outcome.
	Stats *core.RunStats
	// Peeked holds the PeekLen bytes at PeekAddr, read after caches were
	// flushed.
	Peeked []byte
	// Procs reports each process's teardown acknowledgement and
	// wall-clock serving time, indexed by process ID.
	Procs []mcp.ProcShutdown
}

// workerExitGrace bounds how long workers may outlive their acknowledged
// teardown before Run declares them stuck and kills them.
const workerExitGrace = 15 * time.Second

// Coordinate runs the proc-0 role of a multi-process simulation: host the
// MCP and the striped proc-0 tiles, start the application, collect
// results, and tear the fabric down with acknowledgement. The worker
// processes must be launched separately (by Run on this machine, or by
// hand/ssh on remote ones) with the same hosts list and config.
// Processes == 1 is the degenerate single-process case: no workers, all
// tiles local.
func Coordinate(spec *Spec) (*Result, error) {
	w, ok := workloads.Get(spec.Workload)
	if !ok {
		return nil, fmt.Errorf("launch: unknown workload %q", spec.Workload)
	}
	cfg := spec.Config
	cfg.Transport = config.TransportTCP
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Processes == 1 is a degenerate but valid fabric: no peers, no
	// workers, everything local (the single-process sanity check of the
	// graphite-mp CLI).
	if len(spec.Hosts) != cfg.Processes {
		return nil, fmt.Errorf("launch: %d hosts for %d processes", len(spec.Hosts), cfg.Processes)
	}
	if cfg.Workers > 0 {
		prev := runtime.GOMAXPROCS(cfg.Workers)
		defer runtime.GOMAXPROCS(prev)
	}

	tr, err := transport.DialTCP(transport.TCPConfig{
		Proc:        0,
		Procs:       cfg.Processes,
		Addrs:       spec.Hosts,
		Route:       transport.StripedRoute(cfg.Processes),
		DialTimeout: spec.DialTimeout,
		FabricID:    spec.FabricID,
		Generation:  spec.Generation,
	})
	if err != nil {
		return nil, err
	}
	defer tr.Close()

	prog := w.Build(workloads.Params{Threads: spec.Threads, Scale: spec.Scale})
	proc, err := core.NewProc(0, &cfg, prog, tr)
	if err != nil {
		return nil, err
	}
	defer proc.Close()
	if spec.CheckpointDir != "" && spec.CheckpointEvery > 0 {
		proc.MCP.SetCheckpoint(&mcp.CheckpointPolicy{
			Dir:          spec.CheckpointDir,
			Every:        spec.CheckpointEvery,
			FabricID:     spec.FabricID,
			Generation:   spec.Generation,
			ConfigDigest: spec.ConfigDigest,
			Verify:       spec.Verify,
			StrictVerify: spec.StrictVerify,
			OnError: func(err error) {
				fmt.Fprintf(os.Stderr, "launch: checkpoint: %v\n", err)
			},
		})
		proc.SetCheckpoint(spec.CheckpointDir, spec.ConfigDigest)
	}
	proc.Start()

	start := time.Now()
	if err := proc.MCP.StartMain(0); err != nil {
		return nil, err
	}
	select {
	case <-proc.MCP.Done():
	case err := <-proc.MCP.CkptFailed():
		// StrictVerify divergence: the epoch release was withheld, the
		// fabric is parked; the deferred teardown dismantles it.
		return nil, fmt.Errorf("launch: %w", err)
	case <-spec.WorkerDied:
		// A worker process is gone; every cross-process transaction it
		// owed an answer to would hang forever. Abort — the deferred
		// proc/transport teardown unwinds the local threads — and let
		// Run decide whether to re-fork and replay.
		return nil, ErrWorkerDied
	case <-proc.MCP.Stopped():
		// The MCP's receive loop ended before the run did: the transport
		// failed the fabric underneath us (a peer write error closes it;
		// see transport.closedOr). Same recovery decision as a reaped
		// worker — this is how a manual Coordinate without a worker
		// Group observes a lost peer.
		return nil, fmt.Errorf("%w (fabric transport failed)", ErrWorkerDied)
	}
	wall := time.Since(start)
	proc.Wait()
	proc.MCP.FlushCaches()
	tiles := proc.MCP.GatherStats()
	totals := stats.Aggregate(tiles)

	res := &Result{
		Stats: &core.RunStats{
			SimulatedCycles: totals.MaxCycles,
			Wall:            wall,
			Tiles:           tiles,
			Totals:          totals,
		},
	}
	// Read result memory while the remote home tiles are still serving —
	// teardown comes after.
	if spec.PeekLen > 0 {
		res.Peeked = make([]byte, spec.PeekLen)
		proc.Tiles()[0].Mem.Peek(spec.PeekAddr, res.Peeked)
	}
	res.Procs = proc.MCP.ShutdownWorkers()
	for _, ps := range res.Procs {
		if !ps.Acked {
			return res, fmt.Errorf("launch: process %d never acknowledged teardown", ps.Proc)
		}
	}
	return res, nil
}

// Run executes a multi-process simulation entirely on this machine: it
// forks Config.Processes-1 worker copies of the current binary (which
// must call MaybeWorkerProcess; see WorkerEnv), coordinates the run, and
// guarantees the workers are gone when it returns — kill-and-reap on
// every failure path, bounded-grace reap after a clean teardown.
func Run(spec *Spec) (*Result, error) {
	s := *spec
	procs := s.Config.Processes
	if procs < 1 {
		return nil, fmt.Errorf("launch: %d processes", procs)
	}
	if s.FabricID == 0 {
		// Auto-allocated localhost ports can be recycled between
		// concurrent runs; a fresh fabric ID makes any cross-connect
		// fail the handshake instead of interleaving two simulations.
		var buf [8]byte
		if _, err := rand.Read(buf[:]); err != nil {
			return nil, fmt.Errorf("launch: fabric id: %w", err)
		}
		s.FabricID = binary.LittleEndian.Uint64(buf[:])
	}
	if len(s.Hosts) == 0 {
		hosts, err := LocalHosts(procs)
		if err != nil {
			return nil, err
		}
		s.Hosts = hosts
	}
	if len(s.Hosts) != procs {
		return nil, fmt.Errorf("launch: %d hosts for %d processes", len(s.Hosts), procs)
	}
	if err := checkLoopback(s.Hosts); err != nil {
		return nil, err
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("launch: %w", err)
	}
	workerOut := s.WorkerOutput
	if workerOut == nil {
		workerOut = os.Stderr
	}

	backoff := s.RestartBackoff
	if backoff <= 0 {
		backoff = 250 * time.Millisecond
	}
	const backoffCap = 5 * time.Second
	for attempt := 0; ; attempt++ {
		// Generation 1 is the first launch; each recovery re-fork bumps
		// it, so a zombie worker of a dead attempt fails the handshake
		// instead of injecting stale traffic into the replacement fabric.
		s.Generation = uint64(attempt + 1)
		res, err := runAttempt(&s, exe, workerOut)
		if err == nil {
			return res, nil
		}
		if !errors.Is(err, ErrWorkerDied) || attempt >= s.MaxRestarts {
			return res, err
		}
		// Recover by deterministic replay: re-fork everything and re-run
		// from the start, verifying the replay's checkpoint digests
		// against the manifests the dead attempt left behind. The final
		// workload checksum — the run's identity criterion — is produced
		// by the surviving attempt exactly as an uninterrupted run would
		// have produced it. Digest-chain verification is armed only for
		// single-application-thread runs: that is the repo's determinism
		// boundary for timing-dependent state (multi-thread runs
		// guarantee the checksum, not cycle-exact state), so comparing
		// multi-thread digests would only report noise.
		if s.CheckpointDir != "" && s.Threads <= 1 {
			if ms, lerr := checkpoint.LoadManifests(s.CheckpointDir); lerr == nil && len(ms) > 0 {
				v := make(map[int64][]string, len(ms))
				for _, m := range ms {
					v[m.Epoch] = m.VerifyDigests()
				}
				s.Verify = v
			}
		}
		// The fault injector did its job once; the replay must survive.
		s.ChaosExitMS = 0
		fmt.Fprintf(os.Stderr, "launch: worker died (attempt %d/%d); re-forking in %v\n",
			attempt+1, s.MaxRestarts+1, backoff)
		time.Sleep(backoff) //graphite:wallclock recovery backoff paces host-level re-forks; no simulated clock exists between attempts
		if backoff *= 2; backoff > backoffCap {
			backoff = backoffCap
		}
	}
}

// runAttempt forks the workers for one generation, coordinates the run,
// and guarantees the children of this attempt are dead and reaped when it
// returns, whatever the outcome.
func runAttempt(s *Spec, exe string, workerOut io.Writer) (*Result, error) {
	cfg := s.Config
	cfg.Transport = config.TransportTCP
	g := &Group{}
	for p := 1; p < cfg.Processes; p++ {
		ws := &WorkerSpec{
			Proc:          p,
			Hosts:         s.Hosts,
			Workload:      s.Workload,
			Threads:       s.Threads,
			Scale:         s.Scale,
			DialTimeoutMS: int(s.DialTimeout / time.Millisecond),
			FabricID:      s.FabricID,
			Generation:    s.Generation,
			CheckpointDir: s.CheckpointDir,
			ConfigDigest:  s.ConfigDigest,
			Verbose:       s.WorkerVerbose,
			Config:        cfg,
		}
		if p == 1 {
			ws.ChaosExitMS = s.ChaosExitMS
		}
		payload, err := json.Marshal(ws)
		if err != nil {
			g.Kill()
			g.Wait()
			return nil, fmt.Errorf("launch: encode worker spec: %w", err)
		}
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), WorkerEnv+"="+string(payload))
		cmd.Stdout = workerOut
		cmd.Stderr = workerOut
		if err := g.Start(cmd); err != nil {
			g.Kill()
			g.Wait()
			return nil, err
		}
	}

	sc := *s
	if cfg.Processes > 1 {
		sc.WorkerDied = g.Died()
	}
	res, err := Coordinate(&sc)
	if err != nil {
		g.Kill()
		g.Wait()
		return res, err
	}
	// Every process acknowledged teardown; the workers are past their
	// last send and exiting. Reap them, with a kill as the backstop.
	if err := g.WaitTimeout(workerExitGrace); err != nil {
		return res, fmt.Errorf("launch: %w", err)
	}
	return res, nil
}
