package launch

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"time"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/mcp"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/workloads"
)

// Spec describes one simulation distributed across Config.Processes OS
// processes.
type Spec struct {
	// Workload, Threads, Scale select the program (by registry name, so
	// every process builds the identical Program).
	Workload string
	Threads  int
	Scale    int
	// Config is the simulation configuration; Config.Processes is the OS
	// process count. Transport is forced to TCP.
	Config config.Config
	// Hosts lists every process's fabric listen address (host:port), by
	// process ID. Empty: free localhost ports are allocated (Run only;
	// Coordinate needs the addresses the workers were given).
	Hosts []string
	// DialTimeout bounds fabric connection setup (0: transport default).
	DialTimeout time.Duration
	// FabricID pins the run identity in the transport handshake (see
	// transport.TCPConfig.FabricID). Run generates one when forking; a
	// manual Coordinate over explicit hosts may leave it 0 (unchecked).
	FabricID uint64
	// PeekAddr/PeekLen select simulated memory to read back after the run
	// (the workload result-readback window); PeekLen 0 skips the read.
	PeekAddr arch.Addr
	PeekLen  int
	// WorkerVerbose forwards per-worker serve/teardown logs to stderr.
	WorkerVerbose bool
	// WorkerOutput receives forked workers' stdout+stderr (Run only;
	// default os.Stderr).
	WorkerOutput io.Writer
}

// Result is the outcome of a multi-process run.
type Result struct {
	// Stats mirrors the single-OS-process Cluster.Run outcome.
	Stats *core.RunStats
	// Peeked holds the PeekLen bytes at PeekAddr, read after caches were
	// flushed.
	Peeked []byte
	// Procs reports each process's teardown acknowledgement and
	// wall-clock serving time, indexed by process ID.
	Procs []mcp.ProcShutdown
}

// workerExitGrace bounds how long workers may outlive their acknowledged
// teardown before Run declares them stuck and kills them.
const workerExitGrace = 15 * time.Second

// Coordinate runs the proc-0 role of a multi-process simulation: host the
// MCP and the striped proc-0 tiles, start the application, collect
// results, and tear the fabric down with acknowledgement. The worker
// processes must be launched separately (by Run on this machine, or by
// hand/ssh on remote ones) with the same hosts list and config.
// Processes == 1 is the degenerate single-process case: no workers, all
// tiles local.
func Coordinate(spec *Spec) (*Result, error) {
	w, ok := workloads.Get(spec.Workload)
	if !ok {
		return nil, fmt.Errorf("launch: unknown workload %q", spec.Workload)
	}
	cfg := spec.Config
	cfg.Transport = config.TransportTCP
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Processes == 1 is a degenerate but valid fabric: no peers, no
	// workers, everything local (the single-process sanity check of the
	// graphite-mp CLI).
	if len(spec.Hosts) != cfg.Processes {
		return nil, fmt.Errorf("launch: %d hosts for %d processes", len(spec.Hosts), cfg.Processes)
	}
	if cfg.Workers > 0 {
		prev := runtime.GOMAXPROCS(cfg.Workers)
		defer runtime.GOMAXPROCS(prev)
	}

	tr, err := transport.DialTCP(transport.TCPConfig{
		Proc:        0,
		Procs:       cfg.Processes,
		Addrs:       spec.Hosts,
		Route:       transport.StripedRoute(cfg.Processes),
		DialTimeout: spec.DialTimeout,
		FabricID:    spec.FabricID,
	})
	if err != nil {
		return nil, err
	}
	defer tr.Close()

	prog := w.Build(workloads.Params{Threads: spec.Threads, Scale: spec.Scale})
	proc, err := core.NewProc(0, &cfg, prog, tr)
	if err != nil {
		return nil, err
	}
	defer proc.Close()
	proc.Start()

	start := time.Now()
	if err := proc.MCP.StartMain(0); err != nil {
		return nil, err
	}
	<-proc.MCP.Done()
	wall := time.Since(start)
	proc.Wait()
	proc.MCP.FlushCaches()
	tiles := proc.MCP.GatherStats()
	totals := stats.Aggregate(tiles)

	res := &Result{
		Stats: &core.RunStats{
			SimulatedCycles: totals.MaxCycles,
			Wall:            wall,
			Tiles:           tiles,
			Totals:          totals,
		},
	}
	// Read result memory while the remote home tiles are still serving —
	// teardown comes after.
	if spec.PeekLen > 0 {
		res.Peeked = make([]byte, spec.PeekLen)
		proc.Tiles()[0].Mem.Peek(spec.PeekAddr, res.Peeked)
	}
	res.Procs = proc.MCP.ShutdownWorkers()
	for _, ps := range res.Procs {
		if !ps.Acked {
			return res, fmt.Errorf("launch: process %d never acknowledged teardown", ps.Proc)
		}
	}
	return res, nil
}

// Run executes a multi-process simulation entirely on this machine: it
// forks Config.Processes-1 worker copies of the current binary (which
// must call MaybeWorkerProcess; see WorkerEnv), coordinates the run, and
// guarantees the workers are gone when it returns — kill-and-reap on
// every failure path, bounded-grace reap after a clean teardown.
func Run(spec *Spec) (*Result, error) {
	s := *spec
	procs := s.Config.Processes
	if procs < 1 {
		return nil, fmt.Errorf("launch: %d processes", procs)
	}
	if s.FabricID == 0 {
		// Auto-allocated localhost ports can be recycled between
		// concurrent runs; a fresh fabric ID makes any cross-connect
		// fail the handshake instead of interleaving two simulations.
		var buf [8]byte
		if _, err := rand.Read(buf[:]); err != nil {
			return nil, fmt.Errorf("launch: fabric id: %w", err)
		}
		s.FabricID = binary.LittleEndian.Uint64(buf[:])
	}
	if len(s.Hosts) == 0 {
		hosts, err := LocalHosts(procs)
		if err != nil {
			return nil, err
		}
		s.Hosts = hosts
	}
	if len(s.Hosts) != procs {
		return nil, fmt.Errorf("launch: %d hosts for %d processes", len(s.Hosts), procs)
	}
	if err := checkLoopback(s.Hosts); err != nil {
		return nil, err
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("launch: %w", err)
	}
	workerOut := s.WorkerOutput
	if workerOut == nil {
		workerOut = os.Stderr
	}

	cfg := s.Config
	cfg.Transport = config.TransportTCP
	g := &Group{}
	for p := 1; p < procs; p++ {
		payload, err := json.Marshal(&WorkerSpec{
			Proc:          p,
			Hosts:         s.Hosts,
			Workload:      s.Workload,
			Threads:       s.Threads,
			Scale:         s.Scale,
			DialTimeoutMS: int(s.DialTimeout / time.Millisecond),
			FabricID:      s.FabricID,
			Verbose:       s.WorkerVerbose,
			Config:        cfg,
		})
		if err != nil {
			g.Kill()
			g.Wait()
			return nil, fmt.Errorf("launch: encode worker spec: %w", err)
		}
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), WorkerEnv+"="+string(payload))
		cmd.Stdout = workerOut
		cmd.Stderr = workerOut
		if err := g.Start(cmd); err != nil {
			g.Kill()
			g.Wait()
			return nil, err
		}
	}

	res, err := Coordinate(&s)
	if err != nil {
		g.Kill()
		g.Wait()
		return res, err
	}
	// Every process acknowledged teardown; the workers are past their
	// last send and exiting. Reap them, with a kill as the backstop.
	if err := g.WaitTimeout(workerExitGrace); err != nil {
		return res, fmt.Errorf("launch: %w", err)
	}
	return res, nil
}
