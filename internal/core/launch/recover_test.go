package launch

import (
	"bytes"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/config"
	"repro/internal/workloads"
)

func recoverConfig(tiles, procs int) config.Config {
	cfg := testConfig(tiles, procs)
	cfg.Sync.Model = config.LaxBarrier
	cfg.Sync.BarrierQuantum = 500
	return cfg
}

// TestRunRecoversFromWorkerLoss is the tentpole's end-to-end criterion: a
// two-process run whose worker is killed (-9, no warning, no teardown)
// mid-run must complete anyway — re-fork, replay, verify against the dead
// attempt's checkpoints — and produce a workload result byte-identical to
// an uninterrupted run of the same spec.
func TestRunRecoversFromWorkerLoss(t *testing.T) {
	base := Spec{
		Workload:        "fft",
		Threads:         2,
		Config:          recoverConfig(4, 2),
		PeekAddr:        workloads.DefaultResultAddr,
		PeekLen:         16,
		CheckpointEvery: 4,
		ConfigDigest:    "recover-test-digest",
	}

	// Calibrate the workload so the run is long enough that a mid-run
	// kill timer cannot slip past the teardown, then record the
	// uninterrupted reference result.
	var ref *Result
	for scale := 9; ; scale++ {
		base.Scale = scale
		base.CheckpointDir = t.TempDir()
		res, err := Run(cloneSpec(base))
		if err != nil {
			t.Fatalf("reference run (scale %d): %v", scale, err)
		}
		if res.Stats.Wall >= 300*time.Millisecond || scale >= 13 {
			ref = res
			break
		}
	}
	if ms, err := checkpoint.LoadManifests(base.CheckpointDir); err != nil || len(ms) == 0 {
		t.Fatalf("reference run wrote no checkpoints (err=%v); lower CheckpointEvery", err)
	}

	// Chaos run: worker 1 SIGKILLs itself roughly mid-run.
	chaos := base
	chaos.CheckpointDir = t.TempDir()
	chaos.ChaosExitMS = int(ref.Stats.Wall/time.Millisecond)/2 + 50
	chaos.MaxRestarts = 2
	chaos.RestartBackoff = 50 * time.Millisecond
	res, err := Run(cloneSpec(chaos))
	if err != nil {
		t.Fatalf("run did not survive worker loss: %v", err)
	}
	// The identity criterion is the workload checksum — the first 8 bytes
	// of the result window, the value scenario records. The following 8
	// bytes are the ROI-end timestamp in simulated cycles, which is
	// timing-dependent under multiple application threads (the repo's
	// determinism contract covers only the checksum there).
	if !bytes.Equal(res.Peeked[:8], ref.Peeked[:8]) {
		t.Errorf("recovered checksum differs from uninterrupted run:\n  got  %x\n  want %x", res.Peeked[:8], ref.Peeked[:8])
	}

	// The surviving manifests must come from a recovery generation — if
	// they are all generation 1, the kill never landed mid-run and this
	// test exercised nothing (retune the chaos timing).
	ms, err := checkpoint.LoadManifests(chaos.CheckpointDir)
	if err != nil || len(ms) == 0 {
		t.Fatalf("recovered run wrote no checkpoints (err=%v)", err)
	}
	for _, m := range ms {
		if m.Generation < 2 {
			t.Fatalf("manifest epoch %d is generation %d; the chaos kill never interrupted the run", m.Epoch, m.Generation)
		}
		if m.ConfigDigest != base.ConfigDigest {
			t.Errorf("manifest epoch %d carries config digest %q, want %q", m.Epoch, m.ConfigDigest, base.ConfigDigest)
		}
	}
}

// cloneSpec hands Run its own mutable copy (Run rewrites Generation,
// Verify, and ChaosExitMS across attempts).
func cloneSpec(s Spec) *Spec {
	c := s
	return &c
}

// TestRunGivesUpAfterMaxRestarts: when every attempt loses a worker, Run
// must stop after MaxRestarts re-forks and report the loss instead of
// spinning forever. Chaos at 0 restarts dies on the first loss.
func TestRunGivesUpAfterMaxRestarts(t *testing.T) {
	spec := &Spec{
		Workload:        "fft",
		Threads:         2,
		Scale:           12,
		Config:          recoverConfig(4, 2),
		CheckpointDir:   t.TempDir(),
		CheckpointEvery: 4,
		MaxRestarts:     0,
		ChaosExitMS:     60,
	}
	_, err := Run(spec)
	if err == nil {
		t.Fatal("run with an unrecoverable worker loss succeeded")
	}
	if !strings.Contains(err.Error(), "worker process died") {
		t.Fatalf("error does not report the worker loss: %v", err)
	}
}

// TestGroupChildDiesDuringTeardown: a child that dies while WaitTimeout is
// already reaping (the coordinator-teardown window) must be reaped with
// its real exit status — not leak, not double-kill, not hang.
func TestGroupChildDiesDuringTeardown(t *testing.T) {
	if _, err := exec.LookPath("sleep"); err != nil {
		t.Skip("no sleep binary")
	}
	g := &Group{}
	if err := g.Start(exec.Command("sleep", "60")); err != nil {
		t.Fatal(err)
	}
	c := g.snapshot()[0]
	// Kill the child from outside the group a moment after WaitTimeout
	// starts waiting on it — the child "dies during teardown".
	go func() {
		time.Sleep(100 * time.Millisecond) //graphite:wallclock test choreography: land the kill inside the WaitTimeout window
		c.cmd.Process.Signal(syscall.SIGKILL)
	}()
	start := time.Now()
	err := g.WaitTimeout(10 * time.Second)
	if time.Since(start) > 5*time.Second {
		t.Fatal("WaitTimeout waited for the full deadline despite the child dying")
	}
	if err == nil || !strings.Contains(err.Error(), "killed") {
		t.Fatalf("want the child's kill status, got %v", err)
	}
	select {
	case <-g.Died():
	default:
		t.Fatal("Died() not signalled after the child exited")
	}
}

// TestGroupSignalWhileReForkInFlight: SIGTERM handling must kill and reap
// children started at any time, including ones started after the handler
// was installed (the re-fork-in-flight window of a recovery attempt).
// Killing the second child through the same group APIs the signal reaper
// uses exercises that path without signalling the test process itself.
func TestGroupSignalWhileReForkInFlight(t *testing.T) {
	if _, err := exec.LookPath("sleep"); err != nil {
		t.Skip("no sleep binary")
	}
	g := &Group{}
	if err := g.Start(exec.Command("sleep", "60")); err != nil {
		t.Fatal(err)
	}
	// First child dies (the "lost worker")…
	g.snapshot()[0].cmd.Process.Signal(syscall.SIGKILL)
	<-g.Died()
	// …and a replacement fork is in flight when the teardown lands.
	if err := g.Start(exec.Command("sleep", "60")); err != nil {
		t.Fatal(err)
	}
	g.Kill()
	done := make(chan error, 1)
	go func() { done <- g.Wait() }()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "killed") {
			t.Fatalf("want kill statuses for both children, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Wait hung with a re-forked child in the group")
	}
}
