package launch

import (
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
)

// TestMain lets forked copies of this test binary serve as fabric
// workers: Run re-executes os.Executable(), which is the test binary
// here.
func TestMain(m *testing.M) {
	MaybeWorkerProcess()
	os.Exit(m.Run())
}

func testConfig(tiles, procs int) config.Config {
	cfg := config.Default()
	cfg.Tiles = tiles
	cfg.Processes = procs
	cfg.L1I = config.CacheConfig{Enabled: false}
	cfg.L1D = config.CacheConfig{Enabled: true, Size: 2 << 10, Assoc: 2, LineSize: 64, HitLatency: 1}
	cfg.L2 = config.CacheConfig{Enabled: true, Size: 16 << 10, Assoc: 4, LineSize: 64, HitLatency: 8}
	return cfg
}

// TestRunTwoProcesses is the zero-to-working path: fork one worker,
// coordinate a small run, verify stats flow back and both processes
// acknowledge teardown with a wall time.
func TestRunTwoProcesses(t *testing.T) {
	res, err := Run(&Spec{
		Workload: "fft",
		Threads:  1,
		Scale:    4,
		Config:   testConfig(4, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Totals.Instructions == 0 {
		t.Fatal("no instructions simulated")
	}
	if res.Stats.Totals.L2Misses == 0 {
		t.Fatal("no cross-tile memory traffic")
	}
	if len(res.Procs) != 2 {
		t.Fatalf("got %d proc reports, want 2", len(res.Procs))
	}
	for _, ps := range res.Procs {
		if !ps.Acked {
			t.Errorf("proc %d did not acknowledge teardown", ps.Proc)
		}
		if ps.Wall <= 0 {
			t.Errorf("proc %d reported wall time %v", ps.Proc, ps.Wall)
		}
	}
}

// TestRunRejectsRemoteHosts: forking can only place workers locally; a
// remote host in the list must fail loudly, before anything is spawned.
func TestRunRejectsRemoteHosts(t *testing.T) {
	_, err := Run(&Spec{
		Workload: "fft",
		Threads:  1,
		Scale:    4,
		Config:   testConfig(4, 2),
		Hosts:    []string{"127.0.0.1:39990", "10.11.12.13:39991"},
	})
	if err == nil || !strings.Contains(err.Error(), "remote host") {
		t.Fatalf("want a remote-host error, got %v", err)
	}
}

func TestGroupKillReapsChildren(t *testing.T) {
	if _, err := exec.LookPath("sleep"); err != nil {
		t.Skip("no sleep binary")
	}
	g := &Group{}
	if err := g.Start(exec.Command("sleep", "60")); err != nil {
		t.Fatal(err)
	}
	g.Kill()
	start := time.Now()
	err := g.Wait()
	if time.Since(start) > 5*time.Second {
		t.Fatal("Wait blocked after Kill")
	}
	// A killed child reports its signal as the exit error — the child was
	// reaped, not orphaned.
	if err == nil || !strings.Contains(err.Error(), "killed") {
		t.Fatalf("want a kill exit status, got %v", err)
	}
}

func TestGroupWaitTimeoutKillsStragglers(t *testing.T) {
	if _, err := exec.LookPath("sleep"); err != nil {
		t.Skip("no sleep binary")
	}
	g := &Group{}
	if err := g.Start(exec.Command("sleep", "60")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := g.WaitTimeout(200 * time.Millisecond)
	if time.Since(start) > 5*time.Second {
		t.Fatal("WaitTimeout did not enforce its deadline")
	}
	if err == nil || !strings.Contains(err.Error(), "did not exit") {
		t.Fatalf("want a straggler error, got %v", err)
	}
}

func TestParseHosts(t *testing.T) {
	hosts, err := ParseHosts(" a:1, b:2 ,c:3 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 3 || hosts[0] != "a:1" || hosts[2] != "c:3" {
		t.Fatalf("parsed %v", hosts)
	}
	if _, err := ParseHosts("no-port"); err == nil {
		t.Fatal("accepted an address without a port")
	}
	if _, err := ParseHosts(" , "); err == nil {
		t.Fatal("accepted an empty list")
	}
}

func TestReadHostsFile(t *testing.T) {
	path := t.TempDir() + "/hosts"
	content := "# cluster A\nhostA:36400\n\nhostB:36400 # second machine\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	hosts, err := ReadHostsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 2 || hosts[0] != "hostA:36400" || hosts[1] != "hostB:36400" {
		t.Fatalf("parsed %v", hosts)
	}
}

func TestLocalHostsDistinct(t *testing.T) {
	hosts, err := LocalHosts(4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, h := range hosts {
		if seen[h] {
			t.Fatalf("duplicate address %s in %v", h, hosts)
		}
		seen[h] = true
	}
}
