package launch

import (
	"encoding/json"
	"fmt"
	"os"
	"syscall"
	"time"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/transport"
	"repro/internal/workloads"
)

// WorkerEnv is the environment variable through which Run hands a forked
// worker its role. A binary that may coordinate multi-process runs must
// call MaybeWorkerProcess at the very top of main (and a test binary in
// TestMain) so its forked copies become workers instead of re-running the
// CLI.
const WorkerEnv = "GRAPHITE_MP_WORKER"

// WorkerSpec fully describes one worker process's role: which process it
// is, where every process listens, and the simulation it serves. It is
// the JSON payload of WorkerEnv and the flag set of a manually launched
// graphite-mp worker.
//
//graphite:wire
type WorkerSpec struct {
	// Proc is this worker's process ID (1..Config.Processes-1).
	Proc int `json:"proc"`
	// Hosts lists every process's fabric listen address, by process ID.
	Hosts []string `json:"hosts"`
	// Workload, Threads, Scale rebuild the program; every process of one
	// simulation must construct the identical Program (paper §3.5).
	Workload string `json:"workload"`
	Threads  int    `json:"threads"`
	Scale    int    `json:"scale"`
	// DialTimeoutMS bounds fabric connection setup (0: transport default).
	DialTimeoutMS int `json:"dial_timeout_ms,omitempty"`
	// FabricID pins the run identity in the transport handshake so
	// concurrent runs racing over recycled localhost ports cannot
	// cross-connect (0: unchecked — manual multi-host launches).
	FabricID uint64 `json:"fabric_id,omitempty"`
	// Generation pins the recovery attempt in the handshake so a zombie
	// worker from a dead attempt cannot rejoin the replacement fabric
	// (0: unchecked).
	Generation uint64 `json:"generation,omitempty"`
	// CheckpointDir, when set, is where this worker writes its per-process
	// checkpoint state when the MCP orders a save; ConfigDigest stamps it.
	CheckpointDir string `json:"checkpoint_dir,omitempty"`
	ConfigDigest  string `json:"config_digest,omitempty"`
	// ChaosExitMS, when nonzero, makes the worker SIGKILL itself after
	// this many wall-clock milliseconds — fault injection for recovery
	// tests and the CI chaos smoke.
	ChaosExitMS int `json:"chaos_exit_ms,omitempty"`
	// Verbose logs serve/teardown progress to stderr.
	Verbose bool `json:"verbose,omitempty"`
	// Config is the full simulation configuration, identical across
	// processes (the config digest recorded by the coordinator covers it).
	Config config.Config `json:"config"` //graphite:wireexempt Config's wire schema IS its Go field names (config_digest hashes config.Canonical()'s JSON); see scenario.RunSpec.Config
}

// MaybeWorkerProcess turns the current process into a fabric worker when
// WorkerEnv is set, and never returns in that case. It is a no-op
// otherwise. Call it before any flag parsing.
func MaybeWorkerProcess() {
	payload := os.Getenv(WorkerEnv)
	if payload == "" {
		return
	}
	os.Unsetenv(WorkerEnv)
	var ws WorkerSpec
	if err := json.Unmarshal([]byte(payload), &ws); err != nil {
		fmt.Fprintln(os.Stderr, "graphite worker: bad spec:", err)
		os.Exit(2)
	}
	if err := RunWorker(&ws); err != nil {
		fmt.Fprintf(os.Stderr, "graphite worker %d: %v\n", ws.Proc, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// RunWorker serves one worker process role to completion: attach to the
// fabric, host this process's striped tiles, and exit when the
// coordinator announces teardown. The shutdown callback is installed
// before Start — the documented core.Proc contract — so a coordinator
// tearing down immediately after startup cannot strand the worker.
func RunWorker(ws *WorkerSpec) error {
	w, ok := workloads.Get(ws.Workload)
	if !ok {
		return fmt.Errorf("launch: unknown workload %q", ws.Workload)
	}
	cfg := ws.Config
	cfg.Transport = config.TransportTCP
	if err := cfg.Validate(); err != nil {
		return err
	}
	if len(ws.Hosts) != cfg.Processes {
		return fmt.Errorf("launch: %d hosts for %d processes", len(ws.Hosts), cfg.Processes)
	}
	if ws.Proc <= 0 || ws.Proc >= cfg.Processes {
		return fmt.Errorf("launch: worker proc %d out of range (1..%d)", ws.Proc, cfg.Processes-1)
	}
	if ws.ChaosExitMS > 0 {
		// Fault injection: die the hard way (no teardown, no ack) so the
		// coordinator exercises the same recovery path a crashed or
		// OOM-killed worker would trigger.
		time.AfterFunc(time.Duration(ws.ChaosExitMS)*time.Millisecond, func() { //graphite:wallclock chaos fault injection kills the host process; simulated time is irrelevant to the victim
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
		})
	}
	tr, err := transport.DialTCP(transport.TCPConfig{
		Proc:        arch.ProcID(ws.Proc),
		Procs:       cfg.Processes,
		Addrs:       ws.Hosts,
		Route:       transport.StripedRoute(cfg.Processes),
		DialTimeout: time.Duration(ws.DialTimeoutMS) * time.Millisecond,
		FabricID:    ws.FabricID,
		Generation:  ws.Generation,
	})
	if err != nil {
		return err
	}
	defer tr.Close()

	prog := w.Build(workloads.Params{Threads: ws.Threads, Scale: ws.Scale})
	proc, err := core.NewProc(arch.ProcID(ws.Proc), &cfg, prog, tr)
	if err != nil {
		return err
	}
	if ws.CheckpointDir != "" {
		proc.SetCheckpoint(ws.CheckpointDir, ws.ConfigDigest)
	}
	done := make(chan struct{})
	proc.OnShutdown = func() { close(done) }
	proc.Start()
	if ws.Verbose {
		fmt.Fprintf(os.Stderr, "[proc %d] serving %d tiles on %s\n", ws.Proc, len(proc.Tiles()), ws.Hosts[ws.Proc])
	}
	<-done
	// The teardown ack is already on the wire (the LCP acknowledges
	// before this callback fires); quiesce and leave.
	proc.Wait()
	proc.Close()
	if ws.Verbose {
		fmt.Fprintf(os.Stderr, "[proc %d] teardown acknowledged, exiting\n", ws.Proc)
	}
	return nil
}
