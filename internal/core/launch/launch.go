// Package launch runs one simulation distributed across genuinely
// separate OS processes — the deployment mode of the paper's cluster
// experiments (§3.1, §4.2) — and supervises the worker processes' whole
// lifecycle. It owns three concerns:
//
//   - host lists: parsing explicit multi-host address lists (one fabric
//     listen address per process) and allocating free localhost ports for
//     single-machine runs;
//   - child supervision: Group tracks forked worker processes and
//     guarantees they are killed and reaped on every coordinator exit
//     path, including signals — a crashed coordinator must never leave
//     orphaned workers behind;
//   - the two process roles: Coordinate runs the proc-0 role (MCP,
//     application main, result collection, acknowledged teardown) against
//     workers launched anywhere, and Run is the single-machine
//     convenience that forks the workers itself by re-executing the
//     current binary (see MaybeWorkerProcess).
//
// cmd/graphite-mp is a thin CLI over this package, and internal/scenario
// uses it to make "how many OS processes" a sweepable run parameter.
package launch

import (
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"
)

// ParseHosts parses a comma-separated "host:port,host:port,…" list, one
// fabric listen address per process in process-ID order.
func ParseHosts(list string) ([]string, error) {
	var hosts []string
	for _, h := range strings.Split(list, ",") {
		h = strings.TrimSpace(h)
		if h == "" {
			continue
		}
		if _, _, err := net.SplitHostPort(h); err != nil {
			return nil, fmt.Errorf("launch: host %q: %w", h, err)
		}
		hosts = append(hosts, h)
	}
	if len(hosts) == 0 {
		return nil, errors.New("launch: empty host list")
	}
	return hosts, nil
}

// ReadHostsFile reads a hosts file: one "host:port" per line, blank lines
// and #-comments ignored.
func ReadHostsFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("launch: %w", err)
	}
	var entries []string
	for _, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		if line = strings.TrimSpace(line); line != "" {
			entries = append(entries, line)
		}
	}
	return ParseHosts(strings.Join(entries, ","))
}

// LocalHosts allocates n distinct free localhost addresses by binding
// ephemeral ports and releasing them all at once (binding everything
// before releasing anything keeps the kernel from handing the same port
// out twice).
func LocalHosts(n int) ([]string, error) {
	listeners := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range listeners {
			ln.Close()
		}
	}()
	hosts := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("launch: reserve port: %w", err)
		}
		listeners = append(listeners, ln)
		hosts = append(hosts, ln.Addr().String())
	}
	return hosts, nil
}

// checkLoopback returns an error if any host is not a loopback address —
// forking can only place workers on this machine.
func checkLoopback(hosts []string) error {
	for _, h := range hosts {
		host, _, err := net.SplitHostPort(h)
		if err != nil {
			return fmt.Errorf("launch: host %q: %w", h, err)
		}
		if host == "localhost" {
			continue
		}
		if ip := net.ParseIP(host); ip != nil && ip.IsLoopback() {
			continue
		}
		return fmt.Errorf("launch: cannot fork a worker for remote host %q; start it there yourself (graphite-mp -proc N -hosts …)", h)
	}
	return nil
}

// child is one supervised worker process.
type child struct {
	cmd    *exec.Cmd
	reaped chan struct{} // closed once Wait has returned
	err    error         // valid after reaped
}

// Group supervises a set of forked worker processes. Every child is
// reaped by a dedicated goroutine the moment it exits, so no exit path —
// error return, panic escape, or signal — leaves a zombie, and Kill is
// always safe to call (the old graphite-mp pattern of `defer cmd.Wait()`
// orphaned every worker when an error path called os.Exit, which skips
// defers).
type Group struct {
	mu       sync.Mutex
	children []*child
	died     chan struct{}
	diedOnce sync.Once
}

// Start launches cmd under the group's supervision.
func (g *Group) Start(cmd *exec.Cmd) error {
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("launch: start worker: %w", err)
	}
	c := &child{cmd: cmd, reaped: make(chan struct{})}
	go func() {
		c.err = cmd.Wait()
		close(c.reaped)
		g.noteDeath()
	}()
	g.mu.Lock()
	g.children = append(g.children, c)
	g.mu.Unlock()
	registerLive(g)
	return nil
}

// Died returns a channel closed the first time any supervised child
// exits — for any reason, including a clean exit. A coordinator selects
// on it only while the run is in flight (a worker has no business
// exiting before the acknowledged teardown), so the close that every
// normal teardown eventually triggers is observed by no one.
func (g *Group) Died() <-chan struct{} {
	return g.diedChan()
}

func (g *Group) diedChan() chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.died == nil {
		g.died = make(chan struct{})
	}
	return g.died
}

func (g *Group) noteDeath() {
	d := g.diedChan()
	g.diedOnce.Do(func() { close(d) })
}

func (g *Group) snapshot() []*child {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*child(nil), g.children...)
}

// Kill forcibly terminates every child that has not exited yet. It does
// not wait; follow with Wait to reap.
func (g *Group) Kill() {
	for _, c := range g.snapshot() {
		select {
		case <-c.reaped:
		default:
			c.cmd.Process.Kill()
		}
	}
}

// Wait blocks until every child has been reaped and returns their joined
// exit errors.
func (g *Group) Wait() error {
	var errs []error
	for _, c := range g.snapshot() {
		<-c.reaped
		if c.err != nil {
			errs = append(errs, fmt.Errorf("worker pid %d: %w", c.cmd.Process.Pid, c.err))
		}
	}
	unregisterLive(g)
	return errors.Join(errs...)
}

// WaitTimeout reaps every child, killing any that is still running when
// the deadline expires. A kill on this path is an error: after an
// acknowledged teardown every worker must exit on its own.
func (g *Group) WaitTimeout(d time.Duration) error {
	deadline := time.NewTimer(d)
	defer deadline.Stop()
	var errs []error
	for _, c := range g.snapshot() {
		select {
		case <-c.reaped:
		case <-deadline.C:
			g.Kill()
			<-c.reaped
			errs = append(errs, fmt.Errorf("worker pid %d did not exit within %v of teardown; killed", c.cmd.Process.Pid, d))
			continue
		}
		if c.err != nil {
			errs = append(errs, fmt.Errorf("worker pid %d: %w", c.cmd.Process.Pid, c.err))
		}
	}
	unregisterLive(g)
	return errors.Join(errs...)
}

// Live groups, killed by the process-wide signal handler: a coordinator
// dying to SIGINT/SIGTERM takes its workers with it instead of orphaning
// them. One handler serves all groups — per-group handlers would race
// each other re-raising the signal before every group had cleaned up.
var (
	liveMu  sync.Mutex
	live    = map[*Group]struct{}{}
	sigOnce sync.Once
)

func registerLive(g *Group) {
	liveMu.Lock()
	live[g] = struct{}{}
	liveMu.Unlock()
	sigOnce.Do(installSignalReaper)
}

func unregisterLive(g *Group) {
	liveMu.Lock()
	delete(live, g)
	liveMu.Unlock()
}

func installSignalReaper() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-ch
		liveMu.Lock()
		groups := make([]*Group, 0, len(live))
		for g := range live {
			groups = append(groups, g)
		}
		liveMu.Unlock()
		for _, g := range groups {
			g.Kill()
		}
		for _, g := range groups {
			for _, c := range g.snapshot() {
				<-c.reaped
			}
		}
		// Children are gone; die of the signal with its default
		// disposition so the parent sees a conventional exit status.
		signal.Stop(ch)
		if p, err := os.FindProcess(os.Getpid()); err == nil {
			p.Signal(sig)
		}
		time.Sleep(time.Second) // the re-raised signal should have killed us
		os.Exit(1)
	}()
}
