package core

import (
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/transport"
)

// TestShutdownImmediatelyAfterStart is the regression test for the
// graphite-mp teardown race: OnShutdown must be installed before Start
// (the documented Proc contract), and a coordinator that announces
// teardown the instant startup completes must still reach every worker's
// callback. Before the fix, graphite-mp assigned OnShutdown after Start,
// so a fast MsgShutdown could be served while the field was still nil and
// the worker blocked forever.
func TestShutdownImmediatelyAfterStart(t *testing.T) {
	const procs = 2
	cfg := testCfg(2, procs)
	fabric := transport.NewChannelFabric(transport.StripedRoute(procs))
	defer fabric.Close()
	prog := Program{Name: "idle", Funcs: []ThreadFunc{func(th *Thread, arg uint64) {}}}

	var ps []*Proc
	var done []chan struct{}
	for p := 0; p < procs; p++ {
		pr, err := NewProc(arch.ProcID(p), &cfg, prog, fabric.Process(arch.ProcID(p)))
		if err != nil {
			t.Fatal(err)
		}
		ch := make(chan struct{})
		pr.OnShutdown = func() { close(ch) }
		pr.Start()
		ps = append(ps, pr)
		done = append(done, ch)
	}
	defer func() {
		for _, pr := range ps {
			pr.Close()
		}
	}()

	// Tear down immediately: no application ever starts.
	acks := ps[0].MCP.ShutdownWorkers()

	for p, ch := range done {
		select {
		case <-ch:
		case <-time.After(10 * time.Second):
			t.Fatalf("proc %d never saw the teardown announcement", p)
		}
	}
	if len(acks) != procs {
		t.Fatalf("got %d acks, want %d", len(acks), procs)
	}
	for _, a := range acks {
		if !a.Acked {
			t.Errorf("proc %d did not acknowledge teardown", a.Proc)
		}
	}
}
