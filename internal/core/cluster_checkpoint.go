package core

// Cluster-level checkpoint entry points: policy attachment for running
// simulations, direct capture for idle in-process clusters (tests and
// tools), and restore into a freshly constructed cluster.

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/config"
	"repro/internal/mcp"
)

// SetCheckpoint attaches a checkpoint policy to the cluster: the MCP
// initiates a save at every epoch divisible by pol.Every, and each
// process writes its state file into pol.Dir. Call after NewCluster and
// before Run.
func (c *Cluster) SetCheckpoint(pol *mcp.CheckpointPolicy) {
	c.ckpt = pol
	c.procs[0].MCP.SetCheckpoint(pol)
	for _, p := range c.procs {
		p.SetCheckpoint(pol.Dir, pol.ConfigDigest)
	}
}

// CkptFailed reports a fatal checkpoint failure (replay-verification
// digest mismatch); see mcp.Server.CkptFailed.
func (c *Cluster) CkptFailed() <-chan error { return c.procs[0].MCP.CkptFailed() }

// CaptureState checkpoints an idle cluster directly — before Run, or
// after Run has returned — without the MCP's drain protocol: every tile
// is captured in its server goroutine and the manifest written
// synchronously. SetCheckpoint must have been called. Running
// simulations are checkpointed by the MCP at epoch boundaries instead.
func (c *Cluster) CaptureState(epoch int64) (*checkpoint.Manifest, error) {
	pol := c.ckpt
	if pol == nil {
		return nil, fmt.Errorf("core: CaptureState without SetCheckpoint")
	}
	m := &checkpoint.Manifest{
		Epoch:        epoch,
		FabricID:     pol.FabricID,
		Generation:   pol.Generation,
		ConfigDigest: pol.ConfigDigest,
		MCP:          c.procs[0].MCP.CaptureState(),
	}
	for _, p := range c.procs {
		res := p.ckptSave(epoch)
		if res.Err != "" {
			return nil, fmt.Errorf("core: proc %d capture: %s", p.id, res.Err)
		}
		m.Procs = append(m.Procs, checkpoint.ManifestProc{
			Proc:        res.Proc,
			File:        res.File,
			FileSum:     res.FileSum,
			StateDigest: res.StateDigest,
		})
	}
	if err := checkpoint.WriteManifest(pol.Dir, m); err != nil {
		return nil, err
	}
	return m, nil
}

// RestoreCluster builds a fresh cluster for cfg/prog and loads the
// complete simulation state recorded in manifest m (state files in dir)
// into it: every cache, directory entry, DRAM line, clock, core model,
// and the MCP's service tables. The cluster has not run any thread, so
// all restores are race-free. The restored cluster serves functional
// inspection (Peek/Poke, stats, state re-capture); threads are host
// goroutines whose stacks are not serialized, so execution does not
// resume from the snapshot — recovery re-runs deterministically and
// verifies against recorded digests instead (DESIGN.md §18).
func RestoreCluster(cfg config.Config, prog Program, dir string, m *checkpoint.Manifest) (*Cluster, error) {
	states, err := checkpoint.LoadProcStates(dir, m)
	if err != nil {
		return nil, err
	}
	if len(states) != cfg.Processes {
		return nil, fmt.Errorf("core: manifest has %d processes, config %d", len(states), cfg.Processes)
	}
	c, err := NewCluster(cfg, prog)
	if err != nil {
		return nil, err
	}
	for i, p := range c.procs {
		if err := p.RestoreState(states[i]); err != nil {
			c.Close()
			return nil, err
		}
	}
	if m.MCP != nil {
		// Direct call, not a message: the MCP serve goroutine is parked in
		// Recv with no traffic possible before the first thread starts, and
		// the later channel operations that start one order this write
		// before any read.
		if err := c.procs[0].MCP.RestoreState(m.MCP); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}
