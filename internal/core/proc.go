package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/clock"
	"repro/internal/config"
	"repro/internal/mcp"
	"repro/internal/network"
	"repro/internal/stats"
	"repro/internal/synchro"
	"repro/internal/transport"
)

// Proc is one simulated host process: a subset of the target tiles (striped
// by tile ID), a Local Control Program, and — on process 0 — the Master
// Control Program.
type Proc struct {
	id       arch.ProcID
	cfg      *config.Config
	prog     Program
	tr       transport.Transport
	progress *clock.ProgressWindow
	models   *network.Models

	// tiles is dense, indexed by global tile ID (nil for tiles owned by
	// other processes): thread starts and LaxP2P local-partner probes
	// resolve a tile with one array load, and a thousand-tile process
	// allocates the table in one step instead of growing a map. tileList
	// holds only the local tiles, in stripe order.
	tiles    []*Tile
	tileList []*Tile

	lcp    *mcp.LCP
	lcpNet *network.Net

	// ledger batches this process's LaxBarrier waits into one MCP message
	// per quantum round (nil under Lax and LaxP2P).
	ledger *synchro.Ledger

	// MCP, present on process 0 only.
	MCP    *mcp.Server
	mcpNet *network.Net

	// OnShutdown, if set before Start, runs when the MCP announces
	// teardown (worker OS processes use it to exit).
	OnShutdown func()

	// ckpt, if set before any thread starts, enables the LCP's
	// checkpoint-save callback (see checkpoint.go). ckptPokes counts the
	// control packets sent to local tiles: they arrive on the memory
	// class, so the drain probe must subtract them from the tiles'
	// receive counters or sent/recv would never balance again.
	ckpt      *ckptConfig
	ckptPokes atomic.Uint64

	threads sync.WaitGroup
}

// NewProc builds the runtime of one host process on an attached transport.
func NewProc(id arch.ProcID, cfg *config.Config, prog Program, tr transport.Transport) (*Proc, error) {
	if len(prog.Funcs) == 0 {
		return nil, fmt.Errorf("core: program %q has no thread functions", prog.Name)
	}
	p := &Proc{
		id:       id,
		cfg:      cfg,
		prog:     prog,
		tr:       tr,
		progress: clock.NewProgressWindow(cfg.ProgressWindowSize()),
		tiles:    make([]*Tile, cfg.Tiles),
	}
	p.models = network.NewModels(cfg, p.progress)

	for _, tid := range cfg.TilesOf(id) {
		ep, err := tr.Register(transport.TileEndpoint(tid))
		if err != nil {
			return nil, err
		}
		net := network.New(tid, tr, ep, p.models, p.progress)
		// The tile's memory server is the endpoint pump: memory traffic —
		// the dominant class — skips the demux goroutine and queue hop.
		net.SetPrimary(network.ClassMemory)
		tile := NewTile(tid, cfg, net, p.progress)
		p.tiles[tid] = tile
		p.tileList = append(p.tileList, tile)
	}

	lcpEP, err := tr.Register(transport.LCP(id))
	if err != nil {
		return nil, err
	}
	p.lcpNet = network.New(arch.TileID(transport.LCP(id)), tr, lcpEP, p.models, nil)
	if cfg.Sync.Model == config.LaxBarrier {
		// Batches ride the zero-delay system network from the LCP endpoint;
		// Net.Send is safe from the app-thread goroutine that completes a
		// round. Ledger waits carry no simulated time — the MCP's barrier
		// service never reads it (releases are at time 0).
		p.ledger = synchro.NewLedger(func(ws []synchro.EpochWait) {
			p.lcpNet.Send(network.ClassSystem, mcp.MsgSimBarrierBatch, mcpTile, 0, mcp.EncodeSimBatch(ws), 0)
		})
		for _, t := range p.tileList {
			t.onBlock = p.ledger.SetBlocked
		}
	}
	p.lcp = mcp.NewLCP(id, p.lcpNet, mcp.LCPCallbacks{
		StartThread:  p.startThread,
		CollectStats: p.collectStats,
		Flush:        p.flushAll,
		Shutdown: func() {
			if p.OnShutdown != nil {
				p.OnShutdown()
			}
		},
		SimRelease: func(epoch int64) {
			if p.ledger != nil {
				p.ledger.Release(epoch)
			}
		},
		CkptProbe: p.ckptProbe,
		CkptSave:  p.ckptSave,
	})

	if id == 0 {
		mcpEP, err := tr.Register(transport.MCP)
		if err != nil {
			return nil, err
		}
		p.mcpNet = network.New(arch.TileID(transport.MCP), tr, mcpEP, p.models, nil)
		p.MCP = mcp.NewServer(cfg, p.mcpNet)
	}
	return p, nil
}

// Start launches every server goroutine of the process.
func (p *Proc) Start() {
	for _, t := range p.tileList {
		t.Net.Start()
		t.Start()
	}
	p.lcpNet.Start()
	go p.lcp.Serve()
	if p.MCP != nil {
		p.mcpNet.Start()
		go p.MCP.Serve()
	}
}

// startThread is the LCP callback launching an application thread.
func (p *Proc) startThread(st mcp.StartThread, start arch.Cycles) {
	if int(st.Tile) >= len(p.tiles) || p.tiles[st.Tile] == nil {
		panic(fmt.Sprintf("core: process %d asked to start thread on foreign tile %v", p.id, st.Tile))
	}
	tile := p.tiles[st.Tile]
	if int(st.Func) >= len(p.prog.Funcs) {
		panic(fmt.Sprintf("core: spawn of unregistered function %d", st.Func))
	}
	p.threads.Add(1)
	go func() {
		defer p.threads.Done()
		tile.Clock.Forward(start)
		tile.active.Store(true)
		if p.ledger != nil {
			p.ledger.ThreadStarted(tile.ID)
		}
		th := &Thread{tile: tile, proc: p}
		if m := p.newSyncModel(tile); m != nil {
			th.tickFn = m.Tick
		}
		if !p.runThreadFunc(p.prog.Funcs[st.Func], th, st.Arg) {
			// The simulation was dismantled under the thread (teardown of
			// a wedged or recovering run). The control plane is gone, so
			// there is no one to notify; just exit.
			tile.active.Store(false)
			return
		}
		tile.active.Store(false)
		if p.ledger != nil {
			// Before the MCP hears of the exit: the departure may complete
			// the local round, and the flushed waits must not trail the
			// exit's recheck at the MCP longer than necessary.
			p.ledger.ThreadExited(tile.ID)
		}
		instr, br, miss, comp, mem := tile.Core.Stats()
		tile.Mem.SetFinal(tile.Clock.Now(), instr, br, miss, comp, mem)
		tile.sys.notify(mcp.MsgThreadExit, mcpTile, nil, tile.Clock.Now())
	}()
}

// runThreadFunc executes one application thread function, absorbing the
// tornDown panic that Thread APIs throw when the simulation is torn down
// under a live thread. It reports whether the function ran to completion;
// any other panic propagates unchanged.
func (p *Proc) runThreadFunc(fn ThreadFunc, th *Thread, arg uint64) (completed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(tornDown); ok {
				return
			}
			panic(r)
		}
	}()
	fn(th, arg)
	return true
}

// newSyncModel instantiates the configured synchronization model for a
// freshly started thread. Plain Lax returns nil: the thread runtime then
// skips model ticks entirely. Threads blocked in any of these closures
// leave their memory node's ownership word free, so its server answers
// coherence interventions while they wait.
func (p *Proc) newSyncModel(tile *Tile) synchro.Model {
	switch p.cfg.Sync.Model {
	case config.LaxBarrier:
		return synchro.NewBarrier(p.cfg.Sync.BarrierQuantum, func(epoch int64) {
			// Park at the process ledger; the wait reaches the MCP in the
			// round's batch and the ledger wakes us on the epoch release.
			p.ledger.Wait(tile.ID, epoch)
		})
	case config.LaxP2P:
		probe := func(target arch.TileID) (arch.Cycles, bool) {
			if local := p.tiles[target]; local != nil {
				// Same-process partner: its clock is an atomic word — read
				// it directly instead of a system-network round trip. With
				// one host process a thousand tiles probe without a single
				// RPC.
				if !local.Running() {
					// A partner with no running thread (or blocked in the
					// control plane) is waiting, not behind: skip it.
					return 0, false
				}
				return local.Clock.Now(), true
			}
			pkt, ok := tile.sys.call(mcp.MsgClockProbe, target, nil, tile.Clock.Now())
			if !ok {
				return 0, false
			}
			v, running, err := mcp.DecodeU64Pair(pkt.Payload)
			if err != nil || running == 0 {
				return 0, false
			}
			return arch.Cycles(v), true
		}
		// While napping the tile is waiting, not behind: exclude it from
		// skew sampling and partner probes like any blocked thread.
		nap := func(d time.Duration) {
			tile.setRPCBlocked(true)
			time.Sleep(d) //graphite:wallclock LaxP2P nap (paper §3.6.3) throttles host execution only; the frozen simulated clock resumes exactly where it stopped
			tile.setRPCBlocked(false)
		}
		return synchro.NewP2P(p.cfg.Sync, tile.ID, p.cfg.Tiles, p.cfg.RandSeed, probe, nap)
	default:
		return nil
	}
}

// collectStats snapshots every local tile.
func (p *Proc) collectStats() []stats.Tile {
	out := make([]stats.Tile, 0, len(p.tileList))
	for _, t := range p.tileList {
		out = append(out, t.Mem.Stats())
	}
	return out
}

// flushAll writes back all local caches.
func (p *Proc) flushAll() {
	for _, t := range p.tileList {
		t.Mem.FlushAll(t.Clock.Now())
	}
}

// Tiles returns the process's tiles (for skew sampling and tests).
func (p *Proc) Tiles() []*Tile { return p.tileList }

// Wait blocks until all local application threads have returned.
func (p *Proc) Wait() { p.threads.Wait() }

// Close shuts down the process's network receive loops (every tile net,
// the LCP net, and the MCP net on process 0). The transport itself belongs
// to the caller and is closed separately.
func (p *Proc) Close() {
	if p.ledger != nil {
		p.ledger.Close() // wake any threads parked at the barrier
	}
	for _, t := range p.tileList {
		t.Net.Close()
	}
	p.lcpNet.Close()
	if p.mcpNet != nil {
		p.mcpNet.Close()
	}
}
