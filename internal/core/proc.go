package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/clock"
	"repro/internal/config"
	"repro/internal/mcp"
	"repro/internal/network"
	"repro/internal/stats"
	"repro/internal/synchro"
	"repro/internal/transport"
)

// Proc is one simulated host process: a subset of the target tiles (striped
// by tile ID), a Local Control Program, and — on process 0 — the Master
// Control Program.
type Proc struct {
	id       arch.ProcID
	cfg      *config.Config
	prog     Program
	tr       transport.Transport
	progress *clock.ProgressWindow
	models   *network.Models

	tiles    map[arch.TileID]*Tile
	tileList []*Tile

	lcp    *mcp.LCP
	lcpNet *network.Net

	// MCP, present on process 0 only.
	MCP    *mcp.Server
	mcpNet *network.Net

	// OnShutdown, if set before Start, runs when the MCP announces
	// teardown (worker OS processes use it to exit).
	OnShutdown func()

	threads sync.WaitGroup
}

// NewProc builds the runtime of one host process on an attached transport.
func NewProc(id arch.ProcID, cfg *config.Config, prog Program, tr transport.Transport) (*Proc, error) {
	if len(prog.Funcs) == 0 {
		return nil, fmt.Errorf("core: program %q has no thread functions", prog.Name)
	}
	p := &Proc{
		id:       id,
		cfg:      cfg,
		prog:     prog,
		tr:       tr,
		progress: clock.NewProgressWindow(cfg.ProgressWindowSize()),
		tiles:    make(map[arch.TileID]*Tile),
	}
	p.models = network.NewModels(cfg, p.progress)

	for _, tid := range cfg.TilesOf(id) {
		ep, err := tr.Register(transport.TileEndpoint(tid))
		if err != nil {
			return nil, err
		}
		net := network.New(tid, tr, ep, p.models, p.progress)
		// The tile's memory server is the endpoint pump: memory traffic —
		// the dominant class — skips the demux goroutine and queue hop.
		net.SetPrimary(network.ClassMemory)
		tile := NewTile(tid, cfg, net, p.progress)
		p.tiles[tid] = tile
		p.tileList = append(p.tileList, tile)
	}

	lcpEP, err := tr.Register(transport.LCP(id))
	if err != nil {
		return nil, err
	}
	p.lcpNet = network.New(arch.TileID(transport.LCP(id)), tr, lcpEP, p.models, nil)
	p.lcp = mcp.NewLCP(id, p.lcpNet, mcp.LCPCallbacks{
		StartThread:  p.startThread,
		CollectStats: p.collectStats,
		Flush:        p.flushAll,
		Shutdown: func() {
			if p.OnShutdown != nil {
				p.OnShutdown()
			}
		},
	})

	if id == 0 {
		mcpEP, err := tr.Register(transport.MCP)
		if err != nil {
			return nil, err
		}
		p.mcpNet = network.New(arch.TileID(transport.MCP), tr, mcpEP, p.models, nil)
		p.MCP = mcp.NewServer(cfg, p.mcpNet)
	}
	return p, nil
}

// Start launches every server goroutine of the process.
func (p *Proc) Start() {
	for _, t := range p.tileList {
		t.Net.Start()
		t.Start()
	}
	p.lcpNet.Start()
	go p.lcp.Serve()
	if p.MCP != nil {
		p.mcpNet.Start()
		go p.MCP.Serve()
	}
}

// startThread is the LCP callback launching an application thread.
func (p *Proc) startThread(st mcp.StartThread, start arch.Cycles) {
	tile := p.tiles[st.Tile]
	if tile == nil {
		panic(fmt.Sprintf("core: process %d asked to start thread on foreign tile %v", p.id, st.Tile))
	}
	if int(st.Func) >= len(p.prog.Funcs) {
		panic(fmt.Sprintf("core: spawn of unregistered function %d", st.Func))
	}
	p.threads.Add(1)
	go func() {
		defer p.threads.Done()
		tile.Clock.Forward(start)
		tile.active.Store(true)
		th := &Thread{tile: tile, proc: p}
		if m := p.newSyncModel(tile); m != nil {
			th.tickFn = m.Tick
		}
		p.prog.Funcs[st.Func](th, st.Arg)
		tile.active.Store(false)
		instr, br, miss, comp, mem := tile.Core.Stats()
		tile.Mem.SetFinal(tile.Clock.Now(), instr, br, miss, comp, mem)
		tile.sys.notify(mcp.MsgThreadExit, mcpTile, nil, tile.Clock.Now())
	}()
}

// newSyncModel instantiates the configured synchronization model for a
// freshly started thread. Plain Lax returns nil: the thread runtime then
// skips model ticks entirely. Threads blocked in any of these closures
// leave their memory node's ownership word free, so its server answers
// coherence interventions while they wait.
func (p *Proc) newSyncModel(tile *Tile) synchro.Model {
	switch p.cfg.Sync.Model {
	case config.LaxBarrier:
		return synchro.NewBarrier(p.cfg.Sync.BarrierQuantum, func(epoch int64) {
			tile.sys.call(mcp.MsgSimBarrier, mcpTile, mcp.EncodeU64(uint64(epoch)), tile.Clock.Now())
		})
	case config.LaxP2P:
		probe := func(target arch.TileID) (arch.Cycles, bool) {
			pkt, ok := tile.sys.call(mcp.MsgClockProbe, target, nil, tile.Clock.Now())
			if !ok {
				return 0, false
			}
			v, running, err := mcp.DecodeU64Pair(pkt.Payload)
			if err != nil || running == 0 {
				// A partner with no running thread (or blocked in the
				// control plane) is waiting, not behind: skip it.
				return 0, false
			}
			return arch.Cycles(v), true
		}
		// While napping the tile is waiting, not behind: exclude it from
		// skew sampling and partner probes like any blocked thread.
		nap := func(d time.Duration) {
			tile.rpcBlocked.Store(true)
			time.Sleep(d)
			tile.rpcBlocked.Store(false)
		}
		return synchro.NewP2P(p.cfg.Sync, tile.ID, p.cfg.Tiles, p.cfg.RandSeed, probe, nap)
	default:
		return nil
	}
}

// collectStats snapshots every local tile.
func (p *Proc) collectStats() []stats.Tile {
	out := make([]stats.Tile, 0, len(p.tileList))
	for _, t := range p.tileList {
		out = append(out, t.Mem.Stats())
	}
	return out
}

// flushAll writes back all local caches.
func (p *Proc) flushAll() {
	for _, t := range p.tileList {
		t.Mem.FlushAll(t.Clock.Now())
	}
}

// Tiles returns the process's tiles (for skew sampling and tests).
func (p *Proc) Tiles() []*Tile { return p.tileList }

// Wait blocks until all local application threads have returned.
func (p *Proc) Wait() { p.threads.Wait() }

// Close shuts down the process's network receive loops (every tile net,
// the LCP net, and the MCP net on process 0). The transport itself belongs
// to the caller and is closed separately.
func (p *Proc) Close() {
	for _, t := range p.tileList {
		t.Net.Close()
	}
	p.lcpNet.Close()
	if p.mcpNet != nil {
		p.mcpNet.Close()
	}
}
