package core

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/coremodel"
)

// TestHeterogeneousTiles builds a big.LITTLE-style target: tile 1 has
// 4x-cost ALUs. The same work must cost the little core ~4x the cycles
// (paper §2: tiles may be heterogeneous).
func TestHeterogeneousTiles(t *testing.T) {
	cfg := testCfg(4, 1)
	cfg.Core.CodeFootprint = 0 // isolate ALU costs from fetch stalls
	little := cfg.Core
	little.ArithCost = 4
	cfg.TileCores = map[arch.TileID]config.CoreConfig{2: little}

	type result struct{ big, little arch.Cycles }
	var res result
	const bar = arch.Addr(0x1_0000) // static segment; barrier keys on the address only
	prog := Program{Name: "biglittle"}
	prog.Funcs = []ThreadFunc{
		func(th *Thread, arg uint64) {
			t1 := th.Spawn(1, 0) // tile 1: big
			t2 := th.Spawn(1, 0) // tile 2: little (overridden)
			th.Join(t1)
			th.Join(t2)
		},
		func(th *Thread, arg uint64) {
			start := th.Now()
			th.Compute(coremodel.Arith, 10_000)
			d := th.Now() - start
			if th.ID() == 1 {
				res.big = d
			} else {
				res.little = d
			}
			// Meet before exiting: if the first spawned thread exited
			// before the MCP placed the second, its tile would be freed
			// and reused, putting both threads on the big tile.
			th.BarrierWait(bar, 2)
		},
	}
	run(t, cfg, prog, 0)
	if res.big != 10_000 {
		t.Fatalf("big core took %d cycles for 10k arith", res.big)
	}
	if res.little != 40_000 {
		t.Fatalf("little core took %d cycles, want 40000", res.little)
	}
}

func TestTileCoreOverrideValidation(t *testing.T) {
	cfg := testCfg(2, 1)
	cfg.TileCores = map[arch.TileID]config.CoreConfig{5: cfg.Core}
	if err := cfg.Validate(); err == nil {
		t.Fatal("override for nonexistent tile accepted")
	}
}

// TestRingTopologyRuns swaps the memory network for the ring model; the
// simulation must stay functionally identical (modeling is swappable
// without touching functionality, paper §2).
func TestRingTopologyRuns(t *testing.T) {
	cfg := testCfg(4, 1)
	cfg.MemNet = config.NetworkConfig{Kind: config.NetRing, HopLatency: 3, LinkBandwidth: 16}
	cfg.AppNet = config.NetworkConfig{Kind: config.NetRing, HopLatency: 3, LinkBandwidth: 16}
	prog := twoWorkerComputeProgram(t)
	rs, _ := run(t, cfg, prog, 0)
	if rs.SimulatedCycles <= 0 {
		t.Fatal("ring run produced no simulated time")
	}
}

// TestCoherenceProtocolsFunctionallyEquivalent runs the same program
// under all three directory protocols: answers must be identical even
// though timings differ — the swappable-model contract.
func TestCoherenceProtocolsFunctionallyEquivalent(t *testing.T) {
	protocols := []config.CoherenceConfig{
		{Kind: config.FullMap, DirLatency: 10},
		{Kind: config.LimitedNB, DirPointers: 1, DirLatency: 10},
		{Kind: config.LimitLESS, DirPointers: 1, TrapLatency: 100, DirLatency: 10},
	}
	for _, coh := range protocols {
		coh := coh
		t.Run(coh.Kind.String(), func(t *testing.T) {
			cfg := testCfg(4, 1)
			cfg.Coherence = coh
			// Shared counter under a mutex: the most protocol-hostile
			// pattern (constant ownership migration with read sharing).
			const workers, iters = 3, 30
			prog := Program{Name: "equiv"}
			prog.Funcs = []ThreadFunc{
				func(th *Thread, arg uint64) {
					base := th.Malloc(2 * 64)
					var tids []arch.ThreadID
					for i := 0; i < workers; i++ {
						tids = append(tids, th.Spawn(1, uint64(base)))
					}
					for _, tid := range tids {
						th.Join(tid)
					}
					if got := th.Load64(base); got != workers*iters {
						t.Errorf("%v: counter = %d, want %d", coh.Kind, got, workers*iters)
					}
				},
				func(th *Thread, arg uint64) {
					base := arch.Addr(arg)
					for i := 0; i < iters; i++ {
						th.MutexLock(base + 64)
						th.Store64(base, th.Load64(base)+1)
						th.MutexUnlock(base + 64)
					}
				},
			}
			run(t, cfg, prog, 0)
		})
	}
}

// TestFunctionalDeterminism: the same program run twice produces the same
// answer even though wall-clock interleavings (and hence some timings)
// differ run to run.
func TestFunctionalDeterminism(t *testing.T) {
	build := func() Program {
		prog := Program{Name: "det"}
		prog.Funcs = []ThreadFunc{
			func(th *Thread, arg uint64) {
				data := th.Malloc(64 * 64)
				var tids []arch.ThreadID
				for i := 0; i < 3; i++ {
					tids = append(tids, th.Spawn(1, uint64(data)|uint64(i)<<48))
				}
				for _, tid := range tids {
					th.Join(tid)
				}
				var sum uint64
				for i := 0; i < 64; i++ {
					sum += th.Load64(data + arch.Addr(i*64))
				}
				th.Store64(data, sum)
			},
			func(th *Thread, arg uint64) {
				data := arch.Addr(arg & 0xFFFF_FFFF_FFFF)
				w := int(arg >> 48)
				// Each worker owns a third of the slots.
				for i := w; i < 64; i += 3 {
					th.Store64(data+arch.Addr(i*64), uint64(i*i))
				}
			},
		}
		return prog
	}
	var sums []uint64
	for round := 0; round < 2; round++ {
		cfg := testCfg(4, 1)
		c, err := NewCluster(cfg, build())
		if err != nil {
			t.Fatal(err)
		}
		rs, err := c.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		_ = rs
		// The first slot holds the checksum (worker 0 owns slot 0, but
		// main overwrote it post-join).
		var b [8]byte
		c.Peek(0, b[:]) // dummy to exercise peek of address 0
		// Find the data base: main malloc'd first, so heap base.
		base := cfg.AS.HeapBase
		c.Peek(base, b[:])
		var sum uint64
		for i := 0; i < 8; i++ {
			sum |= uint64(b[i]) << (8 * i)
		}
		sums = append(sums, sum)
		c.Close()
	}
	if sums[0] != sums[1] {
		t.Fatalf("nondeterministic result: %d vs %d", sums[0], sums[1])
	}
	if sums[0] == 0 {
		t.Fatal("checksum empty")
	}
}
