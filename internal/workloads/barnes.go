package workloads

import (
	"math"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/coremodel"
)

// barnes implements the SPLASH-2 Barnes-Hut N-body kernel: the main thread
// builds a quadtree over the particles in simulated memory, then workers
// compute forces on their owned particles by traversing the shared,
// read-only tree (Figure 8's barnes pattern: per-thread owned records plus
// read-mostly shared structure).
//
// Scale is the particle count.
func init() {
	register(Workload{
		Name:         "barnes",
		Description:  "Barnes-Hut quadtree N-body; read-shared tree",
		DefaultScale: 128,
		Build:        buildBarnes,
		Native:       nativeBarnes,
	})
}

const (
	barnesBodies = iota
	barnesN
	barnesThreads
	barnesNodes
	barnesNodeCount
	barnesWords
)

// Body record (64 bytes): x, y, ax, ay, mass, pad.
const bodyStride = 64

// Tree node record (64 bytes): cx, cy, mass, child[4] int64, leafBody.
const (
	nodeStride = 64
	nodeCX     = 0
	nodeCY     = 8
	nodeMass   = 16
	nodeChild  = 24 // 4 * 8 bytes
	nodeBody   = 56 // leaf body index or -1
)

// barnesTheta is the opening-angle threshold.
const barnesTheta = 0.5

func buildBarnes(p Params) core.Program {
	work := barnesWork
	main := func(t *core.Thread, arg uint64) {
		n := p.Scale
		block := t.Malloc(barnesWords * 8)
		bodies := t.Malloc(arch.Addr(n * bodyStride))
		g := lcg(2718)
		for i := 0; i < n; i++ {
			rec := bodies + arch.Addr(i*bodyStride)
			t.StoreF64(rec+0, g.f64())
			t.StoreF64(rec+8, g.f64())
			t.StoreF64(rec+16, 0)
			t.StoreF64(rec+24, 0)
			t.StoreF64(rec+32, 0.5+g.f64())
		}
		// Build the quadtree sequentially (as the original does between
		// force phases). Nodes live in a simulated arena.
		maxNodes := 4*n + 16
		nodes := t.Malloc(arch.Addr(maxNodes * nodeStride))
		nb := &treeBuilder{t: t, nodes: nodes, maxNodes: maxNodes}
		root := nb.newNode()
		for i := 0; i < n; i++ {
			rec := bodies + arch.Addr(i*bodyStride)
			x := t.LoadF64(rec + 0)
			y := t.LoadF64(rec + 8)
			m := t.LoadF64(rec + 32)
			nb.insert(root, i, x, y, m, 0, 0, 1)
		}
		nb.summarize(root)
		t.Store64(block+barnesBodies*8, uint64(bodies))
		t.Store64(block+barnesN*8, uint64(n))
		t.Store64(block+barnesThreads*8, uint64(p.Threads))
		t.Store64(block+barnesNodes*8, uint64(nodes))
		t.Store64(block+barnesNodeCount*8, uint64(nb.count))
		runWorkers(t, 1, block, p.Threads, work)
		markROI(t, p)
		sum := 0.0
		for i := 0; i < n; i++ {
			rec := bodies + arch.Addr(i*bodyStride)
			sum += math.Abs(t.LoadF64(rec+16)) + math.Abs(t.LoadF64(rec+24))
			t.Compute(coremodel.FP, 3)
		}
		t.StoreF64(p.result(), sum)
	}
	return core.Program{Name: "barnes", Funcs: []core.ThreadFunc{main, workerEntry(work)}}
}

// treeBuilder constructs the quadtree in simulated memory.
type treeBuilder struct {
	t        *core.Thread
	nodes    arch.Addr
	count    int
	maxNodes int
}

func (b *treeBuilder) addr(i int) arch.Addr { return b.nodes + arch.Addr(i*nodeStride) }

func (b *treeBuilder) newNode() int {
	if b.count >= b.maxNodes {
		panic("workloads: barnes node arena exhausted")
	}
	i := b.count
	b.count++
	n := b.addr(i)
	b.t.StoreF64(n+nodeCX, 0)
	b.t.StoreF64(n+nodeCY, 0)
	b.t.StoreF64(n+nodeMass, 0)
	for c := 0; c < 4; c++ {
		b.t.Store64(n+nodeChild+arch.Addr(c*8), uint64(math.MaxUint64)) // -1
	}
	b.t.Store64(n+nodeBody, uint64(math.MaxUint64))
	return i
}

// insert places body idx (at x,y with mass m) into the subtree rooted at
// node within the cell (ox, oy, size).
func (b *treeBuilder) insert(node, idx int, x, y, m, ox, oy, size float64) {
	t := b.t
	na := b.addr(node)
	existing := int64(t.Load64(na + nodeBody))
	hasChildren := false
	for c := 0; c < 4; c++ {
		if int64(t.Load64(na+nodeChild+arch.Addr(c*8))) >= 0 {
			hasChildren = true
			break
		}
	}
	if existing < 0 && !hasChildren {
		// Empty leaf: claim it.
		t.Store64(na+nodeBody, uint64(idx))
		t.StoreF64(na+nodeCX, x)
		t.StoreF64(na+nodeCY, y)
		t.StoreF64(na+nodeMass, m)
		return
	}
	if existing >= 0 {
		// Split: push the resident body down.
		ex := t.LoadF64(na + nodeCX)
		ey := t.LoadF64(na + nodeCY)
		em := t.LoadF64(na + nodeMass)
		t.Store64(na+nodeBody, uint64(math.MaxUint64))
		b.insertChild(node, int(existing), ex, ey, em, ox, oy, size)
	}
	b.insertChild(node, idx, x, y, m, ox, oy, size)
}

func (b *treeBuilder) insertChild(node, idx int, x, y, m, ox, oy, size float64) {
	t := b.t
	half := size / 2
	q := 0
	cx, cy := ox, oy
	if x >= ox+half {
		q |= 1
		cx += half
	}
	if y >= oy+half {
		q |= 2
		cy += half
	}
	t.Compute(coremodel.FP, 4)
	na := b.addr(node)
	childSlot := na + nodeChild + arch.Addr(q*8)
	child := int64(t.Load64(childSlot))
	if child < 0 {
		c := b.newNode()
		t.Store64(childSlot, uint64(c))
		child = int64(c)
	}
	b.insert(int(child), idx, x, y, m, cx, cy, half)
}

// summarize fills internal nodes with centers of mass, bottom-up.
func (b *treeBuilder) summarize(node int) (x, y, m float64) {
	t := b.t
	na := b.addr(node)
	if int64(t.Load64(na+nodeBody)) >= 0 {
		return t.LoadF64(na + nodeCX), t.LoadF64(na + nodeCY), t.LoadF64(na + nodeMass)
	}
	var sx, sy, sm float64
	for c := 0; c < 4; c++ {
		child := int64(t.Load64(na + nodeChild + arch.Addr(c*8)))
		if child < 0 {
			continue
		}
		cx, cy, cm := b.summarize(int(child))
		sx += cx * cm
		sy += cy * cm
		sm += cm
		t.Compute(coremodel.FP, 5)
	}
	if sm > 0 {
		sx /= sm
		sy /= sm
	}
	t.StoreF64(na+nodeCX, sx)
	t.StoreF64(na+nodeCY, sy)
	t.StoreF64(na+nodeMass, sm)
	return sx, sy, sm
}

func barnesWork(t *core.Thread, base arch.Addr, idx int) {
	bodies := arch.Addr(t.Load64(base + barnesBodies*8))
	n := int(t.Load64(base + barnesN*8))
	threads := int(t.Load64(base + barnesThreads*8))
	nodes := arch.Addr(t.Load64(base + barnesNodes*8))
	bar := base + 1
	lo, hi := span(n, threads, idx)

	var accel func(node int, size, x, y float64) (ax, ay float64)
	accel = func(node int, size, x, y float64) (float64, float64) {
		na := nodes + arch.Addr(node*nodeStride)
		cx := t.LoadF64(na + nodeCX)
		cy := t.LoadF64(na + nodeCY)
		m := t.LoadF64(na + nodeMass)
		dx, dy := cx-x, cy-y
		d2 := dx*dx + dy*dy + 1e-4
		d := math.Sqrt(d2)
		t.Compute(coremodel.FP, 8)
		leaf := int64(t.Load64(na+nodeBody)) >= 0
		if leaf || size/d < barnesTheta {
			f := m / (d2 * d)
			t.Compute(coremodel.FP, 4)
			return dx * f, dy * f
		}
		var ax, ay float64
		for c := 0; c < 4; c++ {
			child := int64(t.Load64(na + nodeChild + arch.Addr(c*8)))
			if child < 0 {
				continue
			}
			gx, gy := accel(int(child), size/2, x, y)
			ax += gx
			ay += gy
			t.Compute(coremodel.FP, 2)
		}
		return ax, ay
	}

	for i := lo; i < hi; i++ {
		rec := bodies + arch.Addr(i*bodyStride)
		x := t.LoadF64(rec + 0)
		y := t.LoadF64(rec + 8)
		ax, ay := accel(0, 1, x, y)
		t.StoreF64(rec+16, ax)
		t.StoreF64(rec+24, ay)
		t.Branch(true)
	}
	t.BarrierWait(bar, threads)
}

func nativeBarnes(p Params) float64 {
	n := p.Scale
	type body struct{ x, y, ax, ay, m float64 }
	bs := make([]body, n)
	g := lcg(2718)
	for i := range bs {
		bs[i] = body{x: g.f64(), y: g.f64(), m: 0.5 + g.f64()}
	}
	type node struct {
		cx, cy, m float64
		child     [4]int
		body      int
	}
	var ns []node
	newNode := func() int {
		ns = append(ns, node{child: [4]int{-1, -1, -1, -1}, body: -1})
		return len(ns) - 1
	}
	var insertChild func(nd, idx int, x, y, m, ox, oy, size float64)
	var insert func(nd, idx int, x, y, m, ox, oy, size float64)
	insert = func(nd, idx int, x, y, m, ox, oy, size float64) {
		hasChildren := false
		for _, c := range ns[nd].child {
			if c >= 0 {
				hasChildren = true
				break
			}
		}
		if ns[nd].body < 0 && !hasChildren {
			ns[nd].body = idx
			ns[nd].cx, ns[nd].cy, ns[nd].m = x, y, m
			return
		}
		if ns[nd].body >= 0 {
			ex, ey, em, eb := ns[nd].cx, ns[nd].cy, ns[nd].m, ns[nd].body
			ns[nd].body = -1
			insertChild(nd, eb, ex, ey, em, ox, oy, size)
		}
		insertChild(nd, idx, x, y, m, ox, oy, size)
	}
	insertChild = func(nd, idx int, x, y, m, ox, oy, size float64) {
		half := size / 2
		q := 0
		cx, cy := ox, oy
		if x >= ox+half {
			q |= 1
			cx += half
		}
		if y >= oy+half {
			q |= 2
			cy += half
		}
		if ns[nd].child[q] < 0 {
			ns[nd].child[q] = newNode()
		}
		insert(ns[nd].child[q], idx, x, y, m, cx, cy, half)
	}
	root := newNode()
	for i := range bs {
		insert(root, i, bs[i].x, bs[i].y, bs[i].m, 0, 0, 1)
	}
	var summarize func(nd int) (x, y, m float64)
	summarize = func(nd int) (float64, float64, float64) {
		if ns[nd].body >= 0 {
			return ns[nd].cx, ns[nd].cy, ns[nd].m
		}
		var sx, sy, sm float64
		for _, c := range ns[nd].child {
			if c < 0 {
				continue
			}
			cx, cy, cm := summarize(c)
			sx += cx * cm
			sy += cy * cm
			sm += cm
		}
		if sm > 0 {
			sx /= sm
			sy /= sm
		}
		ns[nd].cx, ns[nd].cy, ns[nd].m = sx, sy, sm
		return sx, sy, sm
	}
	summarize(root)
	var accel func(nd int, size, x, y float64) (float64, float64)
	accel = func(nd int, size, x, y float64) (float64, float64) {
		dx, dy := ns[nd].cx-x, ns[nd].cy-y
		d2 := dx*dx + dy*dy + 1e-4
		d := math.Sqrt(d2)
		if ns[nd].body >= 0 || size/d < barnesTheta {
			f := ns[nd].m / (d2 * d)
			return dx * f, dy * f
		}
		var ax, ay float64
		for _, c := range ns[nd].child {
			if c < 0 {
				continue
			}
			gx, gy := accel(c, size/2, x, y)
			ax += gx
			ay += gy
		}
		return ax, ay
	}
	sum := 0.0
	for i := range bs {
		ax, ay := accel(root, 1, bs[i].x, bs[i].y)
		sum += math.Abs(ax) + math.Abs(ay)
	}
	return sum
}
