package workloads

import (
	"math"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/coremodel"
)

// lu implements the SPLASH-2 LU factorization in its two variants:
//
//   - lu_cont: rows are padded to cache-line multiples and each worker
//     owns a contiguous band — the "contiguous blocks" allocation whose
//     perfect spatial locality makes miss rates fall linearly with line
//     size (Figure 8);
//   - lu_non_cont: rows are packed end-to-end and ownership is
//     interleaved row-by-row, so adjacent owners share cache lines and
//     suffer false sharing, and per-owner data is strided.
//
// The algorithm is Gaussian elimination storing multipliers in place
// (Doolittle LU without pivoting on a diagonally dominant matrix), with a
// barrier per elimination step. Scale is the matrix dimension.
func init() {
	register(Workload{
		Name:         "lu_cont",
		Description:  "dense LU, contiguous padded rows per worker",
		DefaultScale: 64,
		Build:        func(p Params) core.Program { return buildLU(p, true) },
		Native:       nativeLU,
	})
	register(Workload{
		Name:         "lu_non_cont",
		Description:  "dense LU, packed rows with interleaved ownership",
		DefaultScale: 64,
		Build:        func(p Params) core.Program { return buildLU(p, false) },
		Native:       nativeLU,
	})
}

const (
	luMatrix = iota // matrix base
	luN
	luStride // row stride in bytes
	luThreads
	luCont // 1 for contiguous-band ownership
	luWords
)

func luStrideBytes(n int, contiguous bool) int {
	if contiguous {
		return (n*8 + 63) &^ 63 // pad rows to line multiples
	}
	return n * 8
}

func buildLU(p Params, contiguous bool) core.Program {
	work := luWork
	name := "lu_non_cont"
	if contiguous {
		name = "lu_cont"
	}
	main := func(t *core.Thread, arg uint64) {
		n := p.Scale
		stride := luStrideBytes(n, contiguous)
		block := t.Malloc(luWords * 8)
		mat := t.Malloc(arch.Addr(n * stride))
		g := lcg(777)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := g.f64()
				if i == j {
					v += float64(n) // diagonal dominance
				}
				t.StoreF64(mat+arch.Addr(i*stride+j*8), v)
			}
			t.Compute(coremodel.FP, n)
		}
		t.Store64(block+luMatrix*8, uint64(mat))
		t.Store64(block+luN*8, uint64(n))
		t.Store64(block+luStride*8, uint64(stride))
		t.Store64(block+luThreads*8, uint64(p.Threads))
		cont := uint64(0)
		if contiguous {
			cont = 1
		}
		t.Store64(block+luCont*8, cont)
		runWorkers(t, 1, block, p.Threads, work)
		markROI(t, p)
		sum := 0.0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				sum += math.Abs(t.LoadF64(mat + arch.Addr(i*stride+j*8)))
			}
			t.Compute(coremodel.FP, 2*n)
		}
		t.StoreF64(p.result(), sum)
	}
	return core.Program{Name: name, Funcs: []core.ThreadFunc{main, workerEntry(work)}}
}

// luOwns reports whether worker idx owns row i.
func luOwns(i, n, threads, idx int, contiguous bool) bool {
	if contiguous {
		lo, hi := span(n, threads, idx)
		return i >= lo && i < hi
	}
	return i%threads == idx
}

func luWork(t *core.Thread, base arch.Addr, idx int) {
	mat := arch.Addr(t.Load64(base + luMatrix*8))
	n := int(t.Load64(base + luN*8))
	stride := int(t.Load64(base + luStride*8))
	threads := int(t.Load64(base + luThreads*8))
	contiguous := t.Load64(base+luCont*8) == 1
	bar := base + 1

	for k := 0; k < n-1; k++ {
		pivot := t.LoadF64(mat + arch.Addr(k*stride+k*8))
		for i := k + 1; i < n; i++ {
			if !luOwns(i, n, threads, idx, contiguous) {
				continue
			}
			aik := t.LoadF64(mat + arch.Addr(i*stride+k*8))
			m := aik / pivot
			t.Compute(coremodel.Div, 1)
			t.StoreF64(mat+arch.Addr(i*stride+k*8), m)
			for j := k + 1; j < n; j++ {
				akj := t.LoadF64(mat + arch.Addr(k*stride+j*8))
				aij := t.LoadF64(mat + arch.Addr(i*stride+j*8))
				t.StoreF64(mat+arch.Addr(i*stride+j*8), aij-m*akj)
				t.Compute(coremodel.FP, 2)
			}
			t.Branch(true)
		}
		t.BarrierWait(bar, threads)
	}
}

func nativeLU(p Params) float64 {
	n := p.Scale
	a := make([][]float64, n)
	g := lcg(777)
	for i := range a {
		a[i] = make([]float64, n)
		for j := range a[i] {
			a[i][j] = g.f64()
			if i == j {
				a[i][j] += float64(n)
			}
		}
	}
	for k := 0; k < n-1; k++ {
		for i := k + 1; i < n; i++ {
			m := a[i][k] / a[k][k]
			a[i][k] = m
			for j := k + 1; j < n; j++ {
				a[i][j] -= m * a[k][j]
			}
		}
	}
	sum := 0.0
	for i := range a {
		for j := range a[i] {
			sum += math.Abs(a[i][j])
		}
	}
	return sum
}
