package workloads

import (
	"math"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/coremodel"
)

// blackscholes is the PARSEC option-pricing benchmark used in the Figure 9
// coherence study. It is nearly perfectly parallel — workers initialize
// and price their own contiguous slices of the option array (parallel
// first touch, as PARSEC's per-thread partitioning gives) — but every
// pricing reads a small read-only global parameter block (risk-free rate
// and volatility). That heavily shared read-only line is exactly what
// separates the directory protocols: full-map and LimitLESS let every
// tile cache it, while Dir_iNB keeps evicting sharers once more than i
// tiles hold it.
//
// Scale is log2 of the option count.
func init() {
	register(Workload{
		Name:         "blackscholes",
		Description:  "option pricing; read-only shared globals",
		DefaultScale: 11,
		Build:        buildBlackscholes,
		Native:       nativeBlackscholes,
	})
}

const (
	bsOptions = iota
	bsN
	bsThreads
	bsGlobals
	bsWords
)

// Option record (64 bytes): spot, strike, time, outPrice, pad.
const optionStride = 64

// Global parameter block (one line): rate, volatility.
const (
	bsRate = 0
	bsVol  = 8
)

// bsFPWork models the arithmetic of one pricing: log, exp, sqrt, two
// evaluations of the CND polynomial — a couple hundred FP operations in
// the PARSEC kernel.
const bsFPWork = 220

// bsRuns repeats the pricing pass over the whole option set, as PARSEC's
// NUM_RUNS loop does (100 in the original; scaled down). The repeated
// passes are what expose the directory protocols: every pass re-reads the
// shared globals, which hit in-cache under full-map but keep missing
// under Dir_iNB once more than i tiles share the line.
const bsRuns = 8

// optParams derives option i's inputs from a per-option hash, so
// initialization order (and thus parallelization) cannot change values.
func optParams(i int) (spot, strike, tm float64) {
	g := lcg(8181 + uint64(i)*0x9E3779B9)
	return 50 + 100*g.f64(), 50 + 100*g.f64(), 0.1 + 2*g.f64()
}

// cnd is the cumulative normal distribution (Abramowitz-Stegun), the same
// polynomial PARSEC uses.
func cnd(x float64) float64 {
	l := math.Abs(x)
	k := 1 / (1 + 0.2316419*l)
	w := 1 - 1/math.Sqrt(2*math.Pi)*math.Exp(-l*l/2)*
		(0.31938153*k-0.356563782*k*k+1.781477937*k*k*k-
			1.821255978*k*k*k*k+1.330274429*k*k*k*k*k)
	if x < 0 {
		return 1 - w
	}
	return w
}

// bsPrice prices one European call.
func bsPrice(spot, strike, tm, rate, vol float64) float64 {
	d1 := (math.Log(spot/strike) + (rate+vol*vol/2)*tm) / (vol * math.Sqrt(tm))
	d2 := d1 - vol*math.Sqrt(tm)
	return spot*cnd(d1) - strike*math.Exp(-rate*tm)*cnd(d2)
}

func buildBlackscholes(p Params) core.Program {
	work := bsWork
	main := func(t *core.Thread, arg uint64) {
		n := 1 << p.Scale
		block := t.Malloc(bsWords * 8)
		opts := t.Malloc(arch.Addr(n * optionStride))
		globals := t.Malloc(64)
		t.StoreF64(globals+bsRate, 0.05)
		t.StoreF64(globals+bsVol, 0.3)
		t.Store64(block+bsOptions*8, uint64(opts))
		t.Store64(block+bsN*8, uint64(n))
		t.Store64(block+bsThreads*8, uint64(p.Threads))
		t.Store64(block+bsGlobals*8, uint64(globals))
		runWorkers(t, 1, block, p.Threads, work)
		markROI(t, p)
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += t.LoadF64(opts + arch.Addr(i*optionStride+24))
		}
		t.Compute(coremodel.FP, n)
		t.StoreF64(p.result(), sum)
	}
	return core.Program{Name: "blackscholes", Funcs: []core.ThreadFunc{main, workerEntry(work)}}
}

func bsWork(t *core.Thread, base arch.Addr, idx int) {
	opts := arch.Addr(t.Load64(base + bsOptions*8))
	n := int(t.Load64(base + bsN*8))
	threads := int(t.Load64(base + bsThreads*8))
	globals := arch.Addr(t.Load64(base + bsGlobals*8))
	lo, hi := span(n, threads, idx)

	// Parallel first-touch initialization of the owned slice.
	for i := lo; i < hi; i++ {
		rec := opts + arch.Addr(i*optionStride)
		spot, strike, tm := optParams(i)
		t.Compute(coremodel.Arith, 9) // hash-based parameter generation
		t.StoreF64(rec+0, spot)
		t.StoreF64(rec+8, strike)
		t.StoreF64(rec+16, tm)
	}

	// Pricing passes over the owned slice (PARSEC's NUM_RUNS loop).
	for run := 0; run < bsRuns; run++ {
		for i := lo; i < hi; i++ {
			rec := opts + arch.Addr(i*optionStride)
			spot := t.LoadF64(rec + 0)
			strike := t.LoadF64(rec + 8)
			tm := t.LoadF64(rec + 16)
			// Every option re-reads the shared globals, as the PARSEC
			// code re-reads its global rate/volatility variables.
			rate := t.LoadF64(globals + bsRate)
			vol := t.LoadF64(globals + bsVol)
			price := bsPrice(spot, strike, tm, rate, vol)
			t.Compute(coremodel.FP, bsFPWork)
			t.StoreF64(rec+24, price)
			t.Branch(true)
		}
	}
}

func nativeBlackscholes(p Params) float64 {
	n := 1 << p.Scale
	sum := 0.0
	for i := 0; i < n; i++ {
		spot, strike, tm := optParams(i)
		var price float64
		for run := 0; run < bsRuns; run++ {
			price = bsPrice(spot, strike, tm, 0.05, 0.3)
		}
		sum += price
	}
	return sum
}
