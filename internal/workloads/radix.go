package workloads

import (
	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/coremodel"
)

// radix implements the SPLASH-2 radix sort: per-worker digit histograms, a
// prefix-sum rank phase, and a permutation (scatter) phase, repeated per
// digit. The scatter interleaves writes from all workers into one global
// destination array — the access pattern behind radix's false-sharing
// spike at 256-byte lines in Figure 8 (the write interleaving granularity
// drops below the line size).
//
// Scale is log2 of the key count; keys are 16-bit, sorted in two 8-bit
// digit passes.
func init() {
	register(Workload{
		Name:         "radix",
		Description:  "parallel radix sort; interleaved scatter writes",
		DefaultScale: 12,
		Build:        buildRadix,
		Native:       nativeRadix,
	})
}

const (
	radixSrc = iota // ping buffer
	radixDst        // pong buffer
	radixHist
	radixN
	radixThreads
	radixWords
)

const (
	radixBits    = 8
	radixBuckets = 1 << radixBits
	radixPasses  = 2 // 16-bit keys
)

func buildRadix(p Params) core.Program {
	work := radixWork
	main := func(t *core.Thread, arg uint64) {
		n := 1 << p.Scale
		block := t.Malloc(radixWords * 8)
		src := t.Malloc(arch.Addr(n * 8))
		dst := t.Malloc(arch.Addr(n * 8))
		hist := t.Malloc(arch.Addr(p.Threads * radixBuckets * 8))
		g := lcg(99)
		for i := 0; i < n; i++ {
			t.Store64(src+arch.Addr(i*8), g.next()&0xFFFF)
		}
		t.Store64(block+radixSrc*8, uint64(src))
		t.Store64(block+radixDst*8, uint64(dst))
		t.Store64(block+radixHist*8, uint64(hist))
		t.Store64(block+radixN*8, uint64(n))
		t.Store64(block+radixThreads*8, uint64(p.Threads))
		runWorkers(t, 1, block, p.Threads, work)
		markROI(t, p)
		// After an even number of passes the result is back in src.
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(t.Load64(src+arch.Addr(i*8))) * float64(i+1)
			t.Compute(coremodel.FP, 2)
		}
		t.StoreF64(p.result(), sum)
	}
	return core.Program{Name: "radix", Funcs: []core.ThreadFunc{main, workerEntry(work)}}
}

func radixWork(t *core.Thread, base arch.Addr, idx int) {
	srcA := arch.Addr(t.Load64(base + radixSrc*8))
	dstA := arch.Addr(t.Load64(base + radixDst*8))
	hist := arch.Addr(t.Load64(base + radixHist*8))
	n := int(t.Load64(base + radixN*8))
	threads := int(t.Load64(base + radixThreads*8))
	bar := base + 1
	lo, hi := span(n, threads, idx)
	myHist := hist + arch.Addr(idx*radixBuckets*8)

	src, dst := srcA, dstA
	for pass := 0; pass < radixPasses; pass++ {
		shift := uint(pass * radixBits)
		// Histogram own keys.
		for b := 0; b < radixBuckets; b++ {
			t.Store64(myHist+arch.Addr(b*8), 0)
		}
		for i := lo; i < hi; i++ {
			k := t.Load64(src + arch.Addr(i*8))
			d := (k >> shift) & (radixBuckets - 1)
			c := t.Load64(myHist + arch.Addr(d*8))
			t.Store64(myHist+arch.Addr(d*8), c+1)
			t.Compute(coremodel.Arith, 3)
		}
		t.BarrierWait(bar+arch.Addr(pass*3), threads)
		// Worker 0 turns histograms into per-(worker,digit) start ranks.
		if idx == 0 {
			off := uint64(0)
			for d := 0; d < radixBuckets; d++ {
				for w := 0; w < threads; w++ {
					slot := hist + arch.Addr((w*radixBuckets+d)*8)
					c := t.Load64(slot)
					t.Store64(slot, off)
					off += c
					t.Compute(coremodel.Arith, 2)
				}
			}
		}
		t.BarrierWait(bar+arch.Addr(pass*3+1), threads)
		// Scatter own keys to their ranked positions (stable).
		for i := lo; i < hi; i++ {
			k := t.Load64(src + arch.Addr(i*8))
			d := (k >> shift) & (radixBuckets - 1)
			slot := myHist + arch.Addr(d*8)
			pos := t.Load64(slot)
			t.Store64(slot, pos+1)
			t.Store64(dst+arch.Addr(int(pos)*8), k)
			t.Compute(coremodel.Arith, 4)
		}
		t.BarrierWait(bar+arch.Addr(pass*3+2), threads)
		src, dst = dst, src
	}
}

func nativeRadix(p Params) float64 {
	n := 1 << p.Scale
	src := make([]uint64, n)
	dst := make([]uint64, n)
	g := lcg(99)
	for i := range src {
		src[i] = g.next() & 0xFFFF
	}
	for pass := 0; pass < radixPasses; pass++ {
		shift := uint(pass * radixBits)
		var counts [radixBuckets]uint64
		for _, k := range src {
			counts[(k>>shift)&(radixBuckets-1)]++
		}
		var offs [radixBuckets]uint64
		off := uint64(0)
		for d := 0; d < radixBuckets; d++ {
			offs[d] = off
			off += counts[d]
		}
		for _, k := range src {
			d := (k >> shift) & (radixBuckets - 1)
			dst[offs[d]] = k
			offs[d]++
		}
		src, dst = dst, src
	}
	sum := 0.0
	for i, k := range src {
		sum += float64(k) * float64(i+1)
	}
	return sum
}
