package workloads

import (
	"math"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/coremodel"
)

// cholesky implements a dense right-looking Cholesky factorization of a
// symmetric diagonally dominant matrix (the SPLASH-2 version factors
// sparse matrices; the dense kernel preserves the dependence structure:
// a pivot step, a column scale, and a trailing-submatrix update with
// barriers between them). Row ownership is interleaved.
//
// Scale is the matrix dimension.
func init() {
	register(Workload{
		Name:         "cholesky",
		Description:  "dense Cholesky; pivot/scale/update with barriers",
		DefaultScale: 48,
		Build:        buildCholesky,
		Native:       nativeCholesky,
	})
}

const (
	cholMatrix = iota
	cholN
	cholThreads
	cholWords
)

func buildCholesky(p Params) core.Program {
	work := cholWork
	main := func(t *core.Thread, arg uint64) {
		n := p.Scale
		stride := n * 8
		block := t.Malloc(cholWords * 8)
		mat := t.Malloc(arch.Addr(n * stride))
		g := lcg(555)
		// Symmetric, diagonally dominant: a[i][j] = a[j][i] in (0,1),
		// a[i][i] += n.
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				v := g.f64()
				if i == j {
					v += float64(n)
				}
				t.StoreF64(mat+arch.Addr(i*stride+j*8), v)
				if i != j {
					t.StoreF64(mat+arch.Addr(j*stride+i*8), v)
				}
			}
		}
		t.Store64(block+cholMatrix*8, uint64(mat))
		t.Store64(block+cholN*8, uint64(n))
		t.Store64(block+cholThreads*8, uint64(p.Threads))
		runWorkers(t, 1, block, p.Threads, work)
		markROI(t, p)
		sum := 0.0
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				sum += math.Abs(t.LoadF64(mat + arch.Addr(i*stride+j*8)))
			}
			t.Compute(coremodel.FP, 2*(i+1))
		}
		t.StoreF64(p.result(), sum)
	}
	return core.Program{Name: "cholesky", Funcs: []core.ThreadFunc{main, workerEntry(work)}}
}

func cholWork(t *core.Thread, base arch.Addr, idx int) {
	mat := arch.Addr(t.Load64(base + cholMatrix*8))
	n := int(t.Load64(base + cholN*8))
	threads := int(t.Load64(base + cholThreads*8))
	stride := n * 8
	bar := base + 1

	at := func(i, j int) arch.Addr { return mat + arch.Addr(i*stride+j*8) }
	for k := 0; k < n; k++ {
		// Pivot: the owner of row k takes the square root.
		if k%threads == idx {
			akk := t.LoadF64(at(k, k))
			t.StoreF64(at(k, k), math.Sqrt(akk))
			t.Compute(coremodel.FP, 15) // sqrt cost
		}
		t.BarrierWait(bar+arch.Addr(3*k), threads)
		// Scale: each owner divides its below-diagonal entries in column k.
		lkk := t.LoadF64(at(k, k))
		for i := k + 1; i < n; i++ {
			if i%threads != idx {
				continue
			}
			t.StoreF64(at(i, k), t.LoadF64(at(i, k))/lkk)
			t.Compute(coremodel.Div, 1)
		}
		t.BarrierWait(bar+arch.Addr(3*k+1), threads)
		// Update the trailing lower triangle with owned rows.
		for i := k + 1; i < n; i++ {
			if i%threads != idx {
				continue
			}
			lik := t.LoadF64(at(i, k))
			for j := k + 1; j <= i; j++ {
				ljk := t.LoadF64(at(j, k))
				t.StoreF64(at(i, j), t.LoadF64(at(i, j))-lik*ljk)
				t.Compute(coremodel.FP, 2)
			}
			t.Branch(true)
		}
		t.BarrierWait(bar+arch.Addr(3*k+2), threads)
	}
}

func nativeCholesky(p Params) float64 {
	n := p.Scale
	a := make([][]float64, n)
	g := lcg(555)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := g.f64()
			if i == j {
				v += float64(n)
			}
			a[i][j] = v
			a[j][i] = v
		}
	}
	for k := 0; k < n; k++ {
		a[k][k] = math.Sqrt(a[k][k])
		for i := k + 1; i < n; i++ {
			a[i][k] /= a[k][k]
		}
		for i := k + 1; i < n; i++ {
			for j := k + 1; j <= i; j++ {
				a[i][j] -= a[i][k] * a[j][k]
			}
		}
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum += math.Abs(a[i][j])
		}
	}
	return sum
}
