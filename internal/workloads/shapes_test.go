package workloads

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/stats"
)

// These tests pin the cross-workload behavioural claims the paper's
// evaluation rests on (§4.4, Figure 8): if a kernel rewrite ever destroys
// a sharing pattern, the claim fails here rather than silently skewing an
// experiment.

// fig8Cfg mirrors the Figure 8 memory system: no L1s, one L2 per tile.
func fig8Cfg(tiles, lineSize int) config.Config {
	cfg := config.Default()
	cfg.Tiles = tiles
	cfg.L1I = config.CacheConfig{Enabled: false}
	cfg.L1D = config.CacheConfig{Enabled: false}
	cfg.L2 = config.CacheConfig{Enabled: true, Size: 64 << 10, Assoc: 4, LineSize: lineSize, HitLatency: 8}
	return cfg
}

func totalsFor(t *testing.T, name string, threads int, cfg config.Config) stats.Totals {
	return totalsAt(t, name, threads, smallScale[name], cfg)
}

// totalsAt runs a workload at an explicit scale (some shape claims need a
// problem size that does not align with cache-line boundaries).
func totalsAt(t *testing.T, name string, threads, scale int, cfg config.Config) stats.Totals {
	t.Helper()
	w, ok := Get(name)
	if !ok {
		t.Fatalf("unknown workload %s", name)
	}
	cl, err := core.NewCluster(cfg, w.Build(Params{Threads: threads, Scale: scale}))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	rs, err := cl.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	return rs.Totals
}

func TestLuContiguousBeatsNonContiguous(t *testing.T) {
	// The contiguous allocation exists to avoid false sharing; at 64-byte
	// lines lu_cont must show none while lu_non_cont shows some.
	// n=20 gives 160-byte packed rows, deliberately not a line multiple,
	// so adjacent owners' rows share 64-byte lines in the non-contiguous
	// layout. (At n=24 the packed stride is 192 = 3 lines and even the
	// packed layout is accidentally aligned.)
	cont := totalsAt(t, "lu_cont", 4, 20, fig8Cfg(4, 64))
	nonc := totalsAt(t, "lu_non_cont", 4, 20, fig8Cfg(4, 64))
	if cont.MissBy[stats.MissFalseSharing] > 0 {
		t.Fatalf("lu_cont has %d false-sharing misses at 64B lines (padded rows should prevent them)",
			cont.MissBy[stats.MissFalseSharing])
	}
	if nonc.MissBy[stats.MissFalseSharing] == 0 {
		t.Fatal("lu_non_cont shows no false sharing; packed interleaved rows should")
	}
}

func TestRadixFalseSharingGrowsWithLineSize(t *testing.T) {
	// The Figure 8 radix claim: false sharing becomes significant once
	// the line size exceeds the scatter's write-interleaving granularity.
	// At 2048 keys over 4 workers each (worker, digit) run is ~16 bytes,
	// so the knee sits at the 32->64 byte transition here (the paper's
	// 32-thread simsmall run puts it at 256 bytes; the knee position is
	// keys/threads-dependent, the existence of the knee is the claim).
	small := totalsAt(t, "radix", 4, 11, fig8Cfg(4, 32))
	big := totalsAt(t, "radix", 4, 11, fig8Cfg(4, 64))
	rateSmall := float64(small.MissBy[stats.MissFalseSharing]) / float64(small.Loads+small.Stores)
	rateBig := float64(big.MissBy[stats.MissFalseSharing]) / float64(big.Loads+big.Stores)
	if rateBig <= rateSmall {
		t.Fatalf("radix false-sharing rate did not grow with line size: %.4f%% -> %.4f%%",
			100*rateSmall, 100*rateBig)
	}
}

func TestPerfectLocalityMissRateDropsWithLineSize(t *testing.T) {
	// fft and lu_cont have perfect spatial locality: doubling the line
	// size should roughly halve the miss rate (paper: "drop linearly").
	// Measured single-threaded: the claim is about per-thread spatial
	// locality, and multi-threaded runs add lax-scheduling-dependent
	// sharing misses that do not shrink with the line size (under -race
	// the altered interleaving pushed the 4-thread rate over the bound).
	for _, name := range []string{"fft", "lu_cont"} {
		at32 := totalsFor(t, name, 1, fig8Cfg(4, 32))
		at128 := totalsFor(t, name, 1, fig8Cfg(4, 128))
		r32 := at32.MissRate()
		r128 := at128.MissRate()
		if r128 >= r32 {
			t.Fatalf("%s: miss rate did not drop with line size (%.4f -> %.4f)", name, r32, r128)
		}
		// 4x larger lines should cut the rate by at least 2x for these.
		if r128 > r32/2 {
			t.Fatalf("%s: drop too shallow for perfect locality: %.4f -> %.4f", name, r32, r128)
		}
	}
}

func TestWaterSpatialSharesLessThanNsquared(t *testing.T) {
	// The cell decomposition reads only neighbouring molecules; the n²
	// kernel reads everyone. Sharing misses per owned molecule must be
	// lower for the spatial version.
	cfg := fig8Cfg(4, 64)
	n2 := totalsFor(t, "water_nsquared", 4, cfg)
	sp := totalsFor(t, "water_spatial", 4, cfg)
	shareN2 := float64(n2.MissBy[stats.MissTrueSharing]) / float64(n2.Loads)
	shareSp := float64(sp.MissBy[stats.MissTrueSharing]) / float64(sp.Loads)
	if shareSp >= shareN2 {
		t.Fatalf("spatial true-sharing rate (%.5f) not below n^2 (%.5f)", shareSp, shareN2)
	}
}

func TestFmmComputeDominates(t *testing.T) {
	// fmm is the paper's best-scaling benchmark because of its
	// compute-to-communication ratio; pin that its instruction count per
	// L2 miss is the highest of a representative set.
	cfg := fig8Cfg(4, 64)
	ratios := map[string]float64{}
	for _, name := range []string{"fmm", "radix", "ocean_cont"} {
		tot := totalsFor(t, name, 4, cfg)
		misses := float64(tot.L2Misses)
		if misses == 0 {
			misses = 1
		}
		ratios[name] = float64(tot.Instructions) / misses
	}
	if ratios["fmm"] <= ratios["radix"] || ratios["fmm"] <= ratios["ocean_cont"] {
		t.Fatalf("fmm not compute-dominant: %v", ratios)
	}
}

func TestBlackscholesGlobalsSuffersUnderLimitedDirectory(t *testing.T) {
	// The Figure 9 mechanism: with fewer pointers than sharers, the
	// read-only globals line keeps bouncing — invalidation count must be
	// far higher under Dir_1NB than full-map.
	full := fig8Cfg(8, 64)
	limited := fig8Cfg(8, 64)
	limited.Coherence = config.CoherenceConfig{Kind: config.LimitedNB, DirPointers: 1, DirLatency: 10}
	invFull := totalsFor(t, "blackscholes", 8, full).InvSent
	invLim := totalsFor(t, "blackscholes", 8, limited).InvSent
	if invLim < invFull+100 {
		t.Fatalf("Dir_1NB invalidations (%d) not clearly above full-map (%d)", invLim, invFull)
	}
}
