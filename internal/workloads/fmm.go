package workloads

import (
	"math"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/coremodel"
)

// fmm implements the communication skeleton of the SPLASH-2 fast multipole
// method: particles grouped into clusters, an upward pass computing
// cluster multipole summaries (here, centers of mass), and a force pass
// where near-field interactions are evaluated exactly within a cluster
// and far-field interactions through other clusters' summaries. Almost
// all work is local O(m²) arithmetic on owned particles — the high
// compute-to-communication ratio that makes fmm the best-scaling SPLASH
// benchmark in Table 2 (41x slowdown on 8 machines).
//
// Scale is the particle count; clusters hold 16 particles each.
func init() {
	register(Workload{
		Name:         "fmm",
		Description:  "fast multipole skeleton; compute-heavy near field",
		DefaultScale: 256,
		Build:        buildFMM,
		Native:       nativeFMM,
	})
}

const (
	fmmParticles = iota
	fmmN
	fmmThreads
	fmmSummaries
	fmmClusters
	fmmWords
)

// Particle record (32 bytes): x, y, fx, fy.
const particleStride = 32

// Cluster summary record (64 bytes, line-padded): cx, cy, mass.
const summaryStride = 64

// fmmClusterSize is the number of particles per cluster.
const fmmClusterSize = 16

func buildFMM(p Params) core.Program {
	work := fmmWork
	main := func(t *core.Thread, arg uint64) {
		n := p.Scale - p.Scale%fmmClusterSize
		if n == 0 {
			n = fmmClusterSize
		}
		clusters := n / fmmClusterSize
		block := t.Malloc(fmmWords * 8)
		parts := t.Malloc(arch.Addr(n * particleStride))
		sums := t.Malloc(arch.Addr(clusters * summaryStride))
		g := lcg(161803)
		for i := 0; i < n; i++ {
			rec := parts + arch.Addr(i*particleStride)
			c := i / fmmClusterSize
			// Particles of a cluster are spatially grouped.
			baseX := float64(c%8) / 8
			baseY := float64(c/8) / 8
			t.StoreF64(rec+0, baseX+g.f64()/8)
			t.StoreF64(rec+8, baseY+g.f64()/8)
			t.StoreF64(rec+16, 0)
			t.StoreF64(rec+24, 0)
		}
		t.Store64(block+fmmParticles*8, uint64(parts))
		t.Store64(block+fmmN*8, uint64(n))
		t.Store64(block+fmmThreads*8, uint64(p.Threads))
		t.Store64(block+fmmSummaries*8, uint64(sums))
		t.Store64(block+fmmClusters*8, uint64(clusters))
		runWorkers(t, 1, block, p.Threads, work)
		markROI(t, p)
		sum := 0.0
		for i := 0; i < n; i++ {
			rec := parts + arch.Addr(i*particleStride)
			sum += math.Abs(t.LoadF64(rec+16)) + math.Abs(t.LoadF64(rec+24))
			t.Compute(coremodel.FP, 3)
		}
		t.StoreF64(p.result(), sum)
	}
	return core.Program{Name: "fmm", Funcs: []core.ThreadFunc{main, workerEntry(work)}}
}

func fmmWork(t *core.Thread, base arch.Addr, idx int) {
	parts := arch.Addr(t.Load64(base + fmmParticles*8))
	threads := int(t.Load64(base + fmmThreads*8))
	sums := arch.Addr(t.Load64(base + fmmSummaries*8))
	clusters := int(t.Load64(base + fmmClusters*8))
	bar := base + 1
	clo, chi := span(clusters, threads, idx)

	// Upward pass: summarize owned clusters.
	for c := clo; c < chi; c++ {
		var sx, sy float64
		for k := 0; k < fmmClusterSize; k++ {
			rec := parts + arch.Addr((c*fmmClusterSize+k)*particleStride)
			sx += t.LoadF64(rec + 0)
			sy += t.LoadF64(rec + 8)
			t.Compute(coremodel.FP, 2)
		}
		s := sums + arch.Addr(c*summaryStride)
		t.StoreF64(s+0, sx/fmmClusterSize)
		t.StoreF64(s+8, sy/fmmClusterSize)
		t.StoreF64(s+16, fmmClusterSize)
		t.Compute(coremodel.FP, 2)
	}
	t.BarrierWait(bar, threads)

	// Force pass: exact near field within the cluster, summaries afar.
	for c := clo; c < chi; c++ {
		for k := 0; k < fmmClusterSize; k++ {
			i := c*fmmClusterSize + k
			rec := parts + arch.Addr(i*particleStride)
			xi := t.LoadF64(rec + 0)
			yi := t.LoadF64(rec + 8)
			var fx, fy float64
			for k2 := 0; k2 < fmmClusterSize; k2++ {
				if k2 == k {
					continue
				}
				rj := parts + arch.Addr((c*fmmClusterSize+k2)*particleStride)
				dx := t.LoadF64(rj+0) - xi
				dy := t.LoadF64(rj+8) - yi
				d2 := dx*dx + dy*dy + 1e-6
				f := 1 / (d2 * math.Sqrt(d2))
				fx += dx * f
				fy += dy * f
				t.Compute(coremodel.FP, 14)
			}
			for c2 := 0; c2 < clusters; c2++ {
				if c2 == c {
					continue
				}
				s := sums + arch.Addr(c2*summaryStride)
				dx := t.LoadF64(s+0) - xi
				dy := t.LoadF64(s+8) - yi
				m := t.LoadF64(s + 16)
				d2 := dx*dx + dy*dy + 1e-6
				f := m / (d2 * math.Sqrt(d2))
				fx += dx * f
				fy += dy * f
				t.Compute(coremodel.FP, 15)
			}
			t.StoreF64(rec+16, fx)
			t.StoreF64(rec+24, fy)
			t.Branch(true)
		}
	}
	t.BarrierWait(bar+1, threads)
}

func nativeFMM(p Params) float64 {
	n := p.Scale - p.Scale%fmmClusterSize
	if n == 0 {
		n = fmmClusterSize
	}
	clusters := n / fmmClusterSize
	x := make([]float64, n)
	y := make([]float64, n)
	g := lcg(161803)
	for i := 0; i < n; i++ {
		c := i / fmmClusterSize
		x[i] = float64(c%8)/8 + g.f64()/8
		y[i] = float64(c/8)/8 + g.f64()/8
	}
	sx := make([]float64, clusters)
	sy := make([]float64, clusters)
	for c := 0; c < clusters; c++ {
		for k := 0; k < fmmClusterSize; k++ {
			sx[c] += x[c*fmmClusterSize+k]
			sy[c] += y[c*fmmClusterSize+k]
		}
		sx[c] /= fmmClusterSize
		sy[c] /= fmmClusterSize
	}
	sum := 0.0
	for c := 0; c < clusters; c++ {
		for k := 0; k < fmmClusterSize; k++ {
			i := c*fmmClusterSize + k
			var fx, fy float64
			for k2 := 0; k2 < fmmClusterSize; k2++ {
				if k2 == k {
					continue
				}
				j := c*fmmClusterSize + k2
				dx, dy := x[j]-x[i], y[j]-y[i]
				d2 := dx*dx + dy*dy + 1e-6
				f := 1 / (d2 * math.Sqrt(d2))
				fx += dx * f
				fy += dy * f
			}
			for c2 := 0; c2 < clusters; c2++ {
				if c2 == c {
					continue
				}
				dx, dy := sx[c2]-x[i], sy[c2]-y[i]
				d2 := dx*dx + dy*dy + 1e-6
				f := fmmClusterSize / (d2 * math.Sqrt(d2))
				fx += dx * f
				fy += dy * f
			}
			sum += math.Abs(fx) + math.Abs(fy)
		}
	}
	return sum
}
