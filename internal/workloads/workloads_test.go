package workloads

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/core"
)

// smallScale gives per-workload problem sizes small enough for unit tests.
var smallScale = map[string]int{
	"fft":            8, // 256 points
	"lu_cont":        24,
	"lu_non_cont":    24,
	"ocean_cont":     24,
	"ocean_non_cont": 24,
	"radix":          9, // 512 keys
	"cholesky":       20,
	"fmm":            64,
	"water_nsquared": 32,
	"water_spatial":  48,
	"barnes":         48,
	"matmul":         16,
	"blackscholes":   8, // 256 options
}

func testCfg(tiles int) config.Config {
	cfg := config.Default()
	cfg.Tiles = tiles
	cfg.L1I = config.CacheConfig{Enabled: false}
	cfg.L1D = config.CacheConfig{Enabled: true, Size: 4 << 10, Assoc: 2, LineSize: 64, HitLatency: 1}
	cfg.L2 = config.CacheConfig{Enabled: true, Size: 64 << 10, Assoc: 4, LineSize: 64, HitLatency: 8}
	return cfg
}

// runWorkload executes one workload under simulation and returns its
// checksum plus run statistics.
func runWorkload(t *testing.T, name string, threads int, cfg config.Config) (float64, *core.RunStats) {
	t.Helper()
	w, ok := Get(name)
	if !ok {
		t.Fatalf("workload %q not registered", name)
	}
	p := Params{Threads: threads, Scale: smallScale[name]}
	cl, err := core.NewCluster(cfg, w.Build(p))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	rs, err := cl.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	var buf [8]byte
	cl.Peek(p.result(), buf[:])
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), rs
}

func TestRegistryComplete(t *testing.T) {
	for _, name := range SplashNames() {
		if _, ok := Get(name); !ok {
			t.Errorf("SPLASH workload %q missing", name)
		}
	}
	for _, name := range []string{"matmul", "blackscholes"} {
		if _, ok := Get(name); !ok {
			t.Errorf("workload %q missing", name)
		}
	}
	if len(Names()) < 13 {
		t.Fatalf("only %d workloads registered", len(Names()))
	}
	for _, n := range Names() {
		w, _ := Get(n)
		if w.Build == nil || w.Native == nil || w.DefaultScale <= 0 || w.Description == "" {
			t.Errorf("workload %q incomplete", n)
		}
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("bogus lookup succeeded")
	}
}

// TestSimulationMatchesNative is the functional oracle: each workload's
// simulated checksum (flowing entirely through the coherence protocol)
// must match its native Go implementation.
func TestSimulationMatchesNative(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, _ := Get(name)
			p := Params{Threads: 4, Scale: smallScale[name]}
			want := w.Native(p)
			got, rs := runWorkload(t, name, 4, testCfg(8))
			if !Close(got, want) {
				t.Fatalf("simulated checksum %g != native %g", got, want)
			}
			if rs.SimulatedCycles <= 0 {
				t.Fatal("no simulated time")
			}
			if rs.Totals.Loads == 0 {
				t.Fatal("no loads recorded")
			}
		})
	}
}

func TestWorkloadsSingleThread(t *testing.T) {
	// Threads == 1 must work (no spawns at all).
	for _, name := range []string{"fft", "radix", "matmul"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, _ := Get(name)
			p := Params{Threads: 1, Scale: smallScale[name]}
			want := w.Native(p)
			got, _ := runWorkload(t, name, 1, testCfg(2))
			if !Close(got, want) {
				t.Fatalf("single-thread checksum %g != native %g", got, want)
			}
		})
	}
}

func TestWorkloadsAcrossProcesses(t *testing.T) {
	// Distribution across simulated host processes must not change
	// results (the single-process illusion).
	for _, name := range []string{"radix", "ocean_cont", "water_nsquared"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, _ := Get(name)
			cfg := testCfg(8)
			cfg.Processes = 4
			p := Params{Threads: 4, Scale: smallScale[name]}
			want := w.Native(p)
			got, _ := runWorkload(t, name, 4, cfg)
			if !Close(got, want) {
				t.Fatalf("4-process checksum %g != native %g", got, want)
			}
		})
	}
}

func TestWorkloadsUnderAllProtocols(t *testing.T) {
	// Swapping the coherence protocol must never change answers — only
	// timing. Dir_1NB is the most hostile setting (constant pointer
	// reclaim); this is the regression test for the stale-sharer bug the
	// limited directory once had.
	for _, kind := range []config.CoherenceConfig{
		{Kind: config.LimitedNB, DirPointers: 1, DirLatency: 10},
		{Kind: config.LimitLESS, DirPointers: 2, TrapLatency: 100, DirLatency: 10},
	} {
		kind := kind
		for _, name := range []string{"radix", "ocean_cont"} {
			name := name
			t.Run(kind.Kind.String()+"/"+name, func(t *testing.T) {
				t.Parallel()
				w, _ := Get(name)
				p := Params{Threads: 4, Scale: smallScale[name]}
				want := w.Native(p)
				cfg := testCfg(8)
				cfg.Coherence = kind
				got, _ := runWorkload(t, name, 4, cfg)
				if !Close(got, want) {
					t.Fatalf("%v checksum %g != native %g", kind.Kind, got, want)
				}
			})
		}
	}
}

func TestThreadCountInvariance(t *testing.T) {
	// The computed answer must not depend on the worker count.
	for _, name := range []string{"lu_cont", "fft"} {
		w, _ := Get(name)
		base := w.Native(Params{Threads: 1, Scale: smallScale[name]})
		for _, threads := range []int{2, 4} {
			got, _ := runWorkload(t, name, threads, testCfg(8))
			if !Close(got, base) {
				t.Fatalf("%s with %d threads: %g != %g", name, threads, got, base)
			}
		}
	}
}

func TestSpanPartition(t *testing.T) {
	for _, tc := range []struct{ n, threads int }{{10, 3}, {7, 7}, {5, 8}, {100, 1}} {
		covered := make([]bool, tc.n)
		for w := 0; w < tc.threads; w++ {
			lo, hi := span(tc.n, tc.threads, w)
			for i := lo; i < hi; i++ {
				if covered[i] {
					t.Fatalf("n=%d threads=%d: index %d covered twice", tc.n, tc.threads, i)
				}
				covered[i] = true
			}
		}
		for i, c := range covered {
			if !c {
				t.Fatalf("n=%d threads=%d: index %d uncovered", tc.n, tc.threads, i)
			}
		}
	}
}

func TestPackUnpack(t *testing.T) {
	base := arch.Addr(0x1234_5678_9ABC)
	for _, idx := range []int{0, 1, 1023} {
		b, i := unpack(pack(base, idx))
		if b != base || i != idx {
			t.Fatalf("pack/unpack(%v, %d) = (%v, %d)", base, idx, b, i)
		}
	}
}

func TestLCGDeterminism(t *testing.T) {
	a, b := lcg(42), lcg(42)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("lcg not deterministic")
		}
	}
	g := lcg(7)
	for i := 0; i < 1000; i++ {
		v := g.f64()
		if v < 0 || v >= 1 {
			t.Fatalf("f64 out of range: %v", v)
		}
		if n := g.intn(10); n < 0 || n >= 10 {
			t.Fatalf("intn out of range: %d", n)
		}
	}
}

func TestCloseTolerance(t *testing.T) {
	if !Close(1.0, 1.0) {
		t.Fatal("identical values not close")
	}
	if !Close(1.0, 1.0+1e-12) {
		t.Fatal("tiny reduction reordering rejected")
	}
	if Close(1.0, 1.001) {
		t.Fatal("materially different values accepted")
	}
	if !Close(0, 0) {
		t.Fatal("zeros not close")
	}
}
