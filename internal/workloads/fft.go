package workloads

import (
	"math"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/coremodel"
)

// fft is the SPLASH-2 FFT kernel: a radix-2 decimation-in-time transform
// over n complex points stored contiguously (16 bytes per point). The
// contiguous layout gives the perfect spatial locality the paper cites for
// fft in the Figure 8 study: miss rates drop linearly with line size.
// Communication is the all-to-all of the bit-reversal and the
// cross-owner reads of the butterfly stages, with a barrier per stage.
//
// Scale is log2 of the point count.
func init() {
	register(Workload{
		Name:         "fft",
		Description:  "radix-2 FFT; contiguous complex data, barrier per stage",
		DefaultScale: 10,
		Build:        buildFFT,
		Native:       nativeFFT,
	})
}

// fft parameter block layout (8-byte words).
const (
	fftData = iota // data array base
	fftN           // point count
	fftThreads
	fftWords
)

func buildFFT(p Params) core.Program {
	work := fftWork
	main := func(t *core.Thread, arg uint64) {
		n := 1 << p.Scale
		block := t.Malloc(fftWords * 8)
		data := t.Malloc(arch.Addr(n * 16))
		g := lcg(12345)
		for i := 0; i < n; i++ {
			t.StoreF64(data+arch.Addr(i*16), g.f64()*2-1)
			t.StoreF64(data+arch.Addr(i*16+8), g.f64()*2-1)
			t.Compute(coremodel.Arith, 2)
		}
		t.Store64(block+fftData*8, uint64(data))
		t.Store64(block+fftN*8, uint64(n))
		t.Store64(block+fftThreads*8, uint64(p.Threads))
		runWorkers(t, 1, block, p.Threads, work)
		markROI(t, p)
		sum := 0.0
		for i := 0; i < n; i++ {
			re := t.LoadF64(data + arch.Addr(i*16))
			im := t.LoadF64(data + arch.Addr(i*16+8))
			sum += math.Abs(re) + math.Abs(im)
			t.Compute(coremodel.FP, 3)
		}
		t.StoreF64(p.result(), sum)
	}
	return core.Program{Name: "fft", Funcs: []core.ThreadFunc{main, workerEntry(work)}}
}

// bitrev reverses the low bits bits of i.
func bitrev(i, bits int) int {
	r := 0
	for b := 0; b < bits; b++ {
		r = r<<1 | (i>>b)&1
	}
	return r
}

func fftWork(t *core.Thread, base arch.Addr, idx int) {
	data := arch.Addr(t.Load64(base + fftData*8))
	n := int(t.Load64(base + fftN*8))
	threads := int(t.Load64(base + fftThreads*8))
	bar := base + 1 // barrier key (no storage behind it)
	logn := 0
	for 1<<logn < n {
		logn++
	}

	// Bit-reversal permutation: the owner of the smaller index swaps.
	lo, hi := span(n, threads, idx)
	for i := lo; i < hi; i++ {
		j := bitrev(i, logn)
		t.Compute(coremodel.Arith, 4)
		if j > i {
			ar := t.LoadF64(data + arch.Addr(i*16))
			ai := t.LoadF64(data + arch.Addr(i*16+8))
			br := t.LoadF64(data + arch.Addr(j*16))
			bi := t.LoadF64(data + arch.Addr(j*16+8))
			t.StoreF64(data+arch.Addr(i*16), br)
			t.StoreF64(data+arch.Addr(i*16+8), bi)
			t.StoreF64(data+arch.Addr(j*16), ar)
			t.StoreF64(data+arch.Addr(j*16+8), ai)
		}
	}
	t.BarrierWait(bar, threads)

	// log n butterfly stages, each followed by a barrier.
	for s := 1; s <= logn; s++ {
		m := 1 << s
		half := m >> 1
		blo, bhi := span(n/2, threads, idx)
		for b := blo; b < bhi; b++ {
			grp := b / half
			k := b % half
			i1 := grp*m + k
			i2 := i1 + half
			ang := -2 * math.Pi * float64(k) / float64(m)
			wr, wi := math.Cos(ang), math.Sin(ang)
			t.Compute(coremodel.FP, 8) // twiddle computation
			x1r := t.LoadF64(data + arch.Addr(i1*16))
			x1i := t.LoadF64(data + arch.Addr(i1*16+8))
			x2r := t.LoadF64(data + arch.Addr(i2*16))
			x2i := t.LoadF64(data + arch.Addr(i2*16+8))
			tr := wr*x2r - wi*x2i
			ti := wr*x2i + wi*x2r
			t.Compute(coremodel.FP, 10)
			t.StoreF64(data+arch.Addr(i1*16), x1r+tr)
			t.StoreF64(data+arch.Addr(i1*16+8), x1i+ti)
			t.StoreF64(data+arch.Addr(i2*16), x1r-tr)
			t.StoreF64(data+arch.Addr(i2*16+8), x1i-ti)
		}
		t.BarrierWait(bar+arch.Addr(s), threads)
	}
}

func nativeFFT(p Params) float64 {
	n := 1 << p.Scale
	re := make([]float64, n)
	im := make([]float64, n)
	g := lcg(12345)
	for i := 0; i < n; i++ {
		re[i] = g.f64()*2 - 1
		im[i] = g.f64()*2 - 1
	}
	logn := 0
	for 1<<logn < n {
		logn++
	}
	for i := 0; i < n; i++ {
		j := bitrev(i, logn)
		if j > i {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for s := 1; s <= logn; s++ {
		m := 1 << s
		half := m >> 1
		for b := 0; b < n/2; b++ {
			grp := b / half
			k := b % half
			i1 := grp*m + k
			i2 := i1 + half
			ang := -2 * math.Pi * float64(k) / float64(m)
			wr, wi := math.Cos(ang), math.Sin(ang)
			tr := wr*re[i2] - wi*im[i2]
			ti := wr*im[i2] + wi*re[i2]
			re[i1], im[i1], re[i2], im[i2] = re[i1]+tr, im[i1]+ti, re[i1]-tr, im[i1]-ti
		}
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Abs(re[i]) + math.Abs(im[i])
	}
	return sum
}
