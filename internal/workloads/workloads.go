// Package workloads re-implements the benchmarks of the paper's evaluation
// against the Graphite thread API: ten SPLASH-2 kernels (§4.2, §4.3, §4.4),
// the 1024-thread matrix-multiply of Figure 5, and PARSEC blackscholes
// (Figure 9). The kernels reproduce the originals' algorithmic structure,
// data layout, sharing patterns, and compute-to-communication ratios —
// the properties the evaluation actually depends on — rather than their
// binary instruction streams (see DESIGN.md, substitutions).
//
// Every workload has a Native variant: the same algorithm on plain Go
// slices, used both as the slowdown baseline of Table 2 and as a
// functional oracle — the simulated run stores a checksum into simulated
// memory, and tests compare it with the native checksum.
package workloads

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/arch"
	"repro/internal/core"
)

// DefaultResultAddr is where workload mains store their checksum (the
// base of the static data segment in the default configuration).
const DefaultResultAddr arch.Addr = 0x1_0000

// Params configures one workload instance.
type Params struct {
	// Threads is the number of worker threads, including the main thread
	// as worker 0. It must be at least 1 and at most the target tiles.
	Threads int
	// Scale is the problem-size knob; its meaning is workload-specific
	// (array length exponent, matrix dimension, particle count, ...).
	Scale int
	// ResultAddr is where the checksum is stored (DefaultResultAddr if 0).
	ResultAddr arch.Addr
}

func (p Params) result() arch.Addr {
	if p.ResultAddr == 0 {
		return DefaultResultAddr
	}
	return p.ResultAddr
}

// ROIAddr is where a workload's main thread records the simulated time at
// which its parallel region of interest ended: right after the final
// join, before the sequential checksum epilogue. Experiments that report
// simulated application run-time read this (standard SPLASH/PARSEC
// methodology measures the parallel region).
func (p Params) ROIAddr() arch.Addr { return p.result() + 8 }

// markROI records the region-of-interest end time. Every workload main
// calls it immediately after its workers are joined.
func markROI(t *core.Thread, p Params) {
	t.Store64(p.ROIAddr(), uint64(t.Now()))
}

// Workload is one registered benchmark.
type Workload struct {
	// Name is the registry key (matches the paper's naming).
	Name string
	// Description summarizes the kernel and its sharing pattern.
	Description string
	// DefaultScale is a sensible Scale for experiments.
	DefaultScale int
	// Build constructs the simulated program.
	Build func(p Params) core.Program
	// Native runs the same computation natively, returning its checksum.
	Native func(p Params) float64
}

var registry = map[string]Workload{}

func register(w Workload) {
	if _, dup := registry[w.Name]; dup {
		panic("workloads: duplicate " + w.Name)
	}
	registry[w.Name] = w
}

// Get looks a workload up by name.
func Get(name string) (Workload, bool) {
	w, ok := registry[name]
	return w, ok
}

// Names returns all registered workload names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	//graphite:maporder drained into sort.Strings below; iteration order cannot survive the sort
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SplashNames returns the ten SPLASH-2 kernels of Table 2, in the paper's
// order.
func SplashNames() []string {
	return []string{
		"cholesky", "fft", "fmm", "lu_cont", "lu_non_cont",
		"ocean_cont", "ocean_non_cont", "radix",
		"water_nsquared", "water_spatial",
	}
}

// quickScale and fullScale are the per-workload problem sizes of the
// "quick" (seconds, CI) and "full" (approaching the paper's sizes) run
// sizes; "standard" uses DefaultScale. The experiments package and the
// scenario runner both resolve sizes through ScaleFor, so a table
// regenerated bespoke and the same table expressed as a scenario agree.
var quickScale = map[string]int{
	"fft": 8, "lu_cont": 24, "lu_non_cont": 24,
	"ocean_cont": 24, "ocean_non_cont": 24, "radix": 9,
	"cholesky": 20, "fmm": 64, "water_nsquared": 32,
	"water_spatial": 48, "barnes": 48, "matmul": 16,
	"blackscholes": 8,
}

var fullScale = map[string]int{
	"fft": 12, "lu_cont": 128, "lu_non_cont": 128,
	"ocean_cont": 128, "ocean_non_cont": 128, "radix": 14,
	"cholesky": 96, "fmm": 512, "water_nsquared": 192,
	"water_spatial": 256, "barnes": 256, "matmul": 96,
	"blackscholes": 13,
}

// ScaleFor returns the Scale of a workload at a named run size
// ("quick", "standard", or "full").
func ScaleFor(name, size string) (int, error) {
	w, ok := registry[name]
	if !ok {
		return 0, fmt.Errorf("workloads: unknown workload %q", name)
	}
	switch size {
	case "quick":
		if s, ok := quickScale[name]; ok {
			return s, nil
		}
		return w.DefaultScale, nil
	case "standard":
		return w.DefaultScale, nil
	case "full":
		if s, ok := fullScale[name]; ok {
			return s, nil
		}
		return w.DefaultScale, nil
	default:
		return 0, fmt.Errorf("workloads: unknown size %q (quick|standard|full)", size)
	}
}

// Close reports whether two checksums agree within the tolerance expected
// from reordered parallel floating-point reductions.
func Close(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

// pack encodes a parameter-block address and worker index into a spawn
// argument. Addresses fit in 48 bits; indexes in 16.
func pack(base arch.Addr, idx int) uint64 {
	return uint64(base) | uint64(idx)<<48
}

// unpack decodes a spawn argument.
func unpack(arg uint64) (arch.Addr, int) {
	return arch.Addr(arg & 0xFFFF_FFFF_FFFF), int(arg >> 48)
}

// workFunc is the body shared by the main thread (as worker 0) and
// spawned workers.
type workFunc func(t *core.Thread, base arch.Addr, idx int)

// runWorkers executes work on Threads workers: the calling main thread is
// worker 0; the rest are spawned on free tiles and joined before return.
func runWorkers(t *core.Thread, fnIdx int, base arch.Addr, threads int, work workFunc) {
	tids := make([]arch.ThreadID, 0, threads-1)
	for i := 1; i < threads; i++ {
		tid := t.Spawn(fnIdx, pack(base, i))
		if tid == arch.InvalidThread {
			panic(fmt.Sprintf("workloads: no free tile for worker %d", i))
		}
		tids = append(tids, tid)
	}
	work(t, base, 0)
	for _, tid := range tids {
		t.Join(tid)
	}
}

// workerEntry adapts a workFunc into a spawnable ThreadFunc.
func workerEntry(work workFunc) core.ThreadFunc {
	return func(t *core.Thread, arg uint64) {
		base, idx := unpack(arg)
		work(t, base, idx)
	}
}

// span splits n items across threads, returning worker idx's half-open
// range. Remainders go to the low-numbered workers.
func span(n, threads, idx int) (lo, hi int) {
	per := n / threads
	rem := n % threads
	lo = idx*per + min(idx, rem)
	hi = lo + per
	if idx < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// lcg is the deterministic generator used to initialize workload data,
// identical in simulated and native variants.
type lcg uint64

func (g *lcg) next() uint64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return uint64(*g)
}

// f64 returns a float in [0, 1).
func (g *lcg) f64() float64 {
	return float64(g.next()>>11) / (1 << 53)
}

// intn returns an int in [0, n).
func (g *lcg) intn(n int) int {
	return int(g.next() % uint64(n))
}
