package workloads

import (
	"math"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/coremodel"
)

// water implements the communication skeletons of the two SPLASH-2 water
// codes. Molecules are 64-byte records (position and velocity) owned by
// one worker each; owners write their own records and read others' —
// the ownership pattern whose true-sharing misses fall and false-sharing
// misses rise with line size in Figure 8 (larger lines cover a whole
// record, but pack neighbouring owners' records together).
//
//   - water_nsquared: every molecule interacts with every other (O(m²)
//     force phase, all-to-all read sharing);
//   - water_spatial: molecules are binned into a uniform cell grid built
//     by the main thread, and interact only within neighbouring cells —
//     far less remote traffic for the same physics.
//
// Scale is the molecule count.
func init() {
	register(Workload{
		Name:         "water_nsquared",
		Description:  "O(m^2) molecular dynamics; all-to-all position reads",
		DefaultScale: 96,
		Build:        func(p Params) core.Program { return buildWater(p, false) },
		Native:       func(p Params) float64 { return nativeWater(p, false) },
	})
	register(Workload{
		Name:         "water_spatial",
		Description:  "cell-list molecular dynamics; neighbour-only reads",
		DefaultScale: 128,
		Build:        func(p Params) core.Program { return buildWater(p, true) },
		Native:       func(p Params) float64 { return nativeWater(p, true) },
	})
}

const (
	waterMol = iota // molecule records base
	waterM          // molecule count
	waterThreads
	waterCells    // cell index array base (spatial only)
	waterCellDim  // cells per axis (spatial only)
	waterCellList // per-cell molecule lists base (spatial only)
	waterWords
)

// Molecule record layout (64 bytes): x, y, z, vx, vy, vz, 2 words pad.
const molStride = 64

// waterSteps is the number of time steps.
const waterSteps = 2

// waterDT is the integration step.
const waterDT = 0.001

// waterForce computes the pairwise interaction (a softened inverse-square
// attraction; the skeleton of the physics, not the SST2 potential).
func waterForce(dx, dy, dz float64) (fx, fy, fz float64) {
	r2 := dx*dx + dy*dy + dz*dz + 0.01
	inv := 1 / (r2 * math.Sqrt(r2))
	return dx * inv, dy * inv, dz * inv
}

func buildWater(p Params, spatial bool) core.Program {
	work := waterWork
	name := "water_nsquared"
	if spatial {
		name = "water_spatial"
	}
	main := func(t *core.Thread, arg uint64) {
		m := p.Scale
		block := t.Malloc(waterWords * 8)
		mol := t.Malloc(arch.Addr(m * molStride))
		g := lcg(31337)
		for i := 0; i < m; i++ {
			rec := mol + arch.Addr(i*molStride)
			t.StoreF64(rec+0, g.f64())
			t.StoreF64(rec+8, g.f64())
			t.StoreF64(rec+16, g.f64())
			t.StoreF64(rec+24, 0)
			t.StoreF64(rec+32, 0)
			t.StoreF64(rec+40, 0)
		}
		t.Store64(block+waterMol*8, uint64(mol))
		t.Store64(block+waterM*8, uint64(m))
		t.Store64(block+waterThreads*8, uint64(p.Threads))
		if spatial {
			// Bin molecules into a cellDim³ grid; each cell's member list
			// is a fixed-capacity slot array built sequentially by main.
			cellDim := 3
			cells := cellDim * cellDim * cellDim
			capPer := m // worst case capacity per cell
			counts := t.Malloc(arch.Addr(cells * 8))
			lists := t.Malloc(arch.Addr(cells * capPer * 8))
			for c := 0; c < cells; c++ {
				t.Store64(counts+arch.Addr(c*8), 0)
			}
			for i := 0; i < m; i++ {
				rec := mol + arch.Addr(i*molStride)
				x := t.LoadF64(rec + 0)
				y := t.LoadF64(rec + 8)
				z := t.LoadF64(rec + 16)
				c := cellOf(x, y, z, cellDim)
				t.Compute(coremodel.FP, 6)
				cnt := t.Load64(counts + arch.Addr(c*8))
				t.Store64(lists+arch.Addr((c*capPer+int(cnt))*8), uint64(i))
				t.Store64(counts+arch.Addr(c*8), cnt+1)
			}
			t.Store64(block+waterCells*8, uint64(counts))
			t.Store64(block+waterCellDim*8, uint64(cellDim))
			t.Store64(block+waterCellList*8, uint64(lists))
		} else {
			t.Store64(block+waterCellDim*8, 0)
		}
		runWorkers(t, 1, block, p.Threads, work)
		markROI(t, p)
		sum := 0.0
		for i := 0; i < m; i++ {
			rec := mol + arch.Addr(i*molStride)
			sum += t.LoadF64(rec+0) + t.LoadF64(rec+8) + t.LoadF64(rec+16)
			t.Compute(coremodel.FP, 3)
		}
		t.StoreF64(p.result(), sum)
	}
	return core.Program{Name: name, Funcs: []core.ThreadFunc{main, workerEntry(work)}}
}

func cellOf(x, y, z float64, dim int) int {
	cx := int(x * float64(dim))
	cy := int(y * float64(dim))
	cz := int(z * float64(dim))
	clampDim := func(v int) int {
		if v < 0 {
			return 0
		}
		if v >= dim {
			return dim - 1
		}
		return v
	}
	return (clampDim(cx)*dim+clampDim(cy))*dim + clampDim(cz)
}

func waterWork(t *core.Thread, base arch.Addr, idx int) {
	mol := arch.Addr(t.Load64(base + waterMol*8))
	m := int(t.Load64(base + waterM*8))
	threads := int(t.Load64(base + waterThreads*8))
	cellDim := int(t.Load64(base + waterCellDim*8))
	bar := base + 1
	lo, hi := span(m, threads, idx)

	loadPos := func(i int) (x, y, z float64) {
		rec := mol + arch.Addr(i*molStride)
		return t.LoadF64(rec + 0), t.LoadF64(rec + 8), t.LoadF64(rec + 16)
	}

	for step := 0; step < waterSteps; step++ {
		// Force phase: forces on owned molecules accumulate in registers.
		fx := make([]float64, hi-lo)
		fy := make([]float64, hi-lo)
		fz := make([]float64, hi-lo)
		if cellDim == 0 {
			for i := lo; i < hi; i++ {
				xi, yi, zi := loadPos(i)
				for j := 0; j < m; j++ {
					if j == i {
						continue
					}
					xj, yj, zj := loadPos(j)
					dx, dy, dz := waterForce(xj-xi, yj-yi, zj-zi)
					fx[i-lo] += dx
					fy[i-lo] += dy
					fz[i-lo] += dz
					t.Compute(coremodel.FP, 12)
				}
				t.Branch(true)
			}
		} else {
			counts := arch.Addr(t.Load64(base + waterCells*8))
			lists := arch.Addr(t.Load64(base + waterCellList*8))
			capPer := m
			for i := lo; i < hi; i++ {
				xi, yi, zi := loadPos(i)
				ci := cellOf(xi, yi, zi, cellDim)
				cx, cy, cz := ci/(cellDim*cellDim), (ci/cellDim)%cellDim, ci%cellDim
				for ddx := -1; ddx <= 1; ddx++ {
					for ddy := -1; ddy <= 1; ddy++ {
						for ddz := -1; ddz <= 1; ddz++ {
							nx, ny, nz := cx+ddx, cy+ddy, cz+ddz
							if nx < 0 || ny < 0 || nz < 0 || nx >= cellDim || ny >= cellDim || nz >= cellDim {
								continue
							}
							c := (nx*cellDim+ny)*cellDim + nz
							cnt := int(t.Load64(counts + arch.Addr(c*8)))
							for s := 0; s < cnt; s++ {
								j := int(t.Load64(lists + arch.Addr((c*capPer+s)*8)))
								if j == i {
									continue
								}
								xj, yj, zj := loadPos(j)
								dx, dy, dz := waterForce(xj-xi, yj-yi, zj-zi)
								fx[i-lo] += dx
								fy[i-lo] += dy
								fz[i-lo] += dz
								t.Compute(coremodel.FP, 12)
							}
						}
					}
				}
				t.Branch(true)
			}
		}
		t.BarrierWait(bar+arch.Addr(step*2), threads)
		// Update phase: integrate owned molecules.
		for i := lo; i < hi; i++ {
			rec := mol + arch.Addr(i*molStride)
			vx := t.LoadF64(rec+24) + fx[i-lo]*waterDT
			vy := t.LoadF64(rec+32) + fy[i-lo]*waterDT
			vz := t.LoadF64(rec+40) + fz[i-lo]*waterDT
			t.StoreF64(rec+24, vx)
			t.StoreF64(rec+32, vy)
			t.StoreF64(rec+40, vz)
			t.StoreF64(rec+0, t.LoadF64(rec+0)+vx*waterDT)
			t.StoreF64(rec+8, t.LoadF64(rec+8)+vy*waterDT)
			t.StoreF64(rec+16, t.LoadF64(rec+16)+vz*waterDT)
			t.Compute(coremodel.FP, 12)
		}
		t.BarrierWait(bar+arch.Addr(step*2+1), threads)
	}
}

func nativeWater(p Params, spatial bool) float64 {
	m := p.Scale
	pos := make([][3]float64, m)
	vel := make([][3]float64, m)
	g := lcg(31337)
	for i := range pos {
		pos[i] = [3]float64{g.f64(), g.f64(), g.f64()}
	}
	cellDim := 0
	var lists [][]int
	if spatial {
		cellDim = 3
		lists = make([][]int, cellDim*cellDim*cellDim)
		for i := range pos {
			c := cellOf(pos[i][0], pos[i][1], pos[i][2], cellDim)
			lists[c] = append(lists[c], i)
		}
	}
	for step := 0; step < waterSteps; step++ {
		force := make([][3]float64, m)
		for i := 0; i < m; i++ {
			interact := func(j int) {
				dx, dy, dz := waterForce(pos[j][0]-pos[i][0], pos[j][1]-pos[i][1], pos[j][2]-pos[i][2])
				force[i][0] += dx
				force[i][1] += dy
				force[i][2] += dz
			}
			if !spatial {
				for j := 0; j < m; j++ {
					if j != i {
						interact(j)
					}
				}
			} else {
				ci := cellOf(pos[i][0], pos[i][1], pos[i][2], cellDim)
				cx, cy, cz := ci/(cellDim*cellDim), (ci/cellDim)%cellDim, ci%cellDim
				for ddx := -1; ddx <= 1; ddx++ {
					for ddy := -1; ddy <= 1; ddy++ {
						for ddz := -1; ddz <= 1; ddz++ {
							nx, ny, nz := cx+ddx, cy+ddy, cz+ddz
							if nx < 0 || ny < 0 || nz < 0 || nx >= cellDim || ny >= cellDim || nz >= cellDim {
								continue
							}
							for _, j := range lists[(nx*cellDim+ny)*cellDim+nz] {
								if j != i {
									interact(j)
								}
							}
						}
					}
				}
			}
		}
		for i := 0; i < m; i++ {
			for d := 0; d < 3; d++ {
				vel[i][d] += force[i][d] * waterDT
				pos[i][d] += vel[i][d] * waterDT
			}
		}
	}
	sum := 0.0
	for i := range pos {
		sum += pos[i][0] + pos[i][1] + pos[i][2]
	}
	return sum
}
