package workloads

import (
	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/coremodel"
)

// ocean implements the SPLASH-2 Ocean current simulation reduced to its
// communication skeleton: red-black Gauss-Seidel relaxation of a 2-D grid
// with one barrier per color per iteration. Neighbour reads across band
// boundaries produce true sharing between adjacent owners.
//
//   - ocean_cont: padded rows, contiguous bands per worker (the
//     "contiguous partitions" allocation);
//   - ocean_non_cont: packed rows, interleaved row ownership — every row
//     boundary is an ownership boundary, maximizing sharing misses.
//
// Scale is the interior grid dimension; the grid is (Scale+2)² with fixed
// boundary values.
func init() {
	register(Workload{
		Name:         "ocean_cont",
		Description:  "red-black stencil, contiguous padded bands",
		DefaultScale: 64,
		Build:        func(p Params) core.Program { return buildOcean(p, true) },
		Native:       nativeOcean,
	})
	register(Workload{
		Name:         "ocean_non_cont",
		Description:  "red-black stencil, packed interleaved rows",
		DefaultScale: 64,
		Build:        func(p Params) core.Program { return buildOcean(p, false) },
		Native:       nativeOcean,
	})
}

const (
	oceanGrid = iota
	oceanN
	oceanStride
	oceanThreads
	oceanCont
	oceanIters
	oceanWords
)

// oceanSteps is the number of relaxation iterations.
const oceanSteps = 4

func buildOcean(p Params, contiguous bool) core.Program {
	work := oceanWork
	name := "ocean_non_cont"
	if contiguous {
		name = "ocean_cont"
	}
	main := func(t *core.Thread, arg uint64) {
		n := p.Scale
		dim := n + 2
		stride := luStrideBytes(dim, contiguous)
		block := t.Malloc(oceanWords * 8)
		grid := t.Malloc(arch.Addr(dim * stride))
		g := lcg(4242)
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				v := 0.0
				if i == 0 || j == 0 || i == dim-1 || j == dim-1 {
					v = 1.0 // boundary condition
				} else {
					v = g.f64()
				}
				t.StoreF64(grid+arch.Addr(i*stride+j*8), v)
			}
		}
		t.Store64(block+oceanGrid*8, uint64(grid))
		t.Store64(block+oceanN*8, uint64(n))
		t.Store64(block+oceanStride*8, uint64(stride))
		t.Store64(block+oceanThreads*8, uint64(p.Threads))
		cont := uint64(0)
		if contiguous {
			cont = 1
		}
		t.Store64(block+oceanCont*8, cont)
		t.Store64(block+oceanIters*8, oceanSteps)
		runWorkers(t, 1, block, p.Threads, work)
		markROI(t, p)
		sum := 0.0
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				sum += t.LoadF64(grid + arch.Addr(i*stride+j*8))
			}
			t.Compute(coremodel.FP, dim)
		}
		t.StoreF64(p.result(), sum)
	}
	return core.Program{Name: name, Funcs: []core.ThreadFunc{main, workerEntry(work)}}
}

func oceanWork(t *core.Thread, base arch.Addr, idx int) {
	grid := arch.Addr(t.Load64(base + oceanGrid*8))
	n := int(t.Load64(base + oceanN*8))
	stride := int(t.Load64(base + oceanStride*8))
	threads := int(t.Load64(base + oceanThreads*8))
	contiguous := t.Load64(base+oceanCont*8) == 1
	iters := int(t.Load64(base + oceanIters*8))
	bar := base + 1

	relax := func(i, j int) {
		up := t.LoadF64(grid + arch.Addr((i-1)*stride+j*8))
		down := t.LoadF64(grid + arch.Addr((i+1)*stride+j*8))
		left := t.LoadF64(grid + arch.Addr(i*stride+(j-1)*8))
		right := t.LoadF64(grid + arch.Addr(i*stride+(j+1)*8))
		t.StoreF64(grid+arch.Addr(i*stride+j*8), 0.25*(up+down+left+right))
		t.Compute(coremodel.FP, 4)
	}
	for it := 0; it < iters; it++ {
		for color := 0; color < 2; color++ {
			for i := 1; i <= n; i++ {
				if !luOwns(i-1, n, threads, idx, contiguous) {
					continue
				}
				for j := 1; j <= n; j++ {
					if (i+j)%2 == color {
						relax(i, j)
					}
				}
				t.Branch(true)
			}
			t.BarrierWait(bar+arch.Addr(it*2+color), threads)
		}
	}
}

func nativeOcean(p Params) float64 {
	n := p.Scale
	dim := n + 2
	u := make([][]float64, dim)
	g := lcg(4242)
	for i := range u {
		u[i] = make([]float64, dim)
		for j := range u[i] {
			if i == 0 || j == 0 || i == dim-1 || j == dim-1 {
				u[i][j] = 1.0
			} else {
				u[i][j] = g.f64()
			}
		}
	}
	for it := 0; it < oceanSteps; it++ {
		for color := 0; color < 2; color++ {
			for i := 1; i <= n; i++ {
				for j := 1; j <= n; j++ {
					if (i+j)%2 == color {
						u[i][j] = 0.25 * (u[i-1][j] + u[i+1][j] + u[i][j-1] + u[i][j+1])
					}
				}
			}
		}
	}
	sum := 0.0
	for i := range u {
		for j := range u[i] {
			sum += u[i][j]
		}
	}
	return sum
}
