package workloads

import (
	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/coremodel"
)

// matmul is the matrix-multiply kernel of Figure 5: C = A×B with workers
// owning contiguous row bands of C, reading all of B (read sharing), and
// exchanging a small message with their ring neighbour after each row —
// the "frequent synchronization via messages with neighbors" the paper
// chose it for. It scales to a thread per tile (1024 in Figure 5).
//
// Scale is the matrix dimension.
func init() {
	register(Workload{
		Name:         "matmul",
		Description:  "banded matrix multiply with neighbour messaging",
		DefaultScale: 48,
		Build:        buildMatmul,
		Native:       nativeMatmul,
	})
}

const (
	mmA = iota
	mmB
	mmC
	mmN
	mmThreads
	mmWords
)

func buildMatmul(p Params) core.Program {
	work := matmulWork
	main := func(t *core.Thread, arg uint64) {
		n := p.Scale
		block := t.Malloc(mmWords * 8)
		a := t.Malloc(arch.Addr(n * n * 8))
		b := t.Malloc(arch.Addr(n * n * 8))
		c := t.Malloc(arch.Addr(n * n * 8))
		g := lcg(1001)
		for i := 0; i < n*n; i++ {
			t.StoreF64(a+arch.Addr(i*8), g.f64())
			t.StoreF64(b+arch.Addr(i*8), g.f64())
		}
		t.Store64(block+mmA*8, uint64(a))
		t.Store64(block+mmB*8, uint64(b))
		t.Store64(block+mmC*8, uint64(c))
		t.Store64(block+mmN*8, uint64(n))
		t.Store64(block+mmThreads*8, uint64(p.Threads))
		runWorkers(t, 1, block, p.Threads, work)
		markROI(t, p)
		sum := 0.0
		for i := 0; i < n*n; i++ {
			sum += t.LoadF64(c + arch.Addr(i*8))
		}
		t.Compute(coremodel.FP, n*n)
		t.StoreF64(p.result(), sum)
	}
	return core.Program{Name: "matmul", Funcs: []core.ThreadFunc{main, workerEntry(work)}}
}

func matmulWork(t *core.Thread, base arch.Addr, idx int) {
	a := arch.Addr(t.Load64(base + mmA*8))
	b := arch.Addr(t.Load64(base + mmB*8))
	c := arch.Addr(t.Load64(base + mmC*8))
	n := int(t.Load64(base + mmN*8))
	threads := int(t.Load64(base + mmThreads*8))
	lo, hi := span(n, threads, idx)

	// Ring neighbours (thread IDs equal tile IDs, main is worker 0).
	// Every worker exchanges exactly floor(n/threads) messages — one per
	// guaranteed-owned row — so sends and receives always balance.
	right := arch.ThreadID((idx + 1) % threads)
	left := arch.ThreadID((idx - 1 + threads) % threads)
	rounds := n / threads
	ping := []byte{byte(idx)}
	sent := 0

	for i := lo; i < hi; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for k := 0; k < n; k++ {
				av := t.LoadF64(a + arch.Addr((i*n+k)*8))
				bv := t.LoadF64(b + arch.Addr((k*n+j)*8))
				acc += av * bv
			}
			t.Compute(coremodel.FP, 2*n)
			t.StoreF64(c+arch.Addr((i*n+j)*8), acc)
		}
		t.Branch(true)
		// Neighbour synchronization after each row.
		if threads > 1 && sent < rounds {
			t.Send(right, ping)
			t.RecvFrom(left)
			sent++
		}
	}
}

func nativeMatmul(p Params) float64 {
	n := p.Scale
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	c := make([]float64, n*n)
	g := lcg(1001)
	for i := range a {
		a[i] = g.f64()
		b[i] = g.f64()
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for k := 0; k < n; k++ {
				acc += a[i*n+k] * b[k*n+j]
			}
			c[i*n+j] = acc
		}
	}
	sum := 0.0
	for i := range c {
		sum += c[i]
	}
	return sum
}
