// Package checkpoint names and serializes the complete architectural
// state of a quiesced simulation: caches, directory entries, DRAM
// contents, clocks, core-model state, per-tile statistics, and the MCP's
// service tables. It is the first subsystem allowed to see all of that
// state at once, so the types here are the canonical inventory of "what a
// simulation is" at an epoch boundary.
//
// A checkpoint is one ProcState per host process — written by that
// process, checksummed, and versioned — plus one Manifest written by the
// MCP's process after every save reply has arrived. The manifest records
// each process file's SHA-256 along with a digest of the serialized state
// itself, which is what makes checkpoints comparable across runs: two
// runs of a deterministic simulation that checkpoint at the same epoch
// produce byte-identical ProcState JSON and therefore equal digests. The
// recovery path in core/launch leans on exactly this property — after a
// worker dies, the run is re-executed and each checkpoint's digests are
// verified against the previous attempt's manifests, so a divergent
// replay is detected at the first epoch where it differs rather than at
// the end of the run (see DESIGN.md §18).
//
// The package is a leaf: simulator packages (cache, memsys, mcp, core)
// import it and translate their internal state into these wire types,
// never the other way around.
package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Version identifies the checkpoint serialization format. Readers reject
// files written by a different version rather than guessing.
const Version = 1

// CacheState is the raw structure-of-arrays image of one cache: every
// slot (valid or not) in set×assoc order, plus the LRU tick and the
// public counters. Capturing slots verbatim — rather than only valid
// lines — preserves LRU ordering and set layout bit-for-bit, so a
// restored cache makes exactly the eviction decisions the original would
// have made.
//
//graphite:wire
type CacheState struct {
	Addrs      []uint64 `json:"addrs"`
	States     []uint8  `json:"states"`
	Dirtys     []bool   `json:"dirtys"`
	Masks      []uint64 `json:"masks"`
	LRUs       []uint64 `json:"lrus"`
	Data       []byte   `json:"data"`
	Tick       uint64   `json:"tick"`
	Hits       uint64   `json:"hits"`
	Misses     uint64   `json:"misses"`
	Evictions  uint64   `json:"evictions"`
	Writebacks uint64   `json:"writebacks"`
}

// DRAMLine is one backing-store line.
//
//graphite:wire
type DRAMLine struct {
	Addr uint64 `json:"addr"`
	Data []byte `json:"data"`
}

// DRAMState is one controller's backing store (lines sorted by address)
// and counters.
//
//graphite:wire
type DRAMState struct {
	Lines           []DRAMLine `json:"lines"`
	Reads           uint64     `json:"reads"`
	Writes          uint64     `json:"writes"`
	TotalQueueDelay int64      `json:"total_queue_delay"`
}

// CoreState is the core performance model: synthetic PC, predictor table,
// store buffer, and retirement counters.
//
//graphite:wire
type CoreState struct {
	PC           uint64  `json:"pc"`
	FetchedLine  uint64  `json:"fetched_line"`
	Predictor    []uint8 `json:"predictor"`
	StoreBuf     []int64 `json:"store_buf,omitempty"`
	Instructions uint64  `json:"instructions"`
	Branches     uint64  `json:"branches"`
	Mispredicts  uint64  `json:"mispredicts"`
	ComputeCyc   int64   `json:"compute_cyc"`
	MemStallCyc  int64   `json:"mem_stall_cyc"`
}

// DirEntryState is one directory entry: its arena index (so a restore
// reproduces allocation order and therefore entry layout), the line it
// tracks, and the sharer state. Sharers are listed in slot order for
// limited-pointer policies and ascending tile order for bit vectors —
// each is that policy's canonical order, and re-adding them in sequence
// reconstructs the entry exactly.
//
//graphite:wire
type DirEntryState struct {
	Index          int32   `json:"index"`
	Line           uint64  `json:"line"`
	Owner          int32   `json:"owner"`
	LastWriter     int32   `json:"last_writer"`
	LastWriterMask uint64  `json:"last_writer_mask"`
	Sharers        []int32 `json:"sharers,omitempty"`
	Cursor         int32   `json:"cursor,omitempty"`
}

// DirShardState is one home-directory shard: its entries (sorted by arena
// index), sub-request sequence counter, and home-side statistics.
//
//graphite:wire
type DirShardState struct {
	Entries     []DirEntryState `json:"entries,omitempty"`
	HomeSeq     uint64          `json:"home_seq"`
	DirRequests uint64          `json:"dir_requests"`
	DirTraps    uint64          `json:"dir_traps"`
	InvSent     uint64          `json:"inv_sent"`
}

// TileState is the complete architectural state of one tile at a quiesced
// epoch boundary.
//
//graphite:wire
type TileState struct {
	Tile  int32 `json:"tile"`
	Clock int64 `json:"clock"`

	Core *CoreState  `json:"core,omitempty"`
	L1I  *CacheState `json:"l1i,omitempty"`
	L1D  *CacheState `json:"l1d,omitempty"`
	L2   *CacheState `json:"l2"`

	DirShards []DirShardState `json:"dir_shards"`
	DRAM      DRAMState       `json:"dram"`

	// ReqSeq is the core context's memory-request sequence counter.
	ReqSeq uint64 `json:"req_seq"`
	// EverAccessed and Invalidated are the miss-classification sets
	// (sorted line addresses).
	EverAccessed []uint64 `json:"ever_accessed,omitempty"`
	Invalidated  []uint64 `json:"invalidated,omitempty"`

	Stats stats.Tile `json:"stats"`
}

// ThreadState is one MCP thread record.
//
//graphite:wire
type ThreadState struct {
	Thread   int32         `json:"thread"`
	Exited   bool          `json:"exited"`
	ExitTime int64         `json:"exit_time"`
	Joiners  []WaiterState `json:"joiners,omitempty"`
}

// WaiterState is one blocked requester (a reply address plus the
// simulated time it blocked and, where relevant, auxiliary state).
//
//graphite:wire
type WaiterState struct {
	Tile      int32  `json:"tile"`
	Seq       uint64 `json:"seq"`
	Time      int64  `json:"time"`
	ReplyType uint8  `json:"reply_type,omitempty"`
	Mutex     uint64 `json:"mutex,omitempty"`
}

// MutexState is one MCP mutex service record.
//
//graphite:wire
type MutexState struct {
	Addr     uint64        `json:"addr"`
	Locked   bool          `json:"locked"`
	LastFree int64         `json:"last_free"`
	Queue    []WaiterState `json:"queue,omitempty"`
}

// BarrierState is one in-progress application barrier.
//
//graphite:wire
type BarrierState struct {
	Addr    uint64        `json:"addr"`
	Waiters []WaiterState `json:"waiters,omitempty"`
}

// CondState is one condition-variable service record.
//
//graphite:wire
type CondState struct {
	Addr    uint64        `json:"addr"`
	Waiters []WaiterState `json:"waiters,omitempty"`
}

// AllocSpanState is one free-list span of the simulated heap.
//
//graphite:wire
type AllocSpanState struct {
	Base uint64 `json:"base"`
	Size uint64 `json:"size"`
}

// AllocBlockState is one live allocation.
//
//graphite:wire
type AllocBlockState struct {
	Addr uint64 `json:"addr"`
	Size uint64 `json:"size"`
}

// AllocState is the MCP heap allocator: free list in base order, live
// blocks in address order, and the usage counters.
//
//graphite:wire
type AllocState struct {
	Free      []AllocSpanState  `json:"free"`
	Allocated []AllocBlockState `json:"allocated,omitempty"`
	InUse     uint64            `json:"in_use"`
	Peak      uint64            `json:"peak"`
}

// FileState is one simulated file (and FDState one open descriptor) of
// the MCP's simulation-global file table.
//
//graphite:wire
type FileState struct {
	Path string `json:"path"`
	Data []byte `json:"data,omitempty"`
}

// FDState is one open descriptor of the MCP file table. A descriptor
// whose file was unlinked while open has no path; its contents ride in
// Data instead (sharing between two such descriptors is not preserved —
// each restores its own copy).
//
//graphite:wire
type FDState struct {
	FD   int32  `json:"fd"`
	Path string `json:"path"`
	Off  int64  `json:"off"`
	Data []byte `json:"data,omitempty"`
}

// MCPState is the Master Control Program's service state: thread table,
// tile occupancy, synchronization services, heap allocator, and file
// table. Captured by the MCP itself during the save window (all
// application threads are parked, so the tables are stable).
//
//graphite:wire
type MCPState struct {
	Threads  []ThreadState  `json:"threads,omitempty"`
	TileBusy []bool         `json:"tile_busy"`
	Running  int            `json:"running"`
	Blocked  []int32        `json:"blocked,omitempty"`
	Mutexes  []MutexState   `json:"mutexes,omitempty"`
	Barriers []BarrierState `json:"barriers,omitempty"`
	Conds    []CondState    `json:"conds,omitempty"`
	Alloc    AllocState     `json:"alloc"`
	Files    []FileState    `json:"files,omitempty"`
	FDs      []FDState      `json:"fds,omitempty"`
	NextFD   int32          `json:"next_fd"`
}

// ProcState is everything one host process contributes to a checkpoint.
//
//graphite:wire
type ProcState struct {
	Version      int         `json:"version"`
	Proc         int32       `json:"proc"`
	Epoch        int64       `json:"epoch"`
	ConfigDigest string      `json:"config_digest"`
	Tiles        []TileState `json:"tiles"`
}

// ManifestProc records one process's contribution in the manifest: where
// its state file lives, the SHA-256 of the file bytes, and the digest of
// the serialized state.
//
//graphite:wire
type ManifestProc struct {
	Proc        int32  `json:"proc"`
	File        string `json:"file"`
	FileSum     string `json:"file_sum"`
	StateDigest string `json:"state_digest"`
}

// Manifest is the checkpoint's root document, written by the MCP process
// once every per-process save has been acknowledged. A manifest on disk
// means the checkpoint is complete; a crash mid-save leaves state files
// without a manifest, which readers ignore.
//
//graphite:wire
type Manifest struct {
	Version      int            `json:"version"`
	Epoch        int64          `json:"epoch"`
	FabricID     uint64         `json:"fabric_id"`
	Generation   uint64         `json:"generation"`
	ConfigDigest string         `json:"config_digest"`
	Procs        []ManifestProc `json:"procs"`
	MCP          *MCPState      `json:"mcp,omitempty"`
}

// VerifyDigests returns the manifest's state digests in canonical order —
// one per process, then the digest of the MCP state. This list is the
// unit of replay-identity verification: a re-run attempt checkpointing at
// the same epoch must reproduce it exactly (DESIGN.md §18).
func (m *Manifest) VerifyDigests() []string {
	out := make([]string, 0, len(m.Procs)+1)
	for _, p := range m.Procs {
		out = append(out, p.StateDigest)
	}
	b, err := json.Marshal(m.MCP)
	if err != nil {
		panic("checkpoint: marshal mcp state: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return append(out, hex.EncodeToString(sum[:]))
}

// StateDigest returns the hex SHA-256 of the canonical (JSON) encoding of
// a process state. Two equal states digest equally; the JSON encoder's
// fixed field order makes the encoding canonical.
func StateDigest(ps *ProcState) string {
	b, err := json.Marshal(ps)
	if err != nil {
		panic("checkpoint: marshal proc state: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// ProcFileName names the state file of one (epoch, proc) pair.
func ProcFileName(epoch int64, proc int32) string {
	return fmt.Sprintf("ckpt-e%08d-p%03d.json", epoch, proc)
}

// ManifestFileName names the manifest of one epoch.
func ManifestFileName(epoch int64) string {
	return fmt.Sprintf("ckpt-e%08d-manifest.json", epoch)
}

// WriteProcState serializes ps into dir, returning the file's base name,
// its SHA-256 (hex), and the state digest. The file is written via a
// temporary name and renamed, so a reader never sees a torn file.
func WriteProcState(dir string, ps *ProcState) (file, fileSum, stateDigest string, err error) {
	ps.Version = Version
	b, err := json.Marshal(ps)
	if err != nil {
		return "", "", "", fmt.Errorf("checkpoint: marshal proc %d: %w", ps.Proc, err)
	}
	sum := sha256.Sum256(b)
	name := ProcFileName(ps.Epoch, ps.Proc)
	if err := atomicWrite(filepath.Join(dir, name), b); err != nil {
		return "", "", "", err
	}
	return name, hex.EncodeToString(sum[:]), StateDigest(ps), nil
}

// ReadProcState loads and decodes one state file, verifying wantSum (hex
// SHA-256 of the file bytes) when non-empty.
func ReadProcState(path, wantSum string) (*ProcState, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if wantSum != "" {
		sum := sha256.Sum256(b)
		if got := hex.EncodeToString(sum[:]); got != wantSum {
			return nil, fmt.Errorf("checkpoint: %s: checksum mismatch (got %s, want %s)", path, got, wantSum)
		}
	}
	var ps ProcState
	if err := json.Unmarshal(b, &ps); err != nil {
		return nil, fmt.Errorf("checkpoint: decode %s: %w", path, err)
	}
	if ps.Version != Version {
		return nil, fmt.Errorf("checkpoint: %s: version %d, want %d", path, ps.Version, Version)
	}
	return &ps, nil
}

// WriteManifest writes the epoch's manifest into dir (atomically, like
// WriteProcState).
func WriteManifest(dir string, m *Manifest) error {
	m.Version = Version
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: marshal manifest: %w", err)
	}
	return atomicWrite(filepath.Join(dir, ManifestFileName(m.Epoch)), append(b, '\n'))
}

// ReadManifest loads one manifest file.
func ReadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("checkpoint: decode %s: %w", path, err)
	}
	if m.Version != Version {
		return nil, fmt.Errorf("checkpoint: %s: version %d, want %d", path, m.Version, Version)
	}
	return &m, nil
}

// LoadManifests returns every complete checkpoint manifest in dir, sorted
// by epoch. A missing or empty directory is an empty slice, not an error.
func LoadManifests(dir string) ([]*Manifest, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var out []*Manifest
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "ckpt-e") || !strings.HasSuffix(name, "-manifest.json") {
			continue
		}
		m, err := ReadManifest(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Epoch < out[j].Epoch })
	return out, nil
}

// Latest returns the highest-epoch manifest in dir, or nil when none
// exists.
func Latest(dir string) (*Manifest, error) {
	ms, err := LoadManifests(dir)
	if err != nil || len(ms) == 0 {
		return nil, err
	}
	return ms[len(ms)-1], nil
}

// LoadProcStates reads every process state referenced by a manifest,
// verifying file checksums and state digests, and returns them indexed by
// process.
func LoadProcStates(dir string, m *Manifest) ([]*ProcState, error) {
	out := make([]*ProcState, len(m.Procs))
	for i, mp := range m.Procs {
		ps, err := ReadProcState(filepath.Join(dir, mp.File), mp.FileSum)
		if err != nil {
			return nil, err
		}
		if got := StateDigest(ps); got != mp.StateDigest {
			return nil, fmt.Errorf("checkpoint: proc %d: state digest mismatch (got %s, want %s)", mp.Proc, got, mp.StateDigest)
		}
		if int(mp.Proc) != i {
			return nil, fmt.Errorf("checkpoint: manifest proc order broken at index %d (proc %d)", i, mp.Proc)
		}
		out[i] = ps
	}
	return out, nil
}

// atomicWrite writes b to path via a temporary file and rename.
func atomicWrite(path string, b []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}
